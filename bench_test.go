package repro

// One benchmark per experiment in the DESIGN.md index. The benchmarks run
// the same workloads as cmd/experiments at reduced scale, so `go test
// -bench=. -benchmem` regenerates every table's underlying computation and
// reports its cost. Custom metrics expose the experiment's headline
// number alongside ns/op.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fusion"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wrangletest"
	"repro/wrangle"
	"repro/wrangle/synth"
)

// BenchmarkEngineParallelSources measures the engine's per-source fan-out
// on a multi-source wrangle: one synthetic product universe with many
// sources, wrangled end to end at 1/2/4/8 workers. Per-source
// extract/match/map chains dominate the run, so wall-clock should shrink
// with workers up to the machine's core count (the sequential
// select/integrate/fuse tail bounds the Amdahl ceiling). Output is
// byte-identical at every worker count; only the speed changes. `make
// bench` writes this table to BENCH_PR2.json to seed the perf trajectory.
func BenchmarkEngineParallelSources(b *testing.B) {
	// One universe shared across worker counts: Run never mutates the
	// provider, and reusing it keeps generation cost out of the loop.
	provider := wrangle.Synthetic(3, wrangle.Products, 24)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := wrangle.New(
					wrangle.WithProvider(provider),
					wrangle.WithParallelism(workers),
				)
				if err != nil {
					b.Fatal(err)
				}
				out, err := s.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() == 0 {
					b.Fatal("no wrangled rows")
				}
			}
		})
	}
}

// BenchmarkServeReads measures the serving layer's concurrent read path:
// 1/4/16 reader goroutines continuously pin the latest snapshot version
// and touch its table, stats and report, while a background writer
// refreshes sources (committing a new copy-on-write version per
// reaction). Reads are one atomic pointer load plus accessor calls — they
// never take the session lock — so throughput should hold (and scale
// with cores) regardless of the write churn. `make bench` records this
// table to BENCH_PR3.json, the PR-3 entry of the perf trajectory.
func BenchmarkServeReads(b *testing.B) {
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			s, err := wrangle.New(
				wrangle.WithSeed(11),
				wrangle.WithSyntheticSources(8),
				wrangle.WithRetainVersions(3),
			)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			// The mutating session: a writer goroutine refreshes one source
			// at a time for the whole measurement window, so every read
			// races a real reaction.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				ids := s.SelectedSources()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					// Best-effort: a failed refresh keeps the previous data
					// and the bench keeps reading.
					_, _ = s.Refresh(context.Background(), ids[i%len(ids)])
				}
			}()
			b.ResetTimer()
			var next atomic.Int64
			var rwg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for next.Add(1) <= int64(b.N) {
						v, err := s.View()
						if err != nil {
							b.Error(err)
							return
						}
						if v.Table().Len() == 0 {
							b.Error("empty table")
							return
						}
						if v.Stats().RowsWrangled != v.Table().Len() {
							b.Error("torn version")
							return
						}
						_ = v.Report().Lines
					}
				}()
			}
			rwg.Wait()
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

func BenchmarkE1ManualVsAutomated(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E1ManualVsAutomated(1, 30)
		share = rows[0].WranglingShare
	}
	b.ReportMetric(share*100, "manual_wrangling_%")
}

func BenchmarkE2UserContexts(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E2UserContexts(1, 12)
		gap = rows[1].Recall - rows[0].Recall
	}
	b.ReportMetric(gap*100, "recall_gap_%")
}

func BenchmarkE3ContextExtraction(b *testing.B) {
	var repaired float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E3ContextExtraction(1, 6)
		repaired = rows[3].RepairedRate
	}
	b.ReportMetric(repaired*100, "auto_repaired_%")
}

func BenchmarkE4EvidenceTypes(b *testing.B) {
	var f1 float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E4EvidenceTypes(1, 10)
		f1 = rows[3].F1
	}
	b.ReportMetric(f1, "all_evidence_F1")
}

func BenchmarkE5PayAsYouGo(b *testing.B) {
	var f1 float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E5PayAsYouGo(1, 8, 2, 20)
		f1 = rows[len(rows)-1].ERF1
	}
	b.ReportMetric(f1, "final_ER_F1")
}

func BenchmarkE5bSharedVsSiloed(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E5bSharedVsSiloed(1, 8)
		gap = rows[3].ERF1 - rows[0].ERF1
	}
	b.ReportMetric(gap, "shared_ER_F1_gain")
}

func BenchmarkE6BoundedEvaluation(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E6BoundedEvaluation([]int{10000, 100000})
		last := rows[len(rows)-1]
		ratio = float64(last.ScanWork) / float64(last.BoundedWork)
	}
	b.ReportMetric(ratio, "scan_over_bounded_work")
}

func BenchmarkE7CQApproximation(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E7CQApproximation(1, 60, 500)
		saved = float64(rows[0].ExactWork) / float64(maxInt(rows[0].ApproxWork, 1))
	}
	b.ReportMetric(saved, "exact_over_approx_work")
}

func BenchmarkE8KBCvsWrangler(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E8KBCvsWrangler(1, 15)
		gain = rows[2].PriceAcc - rows[0].PriceAcc
	}
	b.ReportMetric(gain*100, "freshness_gain_pp")
}

func BenchmarkE9Uncertainty(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E9Uncertainty(1, 300, 7)
		delta = rows[0].Brier - rows[3].Brier
	}
	b.ReportMetric(delta, "brier_improvement")
}

func BenchmarkE10Incremental(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.E10Incremental(1, 8, 1)
		speedup = float64(rows[0].FullSrc) / float64(maxInt(rows[0].IncrementalSrc, 1))
	}
	b.ReportMetric(speedup, "sources_touched_ratio")
}

func BenchmarkF1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.F1Architecture(1, 10)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkShardedIntegration measures the sharded integration tail in
// isolation: one wide synthetic union (24 sources) is wrangled once,
// then the select → resolve → fuse → merge tail re-runs per iteration
// (an empty refresh batch recomputes exactly the tail plus one delta
// publication) at 1/2/4/8 blocking shards. Output is byte-identical at
// every shard count — the determinism harness pins that — so the only
// thing this table may show moving is wall clock. On the 1-CPU bench
// container the fan-out cannot beat one shard (expect flat-to-slightly-
// worse from merge bookkeeping); on multi-core the resolve/fuse tasks
// overlap up to the component structure's limit. `make bench` records
// this table and BenchmarkDeltaPublish to BENCH_PR4.json.
func BenchmarkShardedIntegration(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			w := wrangletest.NewWrangler(3, 24, shards)
			if _, err := w.Run(); err != nil {
				b.Fatal(err)
			}
			rows := w.Union().Len()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.RefreshSourcesContext(context.Background(), nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows), "union_rows")
		})
	}
}

// BenchmarkDeltaPublish contrasts the two publication strategies over a
// wide wrangled table: "full-copy" deep-copies every record into the
// next version (the sequential tail's publish), "delta" re-clones only
// one of eight shard pages and pointer-shares the other seven with the
// predecessor (the sharded tail's publish after a one-shard reaction).
// Time and allocations per published version are the headline numbers —
// delta publication is O(changed shard), not O(table).
func BenchmarkDeltaPublish(b *testing.B) {
	const rows, pages = 4096, 8
	schema := dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "category", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
		dataset.Field{Name: "rating", Kind: dataset.KindFloat},
	)
	base := dataset.NewTable(schema)
	for i := 0; i < rows; i++ {
		base.AppendValues(
			dataset.String(fmt.Sprintf("SKU-%05d", i)),
			dataset.String(fmt.Sprintf("Product %d deluxe edition", i)),
			dataset.String("BrandCo"),
			dataset.String("gadgets"),
			dataset.Float(float64(i)*1.5),
			dataset.Float(4.2),
		)
	}
	b.Run("full-copy", func(b *testing.B) {
		store := serve.NewStore[*dataset.Table](4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.Publish(base.Clone(), uint64(i), serve.OriginRefresh, time.Time{}, serve.ChangeSet{Full: true})
		}
	})
	b.Run("delta-1-of-8", func(b *testing.B) {
		store := serve.NewStore[*dataset.Table](4)
		pageLen := rows / pages
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dirty := i % pages
			next := dataset.NewTable(base.Schema().Clone())
			for r := 0; r < rows; r++ {
				rec := base.Row(r)
				if r/pageLen == dirty {
					rec = rec.Clone() // the changed shard republishes fresh records
				}
				next.Append(rec) // untouched shards: pointer-shared storage
			}
			store.Publish(next, uint64(i), serve.OriginRefresh, time.Time{}, serve.ChangeSet{ChangedShards: []int{dirty}, ChangedPages: 1, SharedPages: pages - 1})
		}
	})
}

// BenchmarkStreamingRefresh is the PR-5 headline: one source of a
// 24-source union churns and is refreshed, with the full sharded tail
// ("full": re-plan, re-score and re-fuse everything) versus the
// streaming partial tail ("streaming": dirty-row diff, incremental
// re-plan, cached pair scores, warm trust, per-dirty-shard fuse, page
// reuse). Output is byte-identical — the determinism harness and fuzz
// targets pin that — so the table may only show cost moving: full-tail
// cost scales with the corpus, streaming cost with the dirty shard.
// `make bench` records this and BenchmarkConcurrentAcquire to
// BENCH_PR5.json.
func BenchmarkStreamingRefresh(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		for _, mode := range []string{"full", "streaming"} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(b *testing.B) {
				var w *core.Wrangler
				if mode == "streaming" {
					w = wrangletest.NewStreamingWrangler(3, 24, shards)
				} else {
					w = wrangletest.NewWrangler(3, 24, shards)
				}
				if _, err := w.Run(); err != nil {
					b.Fatal(err)
				}
				ids := w.SelectedSources()
				reused := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.EvolveWorld(0.1)
					stats, err := w.RefreshSource(ids[i%len(ids)])
					if err != nil {
						b.Fatal(err)
					}
					reused += stats.ShardsReused
				}
				b.ReportMetric(float64(reused)/float64(b.N), "shards_reused/op")
			})
		}
	}
}

// BenchmarkFullTail is the PR-9 headline: the cost of one full
// integration tail — union build, blocking, pair scoring, clustering,
// trust fixpoint, fusion, merge and delta publication — over the
// 24-source bench universe, with nothing dirty (an empty refresh batch
// recomputes exactly the tail). This is the allocation-squeeze target:
// interned row keys, per-row normalized feature state and preallocated
// stage buffers attack the ~4k allocs/row the PR-4/PR-5 baselines
// carried. Allocations per op are the headline number; `make bench`
// records this table and BenchmarkStreamingRefresh to BENCH_PR9.json,
// and `make bench-gate` fails the build if either regresses.
func BenchmarkFullTail(b *testing.B) {
	for _, shards := range []int{0, 1, 4, 8} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			w := wrangletest.NewWrangler(3, 24, shards)
			if _, err := w.Run(); err != nil {
				b.Fatal(err)
			}
			rows := w.Union().Len()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.RefreshSourcesContext(context.Background(), nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows), "union_rows")
		})
	}
}

// slowProvider adds a fixed acquisition latency to every Refresh —
// the network- or disk-bound re-acquisition the ConcurrentProvider
// contract exists to overlap.
type slowProvider struct {
	wrangle.Provider
	delay time.Duration
}

func (p *slowProvider) Refresh(id string) *wrangle.Source {
	time.Sleep(p.delay)
	return p.Provider.Refresh(id)
}

// slowConcurrentProvider is slowProvider opted into concurrent
// acquisition.
type slowConcurrentProvider struct{ slowProvider }

func (p *slowConcurrentProvider) ConcurrentAcquire() bool { return true }

// BenchmarkConcurrentAcquire measures the ConcurrentProvider contract:
// an 8-source refresh batch against a provider with 2ms acquisition
// latency, serially (the base Provider contract) versus overlapped on
// the engine pool (ConcurrentAcquire). Acquisition latency is
// sleep-bound, so the concurrent path wins even on the 1-CPU bench
// container; results are byte-identical either way (pinned at the core
// layer).
func BenchmarkConcurrentAcquire(b *testing.B) {
	// A deliberately small universe keeps the integration tail cheap, so
	// the batch's acquisition latency — what this benchmark is about —
	// dominates the refresh.
	world := synth.NewWorld(9, 40, 0)
	cfg := synth.DefaultConfig(9, 8)
	cfg.MinRecords, cfg.MaxRecords = 5, 10
	base := synth.Generate(world, cfg)
	for _, mode := range []string{"serial", "concurrent"} {
		b.Run(mode, func(b *testing.B) {
			var p wrangle.Provider
			slow := slowProvider{Provider: base, delay: 2 * time.Millisecond}
			if mode == "concurrent" {
				p = &slowConcurrentProvider{slowProvider: slow}
			} else {
				p = &slow
			}
			s, err := wrangle.New(
				wrangle.WithProvider(p),
				wrangle.WithParallelism(8),
			)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Refresh(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWatchFanout is the PR-6 headline: one publisher pushing
// versions through the change feed to 1/64/1024 concurrent subscribers,
// with the payload either a full copy (every record re-sent) or a
// 1-of-8-shards delta (changed page inlined, shared pages elided — the
// shape /watch serves). Three numbers matter and are reported as custom
// metrics per sub-benchmark:
//
//   - p50/p95/p99_us: publish-to-delivery latency per subscriber event.
//   - frame_bytes: the serialised per-version frame one subscriber
//     downloads — on delta payloads it scales with the changed shard,
//     not the table.
//   - evictions: must be 0. The publisher paces itself against the
//     slowest subscriber (staying well inside the watch buffer), so a
//     non-zero count means delivery lost its non-blocking guarantee.
//
// Publish itself never blocks on subscribers by construction; the pacing
// barrier below is the benchmark keeping drain goroutines inside the
// bounded buffer so every delivery is measured, not evicted. `make
// bench` records this table to BENCH_PR6.json.
func BenchmarkWatchFanout(b *testing.B) {
	const rows, pages = 1024, 8
	schema := dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
		dataset.Field{Name: "rating", Kind: dataset.KindFloat},
	)
	base := dataset.NewTable(schema)
	for i := 0; i < rows; i++ {
		base.AppendValues(
			dataset.String(fmt.Sprintf("SKU-%05d", i)),
			dataset.String(fmt.Sprintf("Product %d deluxe edition", i)),
			dataset.String("BrandCo"),
			dataset.Float(float64(i)*1.5),
			dataset.Float(4.2),
		)
	}
	pageLen := rows / pages
	for _, subs := range []int{1, 64, 1024} {
		for _, payload := range []string{"full", "delta-1-of-8"} {
			b.Run(fmt.Sprintf("subscribers=%d/%s", subs, payload), func(b *testing.B) {
				store := serve.NewStore[*dataset.Table](4)
				store.SetWatchBuffer(256)

				// The frame one subscriber downloads per version: the
				// changed rows (all of them on full payloads) as JSON.
				// Constant across iterations, so computed outside the loop.
				frameRows := rows
				if payload != "full" {
					frameRows = pageLen
				}
				frame := dataset.NewTable(schema)
				for r := 0; r < frameRows; r++ {
					frame.Append(base.Row(r))
				}
				var buf bytes.Buffer
				if err := dataset.WriteJSON(&buf, frame); err != nil {
					b.Fatal(err)
				}
				frameBytes := buf.Len()

				var (
					wg        sync.WaitGroup
					evictions atomic.Int64
					progress  = make([]atomic.Uint64, subs) // last seq each subscriber processed
				)
				latencies := make([][]float64, subs)
				target := uint64(b.N)
				for i := 0; i < subs; i++ {
					ch, cancel, err := store.Watch(context.Background(), 0)
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func(id int, ch <-chan serve.Change[*dataset.Table], cancel serve.CancelFunc) {
						defer wg.Done()
						defer cancel()
						for c := range ch {
							if c.Evicted {
								evictions.Add(1)
								return
							}
							latencies[id] = append(latencies[id], float64(time.Since(c.Version.At()).Microseconds()))
							progress[id].Store(c.Seq())
							if c.Seq() >= target {
								return
							}
						}
					}(i, ch, cancel)
				}

				b.ResetTimer()
				for i := 1; i <= b.N; i++ {
					var next *dataset.Table
					var cs serve.ChangeSet
					if payload == "full" {
						next = base.Clone()
						cs = serve.ChangeSet{Full: true}
					} else {
						dirty := i % pages
						next = dataset.NewTable(base.Schema().Clone())
						for r := 0; r < rows; r++ {
							rec := base.Row(r)
							if r/pageLen == dirty {
								rec = rec.Clone()
							}
							next.Append(rec)
						}
						cs = serve.ChangeSet{ChangedShards: []int{dirty}, ChangedPages: 1, SharedPages: pages - 1}
					}
					store.Publish(next, uint64(i), serve.OriginRefresh, time.Now(), cs)
					// Pace against the slowest subscriber every 64 versions:
					// max gap 64+128 < the 256 buffer, so nobody is evicted
					// and every delivery is measured.
					if i%64 == 0 {
						floor := uint64(0)
						if i > 128 {
							floor = uint64(i - 128)
						}
						for {
							slowest := uint64(math.MaxUint64)
							for s := range progress {
								if got := progress[s].Load(); got < slowest {
									slowest = got
								}
							}
							if slowest >= floor {
								break
							}
							runtime.Gosched()
						}
					}
				}
				wg.Wait()
				b.StopTimer()

				if n := evictions.Load(); n != 0 {
					b.Fatalf("%d subscribers evicted — delivery fell out of the bounded buffer", n)
				}
				var all []float64
				for _, l := range latencies {
					all = append(all, l...)
				}
				b.ReportMetric(quantile(all, 0.50), "p50_us")
				b.ReportMetric(quantile(all, 0.95), "p95_us")
				b.ReportMetric(quantile(all, 0.99), "p99_us")
				b.ReportMetric(float64(frameBytes), "frame_bytes")
				b.ReportMetric(0, "evictions")
			})
		}
	}
}

// quantile returns the q-th quantile of xs (nearest-rank on a sorted
// copy); 0 for an empty sample.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// BenchmarkMetricsOverhead prices the telemetry spine on the hottest
// path: lock-free View reads against a live session, with the registry
// disabled (the default — every instrumentation site is one nil check)
// and enabled. The disabled variant must stay within noise of
// BenchmarkServeReads/readers=1; the enabled variant bounds the cost of
// always-on scraping. `make bench` writes this table to BENCH_PR8.json.
func BenchmarkMetricsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []wrangle.Option
	}{
		{"disabled", nil},
		{"enabled", []wrangle.Option{wrangle.WithMetrics()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := append([]wrangle.Option{
				wrangle.WithSeed(11),
				wrangle.WithSyntheticSources(4),
			}, mode.opts...)
			s, err := wrangle.New(opts...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := s.View()
				if err != nil {
					b.Fatal(err)
				}
				if v.Table().Len() == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// BenchmarkRegistryScrape prices a Prometheus scrape of a registry under
// concurrent writes — the /metrics handler's steady-state cost while the
// pipeline reacts. Four writer goroutines hammer a representative metric
// mix (counters, a labelled histogram, a gauge) for the whole window;
// each iteration renders the full text exposition.
func BenchmarkRegistryScrape(b *testing.B) {
	reg := obs.NewRegistry()
	for _, origin := range []string{"run", "feedback", "refresh"} {
		reg.Counter("wrangle_reactions_total", "origin", origin).Inc()
		reg.Histogram("wrangle_reaction_seconds", obs.DurationBuckets(), "origin", origin).Observe(0.01)
	}
	reg.Gauge("wrangle_rows").Set(1200)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("wrangle_serve_reads_total")
			h := reg.Histogram("wrangle_stage_seconds", obs.DurationBuckets(), "origin", "refresh", "stage", "fuse")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%100) / 1e4)
			}
		}(w)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := reg.WritePrometheus(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(buf.Len()), "scrape_bytes")
}

// trustBenchClaims builds a claim universe with `components` natural
// trust-coupled components: each component has its own source set
// conflicting over its own entities, with no source shared across
// components, so the fixpoint decomposes into exactly `components`
// independent problems.
func trustBenchClaims(components, sourcesPer, groupsPer, claimsPer int) []fusion.Claim {
	var claims []fusion.Claim
	for c := 0; c < components; c++ {
		for g := 0; g < groupsPer; g++ {
			for i := 0; i < claimsPer; i++ {
				s := (g + i) % sourcesPer
				// Three conflicting value camps per group, far enough
				// apart to land in distinct buckets at the default 1%
				// tolerance.
				v := float64(100 + 25*((g+s)%3))
				claims = append(claims, fusion.Claim{
					Entity:    fmt.Sprintf("c%02d-e%03d", c, g),
					Attribute: "price",
					Value:     dataset.Float(v),
					SourceID:  fmt.Sprintf("c%02d-s%02d", c, s),
				})
			}
		}
	}
	return claims
}

// BenchmarkTrustFixpoint measures the component-partitioned TruthFinder
// fixpoint over a universe with 8 natural components, cold and warm, at
// workers 1/2/4/8. Cold runs estimate from scratch — the worker sweep
// shows the fan-out's scaling, and workers=1 its sequential overhead
// versus the pre-partition fixpoint. Warm runs churn one source's claims
// against a memo, so only that source's component re-iterates
// (recomputed/op < components/op) — the per-component short-circuit the
// streaming tail leans on. Results are byte-identical across all
// variants; only the speed differs. `make bench` records this to
// BENCH_PR10.json and `make bench-gate` compares against it.
func BenchmarkTrustFixpoint(b *testing.B) {
	claims := trustBenchClaims(8, 12, 40, 6)
	workerCounts := []int{1, 2, 4, 8}
	for _, wk := range workerCounts {
		b.Run(fmt.Sprintf("cold/workers=%d", wk), func(b *testing.B) {
			var st fusion.TrustStats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, st = fusion.EstimateTrustParallel(claims, fusion.DefaultOptions(fusion.TruthFinder), wk)
			}
			b.ReportMetric(float64(st.Components), "components/op")
		})
	}
	for _, wk := range workerCounts {
		b.Run(fmt.Sprintf("warm/workers=%d", wk), func(b *testing.B) {
			_, memo, _, _ := fusion.EstimateTrustWarmParallel(claims, fusion.DefaultOptions(fusion.TruthFinder), nil, wk)
			churned := append([]fusion.Claim(nil), claims...)
			for i := range churned {
				if churned[i].SourceID == "c00-s00" {
					churned[i].Value = dataset.Float(999)
				}
			}
			var st fusion.TrustStats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, _, st = fusion.EstimateTrustWarmParallel(churned, fusion.DefaultOptions(fusion.TruthFinder), memo, wk)
			}
			b.ReportMetric(float64(st.Components), "components/op")
			b.ReportMetric(float64(st.Recomputed), "recomputed/op")
		})
	}
}
