package text

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"résumé", "resume", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	if got := DamerauLevenshtein("ca", "ac"); got != 1 {
		t.Errorf("transposition should cost 1, got %d", got)
	}
	if got := Levenshtein("ca", "ac"); got != 2 {
		t.Errorf("plain Levenshtein transposition = %d, want 2", got)
	}
	if got := DamerauLevenshtein("hdmi", "hmdi"); got != 1 {
		t.Errorf("DamerauLevenshtein(hdmi,hmdi) = %d, want 1", got)
	}
}

func TestLevenshteinSimilarityRange(t *testing.T) {
	if LevenshteinSimilarity("", "") != 1 {
		t.Error("empty strings should be identical")
	}
	if LevenshteinSimilarity("abc", "abc") != 1 {
		t.Error("equal strings should be 1")
	}
	if s := LevenshteinSimilarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint equal-length strings = %v, want 0", s)
	}
}

func TestJaro(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.944444},
		{"dixon", "dicksonx", 0.766667},
		{"jellyfish", "smellyfish", 0.896296},
		{"", "", 1},
		{"a", "", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Jaro(%q,%q) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.961111) > 1e-5 {
		t.Errorf("JaroWinkler(martha,marhta) = %f, want 0.961111", got)
	}
	if JaroWinkler("prefix_aaa", "prefix_bbb") <= Jaro("prefix_aaa", "prefix_bbb") {
		t.Error("shared prefix should boost")
	}
}

func TestQGrams(t *testing.T) {
	g := QGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if len(g) != len(want) {
		t.Fatalf("QGrams = %v, want %v", g, want)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Errorf("QGrams[%d] = %q, want %q", i, g[i], want[i])
		}
	}
	if QGrams("", 3) == nil {
		// padding makes even empty strings produce grams when q>1
		t.Error("padded empty string should produce grams")
	}
	if got := QGrams("abc", 0); len(got) != 3 {
		t.Errorf("q<1 should clamp to 1, got %v", got)
	}
}

func TestJaccard(t *testing.T) {
	if JaccardQGrams("night", "nacht", 2) <= 0 {
		t.Error("night/nacht share grams")
	}
	if JaccardQGrams("same", "same", 2) != 1 {
		t.Error("identical strings should be 1")
	}
	if JaccardTokens("red usb cable", "usb cable red") != 1 {
		t.Error("token Jaccard is order-insensitive")
	}
	if JaccardTokens("", "") != 1 {
		t.Error("both empty = 1")
	}
}

func TestTokenizeNormalize(t *testing.T) {
	toks := Tokenize("USB-Cable, 2m (Black)")
	want := []string{"usb", "cable", "2m", "black"}
	if len(toks) != len(want) {
		t.Fatalf("Tokenize = %v", toks)
	}
	for i := range toks {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
	if Normalize("  USB--Cable  2M ") != "usb cable 2m" {
		t.Errorf("Normalize = %q", Normalize("  USB--Cable  2M "))
	}
}

func TestMongeElkan(t *testing.T) {
	if MongeElkan("usb cable", "cable usb premium") < 0.9 {
		t.Error("token-reordered strings should score high")
	}
	if MongeElkanSym("", "") != 1 {
		t.Error("empty vs empty = 1")
	}
	a := MongeElkan("a b c", "a")
	b := MongeElkan("a", "a b c")
	if a == b {
		t.Error("MongeElkan should be asymmetric on these inputs")
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", ""},
		{"123", ""},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCorpusCosine(t *testing.T) {
	c := NewCorpus()
	docs := []string{
		"usb cable black 2m",
		"usb cable white 1m",
		"wireless mouse optical",
		"mechanical keyboard rgb",
	}
	for _, d := range docs {
		c.Add(d)
	}
	if c.Size() != 4 {
		t.Error("Size wrong")
	}
	sim := c.Cosine("usb cable black", "usb cable white")
	dis := c.Cosine("usb cable black", "mechanical keyboard rgb")
	if sim <= dis {
		t.Errorf("cable-vs-cable (%f) should beat cable-vs-keyboard (%f)", sim, dis)
	}
	if got := c.Cosine("", ""); got != 1 {
		t.Errorf("empty cosine = %f, want 1", got)
	}
	if got := c.Cosine("usb", ""); got != 0 {
		t.Errorf("one-empty cosine = %f, want 0", got)
	}
}

func TestTopTokens(t *testing.T) {
	c := NewCorpus()
	c.Add("a b")
	c.Add("a c")
	c.Add("a b")
	top := c.TopTokens(2)
	if len(top) != 2 || top[0] != "a" || top[1] != "b" {
		t.Errorf("TopTokens = %v", top)
	}
	if len(c.TopTokens(100)) != 3 {
		t.Error("TopTokens should clamp")
	}
}

// Property: Levenshtein is a metric — symmetry and identity.
func TestLevenshteinMetricProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := Levenshtein(a, b)
		return d == Levenshtein(b, a) && (d == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Levenshtein triangle inequality on short strings.
func TestLevenshteinTriangleProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		sa := genStr(a)
		sb := genStr(b)
		sc := genStr(c)
		return Levenshtein(sa, sc) <= Levenshtein(sa, sb)+Levenshtein(sb, sc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func genStr(seed uint16) string {
	alphabet := "abcd"
	var b strings.Builder
	for i := 0; i < int(seed%12); i++ {
		seed = seed*31 + 7
		b.WriteByte(alphabet[int(seed)%len(alphabet)])
	}
	return b.String()
}

// Property: all similarity measures stay within [0,1] and score identity 1.
func TestSimilarityBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		for _, s := range []float64{
			LevenshteinSimilarity(a, b), Jaro(a, b), JaroWinkler(a, b),
			JaccardQGrams(a, b, 2), JaccardTokens(a, b), MongeElkanSym(a, b),
		} {
			if s < -1e-9 || s > 1+1e-9 || math.IsNaN(s) {
				return false
			}
		}
		return JaroWinkler(a, a) > 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
