// Package text implements the string similarity and normalisation
// primitives used throughout the wrangling pipeline: edit distances for
// schema matching (§4.1 of Furche et al.), token and q-gram measures for
// entity resolution blocking, and TF-IDF cosine similarity for
// instance-based matching.
//
// All similarity functions return values in [0, 1] where 1 means identical;
// all distance functions return non-negative counts.
package text

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance (insert/delete/substitute, unit
// cost) between a and b, computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshtein returns the edit distance allowing adjacent
// transpositions (optimal string alignment variant).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	d := make([][]int, n+1)
	for i := range d {
		d[i] = make([]int, m+1)
		d[i][0] = i
	}
	for j := 0; j <= m; j++ {
		d[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[n][m]
}

// LevenshteinSimilarity normalises Levenshtein distance into [0,1]:
// 1 - dist/max(len). Two empty strings are identical (1).
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Scratch holds the reusable match buffers behind the rune-based
// similarity fast paths (JaroRunes and friends), so hot loops scoring
// millions of pairs allocate nothing per call. The zero value is ready to
// use. A Scratch must not be shared between goroutines.
type Scratch struct {
	matchA, matchB []bool
}

// bufs returns two zeroed bool buffers of the requested lengths, growing
// the scratch storage as needed.
func (s *Scratch) bufs(la, lb int) ([]bool, []bool) {
	if cap(s.matchA) < la {
		s.matchA = make([]bool, la)
	} else {
		s.matchA = s.matchA[:la]
		clear(s.matchA)
	}
	if cap(s.matchB) < lb {
		s.matchB = make([]bool, lb)
	} else {
		s.matchB = s.matchB[:lb]
		clear(s.matchB)
	}
	return s.matchA, s.matchB
}

// Jaro returns the Jaro similarity of a and b in [0,1].
func Jaro(a, b string) float64 {
	var sc Scratch
	return JaroRunes([]rune(a), []rune(b), &sc)
}

// JaroRunes is Jaro over pre-converted rune slices with caller-owned
// scratch — the allocation-free form for hot loops that compare the same
// precomputed strings against many candidates.
func JaroRunes(ra, rb []rune, sc *Scratch) float64 {
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA, matchB := sc.bufs(la, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix
// (up to 4 runes) with scaling factor 0.1, the standard parameters.
func JaroWinkler(a, b string) float64 {
	var sc Scratch
	return JaroWinklerRunes([]rune(a), []rune(b), &sc)
}

// JaroWinklerRunes is JaroWinkler over pre-converted rune slices with
// caller-owned scratch.
func JaroWinklerRunes(ra, rb []rune, sc *Scratch) float64 {
	j := JaroRunes(ra, rb, sc)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// QGrams returns the multiset of q-grams of s (padded with q-1 '#' on both
// ends, the standard padding for blocking keys). q must be >= 1.
func QGrams(s string, q int) []string {
	if q < 1 {
		q = 1
	}
	pad := strings.Repeat("#", q-1)
	padded := []rune(pad + s + pad)
	if len(padded) < q {
		return nil
	}
	out := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// JaccardQGrams returns the Jaccard coefficient of the q-gram sets of a and
// b.
func JaccardQGrams(a, b string, q int) float64 {
	sa := toSet(QGrams(a, q))
	sb := toSet(QGrams(b, q))
	return jaccardSets(sa, sb)
}

// JaccardTokens returns the Jaccard coefficient over whitespace-delimited,
// case-folded tokens.
func JaccardTokens(a, b string) float64 {
	return jaccardSets(toSet(Tokenize(a)), toSet(Tokenize(b)))
}

func toSet(items []string) map[string]bool {
	s := make(map[string]bool, len(items))
	for _, it := range items {
		s[it] = true
	}
	return s
}

func jaccardSets(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Tokenize lowercases s and splits it on any non-alphanumeric rune,
// dropping empty tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Normalize lowercases, collapses runs of whitespace and punctuation to a
// single space, and trims. It is the canonical pre-matching normal form.
func Normalize(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// MongeElkan computes the Monge-Elkan similarity: the mean over tokens of a
// of the best JaroWinkler match in b's tokens. It is asymmetric; use
// MongeElkanSym for a symmetric score.
func MongeElkan(a, b string) float64 {
	var sc Scratch
	return MongeElkanTokens(TokenRunes(Tokenize(a)), TokenRunes(Tokenize(b)), &sc)
}

// MongeElkanSym returns the mean of MongeElkan in both directions.
func MongeElkanSym(a, b string) float64 {
	var sc Scratch
	ta, tb := TokenRunes(Tokenize(a)), TokenRunes(Tokenize(b))
	return (MongeElkanTokens(ta, tb, &sc) + MongeElkanTokens(tb, ta, &sc)) / 2
}

// TokenRunes converts a token list to rune slices, the form the
// allocation-free Monge-Elkan fast path consumes. Callers precomputing
// per-row token state do this once per row instead of once per pair.
func TokenRunes(toks []string) [][]rune {
	if len(toks) == 0 {
		return nil
	}
	out := make([][]rune, len(toks))
	for i, t := range toks {
		out[i] = []rune(t)
	}
	return out
}

// MongeElkanTokens is MongeElkan over pre-tokenized, pre-converted token
// lists with caller-owned scratch: the mean over ta of the best
// JaroWinkler match in tb.
func MongeElkanTokens(ta, tb [][]rune, sc *Scratch) float64 {
	if len(ta) == 0 {
		if len(tb) == 0 {
			return 1
		}
		return 0
	}
	sum := 0.0
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := JaroWinklerRunes(x, y, sc); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// MongeElkanSymTokens returns the mean of MongeElkanTokens in both
// directions.
func MongeElkanSymTokens(ta, tb [][]rune, sc *Scratch) float64 {
	return (MongeElkanTokens(ta, tb, sc) + MongeElkanTokens(tb, ta, sc)) / 2
}

// Soundex returns the classic 4-character Soundex code of the first word of
// s (letter + 3 digits), or "" if s contains no ASCII letter.
func Soundex(s string) string {
	code := func(r rune) byte {
		switch r {
		case 'b', 'f', 'p', 'v':
			return '1'
		case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
			return '2'
		case 'd', 't':
			return '3'
		case 'l':
			return '4'
		case 'm', 'n':
			return '5'
		case 'r':
			return '6'
		}
		return 0
	}
	s = strings.ToLower(s)
	var first rune
	var rest []rune
	for i, r := range s {
		if r >= 'a' && r <= 'z' {
			first = r
			rest = []rune(s[i+1:])
			break
		}
	}
	if first == 0 {
		return ""
	}
	out := []byte{byte(unicode.ToUpper(first))}
	prev := code(first)
	for _, r := range rest {
		if r < 'a' || r > 'z' {
			prev = 0
			continue
		}
		c := code(r)
		if c != 0 && c != prev {
			out = append(out, c)
			if len(out) == 4 {
				break
			}
		}
		if r != 'h' && r != 'w' {
			prev = c
		}
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Corpus accumulates documents for TF-IDF weighting. Add documents, then
// call Cosine to compare two texts with inverse-document-frequency
// weighting over the corpus vocabulary.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// Add registers one document's tokens in the document-frequency table.
func (c *Corpus) Add(doc string) {
	c.docs++
	seen := make(map[string]bool)
	for _, tok := range Tokenize(doc) {
		if !seen[tok] {
			seen[tok] = true
			c.df[tok]++
		}
	}
}

// Size returns the number of documents added.
func (c *Corpus) Size() int { return c.docs }

// idf returns smoothed inverse document frequency for a token.
func (c *Corpus) idf(tok string) float64 {
	return math.Log(float64(1+c.docs) / float64(1+c.df[tok]))
}

// Cosine returns TF-IDF cosine similarity of two texts under the corpus
// weights. Unknown tokens get maximal IDF.
func (c *Corpus) Cosine(a, b string) float64 {
	va := c.vector(a)
	vb := c.vector(b)
	if len(va) == 0 && len(vb) == 0 {
		return 1
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for k, w := range va {
		na += w * w
		if wb, ok := vb[k]; ok {
			dot += w * wb
		}
	}
	for _, w := range vb {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func (c *Corpus) vector(s string) map[string]float64 {
	tf := make(map[string]float64)
	for _, tok := range Tokenize(s) {
		tf[tok]++
	}
	for k, v := range tf {
		tf[k] = (1 + math.Log(v)) * c.idf(k)
	}
	return tf
}

// TopTokens returns the n most frequent tokens in the corpus vocabulary,
// ties broken lexicographically — useful for diagnostics.
func (c *Corpus) TopTokens(n int) []string {
	type tc struct {
		tok string
		n   int
	}
	all := make([]tc, 0, len(c.df))
	for k, v := range c.df {
		all = append(all, tc{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].tok < all[j].tok
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].tok
	}
	return out
}
