// External test package: core imports report (published snapshot versions
// carry a prebuilt report), so the wrangler-backed integration test lives
// outside package report to avoid an import cycle.
package report_test

import (
	"testing"

	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/report"
	"repro/internal/sources"
)

// Integration: build a report from a live wrangler and check supporters
// are populated.
func TestBuildFromWrangler(t *testing.T) {
	w := sources.NewWorld(81, 120, 0)
	cfg := sources.DefaultConfig(81, 5)
	cfg.CleanShare = 1
	cfg.StaleMax = 0
	u := sources.Generate(w, cfg)
	dc := context.NewDataContext().WithTaxonomy(ontology.ProductTaxonomy())
	wr := core.New(u, core.ProductConfig(), nil, dc)
	if _, err := wr.Run(); err != nil {
		t.Fatal(err)
	}
	r := report.Build(wr, "price intelligence", []string{"price"})
	if len(r.Lines) == 0 {
		t.Fatal("empty report")
	}
	withSupport := 0
	for _, l := range r.Lines {
		if len(l.Supporters) > 0 {
			withSupport++
		}
	}
	if withSupport < len(r.Lines)/2 {
		t.Errorf("only %d/%d lines have supporters", withSupport, len(r.Lines))
	}
}
