// Package report renders wrangled data as the reports Example 5 of the
// paper describes: "reports are studied by the data scientists ... who can
// annotate the data values in the report, for example, to identify which
// are correct or incorrect". Each report line carries the fused value,
// its confidence, the conflict flag and the supporting sources, plus a
// ready-made annotation handle (entity + attribute) so a reader's verdict
// can be posted straight back as feedback.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fusion"
)

// Line is one (entity, attribute) of the report.
type Line struct {
	Entity     string
	Attribute  string
	Value      string
	Confidence float64
	Conflict   bool
	Supporters []string // sources backing the fused value
}

// AnnotationHandle returns the (entity, attribute) pair a reader's
// feedback item should carry.
func (l Line) AnnotationHandle() (string, string) { return l.Entity, l.Attribute }

// Report is a rendered snapshot of fused results.
type Report struct {
	Title string
	Lines []Line
}

// ResultSource is the slice of a wrangler a report is built from: the
// fused results plus the fusion bookkeeping that says which sources back
// each fused value. *core.Wrangler satisfies it; keeping it an interface
// lets the serving layer publish prebuilt reports without the report
// package depending on the orchestrator.
type ResultSource interface {
	Results() []fusion.Result
	ClaimSupporters(entity, attribute string) []string
}

// Build assembles a report from a wrangler's current results, restricted
// to the given attributes (nil = all). Lines are sorted by entity then
// attribute; low-confidence lines sort identically but are marked.
func Build(w ResultSource, title string, attributes []string) *Report {
	want := map[string]bool{}
	for _, a := range attributes {
		want[a] = true
	}
	r := &Report{Title: title}
	for _, res := range w.Results() {
		if len(want) > 0 && !want[res.Attribute] {
			continue
		}
		if res.Value.IsNull() {
			continue
		}
		r.Lines = append(r.Lines, Line{
			Entity:     res.Entity,
			Attribute:  res.Attribute,
			Value:      res.Value.String(),
			Confidence: res.Confidence,
			Conflict:   res.Conflict,
			Supporters: w.ClaimSupporters(res.Entity, res.Attribute),
		})
	}
	sort.Slice(r.Lines, func(i, j int) bool {
		if r.Lines[i].Entity != r.Lines[j].Entity {
			return r.Lines[i].Entity < r.Lines[j].Entity
		}
		return r.Lines[i].Attribute < r.Lines[j].Attribute
	})
	return r
}

// Filter returns a retitled report restricted to the given attributes
// (none = all lines). Lines are shared with the receiver, not copied —
// filtering a committed snapshot report allocates only the line slice.
func (r *Report) Filter(title string, attributes ...string) *Report {
	out := &Report{Title: title}
	if len(attributes) == 0 {
		out.Lines = append(out.Lines, r.Lines...)
		return out
	}
	want := map[string]bool{}
	for _, a := range attributes {
		want[a] = true
	}
	for _, l := range r.Lines {
		if want[l.Attribute] {
			out.Lines = append(out.Lines, l)
		}
	}
	return out
}

// Conflicted returns only the lines where sources disagreed — the lines a
// reviewer should look at first.
func (r *Report) Conflicted() []Line {
	var out []Line
	for _, l := range r.Lines {
		if l.Conflict {
			out = append(out, l)
		}
	}
	return out
}

// LowConfidence returns lines whose fused confidence is below the
// threshold, sorted ascending by confidence — the cheapest places to
// spend a feedback budget.
func (r *Report) LowConfidence(threshold float64) []Line {
	var out []Line
	for _, l := range r.Lines {
		if l.Confidence < threshold {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence < out[j].Confidence
		}
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}

// Format renders the report as aligned text, flagging conflicts with '!'
// and listing supporters.
func (r *Report) Format(maxLines int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s (%d lines) ===\n", r.Title, len(r.Lines))
	n := len(r.Lines)
	if maxLines > 0 && maxLines < n {
		n = maxLines
	}
	for _, l := range r.Lines[:n] {
		flag := " "
		if l.Conflict {
			flag = "!"
		}
		fmt.Fprintf(&b, "%s %-12s %-10s %-32s conf=%.2f  [%s]\n",
			flag, l.Entity, l.Attribute, truncate(l.Value, 32), l.Confidence, strings.Join(l.Supporters, ","))
	}
	if len(r.Lines) > n {
		fmt.Fprintf(&b, "… %d more lines\n", len(r.Lines)-n)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Summary aggregates the report: line count, conflict share and mean
// confidence.
type Summary struct {
	Lines          int
	Conflicts      int
	MeanConfidence float64
}

// Summarise computes the summary.
func (r *Report) Summarise() Summary {
	s := Summary{Lines: len(r.Lines)}
	sum := 0.0
	for _, l := range r.Lines {
		if l.Conflict {
			s.Conflicts++
		}
		sum += l.Confidence
	}
	if s.Lines > 0 {
		s.MeanConfidence = sum / float64(s.Lines)
	}
	return s
}

// FromResults builds a report directly from fusion results (without a
// wrangler), for tests and offline rendering. Supporters are left empty.
func FromResults(title string, results []fusion.Result, attributes []string) *Report {
	want := map[string]bool{}
	for _, a := range attributes {
		want[a] = true
	}
	r := &Report{Title: title}
	for _, res := range results {
		if len(want) > 0 && !want[res.Attribute] {
			continue
		}
		if res.Value.IsNull() {
			continue
		}
		r.Lines = append(r.Lines, Line{
			Entity:     res.Entity,
			Attribute:  res.Attribute,
			Value:      res.Value.String(),
			Confidence: res.Confidence,
			Conflict:   res.Conflict,
		})
	}
	sort.Slice(r.Lines, func(i, j int) bool {
		if r.Lines[i].Entity != r.Lines[j].Entity {
			return r.Lines[i].Entity < r.Lines[j].Entity
		}
		return r.Lines[i].Attribute < r.Lines[j].Attribute
	})
	return r
}
