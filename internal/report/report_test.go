package report

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fusion"
)

func results() []fusion.Result {
	return []fusion.Result{
		{Entity: "e2", Attribute: "price", Value: dataset.Float(4.99), Confidence: 0.9, Conflict: false},
		{Entity: "e1", Attribute: "price", Value: dataset.Float(7.50), Confidence: 0.55, Conflict: true},
		{Entity: "e1", Attribute: "name", Value: dataset.String("USB Cable"), Confidence: 1.0},
		{Entity: "e3", Attribute: "price", Value: dataset.Null(), Confidence: 0},
		{Entity: "e1", Attribute: "brand", Value: dataset.String("Anker"), Confidence: 0.8},
	}
}

func TestFromResultsSortedAndFiltered(t *testing.T) {
	r := FromResults("prices", results(), []string{"price"})
	if len(r.Lines) != 2 {
		t.Fatalf("lines = %d", len(r.Lines))
	}
	if r.Lines[0].Entity != "e1" || r.Lines[1].Entity != "e2" {
		t.Errorf("not sorted: %+v", r.Lines)
	}
	all := FromResults("all", results(), nil)
	if len(all.Lines) != 4 { // null dropped
		t.Errorf("all lines = %d, want 4", len(all.Lines))
	}
}

func TestConflictedAndLowConfidence(t *testing.T) {
	r := FromResults("all", results(), nil)
	conf := r.Conflicted()
	if len(conf) != 1 || conf[0].Entity != "e1" || conf[0].Attribute != "price" {
		t.Errorf("conflicted = %+v", conf)
	}
	low := r.LowConfidence(0.85)
	if len(low) != 2 {
		t.Fatalf("low confidence = %+v", low)
	}
	if low[0].Confidence > low[1].Confidence {
		t.Error("low-confidence lines not ascending")
	}
}

func TestFormat(t *testing.T) {
	r := FromResults("demo", results(), nil)
	s := r.Format(2)
	if !strings.Contains(s, "demo") || !strings.Contains(s, "more lines") {
		t.Errorf("format = %s", s)
	}
	full := r.Format(0)
	if strings.Contains(full, "more lines") {
		t.Error("maxLines=0 should render everything")
	}
	if !strings.Contains(full, "!") {
		t.Error("conflict flag missing")
	}
}

func TestSummarise(t *testing.T) {
	r := FromResults("all", results(), nil)
	s := r.Summarise()
	if s.Lines != 4 || s.Conflicts != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanConfidence <= 0 || s.MeanConfidence > 1 {
		t.Errorf("mean confidence = %f", s.MeanConfidence)
	}
	empty := &Report{}
	if es := empty.Summarise(); es.Lines != 0 || es.MeanConfidence != 0 {
		t.Errorf("empty summary = %+v", es)
	}
}

func TestAnnotationHandle(t *testing.T) {
	l := Line{Entity: "e1", Attribute: "price"}
	e, a := l.AnnotationHandle()
	if e != "e1" || a != "price" {
		t.Error("handle wrong")
	}
}
