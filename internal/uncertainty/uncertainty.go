// Package uncertainty implements the explicit uncertainty representation
// and principled evidence combination that §4.2 of Furche et al. demands:
// "it is important that uncertainty is represented explicitly and reasoned
// with systematically, so that well informed decisions can build on a sound
// understanding of the available evidence."
//
// The package offers three combination rules over binary hypotheses
// ("this value/match/duplicate is correct"):
//
//   - Bayesian updating with per-source reliabilities,
//   - linear opinion pooling (reliability-weighted averaging), and
//   - Dempster-Shafer mass combination on the frame {true, false},
//     which distinguishes uncertainty (mass on the whole frame) from
//     balanced conflict.
//
// plus calibration utilities (Brier score) used by experiment E9.
package uncertainty

import (
	"errors"
	"math"
)

// Evidence is one observation about a binary hypothesis from a source with
// a given reliability: the probability the source reports correctly.
// Supports reliabilities in (0,1); 0.5 is an uninformative source.
type Evidence struct {
	Supports    bool    // does the source assert the hypothesis?
	Reliability float64 // P(source correct), in (0,1)
}

// ErrNoEvidence is returned by combiners when called with nothing to
// combine.
var ErrNoEvidence = errors.New("uncertainty: no evidence")

// clampRel bounds reliability away from 0 and 1 so likelihood ratios stay
// finite; extreme inputs are treated as very strong rather than absolute.
func clampRel(r float64) float64 {
	const eps = 1e-6
	if r < eps {
		return eps
	}
	if r > 1-eps {
		return 1 - eps
	}
	return r
}

// BayesCombine updates the prior P(h) with independent evidence items and
// returns the posterior P(h | evidence). Each supporting observation from a
// source with reliability r multiplies the odds by r/(1-r); a contradicting
// observation divides them.
func BayesCombine(prior float64, ev []Evidence) (float64, error) {
	if len(ev) == 0 {
		return 0, ErrNoEvidence
	}
	prior = clampRel(prior)
	logOdds := math.Log(prior / (1 - prior))
	for _, e := range ev {
		r := clampRel(e.Reliability)
		lr := math.Log(r / (1 - r))
		if e.Supports {
			logOdds += lr
		} else {
			logOdds -= lr
		}
	}
	return 1 / (1 + math.Exp(-logOdds)), nil
}

// PoolCombine returns the reliability-weighted linear opinion pool: each
// source votes 1 (supports) or 0 (contradicts) weighted by how far its
// reliability is from uninformative (|r-0.5|·2).
func PoolCombine(ev []Evidence) (float64, error) {
	if len(ev) == 0 {
		return 0, ErrNoEvidence
	}
	num, den := 0.0, 0.0
	for _, e := range ev {
		w := math.Abs(clampRel(e.Reliability)-0.5) * 2
		if w == 0 {
			continue
		}
		vote := 0.0
		if e.Supports == (e.Reliability >= 0.5) {
			vote = 1 // an unreliable source contradicting is weak support
		}
		num += w * vote
		den += w
	}
	if den == 0 {
		return 0.5, nil
	}
	return num / den, nil
}

// Mass is a Dempster-Shafer mass assignment on the frame {T, F}: belief in
// true, belief in false, and the remainder on the whole frame (ignorance).
// T + F + U must equal 1 up to rounding.
type Mass struct {
	T, F, U float64
}

// NewMass builds a mass function from an evidence item: a source with
// reliability r asserting the hypothesis contributes mass r to T and 1-r to
// ignorance (not to F — absence of trust is not evidence of falsity).
func NewMass(e Evidence) Mass {
	r := clampRel(e.Reliability)
	if e.Supports {
		return Mass{T: r, U: 1 - r}
	}
	return Mass{F: r, U: 1 - r}
}

// Combine applies Dempster's rule of combination to two mass functions on
// {T, F}. The conflict mass K = a.T·b.F + a.F·b.T is renormalised away; the
// returned conflict value reports K for diagnostics. Total conflict (K=1)
// returns full ignorance.
func (a Mass) Combine(b Mass) (Mass, float64) {
	k := a.T*b.F + a.F*b.T
	if 1-k < 1e-12 {
		return Mass{U: 1}, k
	}
	t := a.T*b.T + a.T*b.U + a.U*b.T
	f := a.F*b.F + a.F*b.U + a.U*b.F
	u := a.U * b.U
	// Renormalise by the actual component sum rather than 1-k to keep the
	// mass exactly valid under floating-point rounding.
	sum := t + f + u
	if sum < 1e-300 {
		return Mass{U: 1}, k
	}
	return Mass{T: t / sum, F: f / sum, U: u / sum}, k
}

// DSCombine folds Dempster's rule over all evidence and returns the final
// mass plus the maximum pairwise-step conflict observed.
func DSCombine(ev []Evidence) (Mass, float64, error) {
	if len(ev) == 0 {
		return Mass{}, 0, ErrNoEvidence
	}
	m := NewMass(ev[0])
	maxK := 0.0
	for _, e := range ev[1:] {
		var k float64
		m, k = m.Combine(NewMass(e))
		if k > maxK {
			maxK = k
		}
	}
	return m, maxK, nil
}

// Belief returns the lower probability of the hypothesis (mass on T) and
// Plausibility the upper (1 - mass on F).
func (m Mass) Belief() float64 { return m.T }

// Plausibility returns 1 minus the belief committed against the hypothesis.
func (m Mass) Plausibility() float64 { return 1 - m.F }

// Valid reports whether the mass function is non-negative and sums to ~1.
func (m Mass) Valid() bool {
	return m.T >= -1e-9 && m.F >= -1e-9 && m.U >= -1e-9 &&
		math.Abs(m.T+m.F+m.U-1) < 1e-6
}

// BrierScore measures calibration of probabilistic predictions against
// boolean outcomes: mean squared error of (p - outcome). Lower is better;
// 0.25 is the score of always predicting 0.5.
func BrierScore(preds []float64, outcomes []bool) (float64, error) {
	if len(preds) == 0 || len(preds) != len(outcomes) {
		return 0, errors.New("uncertainty: preds and outcomes must be same non-zero length")
	}
	sum := 0.0
	for i, p := range preds {
		o := 0.0
		if outcomes[i] {
			o = 1
		}
		sum += (p - o) * (p - o)
	}
	return sum / float64(len(preds)), nil
}

// Entropy returns the binary entropy of p in bits — a scalar summary of how
// uncertain a working-data annotation is.
func Entropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
