package uncertainty

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBayesCombineBasics(t *testing.T) {
	if _, err := BayesCombine(0.5, nil); err == nil {
		t.Error("no evidence should error")
	}
	p, err := BayesCombine(0.5, []Evidence{{Supports: true, Reliability: 0.9}})
	if err != nil || math.Abs(p-0.9) > 1e-9 {
		t.Errorf("single 0.9 supporter from even prior = %f, want 0.9", p)
	}
	p, _ = BayesCombine(0.5, []Evidence{{true, 0.9}, {false, 0.9}})
	if math.Abs(p-0.5) > 1e-9 {
		t.Errorf("balanced evidence should return prior, got %f", p)
	}
	p, _ = BayesCombine(0.5, []Evidence{{true, 0.8}, {true, 0.8}, {true, 0.8}})
	if p <= 0.8 {
		t.Errorf("agreeing evidence should compound: %f", p)
	}
}

func TestBayesUninformativeSource(t *testing.T) {
	p, _ := BayesCombine(0.3, []Evidence{{true, 0.5}})
	if math.Abs(p-0.3) > 1e-9 {
		t.Errorf("r=0.5 source should not move prior: %f", p)
	}
}

func TestBayesExtremeReliabilityClamped(t *testing.T) {
	p, err := BayesCombine(0.5, []Evidence{{true, 1.0}, {false, 0.0}})
	if err != nil || math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("extreme reliabilities must stay finite: %f %v", p, err)
	}
}

func TestPoolCombine(t *testing.T) {
	if _, err := PoolCombine(nil); err == nil {
		t.Error("no evidence should error")
	}
	p, _ := PoolCombine([]Evidence{{true, 0.9}, {true, 0.9}})
	if p != 1 {
		t.Errorf("all reliable supporters should pool to 1, got %f", p)
	}
	p, _ = PoolCombine([]Evidence{{true, 0.9}, {false, 0.9}})
	if math.Abs(p-0.5) > 1e-9 {
		t.Errorf("balanced pool = %f, want 0.5", p)
	}
	p, _ = PoolCombine([]Evidence{{true, 0.5}})
	if p != 0.5 {
		t.Errorf("only-uninformative pool should be 0.5, got %f", p)
	}
}

func TestNewMass(t *testing.T) {
	m := NewMass(Evidence{true, 0.7})
	if math.Abs(m.T-0.7) > 1e-9 || m.F != 0 || math.Abs(m.U-0.3) > 1e-9 {
		t.Errorf("supporting mass = %+v", m)
	}
	m = NewMass(Evidence{false, 0.6})
	if m.T != 0 || math.Abs(m.F-0.6) > 1e-9 {
		t.Errorf("contradicting mass = %+v", m)
	}
	if !m.Valid() {
		t.Error("mass should be valid")
	}
}

func TestDempsterCombination(t *testing.T) {
	a := NewMass(Evidence{true, 0.8})
	b := NewMass(Evidence{true, 0.7})
	c, k := a.Combine(b)
	if !c.Valid() {
		t.Fatalf("combined mass invalid: %+v", c)
	}
	if k != 0 {
		t.Errorf("agreeing masses should have zero conflict, got %f", k)
	}
	if c.T <= a.T || c.T <= b.T {
		t.Error("agreement should increase belief")
	}
	// Conflict case.
	d, k2 := a.Combine(NewMass(Evidence{false, 0.7}))
	if k2 <= 0 {
		t.Error("opposing masses should conflict")
	}
	if !d.Valid() {
		t.Errorf("conflicted mass invalid: %+v", d)
	}
	if d.Belief() > d.Plausibility() {
		t.Error("belief must not exceed plausibility")
	}
}

func TestDSCombine(t *testing.T) {
	if _, _, err := DSCombine(nil); err == nil {
		t.Error("no evidence should error")
	}
	m, maxK, err := DSCombine([]Evidence{{true, 0.8}, {true, 0.6}, {false, 0.55}})
	if err != nil || !m.Valid() {
		t.Fatalf("DSCombine failed: %+v %v", m, err)
	}
	if maxK <= 0 {
		t.Error("mixed evidence should report conflict")
	}
	if m.Belief() <= m.F {
		t.Error("majority support should dominate")
	}
}

func TestTotalConflict(t *testing.T) {
	a := Mass{T: 1}
	b := Mass{F: 1}
	c, k := a.Combine(b)
	if math.Abs(k-1) > 1e-9 {
		t.Errorf("total conflict k = %f", k)
	}
	if c.U != 1 {
		t.Errorf("total conflict should yield ignorance, got %+v", c)
	}
}

func TestBrierScore(t *testing.T) {
	if _, err := BrierScore(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := BrierScore([]float64{0.5}, []bool{true, false}); err == nil {
		t.Error("length mismatch should error")
	}
	s, _ := BrierScore([]float64{1, 0}, []bool{true, false})
	if s != 0 {
		t.Errorf("perfect predictions should score 0, got %f", s)
	}
	s, _ = BrierScore([]float64{0.5, 0.5}, []bool{true, false})
	if math.Abs(s-0.25) > 1e-9 {
		t.Errorf("coin-flip predictions should score 0.25, got %f", s)
	}
}

func TestEntropy(t *testing.T) {
	if Entropy(0.5) != 1 {
		t.Errorf("H(0.5) = %f, want 1", Entropy(0.5))
	}
	if Entropy(0) != 0 || Entropy(1) != 0 {
		t.Error("degenerate entropy should be 0")
	}
	if Entropy(0.9) >= Entropy(0.6) {
		t.Error("entropy should decrease away from 0.5")
	}
}

// Property: Bayes posterior stays in (0,1) and is monotone in the amount of
// supporting evidence.
func TestBayesBoundsProperty(t *testing.T) {
	f := func(n uint8, relPct uint8) bool {
		rel := 0.5 + float64(relPct%50)/100 // [0.5, 1)
		count := int(n%10) + 1
		ev := make([]Evidence, count)
		for i := range ev {
			ev[i] = Evidence{Supports: true, Reliability: rel}
		}
		p1, err1 := BayesCombine(0.5, ev[:1])
		pn, errn := BayesCombine(0.5, ev)
		if err1 != nil || errn != nil {
			return false
		}
		// With many strong supporters the posterior saturates to 1.0 in
		// floating point; the bound is inclusive on that side.
		return p1 > 0 && p1 < 1 && pn > 0 && pn <= 1 && pn >= p1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dempster combination preserves mass validity and is
// commutative.
func TestDempsterCommutativeProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		ea := Evidence{Supports: a1%2 == 0, Reliability: 0.01 + float64(a2%99)/100}
		eb := Evidence{Supports: b1%2 == 0, Reliability: 0.01 + float64(b2%99)/100}
		ma, mb := NewMass(ea), NewMass(eb)
		ab, _ := ma.Combine(mb)
		ba, _ := mb.Combine(ma)
		return ab.Valid() && ba.Valid() &&
			math.Abs(ab.T-ba.T) < 1e-9 && math.Abs(ab.F-ba.F) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: belief <= plausibility always.
func TestBeliefPlausibilityProperty(t *testing.T) {
	f := func(items []bool) bool {
		if len(items) == 0 {
			return true
		}
		ev := make([]Evidence, len(items))
		for i, s := range items {
			ev[i] = Evidence{Supports: s, Reliability: 0.7}
		}
		m, _, err := DSCombine(ev)
		return err == nil && m.Belief() <= m.Plausibility()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
