package extract

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/html"
	"repro/internal/ontology"
	"repro/internal/text"
)

// RepairReport summarises what a joint wrapper+data repair did.
type RepairReport struct {
	Reinduced   bool // wrapper no longer matched and was re-learned
	Relabelled  int  // fields whose property label was corrected
	UnitFixes   int  // cells divided by 100 after unit-drift detection
	RowsChecked int  // rows corroborated against master data
}

// Repair performs WADaR-style joint wrapper and data repair [29]: it
// (1) re-induces the wrapper if template drift broke the record selector,
// (2) re-labels extracted columns by corroborating their values against
// master data from the data context, and (3) repairs systematic value
// errors (unit drift) it can attribute to the extraction rather than the
// source. It returns the repaired wrapper, the repaired extraction, and a
// report. master may be nil, in which case only structural repair happens
// (the no-data-context ablation of experiment E3).
func Repair(w *Wrapper, page *html.Node, master *dataset.Table, tax *ontology.Taxonomy) (*Wrapper, *dataset.Table, RepairReport, error) {
	var rep RepairReport
	table, err := w.Run(page)
	if err != nil || table.Len() == 0 {
		// Structural breakage: re-induce from the current page.
		nw, ierr := Induce(w.SourceID, page, tax)
		if ierr != nil {
			return w, nil, rep, fmt.Errorf("extract: repair of %s failed: %w", w.SourceID, ierr)
		}
		rep.Reinduced = true
		w = nw
		table, err = w.Run(page)
		if err != nil {
			return w, nil, rep, fmt.Errorf("extract: re-induced wrapper still fails: %w", err)
		}
	}
	if master == nil || master.Len() == 0 {
		return w, table, rep, nil
	}
	// Corroborate column labels against master data.
	relabelled := relabelColumns(w, table, master)
	rep.Relabelled = relabelled
	if relabelled > 0 {
		// Re-run not needed: relabelColumns renames the table in place.
	}
	// Unit-drift repair on numeric columns shared with master.
	fixes, checked := RepairUnits(table, master)
	rep.UnitFixes = fixes
	rep.RowsChecked = checked
	return w, table, rep, nil
}

// relabelColumns aligns extracted columns to master columns by value
// agreement and renames both the table schema and the wrapper field
// properties when the evidence disagrees with the current label. Returns
// the number of corrected fields.
func relabelColumns(w *Wrapper, table *dataset.Table, master *dataset.Table) int {
	var cands []assign
	for c := range table.Schema() {
		colVals, _ := table.Column(table.Schema()[c].Name)
		for mc := range master.Schema() {
			mVals, _ := master.Column(master.Schema()[mc].Name)
			s := columnAgreement(colVals, mVals)
			if s > 0.3 {
				cands = append(cands, assign{col: c, masterCol: mc, score: s})
			}
		}
	}
	// Greedy best-first assignment.
	sortAssigns(cands)
	usedCol := map[int]bool{}
	usedMaster := map[int]bool{}
	renames := 0
	for _, a := range cands {
		if usedCol[a.col] || usedMaster[a.masterCol] {
			continue
		}
		usedCol[a.col] = true
		usedMaster[a.masterCol] = true
		want := master.Schema()[a.masterCol].Name
		have := table.Schema()[a.col].Name
		if have == want {
			continue
		}
		// Rename in the table schema (in place) and wrapper field.
		if table.Schema().Index(want) >= 0 {
			continue // avoid collision
		}
		table.Schema()[a.col].Name = want
		for i := range w.Fields {
			name := w.Fields[i].Property
			if name == "" {
				name = strings.ToLower(strings.TrimSpace(w.Fields[i].Header))
			}
			if name == have {
				w.Fields[i].Property = want
				break
			}
		}
		renames++
	}
	return renames
}

// assign is a candidate (extracted column, master column) alignment.
type assign struct {
	col, masterCol int
	score          float64
}

func sortAssigns(cands []assign) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].score > cands[j-1].score; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// columnAgreement estimates how well two value lists describe the same
// attribute: the fraction of sampled extracted values with a close match in
// the master column (exact normalised equality for text, 2% relative
// tolerance or exact ×100 unit drift for numbers).
func columnAgreement(col, master []dataset.Value) float64 {
	if len(col) == 0 || len(master) == 0 {
		return 0
	}
	masterText := map[string]bool{}
	var masterNums []float64
	for _, v := range master {
		if v.IsNull() {
			continue
		}
		if v.IsNumeric() {
			masterNums = append(masterNums, v.FloatVal())
		}
		masterText[text.Normalize(v.String())] = true
	}
	sample := col
	if len(sample) > 50 {
		sample = sample[:50]
	}
	hits, total := 0, 0
	for _, v := range sample {
		if v.IsNull() {
			continue
		}
		total++
		if v.IsNumeric() {
			f := v.FloatVal()
			for _, m := range masterNums {
				if closeRel(f, m, 0.02) || closeRel(f, m*100, 0.02) || closeRel(f*100, m, 0.02) {
					hits++
					break
				}
			}
			continue
		}
		if masterText[text.Normalize(v.String())] {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func closeRel(a, b, tol float64) bool {
	if b == 0 {
		return math.Abs(a) < tol
	}
	return math.Abs(a-b)/math.Abs(b) <= tol
}

// RepairUnits detects columns whose numeric values are systematically ~100×
// the master values for the same attribute (prices published in cents) and
// divides them. The check requires a shared key column ("sku" or exact
// normalised "name") to pair rows. Returns (#cells fixed, #rows checked).
// It is exposed separately so the orchestrator can corroborate CSV/JSON
// extractions too, not only wrapper output.
func RepairUnits(table, master *dataset.Table) (int, int) {
	keyCol, masterKey := sharedKey(table, master)
	if keyCol == "" {
		return 0, 0
	}
	// Index master rows by key.
	idx := map[string]dataset.Record{}
	kc := master.Schema().Index(masterKey)
	for _, r := range master.Rows() {
		if !r[kc].IsNull() {
			idx[text.Normalize(r[kc].String())] = r
		}
	}
	fixes, checked := 0, 0
	tk := table.Schema().Index(keyCol)
	for c, f := range table.Schema() {
		mc := master.Schema().Index(f.Name)
		if mc < 0 || c == tk {
			continue
		}
		// Measure the ×100 ratio rate over paired rows.
		drifted, paired := 0, 0
		for _, r := range table.Rows() {
			mr, ok := idx[text.Normalize(r[tk].String())]
			if !ok || r[c].IsNull() || mr[mc].IsNull() || !r[c].IsNumeric() || !mr[mc].IsNumeric() {
				continue
			}
			paired++
			if closeRel(r[c].FloatVal(), mr[mc].FloatVal()*100, 0.05) {
				drifted++
			}
		}
		checked += paired
		if paired >= 3 && float64(drifted) >= 0.6*float64(paired) {
			// Systematic unit drift: divide the whole column.
			for i := 0; i < table.Len(); i++ {
				v := table.Row(i)[c]
				if v.IsNumeric() {
					table.Row(i)[c] = dataset.Float(v.FloatVal() / 100)
					fixes++
				}
			}
		}
	}
	return fixes, checked
}

// RepairUnitCells fixes individual numeric cells that sit at ~100× the
// master value for the same key — per-record unit errors that column-level
// drift detection (RepairUnits) correctly leaves alone because they are
// not systematic. Only rows whose key appears in the master data are
// touched. Returns the number of cells fixed.
func RepairUnitCells(table, master *dataset.Table) int {
	keyCol, masterKey := sharedKey(table, master)
	if keyCol == "" {
		return 0
	}
	idx := map[string]dataset.Record{}
	kc := master.Schema().Index(masterKey)
	for _, r := range master.Rows() {
		if !r[kc].IsNull() {
			idx[text.Normalize(r[kc].String())] = r
		}
	}
	fixes := 0
	tk := table.Schema().Index(keyCol)
	for c, f := range table.Schema() {
		mc := master.Schema().Index(f.Name)
		if mc < 0 || c == tk {
			continue
		}
		for i := 0; i < table.Len(); i++ {
			r := table.Row(i)
			mr, ok := idx[text.Normalize(r[tk].String())]
			if !ok || r[c].IsNull() || mr[mc].IsNull() || !r[c].IsNumeric() || !mr[mc].IsNumeric() {
				continue
			}
			// A cell sitting 40-250× above the master value is a unit
			// error, not a price move (which stays within a small factor):
			// the wide band tolerates unit drift compounded with staleness.
			if mv := mr[mc].FloatVal(); mv > 0 {
				ratio := r[c].FloatVal() / mv
				if ratio >= 40 && ratio <= 250 {
					table.Row(i)[c] = dataset.Float(r[c].FloatVal() / 100)
					fixes++
				}
			}
		}
	}
	return fixes
}

// sharedKey finds a join key present in both tables: "sku" preferred, then
// "name".
func sharedKey(table, master *dataset.Table) (string, string) {
	for _, k := range []string{"sku", "id", "name"} {
		if table.Schema().Index(k) >= 0 && master.Schema().Index(k) >= 0 {
			return k, k
		}
	}
	return "", ""
}

// Validate scores a wrapper against a page without mutating anything: it
// reports the fraction of expected fields populated. Orchestrators use it
// to decide when repair is needed (quality analysis on extractions).
func Validate(w *Wrapper, page *html.Node) float64 {
	table, err := w.Run(page)
	if err != nil || table.Len() == 0 {
		return 0
	}
	filled, total := 0, 0
	for _, r := range table.Rows() {
		for _, v := range r {
			total++
			if !v.IsNull() {
				filled++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(filled) / float64(total)
}

// MasterFromContext builds the master table used for corroboration out of
// canonical (sku, name, price) triples. Convenience for callers that hold
// reference data as Go structs rather than tables.
func MasterFromContext(skus, names []string, prices []float64) *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i := range skus {
		name, price := "", 0.0
		if i < len(names) {
			name = names[i]
		}
		if i < len(prices) {
			price = prices[i]
		}
		t.AppendValues(dataset.String(skus[i]), dataset.String(name), dataset.Float(price))
	}
	return t
}

// UnlabelledFields returns the indices of wrapper fields with no canonical
// property label — the ones data-context corroboration should try to name.
func (w *Wrapper) UnlabelledFields() []int {
	var out []int
	for i, f := range w.Fields {
		if f.Property == "" {
			out = append(out, i)
		}
	}
	return out
}
