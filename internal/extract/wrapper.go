// Package extract implements the Data Extraction component of the
// abstract wrangling architecture (Figure 1 of Furche et al.): fully
// automated wrapper induction over deep-web listing pages in the style of
// DIADEM/DEXTER [19, 30], wrapper execution producing syntactically
// consistent tables, and joint wrapper+data repair in the style of WADaR
// [29] — extraction "informed by existing integrated data" (§2.2, §4.1).
//
// Induction is unsupervised: it finds the repeated record structure on a
// page (the element whose children are many structurally similar subtrees),
// derives one selector per field position, and labels fields with canonical
// properties using the data context (ontology property vocabulary plus
// value-shape analysis).
package extract

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/html"
	"repro/internal/ontology"
)

// FieldRule extracts one attribute from a record subtree.
type FieldRule struct {
	Selector string // selector relative to the record node
	Property string // canonical property name ("" if unlabelled)
	Header   string // source-side label if one was visible
	Index    int    // fallback: i-th leaf text position within the record
}

// Wrapper is an induced extraction program for one source: a record
// selector plus per-field rules. Wrappers are working-data artefacts; the
// orchestrator stores them with provenance and quality annotations.
type Wrapper struct {
	SourceID       string
	RecordSelector string
	Fields         []FieldRule
	Confidence     float64 // induction confidence in [0,1]
}

// Clone returns an independent copy of the wrapper. Repair mutates
// wrappers in place (relabelling field properties), so reusing a stored
// wrapper for a new processing round must not alias the stored one.
func (w *Wrapper) Clone() *Wrapper {
	if w == nil {
		return nil
	}
	c := *w
	c.Fields = append([]FieldRule(nil), w.Fields...)
	return &c
}

// Induce learns a wrapper from a parsed listing page. It returns an error
// when no repeated record structure can be found. The optional taxonomy
// labels fields with canonical properties; pass nil to skip labelling
// (ablation: extraction without data context).
func Induce(sourceID string, page *html.Node, tax *ontology.Taxonomy) (*Wrapper, error) {
	recordNodes, selector := findRecordSet(page)
	if len(recordNodes) < 2 {
		return nil, fmt.Errorf("extract: no repeated record structure on page of %s", sourceID)
	}
	fields := induceFields(recordNodes, tax)
	if len(fields) == 0 {
		return nil, fmt.Errorf("extract: records of %s have no extractable fields", sourceID)
	}
	conf := structuralConfidence(recordNodes)
	return &Wrapper{
		SourceID:       sourceID,
		RecordSelector: selector,
		Fields:         fields,
		Confidence:     conf,
	}, nil
}

// findRecordSet locates the repeated record structure: the parent element
// whose element children contain the largest group of structurally similar
// siblings (same tag, same class set), returning the group and a selector
// that finds them. Header rows (th cells) are excluded.
func findRecordSet(page *html.Node) ([]*html.Node, string) {
	type candidate struct {
		nodes    []*html.Node
		selector string
		score    float64
	}
	var best candidate
	page.Walk(func(n *html.Node) bool {
		if n.Type != html.ElementNode {
			return true
		}
		groups := map[string][]*html.Node{}
		for _, c := range n.ElementChildren() {
			if isHeaderish(c) {
				continue
			}
			key := c.Tag + "|" + canonicalClass(c)
			groups[key] = append(groups[key], c)
		}
		for key, nodes := range groups {
			if len(nodes) < 2 {
				continue
			}
			// Records must carry text.
			textful := 0
			for _, nd := range nodes {
				if nd.Text() != "" {
					textful++
				}
			}
			if textful < 2 {
				continue
			}
			// Score: group size × mean subtree size (records are substantial).
			meanSize := 0.0
			for _, nd := range nodes {
				meanSize += float64(subtreeSize(nd))
			}
			meanSize /= float64(len(nodes))
			score := float64(len(nodes)) * meanSize
			if score > best.score {
				parts := strings.SplitN(key, "|", 2)
				sel := parts[0]
				if parts[1] != "" {
					sel += "." + strings.ReplaceAll(parts[1], " ", ".")
				}
				best = candidate{nodes: nodes, selector: sel, score: score}
			}
		}
		return true
	})
	return best.nodes, best.selector
}

func isHeaderish(n *html.Node) bool {
	if n.Tag == "thead" || n.Tag == "th" {
		return true
	}
	for _, c := range n.ElementChildren() {
		if c.Tag == "th" {
			return true
		}
	}
	return false
}

// canonicalClass returns the sorted class list of a node, joined by space.
func canonicalClass(n *html.Node) string {
	fields := strings.Fields(n.Attr("class"))
	sort.Strings(fields)
	return strings.Join(fields, " ")
}

func subtreeSize(n *html.Node) int {
	size := 0
	n.Walk(func(*html.Node) bool { size++; return true })
	return size
}

// leafField is one text-bearing position inside a record subtree.
type leafField struct {
	path   string // tag/class path relative to record root
	header string // embedded label if the page shows one ("Price: …")
	values []string
}

// induceFields aligns the leaf text positions across record instances and
// produces one rule per stable position.
func induceFields(records []*html.Node, tax *ontology.Taxonomy) []FieldRule {
	// Collect per-record leaves keyed by relative structural path.
	byPath := map[string]*leafField{}
	var pathOrder []string
	for _, rec := range records {
		leaves := collectLeaves(rec)
		for _, lf := range leaves {
			f, ok := byPath[lf.path]
			if !ok {
				f = &leafField{path: lf.path, header: lf.header}
				byPath[lf.path] = f
				pathOrder = append(pathOrder, lf.path)
			}
			if f.header == "" && lf.header != "" {
				f.header = lf.header
			}
			f.values = append(f.values, lf.values...)
		}
	}
	// Constant-valued positions across many records are template
	// boilerplate (e.g. <dt> labels); attach the constant as the header of
	// the following position and drop the boilerplate field itself.
	skip := map[string]bool{}
	if len(records) > 3 {
		for i, p := range pathOrder {
			f := byPath[p]
			if c, ok := constantValue(f.values); ok && len(f.values) >= len(records) {
				skip[p] = true
				if i+1 < len(pathOrder) {
					next := byPath[pathOrder[i+1]]
					if next.header == "" {
						next.header = strings.TrimSuffix(strings.TrimSpace(c), ":")
					}
				}
			}
		}
	}
	// Keep positions present in at least half the records; drop positions
	// that match multiple nodes per record (ambiguous selectors, e.g. the
	// shared <dt> path in definition lists).
	threshold := len(records) / 2
	maxCount := len(records)*3/2 + 1
	var fields []FieldRule
	for idx, p := range pathOrder {
		f := byPath[p]
		if skip[p] || len(f.values) < threshold || len(f.values) > maxCount {
			continue
		}
		rule := FieldRule{Selector: pathToSelector(p), Header: f.header, Index: idx}
		rule.Property = labelField(f, tax)
		fields = append(fields, rule)
	}
	return fields
}

// constantValue reports whether every non-empty value is identical.
func constantValue(values []string) (string, bool) {
	c := ""
	for _, v := range values {
		if v == "" {
			continue
		}
		if c == "" {
			c = v
		} else if v != c {
			return "", false
		}
	}
	return c, c != ""
}

// collectLeaves walks a record subtree and returns its text positions. For
// "label: value" markup (e.g. <b>Price:</b> 4.99 or <dt>price</dt><dd>…)
// the label is captured as header rather than value.
func collectLeaves(rec *html.Node) []leafField {
	var out []leafField
	var walk func(n *html.Node, path string)
	walk = func(n *html.Node, path string) {
		if n.Type == html.ElementNode {
			step := n.Tag
			if cc := canonicalClass(n); cc != "" {
				step += "." + strings.ReplaceAll(cc, " ", ".")
			}
			if path != "" {
				path = path + ">" + step
			} else {
				path = step
			}
		}
		// A node is a leaf position if it has direct text content.
		direct := directText(n)
		if n.Type == html.ElementNode && direct != "" {
			header, value := splitLabelled(n, direct)
			if header == "" {
				header = siblingLabel(n)
			}
			out = append(out, leafField{path: path, header: header, values: []string{value}})
		}
		for _, c := range n.Children {
			if c.Type == html.ElementNode {
				walk(c, path)
			}
		}
	}
	for _, c := range rec.ElementChildren() {
		walk(c, "")
	}
	return out
}

// directText returns the concatenated text of n's direct text children and
// of inline label children (b/strong), normalised.
func directText(n *html.Node) string {
	var b strings.Builder
	for _, c := range n.Children {
		if c.Type == html.TextNode {
			b.WriteString(c.Data)
			b.WriteByte(' ')
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// splitLabelled separates "Label: value" patterns. It checks an inline
// <b>/<strong>/<dt> label child first, then a "label:" textual prefix.
func splitLabelled(n *html.Node, direct string) (header, value string) {
	for _, c := range n.ElementChildren() {
		if c.Tag == "b" || c.Tag == "strong" || c.Tag == "label" {
			h := strings.TrimSuffix(strings.TrimSpace(c.Text()), ":")
			return h, direct
		}
	}
	if i := strings.Index(direct, ":"); i > 0 && i < 30 && !strings.HasPrefix(direct[i+1:], "//") {
		head := direct[:i]
		if !strings.ContainsAny(head, "0123456789") {
			return strings.TrimSpace(head), strings.TrimSpace(direct[i+1:])
		}
	}
	return "", direct
}

// siblingLabel returns the text of an immediately preceding label-ish
// sibling (dt, th, label) — the "definition list" labelling convention.
func siblingLabel(n *html.Node) string {
	if n.Parent == nil {
		return ""
	}
	var prev *html.Node
	for _, sib := range n.Parent.ElementChildren() {
		if sib == n {
			break
		}
		prev = sib
	}
	if prev != nil && (prev.Tag == "dt" || prev.Tag == "th" || prev.Tag == "label") {
		return strings.TrimSuffix(strings.TrimSpace(prev.Text()), ":")
	}
	return ""
}

// pathToSelector converts a relative structural path into a selector.
func pathToSelector(path string) string {
	return strings.ReplaceAll(path, ">", " > ")
}

// labelField assigns a canonical property to a field using, in order:
// the visible header via the ontology property vocabulary, then value-shape
// heuristics (prices look like money, ratings like small decimals, SKUs
// like code patterns).
func labelField(f *leafField, tax *ontology.Taxonomy) string {
	if tax != nil && f.header != "" {
		if canon, conf := tax.CanonicalProperty(f.header); canon != "" && conf >= 0.75 {
			return canon
		}
	}
	return shapeLabel(f.values)
}

// shapeLabel inspects value shapes and guesses a property. It is the
// fallback when no header evidence exists.
func shapeLabel(values []string) string {
	if len(values) == 0 {
		return ""
	}
	n := len(values)
	codes, money, small, urls, dates, texts := 0, 0, 0, 0, 0, 0
	for _, v := range values {
		v = strings.TrimSpace(v)
		switch {
		case v == "":
		case looksLikeCode(v):
			codes++
		case strings.HasPrefix(v, "http"):
			urls++
		case looksLikeDate(v):
			dates++
		case looksLikeMoney(v):
			money++
			if looksLikeSmallDecimal(v) {
				small++
			}
		default:
			texts++
		}
	}
	switch {
	case codes*2 > n:
		return "sku"
	case urls*2 > n:
		return "url"
	case dates*2 > n:
		return "updated"
	case money*2 > n:
		// All-money columns whose values fit the 1-5 one-decimal shape are
		// ratings, not prices.
		if small == money {
			return "rating"
		}
		return "price"
	case texts*2 > n:
		return "name"
	}
	return ""
}

func looksLikeCode(v string) bool {
	if len(v) < 5 || strings.Contains(v, " ") {
		return false
	}
	hasDigit, hasUpper, hasDash := false, false, false
	for _, r := range v {
		switch {
		case r >= '0' && r <= '9':
			hasDigit = true
		case r >= 'A' && r <= 'Z':
			hasUpper = true
		case r == '-' || r == '_':
			hasDash = true
		case r >= 'a' && r <= 'z', r == '.':
		default:
			return false
		}
	}
	return hasDigit && (hasUpper || hasDash)
}

func looksLikeMoney(v string) bool {
	v = strings.TrimLeft(v, "$€£ ")
	if v == "" {
		return false
	}
	dot := false
	for _, r := range v {
		if r == '.' {
			if dot {
				return false
			}
			dot = true
			continue
		}
		if r == ',' {
			continue
		}
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func looksLikeSmallDecimal(v string) bool {
	if !looksLikeMoney(v) {
		return false
	}
	var f float64
	if _, err := fmt.Sscanf(strings.TrimLeft(v, "$€£ "), "%f", &f); err != nil {
		return false
	}
	return f >= 0 && f <= 5 && strings.Contains(v, ".")
}

func looksLikeDate(v string) bool {
	return len(v) >= 10 && v[4] == '-' && v[7] == '-'
}

// structuralConfidence measures how uniform the record subtrees are: the
// mean pairwise (sampled) similarity of their tag-path sets.
func structuralConfidence(records []*html.Node) float64 {
	if len(records) < 2 {
		return 0
	}
	sigs := make([]map[string]bool, len(records))
	for i, r := range records {
		sig := map[string]bool{}
		for _, lf := range collectLeaves(r) {
			sig[lf.path] = true
		}
		sigs[i] = sig
	}
	pairs, sum := 0, 0.0
	step := len(records)/20 + 1
	for i := 0; i < len(records); i += step {
		j := (i + step) % len(records)
		if j == i {
			continue
		}
		sum += setJaccard(sigs[i], sigs[j])
		pairs++
	}
	if pairs == 0 {
		return 1
	}
	return sum / float64(pairs)
}

func setJaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Run executes the wrapper against a page and returns the extracted table.
// Columns are named by canonical property when labelled, otherwise by the
// visible header, otherwise "field_i". Values are type-inferred.
func (w *Wrapper) Run(page *html.Node) (*dataset.Table, error) {
	recSel, err := html.Compile(w.RecordSelector)
	if err != nil {
		return nil, fmt.Errorf("extract: bad record selector %q: %w", w.RecordSelector, err)
	}
	records := recSel.Find(page)
	if len(records) == 0 {
		return nil, fmt.Errorf("extract: wrapper for %s matched no records", w.SourceID)
	}
	schema := make(dataset.Schema, 0, len(w.Fields))
	used := map[string]bool{}
	fieldSels := make([]*html.Selector, len(w.Fields))
	for i, f := range w.Fields {
		name := f.Property
		if name == "" {
			name = strings.ToLower(strings.TrimSpace(f.Header))
		}
		if name == "" {
			name = fmt.Sprintf("field_%d", f.Index)
		}
		for used[name] {
			name += "_x"
		}
		used[name] = true
		schema = append(schema, dataset.Field{Name: name, Kind: dataset.KindString})
		if f.Selector != "" {
			fieldSels[i], _ = html.Compile(f.Selector)
		}
	}
	out := dataset.NewTable(schema)
	for _, rec := range records {
		row := make(dataset.Record, len(w.Fields))
		for i := range w.Fields {
			row[i] = dataset.Null()
			if fieldSels[i] == nil {
				continue
			}
			if node := fieldSels[i].FindFirst(rec); node != nil {
				_, value := splitLabelled(node, directText(node))
				row[i] = dataset.Parse(value)
			}
		}
		out.Append(row)
	}
	return out, nil
}
