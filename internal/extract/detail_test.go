package extract

import (
	"testing"

	"repro/internal/html"
	"repro/internal/ontology"
	"repro/internal/sources"
)

// detailPages renders every record of an HTML source as its own page.
func detailPages(s *sources.Source) []*html.Node {
	pages := make([]*html.Node, 0, len(s.Records))
	for i := range s.Records {
		pages = append(pages, html.Parse(s.Template.RenderDetailPage(s, i)))
	}
	return pages
}

func htmlSource(t *testing.T, seed int64) *sources.Source {
	t.Helper()
	u := universe(t, seed, 3)
	return u.Sources[0]
}

func TestInduceDetailNeedsTwoPages(t *testing.T) {
	s := htmlSource(t, 61)
	pages := detailPages(s)
	if _, err := InduceDetail(s.ID, pages[:1], nil); err == nil {
		t.Error("one page should not suffice")
	}
}

func TestInduceDetailExtractsFields(t *testing.T) {
	s := htmlSource(t, 62)
	pages := detailPages(s)
	w, err := InduceDetail(s.ID, pages[:5], ontology.ProductTaxonomy())
	if err != nil {
		t.Fatal(err)
	}
	if w.RecordSelector != "body" {
		t.Errorf("selector = %q", w.RecordSelector)
	}
	table, err := ExtractSite(w, pages)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != len(s.Records) {
		t.Fatalf("extracted %d records from %d pages", table.Len(), len(s.Records))
	}
	// The canonical fields must carry the right values.
	for _, prop := range []string{"sku", "name", "price"} {
		c := table.Schema().Index(prop)
		if c < 0 {
			t.Errorf("column %s missing (schema %v)", prop, table.Schema().Names())
			continue
		}
		hits := 0
		for i := 0; i < table.Len(); i++ {
			if table.Row(i)[c].String() == s.Records[i].Values[prop] {
				hits++
			}
		}
		if hits < table.Len()*9/10 {
			t.Errorf("column %s correct on %d/%d pages", prop, hits, table.Len())
		}
	}
}

func TestInduceDetailDropsBoilerplate(t *testing.T) {
	s := htmlSource(t, 63)
	pages := detailPages(s)
	w, err := InduceDetail(s.ID, pages[:6], ontology.ProductTaxonomy())
	if err != nil {
		t.Fatal(err)
	}
	table, err := ExtractSite(w, pages[:3])
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range table.Schema().Names() {
		for i := 0; i < table.Len(); i++ {
			v := table.Get(i, name).String()
			if v == "home" || v == "All rights reserved. Contact us for wholesale pricing." {
				t.Errorf("boilerplate leaked into column %s: %q", name, v)
			}
		}
	}
}

func TestRunDetailOnEmptyPage(t *testing.T) {
	s := htmlSource(t, 64)
	pages := detailPages(s)
	w, err := InduceDetail(s.ID, pages[:4], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.RunDetail(html.Parse("")); err == nil {
		t.Error("empty page should fail")
	}
}

func TestExtractSiteEmpty(t *testing.T) {
	w := &Wrapper{RecordSelector: "body", Fields: []FieldRule{{Selector: "dd", Index: 0}}}
	table, err := ExtractSite(w, nil)
	if err != nil || table.Len() != 0 {
		t.Error("no pages should yield empty table")
	}
}
