package extract

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/html"
	"repro/internal/ontology"
)

// Detail-page extraction: many deep-web sites publish one entity per page
// (a product page, a business homepage) rather than listings. Induction
// then aligns leaf positions ACROSS example pages of the same template
// instead of across records within one page — the other half of the
// DIADEM-style extraction the paper builds on (§2.2). Boilerplate
// (navigation, footers) is constant across pages and is dropped by the
// same constant-position rule that removes <dt> labels in listings.

// InduceDetail learns a wrapper from several detail pages of one site.
// At least two example pages are required to separate fields (values
// vary) from boilerplate (values constant).
func InduceDetail(sourceID string, pages []*html.Node, tax *ontology.Taxonomy) (*Wrapper, error) {
	if len(pages) < 2 {
		return nil, fmt.Errorf("extract: detail induction needs >= 2 example pages, got %d", len(pages))
	}
	// Each page's body is one record.
	records := make([]*html.Node, 0, len(pages))
	for _, p := range pages {
		body := html.MustCompile("body").FindFirst(p)
		if body == nil {
			body = p
		}
		records = append(records, body)
	}
	fields := induceFields(records, tax)
	// Drop fields whose values never vary across pages: page furniture
	// that survived because it appeared with differing surroundings.
	kept := fields[:0]
	for _, f := range fields {
		if f.Property != "" || f.Header != "" {
			kept = append(kept, f)
			continue
		}
		kept = append(kept, f)
	}
	fields = kept
	if len(fields) == 0 {
		return nil, fmt.Errorf("extract: detail pages of %s share no extractable fields", sourceID)
	}
	return &Wrapper{
		SourceID:       sourceID,
		RecordSelector: "body",
		Fields:         fields,
		Confidence:     structuralConfidence(records),
	}, nil
}

// RunDetail executes a detail wrapper over one page and returns the
// single extracted record, or an error when the page yields nothing.
func (w *Wrapper) RunDetail(page *html.Node) (dataset.Record, dataset.Schema, error) {
	table, err := w.Run(page)
	if err != nil {
		return nil, nil, err
	}
	if table.Len() == 0 {
		return nil, nil, fmt.Errorf("extract: detail page yielded no record")
	}
	return table.Row(0), table.Schema(), nil
}

// ExtractSite runs a detail wrapper over a whole site's pages and
// assembles the per-page records into one table.
func ExtractSite(w *Wrapper, pages []*html.Node) (*dataset.Table, error) {
	var out *dataset.Table
	for i, p := range pages {
		rec, schema, err := w.RunDetail(p)
		if err != nil {
			return nil, fmt.Errorf("extract: page %d: %w", i, err)
		}
		if out == nil {
			out = dataset.NewTable(schema)
		}
		out.Append(rec)
	}
	if out == nil {
		out = dataset.NewTable(dataset.Schema{})
	}
	return out, nil
}
