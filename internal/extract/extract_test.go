package extract

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/html"
	"repro/internal/ontology"
	"repro/internal/sources"
)

// universe builds a small HTML-only product universe for extraction tests.
func universe(t *testing.T, seed int64, n int) *sources.Universe {
	t.Helper()
	w := sources.NewWorld(seed, 150, 0)
	cfg := sources.DefaultConfig(seed, n)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 0, 0, 1
	cfg.CleanShare = 1 // keep veracity out of structural tests
	cfg.StaleMax = 0
	return sources.Generate(w, cfg)
}

func TestInduceFindsAllRecords(t *testing.T) {
	u := universe(t, 11, 6)
	tax := ontology.ProductTaxonomy()
	for _, s := range u.Sources {
		page := html.Parse(s.Payload())
		w, err := Induce(s.ID, page, tax)
		if err != nil {
			t.Fatalf("induce %s (%s): %v", s.ID, s.Template.Family, err)
		}
		table, err := w.Run(page)
		if err != nil {
			t.Fatalf("run %s: %v", s.ID, err)
		}
		if table.Len() != len(s.Records) {
			t.Errorf("%s (%s family): extracted %d rows, want %d",
				s.ID, s.Template.Family, table.Len(), len(s.Records))
		}
		if w.Confidence < 0.5 {
			t.Errorf("%s: confidence %f too low for uniform template", s.ID, w.Confidence)
		}
	}
}

func TestInduceLabelsCanonicalProperties(t *testing.T) {
	u := universe(t, 12, 8)
	tax := ontology.ProductTaxonomy()
	labelled, total := 0, 0
	for _, s := range u.Sources {
		page := html.Parse(s.Payload())
		w, err := Induce(s.ID, page, tax)
		if err != nil {
			t.Fatalf("induce: %v", err)
		}
		table, err := w.Run(page)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"sku", "name", "price"} {
			total++
			if table.Schema().Index(want) >= 0 {
				labelled++
			}
		}
	}
	// Card/list families expose headers; table family relies on shape
	// heuristics. Expect the majority labelled.
	if float64(labelled) < 0.6*float64(total) {
		t.Errorf("only %d/%d mandatory fields labelled", labelled, total)
	}
}

func TestInduceExtractsCorrectValues(t *testing.T) {
	u := universe(t, 13, 4)
	tax := ontology.ProductTaxonomy()
	s := u.Sources[0]
	page := html.Parse(s.Payload())
	w, err := Induce(s.ID, page, tax)
	if err != nil {
		t.Fatal(err)
	}
	table, err := w.Run(page)
	if err != nil {
		t.Fatal(err)
	}
	nameCol := table.Schema().Index("name")
	if nameCol < 0 {
		t.Skip("name column not labelled on this template")
	}
	got := map[string]bool{}
	for _, r := range table.Rows() {
		got[r[nameCol].String()] = true
	}
	misses := 0
	for _, rec := range s.Records {
		if !got[rec.Values["name"]] {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d/%d names not extracted verbatim", misses, len(s.Records))
	}
}

func TestInduceNoRecords(t *testing.T) {
	page := html.Parse("<html><body><p>just an article, no listings</p></body></html>")
	if _, err := Induce("s", page, nil); err == nil {
		t.Error("pages without repeated structure should fail induction")
	}
}

func TestInduceWithoutTaxonomyStillWorks(t *testing.T) {
	u := universe(t, 14, 3)
	s := u.Sources[0]
	page := html.Parse(s.Payload())
	w, err := Induce(s.ID, page, nil)
	if err != nil {
		t.Fatal(err)
	}
	table, err := w.Run(page)
	if err != nil || table.Len() != len(s.Records) {
		t.Fatalf("no-context induction should still extract rows: %v", err)
	}
}

func TestValidate(t *testing.T) {
	u := universe(t, 15, 3)
	s := u.Sources[0]
	page := html.Parse(s.Payload())
	w, err := Induce(s.ID, page, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := Validate(w, page); v < 0.8 {
		t.Errorf("validate on clean source = %f, want >=0.8", v)
	}
	if v := Validate(w, html.Parse("<html><body></body></html>")); v != 0 {
		t.Errorf("validate on empty page = %f, want 0", v)
	}
}

func TestRepairAfterTemplateDrift(t *testing.T) {
	u := universe(t, 16, 4)
	tax := ontology.ProductTaxonomy()
	s := u.Sources[0]
	page := html.Parse(s.Payload())
	w, err := Induce(s.ID, page, tax)
	if err != nil {
		t.Fatal(err)
	}
	// Site redesign.
	rng := rand.New(rand.NewSource(99))
	s.Template.Drift(rng)
	newPage := html.Parse(s.Payload())
	if v := Validate(w, newPage); v > 0.5 {
		t.Skipf("drift did not break this wrapper (validate=%f)", v)
	}
	w2, table, rep, err := Repair(w, newPage, nil, tax)
	if err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	if !rep.Reinduced {
		t.Error("repair should have re-induced")
	}
	if table.Len() != len(s.Records) {
		t.Errorf("repaired extraction has %d rows, want %d", table.Len(), len(s.Records))
	}
	if w2.RecordSelector == w.RecordSelector && w2.Confidence == w.Confidence {
		t.Error("repair should produce a new wrapper")
	}
}

func TestRepairRelabelsWithMasterData(t *testing.T) {
	u := universe(t, 17, 6)
	// Build master data from the world.
	world := u.World
	var skus, names []string
	var prices []float64
	for _, p := range world.Products {
		skus = append(skus, p.SKU)
		names = append(names, p.Name)
		prices = append(prices, p.Price)
	}
	master := MasterFromContext(skus, names, prices)

	// Induce WITHOUT taxonomy: the table-family sources lack inline
	// headers, so several fields stay unlabelled or shape-guessed.
	var s *sources.Source
	for _, cand := range u.Sources {
		if cand.Template.Family == "table" {
			s = cand
			break
		}
	}
	if s == nil {
		t.Skip("no table-family source in this universe")
	}
	page := html.Parse(s.Payload())
	w, err := Induce(s.ID, page, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, table, rep, err := Repair(w, page, master, nil)
	if err != nil {
		t.Fatal(err)
	}
	// After corroboration the canonical columns must exist.
	for _, want := range []string{"sku", "name", "price"} {
		if table.Schema().Index(want) < 0 {
			t.Errorf("column %s not recovered via master data (relabelled=%d, schema=%v)",
				want, rep.Relabelled, table.Schema().Names())
		}
	}
}

func TestRepairFixesUnitDrift(t *testing.T) {
	// Build a master and a table whose price column is in cents.
	master := MasterFromContext(
		[]string{"A", "B", "C", "D"},
		[]string{"a", "b", "c", "d"},
		[]float64{4.99, 7.50, 12.00, 3.25},
	)
	table := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i, sku := range []string{"A", "B", "C", "D"} {
		table.AppendValues(dataset.String(sku), dataset.Float([]float64{499, 750, 1200, 325}[i]))
	}
	fixes, checked := RepairUnits(table, master)
	if fixes != 4 {
		t.Fatalf("fixes = %d, want 4 (checked %d)", fixes, checked)
	}
	if got := table.Get(0, "price").FloatVal(); got != 4.99 {
		t.Errorf("price after repair = %f, want 4.99", got)
	}
}

func TestRepairLeavesCorrectUnitsAlone(t *testing.T) {
	master := MasterFromContext([]string{"A", "B", "C"}, nil, []float64{4.99, 7.50, 12.00})
	table := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i, sku := range []string{"A", "B", "C"} {
		table.AppendValues(dataset.String(sku), dataset.Float([]float64{4.99, 7.50, 12.00}[i]))
	}
	fixes, _ := RepairUnits(table, master)
	if fixes != 0 {
		t.Errorf("correct units should not be fixed, got %d", fixes)
	}
}

func TestShapeLabel(t *testing.T) {
	cases := []struct {
		vals []string
		want string
	}{
		{[]string{"SKU-00001", "SKU-00392", "SKU-11111"}, "sku"},
		{[]string{"4.99", "120.00", "7.35"}, "price"},
		{[]string{"4.5", "2.1", "3.9"}, "rating"},
		{[]string{"https://a.example/x", "https://b.example/y"}, "url"},
		{[]string{"2016-03-15T00:00:00Z", "2016-03-14T10:00:00Z"}, "updated"},
		{[]string{"Anker Premium USB Cable", "Belkin Slim Mouse"}, "name"},
		{nil, ""},
	}
	for _, c := range cases {
		if got := shapeLabel(c.vals); got != c.want {
			t.Errorf("shapeLabel(%v) = %q, want %q", c.vals, got, c.want)
		}
	}
}

func TestUnlabelledFields(t *testing.T) {
	w := &Wrapper{Fields: []FieldRule{{Property: "sku"}, {Property: ""}, {Property: "price"}, {Property: ""}}}
	ul := w.UnlabelledFields()
	if len(ul) != 2 || ul[0] != 1 || ul[1] != 3 {
		t.Errorf("UnlabelledFields = %v", ul)
	}
}

func TestColumnAgreement(t *testing.T) {
	a := []dataset.Value{dataset.String("USB Cable"), dataset.String("HDMI Cable")}
	m := []dataset.Value{dataset.String("usb cable"), dataset.String("hdmi cable"), dataset.String("mouse")}
	if s := columnAgreement(a, m); s != 1 {
		t.Errorf("normalised text agreement = %f, want 1", s)
	}
	nums := []dataset.Value{dataset.Float(499), dataset.Float(750)}
	mnums := []dataset.Value{dataset.Float(4.99), dataset.Float(7.50)}
	if s := columnAgreement(nums, mnums); s != 1 {
		t.Errorf("unit-drift numeric agreement = %f, want 1", s)
	}
	if s := columnAgreement(nil, mnums); s != 0 {
		t.Error("empty column should score 0")
	}
}

func TestRepairIdempotentOnHealthyWrapper(t *testing.T) {
	u := universe(t, 18, 3)
	tax := ontology.ProductTaxonomy()
	s := u.Sources[0]
	page := html.Parse(s.Payload())
	w, err := Induce(s.ID, page, tax)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rep, err := Repair(w, page, nil, tax)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reinduced {
		t.Error("healthy wrapper should not be re-induced")
	}
}

func TestExtractionHandlesDirtyValues(t *testing.T) {
	// Dirty universe: nulls and typos must not break structure.
	w := sources.NewWorld(19, 150, 0)
	cfg := sources.DefaultConfig(19, 4)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 0, 0, 1
	cfg.CleanShare = 0
	cfg.DirtyFactor = 3
	u := sources.Generate(w, cfg)
	tax := ontology.ProductTaxonomy()
	for _, s := range u.Sources {
		page := html.Parse(s.Payload())
		wr, err := Induce(s.ID, page, tax)
		if err != nil {
			t.Fatalf("induce dirty %s: %v", s.ID, err)
		}
		table, err := wr.Run(page)
		if err != nil {
			t.Fatal(err)
		}
		if table.Len() < len(s.Records)*9/10 {
			t.Errorf("%s: extracted %d rows of %d", s.ID, table.Len(), len(s.Records))
		}
	}
}

func TestWrapperRunOnWrongPage(t *testing.T) {
	u := universe(t, 20, 2)
	s := u.Sources[0]
	page := html.Parse(s.Payload())
	w, err := Induce(s.ID, page, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(html.Parse("<html><body><p>x</p></body></html>")); err == nil {
		t.Error("running on a page without records should error")
	}
	w.RecordSelector = "!!!"
	if _, err := w.Run(page); err == nil {
		t.Error("bad selector should error")
	}
}

func TestLooksLikeHelpers(t *testing.T) {
	if !looksLikeCode("SKU-00001") || looksLikeCode("usb cable") {
		t.Error("looksLikeCode wrong")
	}
	if !looksLikeMoney("$4.99") || !looksLikeMoney("1,299.00") || looksLikeMoney("4.9.9") || looksLikeMoney("abc") {
		t.Error("looksLikeMoney wrong")
	}
	if !looksLikeDate("2016-03-15") || looksLikeDate("15/03/2016") {
		t.Error("looksLikeDate wrong")
	}
	if !strings.HasPrefix("https://x", "http") {
		t.Error("sanity")
	}
}
