// Package feedback implements the pay-as-you-go feedback machinery of
// §2.4: a typed feedback store whose items are shared across components
// (one annotation informs source trust, entity resolution and mapping
// selection alike — "feedback of one type should be able to inform many
// different steps", criticising single-task feedback in [6]), plus a
// crowdsourcing simulator with per-worker accuracy and budget accounting
// standing in for the paid micro-task crowds of Example 5.
package feedback

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Kind classifies a feedback item.
type Kind string

// Feedback kinds. Value feedback targets (source, entity, attribute)
// triples; pair feedback targets record pairs; source and wrapper feedback
// target sources.
const (
	ValueCorrect     Kind = "value_correct"
	ValueIncorrect   Kind = "value_incorrect"
	DuplicatePair    Kind = "duplicate"
	NotDuplicatePair Kind = "not_duplicate"
	SourceRelevant   Kind = "source_relevant"
	SourceIrrelevant Kind = "source_irrelevant"
	WrapperOK        Kind = "wrapper_ok"
	WrapperBroken    Kind = "wrapper_broken"
)

// Item is one unit of feedback — one unit of "payment" in the
// pay-as-you-go model, whether from a domain expert or a paid crowd
// worker.
type Item struct {
	Seq       int     // assigned by the store
	Kind      Kind
	SourceID  string  // source concerned (value/source/wrapper kinds)
	Entity    string  // entity id (value kinds)
	Attribute string  // attribute name (value kinds)
	PairKey   string  // canonical pair identifier (pair kinds)
	Worker    string  // who provided it ("expert" or a crowd worker id)
	Cost      float64 // payment units consumed
	Weight    float64 // reliability weight in (0,1]; 1 = trusted expert
}

// PairKey canonicalises a record-pair identifier.
func PairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

// Store accumulates feedback and answers the assimilation queries of the
// downstream components. It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	items []Item
	spent float64
}

// NewStore returns an empty feedback store.
func NewStore() *Store { return &Store{} }

// Add records an item and returns it with its sequence number set. Zero
// weights are promoted to 1 (trusted).
func (s *Store) Add(it Item) Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it.Weight <= 0 {
		it.Weight = 1
	}
	it.Seq = len(s.items) + 1
	s.items = append(s.items, it)
	s.spent += it.Cost
	return it
}

// Len returns the number of items.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Spent returns the total cost of all feedback so far.
func (s *Store) Spent() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.spent
}

// Items returns a copy of all items (in arrival order), optionally
// filtered by kind (empty kind = all).
func (s *Store) Items(kind Kind) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Item, 0, len(s.items))
	for _, it := range s.items {
		if kind == "" || it.Kind == kind {
			out = append(out, it)
		}
	}
	return out
}

// Since returns items with Seq > seq — the increment an orchestrator needs
// to process after its last assimilation point.
func (s *Store) Since(seq int) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Item
	for _, it := range s.items {
		if it.Seq > seq {
			out = append(out, it)
		}
	}
	return out
}

// SourceTrust derives per-source trust from value feedback using a
// weighted Beta-style estimate: (correct + 1) / (correct + incorrect + 2).
// Sources without feedback are absent from the map — this is the shared
// assimilation path from value annotations into fusion weighting.
func (s *Store) SourceTrust() map[string]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pos := map[string]float64{}
	neg := map[string]float64{}
	for _, it := range s.items {
		switch it.Kind {
		case ValueCorrect:
			pos[it.SourceID] += it.Weight
		case ValueIncorrect:
			neg[it.SourceID] += it.Weight
		}
	}
	out := map[string]float64{}
	for src := range pos {
		out[src] = (pos[src] + 1) / (pos[src] + neg[src] + 2)
	}
	for src := range neg {
		if _, done := out[src]; !done {
			out[src] = 1 / (neg[src] + 2)
		}
	}
	return out
}

// PairLabel aggregates duplicate/not-duplicate votes for a pair into a
// single label by weighted majority. ok is false when no votes exist or
// they tie exactly.
func (s *Store) PairLabel(pairKey string) (dup bool, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	score := 0.0
	seen := false
	for _, it := range s.items {
		if it.PairKey != pairKey {
			continue
		}
		switch it.Kind {
		case DuplicatePair:
			score += it.Weight
			seen = true
		case NotDuplicatePair:
			score -= it.Weight
			seen = true
		}
	}
	if !seen || score == 0 {
		return false, false
	}
	return score > 0, true
}

// PairScore returns the net weighted duplicate score of a pair: positive
// means duplicate votes dominate, magnitude reflects confidence. An
// expert label (weight 1) scores ±1; a 3-of-5 crowd majority scores ±0.6.
func (s *Store) PairScore(pairKey string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	score := 0.0
	for _, it := range s.items {
		if it.PairKey != pairKey {
			continue
		}
		switch it.Kind {
		case DuplicatePair:
			score += it.Weight
		case NotDuplicatePair:
			score -= it.Weight
		}
	}
	return score
}

// PairLabels returns every pair with a decided label, sorted by pair key.
func (s *Store) PairLabels() map[string]bool {
	s.mu.RLock()
	keys := map[string]bool{}
	for _, it := range s.items {
		if it.Kind == DuplicatePair || it.Kind == NotDuplicatePair {
			keys[it.PairKey] = true
		}
	}
	s.mu.RUnlock()
	out := map[string]bool{}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if dup, ok := s.PairLabel(k); ok {
			out[k] = dup
		}
	}
	return out
}

// SourceRelevance nets relevance votes per source: positive means
// relevant. Sources without votes are absent.
func (s *Store) SourceRelevance() map[string]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[string]float64{}
	for _, it := range s.items {
		switch it.Kind {
		case SourceRelevant:
			out[it.SourceID] += it.Weight
		case SourceIrrelevant:
			out[it.SourceID] -= it.Weight
		}
	}
	return out
}

// BrokenWrappers returns the sources whose latest wrapper feedback is
// WrapperBroken.
func (s *Store) BrokenWrappers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	last := map[string]Kind{}
	for _, it := range s.items {
		if it.Kind == WrapperOK || it.Kind == WrapperBroken {
			last[it.SourceID] = it.Kind
		}
	}
	var out []string
	for src, k := range last {
		if k == WrapperBroken {
			out = append(out, src)
		}
	}
	sort.Strings(out)
	return out
}

// Worker is one simulated crowd worker: answers are correct with
// probability Accuracy.
type Worker struct {
	ID       string
	Accuracy float64
}

// Crowd simulates paid micro-task crowdsourcing (Example 5): binary
// questions are replicated across workers and majority-aggregated, each
// answer costing CostPerTask.
type Crowd struct {
	Workers     []Worker
	CostPerTask float64
	rng         *rand.Rand
}

// NewCrowd builds a crowd of n workers with accuracies evenly spread in
// [minAcc, maxAcc], deterministic in seed.
func NewCrowd(seed int64, n int, minAcc, maxAcc, costPerTask float64) *Crowd {
	rng := rand.New(rand.NewSource(seed))
	c := &Crowd{CostPerTask: costPerTask, rng: rng}
	for i := 0; i < n; i++ {
		acc := minAcc
		if n > 1 {
			acc += (maxAcc - minAcc) * float64(i) / float64(n-1)
		}
		c.Workers = append(c.Workers, Worker{ID: fmt.Sprintf("w%02d", i), Accuracy: acc})
	}
	return c
}

// Answer is one worker's reply to a binary question.
type Answer struct {
	Worker string
	Value  bool
}

// Ask replicates a binary question (with ground truth `truth`) across k
// randomly chosen workers and returns the majority answer, the individual
// answers and the cost incurred. k is clamped to at least 1; ties resolve
// to false.
func (c *Crowd) Ask(truth bool, k int) (bool, []Answer, float64) {
	if k < 1 {
		k = 1
	}
	answers := make([]Answer, 0, k)
	yes := 0
	for i := 0; i < k; i++ {
		w := c.Workers[c.rng.Intn(len(c.Workers))]
		v := truth
		if c.rng.Float64() > w.Accuracy {
			v = !truth
		}
		if v {
			yes++
		}
		answers = append(answers, Answer{Worker: w.ID, Value: v})
	}
	return yes*2 > k, answers, float64(k) * c.CostPerTask
}

// LabelPairs asks the crowd about each pair (keyed by PairKey with ground
// truth) with k-fold replication, records the aggregated labels in the
// store with weight equal to the empirical majority reliability, and
// returns the total cost.
func (c *Crowd) LabelPairs(store *Store, truths map[string]bool, k int) float64 {
	keys := make([]string, 0, len(truths))
	for key := range truths {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	total := 0.0
	for _, key := range keys {
		label, answers, cost := c.Ask(truths[key], k)
		total += cost
		kind := NotDuplicatePair
		if label {
			kind = DuplicatePair
		}
		agree := 0
		for _, a := range answers {
			if a.Value == label {
				agree++
			}
		}
		weight := float64(agree) / float64(len(answers))
		store.Add(Item{Kind: kind, PairKey: key, Worker: "crowd", Cost: cost, Weight: weight})
	}
	return total
}
