package feedback

import (
	"sync"
	"testing"
)

func TestAddAndQuery(t *testing.T) {
	s := NewStore()
	it := s.Add(Item{Kind: ValueCorrect, SourceID: "s1", Entity: "e1", Attribute: "price", Cost: 1})
	if it.Seq != 1 || it.Weight != 1 {
		t.Errorf("first item = %+v", it)
	}
	s.Add(Item{Kind: ValueIncorrect, SourceID: "s1", Entity: "e2", Attribute: "price", Cost: 1})
	s.Add(Item{Kind: DuplicatePair, PairKey: PairKey("b", "a"), Cost: 0.1})
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Spent() != 2.1 {
		t.Errorf("Spent = %f", s.Spent())
	}
	if got := s.Items(ValueCorrect); len(got) != 1 {
		t.Errorf("filtered items = %d", len(got))
	}
	if got := s.Items(""); len(got) != 3 {
		t.Errorf("all items = %d", len(got))
	}
}

func TestSince(t *testing.T) {
	s := NewStore()
	s.Add(Item{Kind: ValueCorrect, SourceID: "a"})
	s.Add(Item{Kind: ValueCorrect, SourceID: "b"})
	s.Add(Item{Kind: ValueCorrect, SourceID: "c"})
	inc := s.Since(1)
	if len(inc) != 2 || inc[0].SourceID != "b" {
		t.Errorf("Since(1) = %+v", inc)
	}
	if len(s.Since(3)) != 0 {
		t.Error("Since(latest) should be empty")
	}
}

func TestPairKeyCanonical(t *testing.T) {
	if PairKey("x", "a") != PairKey("a", "x") {
		t.Error("PairKey should be order-insensitive")
	}
}

func TestSourceTrust(t *testing.T) {
	s := NewStore()
	for i := 0; i < 8; i++ {
		s.Add(Item{Kind: ValueCorrect, SourceID: "good"})
	}
	s.Add(Item{Kind: ValueIncorrect, SourceID: "good"})
	for i := 0; i < 6; i++ {
		s.Add(Item{Kind: ValueIncorrect, SourceID: "bad"})
	}
	trust := s.SourceTrust()
	if trust["good"] < 0.7 {
		t.Errorf("good trust = %f", trust["good"])
	}
	if trust["bad"] > 0.2 {
		t.Errorf("bad trust = %f", trust["bad"])
	}
	if _, ok := trust["unseen"]; ok {
		t.Error("unseen sources must be absent")
	}
}

func TestSourceTrustWeighted(t *testing.T) {
	s := NewStore()
	s.Add(Item{Kind: ValueCorrect, SourceID: "s", Weight: 0.5})
	s.Add(Item{Kind: ValueIncorrect, SourceID: "s", Weight: 0.5})
	trust := s.SourceTrust()
	// (0.5+1)/(1+2) = 0.5.
	if trust["s"] != 0.5 {
		t.Errorf("balanced weighted trust = %f, want 0.5", trust["s"])
	}
}

func TestPairLabelMajority(t *testing.T) {
	s := NewStore()
	k := PairKey("r1", "r2")
	s.Add(Item{Kind: DuplicatePair, PairKey: k, Weight: 0.6})
	s.Add(Item{Kind: DuplicatePair, PairKey: k, Weight: 0.6})
	s.Add(Item{Kind: NotDuplicatePair, PairKey: k, Weight: 0.9})
	dup, ok := s.PairLabel(k)
	if !ok || !dup {
		t.Errorf("PairLabel = %v,%v want dup (1.2 vs 0.9)", dup, ok)
	}
	if _, ok := s.PairLabel("unknown"); ok {
		t.Error("unknown pair should be !ok")
	}
}

func TestPairLabelTie(t *testing.T) {
	s := NewStore()
	k := PairKey("a", "b")
	s.Add(Item{Kind: DuplicatePair, PairKey: k, Weight: 1})
	s.Add(Item{Kind: NotDuplicatePair, PairKey: k, Weight: 1})
	if _, ok := s.PairLabel(k); ok {
		t.Error("exact tie should be undecided")
	}
}

func TestPairLabels(t *testing.T) {
	s := NewStore()
	s.Add(Item{Kind: DuplicatePair, PairKey: PairKey("a", "b")})
	s.Add(Item{Kind: NotDuplicatePair, PairKey: PairKey("c", "d")})
	labels := s.PairLabels()
	if len(labels) != 2 || !labels[PairKey("a", "b")] || labels[PairKey("c", "d")] {
		t.Errorf("PairLabels = %v", labels)
	}
}

func TestSourceRelevance(t *testing.T) {
	s := NewStore()
	s.Add(Item{Kind: SourceRelevant, SourceID: "s1"})
	s.Add(Item{Kind: SourceRelevant, SourceID: "s1"})
	s.Add(Item{Kind: SourceIrrelevant, SourceID: "s1"})
	s.Add(Item{Kind: SourceIrrelevant, SourceID: "s2"})
	rel := s.SourceRelevance()
	if rel["s1"] != 1 || rel["s2"] != -1 {
		t.Errorf("relevance = %v", rel)
	}
}

func TestBrokenWrappers(t *testing.T) {
	s := NewStore()
	s.Add(Item{Kind: WrapperBroken, SourceID: "s1"})
	s.Add(Item{Kind: WrapperBroken, SourceID: "s2"})
	s.Add(Item{Kind: WrapperOK, SourceID: "s1"}) // repaired later
	broken := s.BrokenWrappers()
	if len(broken) != 1 || broken[0] != "s2" {
		t.Errorf("BrokenWrappers = %v", broken)
	}
}

func TestConcurrentStore(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Add(Item{Kind: ValueCorrect, SourceID: "s"})
				s.SourceTrust()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
}

func TestCrowdAccuracyAggregation(t *testing.T) {
	// A reliable crowd with 5-fold replication should get nearly all
	// answers right; an unreliable one should not.
	reliable := NewCrowd(1, 10, 0.9, 0.95, 0.05)
	unreliable := NewCrowd(2, 10, 0.45, 0.55, 0.05)
	relCorrect, unrelCorrect := 0, 0
	n := 200
	for i := 0; i < n; i++ {
		truth := i%2 == 0
		if got, _, _ := reliable.Ask(truth, 5); got == truth {
			relCorrect++
		}
		if got, _, _ := unreliable.Ask(truth, 5); got == truth {
			unrelCorrect++
		}
	}
	if relCorrect < n*95/100 {
		t.Errorf("reliable crowd correct %d/%d", relCorrect, n)
	}
	if unrelCorrect > n*75/100 {
		t.Errorf("unreliable crowd suspiciously good: %d/%d", unrelCorrect, n)
	}
}

func TestCrowdCost(t *testing.T) {
	c := NewCrowd(3, 5, 0.8, 0.9, 0.10)
	_, answers, cost := c.Ask(true, 7)
	if len(answers) != 7 {
		t.Errorf("answers = %d", len(answers))
	}
	if cost < 0.7-1e-9 || cost > 0.7+1e-9 {
		t.Errorf("cost = %f, want 0.7", cost)
	}
	_, answers, _ = c.Ask(true, 0)
	if len(answers) != 1 {
		t.Error("k<1 should clamp to 1")
	}
}

func TestCrowdDeterministic(t *testing.T) {
	a := NewCrowd(7, 5, 0.7, 0.9, 0.1)
	b := NewCrowd(7, 5, 0.7, 0.9, 0.1)
	for i := 0; i < 20; i++ {
		va, _, _ := a.Ask(i%2 == 0, 3)
		vb, _, _ := b.Ask(i%2 == 0, 3)
		if va != vb {
			t.Fatal("crowd not deterministic under same seed")
		}
	}
}

func TestLabelPairsRecordsFeedback(t *testing.T) {
	c := NewCrowd(4, 8, 0.85, 0.95, 0.02)
	s := NewStore()
	truths := map[string]bool{
		PairKey("a", "b"): true,
		PairKey("c", "d"): false,
		PairKey("e", "f"): true,
	}
	cost := c.LabelPairs(s, truths, 3)
	if cost <= 0 || s.Spent() != cost {
		t.Errorf("cost accounting wrong: %f vs %f", cost, s.Spent())
	}
	labels := s.PairLabels()
	if len(labels) != 3 {
		t.Fatalf("labels = %v", labels)
	}
	correct := 0
	for k, want := range truths {
		if labels[k] == want {
			correct++
		}
	}
	if correct < 2 {
		t.Errorf("crowd labels correct %d/3", correct)
	}
}
