package etl

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sources"
)

func target() dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	)
}

func universe(seed int64, n int) *sources.Universe {
	w := sources.NewWorld(seed, 150, 0)
	cfg := sources.DefaultConfig(seed, n)
	cfg.CleanShare = 1
	cfg.StaleMax = 0
	return sources.Generate(w, cfg)
}

func TestSpecifyAndRun(t *testing.T) {
	u := universe(31, 6)
	w := NewWorkflow(target())
	for _, s := range u.Sources {
		w.SpecifySource(s.ID, AutoSpec(s, target()))
	}
	if w.Effort.WrapperSpecs != 6 || w.Effort.MappingSpecs != 6 {
		t.Errorf("effort = %+v", w.Effort)
	}
	wantMinutes := 6 * (CostWrapperSpec + CostMappingSpec)
	if w.Effort.AnalystMinutes != wantMinutes {
		t.Errorf("minutes = %f, want %f", w.Effort.AnalystMinutes, wantMinutes)
	}
	out, stale, err := w.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no rows loaded")
	}
	// CSV/JSON and table-family HTML sources load; cards/list HTML cannot
	// be read by the manual scraper and are reported stale.
	for _, id := range stale {
		s := u.Source(id)
		if s.Kind != sources.KindHTML || s.Template.Family == "table" {
			t.Errorf("source %s (%s/%s) unexpectedly stale", id, s.Kind, s.Template.Family)
		}
	}
	if w.Effort.FullRuns != 1 {
		t.Error("run should be charged")
	}
}

func TestRunLoadsCorrectValues(t *testing.T) {
	u := universe(32, 8)
	var csvSrc *sources.Source
	for _, s := range u.Sources {
		if s.Kind == sources.KindCSV {
			csvSrc = s
			break
		}
	}
	if csvSrc == nil {
		t.Skip("no csv source")
	}
	w := NewWorkflow(target())
	w.SpecifySource(csvSrc.ID, AutoSpec(csvSrc, target()))
	out, _, err := w.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != len(csvSrc.Records) {
		t.Fatalf("loaded %d rows, want %d", out.Len(), len(csvSrc.Records))
	}
	// Spot-check one value against the generator's record.
	want := csvSrc.Records[0].Values["sku"]
	found := false
	for i := 0; i < out.Len(); i++ {
		if out.Get(i, "sku").String() == want {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("sku %q not loaded", want)
	}
}

func TestTemplateDriftBreaksETL(t *testing.T) {
	u := universe(33, 10)
	var htmlSrc *sources.Source
	for _, s := range u.Sources {
		if s.Kind == sources.KindHTML && s.Template.Family == "table" {
			htmlSrc = s
			break
		}
	}
	if htmlSrc == nil {
		t.Skip("no table-family html source in universe")
	}
	w := NewWorkflow(target())
	w.SpecifySource(htmlSrc.ID, AutoSpec(htmlSrc, target()))
	if _, stale, _ := w.Run(u); len(stale) != 0 {
		t.Fatalf("pre-drift stale = %v", stale)
	}
	// Site redesign: the manual scraper breaks, silently losing the source.
	htmlSrc.Template.Drift(rand.New(rand.NewSource(1)))
	_, stale, err := w.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 1 || stale[0] != htmlSrc.ID {
		t.Errorf("drifted source should be stale, got %v", stale)
	}
}

func TestRepairSource(t *testing.T) {
	u := universe(34, 4)
	s := u.Sources[0]
	w := NewWorkflow(target())
	w.SpecifySource(s.ID, AutoSpec(s, target()))
	before := w.Effort.AnalystMinutes
	if err := w.RepairSource(s.ID, AutoSpec(s, target())); err != nil {
		t.Fatal(err)
	}
	if w.Effort.RepairActions != 1 || w.Effort.AnalystMinutes != before+CostRepair {
		t.Errorf("repair effort not charged: %+v", w.Effort)
	}
	if err := w.RepairSource("ghost", nil); err == nil {
		t.Error("repairing unknown source should fail")
	}
}

func TestRunUnknownSource(t *testing.T) {
	u := universe(35, 2)
	w := NewWorkflow(target())
	w.SpecifySource("ghost", nil)
	if _, _, err := w.Run(u); err == nil {
		t.Error("unknown source should fail the run")
	}
}

func TestHeaderRenameSilentlyDropsSource(t *testing.T) {
	u := universe(36, 6)
	var csvSrc *sources.Source
	for _, s := range u.Sources {
		if s.Kind == sources.KindCSV {
			csvSrc = s
			break
		}
	}
	if csvSrc == nil {
		t.Skip("no csv source")
	}
	w := NewWorkflow(target())
	w.SpecifySource(csvSrc.ID, AutoSpec(csvSrc, target()))
	// The source renames all its headers (schema velocity).
	for prop := range csvSrc.Headers {
		csvSrc.Headers[prop] = "renamed_" + csvSrc.Headers[prop]
	}
	_, stale, err := w.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range stale {
		if id == csvSrc.ID {
			found = true
		}
	}
	if !found {
		t.Error("renamed headers should leave the source stale")
	}
}
