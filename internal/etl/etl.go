// Package etl is the classical baseline the paper's vision departs from
// (§1, §4.2): manually specified Extract-Transform-Load workflows. Every
// wrapper is hand-configured, every mapping hand-written, and any change —
// a template drift, a new source, a schema tweak — requires expert effort
// and a full re-run. The package charges that effort explicitly in analyst
// minutes so experiment E1 can reproduce the "50 to 80 percent of their
// time" claim and measure what automation saves.
package etl

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sources"
)

// Effort tallies the manual work a classical ETL deployment consumes, in
// analyst minutes. The constants are deliberately conservative round
// numbers; E1's conclusions depend only on their ratio to feedback costs,
// and a sensitivity sweep is part of the bench.
type Effort struct {
	WrapperSpecs   int // wrappers written by hand
	MappingSpecs   int // column mappings written by hand
	RepairActions  int // manual fixes after breakage
	FullRuns       int // complete pipeline re-executions
	AnalystMinutes float64
}

// Default manual costs (minutes) per action, from the E1 cost model.
const (
	CostWrapperSpec = 30.0 // study a site, write+test a wrapper
	CostMappingSpec = 15.0 // align one source schema by hand
	CostRepair      = 20.0 // diagnose and fix one breakage
	CostRunOverhead = 5.0  // babysit one full pipeline run
)

// ColumnSpec maps one source header to a target column, as written by the
// analyst.
type ColumnSpec struct {
	SourceHeader string
	TargetColumn string
}

// SourceSpec is the analyst's hand-written configuration for one source:
// which records to pull and how columns align.
type SourceSpec struct {
	SourceID string
	Columns  []ColumnSpec
}

// Workflow is a manually specified ETL pipeline: an ordered list of source
// specs loaded into one warehouse table with the given target schema.
type Workflow struct {
	Target dataset.Schema
	Specs  []SourceSpec
	Effort Effort
}

// NewWorkflow starts an empty workflow for the target schema.
func NewWorkflow(target dataset.Schema) *Workflow {
	return &Workflow{Target: target.Clone()}
}

// SpecifySource records the manual wrapper + mapping work for a source.
// The analyst writes one ColumnSpec per aligned column — charged
// accordingly.
func (w *Workflow) SpecifySource(sourceID string, cols []ColumnSpec) {
	w.Specs = append(w.Specs, SourceSpec{SourceID: sourceID, Columns: cols})
	w.Effort.WrapperSpecs++
	w.Effort.MappingSpecs++
	w.Effort.AnalystMinutes += CostWrapperSpec + CostMappingSpec
}

// RepairSource records a manual repair after a source broke (template
// drift, schema change). The replacement column specs overwrite the old
// ones.
func (w *Workflow) RepairSource(sourceID string, cols []ColumnSpec) error {
	for i := range w.Specs {
		if w.Specs[i].SourceID == sourceID {
			w.Specs[i].Columns = cols
			w.Effort.RepairActions++
			w.Effort.AnalystMinutes += CostRepair
			return nil
		}
	}
	return fmt.Errorf("etl: source %q not in workflow", sourceID)
}

// AutoSpec derives the column specs an analyst would write for a source by
// reading the generator's header table — simulating the (correct but
// costly) outcome of manual inspection.
func AutoSpec(s *sources.Source, target dataset.Schema) []ColumnSpec {
	var cols []ColumnSpec
	for _, prop := range s.Props {
		if target.Index(prop) >= 0 {
			cols = append(cols, ColumnSpec{SourceHeader: s.Header(prop), TargetColumn: prop})
		}
	}
	return cols
}

// Run executes the full workflow against the universe: every specified
// source is parsed (CSV/JSON payloads; HTML sources are charged a repair
// if their template version moved since specification) and loaded into one
// union table. A full run is charged babysitting overhead. Sources whose
// spec no longer matches the payload contribute no rows — silently, as in
// real pipelines — and are reported in stale.
func (w *Workflow) Run(u *sources.Universe) (out *dataset.Table, stale []string, err error) {
	w.Effort.FullRuns++
	w.Effort.AnalystMinutes += CostRunOverhead
	out = dataset.NewTable(w.Target.Clone())
	for _, spec := range w.Specs {
		src := u.Source(spec.SourceID)
		if src == nil {
			return nil, stale, fmt.Errorf("etl: unknown source %q", spec.SourceID)
		}
		tab, perr := parseSource(src)
		if perr != nil {
			stale = append(stale, spec.SourceID)
			continue
		}
		matched := 0
		for _, r := range loadRows(tab, spec, w.Target) {
			out.Append(r)
			matched++
		}
		if matched == 0 && len(src.Records) > 0 {
			stale = append(stale, spec.SourceID)
		}
	}
	return out, stale, nil
}

// parseSource reads a source payload into a raw table using the format
// the analyst configured. HTML is parsed with a fixed header-driven
// scraper: the ETL baseline has no wrapper induction, so it only
// understands table-family pages whose template it was specified against
// (Template.Version 0); drifted or non-table templates yield an error —
// manual repair territory.
func parseSource(s *sources.Source) (*dataset.Table, error) {
	switch s.Kind {
	case sources.KindCSV:
		return dataset.ReadCSV(strings.NewReader(s.Payload()))
	case sources.KindJSON:
		return dataset.ReadJSON(strings.NewReader(s.Payload()))
	case sources.KindHTML:
		if s.Template == nil || s.Template.Family != "table" || s.Template.Version != 0 {
			return nil, fmt.Errorf("etl: manual scraper cannot read source %s", s.ID)
		}
		// The hand-written scraper knows the generator's table layout:
		// header row of <th> followed by one <tr class=record> per row.
		return scrapeTable(s)
	default:
		return nil, fmt.Errorf("etl: unknown kind %q", s.Kind)
	}
}

func scrapeTable(s *sources.Source) (*dataset.Table, error) {
	// Reconstruct via the CSV rendering of the same records — the manual
	// scraper, when it works, extracts exactly what the page shows.
	copySrc := *s
	copySrc.Kind = sources.KindCSV
	return dataset.ReadCSV(strings.NewReader(copySrc.Payload()))
}

// loadRows applies a source spec to a parsed table, projecting the
// specified columns into the target schema. Headers that no longer exist
// match nothing.
func loadRows(tab *dataset.Table, spec SourceSpec, target dataset.Schema) []dataset.Record {
	srcIdx := make([]int, len(target))
	for i := range srcIdx {
		srcIdx[i] = -1
	}
	matched := false
	for _, cs := range spec.Columns {
		ti := target.Index(cs.TargetColumn)
		si := tab.Schema().Index(cs.SourceHeader)
		if ti >= 0 && si >= 0 {
			srcIdx[ti] = si
			matched = true
		}
	}
	if !matched {
		return nil
	}
	var out []dataset.Record
	for _, r := range tab.Rows() {
		row := make(dataset.Record, len(target))
		for i := range target {
			row[i] = dataset.Null()
			if srcIdx[i] >= 0 {
				if cv, ok := r[srcIdx[i]].Coerce(target[i].Kind); ok {
					row[i] = cv
				}
			}
		}
		out = append(out, row)
	}
	return out
}
