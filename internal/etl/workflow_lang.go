package etl

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// This file implements the small workflow language classical ETL
// platforms provide ("some means of orchestrating the components, such as
// a workflow language", §1 of the paper). It exists so the baseline is a
// faithful miniature of the systems the paper critiques: workflows are
// text artefacts written and maintained by hand.
//
// Grammar (one statement per line; '#' starts a comment):
//
//	target <col>:<kind> [<col>:<kind> ...]
//	source <source-id> map <header>=<target-col> [, <header>=<target-col> ...]
//
// Example:
//
//	target sku:string name:string price:float
//	source src-001 map item_no=sku, title=name, cost=price
//	source src-002 map id=sku, product=name, amount=price

// ParseWorkflow parses the workflow DSL into a Workflow. Each `source`
// statement is charged the usual manual specification effort.
func ParseWorkflow(src string) (*Workflow, error) {
	var wf *Workflow
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "target":
			if wf != nil {
				return nil, fmt.Errorf("etl: line %d: duplicate target statement", lineNo+1)
			}
			schema, err := parseTargetSchema(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("etl: line %d: %w", lineNo+1, err)
			}
			wf = NewWorkflow(schema)
		case "source":
			if wf == nil {
				return nil, fmt.Errorf("etl: line %d: source before target", lineNo+1)
			}
			id, cols, err := parseSourceStatement(line)
			if err != nil {
				return nil, fmt.Errorf("etl: line %d: %w", lineNo+1, err)
			}
			for _, c := range cols {
				if wf.Target.Index(c.TargetColumn) < 0 {
					return nil, fmt.Errorf("etl: line %d: unknown target column %q", lineNo+1, c.TargetColumn)
				}
			}
			wf.SpecifySource(id, cols)
		default:
			return nil, fmt.Errorf("etl: line %d: unknown statement %q", lineNo+1, fields[0])
		}
	}
	if wf == nil {
		return nil, fmt.Errorf("etl: workflow has no target statement")
	}
	return wf, nil
}

func parseTargetSchema(specs []string) (dataset.Schema, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("target needs at least one column")
	}
	fields := make([]dataset.Field, 0, len(specs))
	for _, spec := range specs {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 || parts[0] == "" {
			return nil, fmt.Errorf("bad column spec %q (want name:kind)", spec)
		}
		kind, err := parseKind(parts[1])
		if err != nil {
			return nil, err
		}
		fields = append(fields, dataset.Field{Name: parts[0], Kind: kind})
	}
	return dataset.NewSchema(fields...)
}

func parseKind(s string) (dataset.Kind, error) {
	switch strings.ToLower(s) {
	case "string", "str", "text":
		return dataset.KindString, nil
	case "int", "integer":
		return dataset.KindInt, nil
	case "float", "number", "decimal":
		return dataset.KindFloat, nil
	case "bool", "boolean":
		return dataset.KindBool, nil
	case "time", "timestamp", "date":
		return dataset.KindTime, nil
	default:
		return dataset.KindNull, fmt.Errorf("unknown kind %q", s)
	}
}

func parseSourceStatement(line string) (string, []ColumnSpec, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "source"))
	mapIdx := strings.Index(rest, " map ")
	if mapIdx < 0 {
		return "", nil, fmt.Errorf("source statement needs a map clause")
	}
	id := strings.TrimSpace(rest[:mapIdx])
	if id == "" || strings.ContainsAny(id, " \t") {
		return "", nil, fmt.Errorf("bad source id %q", id)
	}
	var cols []ColumnSpec
	for _, pair := range strings.Split(rest[mapIdx+5:], ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		parts := strings.SplitN(pair, "=", 2)
		if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
			return "", nil, fmt.Errorf("bad map pair %q (want header=column)", pair)
		}
		cols = append(cols, ColumnSpec{
			SourceHeader: strings.TrimSpace(parts[0]),
			TargetColumn: strings.TrimSpace(parts[1]),
		})
	}
	if len(cols) == 0 {
		return "", nil, fmt.Errorf("map clause is empty")
	}
	return id, cols, nil
}

// RenderWorkflow serialises a workflow back to the DSL — the artefact an
// analyst would check into version control.
func RenderWorkflow(wf *Workflow) string {
	var b strings.Builder
	b.WriteString("target")
	for _, f := range wf.Target {
		fmt.Fprintf(&b, " %s:%s", f.Name, f.Kind)
	}
	b.WriteByte('\n')
	for _, spec := range wf.Specs {
		fmt.Fprintf(&b, "source %s map ", spec.SourceID)
		for i, c := range spec.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%s", c.SourceHeader, c.TargetColumn)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
