package etl

import (
	"strings"
	"testing"
)

const goodWorkflow = `
# price warehouse
target sku:string name:string price:float

source src-001 map item_no=sku, title=name, cost=price
source src-002 map id=sku, product=name   # partial mapping
`

func TestParseWorkflow(t *testing.T) {
	wf, err := ParseWorkflow(goodWorkflow)
	if err != nil {
		t.Fatal(err)
	}
	if len(wf.Target) != 3 || wf.Target[2].Name != "price" {
		t.Errorf("target = %v", wf.Target)
	}
	if len(wf.Specs) != 2 {
		t.Fatalf("specs = %d", len(wf.Specs))
	}
	if wf.Specs[0].SourceID != "src-001" || len(wf.Specs[0].Columns) != 3 {
		t.Errorf("spec 0 = %+v", wf.Specs[0])
	}
	if wf.Specs[1].Columns[1].SourceHeader != "product" {
		t.Errorf("spec 1 = %+v", wf.Specs[1])
	}
	// Manual effort charged per source statement.
	if wf.Effort.WrapperSpecs != 2 || wf.Effort.AnalystMinutes != 2*(CostWrapperSpec+CostMappingSpec) {
		t.Errorf("effort = %+v", wf.Effort)
	}
}

func TestParseWorkflowErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no target", "source s map a=b"},
		{"empty", "\n# just comments\n"},
		{"duplicate target", "target a:int\ntarget b:int"},
		{"bad kind", "target a:blob"},
		{"bad column spec", "target justname"},
		{"unknown statement", "target a:int\nfrobnicate x"},
		{"missing map", "target a:int\nsource s"},
		{"empty map", "target a:int\nsource s map "},
		{"bad pair", "target a:int\nsource s map nope"},
		{"unknown target column", "target a:int\nsource s map h=zzz"},
	}
	for _, c := range cases {
		if _, err := ParseWorkflow(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseKindAliases(t *testing.T) {
	for _, src := range []string{"target a:str b:integer c:number d:boolean e:date"} {
		if _, err := ParseWorkflow(src); err != nil {
			t.Errorf("aliases should parse: %v", err)
		}
	}
}

func TestWorkflowRoundTrip(t *testing.T) {
	wf, err := ParseWorkflow(goodWorkflow)
	if err != nil {
		t.Fatal(err)
	}
	rendered := RenderWorkflow(wf)
	back, err := ParseWorkflow(rendered)
	if err != nil {
		t.Fatalf("rendered workflow does not reparse: %v\n%s", err, rendered)
	}
	if len(back.Specs) != len(wf.Specs) || !back.Target.Equal(wf.Target) {
		t.Errorf("round trip changed workflow:\n%s", rendered)
	}
	for i := range wf.Specs {
		if len(back.Specs[i].Columns) != len(wf.Specs[i].Columns) {
			t.Errorf("spec %d columns differ", i)
		}
	}
}

func TestParsedWorkflowRuns(t *testing.T) {
	u := universe(37, 6)
	// Write the DSL an analyst would write for the first CSV source.
	var src *strings.Builder = &strings.Builder{}
	src.WriteString("target sku:string name:string price:float\n")
	count := 0
	for _, s := range u.Sources {
		if s.Kind != "csv" {
			continue
		}
		src.WriteString("source " + s.ID + " map ")
		first := true
		for _, prop := range []string{"sku", "name", "price"} {
			if !first {
				src.WriteString(", ")
			}
			first = false
			src.WriteString(s.Header(prop) + "=" + prop)
		}
		src.WriteString("\n")
		count++
	}
	if count == 0 {
		t.Skip("no csv sources")
	}
	wf, err := ParseWorkflow(src.String())
	if err != nil {
		t.Fatal(err)
	}
	out, stale, err := wf.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Errorf("stale = %v", stale)
	}
	if out.Len() == 0 {
		t.Error("no rows loaded from DSL workflow")
	}
}
