package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram reads")
	}
	StartSpan(nil).End()
	var s Span
	s.End()

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", DurationBuckets()) != nil {
		t.Fatal("nil registry must return nil handles")
	}
	r.Help("x", "text")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Summary() != nil {
		t.Fatal("nil registry summary")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "path", "/a")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if again := r.Counter("hits_total", "path", "/a"); again != c {
		t.Fatal("re-registration must return the same handle")
	}
	if other := r.Counter("hits_total", "path", "/b"); other == c {
		t.Fatal("different labels must be a different series")
	}
	g := r.Gauge("temp")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "x", "1", "y", "2")
	b := r.Counter("c_total", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order must not create distinct series")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in le=1 bucket
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %v, want in (0,1]", q)
	}
	h2 := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(100) // overflow bucket
	}
	if q := h2.Quantile(0.99); q != 8 {
		t.Fatalf("p99 = %v, want clamp to 8", q)
	}
	if h2.Count() != 100 {
		t.Fatalf("count = %d", h2.Count())
	}
	if s := h2.Sum(); s != 90*0.5+10*100 {
		t.Fatalf("sum = %v", s)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	build := func(order []func(r *Registry)) string {
		r := NewRegistry()
		for _, f := range order {
			f(r)
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	regA := func(r *Registry) { r.Counter("b_total", "k", "1").Inc() }
	regB := func(r *Registry) { r.Counter("a_total").Add(2) }
	regC := func(r *Registry) { r.Histogram("h_seconds", []float64{1, 2}).Observe(0.5) }
	regD := func(r *Registry) { r.Counter("b_total", "k", "0").Inc() }

	one := build([]func(r *Registry){regA, regB, regC, regD})
	two := build([]func(r *Registry){regD, regC, regB, regA})
	if one != two {
		t.Fatalf("scrape must be deterministic regardless of registration order:\n--- one ---\n%s--- two ---\n%s", one, two)
	}
	for _, want := range []string{
		"# TYPE a_total counter",
		"# TYPE h_seconds histogram",
		"a_total 2",
		`b_total{k="0"} 1`,
		`b_total{k="1"} 1`,
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="+Inf"} 1`,
		"h_seconds_sum 0.5",
		"h_seconds_count 1",
	} {
		if !strings.Contains(one, want) {
			t.Fatalf("scrape missing %q:\n%s", want, one)
		}
	}
	// a_total (sorted) must precede b_total, b_total{k="0"} precede k="1".
	if strings.Index(one, "a_total 2") > strings.Index(one, `b_total{k="0"}`) {
		t.Fatal("families not sorted by name")
	}
	if strings.Index(one, `b_total{k="0"}`) > strings.Index(one, `b_total{k="1"}`) {
		t.Fatal("series not sorted by labels")
	}
}

func TestHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	r.Help("x_total", "how many x")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# HELP x_total how many x\n") {
		t.Fatalf("missing HELP line:\n%s", b.String())
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "k", "v").Add(7)
	r.Gauge("g").Set(2.5)
	r.Histogram("h_seconds", DurationBuckets()).Observe(1)
	sum := r.Summary()
	if sum[`c_total{k="v"}`] != 7 {
		t.Fatalf("summary counter: %v", sum)
	}
	if sum["g"] != 2.5 {
		t.Fatalf("summary gauge: %v", sum)
	}
	for k := range sum {
		if strings.HasPrefix(k, "h_seconds") {
			t.Fatal("histograms must be omitted from summary")
		}
	}
}

// TestRegistryConcurrentScrape hammers counters, gauges, histograms and
// new-series registration from many goroutines while scraping — the
// race-detector coverage for concurrent registry writes vs /metrics
// reads.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		r.Counter("writes_total", "w", string(rune('a'+w))).Inc()
		go func(w int) {
			defer wg.Done()
			lbl := []string{"w", string(rune('a' + w))}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("writes_total", lbl...).Inc()
				r.Gauge("level", lbl...).Set(float64(i))
				r.Histogram("lat_seconds", DurationBuckets(), lbl...).Observe(0.001)
			}
		}(w)
	}
	for s := 0; s < 50; s++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		_ = r.Summary()
	}
	close(stop)
	wg.Wait()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `writes_total{w="a"}`) {
		t.Fatalf("missing series after concurrent writes:\n%s", b.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}
