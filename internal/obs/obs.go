// Package obs is the pipeline's dependency-free telemetry layer:
// atomic counters and gauges, fixed-bucket histograms, lightweight span
// tracing, and a named registry that renders Prometheus text exposition
// format. It exists so stage timings, watch fan-out, serve reads and WAL
// activity accumulate into an operable surface instead of evaporating
// after each call.
//
// Every metric type is safe to use through a nil pointer: a nil
// *Counter/*Gauge/*Histogram no-ops on write and returns zero on read,
// and a nil *Registry returns nil handles. Instrumented code therefore
// resolves its handles once and calls them unconditionally — with
// telemetry disabled the hot path pays a single predictable nil check,
// no interface dispatch, no allocation.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count, zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta via CAS. No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value, zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Observations are a
// binary search over the bounds plus two atomic adds — allocation-free,
// safe for concurrent writers and concurrent scrapes.
type Histogram struct {
	bounds  []float64 // upper bounds, strictly increasing; +Inf implicit
	counts  []atomic.Int64
	n       atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram with the given upper bucket bounds
// (strictly increasing; an +Inf overflow bucket is implicit). The bounds
// slice is not copied and must not be mutated afterwards.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records v. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. le-bucket
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds. No-op on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations, zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values, zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank. Observations
// in the overflow bucket clamp to the highest finite bound. Returns 0
// on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) { // overflow bucket: clamp
				if len(h.bounds) == 0 {
					return h.Sum() / float64(total)
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Span measures one timed region into a histogram. The zero Span (and
// any Span started from a nil histogram) is inert.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins a span recording into h; if h is nil the span is
// inert and End is free.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time. Safe to call on the zero Span.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Seconds())
	}
}

// DurationBuckets is the default bound set for stage/task/latency
// histograms: 100µs to 10s, roughly 2.5x steps.
func DurationBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// SizeBuckets is the default bound set for byte-size histograms:
// 256B to 16MiB, 4x steps.
func SizeBuckets() []float64 {
	return []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
		256 << 10, 1 << 20, 4 << 20, 16 << 20}
}
