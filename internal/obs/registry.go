package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type series struct {
	sig string // rendered label signature: `k1="v1",k2="v2"` (may be empty)
	c   *Counter
	g   *Gauge
	h   *Histogram
}

type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histogram families: fixed at first registration
	series map[string]*series
	order  []string // sorted signatures, maintained on insert
}

// Registry is a named collection of metrics. Registration is
// get-or-create: the same (name, labels) pair always returns the same
// handle, so callers may re-resolve handles freely. All methods are
// safe for concurrent use; a nil *Registry returns nil handles, which
// are themselves safe no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter with the given name and label pairs
// (key, value, key, value, ...), creating it on first use. Nil on a nil
// registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.get(kindCounter, name, nil, labels)
	return s.c
}

// Gauge returns the gauge with the given name and label pairs, creating
// it on first use. Nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.get(kindGauge, name, nil, labels)
	return s.g
}

// Histogram returns the histogram with the given name and label pairs,
// creating it with the given bounds on first use. All series of one
// family share the bounds fixed at first registration. Nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.get(kindHistogram, name, bounds, labels)
	return s.h
}

// Help attaches exposition help text to a metric family. No-op on a nil
// registry or before any series of the family exists — call it after
// (or ignore; HELP lines are optional).
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = text
	}
}

func (r *Registry) get(k kind, name string, bounds []float64, labels []string) *series {
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, series: make(map[string]*series)}
		if k == kindHistogram {
			f.bounds = bounds
		}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{sig: sig}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = NewHistogram(f.bounds)
		}
		f.series[sig] = s
		i := sort.SearchStrings(f.order, sig)
		f.order = append(f.order, "")
		copy(f.order[i+1:], f.order[i:])
		f.order[i] = sig
	}
	return s
}

// labelSig renders label pairs as a canonical signature with keys
// sorted. Panics on an odd-length labels slice (programmer error).
func labelSig(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	return labelEscaper.Replace(v)
}

// WritePrometheus renders every metric in Prometheus text exposition
// format. Output ordering is deterministic: families sorted by name,
// series sorted by label signature — only the values vary between
// scrapes. Safe to call concurrently with metric writes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot family structure under the lock; the atomic values are
	// read lock-free while rendering.
	fams := make([]*family, len(names))
	orders := make([][]string, len(names))
	for i, name := range names {
		f := r.families[name]
		fams[i] = f
		orders[i] = append([]string(nil), f.order...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range orders[i] {
			s := f.series[sig]
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, "", sig, "", strconv.FormatInt(s.c.Value(), 10))
			case kindGauge:
				writeSample(&b, f.name, "", sig, "", formatFloat(s.g.Value()))
			case kindHistogram:
				var cum int64
				for bi, bound := range s.h.bounds {
					cum += s.h.counts[bi].Load()
					writeSample(&b, f.name, "_bucket", sig,
						`le="`+formatFloat(bound)+`"`, strconv.FormatInt(cum, 10))
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				writeSample(&b, f.name, "_bucket", sig, `le="+Inf"`, strconv.FormatInt(cum, 10))
				writeSample(&b, f.name, "_sum", sig, "", formatFloat(s.h.Sum()))
				writeSample(&b, f.name, "_count", sig, "", strconv.FormatInt(s.h.Count(), 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, suffix, sig, extra, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if sig != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		if sig != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Summary returns the current counter and gauge values keyed by
// "name" or "name{labels}" — the compact form embedded in /healthz.
// Histograms are omitted (scrape /metrics for those). Nil-safe.
func (r *Registry) Summary() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for name, f := range r.families {
		if f.kind == kindHistogram {
			continue
		}
		for sig, s := range f.series {
			key := name
			if sig != "" {
				key = name + "{" + sig + "}"
			}
			switch f.kind {
			case kindCounter:
				out[key] = float64(s.c.Value())
			case kindGauge:
				out[key] = s.g.Value()
			}
		}
	}
	return out
}
