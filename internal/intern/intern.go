// Package intern provides a per-run string interner for the stable
// identifiers the pipeline otherwise rebuilds ad hoc on every tail: the
// "source#idx" row keys that feedback addressing and shard routing share,
// and recurring id strings such as entity names. Interning keeps one
// canonical instance per distinct string across reactions, so a refresh
// that rebuilds the union re-uses last round's keys instead of
// re-formatting them.
package intern

import "strconv"

// Table interns strings for the lifetime of one run (a Wrangler session).
// It is not safe for concurrent use; the pipeline only touches it from
// single-threaded stages (union build, the cluster barrier).
type Table struct {
	strs map[string]string
	keys map[string][]string // source id -> its "source#idx" keys, by idx
}

// New returns an empty intern table.
func New() *Table {
	return &Table{
		strs: map[string]string{},
		keys: map[string][]string{},
	}
}

// Str returns the canonical instance of s, registering it on first sight.
func (t *Table) Str(s string) string {
	if c, ok := t.strs[s]; ok {
		return c
	}
	t.strs[s] = s
	return s
}

// Key returns the interned "source#idx" row key, formatting each distinct
// key at most once for the table's lifetime. idx must be >= 0.
func (t *Table) Key(source string, idx int) string {
	ks := t.keys[source]
	for len(ks) <= idx {
		ks = append(ks, source+"#"+strconv.Itoa(len(ks)))
	}
	t.keys[source] = ks
	return ks[idx]
}
