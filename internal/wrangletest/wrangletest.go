// Package wrangletest is the determinism and property-test harness for
// the wrangling pipeline. The sharded integration tail's whole contract
// is "byte-identical results, faster" — example tests cannot pin that,
// so this package provides what can: a seeded-random universe and table
// generator, a randomized feedback/refresh script driver, and an
// invariant checker that fingerprints every read-side artefact (table,
// report, fused results, trust, clustering, provenance) and asserts the
// sharded tail reproduces the sequential tail bit for bit at every shard
// count, after every reaction. The experience with coverage-guided DBMS
// fuzzing (Wang et al.) applies directly: randomized, invariant-checked
// workloads, not examples, are what keep a concurrent data system
// honest — the same generators back the package's fuzz target.
package wrangletest

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/er"
	"repro/internal/feedback"
	"repro/internal/ontology"
	"repro/internal/report"
	"repro/internal/sources"

	wctx "repro/internal/context"
)

// NewWrangler builds a product-domain wrangler over a fresh synthetic
// universe derived from seed, with the given integration shard count
// (0 = sequential tail). Two calls with equal arguments build wranglers
// over byte-identical worlds — the baseline/variant pairs the
// determinism checks compare.
func NewWrangler(seed int64, nSources, shards int) *core.Wrangler {
	world := sources.NewWorld(seed, 120, 0)
	u := sources.Generate(world, sources.DefaultConfig(seed, nSources))
	dataCtx := wctx.NewDataContext().WithTaxonomy(ontology.ProductTaxonomy())
	w := core.New(u, core.ProductConfig(), nil, dataCtx)
	w.IntegrationShards = shards
	return w
}

// NewStreamingWrangler is NewWrangler with streaming refresh enabled:
// reactions recompute only dirty shards, byte-identically to the full
// tail — the property CheckStreamingDeterminism pins.
func NewStreamingWrangler(seed int64, nSources, shards int) *core.Wrangler {
	w := NewWrangler(seed, nSources, shards)
	w.StreamingRefresh = true
	return w
}

// Fingerprint renders every read-side artefact of the wrangler's current
// working data into one stable string: the full wrangled table, the
// fused results (value, confidence, support, conflict), the report with
// supporters, the trust map, the clustering, the selected sources and
// the provenance dump. Two wranglers in byte-identical states fingerprint
// identically; any divergence — a float a different summation order
// produced, a cluster numbered differently, a provenance step taken
// twice — shows up as a diff.
func Fingerprint(w *core.Wrangler) string {
	var b strings.Builder

	b.WriteString("== table ==\n")
	if t := w.Wrangled(); t != nil {
		fmt.Fprintf(&b, "schema: %s\n", t.Schema().String())
		for i := 0; i < t.Len(); i++ {
			parts := make([]string, len(t.Row(i)))
			for j, v := range t.Row(i) {
				parts[j] = v.Key()
			}
			fmt.Fprintf(&b, "%d: %s\n", i, strings.Join(parts, "|"))
		}
	}

	b.WriteString("== results ==\n")
	for _, r := range w.Results() {
		fmt.Fprintf(&b, "%s/%s = %s conf=%g support=%d conflict=%v\n",
			r.Entity, r.Attribute, r.Value.Key(), r.Confidence, r.Support, r.Conflict)
	}

	b.WriteString("== report ==\n")
	for _, l := range report.Build(w, "fingerprint", nil).Lines {
		fmt.Fprintf(&b, "%s/%s = %s conf=%g conflict=%v sup=%s\n",
			l.Entity, l.Attribute, l.Value, l.Confidence, l.Conflict, strings.Join(l.Supporters, ","))
	}

	b.WriteString("== trust ==\n")
	trust := w.Trust()
	srcs := make([]string, 0, len(trust))
	for s := range trust {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	for _, s := range srcs {
		fmt.Fprintf(&b, "%s = %g\n", s, trust[s])
	}

	b.WriteString("== clusters ==\n")
	if c := w.Clusters(); c != nil {
		fmt.Fprintf(&b, "num=%d assign=%v\n", c.Num, c.Assign)
	}

	fmt.Fprintf(&b, "== selected ==\n%s\n", strings.Join(w.SelectedSources(), ","))
	fmt.Fprintf(&b, "== stats ==\nrows=%d selected=%d\n", w.LastStats.RowsWrangled, w.LastStats.SourcesSelected)
	fmt.Fprintf(&b, "== provenance @%d ==\n%s", w.Prov.Step(), w.Prov.Dump())
	return b.String()
}

// Step is one randomized reaction of a determinism script: either a
// batch of feedback items followed by an incremental reaction, or a
// world-churn + source-refresh batch.
type Step struct {
	Name     string
	Feedback []feedback.Item
	Churn    float64
	Refresh  []string
}

// Apply drives the step against one wrangler, returning the reaction
// stats (for dirty-shard accounting). Feedback reactions and refreshes
// are exactly the session reaction paths; refresh errors are returned as
// text so the caller can assert the variants failed identically too
// (best-effort refreshes report per-source errors without aborting the
// tail).
func (s Step) Apply(ctx context.Context, w *core.Wrangler) (core.ReactStats, string, error) {
	if len(s.Feedback) > 0 {
		for _, it := range s.Feedback {
			w.AddFeedback(it)
		}
		stats, err := w.ReactToFeedbackContext(ctx)
		return stats, "", err
	}
	if s.Churn > 0 {
		w.EvolveWorld(s.Churn)
	}
	stats, err := w.RefreshSourcesContext(ctx, s.Refresh)
	if err != nil {
		// Per-source refresh failures are part of the behaviour under
		// test (every variant must fail the same way), not harness
		// errors.
		return stats, err.Error(), nil
	}
	return stats, "", nil
}

// Script derives steps reproducible reactions from rng, inspecting ref
// (the already-run baseline wrangler) for real entities, sources, report
// lines and union rows to target. The same script is applied to every
// variant; because the variants are byte-identical to the baseline at
// every step, an address valid for the baseline is valid for all.
func Script(rng *rand.Rand, ref *core.Wrangler, steps int) []Step {
	var out []Step
	ids := ref.SelectedSources()
	for i := 0; i < steps; i++ {
		switch rng.Intn(5) {
		case 0: // value verdicts against current report lines
			rep := report.Build(ref, "script", nil)
			var items []feedback.Item
			for n := 1 + rng.Intn(4); n > 0 && len(rep.Lines) > 0; n-- {
				l := rep.Lines[rng.Intn(len(rep.Lines))]
				kind := feedback.ValueIncorrect
				if rng.Intn(2) == 0 {
					kind = feedback.ValueCorrect
				}
				src := ids[rng.Intn(len(ids))]
				if len(l.Supporters) > 0 {
					src = l.Supporters[rng.Intn(len(l.Supporters))]
				}
				items = append(items, feedback.Item{
					Kind: kind, SourceID: src, Entity: l.Entity, Attribute: l.Attribute,
					Worker: "expert", Cost: 0.5,
				})
			}
			out = append(out, Step{Name: fmt.Sprintf("step%d:value", i), Feedback: items})
		case 1: // pair labels over random union rows
			n := ref.Union().Len()
			if n < 2 {
				continue
			}
			var items []feedback.Item
			for k := 0; k < 6; k++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				kind := feedback.NotDuplicatePair
				// Label along the current clustering half the time so the
				// learner sees both classes.
				if ref.EntityOf(a) == ref.EntityOf(b) || rng.Intn(2) == 0 {
					kind = feedback.DuplicatePair
				}
				items = append(items, feedback.Item{
					Kind: kind, PairKey: feedback.PairKey(ref.RowKey(a), ref.RowKey(b)),
					Worker: "expert", Cost: 1,
				})
			}
			out = append(out, Step{Name: fmt.Sprintf("step%d:pairs", i), Feedback: items})
		case 2: // relevance votes
			kind := feedback.SourceRelevant
			if rng.Intn(2) == 0 {
				kind = feedback.SourceIrrelevant
			}
			out = append(out, Step{Name: fmt.Sprintf("step%d:relevance", i), Feedback: []feedback.Item{
				{Kind: kind, SourceID: ids[rng.Intn(len(ids))], Worker: "expert", Cost: 0.2},
			}})
		case 3: // wrapper repair reaction
			out = append(out, Step{Name: fmt.Sprintf("step%d:wrapper", i), Feedback: []feedback.Item{
				{Kind: feedback.WrapperBroken, SourceID: ids[rng.Intn(len(ids))], Worker: "expert", Cost: 1},
			}})
		default: // churn + refresh batch
			var refresh []string
			for n := 1 + rng.Intn(3); n > 0; n-- {
				refresh = append(refresh, ids[rng.Intn(len(ids))])
			}
			out = append(out, Step{
				Name:    fmt.Sprintf("step%d:refresh", i),
				Churn:   0.1 + 0.2*rng.Float64(),
				Refresh: refresh,
			})
		}
	}
	return out
}

// CheckDeterminism is the invariant checker: it runs a sequential
// baseline and one sharded variant per shard count over byte-identical
// universes, drives all of them through the same seeded-random
// feedback/refresh script, and asserts every variant fingerprints
// byte-identically to the baseline after the initial run and after every
// step.
func CheckDeterminism(t testing.TB, seed int64, nSources, steps int, shardCounts []int) {
	t.Helper()
	ctx := context.Background()
	base := NewWrangler(seed, nSources, 0)
	if _, err := base.Run(); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	type variant struct {
		shards int
		w      *core.Wrangler
	}
	var variants []variant
	for _, n := range shardCounts {
		w := NewWrangler(seed, nSources, n)
		if _, err := w.Run(); err != nil {
			t.Fatalf("sharded(%d) run: %v", n, err)
		}
		variants = append(variants, variant{shards: n, w: w})
	}
	compare := func(stage string) {
		t.Helper()
		want := Fingerprint(base)
		for _, v := range variants {
			if got := Fingerprint(v.w); got != want {
				t.Fatalf("shards=%d diverged from sequential at %s:\n%s",
					v.shards, stage, firstDiff(want, got))
			}
		}
	}
	compare("initial run")

	rng := rand.New(rand.NewSource(seed*7919 + 13))
	for _, step := range Script(rng, base, steps) {
		_, refErr, err := step.Apply(ctx, base)
		if err != nil {
			t.Fatalf("%s: baseline: %v", step.Name, err)
		}
		for _, v := range variants {
			_, vErr, err := step.Apply(ctx, v.w)
			if err != nil {
				t.Fatalf("%s: shards=%d: %v", step.Name, v.shards, err)
			}
			if vErr != refErr {
				t.Fatalf("%s: shards=%d error diverged:\nsequential: %q\nsharded:    %q",
					step.Name, v.shards, refErr, vErr)
			}
		}
		compare(step.Name)
	}
}

// CheckStreamingDeterminism is the streaming acceptance property: a
// sequential full-tail baseline and one streaming variant per shard
// count run byte-identical universes through the same seeded-random
// feedback/refresh script, and every variant must fingerprint
// identically to the baseline after every step — while recomputing only
// its dirty shards. It returns the total shards reused across all
// variants and steps, so callers can additionally assert the partial
// tail actually engaged (a streaming path that silently fell back to
// full recompute would pass the identity check vacuously).
func CheckStreamingDeterminism(t testing.TB, seed int64, nSources, steps int, shardCounts []int) int {
	t.Helper()
	ctx := context.Background()
	base := NewWrangler(seed, nSources, 0)
	if _, err := base.Run(); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	type variant struct {
		shards int
		w      *core.Wrangler
	}
	var variants []variant
	for _, n := range shardCounts {
		w := NewStreamingWrangler(seed, nSources, n)
		if _, err := w.Run(); err != nil {
			t.Fatalf("streaming(%d) run: %v", n, err)
		}
		variants = append(variants, variant{shards: n, w: w})
	}
	compare := func(stage string) {
		t.Helper()
		want := Fingerprint(base)
		for _, v := range variants {
			if got := Fingerprint(v.w); got != want {
				t.Fatalf("streaming shards=%d diverged from full tail at %s:\n%s",
					v.shards, stage, firstDiff(want, got))
			}
		}
	}
	compare("initial run")

	reused := 0
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	for _, step := range Script(rng, base, steps) {
		_, refErr, err := step.Apply(ctx, base)
		if err != nil {
			t.Fatalf("%s: baseline: %v", step.Name, err)
		}
		for _, v := range variants {
			stats, vErr, err := step.Apply(ctx, v.w)
			if err != nil {
				t.Fatalf("%s: streaming shards=%d: %v", step.Name, v.shards, err)
			}
			if vErr != refErr {
				t.Fatalf("%s: streaming shards=%d error diverged:\nfull:      %q\nstreaming: %q",
					step.Name, v.shards, refErr, vErr)
			}
			reused += stats.ShardsReused
		}
		compare(step.Name)
	}
	return reused
}

// CheckParallelTrustDeterminism extends the streaming acceptance property
// across the trust fixpoint's worker fan-out: a strictly sequential
// full-tail baseline (workers=1, so the trust stage runs the sequential
// per-component reference) against one streaming variant per
// (workers × shards) pair, all pushed through the same seeded script.
// Every variant must fingerprint identically to the baseline after every
// step — pinning that the component fan-out is byte-identical at every
// worker count while the warm path adopts unchanged components. It
// returns the total trust components adopted from the memo across all
// variants and steps, so callers can assert the per-component
// short-circuit actually engaged.
func CheckParallelTrustDeterminism(t testing.TB, seed int64, nSources, steps int, workerCounts, shardCounts []int) int {
	t.Helper()
	ctx := context.Background()
	base := NewWrangler(seed, nSources, 0)
	base.Parallelism = 1
	if _, err := base.Run(); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	type variant struct {
		workers, shards int
		w               *core.Wrangler
	}
	var variants []variant
	for _, wk := range workerCounts {
		for _, n := range shardCounts {
			w := NewStreamingWrangler(seed, nSources, n)
			w.Parallelism = wk
			if _, err := w.Run(); err != nil {
				t.Fatalf("workers=%d shards=%d run: %v", wk, n, err)
			}
			variants = append(variants, variant{workers: wk, shards: n, w: w})
		}
	}
	compare := func(stage string) {
		t.Helper()
		want := Fingerprint(base)
		for _, v := range variants {
			if got := Fingerprint(v.w); got != want {
				t.Fatalf("workers=%d shards=%d diverged from sequential full tail at %s:\n%s",
					v.workers, v.shards, stage, firstDiff(want, got))
			}
		}
	}
	compare("initial run")

	trustAdopted := 0
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	for _, step := range Script(rng, base, steps) {
		_, refErr, err := step.Apply(ctx, base)
		if err != nil {
			t.Fatalf("%s: baseline: %v", step.Name, err)
		}
		for _, v := range variants {
			stats, vErr, err := step.Apply(ctx, v.w)
			if err != nil {
				t.Fatalf("%s: workers=%d shards=%d: %v", step.Name, v.workers, v.shards, err)
			}
			if vErr != refErr {
				t.Fatalf("%s: workers=%d shards=%d error diverged:\nfull:     %q\nvariant:  %q",
					step.Name, v.workers, v.shards, refErr, vErr)
			}
			if stats.TrustRecomputed > stats.TrustComponents {
				t.Fatalf("%s: workers=%d shards=%d recomputed %d of %d trust components",
					step.Name, v.workers, v.shards, stats.TrustRecomputed, stats.TrustComponents)
			}
			trustAdopted += stats.TrustComponents - stats.TrustRecomputed
		}
		compare(step.Name)
	}
	return trustAdopted
}

// firstDiff renders the first differing line of two fingerprints with a
// little context — a full dump of two multi-hundred-line fingerprints
// helps nobody.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("line %d:\n  context:    %s\n  sequential: %s\n  sharded:    %s",
				i, strings.Join(w[lo:i], " / "), w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: sequential %d lines, sharded %d lines", len(w), len(g))
}

// RandomTable generates a product-shaped table directly from rng: ~nRows
// rows over (sku, name, brand, price) drawn from a small pool of true
// entities with typos, missing keys, shared tokens and price jitter —
// the shapes q-gram blocking and shard routing have to survive. Used by
// the resolve-level property test and the fuzz target, where generating
// a whole universe per input would drown the fuzzer.
func RandomTable(rng *rand.Rand, nRows int) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	)
	t := dataset.NewTable(schema)
	adjectives := []string{"Turbo", "Ultra", "Compact", "Classic", "Pro"}
	nouns := []string{"Blender", "Kettle", "Lamp", "Router", "Speaker", "Drill"}
	brands := []string{"Acme", "Globex", "Initech", "Umbra"}
	nEntities := 1 + nRows/3
	for i := 0; i < nRows; i++ {
		e := rng.Intn(nEntities)
		adj := adjectives[e%len(adjectives)]
		noun := nouns[(e/len(adjectives))%len(nouns)]
		name := fmt.Sprintf("%s %s %d", adj, noun, e)
		if rng.Intn(4) == 0 && len(name) > 3 {
			// Typo: drop a character.
			p := 1 + rng.Intn(len(name)-2)
			name = name[:p] + name[p+1:]
		}
		sku := dataset.String(fmt.Sprintf("SKU-%04d", e))
		if rng.Intn(5) == 0 {
			sku = dataset.Null()
		}
		price := 10 + float64(e)*3.5
		if rng.Intn(3) == 0 {
			price *= 1 + (rng.Float64()-0.5)*0.02
		}
		t.AppendValues(sku, dataset.String(name), dataset.String(brands[e%len(brands)]), dataset.Float(price))
	}
	return t
}

// RandomConstraints draws random must/cannot pairs over a table of n
// rows — the feedback-derived hard constraints the sharded resolve must
// honour identically to the sequential one.
func RandomConstraints(rng *rand.Rand, n int) (must, cannot []er.Pair) {
	if n < 2 {
		return nil, nil
	}
	for k := rng.Intn(4); k > 0; k-- {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			must = append(must, orderedPair(a, b))
		}
	}
	for k := rng.Intn(4); k > 0; k-- {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			cannot = append(cannot, orderedPair(a, b))
		}
	}
	return must, cannot
}

func orderedPair(a, b int) er.Pair {
	if a > b {
		a, b = b, a
	}
	return er.Pair{I: a, J: b}
}

// CheckStreamingRePlan asserts the er-layer streaming equivalence:
// memoize a resolved plan over one table, mutate the table (value edits,
// deletions, insertions — the shapes a refresh or reselection produces),
// and the incremental RePlan plus resolving only the dirty shards must
// reproduce exactly what a fresh PlanShards plus full resolve produces —
// routing, reused clusters and all — which in turn equals the sequential
// constrained resolve. Returns an error instead of failing so the fuzz
// targets can reuse it.
func CheckStreamingRePlan(rng *rand.Rand, nRows, shards int) error {
	r := er.NewResolver("sku", "name", "brand", "price")
	tabA := RandomTable(rng, nRows)
	keysA := make([]string, tabA.Len())
	for i := range keysA {
		keysA[i] = fmt.Sprintf("row-%04d", i)
	}
	mustA, cannotA := RandomConstraints(rng, tabA.Len())
	planA, err := r.PlanShards(tabA, shards, mustA, keysA)
	if err != nil {
		return fmt.Errorf("plan A: %w", err)
	}
	rootsA := make([]map[int]int, shards)
	for i := 0; i < shards; i++ {
		if rootsA[i], _, err = r.ResolveShard(tabA, planA, i, mustA, cannotA); err != nil {
			return fmt.Errorf("resolve A shard %d: %w", i, err)
		}
	}
	memo, err := er.BuildPlanState(r, planA, keysA, rootsA, mustA, cannotA)
	if err != nil {
		return fmt.Errorf("memoize A: %w", err)
	}

	// Mutate: edit a few rows in place, drop a few, append a few new ones.
	tabB := dataset.NewTable(tabA.Schema().Clone())
	var keysB []string
	dirty := map[string]bool{}
	for i := 0; i < tabA.Len(); i++ {
		if rng.Intn(10) == 0 {
			dirty[keysA[i]] = true // dropped
			continue
		}
		row := tabA.Row(i).Clone()
		if rng.Intn(6) == 0 {
			row[1] = dataset.String(fmt.Sprintf("Edited Widget %d", rng.Intn(50)))
			dirty[keysA[i]] = true
		} else if rng.Intn(8) == 0 {
			row[3] = dataset.Float(200 + float64(rng.Intn(40)))
			dirty[keysA[i]] = true
		}
		tabB.Append(row)
		keysB = append(keysB, keysA[i])
	}
	extra := RandomTable(rng, rng.Intn(6))
	for i := 0; i < extra.Len(); i++ {
		tabB.Append(extra.Row(i).Clone())
		k := fmt.Sprintf("new-%04d", i)
		keysB = append(keysB, k)
		dirty[k] = true
	}
	if tabB.Len() == 0 {
		return nil
	}
	mustB, cannotB := RandomConstraints(rng, tabB.Len())

	rp, err := r.RePlan(tabB, shards, mustB, cannotB, keysB, dirty, memo)
	if err != nil {
		return fmt.Errorf("replan: %w", err)
	}
	fresh, err := r.PlanShards(tabB, shards, mustB, keysB)
	if err != nil {
		return fmt.Errorf("plan B: %w", err)
	}
	for i, s := range fresh.RowShard {
		if rp.Plan.RowShard[i] != s {
			return fmt.Errorf("row %d routed to shard %d, fresh plan says %d", i, rp.Plan.RowShard[i], s)
		}
	}
	rootsB := rp.Roots
	for i := 0; i < shards; i++ {
		if !rp.Reused[i] {
			// Mixed shard: score only the dirty components' rows and merge
			// with the translated clean clusters — the streaming resolve.
			fresh, _, err := rp.ResolveDirty(r, tabB, i, mustB, cannotB)
			if err != nil {
				return fmt.Errorf("resolve B shard %d: %w", i, err)
			}
			for row, root := range fresh {
				rootsB[i][row] = root
			}
		}
		// Reused or merged, the shard's roots must equal a full scoring run.
		want, _, err := r.ResolveShard(tabB, rp.Plan, i, mustB, cannotB)
		if err != nil {
			return fmt.Errorf("verify shard %d: %w", i, err)
		}
		if len(want) != len(rootsB[i]) {
			return fmt.Errorf("shard %d (reused=%v): %d roots, fresh resolve has %d", i, rp.Reused[i], len(rootsB[i]), len(want))
		}
		for row, root := range want {
			if rootsB[i][row] != root {
				return fmt.Errorf("shard %d (reused=%v): row %d root %d, fresh resolve says %d", i, rp.Reused[i], row, rootsB[i][row], root)
			}
		}
	}
	merged, err := rp.Plan.MergeRoots(rootsB)
	if err != nil {
		return fmt.Errorf("merge B: %w", err)
	}
	seq, _, err := r.ResolveConstrained(tabB, mustB, cannotB)
	if err != nil {
		return fmt.Errorf("sequential B: %w", err)
	}
	if merged.Num != seq.Num {
		return fmt.Errorf("replan: %d clusters, sequential has %d", merged.Num, seq.Num)
	}
	for i, id := range merged.Assign {
		if id != seq.Assign[i] {
			return fmt.Errorf("replan: row %d in cluster %d, sequential says %d", i, id, seq.Assign[i])
		}
	}
	return nil
}

// CheckShardedResolve asserts the core equivalence at the er layer:
// planning the table into shards, resolving every shard independently
// and merging roots yields exactly the clustering one sequential
// ResolveConstrained produces. Returns an error instead of failing so
// the fuzz target can report through t.Fatal with its own input context.
func CheckShardedResolve(tab *dataset.Table, shards int, must, cannot []er.Pair) error {
	r := er.NewResolver("sku", "name", "brand", "price")
	seq, _, err := r.ResolveConstrained(tab, must, cannot)
	if err != nil {
		return fmt.Errorf("sequential resolve: %w", err)
	}
	plan, err := r.PlanShards(tab, shards, must, nil)
	if err != nil {
		return fmt.Errorf("plan shards: %w", err)
	}
	roots := make([]map[int]int, shards)
	for i := 0; i < shards; i++ {
		roots[i], _, err = r.ResolveShard(tab, plan, i, must, cannot)
		if err != nil {
			return fmt.Errorf("resolve shard %d: %w", i, err)
		}
	}
	merged, err := plan.MergeRoots(roots)
	if err != nil {
		return fmt.Errorf("merge roots: %w", err)
	}
	if merged.Num != seq.Num {
		return fmt.Errorf("shards=%d: %d clusters, sequential has %d", shards, merged.Num, seq.Num)
	}
	for i, id := range merged.Assign {
		if id != seq.Assign[i] {
			return fmt.Errorf("shards=%d: row %d in cluster %d, sequential says %d", shards, i, id, seq.Assign[i])
		}
	}
	return nil
}
