package wrangletest

import (
	"math/rand"
	"testing"
)

// FuzzShardedResolveMatchesSequential fuzzes the er-layer equivalence:
// every input derives a random table, random must/cannot constraints and
// a shard count, and the sharded plan/resolve/merge must reproduce the
// sequential constrained clustering exactly. The seed corpus covers the
// shard counts the property tests sweep; the fuzzer then mutates its way
// into table shapes and constraint sets we did not think of. CI runs it
// as a short smoke (-fuzz=FuzzSharded -fuzztime=10s); the corpus also
// executes as ordinary seed cases under plain `go test`.
// FuzzStreamingRefreshMatchesFullTail fuzzes the end-to-end streaming
// contract: every input derives a small universe, a shard count, a trust
// worker count and a randomized feedback/refresh script, and the
// streaming session's artefact fingerprints must stay byte-identical to
// the strictly sequential full-tail baseline after every step
// (CheckParallelTrustDeterminism also tallies component adoption, so the
// fuzzer exercises the warm short-circuit, the recompute path and the
// trust fan-out at workers 1/2/4/8). Runs as a short CI smoke
// (-fuzz=FuzzStreamingRefresh -fuzztime=10s); the corpus executes as
// ordinary seed cases under plain `go test`.
func FuzzStreamingRefreshMatchesFullTail(f *testing.F) {
	f.Add(int64(3), uint8(4), uint8(2), uint8(1))
	f.Add(int64(17), uint8(1), uint8(1), uint8(0))
	f.Add(int64(-9), uint8(8), uint8(3), uint8(3))
	f.Add(int64(11), uint8(4), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, shards, steps, workers uint8) {
		n := int(shards)%8 + 1
		st := int(steps)%3 + 1
		wk := []int{1, 2, 4, 8}[int(workers)%4]
		CheckParallelTrustDeterminism(t, seed, 4, st, []int{wk}, []int{n})
	})
}

func FuzzShardedResolveMatchesSequential(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(40))
	f.Add(int64(7), uint8(1), uint8(3))
	f.Add(int64(23), uint8(8), uint8(120))
	f.Add(int64(-5), uint8(4), uint8(77))
	f.Fuzz(func(t *testing.T, seed int64, shards, rows uint8) {
		n := int(shards)%8 + 1
		nRows := 1 + int(rows)%160
		rng := rand.New(rand.NewSource(seed))
		tab := RandomTable(rng, nRows)
		must, cannot := RandomConstraints(rng, tab.Len())
		if err := CheckShardedResolve(tab, n, must, cannot); err != nil {
			t.Fatalf("seed=%d shards=%d rows=%d: %v", seed, n, nRows, err)
		}
	})
}
