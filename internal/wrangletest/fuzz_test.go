package wrangletest

import (
	"math/rand"
	"testing"
)

// FuzzShardedResolveMatchesSequential fuzzes the er-layer equivalence:
// every input derives a random table, random must/cannot constraints and
// a shard count, and the sharded plan/resolve/merge must reproduce the
// sequential constrained clustering exactly. The seed corpus covers the
// shard counts the property tests sweep; the fuzzer then mutates its way
// into table shapes and constraint sets we did not think of. CI runs it
// as a short smoke (-fuzz=FuzzSharded -fuzztime=10s); the corpus also
// executes as ordinary seed cases under plain `go test`.
func FuzzShardedResolveMatchesSequential(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(40))
	f.Add(int64(7), uint8(1), uint8(3))
	f.Add(int64(23), uint8(8), uint8(120))
	f.Add(int64(-5), uint8(4), uint8(77))
	f.Fuzz(func(t *testing.T, seed int64, shards, rows uint8) {
		n := int(shards)%8 + 1
		nRows := 1 + int(rows)%160
		rng := rand.New(rand.NewSource(seed))
		tab := RandomTable(rng, nRows)
		must, cannot := RandomConstraints(rng, tab.Len())
		if err := CheckShardedResolve(tab, n, must, cannot); err != nil {
			t.Fatalf("seed=%d shards=%d rows=%d: %v", seed, n, nRows, err)
		}
	})
}
