package wrangletest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// These tests pin the durable-log acceptance property: a session closed
// and reopened from its log is indistinguishable from the live session it
// was — the working data fingerprints byte-identically, every retained
// snapshot version round-trips exactly (metadata, change set and all
// published artefacts), compaction errors survive the restart, and the
// first reaction after a warm restart runs the partial tail, not a cold
// integration.

// openDurable attaches a fresh durable log in dir to w, failing the test
// on any error.
func openDurable(t *testing.T, w *core.Wrangler, dir string) bool {
	t.Helper()
	d, err := core.OpenDurableLog(dir, core.FsyncOnCheckpoint)
	if err != nil {
		t.Fatalf("open durable log: %v", err)
	}
	restored, err := w.AttachDurableLog(d)
	if err != nil {
		t.Fatalf("attach durable log: %v", err)
	}
	return restored
}

// fingerprintVersion renders one committed snapshot version — metadata,
// change set and every published artefact — into a stable string, the
// per-version analogue of Fingerprint.
func fingerprintVersion(v *core.PublishedVersion) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d step=%d origin=%s at=%d\n", v.Seq(), v.Step(), v.Origin(), v.At().UnixNano())
	c := v.Changes()
	fmt.Fprintf(&b, "changes full=%v shards=%v pages=%d shared=%d recs=%v removed=%v\n",
		c.Full, c.ChangedShards, c.ChangedPages, c.SharedPages, c.ChangedRecords, c.RemovedRecords)
	d := v.Data()
	if t := d.Table; t != nil {
		fmt.Fprintf(&b, "schema %s\n", t.Schema().String())
		for i := 0; i < t.Len(); i++ {
			parts := make([]string, len(t.Row(i)))
			for j, val := range t.Row(i) {
				parts[j] = val.Key()
			}
			fmt.Fprintf(&b, "%d: %s\n", i, strings.Join(parts, "|"))
		}
	}
	if d.Report != nil {
		fmt.Fprintf(&b, "report %q\n", d.Report.Title)
		for _, l := range d.Report.Lines {
			fmt.Fprintf(&b, "%s/%s = %s conf=%g conflict=%v sup=%s\n",
				l.Entity, l.Attribute, l.Value, l.Confidence, l.Conflict, strings.Join(l.Supporters, ","))
		}
	}
	fmt.Fprintf(&b, "stats proc=%d sel=%d rows=%d/%d reex=%v repairs=%d fail=%v dur=%d stages=%s\n",
		d.Stats.SourcesProcessed, d.Stats.SourcesSelected, d.Stats.RowsExtracted, d.Stats.RowsWrangled,
		d.Stats.Reextracted, d.Stats.WrapperRepairs, d.Stats.Failures, d.Stats.Duration, stagesKey(d.Stats.Stages))
	fmt.Fprintf(&b, "react fb=%d reex=%d remap=%d reclustered=%v refused=%v resolved=%d reused=%d dur=%d stages=%s\n",
		d.React.FeedbackItems, d.React.SourcesReextracted, d.React.Remapped, d.React.Reclustered,
		d.React.Refused, d.React.ShardsResolved, d.React.ShardsReused, d.React.Duration, stagesKey(d.React.Stages))
	ids := make([]string, 0, len(d.Trust))
	for id := range d.Trust {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "trust %s = %g\n", id, d.Trust[id])
	}
	ids = ids[:0]
	for id := range d.Sources {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "source %s = %+v\n", id, d.Sources[id])
	}
	fmt.Fprintf(&b, "selected %s\nentities %s\n", strings.Join(d.Selected, ","), strings.Join(d.Entities, ","))
	return b.String()
}

func stagesKey(m map[string]time.Duration) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, ",")
}

// compareStores fails the test unless both serve stores retain the same
// version sequence and every retained version fingerprints identically.
func compareStores(t *testing.T, stage string, live, restored *core.VersionStore) {
	t.Helper()
	wantSeqs, gotSeqs := live.Versions(), restored.Versions()
	if fmt.Sprint(wantSeqs) != fmt.Sprint(gotSeqs) {
		t.Fatalf("%s: retained versions diverged: live %v, restored %v", stage, wantSeqs, gotSeqs)
	}
	for _, seq := range wantSeqs {
		lv, err := live.At(seq)
		if err != nil {
			t.Fatalf("%s: live At(%d): %v", stage, seq, err)
		}
		rv, err := restored.At(seq)
		if err != nil {
			t.Fatalf("%s: restored At(%d): %v", stage, seq, err)
		}
		want, got := fingerprintVersion(lv), fingerprintVersion(rv)
		if want != got {
			t.Fatalf("%s: version %d diverged after restore:\n%s", stage, seq, firstDiff(want, got))
		}
	}
}

// reopen closes w's durable log and rehydrates a fresh same-universe
// wrangler from it, replaying the script's world churn so the synthetic
// provider is in the same state the live session left it.
func reopen(t *testing.T, dir string, seed int64, nSources, shards int, streaming bool, script []Step) *core.Wrangler {
	t.Helper()
	var w *core.Wrangler
	if streaming {
		w = NewStreamingWrangler(seed, nSources, shards)
	} else {
		w = NewWrangler(seed, nSources, shards)
	}
	// The log restores the session, not the world: replay the churn calls
	// so the provider's synthetic universe matches the live one.
	for _, step := range script {
		if step.Churn > 0 {
			w.EvolveWorld(step.Churn)
		}
	}
	if !openDurable(t, w, dir) {
		t.Fatal("reopen did not restore a session from the log")
	}
	return w
}

// TestDurableWarmRestartFingerprint is the acceptance property: run a
// streaming sharded session under a durable log, drive it through a
// seeded feedback/refresh script, close it, reopen from the directory —
// and the reopened session must fingerprint byte-identically to the live
// one, at the working data and at every retained version. Then both
// sessions refresh the same single source; the restored one must reuse
// shards (warm partial tail) and stay byte-identical.
func TestDurableWarmRestartFingerprint(t *testing.T) {
	const (
		seed     = int64(11)
		nSources = 6
		shards   = 4
		steps    = 5
	)
	ctx := context.Background()
	dir := t.TempDir()

	live := NewStreamingWrangler(seed, nSources, shards)
	if openDurable(t, live, dir) {
		t.Fatal("fresh directory claimed to restore a session")
	}
	if _, err := live.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	script := Script(rng, live, steps)
	for _, step := range script {
		if _, _, err := step.Apply(ctx, live); err != nil {
			t.Fatalf("%s: %v", step.Name, err)
		}
	}
	if err := live.Durable().Close(); err != nil {
		t.Fatalf("close durable log: %v", err)
	}

	restored := reopen(t, dir, seed, nSources, shards, true, script)
	if want, got := Fingerprint(live), Fingerprint(restored); want != got {
		t.Fatalf("restored session diverged from live:\n%s", firstDiff(want, got))
	}
	compareStores(t, "after reopen", live.Serve, restored.Serve)

	// First post-restart reaction: refresh one source on both sessions.
	// The restored memo must engage — shards reused, not a cold tail —
	// and the outputs must stay identical.
	target := live.SelectedSources()[0]
	if _, err := live.RefreshSourcesContext(ctx, []string{target}); err != nil {
		t.Fatalf("live refresh: %v", err)
	}
	stats, err := restored.RefreshSourcesContext(ctx, []string{target})
	if err != nil {
		t.Fatalf("restored refresh: %v", err)
	}
	if stats.ShardsReused == 0 {
		t.Fatalf("first post-restart reaction reused no shards (resolved %d): the restored memo did not engage", stats.ShardsResolved)
	}
	if want, got := Fingerprint(live), Fingerprint(restored); want != got {
		t.Fatalf("post-restart reaction diverged from live:\n%s", firstDiff(want, got))
	}
}

// TestDurableSequentialRoundTrip pins the mode-0 record path: a session
// with a sequential integration tail (no shards, no pages) round-trips
// through the log just as exactly.
func TestDurableSequentialRoundTrip(t *testing.T) {
	const (
		seed     = int64(5)
		nSources = 5
		steps    = 3
	)
	ctx := context.Background()
	dir := t.TempDir()

	live := NewWrangler(seed, nSources, 0)
	openDurable(t, live, dir)
	if _, err := live.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	script := Script(rng, live, steps)
	for _, step := range script {
		if _, _, err := step.Apply(ctx, live); err != nil {
			t.Fatalf("%s: %v", step.Name, err)
		}
	}
	if err := live.Durable().Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	restored := reopen(t, dir, seed, nSources, 0, false, script)
	if want, got := Fingerprint(live), Fingerprint(restored); want != got {
		t.Fatalf("restored sequential session diverged:\n%s", firstDiff(want, got))
	}
	compareStores(t, "sequential reopen", live.Serve, restored.Serve)

	// Sequential sessions react too — feedback replay must leave both
	// sides identical.
	target := live.SelectedSources()[0]
	if _, err := live.RefreshSourcesContext(ctx, []string{target}); err != nil {
		t.Fatalf("live refresh: %v", err)
	}
	if _, err := restored.RefreshSourcesContext(ctx, []string{target}); err != nil {
		t.Fatalf("restored refresh: %v", err)
	}
	if want, got := Fingerprint(live), Fingerprint(restored); want != got {
		t.Fatalf("sequential post-restart reaction diverged:\n%s", firstDiff(want, got))
	}
}

// TestDurableErrCompactedConsistency pins the retention contract across a
// restart: a version pruned from the live retention window must answer
// At(seq) with serve.ErrCompacted both before the close and immediately
// after rehydration — the HTTP layer turns exactly this error into a 410.
func TestDurableErrCompactedConsistency(t *testing.T) {
	const (
		seed     = int64(23)
		nSources = 5
		shards   = 2
	)
	ctx := context.Background()
	dir := t.TempDir()

	live := NewStreamingWrangler(seed, nSources, shards)
	openDurable(t, live, dir)
	if _, err := live.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Publish past the retention window (DefaultRetain versions).
	retain := live.Serve.Retain()
	rng := rand.New(rand.NewSource(seed))
	script := Script(rng, live, retain+2)
	for _, step := range script {
		if _, _, err := step.Apply(ctx, live); err != nil {
			t.Fatalf("%s: %v", step.Name, err)
		}
	}
	oldest := live.Serve.Versions()[0]
	if oldest < 2 {
		t.Fatalf("script did not push version 1 out of the retention window (oldest retained %d)", oldest)
	}
	if _, err := live.Serve.At(1); !errors.Is(err, serve.ErrCompacted) {
		t.Fatalf("live At(1) = %v, want ErrCompacted", err)
	}
	if err := live.Durable().Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	restored := reopen(t, dir, seed, nSources, shards, true, script)
	if _, err := restored.Serve.At(1); !errors.Is(err, serve.ErrCompacted) {
		t.Fatalf("restored At(1) = %v, want ErrCompacted", err)
	}
	if _, err := restored.Serve.At(oldest); err != nil {
		t.Fatalf("restored At(%d) (oldest retained) = %v, want ok", oldest, err)
	}
	compareStores(t, "post-compaction reopen", live.Serve, restored.Serve)
}

// TestDurableCheckpointAndStats drives an explicit checkpoint: the log
// compacts down to the retention window (shrinking or bounding the file),
// stats report the checkpoint seq, and a reopen afterwards still restores
// the exact session.
func TestDurableCheckpointAndStats(t *testing.T) {
	const (
		seed     = int64(31)
		nSources = 5
		shards   = 2
	)
	ctx := context.Background()
	dir := t.TempDir()

	live := NewStreamingWrangler(seed, nSources, shards)
	openDurable(t, live, dir)
	if _, err := live.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	script := Script(rng, live, 3)
	for _, step := range script {
		if _, _, err := step.Apply(ctx, live); err != nil {
			t.Fatalf("%s: %v", step.Name, err)
		}
	}
	if err := live.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st := live.Durable().Stats()
	latest := live.Serve.Latest().Seq()
	if st.LastCheckpointSeq != latest {
		t.Fatalf("checkpoint seq = %d, want latest published %d", st.LastCheckpointSeq, latest)
	}
	if st.RetainedVersions != len(live.Serve.Versions()) {
		t.Fatalf("stats retain %d versions, store retains %d", st.RetainedVersions, len(live.Serve.Versions()))
	}
	if st.Bytes <= 0 {
		t.Fatalf("stats report %d log bytes", st.Bytes)
	}
	if err := live.Durable().Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	restored := reopen(t, dir, seed, nSources, shards, true, script)
	if want, got := Fingerprint(live), Fingerprint(restored); want != got {
		t.Fatalf("post-checkpoint reopen diverged:\n%s", firstDiff(want, got))
	}
	compareStores(t, "post-checkpoint reopen", live.Serve, restored.Serve)
}

// TestDurableConfigMismatchRefused pins the compatibility gate: a log
// written by one configuration must refuse to attach to a session with a
// different shard count instead of restoring garbage.
func TestDurableConfigMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	live := NewStreamingWrangler(3, 4, 2)
	openDurable(t, live, dir)
	if _, err := live.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := live.Durable().Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	other := NewStreamingWrangler(3, 4, 3) // different shard count
	d, err := core.OpenDurableLog(dir, core.FsyncOnCheckpoint)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	if _, err := other.AttachDurableLog(d); err == nil {
		t.Fatal("attach accepted a log written under a different configuration")
	}
}
