package wrangletest

import (
	"math/rand"
	"testing"
)

// shardCounts is the matrix the ISSUE pins: a degenerate single shard,
// and 2/4/8-way fan-outs.
var shardCounts = []int{1, 2, 4, 8}

// TestShardedPipelineMatchesSequential is the acceptance property: for
// randomized universes and randomized feedback/refresh interleavings,
// the sharded integration tail is byte-identical to the sequential one —
// table, fused results, report, trust, clustering and provenance — at
// shard counts 1/2/4/8, after the initial run and after every reaction.
func TestShardedPipelineMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline determinism sweep is not -short")
	}
	for _, seed := range []int64{3, 17} {
		seed := seed
		t.Run(string(rune('A'+seed%26)), func(t *testing.T) {
			t.Parallel()
			CheckDeterminism(t, seed, 6, 5, shardCounts)
		})
	}
}

// TestShardedResolveMatchesSequential drives the er-layer property over
// many seeded random tables and constraint sets: plan + per-shard
// resolve + merge reproduces the sequential constrained clustering
// exactly. This is the fast inner loop of the harness (no pipeline, no
// universe), so it can afford hundreds of cases per run.
func TestShardedResolveMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := RandomTable(rng, 2+rng.Intn(150))
		must, cannot := RandomConstraints(rng, tab.Len())
		for _, n := range shardCounts {
			if err := CheckShardedResolve(tab, n, must, cannot); err != nil {
				t.Fatalf("seed %d rows %d: %v", seed, tab.Len(), err)
			}
		}
	}
}

// TestShardedResolveEmptyAndTiny pins the degenerate shapes: an empty
// table, a single row, fewer rows than shards.
func TestShardedResolveEmptyAndTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, rows := range []int{0, 1, 2, 3} {
		tab := RandomTable(rng, rows)
		for _, n := range shardCounts {
			if rows == 0 {
				continue // ResolveConstrained short-circuits; nothing to shard
			}
			if err := CheckShardedResolve(tab, n, nil, nil); err != nil {
				t.Fatalf("rows=%d shards=%d: %v", rows, n, err)
			}
		}
	}
}
