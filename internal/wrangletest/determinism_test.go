package wrangletest

import (
	"math/rand"
	"testing"
)

// shardCounts is the matrix the ISSUE pins: a degenerate single shard,
// and 2/4/8-way fan-outs.
var shardCounts = []int{1, 2, 4, 8}

// TestShardedPipelineMatchesSequential is the acceptance property: for
// randomized universes and randomized feedback/refresh interleavings,
// the sharded integration tail is byte-identical to the sequential one —
// table, fused results, report, trust, clustering and provenance — at
// shard counts 1/2/4/8, after the initial run and after every reaction.
func TestShardedPipelineMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline determinism sweep is not -short")
	}
	for _, seed := range []int64{3, 17} {
		seed := seed
		t.Run(string(rune('A'+seed%26)), func(t *testing.T) {
			t.Parallel()
			CheckDeterminism(t, seed, 6, 5, shardCounts)
		})
	}
}

// TestStreamingPipelineMatchesFullTail is the streaming acceptance
// property: for randomized universes and randomized feedback/refresh
// interleavings, a streaming session — which re-resolves and re-fuses
// only the shards each reaction dirtied — is byte-identical to the
// sequential full-tail baseline at shard counts 1/2/4/8, after the
// initial run and after every reaction. The reuse total must be positive
// across the sweep: a streaming path that silently fell back to full
// recompute would pass the identity check without testing anything.
func TestStreamingPipelineMatchesFullTail(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline determinism sweep is not -short")
	}
	reused := 0
	for _, seed := range []int64{3, 17} {
		reused += CheckStreamingDeterminism(t, seed, 6, 5, shardCounts)
	}
	if reused == 0 {
		t.Fatal("streaming sweep never reused a shard — the partial tail did not engage")
	}
}

// TestParallelTrustPipelineMatchesFullTail extends the streaming sweep
// across the trust fixpoint's worker fan-out: streaming sessions at
// workers 1/2/4/8 × shards 1/4 must stay byte-identical to a strictly
// sequential (workers=1) full-tail baseline after the initial run and
// after every reaction. The adopted-component total must be positive
// across the sweep: a warm path that silently recomputed every component
// would pass the identity check without testing the short-circuit.
func TestParallelTrustPipelineMatchesFullTail(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline determinism sweep is not -short")
	}
	adopted := 0
	for _, seed := range []int64{5, 23} {
		adopted += CheckParallelTrustDeterminism(t, seed, 6, 4, []int{1, 2, 4, 8}, []int{1, 4})
	}
	if adopted == 0 {
		t.Fatal("parallel trust sweep never adopted a memoized component — the per-component short-circuit did not engage")
	}
}

// TestStreamingRePlanMatchesFresh drives the er-layer streaming property
// over many seeded random tables and mutation scripts: memoize a
// resolved plan, mutate the table, and the incremental re-plan (dirty
// rows re-blocked, untouched shards' clusters translated by reference)
// must reproduce the fresh plan + full resolve exactly.
func TestStreamingRePlanMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		rows := 2 + rng.Intn(120)
		for _, n := range shardCounts {
			if err := CheckStreamingRePlan(rng, rows, n); err != nil {
				t.Fatalf("seed %d rows %d shards %d: %v", seed, rows, n, err)
			}
		}
	}
}

// TestShardedResolveMatchesSequential drives the er-layer property over
// many seeded random tables and constraint sets: plan + per-shard
// resolve + merge reproduces the sequential constrained clustering
// exactly. This is the fast inner loop of the harness (no pipeline, no
// universe), so it can afford hundreds of cases per run.
func TestShardedResolveMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := RandomTable(rng, 2+rng.Intn(150))
		must, cannot := RandomConstraints(rng, tab.Len())
		for _, n := range shardCounts {
			if err := CheckShardedResolve(tab, n, must, cannot); err != nil {
				t.Fatalf("seed %d rows %d: %v", seed, tab.Len(), err)
			}
		}
	}
}

// TestShardedResolveEmptyAndTiny pins the degenerate shapes: an empty
// table, a single row, fewer rows than shards.
func TestShardedResolveEmptyAndTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, rows := range []int{0, 1, 2, 3} {
		tab := RandomTable(rng, rows)
		for _, n := range shardCounts {
			if rows == 0 {
				continue // ResolveConstrained short-circuits; nothing to shard
			}
			if err := CheckShardedResolve(tab, n, nil, nil); err != nil {
				t.Fatalf("rows=%d shards=%d: %v", rows, n, err)
			}
		}
	}
}
