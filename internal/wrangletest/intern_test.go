package wrangletest

import (
	"context"
	"testing"
)

// TestInternedKeysFingerprintStable pins the PR-9 allocation squeeze's
// identity contract directly: interned row keys, per-row normalized
// feature state and the memoized similarity path must not change a
// single byte of any published artefact. The sequential fingerprint is
// the baseline; every sharded tail must reproduce it exactly, both after
// the initial run and after a refresh that rebuilds the union through
// the interner's reuse path.
func TestInternedKeysFingerprintStable(t *testing.T) {
	const seed, nSources = 11, 6
	base := NewWrangler(seed, nSources, 0)
	if _, err := base.Run(); err != nil {
		t.Fatal(err)
	}
	wantRun := Fingerprint(base)
	if _, err := base.RefreshSourcesContext(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	wantRefresh := Fingerprint(base)

	for _, shards := range shardCounts {
		w := NewWrangler(seed, nSources, shards)
		if _, err := w.Run(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := Fingerprint(w); got != wantRun {
			t.Errorf("shards=%d: fingerprint after run diverges from sequential", shards)
		}
		if _, err := w.RefreshSourcesContext(context.Background(), nil); err != nil {
			t.Fatalf("shards=%d refresh: %v", shards, err)
		}
		if got := Fingerprint(w); got != wantRefresh {
			t.Errorf("shards=%d: fingerprint after refresh diverges from sequential", shards)
		}
	}
}
