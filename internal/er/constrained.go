package er

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// ResolveConstrained clusters like Resolve but honours hard constraints
// from feedback: must-link pairs are merged regardless of score, and
// cannot-link pairs prevent their components from ever merging (checked
// before every union, so a cannot-link also vetoes indirect merges
// through transitivity). Must-links are applied first; a must-link that
// directly contradicts a cannot-link wins and the contradiction is
// reported in conflicts.
func (r *Resolver) ResolveConstrained(t *dataset.Table, must, cannot []Pair) (*Clustering, int, error) {
	if t.Len() == 0 {
		return &Clustering{}, 0, nil
	}
	if r.NameColumn == "" && r.KeyColumn == "" {
		return nil, 0, fmt.Errorf("er: resolver needs at least a key or name column")
	}
	parent := make([]int, t.Len())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// forbidden[root] = set of roots this component must not join.
	forbidden := map[int]map[int]bool{}
	addForbidden := func(a, b int) {
		if forbidden[a] == nil {
			forbidden[a] = map[int]bool{}
		}
		forbidden[a][b] = true
		if forbidden[b] == nil {
			forbidden[b] = map[int]bool{}
		}
		forbidden[b][a] = true
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Merge the smaller forbidden set into the larger's root.
		if len(forbidden[ra]) > len(forbidden[rb]) {
			ra, rb = rb, ra
		}
		parent[ra] = rb
		for f := range forbidden[ra] {
			addForbidden(rb, f)
		}
		delete(forbidden, ra)
	}
	allowed := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return true
		}
		return !forbidden[ra][rb]
	}

	conflicts := 0
	// 1. Must-links are facts: apply unconditionally, count contradictions.
	for _, p := range must {
		if !validPair(p, t.Len()) {
			continue
		}
		if !allowed(p.I, p.J) {
			conflicts++
		}
		union(p.I, p.J)
	}
	// 2. Cannot-links between the resulting components.
	for _, p := range cannot {
		if !validPair(p, t.Len()) {
			continue
		}
		ra, rb := find(p.I), find(p.J)
		if ra == rb {
			conflicts++ // already forced together by must-links
			continue
		}
		addForbidden(ra, rb)
	}
	// 3. Scored pairs, best first, blocked by constraints. Descending
	// order matters: the strongest evidence claims components before a
	// weaker pair could route around a cannot-link.
	type scoredPair struct {
		p Pair
		s float64
	}
	var scored []scoredPair
	for _, p := range r.CandidatePairs(t) {
		s := r.Score(r.Features(t, p.I, p.J))
		if s >= r.Threshold {
			scored = append(scored, scoredPair{p: p, s: s})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].s != scored[j].s {
			return scored[i].s > scored[j].s
		}
		if scored[i].p.I != scored[j].p.I {
			return scored[i].p.I < scored[j].p.I
		}
		return scored[i].p.J < scored[j].p.J
	})
	for _, sp := range scored {
		if allowed(sp.p.I, sp.p.J) {
			union(sp.p.I, sp.p.J)
		}
	}
	// Dense cluster ids.
	ids := map[int]int{}
	assign := make([]int, t.Len())
	for i := range assign {
		root := find(i)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		assign[i] = id
	}
	return &Clustering{Assign: assign, Num: len(ids)}, conflicts, nil
}

func validPair(p Pair, n int) bool {
	return p.I >= 0 && p.J >= 0 && p.I < n && p.J < n && p.I != p.J
}
