package er

import (
	"fmt"

	"repro/internal/dataset"
)

// ResolveConstrained clusters like Resolve but honours hard constraints
// from feedback: must-link pairs are merged regardless of score, and
// cannot-link pairs prevent their components from ever merging (checked
// before every union, so a cannot-link also vetoes indirect merges
// through transitivity). Must-links are applied first; a must-link that
// directly contradicts a cannot-link wins and the contradiction is
// reported in conflicts.
// The clustering core (constraint ordering, scored-pair descent, the
// union-find itself) lives in resolveRows (shard.go), shared verbatim
// with the sharded path — one implementation is what keeps "sharded is
// byte-identical to sequential" from being two implementations agreeing
// by luck.
func (r *Resolver) ResolveConstrained(t *dataset.Table, must, cannot []Pair) (*Clustering, int, error) {
	if t.Len() == 0 {
		return &Clustering{}, 0, nil
	}
	if r.NameColumn == "" && r.KeyColumn == "" {
		return nil, 0, fmt.Errorf("er: resolver needs at least a key or name column")
	}
	r.Prepare(t)
	rows := make([]int, t.Len())
	for i := range rows {
		rows[i] = i
	}
	roots, conflicts := r.resolveRows(t, rows, r.CandidatePairs(t), must, cannot)
	// Dense cluster ids by first appearance in row order.
	ids := map[int]int{}
	assign := make([]int, t.Len())
	for i := range assign {
		root := roots[i]
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		assign[i] = id
	}
	return &Clustering{Assign: assign, Num: len(ids)}, conflicts, nil
}

func validPair(p Pair, n int) bool {
	return p.I >= 0 && p.J >= 0 && p.I < n && p.J < n && p.I != p.J
}
