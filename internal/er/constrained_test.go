package er

import (
	"testing"

	"repro/internal/dataset"
)

func constraintTable() *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	// 0 & 1: near-identical (rule merges). 2: similar to 0 (rule merges).
	// 3: unrelated.
	t.AppendValues(dataset.Null(), dataset.String("Anker Pro USB Cable 2m"), dataset.String("Anker"), dataset.Float(10))
	t.AppendValues(dataset.Null(), dataset.String("Anker Pro USB Cable 2m"), dataset.String("Anker"), dataset.Float(10))
	t.AppendValues(dataset.Null(), dataset.String("Anker Pro USB Cabel 2m"), dataset.String("Anker"), dataset.Float(10.1))
	t.AppendValues(dataset.Null(), dataset.String("Voltix Kettle Steel"), dataset.String("Voltix"), dataset.Float(45))
	return t
}

func TestResolveConstrainedNoConstraintsMatchesResolve(t *testing.T) {
	tab := constraintTable()
	r := NewResolver("sku", "name", "brand", "price")
	plain, err := r.Resolve(tab)
	if err != nil {
		t.Fatal(err)
	}
	constrained, conflicts, err := r.ResolveConstrained(tab, nil, nil)
	if err != nil || conflicts != 0 {
		t.Fatal(err, conflicts)
	}
	if plain.Num != constrained.Num {
		t.Errorf("cluster counts differ: %d vs %d", plain.Num, constrained.Num)
	}
	for i := range plain.Assign {
		for j := range plain.Assign {
			if (plain.Assign[i] == plain.Assign[j]) != (constrained.Assign[i] == constrained.Assign[j]) {
				t.Fatalf("partitions differ at (%d,%d)", i, j)
			}
		}
	}
}

func TestMustLinkForcesMerge(t *testing.T) {
	tab := constraintTable()
	r := NewResolver("sku", "name", "brand", "price")
	// 0 and 3 are nothing alike; a must-link still merges them.
	c, conflicts, err := r.ResolveConstrained(tab, []Pair{{I: 0, J: 3}}, nil)
	if err != nil || conflicts != 0 {
		t.Fatal(err, conflicts)
	}
	if c.Assign[0] != c.Assign[3] {
		t.Error("must-link ignored")
	}
}

func TestCannotLinkBlocksMerge(t *testing.T) {
	tab := constraintTable()
	r := NewResolver("sku", "name", "brand", "price")
	// Rows 0 and 2 would merge by similarity; the user says they are
	// different products.
	c, conflicts, err := r.ResolveConstrained(tab, nil, []Pair{{I: 0, J: 2}})
	if err != nil || conflicts != 0 {
		t.Fatal(err, conflicts)
	}
	if c.Assign[0] == c.Assign[2] {
		t.Error("cannot-link ignored")
	}
	// 0 and 1 still merge.
	if c.Assign[0] != c.Assign[1] {
		t.Error("unconstrained merge lost")
	}
}

func TestCannotLinkBlocksTransitiveMerge(t *testing.T) {
	tab := constraintTable()
	r := NewResolver("sku", "name", "brand", "price")
	// Cannot-link 1 and 2: even though both are similar to 0, the
	// clustering must not route 1 and 2 into one cluster through 0.
	c, _, err := r.ResolveConstrained(tab, nil, []Pair{{I: 1, J: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Assign[1] == c.Assign[2] {
		t.Error("transitive merge violated the cannot-link")
	}
}

func TestMustWinsOverCannotConflict(t *testing.T) {
	tab := constraintTable()
	r := NewResolver("sku", "name", "brand", "price")
	c, conflicts, err := r.ResolveConstrained(tab,
		[]Pair{{I: 0, J: 1}}, []Pair{{I: 0, J: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", conflicts)
	}
	if c.Assign[0] != c.Assign[1] {
		t.Error("must-link should win the contradiction")
	}
}

func TestConstrainedInvalidPairsIgnored(t *testing.T) {
	tab := constraintTable()
	r := NewResolver("sku", "name", "brand", "price")
	c, conflicts, err := r.ResolveConstrained(tab,
		[]Pair{{I: -1, J: 2}, {I: 0, J: 99}, {I: 1, J: 1}}, nil)
	if err != nil || conflicts != 0 {
		t.Fatal(err, conflicts)
	}
	if len(c.Assign) != tab.Len() {
		t.Error("clustering incomplete")
	}
}

func TestConstrainedEmptyTable(t *testing.T) {
	empty := dataset.NewTable(constraintTable().Schema())
	r := NewResolver("sku", "name", "brand", "price")
	c, _, err := r.ResolveConstrained(empty, nil, nil)
	if err != nil || c.Num != 0 {
		t.Error("empty table should yield empty clustering")
	}
}

func TestConstrainedPartitionValid(t *testing.T) {
	tab, truth := dupTable(9, 40)
	r := NewResolver("sku", "name", "brand", "price")
	var must, cannot []Pair
	// Derive a few constraints from truth.
	for i := 0; i < 20; i += 2 {
		if truth[i] == truth[i+1] {
			must = append(must, Pair{I: i, J: i + 1})
		} else {
			cannot = append(cannot, Pair{I: i, J: i + 1})
		}
	}
	c, _, err := r.ResolveConstrained(tab, must, cannot)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, id := range c.Assign {
		if id < 0 || id >= c.Num {
			t.Fatal("invalid cluster id")
		}
		seen[id] = true
	}
	if len(seen) != c.Num {
		t.Fatal("cluster ids not dense")
	}
	// Constraints respected.
	for _, p := range must {
		if c.Assign[p.I] != c.Assign[p.J] {
			t.Fatal("must-link violated")
		}
	}
	for _, p := range cannot {
		if c.Assign[p.I] == c.Assign[p.J] {
			t.Fatal("cannot-link violated")
		}
	}
	// Constraints should not hurt quality vs truth.
	_, _, f1 := PairwiseMetrics(c, truth)
	plain, _ := r.Resolve(tab)
	_, _, f1Plain := PairwiseMetrics(plain, truth)
	if f1 < f1Plain-0.02 {
		t.Errorf("true constraints degraded F1: %f vs %f", f1, f1Plain)
	}
}
