package er

import (
	"testing"

	"repro/internal/text"
)

// These tests pin the allocation behaviour of the matcher's hot path.
// The per-row precompute (prep.go) exists so that scoring a candidate
// pair touches no string machinery; if a change reintroduces per-pair
// normalization or tokenization these ceilings fail long before a
// benchmark run would notice.

// TestFeaturesAllocs pins the prepared fast path at zero allocations per
// scored pair (with warmed scratch and similarity memo), and confirms the
// cold per-pair path really is the expensive one the precompute replaces.
func TestFeaturesAllocs(t *testing.T) {
	tab, _ := dupTable(7, 64)
	r := NewResolver("sku", "name", "brand", "price")

	f := make([]float64, len(FeatureNames))
	var sc text.Scratch
	cold := testing.AllocsPerRun(100, func() {
		r.featuresInto(tab, 0, 1, f, &sc)
	})

	r.Prepare(tab)
	warm := testing.AllocsPerRun(100, func() {
		r.featuresInto(tab, 0, 1, f, &sc)
	})
	if warm != 0 {
		t.Errorf("prepared featuresInto = %.1f allocs/op, want 0", warm)
	}
	if cold <= warm {
		t.Errorf("cold featuresInto = %.1f allocs/op, not above prepared %.1f — the fast path is not engaging", cold, warm)
	}

	// The exported form owns its result vector and scratch; with the
	// prepared state those are the only allocations.
	feat := testing.AllocsPerRun(100, func() {
		_ = r.Features(tab, 0, 1)
	})
	if feat > 4 {
		t.Errorf("prepared Features = %.1f allocs/op, want <= 4", feat)
	}
}

// TestResolveRowsAllocs bounds a 64-row constrained clustering pass. The
// ceiling is ~1.2x the measured cost after the PR-9 squeeze (union-find
// state, the scored-pair slab and memo warm-up); a regression that brings
// back per-pair feature allocations overshoots it by an order of
// magnitude.
func TestResolveRowsAllocs(t *testing.T) {
	tab, _ := dupTable(7, 64)
	if tab.Len() < 64 {
		t.Fatalf("fixture too small: %d rows", tab.Len())
	}
	r := NewResolver("sku", "name", "brand", "price")
	r.Prepare(tab)
	rows := make([]int, 64)
	for i := range rows {
		rows[i] = i
	}
	var pairs []Pair
	for _, p := range r.CandidatePairs(tab) {
		if p.I < 64 && p.J < 64 {
			pairs = append(pairs, p)
		}
	}
	if len(pairs) == 0 {
		t.Fatal("no candidate pairs within the 64-row window")
	}
	got := testing.AllocsPerRun(10, func() {
		r.resolveRows(tab, rows, pairs, nil, nil)
	})
	// Measured at 21 allocs/op for ~1800 pairs after the squeeze; the
	// ceiling leaves ~1.4x headroom. Per-pair feature allocations would
	// put this in the thousands.
	const ceiling = 30
	if got > ceiling {
		t.Errorf("64-row resolveRows = %.1f allocs/op, want <= %d", got, ceiling)
	}
}
