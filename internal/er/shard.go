package er

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/text"
)

// This file partitions entity resolution by blocking key so the
// integration tail can fan out: candidate pairs are computed once,
// globally, exactly as the sequential path computes them (oversized
// blocks skipped, same dedup, same order); rows connected through shared
// blocks — or forced together by must-link feedback — form components
// that no scored pair can ever cross; and each component is routed whole
// to a deterministic owner shard. Per-shard clustering over disjoint
// components commutes, so resolving the shards independently and merging
// yields byte-identical clusters to one sequential resolve. Re-blocking
// per shard would NOT be safe: a subset of an oversized (skipped) block
// can fall under MaxBlockSize inside a shard and emit pairs the
// sequential run never scored. Computing pairs once globally is what
// makes the equivalence exact.

// ShardPlan is a deterministic partition of a table's rows into disjoint
// shards for parallel entity resolution and fusion. Two rows that share
// any usable block (and, transitively, any chain of such blocks or
// must-links) are always in the same shard, so no candidate pair ever
// crosses shards.
type ShardPlan struct {
	// NumShards is the shard count the plan was built for (>= 1).
	NumShards int
	// RowShard maps each row index to its owning shard.
	RowShard []int
	// Rows lists each shard's row indices, ascending.
	Rows [][]int
	// Pairs lists each shard's candidate pairs (global row indices, both
	// endpoints always in the shard), in CandidatePairs order.
	Pairs [][]Pair
	// Components is the number of block-connected components the rows
	// formed — the upper bound on useful parallelism.
	Components int

	// idx is the block index the plan's pairs were derived from, keyed by
	// stable row key. BuildPlanState hands it to the next incremental
	// re-plan (replan.go), which updates only the dirty rows' blocks.
	idx *blockIndex
}

// PlanShards builds the shard plan for n shards. Candidate pairs are the
// sequential blocking's pairs verbatim; must-link pairs additionally glue
// components together (feedback may join rows no block connects).
// Each component's owner shard is derived by hashing the smallest rowKey
// among its rows, so the routing is deterministic, independent of
// provider order, and — when rowKeys are stable identifiers such as
// "source#idx" — stable across refreshes that only touch other rows.
// With nil rowKeys the row index itself is the key (still deterministic,
// but positional). n < 1 is treated as 1. A resolver with neither key
// nor name column is rejected exactly as ResolveConstrained rejects it —
// the sharded path must fail identically to the sequential one.
func (r *Resolver) PlanShards(t *dataset.Table, n int, must []Pair, rowKeys []string) (*ShardPlan, error) {
	if r.NameColumn == "" && r.KeyColumn == "" {
		return nil, fmt.Errorf("er: resolver needs at least a key or name column")
	}
	if n < 1 {
		n = 1
	}
	r.Prepare(t)
	key := rowKeyFn(rowKeys)
	idx := r.buildBlockIndex(t, key)
	pairs, err := idx.pairs(rowIndexOf(t.Len(), key), r.MaxBlockSize)
	if err != nil {
		return nil, err
	}
	plan, _ := assemblePlan(t.Len(), n, pairs, must, key)
	plan.idx = idx
	return plan, nil
}

// rowKeyFn returns the stable-key accessor PlanShards documents: the
// caller's rowKeys where present, the positional "#i" fallback otherwise.
func rowKeyFn(rowKeys []string) func(int) string {
	return func(i int) string {
		if i < len(rowKeys) && rowKeys[i] != "" {
			return rowKeys[i]
		}
		return "#" + strconv.Itoa(i)
	}
}

// rowIndexOf inverts a key accessor over [0, rows).
func rowIndexOf(rows int, key func(int) string) map[string]int {
	out := make(map[string]int, rows)
	for i := 0; i < rows; i++ {
		out[key(i)] = i
	}
	return out
}

// assemblePlan routes rows to shards given the candidate pairs: pairs and
// must-links glue rows into block-connected components, each component is
// keyed by its smallest row key and hashed whole to an owner shard. It is
// the shared back half of PlanShards and RePlan — the two paths cannot
// drift in routing. The second return maps each row to its component's
// union-find root, which RePlan uses to reuse clusters per component.
func assemblePlan(rows, n int, pairs, must []Pair, key func(int) string) (*ShardPlan, []int) {
	parent := make([]int, rows)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range pairs {
		union(p.I, p.J)
	}
	for _, p := range must {
		if validPair(p, rows) {
			union(p.I, p.J)
		}
	}
	// Component owner key: the smallest row key in the component.
	owner := map[int]string{}
	for i := 0; i < rows; i++ {
		root := find(i)
		k := key(i)
		if cur, ok := owner[root]; !ok || k < cur {
			owner[root] = k
		}
	}
	plan := &ShardPlan{
		NumShards:  n,
		RowShard:   make([]int, rows),
		Rows:       make([][]int, n),
		Pairs:      make([][]Pair, n),
		Components: len(owner),
	}
	shardOf := map[int]int{}
	for root, k := range owner {
		h := fnv.New32a()
		h.Write([]byte(k))
		shardOf[root] = int(h.Sum32() % uint32(n))
	}
	for i := 0; i < rows; i++ {
		s := shardOf[find(i)]
		plan.RowShard[i] = s
		plan.Rows[s] = append(plan.Rows[s], i)
	}
	for _, p := range pairs {
		s := plan.RowShard[p.I] // == RowShard[p.J]: pairs never cross components
		plan.Pairs[s] = append(plan.Pairs[s], p)
	}
	comp := make([]int, rows)
	for i := 0; i < rows; i++ {
		comp[i] = find(i)
	}
	return plan, comp
}

// FilterPairs returns the subset of ps with both endpoints in the given
// shard. Must-links always survive (PlanShards glued their components);
// cannot-links between shards are dropped, which is sound because no
// union across shards is ever attempted — a cross-shard cannot-link is
// inert in the sequential resolve too.
func (p *ShardPlan) FilterPairs(shard int, ps []Pair) []Pair {
	var out []Pair
	for _, pr := range ps {
		if !validPair(pr, len(p.RowShard)) {
			continue
		}
		if p.RowShard[pr.I] == shard && p.RowShard[pr.J] == shard {
			out = append(out, pr)
		}
	}
	return out
}

// ResolveShard clusters one shard of the plan: the shard's planned
// candidate pairs are scored with the resolver's current rule and merged
// under the shard-local must/cannot constraints, exactly as
// ResolveConstrained would have merged them inside one global resolve.
// It returns, for every row of the shard, the smallest row index of the
// row's cluster — the representative MergeRoots uses to rebuild the
// global dense numbering — plus the constraint-conflict count.
func (r *Resolver) ResolveShard(t *dataset.Table, plan *ShardPlan, shard int, must, cannot []Pair) (map[int]int, int, error) {
	if shard < 0 || shard >= plan.NumShards {
		return nil, 0, fmt.Errorf("er: shard %d out of range [0,%d)", shard, plan.NumShards)
	}
	roots, conflicts := r.resolveRows(t, plan.Rows[shard], plan.Pairs[shard],
		plan.FilterPairs(shard, must), plan.FilterPairs(shard, cannot))
	return roots, conflicts, nil
}

// MergeRoots combines the per-shard root maps (shard index -> ResolveShard
// result) into one dense clustering. Cluster ids are assigned by first
// appearance in ascending row order — the same numbering one sequential
// ResolveConstrained produces — so the merge is independent of shard
// count and of the order shards finished in.
func (p *ShardPlan) MergeRoots(roots []map[int]int) (*Clustering, error) {
	n := len(p.RowShard)
	if n == 0 {
		return &Clustering{}, nil
	}
	assign := make([]int, n)
	ids := make(map[int]int)
	for i := 0; i < n; i++ {
		s := p.RowShard[i]
		if s >= len(roots) || roots[s] == nil {
			return nil, fmt.Errorf("er: merge: missing roots for shard %d (row %d)", s, i)
		}
		root, ok := roots[s][i]
		if !ok {
			return nil, fmt.Errorf("er: merge: shard %d has no root for row %d", s, i)
		}
		id, seen := ids[root]
		if !seen {
			id = len(ids)
			ids[root] = id
		}
		assign[i] = id
	}
	return &Clustering{Assign: assign, Num: len(ids)}, nil
}

// resolveRows is the constrained clustering core shared by the sequential
// and sharded paths: it clusters exactly the given rows using the
// supplied candidate pairs (all endpoints must lie in rows), honouring
// must-links first, then cannot-links, then scored pairs best-first — the
// order ResolveConstrained documents. The returned map gives, for each
// row, the smallest row index of its cluster.
func (r *Resolver) resolveRows(t *dataset.Table, rows []int, pairs, must, cannot []Pair) (map[int]int, int) {
	return r.resolveRowsScored(t, rows, pairs, must, cannot, nil)
}

// resolveRowsScored is resolveRows with a pluggable pair scorer: the
// streaming path injects its cross-round score cache (a pair's score
// depends only on its two rows' values, so content-unchanged endpoints
// make the cached float bit-identical to recomputing). A nil score falls
// back to the rule.
func (r *Resolver) resolveRowsScored(t *dataset.Table, rows []int, pairs, must, cannot []Pair, score func(Pair) float64) (map[int]int, int) {
	local := make(map[int]int, len(rows))
	for li, g := range rows {
		local[g] = li
	}
	parent := make([]int, len(rows))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// forbidden[root] = set of roots this component must not join.
	forbidden := map[int]map[int]bool{}
	addForbidden := func(a, b int) {
		if forbidden[a] == nil {
			forbidden[a] = map[int]bool{}
		}
		forbidden[a][b] = true
		if forbidden[b] == nil {
			forbidden[b] = map[int]bool{}
		}
		forbidden[b][a] = true
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Merge the smaller forbidden set into the larger's root.
		if len(forbidden[ra]) > len(forbidden[rb]) {
			ra, rb = rb, ra
		}
		parent[ra] = rb
		for f := range forbidden[ra] {
			addForbidden(rb, f)
		}
		delete(forbidden, ra)
	}
	allowed := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return true
		}
		return !forbidden[ra][rb]
	}
	localPair := func(p Pair) (int, int, bool) {
		if p.I == p.J {
			return 0, 0, false // self-pairs carry no constraint or evidence
		}
		a, aok := local[p.I]
		b, bok := local[p.J]
		return a, b, aok && bok
	}

	conflicts := 0
	// 1. Must-links are facts: apply unconditionally, count contradictions.
	for _, p := range must {
		a, b, ok := localPair(p)
		if !ok {
			continue
		}
		if !allowed(a, b) {
			conflicts++
		}
		union(a, b)
	}
	// 2. Cannot-links between the resulting components.
	for _, p := range cannot {
		a, b, ok := localPair(p)
		if !ok {
			continue
		}
		ra, rb := find(a), find(b)
		if ra == rb {
			conflicts++ // already forced together by must-links
			continue
		}
		addForbidden(ra, rb)
	}
	// 3. Scored pairs, best first, blocked by constraints. Descending
	// order matters: the strongest evidence claims components before a
	// weaker pair could route around a cannot-link.
	type scoredPair struct {
		p Pair
		s float64
	}
	scored := make([]scoredPair, 0, len(pairs))
	var sc text.Scratch
	f := make([]float64, len(FeatureNames))
	for _, p := range pairs {
		if _, _, ok := localPair(p); !ok {
			continue
		}
		var s float64
		if score != nil {
			s = score(p)
		} else {
			r.featuresInto(t, p.I, p.J, f, &sc)
			s = r.Score(f)
		}
		if s >= r.Threshold {
			scored = append(scored, scoredPair{p: p, s: s})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].s != scored[j].s {
			return scored[i].s > scored[j].s
		}
		if scored[i].p.I != scored[j].p.I {
			return scored[i].p.I < scored[j].p.I
		}
		return scored[i].p.J < scored[j].p.J
	})
	for _, sp := range scored {
		a, b, _ := localPair(sp.p)
		if allowed(a, b) {
			union(a, b)
		}
	}
	// Representative per cluster: the smallest global row index.
	rep := map[int]int{}
	for li, g := range rows {
		root := find(li)
		if cur, ok := rep[root]; !ok || g < cur {
			rep[root] = g
		}
	}
	out := make(map[int]int, len(rows))
	for li, g := range rows {
		out[g] = rep[find(li)]
	}
	return out, conflicts
}
