// Package er implements entity resolution for the Data Integration
// component: q-gram blocking, feature-based pair scoring, transitive
// clustering, and Corleone-style rule refinement from feedback [20] — the
// matcher's weights and threshold are learned from labelled pairs supplied
// by users or simulated crowds, which is the pay-as-you-go loop of §2.4.
package er

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/dataset"
	"repro/internal/text"
)

// Pair is an unordered candidate record pair (I < J, row indices).
type Pair struct {
	I, J int
}

// FeatureNames lists the similarity features the matcher computes, in the
// order Features returns them.
var FeatureNames = []string{"key_equal", "name_sim", "secondary_sim", "numeric_sim"}

// Resolver scores candidate pairs with a weighted linear rule and clusters
// matches transitively. KeyColumn (e.g. "sku") provides exact-identity
// evidence; NameColumn fuzzy-text evidence; SecondaryColumn (e.g. "brand"
// or "city") categorical evidence; NumericColumn (e.g. "price") numeric
// closeness.
type Resolver struct {
	KeyColumn       string
	NameColumn      string
	SecondaryColumn string
	NumericColumn   string

	Weights   []float64 // aligned with FeatureNames
	Threshold float64   // minimum score to declare a match

	BlockGramSize int // q for blocking grams (default 3)
	MaxBlockSize  int // blocks larger than this are skipped (default 60)

	// prep is the per-row precomputed feature state (prep.go): built once
	// per table by Prepare (the resolve entry points call it), read-only
	// during the shard fan-out, ignored whenever the table or the
	// configuration above no longer matches it.
	prep *tableFeatures
}

// NewResolver returns a resolver with sensible default weights for product
// records: exact key agreement is near-conclusive, name similarity is the
// main fuzzy signal.
func NewResolver(keyCol, nameCol, secondaryCol, numericCol string) *Resolver {
	return &Resolver{
		KeyColumn:       keyCol,
		NameColumn:      nameCol,
		SecondaryColumn: secondaryCol,
		NumericColumn:   numericCol,
		Weights:         []float64{0.55, 0.30, 0.10, 0.05},
		Threshold:       0.92,
		BlockGramSize:   3,
		MaxBlockSize:    60,
	}
}

// Missing marks a feature that could not be computed because a value was
// null on either side. Score excludes missing features instead of treating
// them as disagreement — a record without a SKU is not evidence against a
// match.
const Missing = -1.0

// Features computes the similarity feature vector for a record pair.
// Entries are in [0,1] or Missing.
func (r *Resolver) Features(t *dataset.Table, i, j int) []float64 {
	f := make([]float64, len(FeatureNames))
	var sc text.Scratch
	r.featuresInto(t, i, j, f, &sc)
	return f
}

// featuresInto is Features writing into a caller-owned vector with
// caller-owned similarity scratch — the allocation-free form the resolve
// hot loop drives. With prepared per-row state (prep.go) a pair touches
// no string machinery at all; without it the per-pair path runs, with
// the four column indices resolved once instead of once per field.
func (r *Resolver) featuresInto(t *dataset.Table, i, j int, f []float64, sc *text.Scratch) {
	f[0], f[1], f[2], f[3] = Missing, Missing, Missing, Missing
	if p := r.prep; p.valid(r, t) {
		a, b := &p.rows[i], &p.rows[j]
		if a.keyOK && b.keyOK {
			if a.key == b.key {
				f[0] = 1
			} else {
				f[0] = 0
			}
		}
		if a.nameOK && b.nameOK {
			f[1] = p.nameSim(a.nameID, b.nameID, sc)
		}
		if a.secOK && b.secOK {
			if a.sec == b.sec {
				f[2] = 1
			} else {
				f[2] = p.secSim(a.secID, b.secID, sc)
			}
		}
		if a.numOK && b.numOK {
			f[3] = numericSim(a.num, b.num)
		}
		return
	}
	schema := t.Schema()
	ki := colIndex(schema, r.KeyColumn)
	ni := colIndex(schema, r.NameColumn)
	si := colIndex(schema, r.SecondaryColumn)
	pi := colIndex(schema, r.NumericColumn)
	ra, rb := t.Row(i), t.Row(j)
	if ki >= 0 && !ra[ki].IsNull() && !rb[ki].IsNull() {
		if text.Normalize(ra[ki].String()) == text.Normalize(rb[ki].String()) {
			f[0] = 1
		} else {
			f[0] = 0
		}
	}
	if ni >= 0 && !ra[ni].IsNull() && !rb[ni].IsNull() {
		nsa, nsb := text.Normalize(ra[ni].String()), text.Normalize(rb[ni].String())
		jw := text.JaroWinkler(nsa, nsb)
		if jw < 0.5 {
			f[1] = jw
		} else {
			// Normalize is Tokenize rejoined on single spaces, so
			// Monge-Elkan over the normalized strings sees the exact
			// token lists the raw strings would tokenize to.
			f[1] = 0.5*jw + 0.5*text.MongeElkanSym(nsa, nsb)
		}
	}
	if si >= 0 && !ra[si].IsNull() && !rb[si].IsNull() {
		nva, nvb := text.Normalize(ra[si].String()), text.Normalize(rb[si].String())
		if nva == nvb {
			f[2] = 1
		} else {
			f[2] = text.JaroWinkler(nva, nvb)
		}
	}
	if pi >= 0 && ra[pi].IsNumeric() && rb[pi].IsNumeric() {
		f[3] = numericSim(ra[pi].FloatVal(), rb[pi].FloatVal())
	}
}

// numericSim is the relative-difference similarity both Features paths
// share: 1 at equality, linearly down to 0, Missing when the larger
// magnitude is zero (no meaningful denominator).
func numericSim(x, y float64) float64 {
	if x == y {
		return 1
	}
	den := x
	if y > x {
		den = y
	}
	if den == 0 {
		return Missing
	}
	d := (x - y) / den
	if d < 0 {
		d = -d
	}
	s := 1 - d
	if s < 0 {
		s = 0
	}
	return s
}

// Score combines a feature vector with the learned weights, renormalising
// over the features that are present (not Missing). A present-but-
// disagreeing key is a hard veto: records carrying distinct identifiers
// are distinct entities regardless of how similar their names look.
func (r *Resolver) Score(features []float64) float64 {
	if len(features) > 0 && features[0] == 0 {
		return 0
	}
	s, wsum := 0.0, 0.0
	for i, w := range r.Weights {
		if i < len(features) && features[i] >= 0 {
			s += w * features[i]
			wsum += w
		}
	}
	if wsum == 0 {
		return 0
	}
	return s / wsum
}

// blockKeysOf returns the block keys row i contributes to: its
// normalised key value plus each distinct q-gram of each name token —
// exactly the keys CandidatePairs blocks on, factored out so the
// incremental re-plan (replan.go) re-blocks a changed row identically.
func (r *Resolver) blockKeysOf(t *dataset.Table, i int) []string {
	if p := r.prep; p.valid(r, t) {
		// Precomputed once per union build; callers treat the slice as
		// read-only.
		return p.rows[i].blockKeys
	}
	var keys []string
	if r.KeyColumn != "" {
		if v := t.Get(i, r.KeyColumn); !v.IsNull() {
			keys = append(keys, "k:"+text.Normalize(v.String()))
		}
	}
	if r.NameColumn != "" {
		if v := t.Get(i, r.NameColumn); !v.IsNull() {
			seen := map[string]bool{}
			for _, tok := range text.Tokenize(v.String()) {
				for _, g := range text.QGrams(tok, r.BlockGramSize) {
					key := "g:" + g
					if !seen[key] {
						seen[key] = true
						keys = append(keys, key)
					}
				}
			}
		}
	}
	return keys
}

// CandidatePairs blocks the table on name q-grams (plus exact keys) and
// returns the deduplicated candidate pairs. Blocking keeps the candidate
// set near-linear instead of quadratic; oversized blocks (stop-gram
// effects) are skipped.
func (r *Resolver) CandidatePairs(t *dataset.Table) []Pair {
	blocks := map[string][]int{}
	for i := 0; i < t.Len(); i++ {
		for _, k := range r.blockKeysOf(t, i) {
			blocks[k] = append(blocks[k], i)
		}
	}
	keys := make([]string, 0, len(blocks))
	total := 0
	for k, rows := range blocks {
		keys = append(keys, k)
		if n := len(rows); n >= 2 && n <= r.MaxBlockSize {
			total += n * (n - 1) / 2
		}
	}
	sort.Strings(keys)
	// One slab for every block's pairs, then sort + compact in place —
	// identical output to the map-based dedup without its per-insert
	// allocations.
	out := make([]Pair, 0, total)
	for _, k := range keys {
		rows := blocks[k]
		if len(rows) < 2 || len(rows) > r.MaxBlockSize {
			continue
		}
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				p := Pair{I: rows[a], J: rows[b]}
				if p.I > p.J {
					p.I, p.J = p.J, p.I
				}
				out = append(out, p)
			}
		}
	}
	return sortDedupPairs(out)
}

// sortDedupPairs sorts pairs by (I, J) and removes duplicates in place —
// the shared tail of the two blocking enumerations (CandidatePairs and
// blockIndex.pairs), whose output order is part of the determinism
// contract.
func sortDedupPairs(out []Pair) []Pair {
	// Row indices are non-negative and well under 2³¹, so (I, J) packs
	// into one int64 whose integer order is exactly the (I, J) lexical
	// order — and the specialized integer sort avoids the per-comparison
	// function calls that made the generic sort ~15% of the tail's CPU.
	packed := make([]int64, len(out))
	for i, p := range out {
		packed[i] = int64(p.I)<<32 | int64(p.J)
	}
	slices.Sort(packed)
	j := 0
	for i, v := range packed {
		if i > 0 && v == packed[i-1] {
			continue
		}
		out[j] = Pair{I: int(v >> 32), J: int(v & 0xffffffff)}
		j++
	}
	return out[:j]
}

// Clustering is a partition of table rows into entities.
type Clustering struct {
	Assign []int // row -> cluster id (0..NumClusters-1)
	Num    int
}

// Clusters returns the row indices per cluster id.
func (c *Clustering) Clusters() [][]int {
	out := make([][]int, c.Num)
	for row, id := range c.Assign {
		out[id] = append(out[id], row)
	}
	return out
}

// Resolve blocks, scores and transitively clusters the table. Rows with a
// pair score >= Threshold are merged (union-find).
func (r *Resolver) Resolve(t *dataset.Table) (*Clustering, error) {
	if t.Len() == 0 {
		return &Clustering{Assign: nil, Num: 0}, nil
	}
	if r.NameColumn == "" && r.KeyColumn == "" {
		return nil, fmt.Errorf("er: resolver needs at least a key or name column")
	}
	r.Prepare(t)
	parent := make([]int, t.Len())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	var sc text.Scratch
	f := make([]float64, len(FeatureNames))
	for _, p := range r.CandidatePairs(t) {
		r.featuresInto(t, p.I, p.J, f, &sc)
		if r.Score(f) >= r.Threshold {
			union(p.I, p.J)
		}
	}
	ids := map[int]int{}
	assign := make([]int, t.Len())
	for i := range assign {
		root := find(i)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		assign[i] = id
	}
	return &Clustering{Assign: assign, Num: len(ids)}, nil
}

// LabeledPair is duplicate/non-duplicate feedback on a record pair — the
// unit of crowd payment in Example 5.
type LabeledPair struct {
	Pair      Pair
	Duplicate bool
}

// Learn refines the matcher from labelled pairs: it grid-searches the
// decision threshold and rebalances feature weights by each feature's
// observed separation power (mean on duplicates minus mean on
// non-duplicates). Guardrails keep noisy feedback from destroying a
// working rule: refinement needs at least three labels of each class, and
// a fit whose training F1 stays below 0.5 is rejected (crowd noise, not
// signal). Returns the adopted training F1 (0 when nothing was adopted).
func (r *Resolver) Learn(t *dataset.Table, labels []LabeledPair) float64 {
	if len(labels) == 0 {
		return 0
	}
	posCount, negCount := 0, 0
	for _, l := range labels {
		if l.Duplicate {
			posCount++
		} else {
			negCount++
		}
	}
	if posCount < 3 || negCount < 3 {
		return 0
	}
	origWeights := append([]float64(nil), r.Weights...)
	origThreshold := r.Threshold
	// Baseline: how well does the current rule already classify the
	// labels? A refinement is adopted only if it beats this.
	origF1 := r.trainingF1(t, labels)
	// Feature separation → new weights.
	nFeat := len(FeatureNames)
	posMean := make([]float64, nFeat)
	negMean := make([]float64, nFeat)
	posN := make([]int, nFeat)
	negN := make([]int, nFeat)
	nPos, nNeg := 0, 0
	feats := make([][]float64, len(labels))
	for li, l := range labels {
		f := r.Features(t, l.Pair.I, l.Pair.J)
		feats[li] = f
		if l.Duplicate {
			nPos++
		} else {
			nNeg++
		}
		for i := range f {
			if f[i] < 0 {
				continue // Missing features carry no signal
			}
			if l.Duplicate {
				posMean[i] += f[i]
				posN[i]++
			} else {
				negMean[i] += f[i]
				negN[i]++
			}
		}
	}
	if nPos > 0 && nNeg > 0 {
		newW := make([]float64, nFeat)
		sum := 0.0
		for i := 0; i < nFeat; i++ {
			sep := 0.01
			if posN[i] > 0 && negN[i] > 0 {
				sep = posMean[i]/float64(posN[i]) - negMean[i]/float64(negN[i])
				if sep < 0.01 {
					sep = 0.01
				}
			}
			newW[i] = sep
			sum += sep
		}
		for i := range newW {
			newW[i] /= sum
		}
		r.Weights = newW
	}
	// Threshold grid search for best F1.
	bestTh, bestF1 := r.Threshold, -1.0
	for th := 0.20; th <= 0.95; th += 0.01 {
		tp, fp, fn := 0, 0, 0
		for li, l := range labels {
			pred := r.Score(feats[li]) >= th
			switch {
			case pred && l.Duplicate:
				tp++
			case pred && !l.Duplicate:
				fp++
			case !pred && l.Duplicate:
				fn++
			}
		}
		f1 := f1Score(tp, fp, fn)
		if f1 > bestF1 {
			bestF1, bestTh = f1, th
		}
	}
	if bestF1 < 0.5 || bestF1 <= origF1 {
		// The fit is garbage (label noise) or no better than the rule we
		// already have — reject it; feedback must never make things worse.
		r.Weights = origWeights
		r.Threshold = origThreshold
		return origF1
	}
	r.Threshold = bestTh
	return bestF1
}

// trainingF1 scores the resolver's current rule against labelled pairs.
func (r *Resolver) trainingF1(t *dataset.Table, labels []LabeledPair) float64 {
	tp, fp, fn := 0, 0, 0
	for _, l := range labels {
		pred := r.Score(r.Features(t, l.Pair.I, l.Pair.J)) >= r.Threshold
		switch {
		case pred && l.Duplicate:
			tp++
		case pred && !l.Duplicate:
			fp++
		case !pred && l.Duplicate:
			fn++
		}
	}
	return f1Score(tp, fp, fn)
}

func f1Score(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * p * rec / (p + rec)
}

// PairwiseMetrics scores a clustering against ground-truth entity IDs
// (truth[row] = entity id, "" rows are ignored): pairwise precision,
// recall and F1 over all row pairs that share a truth id.
func PairwiseMetrics(c *Clustering, truth []string) (p, r, f float64) {
	tp, fp, fn := 0, 0, 0
	n := len(truth)
	for i := 0; i < n; i++ {
		if truth[i] == "" {
			continue
		}
		for j := i + 1; j < n; j++ {
			if truth[j] == "" {
				continue
			}
			same := truth[i] == truth[j]
			pred := c.Assign[i] == c.Assign[j]
			switch {
			case same && pred:
				tp++
			case !same && pred:
				fp++
			case same && !pred:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return p, r, f
}
