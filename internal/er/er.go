// Package er implements entity resolution for the Data Integration
// component: q-gram blocking, feature-based pair scoring, transitive
// clustering, and Corleone-style rule refinement from feedback [20] — the
// matcher's weights and threshold are learned from labelled pairs supplied
// by users or simulated crowds, which is the pay-as-you-go loop of §2.4.
package er

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/text"
)

// Pair is an unordered candidate record pair (I < J, row indices).
type Pair struct {
	I, J int
}

// FeatureNames lists the similarity features the matcher computes, in the
// order Features returns them.
var FeatureNames = []string{"key_equal", "name_sim", "secondary_sim", "numeric_sim"}

// Resolver scores candidate pairs with a weighted linear rule and clusters
// matches transitively. KeyColumn (e.g. "sku") provides exact-identity
// evidence; NameColumn fuzzy-text evidence; SecondaryColumn (e.g. "brand"
// or "city") categorical evidence; NumericColumn (e.g. "price") numeric
// closeness.
type Resolver struct {
	KeyColumn       string
	NameColumn      string
	SecondaryColumn string
	NumericColumn   string

	Weights   []float64 // aligned with FeatureNames
	Threshold float64   // minimum score to declare a match

	BlockGramSize int // q for blocking grams (default 3)
	MaxBlockSize  int // blocks larger than this are skipped (default 60)
}

// NewResolver returns a resolver with sensible default weights for product
// records: exact key agreement is near-conclusive, name similarity is the
// main fuzzy signal.
func NewResolver(keyCol, nameCol, secondaryCol, numericCol string) *Resolver {
	return &Resolver{
		KeyColumn:       keyCol,
		NameColumn:      nameCol,
		SecondaryColumn: secondaryCol,
		NumericColumn:   numericCol,
		Weights:         []float64{0.55, 0.30, 0.10, 0.05},
		Threshold:       0.92,
		BlockGramSize:   3,
		MaxBlockSize:    60,
	}
}

// Missing marks a feature that could not be computed because a value was
// null on either side. Score excludes missing features instead of treating
// them as disagreement — a record without a SKU is not evidence against a
// match.
const Missing = -1.0

// Features computes the similarity feature vector for a record pair.
// Entries are in [0,1] or Missing.
func (r *Resolver) Features(t *dataset.Table, i, j int) []float64 {
	f := []float64{Missing, Missing, Missing, Missing}
	get := func(col string, row int) dataset.Value {
		if col == "" {
			return dataset.Null()
		}
		return t.Get(row, col)
	}
	ka, kb := get(r.KeyColumn, i), get(r.KeyColumn, j)
	if !ka.IsNull() && !kb.IsNull() {
		if text.Normalize(ka.String()) == text.Normalize(kb.String()) {
			f[0] = 1
		} else {
			f[0] = 0
		}
	}
	na, nb := get(r.NameColumn, i), get(r.NameColumn, j)
	if !na.IsNull() && !nb.IsNull() {
		// Normalize each name once: the previous shape normalized both
		// for JaroWinkler, threw the results away, and let MongeElkanSym
		// re-tokenize the raw strings. Normalize is Tokenize rejoined on
		// single spaces, so Monge-Elkan over the normalized strings sees
		// the exact token lists the raw strings would tokenize to — the
		// scores are bit-identical.
		nsa, nsb := text.Normalize(na.String()), text.Normalize(nb.String())
		jw := text.JaroWinkler(nsa, nsb)
		if jw < 0.5 {
			// Token alignment cannot rescue a pair this dissimilar; skip
			// the expensive Monge-Elkan pass (hot path: blocking emits
			// many low-similarity candidates).
			f[1] = jw
		} else {
			f[1] = 0.5*jw + 0.5*text.MongeElkanSym(nsa, nsb)
		}
	}
	va, vb := get(r.SecondaryColumn, i), get(r.SecondaryColumn, j)
	if !va.IsNull() && !vb.IsNull() {
		// Hoisted: the miss path used to normalize both values a second
		// time for the similarity fallback.
		nva, nvb := text.Normalize(va.String()), text.Normalize(vb.String())
		if nva == nvb {
			f[2] = 1
		} else {
			f[2] = text.JaroWinkler(nva, nvb)
		}
	}
	pa, pb := get(r.NumericColumn, i), get(r.NumericColumn, j)
	if pa.IsNumeric() && pb.IsNumeric() {
		x, y := pa.FloatVal(), pb.FloatVal()
		if x == y {
			f[3] = 1
		} else {
			den := x
			if y > x {
				den = y
			}
			if den != 0 {
				d := (x - y) / den
				if d < 0 {
					d = -d
				}
				f[3] = 1 - d
				if f[3] < 0 {
					f[3] = 0
				}
			}
		}
	}
	return f
}

// Score combines a feature vector with the learned weights, renormalising
// over the features that are present (not Missing). A present-but-
// disagreeing key is a hard veto: records carrying distinct identifiers
// are distinct entities regardless of how similar their names look.
func (r *Resolver) Score(features []float64) float64 {
	if len(features) > 0 && features[0] == 0 {
		return 0
	}
	s, wsum := 0.0, 0.0
	for i, w := range r.Weights {
		if i < len(features) && features[i] >= 0 {
			s += w * features[i]
			wsum += w
		}
	}
	if wsum == 0 {
		return 0
	}
	return s / wsum
}

// blockKeysOf returns the block keys row i contributes to: its
// normalised key value plus each distinct q-gram of each name token —
// exactly the keys CandidatePairs blocks on, factored out so the
// incremental re-plan (replan.go) re-blocks a changed row identically.
func (r *Resolver) blockKeysOf(t *dataset.Table, i int) []string {
	var keys []string
	if r.KeyColumn != "" {
		if v := t.Get(i, r.KeyColumn); !v.IsNull() {
			keys = append(keys, "k:"+text.Normalize(v.String()))
		}
	}
	if r.NameColumn != "" {
		if v := t.Get(i, r.NameColumn); !v.IsNull() {
			seen := map[string]bool{}
			for _, tok := range text.Tokenize(v.String()) {
				for _, g := range text.QGrams(tok, r.BlockGramSize) {
					key := "g:" + g
					if !seen[key] {
						seen[key] = true
						keys = append(keys, key)
					}
				}
			}
		}
	}
	return keys
}

// CandidatePairs blocks the table on name q-grams (plus exact keys) and
// returns the deduplicated candidate pairs. Blocking keeps the candidate
// set near-linear instead of quadratic; oversized blocks (stop-gram
// effects) are skipped.
func (r *Resolver) CandidatePairs(t *dataset.Table) []Pair {
	blocks := map[string][]int{}
	for i := 0; i < t.Len(); i++ {
		for _, k := range r.blockKeysOf(t, i) {
			blocks[k] = append(blocks[k], i)
		}
	}
	pairSet := map[Pair]bool{}
	keys := make([]string, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rows := blocks[k]
		if len(rows) < 2 || len(rows) > r.MaxBlockSize {
			continue
		}
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				p := Pair{I: rows[a], J: rows[b]}
				if p.I > p.J {
					p.I, p.J = p.J, p.I
				}
				pairSet[p] = true
			}
		}
	}
	out := make([]Pair, 0, len(pairSet))
	for p := range pairSet {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Clustering is a partition of table rows into entities.
type Clustering struct {
	Assign []int // row -> cluster id (0..NumClusters-1)
	Num    int
}

// Clusters returns the row indices per cluster id.
func (c *Clustering) Clusters() [][]int {
	out := make([][]int, c.Num)
	for row, id := range c.Assign {
		out[id] = append(out[id], row)
	}
	return out
}

// Resolve blocks, scores and transitively clusters the table. Rows with a
// pair score >= Threshold are merged (union-find).
func (r *Resolver) Resolve(t *dataset.Table) (*Clustering, error) {
	if t.Len() == 0 {
		return &Clustering{Assign: nil, Num: 0}, nil
	}
	if r.NameColumn == "" && r.KeyColumn == "" {
		return nil, fmt.Errorf("er: resolver needs at least a key or name column")
	}
	parent := make([]int, t.Len())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range r.CandidatePairs(t) {
		if r.Score(r.Features(t, p.I, p.J)) >= r.Threshold {
			union(p.I, p.J)
		}
	}
	ids := map[int]int{}
	assign := make([]int, t.Len())
	for i := range assign {
		root := find(i)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		assign[i] = id
	}
	return &Clustering{Assign: assign, Num: len(ids)}, nil
}

// LabeledPair is duplicate/non-duplicate feedback on a record pair — the
// unit of crowd payment in Example 5.
type LabeledPair struct {
	Pair      Pair
	Duplicate bool
}

// Learn refines the matcher from labelled pairs: it grid-searches the
// decision threshold and rebalances feature weights by each feature's
// observed separation power (mean on duplicates minus mean on
// non-duplicates). Guardrails keep noisy feedback from destroying a
// working rule: refinement needs at least three labels of each class, and
// a fit whose training F1 stays below 0.5 is rejected (crowd noise, not
// signal). Returns the adopted training F1 (0 when nothing was adopted).
func (r *Resolver) Learn(t *dataset.Table, labels []LabeledPair) float64 {
	if len(labels) == 0 {
		return 0
	}
	posCount, negCount := 0, 0
	for _, l := range labels {
		if l.Duplicate {
			posCount++
		} else {
			negCount++
		}
	}
	if posCount < 3 || negCount < 3 {
		return 0
	}
	origWeights := append([]float64(nil), r.Weights...)
	origThreshold := r.Threshold
	// Baseline: how well does the current rule already classify the
	// labels? A refinement is adopted only if it beats this.
	origF1 := r.trainingF1(t, labels)
	// Feature separation → new weights.
	nFeat := len(FeatureNames)
	posMean := make([]float64, nFeat)
	negMean := make([]float64, nFeat)
	posN := make([]int, nFeat)
	negN := make([]int, nFeat)
	nPos, nNeg := 0, 0
	feats := make([][]float64, len(labels))
	for li, l := range labels {
		f := r.Features(t, l.Pair.I, l.Pair.J)
		feats[li] = f
		if l.Duplicate {
			nPos++
		} else {
			nNeg++
		}
		for i := range f {
			if f[i] < 0 {
				continue // Missing features carry no signal
			}
			if l.Duplicate {
				posMean[i] += f[i]
				posN[i]++
			} else {
				negMean[i] += f[i]
				negN[i]++
			}
		}
	}
	if nPos > 0 && nNeg > 0 {
		newW := make([]float64, nFeat)
		sum := 0.0
		for i := 0; i < nFeat; i++ {
			sep := 0.01
			if posN[i] > 0 && negN[i] > 0 {
				sep = posMean[i]/float64(posN[i]) - negMean[i]/float64(negN[i])
				if sep < 0.01 {
					sep = 0.01
				}
			}
			newW[i] = sep
			sum += sep
		}
		for i := range newW {
			newW[i] /= sum
		}
		r.Weights = newW
	}
	// Threshold grid search for best F1.
	bestTh, bestF1 := r.Threshold, -1.0
	for th := 0.20; th <= 0.95; th += 0.01 {
		tp, fp, fn := 0, 0, 0
		for li, l := range labels {
			pred := r.Score(feats[li]) >= th
			switch {
			case pred && l.Duplicate:
				tp++
			case pred && !l.Duplicate:
				fp++
			case !pred && l.Duplicate:
				fn++
			}
		}
		f1 := f1Score(tp, fp, fn)
		if f1 > bestF1 {
			bestF1, bestTh = f1, th
		}
	}
	if bestF1 < 0.5 || bestF1 <= origF1 {
		// The fit is garbage (label noise) or no better than the rule we
		// already have — reject it; feedback must never make things worse.
		r.Weights = origWeights
		r.Threshold = origThreshold
		return origF1
	}
	r.Threshold = bestTh
	return bestF1
}

// trainingF1 scores the resolver's current rule against labelled pairs.
func (r *Resolver) trainingF1(t *dataset.Table, labels []LabeledPair) float64 {
	tp, fp, fn := 0, 0, 0
	for _, l := range labels {
		pred := r.Score(r.Features(t, l.Pair.I, l.Pair.J)) >= r.Threshold
		switch {
		case pred && l.Duplicate:
			tp++
		case pred && !l.Duplicate:
			fp++
		case !pred && l.Duplicate:
			fn++
		}
	}
	return f1Score(tp, fp, fn)
}

func f1Score(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * p * rec / (p + rec)
}

// PairwiseMetrics scores a clustering against ground-truth entity IDs
// (truth[row] = entity id, "" rows are ignored): pairwise precision,
// recall and F1 over all row pairs that share a truth id.
func PairwiseMetrics(c *Clustering, truth []string) (p, r, f float64) {
	tp, fp, fn := 0, 0, 0
	n := len(truth)
	for i := 0; i < n; i++ {
		if truth[i] == "" {
			continue
		}
		for j := i + 1; j < n; j++ {
			if truth[j] == "" {
				continue
			}
			same := truth[i] == truth[j]
			pred := c.Assign[i] == c.Assign[j]
			switch {
			case same && pred:
				tp++
			case !same && pred:
				fp++
			case same && !pred:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return p, r, f
}
