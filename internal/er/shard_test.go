package er

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
)

func shardTable(names ...string) *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
	))
	for i, n := range names {
		t.AppendValues(dataset.String(fmt.Sprintf("S%03d", i)), dataset.String(n))
	}
	return t
}

// TestBlockingEdgeCases is the table-driven sweep over the blocking
// shapes shard planning has to survive: oversized blocks are skipped
// (their rows stay singleton components instead of one mega-shard, and —
// critically — never regain pairs inside a shard that the sequential
// blocking skipped), blocks at the size limit still pair, empty and
// single-row inputs plan cleanly, and must-links glue otherwise
// unconnected components.
func TestBlockingEdgeCases(t *testing.T) {
	cases := []struct {
		name         string
		rows         []string
		maxBlock     int
		must         []Pair
		wantPairs    int // expected candidate pair count
		wantComps    int // expected block-connected components
		shardsToTry  []int
		wantSameComp [][2]int // row pairs that must share a shard
		wantDiffComp [][2]int // row pairs that must be in singleton-free, separate components
	}{
		{
			name:        "oversized block skipped",
			rows:        []string{"widget aaaa", "widget bbbb", "widget cccc", "widget dddd"},
			maxBlock:    3, // the shared "widget" grams put all 4 rows in one block > max
			wantPairs:   0,
			wantComps:   4,
			shardsToTry: []int{1, 2, 4, 8},
		},
		{
			name:         "block at the limit still pairs",
			rows:         []string{"gizmo red", "gizmo blue", "gizmo green"},
			maxBlock:     3,
			wantPairs:    3, // all three pairs via the "gizmo" grams
			wantComps:    1,
			shardsToTry:  []int{1, 2, 4},
			wantSameComp: [][2]int{{0, 1}, {1, 2}},
		},
		{
			name:         "disjoint names split components",
			rows:         []string{"alpha lamp", "alpha light", "bravo kettle", "bravo kettles"},
			maxBlock:     60,
			wantComps:    2,
			wantPairs:    2,
			shardsToTry:  []int{1, 2, 4, 8},
			wantSameComp: [][2]int{{0, 1}, {2, 3}},
			wantDiffComp: [][2]int{{0, 2}},
		},
		{
			name:         "must-link glues unconnected components",
			rows:         []string{"alpha lamp", "zulu heater"},
			maxBlock:     60,
			must:         []Pair{{I: 0, J: 1}},
			wantComps:    1,
			wantPairs:    0,
			shardsToTry:  []int{1, 2, 4},
			wantSameComp: [][2]int{{0, 1}},
		},
		{
			name:        "single row",
			rows:        []string{"lonely product"},
			maxBlock:    60,
			wantComps:   1,
			wantPairs:   0,
			shardsToTry: []int{1, 2, 8},
		},
		{
			name:        "empty table",
			rows:        nil,
			maxBlock:    60,
			wantComps:   0,
			wantPairs:   0,
			shardsToTry: []int{1, 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := shardTable(tc.rows...)
			r := NewResolver("", "name", "", "")
			r.MaxBlockSize = tc.maxBlock
			if got := len(r.CandidatePairs(tab)); got != tc.wantPairs {
				t.Errorf("candidate pairs = %d, want %d", got, tc.wantPairs)
			}
			for _, n := range tc.shardsToTry {
				plan, err := r.PlanShards(tab, n, tc.must, nil)
				if err != nil {
					t.Fatal(err)
				}
				if plan.Components != tc.wantComps {
					t.Errorf("shards=%d: components = %d, want %d", n, plan.Components, tc.wantComps)
				}
				if plan.NumShards != n || len(plan.Rows) != n || len(plan.Pairs) != n {
					t.Fatalf("shards=%d: malformed plan dims", n)
				}
				// Every row is owned by exactly one shard.
				counted := 0
				for s, rows := range plan.Rows {
					for _, row := range rows {
						if plan.RowShard[row] != s {
							t.Errorf("shards=%d: row %d listed in shard %d but RowShard says %d", n, row, s, plan.RowShard[row])
						}
						counted++
					}
				}
				if counted != tab.Len() {
					t.Errorf("shards=%d: %d rows assigned, table has %d", n, counted, tab.Len())
				}
				// No candidate pair may cross shards — cross-shard blocks do
				// not exist, their components were routed whole to one owner.
				for s, pairs := range plan.Pairs {
					for _, p := range pairs {
						if plan.RowShard[p.I] != s || plan.RowShard[p.J] != s {
							t.Errorf("shards=%d: pair %v leaked out of shard %d", n, p, s)
						}
					}
				}
				for _, pr := range tc.wantSameComp {
					if plan.RowShard[pr[0]] != plan.RowShard[pr[1]] {
						t.Errorf("shards=%d: rows %d and %d should share a shard", n, pr[0], pr[1])
					}
				}
				// Resolving the plan must agree with the sequential resolve,
				// empty and single-row shards included.
				seq, _, err := r.ResolveConstrained(tab, tc.must, nil)
				if err != nil {
					t.Fatal(err)
				}
				roots := make([]map[int]int, n)
				for i := 0; i < n; i++ {
					roots[i], _, err = r.ResolveShard(tab, plan, i, tc.must, nil)
					if err != nil {
						t.Fatal(err)
					}
				}
				merged, err := plan.MergeRoots(roots)
				if err != nil {
					t.Fatal(err)
				}
				if merged.Num != seq.Num {
					t.Errorf("shards=%d: merged %d clusters, sequential %d", n, merged.Num, seq.Num)
				}
				for i := range merged.Assign {
					if merged.Assign[i] != seq.Assign[i] {
						t.Errorf("shards=%d: row %d cluster %d, sequential %d", n, i, merged.Assign[i], seq.Assign[i])
					}
				}
			}
			// Different-component expectations hold for the component
			// structure itself (plan with as many shards as rows makes the
			// check meaningful: distinct components only share a shard by
			// hash collision, so check components via a 1-shard plan's pair
			// partition instead of shard ids).
			if len(tc.wantDiffComp) > 0 {
				plan, err := r.PlanShards(tab, tab.Len(), tc.must, nil)
				if err != nil {
					t.Fatal(err)
				}
				_ = plan
				for _, pr := range tc.wantDiffComp {
					// Two rows in different components never appear in one
					// candidate pair chain; verify via sequential clusters of
					// a threshold-0 resolver (everything blocked together
					// merges).
					loose := NewResolver("", "name", "", "")
					loose.MaxBlockSize = tc.maxBlock
					loose.Threshold = 0
					c, _, err := loose.ResolveConstrained(tab, tc.must, nil)
					if err != nil {
						t.Fatal(err)
					}
					if c.Assign[pr[0]] == c.Assign[pr[1]] {
						t.Errorf("rows %d and %d unexpectedly block-connected", pr[0], pr[1])
					}
				}
			}
		})
	}
}

// TestPlanShardsOwnerStability pins the delta-publication prerequisite:
// with stable row keys, a component's shard assignment depends only on
// its own smallest key — rows shifting elsewhere in the table must not
// reshuffle it.
func TestPlanShardsOwnerStability(t *testing.T) {
	r := NewResolver("", "name", "", "")
	tab1 := shardTable("alpha lamp", "alpha light", "bravo kettle")
	keys1 := []string{"s1#0", "s1#1", "s2#0"}
	tab2 := shardTable("prefix thing", "alpha lamp", "alpha light", "bravo kettle")
	keys2 := []string{"s0#0", "s1#0", "s1#1", "s2#0"}
	for _, n := range []int{2, 4, 8} {
		p1, err := r.PlanShards(tab1, n, nil, keys1)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := r.PlanShards(tab2, n, nil, keys2)
		if err != nil {
			t.Fatal(err)
		}
		if p1.RowShard[0] != p2.RowShard[1] || p1.RowShard[2] != p2.RowShard[3] {
			t.Errorf("shards=%d: stable keys did not keep components on their shards: %v vs %v",
				n, p1.RowShard, p2.RowShard)
		}
	}
}

// TestPlanShardsRejectsColumnlessResolver pins failure parity: a
// resolver with neither key nor name column fails planning with the
// same error the sequential ResolveConstrained reports, so a sharded
// session cannot silently succeed where a sequential one errors.
func TestPlanShardsRejectsColumnlessResolver(t *testing.T) {
	r := NewResolver("", "", "", "")
	tab := shardTable("alpha lamp")
	_, planErr := r.PlanShards(tab, 2, nil, nil)
	if planErr == nil {
		t.Fatal("PlanShards accepted a resolver without key or name column")
	}
	_, _, seqErr := r.ResolveConstrained(tab, nil, nil)
	if seqErr == nil || planErr.Error() != seqErr.Error() {
		t.Errorf("error parity broken: plan=%q sequential=%q", planErr, seqErr)
	}
}

// TestResolveShardRange rejects out-of-range shard indices.
func TestResolveShardRange(t *testing.T) {
	r := NewResolver("", "name", "", "")
	tab := shardTable("alpha lamp")
	plan, err := r.PlanShards(tab, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ResolveShard(tab, plan, 2, nil, nil); err == nil {
		t.Error("shard index 2 of 2 should error")
	}
	if _, _, err := r.ResolveShard(tab, plan, -1, nil, nil); err == nil {
		t.Error("negative shard index should error")
	}
}
