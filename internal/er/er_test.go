package er

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// dupTable builds a table with known duplicate structure: each entity
// appears 1-3 times with small perturbations. Returns the table and the
// per-row truth entity ids.
func dupTable(seed int64, entities int) (*dataset.Table, []string) {
	rng := rand.New(rand.NewSource(seed))
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	var truth []string
	brands := []string{"Anker", "Belkin", "Logi", "Voltix"}
	adjectives := []string{"Premium", "Essential", "Pro", "Ultra", "Classic", "Compact", "Slim", "Eco"}
	nouns := []string{"USB Cable", "HDMI Cable", "Wireless Mouse", "Keyboard", "Desk Lamp", "Kettle", "Yoga Mat", "Bike Lock"}
	usedNames := map[string]bool{}
	for e := 0; e < entities; e++ {
		id := fmt.Sprintf("E%03d", e)
		brand := brands[rng.Intn(len(brands))]
		name := ""
		for name == "" || usedNames[name] {
			name = fmt.Sprintf("%s %s %s %d%s", brand, adjectives[rng.Intn(len(adjectives))],
				nouns[rng.Intn(len(nouns))], 1+rng.Intn(3), "m")
		}
		usedNames[name] = true
		price := 3 + rng.Float64()*100
		copies := 1 + rng.Intn(3)
		for c := 0; c < copies; c++ {
			sku := fmt.Sprintf("SKU-%03d", e)
			n := name
			if c > 0 && rng.Float64() < 0.5 {
				// typo in one copy
				r := []rune(n)
				i := 1 + rng.Intn(len(r)-2)
				r[i], r[i-1] = r[i-1], r[i]
				n = string(r)
			}
			p := price
			if c > 0 && rng.Float64() < 0.5 {
				p *= 0.98 + rng.Float64()*0.04
			}
			skuV := dataset.String(sku)
			if c > 0 && rng.Float64() < 0.3 {
				skuV = dataset.Null() // some copies lack the key
			}
			t.AppendValues(skuV, dataset.String(n), dataset.String(brand), dataset.Float(p))
			truth = append(truth, id)
		}
	}
	return t, truth
}

func TestResolveFindsDuplicates(t *testing.T) {
	tab, truth := dupTable(1, 60)
	r := NewResolver("sku", "name", "brand", "price")
	c, err := r.Resolve(tab)
	if err != nil {
		t.Fatal(err)
	}
	p, rec, f1 := PairwiseMetrics(c, truth)
	if f1 < 0.85 {
		t.Errorf("default resolver F1 = %f (p=%f r=%f), want >= 0.85", f1, p, rec)
	}
}

func TestResolveEmptyTable(t *testing.T) {
	tab := dataset.NewTable(dataset.MustSchema(dataset.Field{Name: "name", Kind: dataset.KindString}))
	r := NewResolver("", "name", "", "")
	c, err := r.Resolve(tab)
	if err != nil || c.Num != 0 {
		t.Errorf("empty table should yield empty clustering: %v %v", c, err)
	}
}

func TestResolveNeedsColumns(t *testing.T) {
	tab, _ := dupTable(2, 5)
	r := NewResolver("", "", "", "")
	if _, err := r.Resolve(tab); err == nil {
		t.Error("resolver without key/name columns should error")
	}
}

func TestCandidatePairsBlocking(t *testing.T) {
	tab, _ := dupTable(3, 80)
	r := NewResolver("sku", "name", "brand", "price")
	pairs := r.CandidatePairs(tab)
	n := tab.Len()
	quadratic := n * (n - 1) / 2
	if len(pairs) == 0 {
		t.Fatal("blocking produced no candidates")
	}
	if len(pairs) >= quadratic {
		t.Errorf("blocking should prune: %d pairs vs %d quadratic", len(pairs), quadratic)
	}
	for _, p := range pairs {
		if p.I >= p.J {
			t.Fatalf("pair not ordered: %v", p)
		}
	}
}

func TestFeatures(t *testing.T) {
	tab := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	tab.AppendValues(dataset.String("A"), dataset.String("USB Cable"), dataset.String("Anker"), dataset.Float(10))
	tab.AppendValues(dataset.String("A"), dataset.String("USB Cable"), dataset.String("Anker"), dataset.Float(10))
	tab.AppendValues(dataset.String("B"), dataset.String("Desk Lamp"), dataset.String("Voltix"), dataset.Float(40))
	tab.AppendValues(dataset.Null(), dataset.String("USB Cable"), dataset.Null(), dataset.Float(20))

	r := NewResolver("sku", "name", "brand", "price")
	same := r.Features(tab, 0, 1)
	for i, f := range same {
		if f != 1 {
			t.Errorf("identical records feature %s = %f, want 1", FeatureNames[i], f)
		}
	}
	diff := r.Features(tab, 0, 2)
	if diff[0] != 0 || diff[1] > 0.8 {
		t.Errorf("different records should score low: %v", diff)
	}
	nulls := r.Features(tab, 0, 3)
	if nulls[0] != Missing || nulls[2] != Missing {
		t.Errorf("null fields should be Missing: %v", nulls)
	}
	if nulls[3] != 0.5 {
		t.Errorf("price 10 vs 20 similarity = %f, want 0.5", nulls[3])
	}
}

func TestScoreNormalised(t *testing.T) {
	r := NewResolver("sku", "name", "brand", "price")
	if s := r.Score([]float64{1, 1, 1, 1}); s != 1 {
		t.Errorf("all-ones score = %f, want 1", s)
	}
	if s := r.Score([]float64{0, 0, 0, 0}); s != 0 {
		t.Errorf("all-zero score = %f, want 0", s)
	}
	r.Weights = []float64{0, 0, 0, 0}
	if s := r.Score([]float64{1, 1, 1, 1}); s != 0 {
		t.Error("zero weights should score 0")
	}
}

func TestLearnImprovesThreshold(t *testing.T) {
	tab, truth := dupTable(4, 80)
	r := NewResolver("sku", "name", "brand", "price")
	// Deliberately mis-set the threshold so the resolver over-merges.
	r.Threshold = 0.55
	before, err := r.Resolve(tab)
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1Before := PairwiseMetrics(before, truth)

	// Label a sample of candidate pairs using ground truth (simulated
	// reliable crowd).
	pairs := r.CandidatePairs(tab)
	var labels []LabeledPair
	for i, p := range pairs {
		if i%2 == 0 {
			labels = append(labels, LabeledPair{Pair: p, Duplicate: truth[p.I] == truth[p.J]})
		}
	}
	trainF1 := r.Learn(tab, labels)
	if trainF1 <= 0 {
		t.Fatalf("training F1 = %f", trainF1)
	}
	after, err := r.Resolve(tab)
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1After := PairwiseMetrics(after, truth)
	if f1After <= f1Before {
		t.Errorf("learning should improve F1: before %f after %f", f1Before, f1After)
	}
}

func TestLearnNoLabelsNoop(t *testing.T) {
	tab, _ := dupTable(5, 10)
	r := NewResolver("sku", "name", "brand", "price")
	th := r.Threshold
	w := append([]float64(nil), r.Weights...)
	if got := r.Learn(tab, nil); got != 0 {
		t.Error("no labels should return 0")
	}
	if r.Threshold != th {
		t.Error("threshold must not move without labels")
	}
	for i := range w {
		if r.Weights[i] != w[i] {
			t.Error("weights must not move without labels")
		}
	}
}

func TestPairwiseMetrics(t *testing.T) {
	c := &Clustering{Assign: []int{0, 0, 1, 1}, Num: 2}
	truth := []string{"a", "a", "a", "b"}
	p, r, f := PairwiseMetrics(c, truth)
	// Truth pairs: (0,1),(0,2),(1,2). Predicted: (0,1),(2,3).
	// tp=1 (0,1); fp=1 (2,3); fn=2.
	if p != 0.5 {
		t.Errorf("precision = %f, want 0.5", p)
	}
	if r != 1.0/3.0 {
		t.Errorf("recall = %f, want 1/3", r)
	}
	if f <= 0 {
		t.Errorf("f1 = %f", f)
	}
}

func TestPairwiseMetricsIgnoresUnlabelled(t *testing.T) {
	c := &Clustering{Assign: []int{0, 0, 0}, Num: 1}
	truth := []string{"a", "", "a"}
	p, r, _ := PairwiseMetrics(c, truth)
	if p != 1 || r != 1 {
		t.Errorf("unlabelled rows must be skipped: p=%f r=%f", p, r)
	}
}

// Property: Resolve yields a valid partition — every row assigned, ids
// dense in [0, Num).
func TestResolvePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		tab, _ := dupTable(seed%1000, 20)
		r := NewResolver("sku", "name", "brand", "price")
		c, err := r.Resolve(tab)
		if err != nil || len(c.Assign) != tab.Len() {
			return false
		}
		seen := map[int]bool{}
		for _, id := range c.Assign {
			if id < 0 || id >= c.Num {
				return false
			}
			seen[id] = true
		}
		return len(seen) == c.Num
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: clustering is deterministic for a fixed table.
func TestResolveDeterministicProperty(t *testing.T) {
	tab, _ := dupTable(6, 40)
	r := NewResolver("sku", "name", "brand", "price")
	c1, err1 := r.Resolve(tab)
	c2, err2 := r.Resolve(tab)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range c1.Assign {
		if c1.Assign[i] != c2.Assign[i] {
			t.Fatal("non-deterministic clustering")
		}
	}
}

func TestClustersRoundTrip(t *testing.T) {
	c := &Clustering{Assign: []int{0, 1, 0, 2, 1}, Num: 3}
	cl := c.Clusters()
	if len(cl) != 3 {
		t.Fatal("cluster count wrong")
	}
	total := 0
	for id, rows := range cl {
		total += len(rows)
		for _, row := range rows {
			if c.Assign[row] != id {
				t.Fatal("cluster membership inconsistent")
			}
		}
	}
	if total != 5 {
		t.Error("rows lost")
	}
}
