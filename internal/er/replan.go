package er

import (
	"fmt"
	"maps"
	"slices"
	"sort"

	"repro/internal/dataset"
	"repro/internal/text"
)

// This file is the incremental half of shard planning: a completed
// plan+resolve round is memoized as a PlanState (block index, per-shard
// inputs and clusters, all keyed by stable row keys), and RePlan folds a
// delta into it — only the dirty rows re-block and re-route, and every
// shard whose resolve inputs are provably unchanged skips ResolveShard
// entirely, its previous clusters translated to the new row numbering by
// reference. The contract is the same strict one the sharded tail
// carries: a re-planned round is byte-identical to a fresh PlanShards +
// full resolve over the new table. The reuse argument: a shard's resolve
// output is a function of its rows' values, its candidate pairs, the
// constraints that touch it and the scoring rule; pairs only change
// inside blocks whose membership changed, and block membership only
// changes for re-blocked (dirty) rows — so a shard with no dirty row, no
// touched block, no changed constraint and an unchanged rule must
// resolve to exactly the clusters it had.

// blockIndex is the blocking state keyed by stable row key, so it
// survives row-index shifts between reactions.
type blockIndex struct {
	blocks    map[string]map[string]bool // block key -> member row keys
	rowBlocks map[string][]string        // row key -> block keys it is in
}

// buildBlockIndex blocks every row of the table, keyed by key(i).
func (r *Resolver) buildBlockIndex(t *dataset.Table, key func(int) string) *blockIndex {
	idx := &blockIndex{
		blocks:    map[string]map[string]bool{},
		rowBlocks: map[string][]string{},
	}
	for i := 0; i < t.Len(); i++ {
		rk := key(i)
		bks := r.blockKeysOf(t, i)
		idx.rowBlocks[rk] = bks
		for _, bk := range bks {
			if idx.blocks[bk] == nil {
				idx.blocks[bk] = map[string]bool{}
			}
			idx.blocks[bk][rk] = true
		}
	}
	return idx
}

// pairs enumerates the candidate pairs of the index — byte-identical to
// CandidatePairs over the same rows: blocks visited in sorted key order,
// oversized blocks skipped, pairs deduplicated and sorted by (I, J).
func (idx *blockIndex) pairs(rowIdx map[string]int, maxBlock int) ([]Pair, error) {
	keys := make([]string, 0, len(idx.blocks))
	total := 0
	for k, set := range idx.blocks {
		keys = append(keys, k)
		if n := len(set); n >= 2 && n <= maxBlock {
			total += n * (n - 1) / 2
		}
	}
	sort.Strings(keys)
	// One slab for every block's pairs, then the shared sort + in-place
	// compact (sortDedupPairs) — the same output the map-based dedup
	// produced, without its per-insert allocations.
	out := make([]Pair, 0, total)
	var member []int
	for _, k := range keys {
		set := idx.blocks[k]
		if len(set) < 2 || len(set) > maxBlock {
			continue
		}
		member = member[:0]
		for rk := range set {
			i, ok := rowIdx[rk]
			if !ok {
				return nil, fmt.Errorf("er: block index references unknown row key %q", rk)
			}
			member = append(member, i)
		}
		for a := 0; a < len(member); a++ {
			for b := a + 1; b < len(member); b++ {
				p := Pair{I: member[a], J: member[b]}
				if p.I > p.J {
					p.I, p.J = p.J, p.I
				}
				out = append(out, p)
			}
		}
	}
	return sortDedupPairs(out), nil
}

// PlanState memoizes one completed plan+resolve round for incremental
// re-planning. Everything is keyed by stable row keys, so the state stays
// valid when other sources' row counts shift the global numbering.
type PlanState struct {
	shards int

	// Scoring rule snapshot: clusters may only be reused when the rule
	// that produced them still scores identically.
	weights   []float64
	threshold float64
	// Blocking parameter snapshot: the block index is only reusable while
	// the key/name columns and gram settings match.
	keyCol, nameCol string
	gram, maxBlock  int

	idx        *blockIndex
	shardRoots []map[string]string // per shard: row key -> representative row key
	must       [][2]string         // canonical constraint pairs, sorted
	cannot     [][2]string
	// scores caches the rule score of every pair scored under this state's
	// rule, keyed by canonical row-key pair. A pair's score depends only on
	// its two rows' values, so entries stay bit-valid until an endpoint's
	// content changes — the next round's resolve recomputes only
	// dirty-incident pairs. nil after a full (non-streaming) round; the
	// first streaming reaction then scores once and seeds it.
	scores map[pairKey]float64
}

// pairKey is a candidate pair as canonical (smaller, larger) row keys —
// stable across row-index shifts.
type pairKey [2]string

func pairKeyOf(rowKeys []string, p Pair) pairKey {
	a, b := rowKeys[p.I], rowKeys[p.J]
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// BuildPlanState captures a completed round: the plan (with its block
// index), the per-shard resolve roots, and the constraints, all
// translated to row keys. rowKeys must be the stable keys the plan was
// built with.
func BuildPlanState(r *Resolver, plan *ShardPlan, rowKeys []string, roots []map[int]int, must, cannot []Pair) (*PlanState, error) {
	if plan.idx == nil {
		return nil, fmt.Errorf("er: plan carries no block index")
	}
	if len(rowKeys) != len(plan.RowShard) {
		return nil, fmt.Errorf("er: %d row keys for a %d-row plan", len(rowKeys), len(plan.RowShard))
	}
	st := &PlanState{
		shards:     plan.NumShards,
		weights:    slices.Clone(r.Weights),
		threshold:  r.Threshold,
		keyCol:     r.KeyColumn,
		nameCol:    r.NameColumn,
		gram:       r.BlockGramSize,
		maxBlock:   r.MaxBlockSize,
		idx:        plan.idx,
		shardRoots: make([]map[string]string, plan.NumShards),
		must:       canonPairs(must, rowKeys),
		cannot:     canonPairs(cannot, rowKeys),
	}
	for s, rows := range plan.Rows {
		rt := make(map[string]string, len(rows))
		for _, row := range rows {
			root, ok := roots[s][row]
			if !ok {
				return nil, fmt.Errorf("er: shard %d roots miss row %d", s, row)
			}
			rt[rowKeys[row]] = rowKeys[root]
		}
		st.shardRoots[s] = rt
	}
	return st, nil
}

// canonPairs renders constraint pairs as ordered row-key pairs, sorted —
// the representation two rounds' constraints are diffed in.
func canonPairs(ps []Pair, rowKeys []string) [][2]string {
	out := make([][2]string, 0, len(ps))
	for _, p := range ps {
		if !validPair(p, len(rowKeys)) || p.I == p.J {
			continue
		}
		a, b := rowKeys[p.I], rowKeys[p.J]
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]string{a, b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// RePlanned is the output of an incremental re-plan: the new plan, plus
// — per shard — the clusters that carried over from the previous round
// (Roots, complete for every clean component) and the residue that still
// needs scoring (DirtyRows / DirtyPairs). A shard with no dirty
// components is marked Reused and skips resolution entirely; a mixed
// shard resolves only its dirty components' rows via ResolveShardRows
// and merges them with the pre-filled Roots.
type RePlanned struct {
	Plan *ShardPlan
	// Reused marks shards with no dirty component: Roots is complete and
	// no resolve call is needed.
	Reused []bool
	// Roots holds, per shard, the translated representatives of every
	// clean component's rows (complete when Reused, partial otherwise).
	Roots []map[int]int
	// DirtyRows lists, per shard, the rows of dirty components
	// (ascending); DirtyPairs their candidate pairs, in plan order.
	DirtyRows  [][]int
	DirtyPairs [][]Pair
	// AffectedRows counts the rows the delta touched (dirty rows plus
	// rows sharing a changed block or constraint) — the dirty frontier.
	// ReusedComponents / DirtyComponents split the plan's components.
	AffectedRows     int
	ReusedComponents int
	DirtyComponents  int

	rowKeys []string
	// prevScores is the still-valid slice of the previous round's score
	// cache: entries whose endpoints' content did not change. Read-only
	// during the resolve fan-out.
	prevScores map[pairKey]float64
	// shardScores collects the scores each shard's resolve computed fresh
	// this round — one map per shard, single-writer, folded into the next
	// PlanState by Commit.
	shardScores []map[pairKey]float64
}

// ReusedShards counts the shards whose clusters were reused whole.
func (rp *RePlanned) ReusedShards() int {
	n := 0
	for _, r := range rp.Reused {
		if r {
			n++
		}
	}
	return n
}

// RePlan incrementally re-plans after a delta. dirty holds the row keys
// whose content changed — including keys that appeared or disappeared —
// relative to the round prev memoizes; rowKeys are the new table's stable
// keys (required, one per row). Only dirty rows are re-blocked; pairs,
// components and shard routing are reassembled from the updated index
// exactly as PlanShards would build them from scratch. A block-connected
// component untouched by the delta — no dirty row, no changed block, no
// changed constraint, unchanged scoring rule — keeps its owner shard and
// its previous clusters, translated to the new numbering without scoring
// a single pair; only dirty components' rows remain to be resolved.
//
// When prev is nil or was built under different blocking parameters or a
// different shard count, RePlan degrades to a fresh PlanShards with no
// reuse — never an error, so callers need no fallback path of their own.
func (r *Resolver) RePlan(t *dataset.Table, n int, must, cannot []Pair, rowKeys []string, dirty map[string]bool, prev *PlanState) (*RePlanned, error) {
	if len(rowKeys) != t.Len() {
		return nil, fmt.Errorf("er: %d row keys for a %d-row table", len(rowKeys), t.Len())
	}
	if n < 1 {
		n = 1
	}
	if prev == nil || prev.shards != n || !prev.blockCompatible(r) {
		plan, err := r.PlanShards(t, n, must, rowKeys)
		if err != nil {
			return nil, err
		}
		return freshRePlanned(plan, n, rowKeys), nil
	}

	// The incremental path re-blocks dirty rows and scores dirty pairs
	// during the resolve fan-out; prepare the per-row feature state now,
	// while still single-threaded (PlanShards does the same on the fresh
	// path).
	r.Prepare(t)
	key := rowKeyFn(rowKeys)
	rowIdx := rowIndexOf(t.Len(), key)

	// Copy-on-write update of the block index: untouched blocks are
	// shared with the previous state, so a failed tail cannot corrupt it.
	blocks := maps.Clone(prev.idx.blocks)
	rowBlocks := maps.Clone(prev.idx.rowBlocks)
	cloned := map[string]bool{}
	touched := map[string]bool{}
	edit := func(bk string) map[string]bool {
		if !cloned[bk] {
			blocks[bk] = maps.Clone(blocks[bk])
			cloned[bk] = true
		}
		if blocks[bk] == nil {
			// First touch of a brand-new block key, or a block emptied and
			// then re-populated within this delta.
			blocks[bk] = map[string]bool{}
		}
		touched[bk] = true
		return blocks[bk]
	}
	for rk := range dirty {
		if i, ok := rowIdx[rk]; ok {
			bks := r.blockKeysOf(t, i)
			if sameBlockKeys(prev.idx.rowBlocks[rk], bks) {
				// The row changed but not its blocking evidence (a price or
				// timestamp edit): every block's membership — and therefore
				// every pair — is untouched. The row's own component still
				// goes dirty via the affected set below; nothing spreads.
				continue
			}
			for _, bk := range prev.idx.rowBlocks[rk] {
				m := edit(bk)
				delete(m, rk)
				if len(m) == 0 {
					delete(blocks, bk)
				}
			}
			rowBlocks[rk] = bks
			for _, bk := range bks {
				edit(bk)[rk] = true
			}
			continue
		}
		for _, bk := range prev.idx.rowBlocks[rk] {
			m := edit(bk)
			delete(m, rk)
			if len(m) == 0 {
				delete(blocks, bk)
			}
		}
		delete(rowBlocks, rk)
	}

	// The dirty frontier: dirty rows, every old or new member of a touched
	// block whose pairs could have appeared or vanished, and both ends of
	// every constraint that changed. A touched block spreads dirt only
	// through the rounds in which it was usable (2..MaxBlockSize members):
	// an oversized block emits no pairs on either side of the delta, so
	// membership churn inside it is inert — without this distinction a
	// renamed row's stop-gram blocks would dirty most of the corpus.
	affected := map[string]bool{}
	for rk := range dirty {
		affected[rk] = true
	}
	usable := func(sz int) bool { return sz >= 2 && sz <= r.MaxBlockSize }
	for bk := range touched {
		if usable(len(prev.idx.blocks[bk])) {
			for rk := range prev.idx.blocks[bk] {
				affected[rk] = true
			}
		}
		if usable(len(blocks[bk])) {
			for rk := range blocks[bk] {
				affected[rk] = true
			}
		}
	}
	newMust := canonPairs(must, rowKeys)
	newCannot := canonPairs(cannot, rowKeys)
	for _, pk := range symDiffPairs(prev.must, newMust) {
		affected[pk[0]] = true
		affected[pk[1]] = true
	}
	for _, pk := range symDiffPairs(prev.cannot, newCannot) {
		affected[pk[0]] = true
		affected[pk[1]] = true
	}

	idx := &blockIndex{blocks: blocks, rowBlocks: rowBlocks}
	pairs, err := idx.pairs(rowIdx, r.MaxBlockSize)
	if err != nil {
		return nil, err
	}
	plan, comp := assemblePlan(t.Len(), n, pairs, must, key)
	plan.idx = idx

	rp := &RePlanned{
		Plan:         plan,
		Reused:       make([]bool, n),
		Roots:        make([]map[int]int, n),
		DirtyRows:    make([][]int, n),
		DirtyPairs:   make([][]Pair, n),
		AffectedRows: len(affected),
		rowKeys:      rowKeys,
		prevScores:   map[pairKey]float64{},
		shardScores:  make([]map[pairKey]float64, n),
	}
	for s := 0; s < n; s++ {
		rp.shardScores[s] = map[pairKey]float64{}
	}
	if prev.threshold != r.Threshold || !slices.Equal(prev.weights, r.Weights) {
		// The scoring rule moved (feedback re-learned the matcher): every
		// cluster is up for grabs, nothing is reusable.
		for s := 0; s < n; s++ {
			rp.Roots[s] = map[int]int{}
			rp.DirtyRows[s] = plan.Rows[s]
			rp.DirtyPairs[s] = plan.Pairs[s]
		}
		rp.DirtyComponents = plan.Components
		return rp, nil
	}

	// Carry forward every cached pair score whose endpoints' content held:
	// the rule is unchanged and Features reads only the two rows' values,
	// so those floats are bit-identical to recomputing. Entries incident
	// to a dirty row are dropped — their pairs re-score fresh.
	for k, s := range prev.scores {
		if !dirty[k[0]] && !dirty[k[1]] {
			rp.prevScores[k] = s
		}
	}

	// A component is dirty when the delta touched any of its rows — or
	// when a row cannot be accounted for in the memoized shard (a
	// defensive guard; routing is stable for clean components). Every
	// other component translates its previous clusters by reference.
	compDirty := map[int]bool{}
	for i, root := range comp {
		rk := rowKeys[i]
		if affected[rk] {
			compDirty[root] = true
			continue
		}
		if _, ok := prev.shardRoots[plan.RowShard[i]][rk]; !ok {
			compDirty[root] = true
		}
	}
	seenComp := map[int]bool{}
	for _, root := range comp {
		if !seenComp[root] {
			seenComp[root] = true
			if compDirty[root] {
				rp.DirtyComponents++
			} else {
				rp.ReusedComponents++
			}
		}
	}
	for s := 0; s < n; s++ {
		roots := make(map[int]int, len(plan.Rows[s]))
		rep := map[string]int{}
		// Rows[s] is ascending, so the first row seen per representative
		// group is the group's smallest new index — exactly the
		// representative a fresh resolve would pick.
		for _, row := range plan.Rows[s] {
			if compDirty[comp[row]] {
				rp.DirtyRows[s] = append(rp.DirtyRows[s], row)
				continue
			}
			pr := prev.shardRoots[s][rowKeys[row]]
			min, ok := rep[pr]
			if !ok {
				min = row
				rep[pr] = row
			}
			roots[row] = min
		}
		rp.Roots[s] = roots
		rp.Reused[s] = len(rp.DirtyRows[s]) == 0
		if rp.Reused[s] {
			continue
		}
		// Candidate pairs never cross components, so the dirty subset's
		// pairs are exactly the shard pairs whose endpoints lie in dirty
		// components — plan order preserved.
		for _, p := range plan.Pairs[s] {
			if compDirty[comp[p.I]] {
				rp.DirtyPairs[s] = append(rp.DirtyPairs[s], p)
			}
		}
	}
	return rp, nil
}

// freshRePlanned wraps a from-scratch plan as a RePlanned with no reuse:
// every shard resolves all of its rows (and seeds the score cache as it
// goes).
func freshRePlanned(plan *ShardPlan, n int, rowKeys []string) *RePlanned {
	rp := &RePlanned{
		Plan:            plan,
		Reused:          make([]bool, n),
		Roots:           make([]map[int]int, n),
		DirtyRows:       make([][]int, n),
		DirtyPairs:      make([][]Pair, n),
		DirtyComponents: plan.Components,
		rowKeys:         rowKeys,
		prevScores:      map[pairKey]float64{},
		shardScores:     make([]map[pairKey]float64, n),
	}
	for s := 0; s < n; s++ {
		rp.Roots[s] = map[int]int{}
		rp.DirtyRows[s] = plan.Rows[s]
		rp.DirtyPairs[s] = plan.Pairs[s]
		rp.shardScores[s] = map[pairKey]float64{}
	}
	return rp
}

// ResolveDirty scores and clusters shard i's dirty residue (DirtyRows /
// DirtyPairs) exactly as ResolveShard would cluster those rows inside
// the full shard: components are independent under constrained
// clustering (no scored pair or must-link crosses them, and
// cross-component cannot-links are inert), so resolving the dirty
// subset and adopting the clean components' translated clusters
// reproduces the full resolve bit for bit. The cross-round score cache
// supplies every pair whose endpoints did not change — only
// dirty-incident and brand-new pairs pay for feature extraction — and
// what is computed fresh is recorded for the next round. Constraints
// are passed whole; endpoints outside the dirty rows are ignored,
// mirroring the full resolve's local filter.
func (rp *RePlanned) ResolveDirty(r *Resolver, t *dataset.Table, shard int, must, cannot []Pair) (map[int]int, int, error) {
	if shard < 0 || shard >= rp.Plan.NumShards {
		return nil, 0, fmt.Errorf("er: shard %d out of range [0,%d)", shard, rp.Plan.NumShards)
	}
	fresh := rp.shardScores[shard]
	var sc text.Scratch
	f := make([]float64, len(FeatureNames))
	score := func(p Pair) float64 {
		k := pairKeyOf(rp.rowKeys, p)
		if s, ok := rp.prevScores[k]; ok {
			return s
		}
		r.featuresInto(t, p.I, p.J, f, &sc)
		s := r.Score(f)
		fresh[k] = s
		return s
	}
	roots, conflicts := r.resolveRowsScored(t, rp.DirtyRows[shard], rp.DirtyPairs[shard],
		rp.Plan.FilterPairs(shard, must), rp.Plan.FilterPairs(shard, cannot), score)
	return roots, conflicts, nil
}

// Commit memoizes the completed streaming round: the plan state plus the
// merged score cache (valid carried-over entries and everything the
// resolve fan-out computed fresh).
func (rp *RePlanned) Commit(r *Resolver, rowKeys []string, roots []map[int]int, must, cannot []Pair) (*PlanState, error) {
	st, err := BuildPlanState(r, rp.Plan, rowKeys, roots, must, cannot)
	if err != nil {
		return nil, err
	}
	scores := rp.prevScores // owned by this round; safe to fold into
	for _, m := range rp.shardScores {
		maps.Copy(scores, m)
	}
	st.scores = scores
	return st, nil
}

// blockCompatible reports whether the memoized block index was built
// under the resolver's current blocking parameters.
func (st *PlanState) blockCompatible(r *Resolver) bool {
	return st.keyCol == r.KeyColumn && st.nameCol == r.NameColumn &&
		st.gram == r.BlockGramSize && st.maxBlock == r.MaxBlockSize
}

// sameBlockKeys reports whether two block-key lists name the same set.
// blockKeysOf is deterministic, so unchanged blocking evidence yields the
// identical slice — the fast path; the set compare covers reordered
// duplicates conservatively.
func sameBlockKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	if slices.Equal(a, b) {
		return true
	}
	set := make(map[string]bool, len(a))
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		if !set[k] {
			return false
		}
	}
	return true
}

// symDiffPairs returns the symmetric difference of two sorted canonical
// pair lists — the constraints that appeared or disappeared.
func symDiffPairs(a, b [][2]string) [][2]string {
	var out [][2]string
	i, j := 0, 0
	less := func(x, y [2]string) bool {
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		return x[1] < y[1]
	}
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case less(a[i], b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
