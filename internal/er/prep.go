package er

import (
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/text"
)

// This file is the matcher's per-row precompute: everything Features and
// blockKeysOf derive from a single row's values — normalized key and
// secondary strings, tokenized name fields (as runes, the form the
// similarity fast paths consume), numeric value, block keys — is computed
// once per union build instead of once per candidate pair. A scored pair
// used to re-normalize up to six strings and re-tokenize both names
// inside Monge-Elkan; with the precompute it touches no string machinery
// at all.
//
// Values are additionally de-duplicated: a union over many overlapping
// sources repeats the same normalized name on dozens of rows, so rows
// carry an id into a distinct-value table and similarities are memoized
// per distinct id pair (simMemo below). The state is built
// single-threaded (the plan stage / resolve entry points) and is
// read-only during the shard fan-out except for the memo, which is
// mutex-guarded. Every value is derived by the exact deterministic
// functions the per-pair path applied, so scores are bit-identical —
// pinned by the equivalence test and the wrangletest fingerprint
// harness.

// rowFeatures is one row's precomputed matcher state. The name/secondary
// slices alias the table-wide distinct-value entries.
type rowFeatures struct {
	keyOK bool
	key   string // Normalize(key value)

	nameOK   bool
	nameID   int
	name     []rune   // Normalize(name value), as runes
	nameToks [][]rune // Tokenize(name value), as runes

	secOK    bool
	secID    int
	sec      string // Normalize(secondary value)
	secRunes []rune

	numOK bool
	num   float64

	blockKeys []string // exactly blockKeysOf's keys for this row
}

// simMemo caches a similarity score per distinct-value id pair. Both
// JaroWinkler and the symmetrized Monge-Elkan blend are bit-exactly
// symmetric (their formulas combine the directional terms with
// commutative additions), so the pair is canonicalized to (lo, hi) and
// one cached float serves both call directions. Lookups happen inside
// the concurrent resolve fan-out, hence the mutex; the lock is released
// around the compute, so two goroutines may race to fill the same entry
// — they compute the identical float, and whichever store wins is
// indistinguishable.
type simMemo struct {
	mu sync.Mutex
	m  map[int64]float64
}

func (s *simMemo) get(ia, ib, n int, sc *text.Scratch, compute func(lo, hi int, sc *text.Scratch) float64) float64 {
	lo, hi := ia, ib
	if lo > hi {
		lo, hi = hi, lo
	}
	k := int64(lo)*int64(n) + int64(hi)
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := compute(lo, hi, sc)
	s.mu.Lock()
	if s.m == nil {
		s.m = map[int64]float64{}
	}
	s.m[k] = v
	s.mu.Unlock()
	return v
}

// tableFeatures is the per-table feature state plus the resolver
// configuration it was derived under — Features and blockKeysOf use it
// only while both the table and the configuration still match, falling
// back to the per-pair path otherwise.
type tableFeatures struct {
	t *dataset.Table

	keyCol, nameCol, secCol, numCol string
	gram                            int

	rows []rowFeatures

	// Distinct-value tables, indexed by rowFeatures.nameID / secID.
	names     [][]rune
	nameToks  [][][]rune
	secStrs   []string
	secRunes  [][]rune
	nameMemo  simMemo
	secMemo   simMemo
}

// nameSim is the name feature for two prepared rows, memoized per
// distinct name pair: JaroWinkler, blended with symmetric Monge-Elkan
// only when the pair clears 0.5 (token alignment cannot rescue a pair
// more dissimilar than that, and blocking emits many such candidates).
func (p *tableFeatures) nameSim(ia, ib int, sc *text.Scratch) float64 {
	return p.nameMemo.get(ia, ib, len(p.names), sc, func(lo, hi int, sc *text.Scratch) float64 {
		jw := text.JaroWinklerRunes(p.names[lo], p.names[hi], sc)
		if jw < 0.5 {
			return jw
		}
		return 0.5*jw + 0.5*text.MongeElkanSymTokens(p.nameToks[lo], p.nameToks[hi], sc)
	})
}

// secSim is the secondary feature for two prepared rows with unequal
// normalized values, memoized per distinct pair.
func (p *tableFeatures) secSim(ia, ib int, sc *text.Scratch) float64 {
	return p.secMemo.get(ia, ib, len(p.secStrs), sc, func(lo, hi int, sc *text.Scratch) float64 {
		return text.JaroWinklerRunes(p.secRunes[lo], p.secRunes[hi], sc)
	})
}

// valid reports whether the precomputed state may serve the resolver's
// current configuration over table t.
func (p *tableFeatures) valid(r *Resolver, t *dataset.Table) bool {
	return p != nil && p.t == t && len(p.rows) == t.Len() &&
		p.keyCol == r.KeyColumn && p.nameCol == r.NameColumn &&
		p.secCol == r.SecondaryColumn && p.numCol == r.NumericColumn &&
		p.gram == r.BlockGramSize
}

// colIndex resolves a configured column to its schema index, -1 when the
// column is unset or absent (the per-pair path treated both as null).
func colIndex(s dataset.Schema, name string) int {
	if name == "" {
		return -1
	}
	return s.Index(name)
}

// Prepare precomputes the per-row feature state for t, replacing any
// previous state. Resolve, ResolveConstrained, PlanShards and RePlan call
// it on entry; callers driving Features or ResolveShard directly may call
// it themselves to get the allocation-free path. Prepare must not run
// concurrently with Features (the resolve fan-out reads the state it
// installs), which the pipeline's plan-stage/fan-out ordering guarantees.
func (r *Resolver) Prepare(t *dataset.Table) {
	schema := t.Schema()
	ki := colIndex(schema, r.KeyColumn)
	ni := colIndex(schema, r.NameColumn)
	si := colIndex(schema, r.SecondaryColumn)
	pi := colIndex(schema, r.NumericColumn)
	p := &tableFeatures{
		t:       t,
		keyCol:  r.KeyColumn,
		nameCol: r.NameColumn,
		secCol:  r.SecondaryColumn,
		numCol:  r.NumericColumn,
		gram:    r.BlockGramSize,
		rows:    make([]rowFeatures, t.Len()),
	}
	// Distinct-value registries: tokenization, rune conversion and q-gram
	// block keys are computed once per distinct normalized value, and the
	// row entries alias the shared slices.
	nameIDs := map[string]int{}
	nameGrams := [][]string{} // per distinct name: its "g:" block keys
	secIDs := map[string]int{}
	seen := map[string]bool{} // per-name block-key dedup scratch
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		rf := &p.rows[i]
		if ki >= 0 && !row[ki].IsNull() {
			rf.keyOK = true
			rf.key = text.Normalize(row[ki].String())
			rf.blockKeys = append(rf.blockKeys, "k:"+rf.key)
		}
		if ni >= 0 && !row[ni].IsNull() {
			rf.nameOK = true
			toks := text.Tokenize(row[ni].String())
			// Normalize is Tokenize rejoined on single spaces, so the
			// normalized string falls out of the token pass for free.
			norm := strings.Join(toks, " ")
			id, ok := nameIDs[norm]
			if !ok {
				id = len(p.names)
				nameIDs[norm] = id
				p.names = append(p.names, []rune(norm))
				p.nameToks = append(p.nameToks, text.TokenRunes(toks))
				clear(seen)
				var grams []string
				for _, tok := range toks {
					for _, g := range text.QGrams(tok, r.BlockGramSize) {
						key := "g:" + g
						if !seen[key] {
							seen[key] = true
							grams = append(grams, key)
						}
					}
				}
				nameGrams = append(nameGrams, grams)
			}
			rf.nameID = id
			rf.name = p.names[id]
			rf.nameToks = p.nameToks[id]
			rf.blockKeys = append(rf.blockKeys, nameGrams[id]...)
		}
		if si >= 0 && !row[si].IsNull() {
			rf.secOK = true
			norm := text.Normalize(row[si].String())
			id, ok := secIDs[norm]
			if !ok {
				id = len(p.secStrs)
				secIDs[norm] = id
				p.secStrs = append(p.secStrs, norm)
				p.secRunes = append(p.secRunes, []rune(norm))
			}
			rf.secID = id
			rf.sec = p.secStrs[id]
			rf.secRunes = p.secRunes[id]
		}
		if pi >= 0 && row[pi].IsNumeric() {
			rf.numOK = true
			rf.num = row[pi].FloatVal()
		}
	}
	r.prep = p
}
