package fusion

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
)

// randomClaims builds a claim set with conflicts, numeric jitter, nulls
// and staleness across several entities, attributes and sources.
func randomClaims(rng *rand.Rand, n int) []Claim {
	now := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	var out []Claim
	for i := 0; i < n; i++ {
		e := fmt.Sprintf("entity-%02d", rng.Intn(8))
		attr := []string{"name", "price", "brand"}[rng.Intn(3)]
		src := fmt.Sprintf("src%d", rng.Intn(5))
		var v dataset.Value
		switch {
		case rng.Intn(10) == 0:
			v = dataset.Null()
		case attr == "price":
			v = dataset.Float(10 + float64(rng.Intn(4)) + rng.Float64()*0.001)
		default:
			v = dataset.String(fmt.Sprintf("value-%d", rng.Intn(3)))
		}
		out = append(out, Claim{
			Entity: e, Attribute: attr, Value: v, SourceID: src,
			AsOf: now.Add(-time.Duration(rng.Intn(72)) * time.Hour),
		})
	}
	return out
}

// partitionByEntity splits claims into k parts keyed by entity (never
// splitting one entity across parts), preserving claim order — the way
// the sharded tail partitions claims.
func partitionByEntity(claims []Claim, k int) [][]Claim {
	parts := make([][]Claim, k)
	shardOf := map[string]int{}
	for _, c := range claims {
		s, ok := shardOf[c.Entity]
		if !ok {
			s = len(shardOf) % k
			shardOf[c.Entity] = s
		}
		parts[s] = append(parts[s], c)
	}
	return parts
}

func resultsEqual(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestFuseResolvedPartitionMatchesFuse is the fusion half of the sharding
// contract: one global EstimateTrust followed by FuseResolved over any
// entity partition, merged with MergeResults, must equal a single Fuse
// call bit for bit — for every policy, over randomized claim sets.
func TestFuseResolvedPartitionMatchesFuse(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		claims := randomClaims(rng, 30+rng.Intn(120))
		for _, policy := range []Policy{MajorityVote, WeightedVote, TruthFinder, FreshnessWeighted} {
			mk := func() Options {
				o := DefaultOptions(policy)
				o.Now = time.Date(2026, 7, 2, 0, 0, 0, 0, time.UTC)
				o.Trust["src0"] = 0.95
				o.Pinned = map[string]bool{"src0": true}
				return o
			}
			want := Fuse(claims, mk())
			for _, k := range []int{1, 2, 4, 8} {
				opts := EstimateTrust(claims, mk())
				var parts [][]Result
				for _, p := range partitionByEntity(claims, k) {
					parts = append(parts, FuseResolved(p, opts))
				}
				resultsEqual(t, fmt.Sprintf("seed=%d policy=%s k=%d", seed, policy, k),
					want, MergeResults(parts...))
			}
		}
	}
}

// TestEstimateTrustDeterministic pins the map-iteration fix: trust
// estimation over the same claims must land on identical floats every
// run (the fixpoint sums are order-sensitive, so sorted traversal is
// load-bearing).
func TestEstimateTrustDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	claims := randomClaims(rng, 200)
	first := EstimateTrust(claims, DefaultOptions(TruthFinder)).Trust
	for i := 0; i < 5; i++ {
		again := EstimateTrust(claims, DefaultOptions(TruthFinder)).Trust
		if len(again) != len(first) {
			t.Fatalf("run %d: %d sources, want %d", i, len(again), len(first))
		}
		for src, tr := range first {
			if again[src] != tr {
				t.Fatalf("run %d: trust[%s] = %v, want %v (nondeterministic fixpoint)", i, src, again[src], tr)
			}
		}
	}
}

// TestMergeResultsOrderIndependent pins the stable merge: any permutation
// of the parts merges to the same output.
func TestMergeResultsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	claims := randomClaims(rng, 80)
	opts := EstimateTrust(claims, DefaultOptions(TruthFinder))
	parts := partitionByEntity(claims, 4)
	var a, b []Result
	for _, p := range parts {
		a = append(a, FuseResolved(p, opts)...)
	}
	merged := MergeResults(FuseResolved(parts[0], opts), FuseResolved(parts[1], opts),
		FuseResolved(parts[2], opts), FuseResolved(parts[3], opts))
	reversed := MergeResults(FuseResolved(parts[3], opts), FuseResolved(parts[2], opts),
		FuseResolved(parts[1], opts), FuseResolved(parts[0], opts))
	resultsEqual(t, "permuted parts", merged, reversed)
	if len(merged) != len(a) {
		t.Fatalf("merge dropped results: %d vs %d", len(merged), len(a))
	}
	b = append(b, merged...)
	for i := 1; i < len(b); i++ {
		if b[i-1].Entity+"\x1f"+b[i-1].Attribute >= b[i].Entity+"\x1f"+b[i].Attribute {
			t.Fatalf("merged results not strictly sorted at %d", i)
		}
	}
}
