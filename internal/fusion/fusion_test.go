package fusion

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
)

func claim(entity, attr, val, src string) Claim {
	return Claim{Entity: entity, Attribute: attr, Value: dataset.Parse(val), SourceID: src}
}

func TestMajorityVote(t *testing.T) {
	claims := []Claim{
		claim("e1", "name", "USB Cable", "s1"),
		claim("e1", "name", "USB Cable", "s2"),
		claim("e1", "name", "USB Kable", "s3"),
	}
	res := Fuse(claims, DefaultOptions(MajorityVote))
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Value.String() != "USB Cable" || res[0].Support != 2 || !res[0].Conflict {
		t.Errorf("majority result = %+v", res[0])
	}
	if res[0].Confidence < 0.6 || res[0].Confidence > 0.7 {
		t.Errorf("confidence = %f, want 2/3", res[0].Confidence)
	}
}

func TestWeightedVoteOverridesMajority(t *testing.T) {
	claims := []Claim{
		claim("e1", "price", "4.99", "trusted"),
		claim("e1", "price", "9.99", "junk1"),
		claim("e1", "price", "9.99", "junk2"),
	}
	opts := DefaultOptions(WeightedVote)
	opts.Trust = map[string]float64{"trusted": 0.95, "junk1": 0.2, "junk2": 0.2}
	res := Fuse(claims, opts)
	if res[0].Value.FloatVal() != 4.99 {
		t.Errorf("trusted source should win: %+v", res[0])
	}
	// Majority vote gets it wrong — that's the point.
	resM := Fuse(claims, DefaultOptions(MajorityVote))
	if resM[0].Value.FloatVal() != 9.99 {
		t.Errorf("majority should pick the frequent wrong value: %+v", resM[0])
	}
}

func TestNumericBucketTolerance(t *testing.T) {
	claims := []Claim{
		claim("e1", "price", "10.00", "s1"),
		claim("e1", "price", "10.05", "s2"), // within 1%
		claim("e1", "price", "20.00", "s3"),
	}
	res := Fuse(claims, DefaultOptions(MajorityVote))
	if res[0].Support != 2 {
		t.Errorf("near-equal numerics should bucket together: %+v", res[0])
	}
}

func TestTextNormalisedBuckets(t *testing.T) {
	claims := []Claim{
		claim("e1", "brand", "Anker", "s1"),
		claim("e1", "brand", "ANKER ", "s2"),
		claim("e1", "brand", "Belkin", "s3"),
	}
	res := Fuse(claims, DefaultOptions(MajorityVote))
	if res[0].Value.String() != "Anker" && res[0].Value.String() != "ANKER " {
		t.Errorf("case/space variants should merge: %+v", res[0])
	}
	if res[0].Support != 2 {
		t.Errorf("support = %d, want 2", res[0].Support)
	}
}

func TestNullClaimsIgnored(t *testing.T) {
	claims := []Claim{
		{Entity: "e1", Attribute: "name", Value: dataset.Null(), SourceID: "s1"},
		claim("e1", "name", "Lamp", "s2"),
	}
	res := Fuse(claims, DefaultOptions(MajorityVote))
	if res[0].Value.String() != "Lamp" || res[0].Conflict {
		t.Errorf("nulls must not create conflicts: %+v", res[0])
	}
}

func TestAllNullGroup(t *testing.T) {
	claims := []Claim{
		{Entity: "e1", Attribute: "name", Value: dataset.Null(), SourceID: "s1"},
	}
	res := Fuse(claims, DefaultOptions(MajorityVote))
	if len(res) != 1 || !res[0].Value.IsNull() {
		t.Errorf("all-null group should fuse to null: %+v", res)
	}
}

func TestTruthFinderLearnsSourceTrust(t *testing.T) {
	// 3 honest sources agree on most entities; 1 liar contradicts.
	rng := rand.New(rand.NewSource(42))
	var claims []Claim
	for e := 0; e < 40; e++ {
		entity := fmt.Sprintf("e%02d", e)
		truth := fmt.Sprintf("value-%02d", e)
		for _, s := range []string{"honest1", "honest2", "honest3"} {
			v := truth
			if rng.Float64() < 0.1 {
				v = "noise-" + s
			}
			claims = append(claims, claim(entity, "name", v, s))
		}
		claims = append(claims, claim(entity, "name", "lie-"+entity, "liar"))
	}
	opts := DefaultOptions(TruthFinder)
	res := Fuse(claims, opts)
	if opts.Trust["liar"] >= opts.Trust["honest1"] {
		t.Errorf("liar trust %f should fall below honest %f", opts.Trust["liar"], opts.Trust["honest1"])
	}
	correct := 0
	for _, r := range res {
		if r.Value.String() == "value-"+r.Entity[1:] {
			correct++
		}
	}
	if correct < 38 {
		t.Errorf("truthfinder fused %d/40 correctly", correct)
	}
}

func TestFreshnessBeatsStaleMajority(t *testing.T) {
	now := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	fresh := Claim{Entity: "e1", Attribute: "price", Value: dataset.Float(12.99), SourceID: "s1", AsOf: now.Add(-1 * time.Hour)}
	stale1 := Claim{Entity: "e1", Attribute: "price", Value: dataset.Float(9.99), SourceID: "s2", AsOf: now.Add(-96 * time.Hour)}
	stale2 := Claim{Entity: "e1", Attribute: "price", Value: dataset.Float(9.99), SourceID: "s3", AsOf: now.Add(-120 * time.Hour)}

	optsF := DefaultOptions(FreshnessWeighted)
	optsF.Now = now
	res := Fuse([]Claim{fresh, stale1, stale2}, optsF)
	if res[0].Value.FloatVal() != 12.99 {
		t.Errorf("freshness policy should pick the fresh price: %+v", res[0])
	}
	resM := Fuse([]Claim{fresh, stale1, stale2}, DefaultOptions(MajorityVote))
	if resM[0].Value.FloatVal() != 9.99 {
		t.Errorf("majority should pick the stale price: %+v", resM[0])
	}
}

func TestFuseMultipleEntitiesSorted(t *testing.T) {
	claims := []Claim{
		claim("b", "x", "1", "s"),
		claim("a", "y", "2", "s"),
		claim("a", "x", "3", "s"),
	}
	res := Fuse(claims, DefaultOptions(MajorityVote))
	if len(res) != 3 {
		t.Fatal("should fuse per (entity, attribute)")
	}
	if res[0].Entity != "a" || res[0].Attribute != "x" || res[2].Entity != "b" {
		t.Errorf("results not sorted: %+v", res)
	}
}

func TestAccuracy(t *testing.T) {
	res := []Result{
		{Entity: "e1", Attribute: "price", Value: dataset.Float(4.99)},
		{Entity: "e2", Attribute: "price", Value: dataset.Float(9.99)},
		{Entity: "e3", Attribute: "price", Value: dataset.Float(1.00)},
	}
	truth := map[string]float64{"e1": 4.99, "e2": 7.50}
	acc, ok := Accuracy(res, func(e, a string) (dataset.Value, bool) {
		v, has := truth[e]
		return dataset.Float(v), has
	})
	if !ok || acc != 0.5 {
		t.Errorf("accuracy = %f ok=%v, want 0.5", acc, ok)
	}
	_, ok = Accuracy(res, func(e, a string) (dataset.Value, bool) { return dataset.Null(), false })
	if ok {
		t.Error("no truth should report !ok")
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		MajorityVote: "majority", WeightedVote: "weighted",
		TruthFinder: "truthfinder", FreshnessWeighted: "freshness",
	} {
		if p.String() != want {
			t.Errorf("Policy %d String = %q", p, p.String())
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	claims := []Claim{
		claim("e1", "name", "Alpha", "s1"),
		claim("e1", "name", "Beta", "s2"),
	}
	for i := 0; i < 5; i++ {
		res := Fuse(claims, DefaultOptions(MajorityVote))
		if res[0].Value.String() != "Alpha" {
			t.Fatalf("tie should break lexicographically, got %v", res[0].Value)
		}
	}
}
