package fusion

import (
	"maps"
	"math"
	"slices"
	"sort"

	"repro/internal/text"
)

// This file is the warm-started half of trust estimation. TruthFinder's
// fixpoint is the one stage of fusion that couples every (entity,
// attribute) group to every other, so a partial tail cannot shard it —
// but it can avoid repeating the expensive, iteration-invariant parts: a
// group's bucket structure (which claims share a value, each bucket's
// normalised representative, which buckets each claim matches) depends
// only on claim values, never on the trust being estimated. A TrustMemo
// caches that prepared structure per group plus the estimation's inputs
// and result; the next estimation rebuilds only the groups whose claims
// changed, and when nothing relevant changed at all it returns the
// memoized trust without iterating once. Every path is float-exact with
// EstimateTrust — pinned by the equivalence property test.

// trustGroup is one (entity, attribute) group prepared for the fixpoint:
// everything bucketize would recompute per iteration that does not
// depend on trust.
type trustGroup struct {
	initSources []string // every claim's source, claim order (nulls included)
	sources     []string // non-null claims' sources, claim order
	claimBucket []int    // per non-null claim: bucket it accumulates into
	match       [][]bool // per non-null claim: which buckets it sameValues
	norms       []string // per bucket: normalised representative
}

// prepareTrustGroup mirrors bucketize's bucket formation exactly: claims
// join the first bucket (in creation order) whose representative matches,
// or open a new one. The match matrix is computed against the final
// bucket set — in the fixpoint a claim credits the first *sorted* bucket
// it matches, which can be a bucket created after it.
func prepareTrustGroup(claims []Claim, tol float64) *trustGroup {
	g := &trustGroup{initSources: make([]string, 0, len(claims))}
	// Normalize each claim value once up front: sameValue's string leg
	// normalizes both sides on every comparison, which multiplied out to
	// claims × buckets × 2 normalizations per group. The cached form
	// compares by the identical rules (relative numeric tolerance when
	// both sides are numeric, normalized-string equality otherwise), so
	// bucket formation is unchanged.
	type normVal struct {
		num  bool
		f    float64
		norm string
	}
	nv := make([]normVal, 0, len(claims))
	for _, c := range claims {
		g.initSources = append(g.initSources, c.SourceID)
		if c.Value.IsNull() {
			continue
		}
		g.sources = append(g.sources, c.SourceID)
		v := normVal{num: c.Value.IsNumeric(), norm: text.Normalize(c.Value.String())}
		if v.num {
			v.f = c.Value.FloatVal()
		}
		nv = append(nv, v)
	}
	same := func(a, b normVal) bool {
		if a.num && b.num {
			if a.f == b.f {
				return true
			}
			den := math.Max(math.Abs(a.f), math.Abs(b.f))
			return den > 0 && math.Abs(a.f-b.f)/den <= tol
		}
		return a.norm == b.norm
	}
	var reps []int // bucket representatives, as indices into nv
	g.claimBucket = make([]int, len(nv))
	for ci, v := range nv {
		bi := -1
		for i, ri := range reps {
			if same(nv[ri], v) {
				bi = i
				break
			}
		}
		if bi < 0 {
			bi = len(reps)
			reps = append(reps, ci)
			g.norms = append(g.norms, v.norm)
		}
		g.claimBucket[ci] = bi
	}
	// One flat slab for the match matrix instead of a row per claim.
	slab := make([]bool, len(nv)*len(reps))
	g.match = make([][]bool, len(nv))
	for ci, v := range nv {
		row := slab[ci*len(reps) : (ci+1)*len(reps)]
		for i, ri := range reps {
			row[i] = same(nv[ri], v)
		}
		g.match[ci] = row
	}
	return g
}

// runTrustFixpoint is estimateTrust over prepared groups: identical float
// accumulation order, identical bucket sort, identical damped update and
// early break — only the per-iteration string work is gone.
func runTrustFixpoint(keys []string, groups map[string]*trustGroup, opts *Options) {
	for _, k := range keys {
		for _, src := range groups[k].initSources {
			if _, ok := opts.Trust[src]; !ok {
				opts.Trust[src] = opts.DefaultTrust
			}
		}
	}
	// Iteration-invariant scratch: bucket weights and traversal order are
	// resized per group but reused across all groups and iterations, and
	// the per-source accumulators are cleared rather than reallocated.
	// Reused buffers see the identical sequence of float operations a
	// fresh allocation would, so the fixpoint is unchanged bit for bit.
	maxBuckets := 0
	for _, k := range keys {
		if n := len(groups[k].norms); n > maxBuckets {
			maxBuckets = n
		}
	}
	wbuf := make([]float64, maxBuckets)
	obuf := make([]int, maxBuckets)
	sums := map[string]float64{}
	counts := map[string]int{}
	var srcs []string
	for iter := 0; iter < opts.Iterations; iter++ {
		clear(sums)
		clear(counts)
		for _, k := range keys {
			g := groups[k]
			w := wbuf[:len(g.norms)]
			for i := range w {
				w[i] = 0
			}
			for ci, src := range g.sources {
				w[g.claimBucket[ci]] += trustOf(src, *opts)
			}
			// Same comparator as bucketize's final sort, applied to bucket
			// indices: identical comparison outcomes give the identical
			// permutation, so the weight-sorted traversal below credits the
			// same bucket per claim.
			order := obuf[:len(w)]
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(i, j int) bool {
				if w[order[i]] != w[order[j]] {
					return w[order[i]] > w[order[j]]
				}
				return g.norms[order[i]] < g.norms[order[j]]
			})
			total := 0.0
			for _, bi := range order {
				total += w[bi]
			}
			if total == 0 {
				continue
			}
			for ci, src := range g.sources {
				for _, bi := range order {
					if g.match[ci][bi] {
						sums[src] += w[bi] / total
						counts[src]++
						break
					}
				}
			}
		}
		srcs = srcs[:0]
		for src := range sums {
			srcs = append(srcs, src)
		}
		sort.Strings(srcs)
		delta := 0.0
		for _, src := range srcs {
			if counts[src] == 0 || opts.Pinned[src] {
				continue
			}
			next := 0.5*opts.Trust[src] + 0.5*(sums[src]/float64(counts[src]))
			delta += math.Abs(next - opts.Trust[src])
			opts.Trust[src] = next
		}
		if delta < 1e-6 {
			break
		}
	}
}

// TrustMemo caches one trust estimation: its inputs (seed trust, pinned
// set, option knobs, the grouped claims), the prepared per-group state,
// and the resulting trust map.
type TrustMemo struct {
	policy       Policy
	seeds        map[string]float64
	pinned       map[string]bool
	defaultTrust float64
	iterations   int
	tolerance    float64
	keys         []string
	claims       map[string][]Claim
	groups       map[string]*trustGroup
	result       map[string]float64
}

// EstimateTrustWarm is EstimateTrust with a cross-reaction memo. It
// returns options ready for FuseResolved, the memo for the next call,
// and whether the fixpoint was skipped outright (no trust-coupled group
// saw a dirty claim and the seeds were unchanged, so the memoized trust
// is byte-identical to what iterating would produce). prev may be nil —
// the estimation then runs from scratch but still returns a memo.
func EstimateTrustWarm(claims []Claim, opts Options, prev *TrustMemo) (Options, *TrustMemo, bool) {
	opts = opts.normalized()
	if opts.Policy != TruthFinder {
		// No fixpoint exists for this policy; EstimateTrust is a no-op
		// beyond normalization, so there is nothing to warm.
		return opts, &TrustMemo{policy: opts.Policy}, true
	}
	groups, keys := groupClaims(claims)
	seeds := maps.Clone(opts.Trust)
	pinned := maps.Clone(opts.Pinned)
	reusable := prev != nil && prev.policy == TruthFinder &&
		prev.defaultTrust == opts.DefaultTrust &&
		prev.iterations == opts.Iterations &&
		prev.tolerance == opts.NumericTolerance &&
		maps.Equal(prev.pinned, pinned)
	if reusable && maps.Equal(prev.seeds, seeds) && slices.Equal(prev.keys, keys) {
		unchanged := true
		for _, k := range keys {
			if !trustClaimsEqual(prev.claims[k], groups[k]) {
				unchanged = false
				break
			}
		}
		if unchanged {
			opts.Trust = maps.Clone(prev.result)
			return opts, prev, true
		}
	}
	tg := make(map[string]*trustGroup, len(keys))
	for _, k := range keys {
		if reusable {
			if pg, ok := prev.groups[k]; ok && trustClaimsEqual(prev.claims[k], groups[k]) {
				tg[k] = pg
				continue
			}
		}
		tg[k] = prepareTrustGroup(groups[k], opts.NumericTolerance)
	}
	runTrustFixpoint(keys, tg, &opts)
	memo := &TrustMemo{
		policy:       TruthFinder,
		seeds:        seeds,
		pinned:       pinned,
		defaultTrust: opts.DefaultTrust,
		iterations:   opts.Iterations,
		tolerance:    opts.NumericTolerance,
		keys:         keys,
		claims:       groups,
		groups:       tg,
		result:       maps.Clone(opts.Trust),
	}
	return opts, memo, false
}

// trustClaimsEqual compares two claim lists on everything the trust
// fixpoint reads: source and value, in order. AsOf is deliberately
// ignored — freshness never enters trust estimation, so a re-snapshot
// that kept every value does not dirty the group.
func trustClaimsEqual(a, b []Claim) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].SourceID != b[i].SourceID || !a[i].Value.Equal(b[i].Value) {
			return false
		}
	}
	return true
}

// ClaimsEqual reports whether two claim lists are identical in every
// field fusion can read — entity, attribute, source, value and
// observation time. The partial tail uses it to prove a shard's fused
// page can be reused by reference.
func ClaimsEqual(a, b []Claim) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Entity != b[i].Entity || a[i].Attribute != b[i].Attribute ||
			a[i].SourceID != b[i].SourceID || !a[i].Value.Equal(b[i].Value) ||
			!a[i].AsOf.Equal(b[i].AsOf) {
			return false
		}
	}
	return true
}
