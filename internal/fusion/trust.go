package fusion

import (
	"context"
	"maps"
	"math"
	"slices"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/text"
)

// This file is the warm-started, component-partitioned half of trust
// estimation. TruthFinder's fixpoint couples (entity, attribute) groups
// through the per-source trust they share — but only groups that share a
// source, directly or transitively. Sources connected through no chain of
// claim groups exchange no information through sums/counts/opts.Trust, so
// the fixpoint decomposes exactly into trust-coupled connected components
// of the bipartite source↔claim-group incidence: one independent fixpoint
// per component, each with its own delta<1e-6 convergence break, merged in
// sorted component order. Components are pure functions of their member
// groups, so fanning them out across engine workers is byte-identical to
// running them in sequence by construction — the parallel path needs no
// separate equivalence proof beyond the per-component one.
//
// The warm path compounds with this: a TrustMemo caches prepared group
// structure plus each component's converged trust, and EstimateTrustWarm
// short-circuits per component — a reaction that dirties one component's
// claims re-iterates that component only, adopting the others' memoized
// results (which are exact, not approximate: their inputs are unchanged).

// trustGroup is one (entity, attribute) group prepared for the fixpoint:
// everything bucketize would recompute per iteration that does not
// depend on trust.
type trustGroup struct {
	initSources []string // every claim's source, claim order (nulls included)
	sources     []string // non-null claims' sources, claim order
	claimBucket []int    // per non-null claim: bucket it accumulates into
	match       [][]bool // per non-null claim: which buckets it sameValues
	norms       []string // per bucket: normalised representative
}

// prepareTrustGroup mirrors bucketize's bucket formation exactly: claims
// join the first bucket (in creation order) whose representative matches,
// or open a new one. The match matrix is computed against the final
// bucket set — in the fixpoint a claim credits the first *sorted* bucket
// it matches, which can be a bucket created after it.
func prepareTrustGroup(claims []Claim, tol float64) *trustGroup {
	g := &trustGroup{initSources: make([]string, 0, len(claims))}
	// Normalize each claim value once up front: sameValue's string leg
	// normalizes both sides on every comparison, which multiplied out to
	// claims × buckets × 2 normalizations per group. The cached form
	// compares by the identical rules (relative numeric tolerance when
	// both sides are numeric, normalized-string equality otherwise), so
	// bucket formation is unchanged.
	type normVal struct {
		num  bool
		f    float64
		norm string
	}
	nv := make([]normVal, 0, len(claims))
	for _, c := range claims {
		g.initSources = append(g.initSources, c.SourceID)
		if c.Value.IsNull() {
			continue
		}
		g.sources = append(g.sources, c.SourceID)
		v := normVal{num: c.Value.IsNumeric(), norm: text.Normalize(c.Value.String())}
		if v.num {
			v.f = c.Value.FloatVal()
		}
		nv = append(nv, v)
	}
	same := func(a, b normVal) bool {
		if a.num && b.num {
			if a.f == b.f {
				return true
			}
			den := math.Max(math.Abs(a.f), math.Abs(b.f))
			return den > 0 && math.Abs(a.f-b.f)/den <= tol
		}
		return a.norm == b.norm
	}
	var reps []int // bucket representatives, as indices into nv
	g.claimBucket = make([]int, len(nv))
	for ci, v := range nv {
		bi := -1
		for i, ri := range reps {
			if same(nv[ri], v) {
				bi = i
				break
			}
		}
		if bi < 0 {
			bi = len(reps)
			reps = append(reps, ci)
			g.norms = append(g.norms, v.norm)
		}
		g.claimBucket[ci] = bi
	}
	// One flat slab for the match matrix instead of a row per claim.
	slab := make([]bool, len(nv)*len(reps))
	g.match = make([][]bool, len(nv))
	for ci, v := range nv {
		row := slab[ci*len(reps) : (ci+1)*len(reps)]
		for i, ri := range reps {
			row[i] = same(nv[ri], v)
		}
		g.match[ci] = row
	}
	return g
}

// prepareTrustGroups prepares every group for the fixpoint, fanning out
// over engine workers when more than one of each is available. Each
// group's prepared state is a pure function of its own claims, and the
// MapSlice merge is position-deterministic, so the parallel build is
// identical to the sequential loop.
func prepareTrustGroups(groups map[string][]Claim, keys []string, tol float64, workers int) map[string]*trustGroup {
	tg := make(map[string]*trustGroup, len(keys))
	if workers != 1 && len(keys) > 1 {
		prepared, err := engine.MapSlice(context.Background(), workers, keys,
			func(_ context.Context, k string) (*trustGroup, error) {
				return prepareTrustGroup(groups[k], tol), nil
			})
		if err == nil {
			for i, k := range keys {
				tg[k] = prepared[i]
			}
			return tg
		}
		// A recovered panic: fall through so it resurfaces sequentially.
	}
	for _, k := range keys {
		tg[k] = prepareTrustGroup(groups[k], tol)
	}
	return tg
}

// TrustStats reports the component shape of one trust estimation.
type TrustStats struct {
	// Components is the number of trust-coupled connected components in
	// the claim set (sources linked by shared claim groups, directly or
	// transitively).
	Components int
	// Recomputed is how many components actually iterated this round;
	// the remainder adopted their memoized result unchanged. Cold
	// estimations recompute every component.
	Recomputed int
	// Iterations holds each recomputed component's fixpoint iteration
	// count until its delta<1e-6 break (or the Iterations bound), in
	// sorted component order.
	Iterations []int
}

// trustComponent is one trust-coupled connected component prepared for an
// independent fixpoint: its member groups in global sorted key order, its
// distinct sources sorted (the component-local dictionary), each group's
// non-null claim sources dictionary-encoded to local indices, and the
// per-source seed trust and pinned flags snapshotted at build time.
type trustComponent struct {
	key     string        // identity: lexicographically smallest member source
	keys    []string      // member group keys, in global sorted order
	groups  []*trustGroup // parallel to keys
	srcIdx  [][]int32     // parallel to groups: per non-null claim, local source index
	sources []string      // distinct member sources, sorted
	seed    []float64     // per local source: trust at fixpoint start
	pinned  []bool        // per local source: trust is externally fixed
}

// buildTrustComponents unions every group's non-null claim sources and
// materialises one trustComponent per union-find root. Group keys are
// visited in their global sorted order, so each component's keys slice is
// a subsequence of that order and the within-component float accumulation
// sequence matches the old single-loop fixpoint exactly. Groups with only
// null claims join no component: they contributed total==0 and were
// skipped by the old loop too. Components are returned sorted by key.
// Must run after default-trust seeding so seed snapshots are complete.
func buildTrustComponents(keys []string, groups map[string]*trustGroup, opts *Options) []*trustComponent {
	srcID := make(map[string]int)
	var srcs []string
	var parent []int
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, k := range keys {
		first := -1
		for _, s := range groups[k].sources {
			i, ok := srcID[s]
			if !ok {
				i = len(parent)
				srcID[s] = i
				srcs = append(srcs, s)
				parent = append(parent, i)
			}
			if first < 0 {
				first = find(i)
			} else if r := find(i); r != first {
				parent[r] = first
			}
		}
	}
	comps := make(map[int]*trustComponent)
	var order []*trustComponent
	for _, k := range keys {
		g := groups[k]
		if len(g.sources) == 0 {
			continue
		}
		root := find(srcID[g.sources[0]])
		c := comps[root]
		if c == nil {
			c = &trustComponent{}
			comps[root] = c
			order = append(order, c)
		}
		c.keys = append(c.keys, k)
		c.groups = append(c.groups, g)
	}
	for i, s := range srcs {
		c := comps[find(i)]
		c.sources = append(c.sources, s)
	}
	for _, c := range order {
		sort.Strings(c.sources)
		c.key = c.sources[0]
		local := make(map[string]int32, len(c.sources))
		for i, s := range c.sources {
			local[s] = int32(i)
		}
		c.srcIdx = make([][]int32, len(c.groups))
		for gi, g := range c.groups {
			idx := make([]int32, len(g.sources))
			for ci, s := range g.sources {
				idx[ci] = local[s]
			}
			c.srcIdx[gi] = idx
		}
		c.seed = make([]float64, len(c.sources))
		c.pinned = make([]bool, len(c.sources))
		for i, s := range c.sources {
			c.seed[i] = opts.Trust[s]
			c.pinned[i] = opts.Pinned[s]
		}
	}
	slices.SortFunc(order, func(a, b *trustComponent) int {
		return strings.Compare(a.key, b.key)
	})
	return order
}

// componentResult is one component's converged trust, parallel to its
// sorted sources, plus the iteration count it took.
type componentResult struct {
	trust []float64
	iters int
}

// runComponentFixpoint iterates one component to convergence. Within the
// component the float sequence is identical to the old global loop:
// groups in sorted key order, claims in input order, and the damped
// update over sources in sorted order — which is exactly local dictionary
// index order, so the per-iteration path is entirely slice-indexed with
// no map lookups and no string comparisons. The delta<1e-6 break is
// per-component: a converged component stops iterating even while a
// larger one elsewhere keeps going, which the old global-delta loop could
// not do. Pure function of its inputs — safe to run components on any
// worker in any order.
func runComponentFixpoint(c *trustComponent, defaultTrust float64, maxIters int) componentResult {
	cur := slices.Clone(c.seed)
	maxBuckets := 0
	for _, g := range c.groups {
		if n := len(g.norms); n > maxBuckets {
			maxBuckets = n
		}
	}
	wbuf := make([]float64, maxBuckets)
	obuf := make([]int, maxBuckets)
	sums := make([]float64, len(c.sources))
	counts := make([]int, len(c.sources))
	res := componentResult{trust: cur}
	for iter := 0; iter < maxIters; iter++ {
		res.iters++
		clear(sums)
		clear(counts)
		for gi, g := range c.groups {
			w := wbuf[:len(g.norms)]
			for i := range w {
				w[i] = 0
			}
			idx := c.srcIdx[gi]
			for ci, si := range idx {
				// TrustOf's rule over the dictionary: a positive current
				// value wins, anything else falls back to the default.
				if t := cur[si]; t > 0 {
					w[g.claimBucket[ci]] += t
				} else {
					w[g.claimBucket[ci]] += defaultTrust
				}
			}
			// Same comparator as bucketize's final sort, applied to bucket
			// indices: identical comparison outcomes give the identical
			// permutation, so the weight-sorted traversal below credits the
			// same bucket per claim.
			order := obuf[:len(w)]
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(i, j int) bool {
				if w[order[i]] != w[order[j]] {
					return w[order[i]] > w[order[j]]
				}
				return g.norms[order[i]] < g.norms[order[j]]
			})
			total := 0.0
			for _, bi := range order {
				total += w[bi]
			}
			if total == 0 {
				continue
			}
			for ci, si := range idx {
				for _, bi := range order {
					if g.match[ci][bi] {
						sums[si] += w[bi] / total
						counts[si]++
						break
					}
				}
			}
		}
		delta := 0.0
		for i := range cur {
			if counts[i] == 0 || c.pinned[i] {
				continue
			}
			next := 0.5*cur[i] + 0.5*(sums[i]/float64(counts[i]))
			delta += math.Abs(next - cur[i])
			cur[i] = next
		}
		if delta < 1e-6 {
			break
		}
	}
	return res
}

// runComponents runs every component's fixpoint, fanning out across
// engine workers when more than one of each is available. MapSlice's
// deterministic merge (out[i] ↔ comps[i]) plus runComponentFixpoint's
// purity make any worker count byte-identical to the sequential loop.
func runComponents(comps []*trustComponent, opts *Options, workers int) []componentResult {
	if workers == 1 || len(comps) <= 1 {
		out := make([]componentResult, len(comps))
		for i, c := range comps {
			out[i] = runComponentFixpoint(c, opts.DefaultTrust, opts.Iterations)
		}
		return out
	}
	out, err := engine.MapSlice(context.Background(), workers, comps,
		func(_ context.Context, c *trustComponent) (componentResult, error) {
			return runComponentFixpoint(c, opts.DefaultTrust, opts.Iterations), nil
		})
	if err != nil {
		// The task fn never errors, so this is a recovered panic — rerun
		// sequentially so it surfaces from the caller's own stack.
		out = make([]componentResult, len(comps))
		for i, c := range comps {
			out[i] = runComponentFixpoint(c, opts.DefaultTrust, opts.Iterations)
		}
	}
	return out
}

// seedTrustDefaults gives every source that appears in any claim (nulls
// included) a trust entry before the fixpoint starts, exactly as the old
// global loop did.
func seedTrustDefaults(keys []string, groups map[string]*trustGroup, opts *Options) {
	for _, k := range keys {
		for _, src := range groups[k].initSources {
			if _, ok := opts.Trust[src]; !ok {
				opts.Trust[src] = opts.DefaultTrust
			}
		}
	}
}

// runTrustFixpoint is estimateTrust over prepared groups, partitioned by
// trust-coupled component: defaults are seeded, components built, each
// component iterated to its own convergence (on workers goroutines when
// workers > 1 — byte-identical by construction), and the per-component
// trust written back in sorted component order.
func runTrustFixpoint(keys []string, groups map[string]*trustGroup, opts *Options, workers int) TrustStats {
	seedTrustDefaults(keys, groups, opts)
	comps := buildTrustComponents(keys, groups, opts)
	results := runComponents(comps, opts, workers)
	st := TrustStats{Components: len(comps), Recomputed: len(comps)}
	st.Iterations = make([]int, len(comps))
	for ci, c := range comps {
		for i, src := range c.sources {
			opts.Trust[src] = results[ci].trust[i]
		}
		st.Iterations[ci] = results[ci].iters
	}
	return st
}

// memoComponent caches one component's identity (member group keys and
// sorted sources) and its converged trust, so a later estimation can
// adopt the result without iterating when the component's inputs are
// provably unchanged.
type memoComponent struct {
	keys    []string  // member group keys, global sorted order
	sources []string  // member sources, sorted
	result  []float64 // converged trust, parallel to sources
}

// TrustMemo caches one trust estimation: its inputs (seed trust, pinned
// set, option knobs, the grouped claims), the prepared per-group state,
// the per-component converged trust, and the resulting trust map.
type TrustMemo struct {
	policy       Policy
	seeds        map[string]float64
	pinned       map[string]bool
	defaultTrust float64
	iterations   int
	tolerance    float64
	keys         []string
	claims       map[string][]Claim
	groups       map[string]*trustGroup
	components   map[string]*memoComponent
	result       map[string]float64
}

// EstimateTrustWarm is EstimateTrust with a cross-reaction memo. It
// returns options ready for FuseResolved, the memo for the next call,
// and whether the fixpoint was skipped outright (no trust-coupled group
// saw a dirty claim and the seeds were unchanged, so the memoized trust
// is byte-identical to what iterating would produce). prev may be nil —
// the estimation then runs from scratch but still returns a memo.
func EstimateTrustWarm(claims []Claim, opts Options, prev *TrustMemo) (Options, *TrustMemo, bool) {
	out, memo, skipped, _ := EstimateTrustWarmParallel(claims, opts, prev, 1)
	return out, memo, skipped
}

// EstimateTrustWarmParallel is EstimateTrustWarm with the component
// fixpoints fanned out over workers goroutines, plus the component-level
// short-circuit: a component whose member groups, sources, seeds and
// claims all match the memo adopts its memoized trust without iterating;
// only dirty components recompute. The returned TrustStats reports how
// many components the claim set has and how many actually re-iterated.
// Byte-identical to the sequential cold path at any worker count.
func EstimateTrustWarmParallel(claims []Claim, opts Options, prev *TrustMemo, workers int) (Options, *TrustMemo, bool, TrustStats) {
	opts = opts.normalized()
	if opts.Policy != TruthFinder {
		// No fixpoint exists for this policy; EstimateTrust is a no-op
		// beyond normalization, so there is nothing to warm.
		return opts, &TrustMemo{policy: opts.Policy}, true, TrustStats{}
	}
	groups, keys := groupClaims(claims)
	seeds := maps.Clone(opts.Trust)
	pinned := maps.Clone(opts.Pinned)
	reusable := prev != nil && prev.policy == TruthFinder &&
		prev.defaultTrust == opts.DefaultTrust &&
		prev.iterations == opts.Iterations &&
		prev.tolerance == opts.NumericTolerance &&
		maps.Equal(prev.pinned, pinned)
	if reusable && maps.Equal(prev.seeds, seeds) && slices.Equal(prev.keys, keys) {
		unchanged := true
		for _, k := range keys {
			if !trustClaimsEqual(prev.claims[k], groups[k]) {
				unchanged = false
				break
			}
		}
		if unchanged {
			opts.Trust = maps.Clone(prev.result)
			return opts, prev, true, TrustStats{Components: len(prev.components)}
		}
	}
	tg := make(map[string]*trustGroup, len(keys))
	fresh := keys
	if reusable {
		fresh = fresh[:0:0]
		for _, k := range keys {
			if pg, ok := prev.groups[k]; ok && trustClaimsEqual(prev.claims[k], groups[k]) {
				tg[k] = pg
				continue
			}
			fresh = append(fresh, k)
		}
	}
	for k, g := range prepareTrustGroups(groups, fresh, opts.NumericTolerance, workers) {
		tg[k] = g
	}
	seedTrustDefaults(keys, tg, &opts)
	comps := buildTrustComponents(keys, tg, &opts)
	memoComps := make(map[string]*memoComponent, len(comps))
	var dirty []*trustComponent
	for _, c := range comps {
		if mc := memoizedComponent(prev, c, groups, reusable); mc != nil {
			for i, src := range c.sources {
				opts.Trust[src] = mc.result[i]
			}
			memoComps[c.key] = mc
			continue
		}
		dirty = append(dirty, c)
	}
	results := runComponents(dirty, &opts, workers)
	st := TrustStats{Components: len(comps), Recomputed: len(dirty)}
	st.Iterations = make([]int, len(dirty))
	for di, c := range dirty {
		for i, src := range c.sources {
			opts.Trust[src] = results[di].trust[i]
		}
		memoComps[c.key] = &memoComponent{keys: c.keys, sources: c.sources, result: results[di].trust}
		st.Iterations[di] = results[di].iters
	}
	memo := &TrustMemo{
		policy:       TruthFinder,
		seeds:        seeds,
		pinned:       pinned,
		defaultTrust: opts.DefaultTrust,
		iterations:   opts.Iterations,
		tolerance:    opts.NumericTolerance,
		keys:         keys,
		claims:       groups,
		groups:       tg,
		components:   memoComps,
		result:       maps.Clone(opts.Trust),
	}
	return opts, memo, false, st
}

// memoizedComponent decides whether a freshly built component may adopt
// its previous converged trust. The proof obligation: the fixpoint is a
// deterministic function of (member groups' prepared state, seed trust,
// pinned flags, option knobs). The knobs and pinned set were checked
// globally (reusable); here the component must have the identical member
// key list and source dictionary, every member source the identical
// starting trust (c.seed snapshots this round's; the previous round
// started from prev.seeds or the default), and every member group
// value-identical claims. All equal ⇒ re-iterating would replay the
// identical float sequence, so adopting the stored result is exact.
func memoizedComponent(prev *TrustMemo, c *trustComponent, groups map[string][]Claim, reusable bool) *memoComponent {
	if !reusable {
		return nil
	}
	mc, ok := prev.components[c.key]
	if !ok || !slices.Equal(mc.keys, c.keys) || !slices.Equal(mc.sources, c.sources) {
		return nil
	}
	for i, src := range c.sources {
		prevSeed, ok := prev.seeds[src]
		if !ok {
			prevSeed = prev.defaultTrust
		}
		if c.seed[i] != prevSeed {
			return nil
		}
	}
	for _, k := range c.keys {
		if !trustClaimsEqual(prev.claims[k], groups[k]) {
			return nil
		}
	}
	return mc
}

// trustClaimsEqual compares two claim lists on everything the trust
// fixpoint reads: source and value, in order. AsOf is deliberately
// ignored — freshness never enters trust estimation, so a re-snapshot
// that kept every value does not dirty the group.
func trustClaimsEqual(a, b []Claim) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].SourceID != b[i].SourceID || !a[i].Value.Equal(b[i].Value) {
			return false
		}
	}
	return true
}

// ClaimsEqual reports whether two claim lists are identical in every
// field fusion can read — entity, attribute, source, value and
// observation time. The partial tail uses it to prove a shard's fused
// page can be reused by reference.
func ClaimsEqual(a, b []Claim) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Entity != b[i].Entity || a[i].Attribute != b[i].Attribute ||
			a[i].SourceID != b[i].SourceID || !a[i].Value.Equal(b[i].Value) ||
			!a[i].AsOf.Equal(b[i].AsOf) {
			return false
		}
	}
	return true
}
