package fusion

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
)

// componentTestClaims builds one trust-coupled component: its own sources
// (prefixed so components stay disjoint) conflicting over its own
// entities. Values overlap across sources so the fixpoint has something
// to iterate on.
func componentTestClaims(prefix string, sources, entities int) []Claim {
	var claims []Claim
	for e := 0; e < entities; e++ {
		for s := 0; s < sources; s++ {
			claims = append(claims, Claim{
				Entity:    fmt.Sprintf("%s-e%d", prefix, e),
				Attribute: "price",
				Value:     dataset.Float(float64(100 + 10*((s+e)%3))),
				SourceID:  fmt.Sprintf("%s-s%d", prefix, s),
				AsOf:      time.Unix(int64(e), 0),
			})
		}
	}
	return claims
}

// TestTrustComponentPartition pins the component decomposition itself:
// two disjoint source sets never couple (each converges exactly as it
// would alone), and a single shared claim group glues them into one
// component.
func TestTrustComponentPartition(t *testing.T) {
	a := componentTestClaims("a", 3, 4)
	b := componentTestClaims("b", 4, 3)
	both := append(append([]Claim(nil), a...), b...)

	_, st := EstimateTrustParallel(both, DefaultOptions(TruthFinder), 2)
	if st.Components != 2 || st.Recomputed != 2 {
		t.Fatalf("disjoint source sets: components=%d recomputed=%d, want 2/2", st.Components, st.Recomputed)
	}

	// Isolation: a component's trust must be identical whether or not the
	// other component is present in the claim set — they provably exchange
	// no information, and the per-component convergence break makes that
	// independence exact.
	alone := EstimateTrust(a, DefaultOptions(TruthFinder))
	joint := EstimateTrust(both, DefaultOptions(TruthFinder))
	for src, want := range alone.Trust {
		if got := joint.Trust[src]; got != want {
			t.Fatalf("trust[%s] = %v with b present, %v alone — disjoint components coupled", src, got, want)
		}
	}

	// A claim group where one source from each set claims the same
	// (entity, attribute) glues the two sets into one component.
	glue := []Claim{
		{Entity: "shared-e", Attribute: "price", Value: dataset.Float(100), SourceID: "a-s0"},
		{Entity: "shared-e", Attribute: "price", Value: dataset.Float(110), SourceID: "b-s0"},
	}
	glued := append(append([]Claim(nil), both...), glue...)
	_, st = EstimateTrustParallel(glued, DefaultOptions(TruthFinder), 2)
	if st.Components != 1 {
		t.Fatalf("shared claim group: components=%d, want 1", st.Components)
	}
}

// TestParallelTrustMatchesSequential pins tentpole layer (b): the
// component fan-out must be byte-identical to the sequential
// per-component reference at every worker count, cold and warm, over
// randomized claim sets.
func TestParallelTrustMatchesSequential(t *testing.T) {
	workerCounts := []int{1, 2, 4, 8}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		claims := randomTrustClaims(rng, 10+rng.Intn(120))
		// Append disjoint component blocks so the fan-out has real
		// partitions to distribute, not just one big component.
		claims = append(claims, componentTestClaims(fmt.Sprintf("p%d", seed%3), 3, 2)...)
		claims = append(claims, componentTestClaims("q", 2, 2)...)

		ref := EstimateTrust(claims, randomTrustOpts(rand.New(rand.NewSource(seed))))
		for _, wk := range workerCounts {
			got, st := EstimateTrustParallel(claims, randomTrustOpts(rand.New(rand.NewSource(seed))), wk)
			requireSameTrust(t, ref.Trust, got.Trust, fmt.Sprintf("seed %d cold workers=%d", seed, wk))
			if st.Components < 3 {
				t.Fatalf("seed %d: components=%d, want >= 3 (claim set was built with disjoint blocks)", seed, st.Components)
			}
			if st.Recomputed != st.Components || len(st.Iterations) != st.Components {
				t.Fatalf("seed %d: cold stats %+v inconsistent", seed, st)
			}

			warm, _, skipped, wst := EstimateTrustWarmParallel(claims, randomTrustOpts(rand.New(rand.NewSource(seed))), nil, wk)
			if skipped {
				t.Fatalf("seed %d: fresh warm estimation reported a short-circuit", seed)
			}
			requireSameTrust(t, ref.Trust, warm.Trust, fmt.Sprintf("seed %d warm workers=%d", seed, wk))
			if wst.Components != st.Components {
				t.Fatalf("seed %d: warm saw %d components, cold saw %d", seed, wst.Components, st.Components)
			}
		}
	}
}

// TestStreamingTrustWarmComponentShortCircuit pins the per-component warm
// path: churning one component's claims re-iterates that component only —
// the others adopt their memoized trust — and the result stays float-exact
// with a cold estimation over the churned claim set.
func TestStreamingTrustWarmComponentShortCircuit(t *testing.T) {
	var claims []Claim
	for c := 0; c < 5; c++ {
		claims = append(claims, componentTestClaims(fmt.Sprintf("c%d", c), 3, 4)...)
	}
	_, memo, _, st := EstimateTrustWarmParallel(claims, DefaultOptions(TruthFinder), nil, 2)
	if st.Components != 5 || st.Recomputed != 5 {
		t.Fatalf("cold: components=%d recomputed=%d, want 5/5", st.Components, st.Recomputed)
	}

	// Churn every claim of one source in component c2: values move, the
	// component's group membership stays the same.
	churned := append([]Claim(nil), claims...)
	for i := range churned {
		if churned[i].SourceID == "c2-s1" {
			churned[i].Value = dataset.Float(999)
		}
	}
	cold := EstimateTrust(churned, DefaultOptions(TruthFinder))
	warm, memo2, skipped, st2 := EstimateTrustWarmParallel(churned, DefaultOptions(TruthFinder), memo, 2)
	if skipped {
		t.Fatal("churned claims must not short-circuit outright")
	}
	if st2.Components != 5 || st2.Recomputed != 1 {
		t.Fatalf("1-source churn: components=%d recomputed=%d, want 5/1", st2.Components, st2.Recomputed)
	}
	requireSameTrust(t, cold.Trust, warm.Trust, "component short-circuit")

	// The full short-circuit still works on top of the component memo and
	// reports zero recomputed components.
	again, _, skipped, st3 := EstimateTrustWarmParallel(churned, DefaultOptions(TruthFinder), memo2, 2)
	if !skipped {
		t.Fatal("unchanged inputs did not short-circuit")
	}
	if st3.Components != 5 || st3.Recomputed != 0 {
		t.Fatalf("short-circuit: components=%d recomputed=%d, want 5/0", st3.Components, st3.Recomputed)
	}
	requireSameTrust(t, cold.Trust, again.Trust, "full short-circuit")
}

// TestTrustComponentSeedChangeScopesRerun pins that a changed pinned seed
// dirties only the components the seeded source belongs to.
func TestTrustComponentSeedChangeScopesRerun(t *testing.T) {
	var claims []Claim
	for c := 0; c < 4; c++ {
		claims = append(claims, componentTestClaims(fmt.Sprintf("k%d", c), 3, 3)...)
	}
	_, memo, _, _ := EstimateTrustWarmParallel(claims, DefaultOptions(TruthFinder), nil, 1)

	seeded := DefaultOptions(TruthFinder)
	seeded.Trust["k1-s0"] = 0.37
	seeded.Pinned = map[string]bool{}
	cold := EstimateTrust(claims, cloneOpts(seeded))
	warm, _, skipped, st := EstimateTrustWarmParallel(claims, cloneOpts(seeded), memo, 1)
	if skipped {
		t.Fatal("changed seed must defeat the global short-circuit")
	}
	if st.Components != 4 || st.Recomputed != 1 {
		t.Fatalf("seed change: components=%d recomputed=%d, want 4/1", st.Components, st.Recomputed)
	}
	requireSameTrust(t, cold.Trust, warm.Trust, "scoped seed change")
}
