// Package fusion resolves conflicting values from multiple sources into a
// single wrangled record per entity. It implements the fusion spectrum the
// paper positions against KBC (§3.1): frequency-based voting (the
// "instance-based redundancy" assumption KBC leans on), source-trust
// weighted voting with iterative trust estimation (truth discovery in the
// style of Yin et al. [36]), and freshness-aware fusion for "highly
// transient information (e.g., pricing)" where redundancy actively
// misleads — stale values are frequent but wrong.
package fusion

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/text"
)

// Claim is one source's assertion of an attribute value for an entity.
type Claim struct {
	Entity    string // entity/cluster id
	Attribute string
	Value     dataset.Value
	SourceID  string
	AsOf      time.Time // when the source observed the value (freshness)
}

// Policy selects the fusion strategy.
type Policy int

// Fusion policies.
const (
	// MajorityVote picks the most frequent value (KBC-style redundancy).
	MajorityVote Policy = iota
	// WeightedVote weights each vote by the source's trust score.
	WeightedVote
	// TruthFinder iterates between value confidence and source trust.
	TruthFinder
	// FreshnessWeighted decays votes by age before weighting by trust —
	// the right policy for transient attributes such as prices.
	FreshnessWeighted
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case MajorityVote:
		return "majority"
	case WeightedVote:
		return "weighted"
	case TruthFinder:
		return "truthfinder"
	case FreshnessWeighted:
		return "freshness"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures a fusion run.
type Options struct {
	Policy Policy
	// Trust maps source id -> prior trust in (0,1]. Missing sources get
	// DefaultTrust. Updated in place by TruthFinder iterations.
	Trust        map[string]float64
	// Pinned marks sources whose trust is externally established (e.g.
	// derived from user feedback) and must not be overwritten by
	// TruthFinder's iterative estimation.
	Pinned       map[string]bool
	DefaultTrust float64
	// Now anchors freshness decay; claims older than Now by HalfLife lose
	// half their vote.
	Now      time.Time
	HalfLife time.Duration
	// Iterations bounds TruthFinder fixpoint iterations (default 10).
	Iterations int
	// NumericTolerance groups numeric claims whose relative difference is
	// below this into one value bucket (default 0.01).
	NumericTolerance float64
}

// DefaultOptions returns options for the given policy with moderate
// settings.
func DefaultOptions(p Policy) Options {
	return Options{
		Policy:           p,
		Trust:            map[string]float64{},
		DefaultTrust:     0.8,
		HalfLife:         24 * time.Hour,
		Iterations:       10,
		NumericTolerance: 0.01,
	}
}

// Result is the fused value for one (entity, attribute) with its
// confidence and the support that won.
type Result struct {
	Entity     string
	Attribute  string
	Value      dataset.Value
	Confidence float64 // winning bucket's share of total vote mass
	Support    int     // number of claims in the winning bucket
	Conflict   bool    // more than one distinct value bucket was claimed
}

// normalized fills option defaults so every entry point applies the same
// policy regardless of which half of the fuse pipeline it drives.
func (o Options) normalized() Options {
	if o.DefaultTrust <= 0 {
		o.DefaultTrust = 0.8
	}
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
	if o.NumericTolerance <= 0 {
		o.NumericTolerance = 0.01
	}
	if o.Trust == nil {
		o.Trust = map[string]float64{}
	}
	return o
}

// groupClaims partitions claims by (entity, attribute), preserving claim
// order within each group, and returns the sorted group keys. Group order
// and in-group claim order are both part of fusion's determinism
// contract: bucket representatives and float accumulation follow them.
func groupClaims(claims []Claim) (map[string][]Claim, []string) {
	// Key each claim once, sort claim indices by (key, input position),
	// and carve the groups out of one slab: appending claims to
	// map-valued slices re-copied every growing group and was the
	// largest allocator in the refresh tail. The index sort is stable by
	// construction (ties break on position), so each group holds its
	// claims in input order, and the distinct keys fall out sorted —
	// exactly what the append-and-sort version produced.
	ckeys := make([]string, len(claims))
	for i, c := range claims {
		ckeys[i] = c.Entity + "\x1f" + c.Attribute
	}
	idx := make([]int, len(claims))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if c := strings.Compare(ckeys[a], ckeys[b]); c != 0 {
			return c
		}
		return a - b
	})
	slab := make([]Claim, len(claims))
	groups := make(map[string][]Claim, len(claims)/4+1)
	var keys []string
	start := 0
	for i, id := range idx {
		slab[i] = claims[id]
		if i+1 == len(idx) || ckeys[idx[i+1]] != ckeys[id] {
			k := ckeys[id]
			groups[k] = slab[start : i+1 : i+1]
			keys = append(keys, k)
			start = i + 1
		}
	}
	return groups, keys
}

// Fuse resolves all claims into one result per (entity, attribute).
// Results are sorted by entity then attribute for determinism.
func Fuse(claims []Claim, opts Options) []Result {
	out, _, _ := FuseParallel(claims, opts, 1)
	return out
}

// FuseParallel is Fuse with the TruthFinder fixpoint fanned out over
// workers goroutines (per trust-coupled component — byte-identical to
// Fuse at any worker count), returning the resolved options and the
// component stats alongside the results. Claims are grouped once and
// shared between trust estimation and per-group fusion.
func FuseParallel(claims []Claim, opts Options, workers int) ([]Result, Options, TrustStats) {
	opts = opts.normalized()
	groups, keys := groupClaims(claims)
	var st TrustStats
	if opts.Policy == TruthFinder {
		st = estimateTrust(groups, keys, &opts, workers)
	}
	out := make([]Result, 0, len(keys))
	for _, k := range keys {
		out = append(out, fuseGroup(groups[k], opts))
	}
	return out, opts, st
}

// EstimateTrust runs the global half of fusion — the TruthFinder trust
// fixpoint over the full claim set — and returns options with the
// estimated per-source trust filled in (for other policies it only fills
// defaults). The returned options are ready for FuseResolved over any
// partition of the same claims: trust estimation is the only stage of
// fusion that couples (entity, attribute) groups to each other, so once
// it has run, disjoint claim subsets fuse independently.
func EstimateTrust(claims []Claim, opts Options) Options {
	opts, _ = EstimateTrustParallel(claims, opts, 1)
	return opts
}

// EstimateTrustParallel is EstimateTrust with the per-component fixpoints
// fanned out over workers goroutines. The component partition makes the
// fan-out exact rather than approximate — see runTrustFixpoint — so the
// result is byte-identical to EstimateTrust at any worker count. The
// returned TrustStats reports the component shape of the estimation.
func EstimateTrustParallel(claims []Claim, opts Options, workers int) (Options, TrustStats) {
	opts = opts.normalized()
	var st TrustStats
	if opts.Policy == TruthFinder {
		groups, keys := groupClaims(claims)
		st = estimateTrust(groups, keys, &opts, workers)
	}
	return opts, st
}

// FuseResolved fuses claims taking source trust as given: no fixpoint
// runs, every (entity, attribute) group is fused independently under
// opts.Trust. Fusing a partition of a claim set shard by shard and
// merging (MergeResults) yields byte-identical results to one Fuse call
// over the whole set with the same trust — the property the sharded
// integration tail is built on. FuseResolved never mutates opts.Trust,
// so concurrent calls may share one options value.
func FuseResolved(claims []Claim, opts Options) []Result {
	opts = opts.normalized()
	groups, keys := groupClaims(claims)
	out := make([]Result, 0, len(keys))
	for _, k := range keys {
		out = append(out, fuseGroup(groups[k], opts))
	}
	return out
}

// MergeResults merges per-shard result slices (each sorted, with disjoint
// (entity, attribute) sets) into the single sorted order Fuse produces.
// The merge is stable under any permutation of parts — shard or provider
// order cannot leak into the output.
func MergeResults(parts ...[]Result) []Result {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]Result, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	// Sorting by the same "\x1f"-joined key Fuse sorts group keys by keeps
	// the merged order byte-identical to an unsharded fuse (a plain
	// entity-then-attribute tuple compare is not equivalent in general).
	// Keys are built once per result, not per comparison.
	keys := make([]string, len(out))
	for i, r := range out {
		keys[i] = r.Entity + "\x1f" + r.Attribute
	}
	sort.Sort(&keyedResults{keys: keys, results: out})
	return out
}

// keyedResults sorts results and their precomputed keys together.
type keyedResults struct {
	keys    []string
	results []Result
}

func (k *keyedResults) Len() int           { return len(k.keys) }
func (k *keyedResults) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyedResults) Swap(i, j int) {
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
	k.results[i], k.results[j] = k.results[j], k.results[i]
}

// bucket groups equivalent claimed values.
type bucket struct {
	rep    dataset.Value
	norm   string
	weight float64
	count  int
}

func fuseGroup(claims []Claim, opts Options) Result {
	res := Result{Entity: claims[0].Entity, Attribute: claims[0].Attribute}
	claims = reconcileUnits(claims)
	buckets := bucketize(claims, opts, func(c Claim) float64 { return voteWeight(c, opts) })
	if len(buckets) == 0 {
		res.Value = dataset.Null()
		return res
	}
	total := 0.0
	for _, b := range buckets {
		total += b.weight
	}
	best := buckets[0]
	res.Value = best.rep
	res.Support = best.count
	res.Conflict = len(buckets) > 1
	if total > 0 {
		res.Confidence = best.weight / total
	}
	return res
}

// reconcileUnits normalises numeric claims that sit ~100× above the
// group's median — sources reporting cents instead of dollars. The unit
// error is syntactic, not a genuine conflict, so it is repaired before
// voting rather than outvoted.
func reconcileUnits(claims []Claim) []Claim {
	var nums []float64
	for _, c := range claims {
		if c.Value.IsNumeric() {
			nums = append(nums, c.Value.FloatVal())
		}
	}
	if len(nums) < 2 {
		return claims
	}
	sort.Float64s(nums)
	median := nums[len(nums)/2]
	if median <= 0 {
		return claims
	}
	out := make([]Claim, len(claims))
	copy(out, claims)
	for i, c := range out {
		if !c.Value.IsNumeric() {
			continue
		}
		ratio := c.Value.FloatVal() / median
		if ratio > 95 && ratio < 105 {
			out[i].Value = dataset.Float(c.Value.FloatVal() / 100)
		}
	}
	return out
}

// bucketize groups claims into equivalent-value buckets, weighting each
// claim by weightFn, and returns buckets sorted by descending weight (ties
// by normalised value for determinism). Null values are ignored.
func bucketize(claims []Claim, opts Options, weightFn func(Claim) float64) []bucket {
	var buckets []bucket
	for _, c := range claims {
		if c.Value.IsNull() {
			continue
		}
		w := weightFn(c)
		placed := false
		for i := range buckets {
			if sameValue(buckets[i].rep, c.Value, opts.NumericTolerance) {
				buckets[i].weight += w
				buckets[i].count++
				placed = true
				break
			}
		}
		if !placed {
			buckets = append(buckets, bucket{rep: c.Value, norm: text.Normalize(c.Value.String()), weight: w, count: 1})
		}
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].weight != buckets[j].weight {
			return buckets[i].weight > buckets[j].weight
		}
		return buckets[i].norm < buckets[j].norm
	})
	return buckets
}

func sameValue(a, b dataset.Value, tol float64) bool {
	if a.IsNumeric() && b.IsNumeric() {
		x, y := a.FloatVal(), b.FloatVal()
		if x == y {
			return true
		}
		den := math.Max(math.Abs(x), math.Abs(y))
		return den > 0 && math.Abs(x-y)/den <= tol
	}
	return text.Normalize(a.String()) == text.Normalize(b.String())
}

func voteWeight(c Claim, opts Options) float64 {
	switch opts.Policy {
	case MajorityVote:
		return 1
	case WeightedVote, TruthFinder:
		return trustOf(c.SourceID, opts)
	case FreshnessWeighted:
		w := trustOf(c.SourceID, opts)
		if !opts.Now.IsZero() && !c.AsOf.IsZero() && opts.HalfLife > 0 {
			age := opts.Now.Sub(c.AsOf)
			if age > 0 {
				w *= math.Pow(0.5, float64(age)/float64(opts.HalfLife))
			}
		}
		return w
	default:
		return 1
	}
}

func trustOf(sourceID string, opts Options) float64 {
	return TrustOf(opts.Trust, opts.DefaultTrust, sourceID)
}

// TrustOf is the one trust lookup rule every fusion stage applies: a
// positive entry wins, anything else falls back to the default.
// Exported because the streaming planner's page-reuse proof must apply
// the exact same rule when comparing effective trust across rounds.
func TrustOf(trust map[string]float64, defaultTrust float64, sourceID string) float64 {
	if t, ok := trust[sourceID]; ok && t > 0 {
		return t
	}
	return defaultTrust
}

// estimateTrust runs the TruthFinder-style fixpoint: value confidence is
// the trust-weighted vote share; source trust is the mean confidence of
// the values the source claims. Trust is written back into opts.Trust.
// Groups are visited in sorted key order — float accumulation is not
// associative, so iterating the map directly would make trust (and with
// it confidences and tie-broken winners) vary run to run.
// Bucket formation is iteration-invariant (membership depends only on
// values, not weights), so each group is prepared once and the fixpoint
// runs over the prepared state, partitioned by trust-coupled component
// with a per-component convergence break — the reference the
// float-exactness property tests in trust_test are pinned against.
// Preparation is per-group pure (each group's buckets depend only on its
// own claims), so with workers it fans out through the engine alongside
// the component fixpoints — profiles put prepare ahead of the iteration
// loop on cold estimations, so parallelising only the fixpoint would
// leave the larger half of the stage sequential.
func estimateTrust(groups map[string][]Claim, keys []string, opts *Options, workers int) TrustStats {
	tg := prepareTrustGroups(groups, keys, opts.NumericTolerance, workers)
	return runTrustFixpoint(keys, tg, opts, workers)
}

// Accuracy scores fused results against a truth lookup: the fraction of
// results whose value agrees with truth(entity, attribute). Entities or
// attributes with no truth entry are skipped; ok reports whether anything
// was scored.
func Accuracy(results []Result, truth func(entity, attribute string) (dataset.Value, bool)) (float64, bool) {
	agree, total := 0, 0
	for _, r := range results {
		want, has := truth(r.Entity, r.Attribute)
		if !has {
			continue
		}
		total++
		if sameValue(r.Value, want, 0.01) {
			agree++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(agree) / float64(total), true
}
