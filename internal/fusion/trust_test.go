package fusion

import (
	"fmt"
	"maps"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
)

// randomTrustClaims draws a claim set shaped to stress the trust fixpoint:
// several entities and attributes, overlapping numeric values near the
// bucketing tolerance (so a claim can match more than one bucket and the
// weight-sorted first-match ordering matters), string values with
// normalisation collisions, and occasional nulls.
func randomTrustClaims(rng *rand.Rand, n int) []Claim {
	var claims []Claim
	for i := 0; i < n; i++ {
		entity := fmt.Sprintf("e%d", rng.Intn(5))
		attr := []string{"price", "name", "brand"}[rng.Intn(3)]
		src := fmt.Sprintf("s%d", rng.Intn(6))
		var v dataset.Value
		switch rng.Intn(6) {
		case 0:
			v = dataset.Null()
		case 1, 2:
			// Cluster around a base with sub- and super-tolerance jitter.
			base := 100 * float64(1+rng.Intn(3))
			v = dataset.Float(base * (1 + (rng.Float64()-0.5)*0.04))
		case 3:
			v = dataset.String([]string{"Acme", "acme ", "Globex", "Umbra"}[rng.Intn(4)])
		default:
			v = dataset.Float(float64(rng.Intn(5)) * 10)
		}
		claims = append(claims, Claim{
			Entity: entity, Attribute: attr, Value: v, SourceID: src,
			AsOf: time.Unix(int64(rng.Intn(1000)), 0),
		})
	}
	return claims
}

func randomTrustOpts(rng *rand.Rand) Options {
	opts := DefaultOptions(TruthFinder)
	opts.Pinned = map[string]bool{}
	for s := 0; s < 6; s++ {
		if rng.Intn(3) == 0 {
			id := fmt.Sprintf("s%d", s)
			opts.Trust[id] = 0.2 + 0.6*rng.Float64()
			opts.Pinned[id] = true
		}
	}
	return opts
}

func requireSameTrust(t *testing.T, want, got map[string]float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d trust entries, want %d", label, len(got), len(want))
	}
	for src, w := range want {
		if g, ok := got[src]; !ok || g != w {
			t.Fatalf("%s: trust[%s] = %v, want %v (must be float-exact)", label, src, g, w)
		}
	}
}

// TestStreamingTrustWarmMatchesEstimate pins the float-exactness contract
// of the warm path: from scratch, after a delta (groups partially
// reused), and on the full short-circuit, EstimateTrustWarm must
// reproduce EstimateTrust's trust map bit for bit.
func TestStreamingTrustWarmMatchesEstimate(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		claims := randomTrustClaims(rng, 10+rng.Intn(120))

		cold := EstimateTrust(claims, randomTrustOpts(rand.New(rand.NewSource(seed))))
		warm, memo, skipped := EstimateTrustWarm(claims, randomTrustOpts(rand.New(rand.NewSource(seed))), nil)
		if skipped {
			t.Fatalf("seed %d: fresh estimation reported a short-circuit", seed)
		}
		requireSameTrust(t, cold.Trust, warm.Trust, fmt.Sprintf("seed %d cold-vs-warm", seed))

		// Short-circuit: identical claims and seeds must skip the fixpoint
		// yet return the identical map.
		again, memo2, skipped := EstimateTrustWarm(claims, randomTrustOpts(rand.New(rand.NewSource(seed))), memo)
		if !skipped {
			t.Fatalf("seed %d: unchanged inputs did not short-circuit", seed)
		}
		requireSameTrust(t, cold.Trust, again.Trust, fmt.Sprintf("seed %d short-circuit", seed))

		// Delta: mutate a subset of claims, keep the rest — the warm path
		// reuses the untouched groups' prepared state.
		mutated := append([]Claim(nil), claims...)
		for k := 0; k < 1+rng.Intn(5); k++ {
			i := rng.Intn(len(mutated))
			mutated[i].Value = dataset.Float(500 + float64(rng.Intn(50)))
		}
		coldM := EstimateTrust(mutated, randomTrustOpts(rand.New(rand.NewSource(seed))))
		warmM, _, _ := EstimateTrustWarm(mutated, randomTrustOpts(rand.New(rand.NewSource(seed))), memo2)
		requireSameTrust(t, coldM.Trust, warmM.Trust, fmt.Sprintf("seed %d delta", seed))
	}
}

// TestStreamingTrustWarmSeedChangeReruns pins that a changed feedback
// seed (new pinned trust) defeats the short-circuit: the fixpoint reruns
// and matches the cold estimate under the new seeds.
func TestStreamingTrustWarmSeedChangeReruns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	claims := randomTrustClaims(rng, 80)
	base := DefaultOptions(TruthFinder)
	_, memo, _ := EstimateTrustWarm(claims, base, nil)

	seeded := DefaultOptions(TruthFinder)
	seeded.Trust["s1"] = 0.31
	seeded.Pinned = map[string]bool{"s1": true}
	cold := EstimateTrust(claims, cloneOpts(seeded))
	warm, _, skipped := EstimateTrustWarm(claims, cloneOpts(seeded), memo)
	if skipped {
		t.Fatal("changed trust seeds must defeat the short-circuit")
	}
	requireSameTrust(t, cold.Trust, warm.Trust, "seed change")
}

func cloneOpts(o Options) Options {
	o.Trust = maps.Clone(o.Trust)
	o.Pinned = maps.Clone(o.Pinned)
	return o
}

// TestStreamingTrustWarmNonTruthFinder pins that non-TruthFinder policies
// never iterate: the warm path reports a skip and leaves trust exactly as
// EstimateTrust would (seeds only).
func TestStreamingTrustWarmNonTruthFinder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	claims := randomTrustClaims(rng, 40)
	opts := DefaultOptions(FreshnessWeighted)
	opts.Trust["s2"] = 0.5
	cold := EstimateTrust(claims, cloneOpts(opts))
	warm, _, skipped := EstimateTrustWarm(claims, cloneOpts(opts), nil)
	if !skipped {
		t.Fatal("freshness policy has no fixpoint to run")
	}
	requireSameTrust(t, cold.Trust, warm.Trust, "freshness")
}
