package sources

// Provider abstracts where sources come from. The orchestrator
// (internal/core) wrangles whatever a Provider hands it — the synthetic
// Universe used by the experiments, files on disk, or any future backend
// (crawlers, APIs, message queues) — without knowing which one it got.
//
// Refresh re-acquires one source (the Velocity reaction path) and may
// return the same *Source with updated contents; providers whose sources
// never change may return the source unchanged. Clock anchors freshness
// assessment: providers without a notion of time return 0 (= "now").
//
// Concurrency contract: the engine fans per-source processing out across
// workers, which call Clock (and read the *Source values already handed
// out) concurrently — those paths must be safe for concurrent reads, which
// they are for any provider that does not mutate itself outside Refresh.
// For the base interface, Refresh, Lookup-for-reacquisition and List are
// only ever called from one goroutine at a time (the orchestrator
// serialises acquisition precisely because Refresh may mutate provider
// state). Providers whose acquisition is safe to overlap opt out of that
// serialisation via ConcurrentProvider.
type Provider interface {
	// List returns every source the provider currently offers, in a
	// stable order.
	List() []*Source
	// Lookup returns the source with the given ID, or nil.
	Lookup(id string) *Source
	// Refresh re-acquires the source with the given ID and returns it,
	// or nil when the ID is unknown.
	Refresh(id string) *Source
	// Clock returns the provider's current logical clock (world steps
	// for the synthetic universe, 0 for timeless providers).
	Clock() int
}

// ConcurrentProvider is the opt-in extension of Provider for backends
// whose re-acquisition can overlap: when ConcurrentAcquire reports true,
// the orchestrator calls Refresh and Lookup from the engine's worker
// pool instead of serialising them, overlapping network- or disk-bound
// acquisition with extraction.
//
// The contract the provider signs up to:
//
//   - Refresh and Lookup are safe to call concurrently for DISTINCT
//     source ids. The orchestrator deduplicates a batch before fanning
//     out, so two concurrent calls never target the same id.
//   - Results stay deterministic: concurrent re-acquisition of a batch
//     yields byte-identical sources to serial re-acquisition in any
//     order (the pipeline's byte-identity guarantees rest on it).
//   - Refresh is still never concurrent with List, Clock-advancing
//     mutations (e.g. Universe.World.Evolve) or another batch — the
//     orchestrator only overlaps calls within one acquisition fan-out.
//
// ConcurrentAcquire is consulted per batch, so a provider may flip it
// (e.g. a rate-limited crawler degrading to serial).
type ConcurrentProvider interface {
	Provider
	// ConcurrentAcquire reports whether Refresh/Lookup may be called
	// concurrently for distinct ids.
	ConcurrentAcquire() bool
}

// List implements Provider.
func (u *Universe) List() []*Source { return u.Sources }

// Lookup implements Provider.
func (u *Universe) Lookup(id string) *Source { return u.Source(id) }

// Clock implements Provider.
func (u *Universe) Clock() int { return u.World.Clock }

// ConcurrentAcquire implements ConcurrentProvider: re-rendering a source
// writes only that source's records (the world and config are read-only
// during a refresh), and the per-source RNG is derived from (seed, id,
// clock), so concurrent distinct-id refreshes are race-free and
// byte-identical to serial ones.
func (u *Universe) ConcurrentAcquire() bool { return true }

// Static is a fixed set of in-memory sources — the simplest Provider.
// Refresh returns the source unchanged.
type Static struct {
	Items []*Source
}

// NewStatic builds a provider over the given sources.
func NewStatic(items ...*Source) *Static { return &Static{Items: items} }

// List implements Provider.
func (s *Static) List() []*Source { return s.Items }

// Lookup implements Provider.
func (s *Static) Lookup(id string) *Source {
	for _, it := range s.Items {
		if it.ID == id {
			return it
		}
	}
	return nil
}

// Refresh implements Provider (no-op: static data does not churn).
func (s *Static) Refresh(id string) *Source { return s.Lookup(id) }

// Clock implements Provider.
func (s *Static) Clock() int { return 0 }

// ConcurrentAcquire implements ConcurrentProvider: static acquisition is
// read-only.
func (s *Static) ConcurrentAcquire() bool { return true }
