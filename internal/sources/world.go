// Package sources generates the synthetic source universe that stands in
// for the paper's deep-web corpus (Example 1: "thousands of sites" of
// e-commerce data). Real crawls are unavailable offline, so the package
// builds a ground-truth world (products with true prices, businesses with
// true addresses) and derives heterogeneous, imperfect sources from it with
// the 4 V's as explicit knobs:
//
//   - Volume:   number of sources and records per source,
//   - Velocity: churn applied by Evolve (prices move, templates drift),
//   - Variety:  CSV, JSON and HTML sources with divergent schemas and
//     template families,
//   - Veracity: injected typos, nulls, stale values, unit drift and
//     fantasy records, at configurable rates.
//
// Because the world is known, every experiment can score wrangled output
// against ground truth — the property the paper's own evaluation would have
// needed and that the substitution preserves (see DESIGN.md §4).
package sources

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Product is one ground-truth catalogue entry. Category is an ontology
// class ID from ontology.ProductTaxonomy.
type Product struct {
	SKU      string
	Name     string
	Brand    string
	Category string
	Price    float64 // current true price
	Rating   float64 // true average rating in [1,5]
}

// Business is one ground-truth business location (Example 3).
type Business struct {
	ID       string
	Name     string
	Category string // ontology class ID from ontology.LocationTaxonomy
	Street   string
	City     string
	Postcode string
	Lat, Lon float64
	URL      string
	Phone    string
}

// World is the ground truth all sources derive from. PriceAt tracks price
// history so freshness experiments can distinguish stale from wrong.
type World struct {
	Products   []Product
	Businesses []Business
	Clock      int // logical time, advanced by Evolve

	rng        *rand.Rand
	priceHist  map[string][]pricePoint // SKU -> history (ascending clock)
	skuIndex   map[string]int
	bizIndex   map[string]int
}

type pricePoint struct {
	clock int
	price float64
}

var (
	brands = []string{"Anker", "Belkin", "Logi", "TrustLine", "Voltix", "Nordia",
		"CableCo", "PixelWare", "Zentro", "Kivo", "Ferrum", "Bluecrest"}
	adjectives = []string{"Premium", "Essential", "Pro", "Ultra", "Classic",
		"Compact", "Heavy-Duty", "Slim", "Eco", "Max"}
	variants = []string{"1m", "2m", "3m", "Black", "White", "Red", "Blue",
		"v2", "2-Pack", "XL"}
	productKinds = []struct {
		class string
		noun  string
	}{
		{"electronics/cables/usb", "USB Cable"},
		{"electronics/cables/hdmi", "HDMI Cable"},
		{"electronics/cables/ethernet", "Ethernet Cable"},
		{"electronics/audio/headphones", "Headphones"},
		{"electronics/audio/speakers", "Bluetooth Speaker"},
		{"electronics/peripherals/mouse", "Wireless Mouse"},
		{"electronics/peripherals/keyboard", "Mechanical Keyboard"},
		{"electronics/peripherals/webcam", "Webcam"},
		{"electronics/peripherals/monitor", "Monitor"},
		{"electronics/storage/ssd", "SSD"},
		{"electronics/storage/hdd", "External Hard Drive"},
		{"electronics/storage/usbstick", "USB Flash Drive"},
		{"electronics/phones/smartphone", "Smartphone"},
		{"electronics/phones/charger", "USB Charger"},
		{"electronics/phones/case", "Phone Case"},
		{"home/kitchen/kettle", "Electric Kettle"},
		{"home/kitchen/toaster", "Toaster"},
		{"home/kitchen/blender", "Blender"},
		{"home/lighting/desklamp", "Desk Lamp"},
		{"home/lighting/bulb", "Smart Bulb"},
		{"sports/fitness/yogamat", "Yoga Mat"},
		{"sports/fitness/dumbbell", "Dumbbell Set"},
		{"sports/cycling/helmet", "Bike Helmet"},
		{"sports/cycling/lock", "Bike Lock"},
		{"office/paper", "Printer Paper"},
		{"office/pens", "Gel Pens"},
		{"office/notebooks", "Notebook"},
	}

	streetNames = []string{"High Street", "Station Road", "Mill Lane", "Church Street",
		"Victoria Road", "Green Lane", "Park Avenue", "Queensway", "Market Square", "Bridge Road"}
	cities = []string{"Oxford", "Edinburgh", "Birmingham", "Manchester", "Bordeaux",
		"Leeds", "Bristol", "Cambridge", "York", "Bath"}
	bizKinds = []struct {
		class string
		noun  string
	}{
		{"place/food/restaurant", "Restaurant"},
		{"place/food/cafe", "Cafe"},
		{"place/food/bar", "Bar"},
		{"place/entertainment/cinema", "Cinema"},
		{"place/entertainment/museum", "Museum"},
		{"place/work/office", "Office"},
		{"place/retail/supermarket", "Supermarket"},
		{"place/retail/bookshop", "Bookshop"},
		{"place/health/gym", "Gym"},
		{"place/health/pharmacy", "Pharmacy"},
		{"place/lodging/hotel", "Hotel"},
	}
	bizNameParts = []string{"Golden", "Royal", "Old Town", "Corner", "Riverside",
		"Grand", "Little", "Central", "Garden", "Station"}
)

// NewWorld builds a deterministic ground-truth world with nProducts
// products and nBusinesses businesses.
func NewWorld(seed int64, nProducts, nBusinesses int) *World {
	rng := rand.New(rand.NewSource(seed))
	w := &World{
		rng:       rng,
		priceHist: make(map[string][]pricePoint),
		skuIndex:  make(map[string]int),
		bizIndex:  make(map[string]int),
	}
	for i := 0; i < nProducts; i++ {
		kind := productKinds[rng.Intn(len(productKinds))]
		brand := brands[rng.Intn(len(brands))]
		name := fmt.Sprintf("%s %s %s %s",
			brand, adjectives[rng.Intn(len(adjectives))], kind.noun, variants[rng.Intn(len(variants))])
		price := round2(3 + rng.Float64()*rng.Float64()*300)
		p := Product{
			SKU:      fmt.Sprintf("SKU-%05d", i),
			Name:     name,
			Brand:    brand,
			Category: kind.class,
			Price:    price,
			Rating:   round2(1 + rng.Float64()*4),
		}
		w.Products = append(w.Products, p)
		w.skuIndex[p.SKU] = i
		w.priceHist[p.SKU] = []pricePoint{{clock: 0, price: price}}
	}
	for i := 0; i < nBusinesses; i++ {
		kind := bizKinds[rng.Intn(len(bizKinds))]
		city := cities[rng.Intn(len(cities))]
		name := fmt.Sprintf("%s %s %s", bizNameParts[rng.Intn(len(bizNameParts))], city, kind.noun)
		b := Business{
			ID:       fmt.Sprintf("BIZ-%05d", i),
			Name:     name,
			Category: kind.class,
			Street:   fmt.Sprintf("%d %s", 1+rng.Intn(200), streetNames[rng.Intn(len(streetNames))]),
			City:     city,
			Postcode: fmt.Sprintf("%s%d %d%s%s", initials(city), 1+rng.Intn(20), 1+rng.Intn(9), string(rune('A'+rng.Intn(26))), string(rune('A'+rng.Intn(26)))),
			Lat:      48 + rng.Float64()*10,
			Lon:      -4 + rng.Float64()*6,
			URL:      fmt.Sprintf("https://www.%s.example/%s", slug(name), strings.ToLower(kind.noun)),
			Phone:    fmt.Sprintf("+44 %04d %06d", 1000+rng.Intn(9000), rng.Intn(1000000)),
		}
		w.Businesses = append(w.Businesses, b)
		w.bizIndex[b.ID] = i
	}
	return w
}

// Product returns the ground-truth product for a SKU, or nil.
func (w *World) Product(sku string) *Product {
	i, ok := w.skuIndex[sku]
	if !ok {
		return nil
	}
	return &w.Products[i]
}

// Business returns the ground-truth business for an ID, or nil.
func (w *World) Business(id string) *Business {
	i, ok := w.bizIndex[id]
	if !ok {
		return nil
	}
	return &w.Businesses[i]
}

// PriceAt returns the true price of a SKU at a logical clock value (the
// latest change at or before the clock). ok is false for unknown SKUs.
func (w *World) PriceAt(sku string, clock int) (float64, bool) {
	hist, ok := w.priceHist[sku]
	if !ok {
		return 0, false
	}
	price := hist[0].price
	for _, pt := range hist {
		if pt.clock > clock {
			break
		}
		price = pt.price
	}
	return price, true
}

// Evolve advances the logical clock by one step and changes the price of
// roughly churnRate of the products (Velocity). It returns the SKUs whose
// prices changed.
func (w *World) Evolve(churnRate float64) []string {
	w.Clock++
	var changed []string
	for i := range w.Products {
		if w.rng.Float64() < churnRate {
			p := &w.Products[i]
			factor := 0.85 + w.rng.Float64()*0.3 // ±15 %
			p.Price = round2(p.Price * factor)
			if p.Price < 0.5 {
				p.Price = 0.5
			}
			w.priceHist[p.SKU] = append(w.priceHist[p.SKU], pricePoint{clock: w.Clock, price: p.Price})
			changed = append(changed, p.SKU)
		}
	}
	return changed
}

// Rand exposes the world's deterministic RNG so that universes derived
// from the same world stay reproducible.
func (w *World) Rand() *rand.Rand { return w.rng }

// AsOf converts the logical clock into a synthetic wall-clock time, for
// populating "last updated" fields: clock 0 is 2016-03-15T00:00Z and each
// step is one hour.
func AsOf(clock int) time.Time {
	return time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC).Add(time.Duration(clock) * time.Hour)
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }

func slug(s string) string {
	return strings.ReplaceAll(strings.ToLower(s), " ", "-")
}

func initials(s string) string {
	if len(s) >= 2 {
		return strings.ToUpper(s[:2])
	}
	return "XX"
}
