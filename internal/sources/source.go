package sources

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind is the syntactic format a source publishes in (Variety).
type Kind string

// Source kinds.
const (
	KindCSV  Kind = "csv"
	KindJSON Kind = "json"
	KindHTML Kind = "html"
	// KindKV is a flat "header: value" record block format, the shape of
	// LDIF-style exports and sensor dumps — the long tail of Variety.
	KindKV Kind = "kv"
)

// Domain selects which part of the world a source describes.
type Domain string

// Source domains.
const (
	DomainProducts  Domain = "products"
	DomainLocations Domain = "locations"
)

// ErrorKind labels an injected veracity error on a field or record.
type ErrorKind string

// Injected error kinds (Veracity).
const (
	ErrTypo    ErrorKind = "typo"    // misspelled text value
	ErrNull    ErrorKind = "null"    // value dropped
	ErrWrong   ErrorKind = "wrong"   // numeric value perturbed
	ErrUnit    ErrorKind = "unit"    // price reported in cents (×100)
	ErrStale   ErrorKind = "stale"   // value from an earlier clock
	ErrFantasy ErrorKind = "fantasy" // whole record is invented
	ErrGeo     ErrorKind = "geo"     // coordinates offset (locations)
)

// ErrorRates configures per-field injection probabilities. All values are
// probabilities in [0,1]; Fantasy is a per-record probability.
type ErrorRates struct {
	Typo    float64
	Null    float64
	Wrong   float64
	Unit    float64
	Stale   float64
	Fantasy float64
	Geo     float64
}

// DefaultErrorRates returns the moderate-veracity setting used by most
// experiments.
func DefaultErrorRates() ErrorRates {
	return ErrorRates{Typo: 0.05, Null: 0.06, Wrong: 0.04, Unit: 0.02, Stale: 0.10, Fantasy: 0.02, Geo: 0.05}
}

// EmittedRecord is one row as a source publishes it, with ground-truth
// annotations for evaluation: TrueID is the world entity it derives from
// ("" for fantasy records) and Errors maps field names to the error kind
// injected there.
type EmittedRecord struct {
	TrueID string
	Values map[string]string    // canonical property -> emitted text
	Errors map[string]ErrorKind // canonical property -> injected error
}

// Clean reports whether no error was injected into the record.
func (r *EmittedRecord) Clean() bool { return len(r.Errors) == 0 && r.TrueID != "" }

// Source is one synthetic data source: a subset of the world published in
// one format under a source-specific schema, with injected errors. The
// ground-truth annotations (Records[i].TrueID/Errors) exist only for
// evaluation and are never consulted by wrangling components.
type Source struct {
	ID            string
	Kind          Kind
	Domain        Domain
	Props         []string          // canonical properties, in publication order
	Headers       map[string]string // canonical property -> source header name
	Records       []EmittedRecord
	Template      *Template // page template (HTML sources only)
	SnapshotClock int       // world clock when the snapshot was taken
	QualityFactor float64   // multiplier applied to base error rates (0 = clean)
	Categories    []string  // ontology class IDs this source covers
	// Raw, when non-empty, is the source's literal payload (real-world
	// sources read from disk or the network). Synthetic sources leave it
	// empty and render Records instead.
	Raw string
}

// Header returns the source-specific name for a canonical property.
func (s *Source) Header(prop string) string {
	if h, ok := s.Headers[prop]; ok {
		return h
	}
	return prop
}

// Payload renders the source's records in its publication format. Sources
// with a literal Raw payload return it verbatim; a source with neither
// records nor a template is raw by construction (file- or caller-backed),
// so an empty Raw means an empty payload rather than a synthetic render.
func (s *Source) Payload() string {
	if s.Raw != "" || (s.Records == nil && s.Template == nil) {
		return s.Raw
	}
	switch s.Kind {
	case KindCSV:
		return s.renderCSV()
	case KindJSON:
		return s.renderJSON()
	case KindHTML:
		// A file-backed HTML source whose file is empty has neither Raw
		// nor a synthetic template; an empty page beats a panic.
		if s.Template == nil {
			return ""
		}
		return s.Template.RenderPage(s)
	case KindKV:
		return s.renderKV()
	default:
		return ""
	}
}

func (s *Source) renderCSV() string {
	var b strings.Builder
	headers := make([]string, len(s.Props))
	for i, p := range s.Props {
		headers[i] = csvEscape(s.Header(p))
	}
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	for _, r := range s.Records {
		cells := make([]string, len(s.Props))
		for i, p := range s.Props {
			cells[i] = csvEscape(r.Values[p])
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func (s *Source) renderJSON() string {
	var b strings.Builder
	b.WriteString("[\n")
	for i, r := range s.Records {
		b.WriteString("  {")
		first := true
		for _, p := range s.Props {
			v, ok := r.Values[p]
			if !ok || v == "" {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "%q: %s", s.Header(p), jsonValue(v))
		}
		b.WriteString("}")
		if i < len(s.Records)-1 {
			b.WriteString(",")
		}
		b.WriteByte('\n')
	}
	b.WriteString("]\n")
	return b.String()
}

func jsonValue(v string) string {
	if _, err := strconv.ParseFloat(v, 64); err == nil && !strings.HasPrefix(v, "0") || v == "0" {
		return v
	}
	return strconv.Quote(v)
}

// renderKV renders records as blank-line-separated "header: value"
// blocks.
func (s *Source) renderKV() string {
	var b strings.Builder
	for i, r := range s.Records {
		if i > 0 {
			b.WriteByte('\n')
		}
		for _, p := range s.Props {
			v := r.Values[p]
			if v == "" {
				continue
			}
			b.WriteString(s.Header(p))
			b.WriteString(": ")
			b.WriteString(strings.ReplaceAll(v, "\n", " "))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Config controls universe generation — the 4 V's knobs.
type Config struct {
	Seed        int64
	Domain      Domain
	NumSources  int // Volume: number of sources
	MinRecords  int // Volume: records per source (uniform in [Min,Max])
	MaxRecords  int
	Coverage    float64 // fraction of the world each source may draw from
	Errors      ErrorRates
	StaleMax    int     // max staleness in clock steps
	CSVShare    float64 // Variety: format mix (shares normalised)
	JSONShare   float64
	HTMLShare   float64
	KVShare     float64
	CleanShare  float64 // fraction of sources with QualityFactor 0 (curated)
	DirtyFactor float64 // QualityFactor multiplier for the dirtiest sources
}

// DefaultConfig returns a balanced universe configuration for nSources
// product sources.
func DefaultConfig(seed int64, nSources int) Config {
	return Config{
		Seed: seed, Domain: DomainProducts, NumSources: nSources,
		MinRecords: 30, MaxRecords: 120, Coverage: 0.4,
		Errors: DefaultErrorRates(), StaleMax: 24,
		CSVShare: 0.4, JSONShare: 0.3, HTMLShare: 0.3,
		CleanShare: 0.1, DirtyFactor: 3,
	}
}

// Universe is a world plus the sources derived from it.
type Universe struct {
	World   *World
	Sources []*Source
	Config  Config
}

// Generate derives cfg.NumSources sources from the world. Generation is
// deterministic in cfg.Seed and independent of the world's own RNG state.
func Generate(w *World, cfg Config) *Universe {
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := &Universe{World: w, Config: cfg}
	for i := 0; i < cfg.NumSources; i++ {
		u.Sources = append(u.Sources, generateSource(w, cfg, rng, i))
	}
	return u
}

// Source returns the source with the given ID, or nil.
func (u *Universe) Source(id string) *Source {
	for _, s := range u.Sources {
		if s.ID == id {
			return s
		}
	}
	return nil
}

func generateSource(w *World, cfg Config, rng *rand.Rand, idx int) *Source {
	s := &Source{
		ID:     fmt.Sprintf("src-%03d", idx),
		Domain: cfg.Domain,
	}
	// Format mix.
	total := cfg.CSVShare + cfg.JSONShare + cfg.HTMLShare + cfg.KVShare
	if total <= 0 {
		total, cfg.CSVShare = 1, 1
	}
	roll := rng.Float64() * total
	switch {
	case roll < cfg.CSVShare:
		s.Kind = KindCSV
	case roll < cfg.CSVShare+cfg.JSONShare:
		s.Kind = KindJSON
	case roll < cfg.CSVShare+cfg.JSONShare+cfg.HTMLShare:
		s.Kind = KindHTML
	default:
		s.Kind = KindKV
	}
	// Quality tier.
	switch {
	case rng.Float64() < cfg.CleanShare:
		s.QualityFactor = 0
	default:
		s.QualityFactor = 0.3 + rng.Float64()*(cfg.DirtyFactor-0.3)
	}
	// Staleness: how old this source's snapshot is.
	if cfg.StaleMax > 0 {
		s.SnapshotClock = w.Clock - rng.Intn(cfg.StaleMax+1)
		if s.SnapshotClock < 0 {
			s.SnapshotClock = 0
		}
	} else {
		s.SnapshotClock = w.Clock
	}
	switch cfg.Domain {
	case DomainLocations:
		populateLocationSource(w, cfg, rng, s)
	default:
		populateProductSource(w, cfg, rng, s)
	}
	if s.Kind == KindHTML {
		s.Template = NewTemplate(rng)
	}
	return s
}

// productProps are the canonical properties a product source may publish.
var productProps = []string{"sku", "name", "brand", "category", "price", "currency", "rating", "updated", "url"}

// headerSynonyms lists the source-side names generation picks from per
// canonical property. Kept in sync with ontology.ProductTaxonomy /
// LocationTaxonomy synonym lists so matching has signal to find, plus a few
// adversarial names that only instance-based matching can align.
var headerSynonyms = map[string][]string{
	"sku":          {"sku", "id", "product_id", "item_no", "ref", "article"},
	"name":         {"name", "title", "product", "product_name", "item", "label"},
	"brand":        {"brand", "manufacturer", "maker", "vendor", "make"},
	"category":     {"category", "cat", "department", "type", "section"},
	"price":        {"price", "cost", "amount", "price_usd", "unit_price", "p"},
	"currency":     {"currency", "curr", "ccy"},
	"rating":       {"rating", "stars", "score", "avg_rating"},
	"updated":      {"updated", "last_updated", "timestamp", "as_of", "modified"},
	"url":          {"url", "link", "href", "page"},
	"street":       {"street", "address", "addr", "street_address", "road"},
	"city":         {"city", "town", "locality"},
	"postcode":     {"postcode", "zip", "zipcode", "postal_code"},
	"lat":          {"lat", "latitude", "geo_lat", "y"},
	"lon":          {"lon", "longitude", "lng", "x"},
	"phone":        {"phone", "tel", "telephone", "contact"},
	"checkins":     {"checkins", "visits", "check_ins", "popularity"},
	"biz_category": {"category", "type", "kind", "venue_type"},
	"biz_name":     {"name", "business", "business_name", "venue", "title"},
}

func pickHeaders(rng *rand.Rand, props []string, alias map[string]string) map[string]string {
	out := make(map[string]string, len(props))
	for _, p := range props {
		key := p
		if alias != nil {
			if a, ok := alias[p]; ok {
				key = a
			}
		}
		syns := headerSynonyms[key]
		if len(syns) == 0 {
			out[p] = p
			continue
		}
		out[p] = syns[rng.Intn(len(syns))]
	}
	return out
}

func populateProductSource(w *World, cfg Config, rng *rand.Rand, s *Source) {
	// Choose a property subset: sku/name/price always, others optional.
	s.Props = []string{"sku", "name", "price"}
	for _, opt := range []string{"brand", "category", "rating", "updated", "currency", "url"} {
		if rng.Float64() < 0.55 {
			s.Props = append(s.Props, opt)
		}
	}
	rng.Shuffle(len(s.Props), func(i, j int) { s.Props[i], s.Props[j] = s.Props[j], s.Props[i] })
	s.Headers = pickHeaders(rng, s.Props, nil)

	// Pick a record subset biased to a few categories (sources specialise).
	n := cfg.MinRecords
	if cfg.MaxRecords > cfg.MinRecords {
		n += rng.Intn(cfg.MaxRecords - cfg.MinRecords + 1)
	}
	pool := pickPool(w, cfg, rng, s)
	if n > len(pool) {
		n = len(pool)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	rates := scaleRates(cfg.Errors, s.QualityFactor)
	for _, pi := range pool[:n] {
		p := w.Products[pi]
		rec := emitProduct(w, rng, s, &p, rates, cfg.StaleMax)
		s.Records = append(s.Records, rec)
	}
	// Fantasy records.
	for i := 0; i < n; i++ {
		if rng.Float64() < rates.Fantasy {
			s.Records = append(s.Records, fantasyProduct(rng, s))
		}
	}
	rng.Shuffle(len(s.Records), func(i, j int) { s.Records[i], s.Records[j] = s.Records[j], s.Records[i] })
}

// pickPool selects the world indices this source may draw from: a
// category-biased subset of Coverage fraction of the catalogue, and
// records the covered categories on the source.
func pickPool(w *World, cfg Config, rng *rand.Rand, s *Source) []int {
	byCat := map[string][]int{}
	for i, p := range w.Products {
		byCat[topCategory(p.Category)] = append(byCat[topCategory(p.Category)], i)
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	rng.Shuffle(len(cats), func(i, j int) { cats[i], cats[j] = cats[j], cats[i] })
	keep := 1 + rng.Intn(len(cats))
	var pool []int
	for _, c := range cats[:keep] {
		pool = append(pool, byCat[c]...)
		s.Categories = append(s.Categories, c)
	}
	sort.Strings(s.Categories)
	want := int(cfg.Coverage * float64(len(w.Products)))
	if want > 0 && len(pool) > want {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		pool = pool[:want]
	}
	return pool
}

func topCategory(class string) string {
	if i := strings.IndexByte(class, '/'); i > 0 {
		return class[:i]
	}
	return class
}

func scaleRates(r ErrorRates, factor float64) ErrorRates {
	return ErrorRates{
		Typo: clamp01(r.Typo * factor), Null: clamp01(r.Null * factor),
		Wrong: clamp01(r.Wrong * factor), Unit: clamp01(r.Unit * factor),
		Stale: clamp01(r.Stale * factor), Fantasy: clamp01(r.Fantasy * factor),
		Geo: clamp01(r.Geo * factor),
	}
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func emitProduct(w *World, rng *rand.Rand, s *Source, p *Product, rates ErrorRates, staleMax int) EmittedRecord {
	rec := EmittedRecord{TrueID: p.SKU, Values: map[string]string{}, Errors: map[string]ErrorKind{}}
	price, _ := w.PriceAt(p.SKU, s.SnapshotClock)
	vals := map[string]string{
		"sku":      p.SKU,
		"name":     p.Name,
		"brand":    p.Brand,
		"category": categoryLabel(p.Category),
		"price":    formatPrice(price),
		"currency": "USD",
		"rating":   strconv.FormatFloat(p.Rating, 'f', 1, 64),
		"updated":  AsOf(s.SnapshotClock).Format("2006-01-02T15:04:05Z"),
		"url":      fmt.Sprintf("https://shop.example/%s", strings.ToLower(p.SKU)),
	}
	// The snapshot itself may already be stale relative to the world clock;
	// additionally, individual prices can lag even further (per-field stale).
	if price != p.Price {
		rec.Errors["price"] = ErrStale
	}
	for _, prop := range s.Props {
		v := vals[prop]
		switch {
		case rng.Float64() < rates.Null:
			v = ""
			rec.Errors[prop] = ErrNull
		case prop == "name" && rng.Float64() < rates.Typo:
			v = injectTypo(rng, v)
			rec.Errors[prop] = ErrTypo
		case prop == "brand" && rng.Float64() < rates.Typo:
			v = injectTypo(rng, v)
			rec.Errors[prop] = ErrTypo
		case prop == "price" && rng.Float64() < rates.Unit:
			v = formatPrice(price * 100) // cents instead of dollars
			rec.Errors[prop] = ErrUnit
		case prop == "price" && rng.Float64() < rates.Wrong:
			v = formatPrice(price * (0.5 + rng.Float64()))
			rec.Errors[prop] = ErrWrong
		case prop == "price" && staleMax > 0 && rng.Float64() < rates.Stale:
			older := s.SnapshotClock - rng.Intn(staleMax+1)
			if older < 0 {
				older = 0
			}
			if op, ok := w.PriceAt(p.SKU, older); ok && op != price {
				v = formatPrice(op)
				rec.Errors[prop] = ErrStale
			}
		case prop == "rating" && rng.Float64() < rates.Wrong:
			v = strconv.FormatFloat(round2(1+rng.Float64()*4), 'f', 1, 64)
			rec.Errors[prop] = ErrWrong
		}
		rec.Values[prop] = v
	}
	return rec
}

func fantasyProduct(rng *rand.Rand, s *Source) EmittedRecord {
	rec := EmittedRecord{TrueID: "", Values: map[string]string{}, Errors: map[string]ErrorKind{"": ErrFantasy}}
	for _, prop := range s.Props {
		switch prop {
		case "sku":
			rec.Values[prop] = fmt.Sprintf("SKU-9%04d", rng.Intn(10000))
		case "name":
			rec.Values[prop] = fmt.Sprintf("%s Mystery Item %d", brands[rng.Intn(len(brands))], rng.Intn(1000))
		case "price":
			rec.Values[prop] = formatPrice(1 + rng.Float64()*500)
		case "brand":
			rec.Values[prop] = brands[rng.Intn(len(brands))]
		default:
			rec.Values[prop] = ""
		}
	}
	return rec
}

// categoryLabel renders an ontology class ID the way a messy source would:
// just the last path segment with spaces.
func categoryLabel(class string) string {
	if i := strings.LastIndexByte(class, '/'); i >= 0 {
		class = class[i+1:]
	}
	return class
}

func formatPrice(p float64) string { return strconv.FormatFloat(round2(p), 'f', 2, 64) }

// injectTypo applies one random edit: swap, drop, double or replace a rune.
func injectTypo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 3 {
		return s + "x"
	}
	i := 1 + rng.Intn(len(r)-2)
	switch rng.Intn(4) {
	case 0: // swap
		r[i], r[i+1] = r[i+1], r[i]
	case 1: // drop
		r = append(r[:i], r[i+1:]...)
	case 2: // double
		r = append(r[:i+1], r[i:]...)
	default: // replace
		r[i] = rune('a' + rng.Intn(26))
	}
	return string(r)
}

// locationProps are the canonical properties a location source may publish.
var locationProps = []string{"name", "category", "street", "city", "postcode", "lat", "lon", "phone", "url", "checkins"}

func populateLocationSource(w *World, cfg Config, rng *rand.Rand, s *Source) {
	s.Props = []string{"name", "street", "city"}
	for _, opt := range []string{"category", "postcode", "lat", "lon", "phone", "url", "checkins"} {
		if rng.Float64() < 0.6 {
			s.Props = append(s.Props, opt)
		}
	}
	rng.Shuffle(len(s.Props), func(i, j int) { s.Props[i], s.Props[j] = s.Props[j], s.Props[i] })
	s.Headers = pickHeaders(rng, s.Props, map[string]string{"name": "biz_name", "category": "biz_category"})

	n := cfg.MinRecords
	if cfg.MaxRecords > cfg.MinRecords {
		n += rng.Intn(cfg.MaxRecords - cfg.MinRecords + 1)
	}
	idx := rng.Perm(len(w.Businesses))
	want := int(cfg.Coverage * float64(len(w.Businesses)))
	if want > 0 && n > want {
		n = want
	}
	if n > len(idx) {
		n = len(idx)
	}
	rates := scaleRates(cfg.Errors, s.QualityFactor)
	for _, bi := range idx[:n] {
		b := w.Businesses[bi]
		s.Records = append(s.Records, emitBusiness(rng, s, &b, rates))
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < rates.Fantasy {
			s.Records = append(s.Records, fantasyBusiness(rng, s))
		}
	}
	rng.Shuffle(len(s.Records), func(i, j int) { s.Records[i], s.Records[j] = s.Records[j], s.Records[i] })
}

func emitBusiness(rng *rand.Rand, s *Source, b *Business, rates ErrorRates) EmittedRecord {
	rec := EmittedRecord{TrueID: b.ID, Values: map[string]string{}, Errors: map[string]ErrorKind{}}
	vals := map[string]string{
		"name":     b.Name,
		"category": categoryLabel(b.Category),
		"street":   b.Street,
		"city":     b.City,
		"postcode": b.Postcode,
		"lat":      strconv.FormatFloat(b.Lat, 'f', 5, 64),
		"lon":      strconv.FormatFloat(b.Lon, 'f', 5, 64),
		"phone":    b.Phone,
		"url":      b.URL,
		"checkins": strconv.Itoa(rng.Intn(5000)),
	}
	for _, prop := range s.Props {
		v := vals[prop]
		switch {
		case rng.Float64() < rates.Null:
			v = ""
			rec.Errors[prop] = ErrNull
		case (prop == "name" || prop == "street") && rng.Float64() < rates.Typo:
			v = injectTypo(rng, v)
			rec.Errors[prop] = ErrTypo
		case (prop == "lat" || prop == "lon") && rng.Float64() < rates.Geo:
			f, _ := strconv.ParseFloat(v, 64)
			v = strconv.FormatFloat(f+(rng.Float64()-0.5)*2, 'f', 5, 64)
			rec.Errors[prop] = ErrGeo
		}
		rec.Values[prop] = v
	}
	return rec
}

func fantasyBusiness(rng *rand.Rand, s *Source) EmittedRecord {
	rec := EmittedRecord{TrueID: "", Values: map[string]string{}, Errors: map[string]ErrorKind{"": ErrFantasy}}
	for _, prop := range s.Props {
		switch prop {
		case "name":
			rec.Values[prop] = fmt.Sprintf("Imaginary %s Palace %d", bizNameParts[rng.Intn(len(bizNameParts))], rng.Intn(100))
		case "city":
			rec.Values[prop] = cities[rng.Intn(len(cities))]
		case "street":
			rec.Values[prop] = fmt.Sprintf("%d Nowhere Lane", rng.Intn(999))
		default:
			rec.Values[prop] = ""
		}
	}
	return rec
}

// Refresh re-snapshots a source against the current world clock, keeping
// its schema and template but regenerating record values (Velocity: "sites
// ... and contents that are continually changing"). A fresh RNG derived
// from the universe seed and the source ID keeps refreshes deterministic.
func (u *Universe) Refresh(sourceID string) *Source {
	s := u.Source(sourceID)
	if s == nil {
		return nil
	}
	h := int64(0)
	for _, c := range sourceID {
		h = h*31 + int64(c)
	}
	rng := rand.New(rand.NewSource(u.Config.Seed ^ h ^ int64(u.World.Clock)<<16))
	rates := scaleRates(u.Config.Errors, s.QualityFactor)
	s.SnapshotClock = u.World.Clock
	for i := range s.Records {
		rec := &s.Records[i]
		if rec.TrueID == "" {
			continue
		}
		switch s.Domain {
		case DomainProducts:
			if p := u.World.Product(rec.TrueID); p != nil {
				*rec = emitProduct(u.World, rng, s, p, rates, u.Config.StaleMax)
			}
		case DomainLocations:
			if b := u.World.Business(rec.TrueID); b != nil {
				*rec = emitBusiness(rng, s, b, rates)
			}
		}
	}
	return s
}
