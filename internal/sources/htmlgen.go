package sources

import (
	"fmt"
	"math/rand"
	"strings"
)

// Template describes how an HTML source lays out its records. Listing
// pages in the wild fall into recurring families (result tables, card
// grids, definition lists); wrapper induction must recover the record
// boundary and field positions from examples regardless of family, and
// survive template drift — the "sites, site descriptions and contents that
// are continually changing" of Example 1.
type Template struct {
	Family     string            // "table", "cards", "list"
	ClassNames map[string]string // logical role -> CSS class (randomised)
	Version    int               // bumped by Drift
	WrapDepth  int               // extra wrapper divs added by Drift
	rng        *rand.Rand
}

var classPools = map[string][]string{
	"container": {"listing", "results", "catalog", "items", "content-main"},
	"record":    {"product", "item", "result", "entry", "card"},
	"field":     {"attr", "field", "val", "prop", "cell"},
}

// NewTemplate picks a random family and class vocabulary.
func NewTemplate(rng *rand.Rand) *Template {
	families := []string{"table", "cards", "list"}
	t := &Template{
		Family:     families[rng.Intn(len(families))],
		ClassNames: map[string]string{},
		rng:        rng,
	}
	t.ClassNames["container"] = pick(rng, classPools["container"])
	t.ClassNames["record"] = pick(rng, classPools["record"])
	t.ClassNames["field"] = pick(rng, classPools["field"])
	return t
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

// Drift mutates the template the way site redesigns do: it renames the
// record class, occasionally switches family, and adds a wrapper div level.
// Wrappers induced against the old version break and must be repaired
// (experiment E3).
func (t *Template) Drift(rng *rand.Rand) {
	t.Version++
	old := t.ClassNames["record"]
	for t.ClassNames["record"] == old {
		t.ClassNames["record"] = pick(rng, classPools["record"])
	}
	if rng.Float64() < 0.3 {
		families := []string{"table", "cards", "list"}
		t.Family = families[rng.Intn(len(families))]
	}
	if rng.Float64() < 0.5 {
		t.WrapDepth++
	}
}

// RenderPage renders a full listing page for the source's records.
func (t *Template) RenderPage(s *Source) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	b.WriteString(escape(s.ID))
	b.WriteString(" catalog</title></head>\n<body>\n")
	b.WriteString(`<div class="header"><h1>` + escape(s.ID) + ` listing</h1><p class="blurb">All offers updated daily.</p></div>` + "\n")
	for i := 0; i < t.WrapDepth; i++ {
		fmt.Fprintf(&b, `<div class="wrap-%d">`, i)
	}
	switch t.Family {
	case "table":
		t.renderTable(&b, s)
	case "cards":
		t.renderCards(&b, s)
	default:
		t.renderList(&b, s)
	}
	for i := 0; i < t.WrapDepth; i++ {
		b.WriteString("</div>")
	}
	b.WriteString("\n<div class=\"footer\">generated listing &copy; example</div>\n</body></html>\n")
	return b.String()
}

func (t *Template) renderTable(b *strings.Builder, s *Source) {
	fmt.Fprintf(b, `<table class="%s" id="tbl">`+"\n<tr>", t.ClassNames["container"])
	for _, p := range s.Props {
		fmt.Fprintf(b, `<th class="hdr">%s</th>`, escape(s.Header(p)))
	}
	b.WriteString("</tr>\n")
	for _, r := range s.Records {
		fmt.Fprintf(b, `<tr class="%s">`, t.ClassNames["record"])
		for _, p := range s.Props {
			fmt.Fprintf(b, `<td class="%s %s-%s">%s</td>`, t.ClassNames["field"], t.ClassNames["field"], cssSafe(s.Header(p)), escape(r.Values[p]))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>")
}

func (t *Template) renderCards(b *strings.Builder, s *Source) {
	fmt.Fprintf(b, `<div class="%s">`+"\n", t.ClassNames["container"])
	for _, r := range s.Records {
		fmt.Fprintf(b, `<div class="%s">`, t.ClassNames["record"])
		for _, p := range s.Props {
			fmt.Fprintf(b, `<span class="%s %s-%s"><b>%s:</b> %s</span>`,
				t.ClassNames["field"], t.ClassNames["field"], cssSafe(s.Header(p)), escape(s.Header(p)), escape(r.Values[p]))
		}
		b.WriteString("</div>\n")
	}
	b.WriteString("</div>")
}

func (t *Template) renderList(b *strings.Builder, s *Source) {
	fmt.Fprintf(b, `<ul class="%s">`+"\n", t.ClassNames["container"])
	for _, r := range s.Records {
		fmt.Fprintf(b, `<li class="%s"><dl>`, t.ClassNames["record"])
		for _, p := range s.Props {
			fmt.Fprintf(b, `<dt>%s</dt><dd class="%s %s-%s">%s</dd>`,
				escape(s.Header(p)), t.ClassNames["field"], t.ClassNames["field"], cssSafe(s.Header(p)), escape(r.Values[p]))
		}
		b.WriteString("</dl></li>\n")
	}
	b.WriteString("</ul>")
}

// RenderDetailPage renders record i of the source as a standalone detail
// page (one entity per page, the business-homepage shape of Example 3).
// Boilerplate (site navigation, footer) is constant across the site's
// pages so that cross-page induction can separate it from fields.
func (t *Template) RenderDetailPage(s *Source, i int) string {
	if i < 0 || i >= len(s.Records) {
		return ""
	}
	r := s.Records[i]
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	b.WriteString(escape(s.ID))
	b.WriteString(" detail</title></head>\n<body>\n")
	b.WriteString(`<div class="nav"><a href="/">home</a> | <a href="/all">catalog</a> | <span class="brandline">` + escape(s.ID) + ` official site</span></div>` + "\n")
	fmt.Fprintf(&b, `<div class="%s-detail"><dl>`, t.ClassNames["record"])
	for _, p := range s.Props {
		fmt.Fprintf(&b, `<dt>%s</dt><dd class="%s %s-%s">%s</dd>`,
			escape(s.Header(p)), t.ClassNames["field"], t.ClassNames["field"], cssSafe(s.Header(p)), escape(r.Values[p]))
	}
	b.WriteString("</dl></div>\n")
	b.WriteString(`<div class="footer">All rights reserved. Contact us for wholesale pricing.</div>` + "\n</body></html>\n")
	return b.String()
}

// htmlEscaper is shared across calls — a Replacer builds its matcher on
// first use, so a fresh one per call paid that build every time.
var htmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escape(s string) string {
	return htmlEscaper.Replace(s)
}

func cssSafe(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' {
			return r
		}
		return '-'
	}, s)
}
