package sources

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/html"
)

func TestNewWorldDeterministic(t *testing.T) {
	w1 := NewWorld(7, 50, 20)
	w2 := NewWorld(7, 50, 20)
	if len(w1.Products) != 50 || len(w1.Businesses) != 20 {
		t.Fatalf("world sizes wrong: %d/%d", len(w1.Products), len(w1.Businesses))
	}
	for i := range w1.Products {
		if w1.Products[i] != w2.Products[i] {
			t.Fatal("worlds with same seed differ")
		}
	}
	w3 := NewWorld(8, 50, 20)
	same := true
	for i := range w1.Products {
		if w1.Products[i] != w3.Products[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestWorldLookups(t *testing.T) {
	w := NewWorld(1, 10, 5)
	p := w.Product("SKU-00003")
	if p == nil || p.SKU != "SKU-00003" {
		t.Fatal("Product lookup failed")
	}
	if w.Product("SKU-99999") != nil {
		t.Error("unknown SKU should be nil")
	}
	b := w.Business("BIZ-00002")
	if b == nil || b.ID != "BIZ-00002" {
		t.Fatal("Business lookup failed")
	}
}

func TestEvolveAndPriceAt(t *testing.T) {
	w := NewWorld(2, 100, 0)
	orig := w.Products[0].Price
	var changed []string
	for i := 0; i < 5; i++ {
		changed = append(changed, w.Evolve(0.5)...)
	}
	if w.Clock != 5 {
		t.Errorf("clock = %d, want 5", w.Clock)
	}
	if len(changed) == 0 {
		t.Fatal("churn of 0.5 over 5 steps should change something")
	}
	// PriceAt(clock 0) must return the original price.
	p0, ok := w.PriceAt("SKU-00000", 0)
	if !ok || p0 != orig {
		t.Errorf("PriceAt(0) = %f, want %f", p0, orig)
	}
	// PriceAt at current clock must equal the live price.
	pn, _ := w.PriceAt("SKU-00000", w.Clock)
	if pn != w.Products[0].Price {
		t.Errorf("PriceAt(now) = %f, want %f", pn, w.Products[0].Price)
	}
	if _, ok := w.PriceAt("nope", 0); ok {
		t.Error("unknown SKU should not resolve")
	}
}

func TestGenerateUniverse(t *testing.T) {
	w := NewWorld(3, 200, 0)
	cfg := DefaultConfig(3, 12)
	u := Generate(w, cfg)
	if len(u.Sources) != 12 {
		t.Fatalf("sources = %d, want 12", len(u.Sources))
	}
	kinds := map[Kind]int{}
	for _, s := range u.Sources {
		kinds[s.Kind]++
		if len(s.Records) == 0 {
			t.Errorf("source %s has no records", s.ID)
		}
		if len(s.Props) < 3 {
			t.Errorf("source %s has too few props", s.ID)
		}
		if s.Kind == KindHTML && s.Template == nil {
			t.Errorf("html source %s missing template", s.ID)
		}
		for _, p := range []string{"sku", "name", "price"} {
			found := false
			for _, sp := range s.Props {
				if sp == p {
					found = true
				}
			}
			if !found {
				t.Errorf("source %s missing mandatory prop %s", s.ID, p)
			}
		}
	}
	if len(kinds) < 2 {
		t.Errorf("universe should mix formats, got %v", kinds)
	}
	if u.Source("src-003") == nil || u.Source("zz") != nil {
		t.Error("Source lookup wrong")
	}
}

func TestUniverseDeterministic(t *testing.T) {
	w1 := NewWorld(5, 100, 0)
	w2 := NewWorld(5, 100, 0)
	u1 := Generate(w1, DefaultConfig(5, 6))
	u2 := Generate(w2, DefaultConfig(5, 6))
	for i := range u1.Sources {
		if u1.Sources[i].Payload() != u2.Sources[i].Payload() {
			t.Fatalf("source %d payloads differ across identical seeds", i)
		}
	}
}

func TestCSVPayloadParses(t *testing.T) {
	w := NewWorld(4, 100, 0)
	cfg := DefaultConfig(4, 8)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 1, 0, 0
	u := Generate(w, cfg)
	s := u.Sources[0]
	tab, err := dataset.ReadCSV(strings.NewReader(s.Payload()))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != len(s.Records) {
		t.Errorf("parsed %d rows, want %d", tab.Len(), len(s.Records))
	}
	if len(tab.Schema()) != len(s.Props) {
		t.Errorf("parsed %d cols, want %d", len(tab.Schema()), len(s.Props))
	}
}

func TestJSONPayloadParses(t *testing.T) {
	w := NewWorld(4, 100, 0)
	cfg := DefaultConfig(4, 8)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 0, 1, 0
	u := Generate(w, cfg)
	s := u.Sources[0]
	tab, err := dataset.ReadJSON(strings.NewReader(s.Payload()))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != len(s.Records) {
		t.Errorf("parsed %d rows, want %d", tab.Len(), len(s.Records))
	}
}

func TestHTMLPayloadParses(t *testing.T) {
	w := NewWorld(4, 100, 0)
	cfg := DefaultConfig(4, 8)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 0, 0, 1
	u := Generate(w, cfg)
	for _, s := range u.Sources[:3] {
		root := html.Parse(s.Payload())
		sel := html.MustCompile("." + s.Template.ClassNames["record"])
		recs := sel.Find(root)
		if len(recs) != len(s.Records) {
			t.Errorf("source %s (%s family): %d record nodes, want %d",
				s.ID, s.Template.Family, len(recs), len(s.Records))
		}
	}
}

func TestErrorInjectionRates(t *testing.T) {
	w := NewWorld(6, 500, 0)
	for i := 0; i < 30; i++ {
		w.Evolve(0.2) // build price history so staleness is possible
	}
	cfg := DefaultConfig(6, 10)
	cfg.Errors = ErrorRates{Typo: 0.5, Null: 0.2, Wrong: 0.2, Unit: 0.1, Stale: 0.5, Fantasy: 0.1}
	cfg.CleanShare = 0
	cfg.DirtyFactor = 1.0001 // quality factor in [0.3, 1]
	u := Generate(w, cfg)
	counts := map[ErrorKind]int{}
	total := 0
	for _, s := range u.Sources {
		for _, r := range s.Records {
			total++
			for _, k := range r.Errors {
				counts[k]++
			}
		}
	}
	if total == 0 {
		t.Fatal("no records")
	}
	for _, k := range []ErrorKind{ErrTypo, ErrNull, ErrStale, ErrFantasy} {
		if counts[k] == 0 {
			t.Errorf("error kind %s never injected (counts=%v)", k, counts)
		}
	}
}

func TestCleanSourceHasNoInjectedErrors(t *testing.T) {
	w := NewWorld(7, 200, 0)
	cfg := DefaultConfig(7, 5)
	cfg.CleanShare = 1 // every source curated
	cfg.StaleMax = 0   // and fresh
	u := Generate(w, cfg)
	for _, s := range u.Sources {
		if s.QualityFactor != 0 {
			t.Fatalf("source %s quality factor = %f, want 0", s.ID, s.QualityFactor)
		}
		for _, r := range s.Records {
			if len(r.Errors) > 0 {
				t.Fatalf("clean source %s has error %v", s.ID, r.Errors)
			}
		}
	}
}

func TestLocationUniverse(t *testing.T) {
	w := NewWorld(8, 0, 150)
	cfg := DefaultConfig(8, 6)
	cfg.Domain = DomainLocations
	u := Generate(w, cfg)
	for _, s := range u.Sources {
		if s.Domain != DomainLocations {
			t.Fatal("wrong domain")
		}
		if len(s.Records) == 0 {
			t.Errorf("source %s empty", s.ID)
		}
		for _, p := range []string{"name", "street", "city"} {
			found := false
			for _, sp := range s.Props {
				if sp == p {
					found = true
				}
			}
			if !found {
				t.Errorf("location source missing %s", p)
			}
		}
	}
}

func TestTemplateDriftChangesMarkup(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := NewWorld(9, 100, 0)
	cfg := DefaultConfig(9, 3)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 0, 0, 1
	u := Generate(w, cfg)
	s := u.Sources[0]
	before := s.Template.ClassNames["record"]
	page1 := s.Payload()
	s.Template.Drift(rng)
	page2 := s.Payload()
	if s.Template.ClassNames["record"] == before {
		t.Error("drift must rename record class")
	}
	if page1 == page2 {
		t.Error("drift should change markup")
	}
	if s.Template.Version != 1 {
		t.Error("version should bump")
	}
	// Old selector must now fail.
	root := html.Parse(page2)
	old := html.MustCompile("." + before).Find(root)
	if len(old) == len(s.Records) {
		t.Error("old record class should no longer select records")
	}
}

func TestRefreshUpdatesSnapshot(t *testing.T) {
	w := NewWorld(10, 150, 0)
	cfg := DefaultConfig(10, 4)
	cfg.StaleMax = 0
	u := Generate(w, cfg)
	s := u.Sources[0]
	for i := 0; i < 10; i++ {
		w.Evolve(0.5)
	}
	refreshed := u.Refresh(s.ID)
	if refreshed == nil || refreshed.SnapshotClock != w.Clock {
		t.Fatalf("refresh snapshot clock = %d, want %d", refreshed.SnapshotClock, w.Clock)
	}
	if u.Refresh("nope") != nil {
		t.Error("unknown source refresh should be nil")
	}
}

func TestEmittedRecordClean(t *testing.T) {
	r := EmittedRecord{TrueID: "x", Errors: map[string]ErrorKind{}}
	if !r.Clean() {
		t.Error("no errors should be clean")
	}
	r.Errors["price"] = ErrStale
	if r.Clean() {
		t.Error("with errors should not be clean")
	}
	f := EmittedRecord{TrueID: "", Errors: map[string]ErrorKind{}}
	if f.Clean() {
		t.Error("fantasy should not be clean")
	}
}

func TestAsOfMonotone(t *testing.T) {
	if !AsOf(5).After(AsOf(4)) {
		t.Error("AsOf should be monotone in clock")
	}
}
