package sources

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileProviderKindsAndPayloads(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "shop.csv", "sku,name,price\nA1,Widget,9.99\n")
	jsn := writeFile(t, dir, "feed.json", `[{"sku":"A1","name":"Widget","price":10.50}]`)
	kv := writeFile(t, dir, "dump.kv", "sku: A1\nname: Widget\n")

	p, err := NewFileProvider(csv, jsn, kv)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.List()); got != 3 {
		t.Fatalf("List() = %d sources, want 3", got)
	}
	wantKinds := map[string]Kind{"shop": KindCSV, "feed": KindJSON, "dump": KindKV}
	for id, kind := range wantKinds {
		s := p.Lookup(id)
		if s == nil {
			t.Fatalf("Lookup(%q) = nil", id)
		}
		if s.Kind != kind {
			t.Errorf("Lookup(%q).Kind = %q, want %q", id, s.Kind, kind)
		}
		if s.Payload() == "" {
			t.Errorf("Lookup(%q).Payload() empty", id)
		}
	}
	if p.Clock() != 0 {
		t.Errorf("Clock() = %d, want 0", p.Clock())
	}
}

func TestFileProviderRefreshRereads(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "shop.csv", "sku,price\nA1,1.00\n")
	p, err := NewFileProvider(path)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Lookup("shop").Payload()
	writeFile(t, dir, "shop.csv", "sku,price\nA1,2.00\n")
	s := p.Refresh("shop")
	if s == nil {
		t.Fatal("Refresh returned nil")
	}
	if s.Payload() == before {
		t.Error("Refresh did not pick up the on-disk change")
	}
	if p.Refresh("nope") != nil {
		t.Error("Refresh of unknown id should return nil")
	}
}

func TestDirProvider(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "sku,price\nA1,1.00\n")
	writeFile(t, dir, "b.json", `[{"sku":"A1"}]`)
	writeFile(t, dir, "ignore.bin", "xx")
	p, err := NewDirProvider(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.List()); got != 2 {
		t.Fatalf("dir provider found %d sources, want 2", got)
	}
	if _, err := NewDirProvider(filepath.Join(dir, "missing")); err == nil {
		t.Error("NewDirProvider on missing dir should error")
	}
}

func TestEmptyHTMLFileDoesNotPanic(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "page.html", "")
	p, err := NewFileProvider(path)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Lookup("page")
	if s == nil {
		t.Fatal("empty html file not listed")
	}
	if got := s.Payload(); got != "" {
		t.Errorf("Payload() = %q, want empty", got)
	}
}

func TestFileProviderErrors(t *testing.T) {
	if _, err := NewFileProvider(); err == nil {
		t.Error("no files should error")
	}
	if _, err := NewFileProvider("nosuch.csv"); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := writeFile(t, dir, "x.bin", "xx")
	if _, err := NewFileProvider(bad); err == nil {
		t.Error("unsupported extension should error")
	}
}
