package sources

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileProvider serves real data files from disk as wrangleable sources —
// the first non-synthetic backend. Each file becomes one Source whose ID
// is the file's base name (without extension) and whose Kind is inferred
// from the extension: .csv, .json, .kv/.txt (header: value blocks) and
// .html/.htm. Refresh re-reads the file, so on-disk edits flow through
// the same incremental path as synthetic source churn.
type FileProvider struct {
	items []*Source
	paths map[string]string // source ID -> file path
}

// kindForExt maps a file extension (lower-case, with dot) to a source
// kind; unknown extensions are skipped.
func kindForExt(ext string) (Kind, bool) {
	switch ext {
	case ".csv":
		return KindCSV, true
	case ".json":
		return KindJSON, true
	case ".kv", ".txt":
		return KindKV, true
	case ".html", ".htm":
		return KindHTML, true
	default:
		return "", false
	}
}

// NewFileProvider builds a provider over the given files. Every path must
// exist and carry a recognised extension.
func NewFileProvider(paths ...string) (*FileProvider, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("sources: no files given")
	}
	p := &FileProvider{paths: map[string]string{}}
	for _, path := range paths {
		kind, ok := kindForExt(strings.ToLower(filepath.Ext(path)))
		if !ok {
			return nil, fmt.Errorf("sources: unsupported file type %q", path)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("sources: %w", err)
		}
		id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if _, dup := p.paths[id]; dup {
			return nil, fmt.Errorf("sources: duplicate source id %q (from %s)", id, path)
		}
		p.paths[id] = path
		p.items = append(p.items, &Source{ID: id, Kind: kind, Raw: string(raw)})
	}
	sort.Slice(p.items, func(i, j int) bool { return p.items[i].ID < p.items[j].ID })
	return p, nil
}

// NewDirProvider builds a FileProvider over every recognised data file
// directly inside dir (non-recursive).
func NewDirProvider(dir string) (*FileProvider, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sources: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := kindForExt(strings.ToLower(filepath.Ext(e.Name()))); ok {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("sources: no data files (.csv/.json/.kv/.txt/.html) in %s", dir)
	}
	return NewFileProvider(paths...)
}

// List implements Provider.
func (p *FileProvider) List() []*Source { return p.items }

// Lookup implements Provider.
func (p *FileProvider) Lookup(id string) *Source {
	for _, s := range p.items {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// Refresh implements Provider: the file is re-read from disk. A read
// failure leaves the previous payload in place (best-effort, like a
// temporarily unreachable site).
func (p *FileProvider) Refresh(id string) *Source {
	s := p.Lookup(id)
	if s == nil {
		return nil
	}
	if raw, err := os.ReadFile(p.paths[id]); err == nil {
		s.Raw = string(raw)
	}
	return s
}

// Clock implements Provider: files have no world clock.
func (p *FileProvider) Clock() int { return 0 }

// ConcurrentAcquire implements ConcurrentProvider: a refresh only reads
// a file and writes its own source's payload, so distinct-id refreshes
// are independent disk reads worth overlapping.
func (p *FileProvider) ConcurrentAcquire() bool { return true }

// Path returns the on-disk path backing a source ID ("" when unknown).
func (p *FileProvider) Path(id string) string { return p.paths[id] }
