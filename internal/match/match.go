// Package match implements schema matching for the Data Integration
// component (§4.1 of Furche et al.): given an extracted source table and a
// target schema, it proposes attribute correspondences scored by multiple
// evidence types — name similarity, instance (value distribution) overlap,
// and ontology evidence — combined into a single confidence. Experiment E4
// sweeps the evidence types to show each contributes.
package match

import (
	"math"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ontology"
	"repro/internal/text"
)

// Correspondence is one proposed attribute match with per-evidence scores
// and the combined confidence in [0,1].
type Correspondence struct {
	SourceColumn string
	TargetColumn string
	NameScore    float64 // syntactic name similarity
	InstanceScore float64 // value-overlap similarity
	OntologyScore float64 // both names map to the same canonical property
	Confidence   float64
}

// Evidence toggles which evidence types the matcher uses (E4 ablation).
type Evidence struct {
	Name     bool
	Instance bool
	Ontology bool
}

// AllEvidence enables every evidence type.
func AllEvidence() Evidence { return Evidence{Name: true, Instance: true, Ontology: true} }

// Matcher matches source tables against a fixed target schema. Target
// sample values power instance-based evidence; a taxonomy powers ontology
// evidence. Either may be nil, disabling that evidence type regardless of
// the Evidence toggles.
type Matcher struct {
	target    dataset.Schema
	samples   map[string][]dataset.Value // target column -> sample values
	tax       *ontology.Taxonomy
	evidence  Evidence
	threshold float64
}

// Option configures a Matcher.
type Option func(*Matcher)

// WithEvidence selects evidence types.
func WithEvidence(e Evidence) Option { return func(m *Matcher) { m.evidence = e } }

// WithTaxonomy supplies ontology evidence.
func WithTaxonomy(t *ontology.Taxonomy) Option { return func(m *Matcher) { m.tax = t } }

// WithSamples supplies target-side instance samples per target column.
func WithSamples(s map[string][]dataset.Value) Option { return func(m *Matcher) { m.samples = s } }

// WithThreshold sets the minimum confidence for a correspondence to be
// kept (default 0.45).
func WithThreshold(th float64) Option { return func(m *Matcher) { m.threshold = th } }

// NewMatcher builds a matcher for the given target schema.
func NewMatcher(target dataset.Schema, opts ...Option) *Matcher {
	m := &Matcher{target: target, evidence: AllEvidence(), threshold: 0.45}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Match proposes a 1:1 correspondence set between the source table's
// columns and the target schema, using greedy best-first selection over
// the combined confidences (a stable-marriage-style assignment).
func (m *Matcher) Match(source *dataset.Table) ([]Correspondence, error) {
	if len(source.Schema()) == 0 {
		return nil, fmt.Errorf("match: source has no columns")
	}
	var cands []Correspondence
	for _, sf := range source.Schema() {
		srcVals, _ := source.Column(sf.Name)
		for _, tf := range m.target {
			c := m.score(sf.Name, srcVals, tf.Name)
			if c.Confidence >= m.threshold {
				cands = append(cands, c)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Confidence != cands[j].Confidence {
			return cands[i].Confidence > cands[j].Confidence
		}
		if cands[i].SourceColumn != cands[j].SourceColumn {
			return cands[i].SourceColumn < cands[j].SourceColumn
		}
		return cands[i].TargetColumn < cands[j].TargetColumn
	})
	usedSrc, usedTgt := map[string]bool{}, map[string]bool{}
	var out []Correspondence
	for _, c := range cands {
		if usedSrc[c.SourceColumn] || usedTgt[c.TargetColumn] {
			continue
		}
		usedSrc[c.SourceColumn] = true
		usedTgt[c.TargetColumn] = true
		out = append(out, c)
	}
	return out, nil
}

// score computes all enabled evidence scores for one column pair and
// combines them. Evidence is averaged over the enabled-and-available types,
// with ontology agreement acting as a strong boost and ontology
// disagreement (both classified, differently) as a penalty.
func (m *Matcher) score(srcCol string, srcVals []dataset.Value, tgtCol string) Correspondence {
	c := Correspondence{SourceColumn: srcCol, TargetColumn: tgtCol}
	weights, total := 0.0, 0.0
	if m.evidence.Name {
		c.NameScore = nameSimilarity(srcCol, tgtCol)
		total += 1.0 * c.NameScore
		weights += 1.0
	}
	if m.evidence.Instance && m.samples != nil {
		if tv, ok := m.samples[tgtCol]; ok && len(tv) > 0 && len(srcVals) > 0 {
			c.InstanceScore = instanceSimilarity(srcVals, tv)
			total += 1.2 * c.InstanceScore
			weights += 1.2
		}
	}
	if m.evidence.Ontology && m.tax != nil {
		sProp, sConf := m.tax.CanonicalProperty(srcCol)
		tProp, tConf := m.tax.CanonicalProperty(tgtCol)
		switch {
		case sProp != "" && sProp == tProp:
			c.OntologyScore = sConf * tConf
			total += 1.5 * c.OntologyScore
			weights += 1.5
		case sProp != "" && tProp != "" && sProp != tProp:
			// Confident disagreement is negative evidence.
			c.OntologyScore = 0
			total += 0
			weights += 1.5
		}
	}
	if weights == 0 {
		c.Confidence = 0
		return c
	}
	c.Confidence = total / weights
	// A high-confidence ontology agreement (both names are known synonyms
	// of the same canonical property) is near-conclusive on its own: floor
	// the combined confidence so weak syntactic/instance evidence cannot
	// veto the synonym table.
	if floor := 0.8 * c.OntologyScore; floor > c.Confidence {
		c.Confidence = floor
	}
	return c
}

// nameSimilarity blends edit-based and token-based similarity of column
// names after normalisation.
func nameSimilarity(a, b string) float64 {
	na, nb := text.Normalize(a), text.Normalize(b)
	if na == nb {
		return 1
	}
	return 0.6*text.JaroWinkler(na, nb) + 0.4*text.JaccardQGrams(na, nb, 3)
}

// instanceSimilarity measures distribution overlap between two value
// samples: for numeric columns the overlap of value ranges and scale; for
// text the Jaccard overlap of normalised value sets, with a fallback to
// token-level cosine.
func instanceSimilarity(a, b []dataset.Value) float64 {
	an, at := partition(a)
	bn, bt := partition(b)
	// Mostly-numeric columns compare numerically.
	if len(an) > len(at) && len(bn) > len(bt) {
		return numericOverlap(an, bn)
	}
	if len(at) == 0 || len(bt) == 0 {
		return 0
	}
	sa := normSet(at)
	sb := normSet(bt)
	inter := 0
	for k := range sa {
		if sb[k] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	j := float64(inter) / float64(union)
	if j > 0 {
		return j
	}
	// No exact overlap: compare token distributions (catches same-domain
	// columns with disjoint entities).
	corpus := text.NewCorpus()
	da, db := joinSample(at), joinSample(bt)
	corpus.Add(da)
	corpus.Add(db)
	return 0.5 * corpus.Cosine(da, db)
}

func partition(vals []dataset.Value) (nums []float64, texts []string) {
	for _, v := range vals {
		switch {
		case v.IsNull():
		case v.IsNumeric():
			nums = append(nums, v.FloatVal())
		default:
			texts = append(texts, v.String())
		}
	}
	return nums, texts
}

func normSet(texts []string) map[string]bool {
	s := make(map[string]bool, len(texts))
	for _, t := range texts {
		s[text.Normalize(t)] = true
	}
	return s
}

func joinSample(texts []string) string {
	n := len(texts)
	if n > 40 {
		n = 40
	}
	out := ""
	for _, t := range texts[:n] {
		out += t + " "
	}
	return out
}

// numericOverlap compares numeric samples by the overlap of their
// [p10, p90] ranges in signed-log space. Log scale makes the measure about
// orders of magnitude rather than absolute spread, which separates prices
// from ratings from coordinates even when samples are small and entity
// sets disjoint.
func numericOverlap(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	al, ah := quantiles(a)
	bl, bh := quantiles(b)
	al, ah, bl, bh = slog(al), slog(ah), slog(bl), slog(bh)
	lo := math.Max(al, bl)
	hi := math.Min(ah, bh)
	span := math.Max(ah, bh) - math.Min(al, bl)
	if span < 1e-9 {
		// Same point mass in log space: identical scale.
		if hi >= lo {
			return 1
		}
		return 0
	}
	if hi <= lo {
		return 0
	}
	return (hi - lo) / span
}

// slog is a sign-preserving log1p transform.
func slog(x float64) float64 {
	if x < 0 {
		return -math.Log1p(-x)
	}
	return math.Log1p(x)
}

func quantiles(vals []float64) (p10, p90 float64) {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	lo := s[len(s)/10]
	hi := s[len(s)*9/10]
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// F1 scores a correspondence set against a gold mapping of source column ->
// target column. It returns precision, recall and F1.
func F1(got []Correspondence, gold map[string]string) (p, r, f float64) {
	correct := 0
	for _, c := range got {
		if gold[c.SourceColumn] == c.TargetColumn {
			correct++
		}
	}
	if len(got) > 0 {
		p = float64(correct) / float64(len(got))
	}
	if len(gold) > 0 {
		r = float64(correct) / float64(len(gold))
	}
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return p, r, f
}
