package match

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ontology"
	"repro/internal/sources"
)

func targetSchema() dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "rating", Kind: dataset.KindFloat},
	)
}

func sourceTable() *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "item_no", Kind: dataset.KindString},
		dataset.Field{Name: "title", Kind: dataset.KindString},
		dataset.Field{Name: "cost", Kind: dataset.KindFloat},
		dataset.Field{Name: "maker", Kind: dataset.KindString},
	))
	t.AppendValues(dataset.String("SKU-00001"), dataset.String("Anker USB Cable 2m"), dataset.Float(4.99), dataset.String("Anker"))
	t.AppendValues(dataset.String("SKU-00002"), dataset.String("Belkin HDMI Cable"), dataset.Float(7.50), dataset.String("Belkin"))
	t.AppendValues(dataset.String("SKU-00003"), dataset.String("Logi Wireless Mouse"), dataset.Float(12.00), dataset.String("Logi"))
	return t
}

func samples() map[string][]dataset.Value {
	return map[string][]dataset.Value{
		"sku":    {dataset.String("SKU-00001"), dataset.String("SKU-00009")},
		"name":   {dataset.String("Anker USB Cable 2m"), dataset.String("Voltix Kettle")},
		"price":  {dataset.Float(4.99), dataset.Float(89.00), dataset.Float(12.50)},
		"brand":  {dataset.String("Anker"), dataset.String("Voltix")},
		"rating": {dataset.Float(4.5), dataset.Float(2.1), dataset.Float(3.3)},
	}
}

func TestMatchWithAllEvidence(t *testing.T) {
	m := NewMatcher(targetSchema(),
		WithTaxonomy(ontology.ProductTaxonomy()),
		WithSamples(samples()))
	corrs, err := m.Match(sourceTable())
	if err != nil {
		t.Fatal(err)
	}
	gold := map[string]string{"item_no": "sku", "title": "name", "cost": "price", "maker": "brand"}
	p, r, f := F1(corrs, gold)
	if f < 0.99 {
		t.Errorf("all-evidence F1 = %f (p=%f r=%f), want 1.0; corrs=%v", f, p, r, corrs)
	}
}

func TestMatchNameOnlyWeaker(t *testing.T) {
	gold := map[string]string{"item_no": "sku", "title": "name", "cost": "price", "maker": "brand"}
	nameOnly := NewMatcher(targetSchema(), WithEvidence(Evidence{Name: true}))
	all := NewMatcher(targetSchema(),
		WithTaxonomy(ontology.ProductTaxonomy()), WithSamples(samples()))
	cn, err := nameOnly.Match(sourceTable())
	if err != nil {
		t.Fatal(err)
	}
	ca, err := all.Match(sourceTable())
	if err != nil {
		t.Fatal(err)
	}
	_, _, fn := F1(cn, gold)
	_, _, fa := F1(ca, gold)
	if fn > fa {
		t.Errorf("name-only F1 %f should not beat all-evidence %f", fn, fa)
	}
	// These column names share almost no surface text with the targets,
	// so name-only must miss some of them.
	if fn >= 0.99 {
		t.Errorf("name-only unexpectedly perfect (%f) — adversarial headers too easy", fn)
	}
}

func TestMatchOneToOne(t *testing.T) {
	m := NewMatcher(targetSchema(),
		WithTaxonomy(ontology.ProductTaxonomy()), WithSamples(samples()))
	corrs, err := m.Match(sourceTable())
	if err != nil {
		t.Fatal(err)
	}
	seenSrc, seenTgt := map[string]bool{}, map[string]bool{}
	for _, c := range corrs {
		if seenSrc[c.SourceColumn] || seenTgt[c.TargetColumn] {
			t.Fatalf("correspondences not 1:1: %v", corrs)
		}
		seenSrc[c.SourceColumn] = true
		seenTgt[c.TargetColumn] = true
	}
}

func TestMatchEmptySource(t *testing.T) {
	m := NewMatcher(targetSchema())
	empty := dataset.NewTable(dataset.Schema{})
	if _, err := m.Match(empty); err == nil {
		t.Error("empty source should error")
	}
}

func TestThreshold(t *testing.T) {
	strict := NewMatcher(targetSchema(), WithThreshold(0.99), WithEvidence(Evidence{Name: true}))
	corrs, err := strict.Match(sourceTable())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range corrs {
		if c.Confidence < 0.99 {
			t.Errorf("correspondence below threshold: %+v", c)
		}
	}
}

func TestInstanceSimilarityNumericVsText(t *testing.T) {
	prices := []dataset.Value{dataset.Float(4.99), dataset.Float(120), dataset.Float(8)}
	ratings := []dataset.Value{dataset.Float(4.5), dataset.Float(2.0), dataset.Float(3.1)}
	names := []dataset.Value{dataset.String("usb cable"), dataset.String("mouse")}
	if s := instanceSimilarity(prices, prices); s < 0.99 {
		t.Errorf("identical numeric distributions = %f", s)
	}
	pr := instanceSimilarity(prices, ratings)
	pp := instanceSimilarity(prices, prices)
	if pr >= pp {
		t.Errorf("price-vs-rating (%f) should score below price-vs-price (%f)", pr, pp)
	}
	if s := instanceSimilarity(prices, names); s != 0 {
		t.Errorf("numeric vs text = %f, want 0", s)
	}
}

func TestInstanceSimilarityTextOverlap(t *testing.T) {
	a := []dataset.Value{dataset.String("Anker USB Cable"), dataset.String("Belkin HDMI Cable")}
	b := []dataset.Value{dataset.String("anker usb cable"), dataset.String("logi mouse")}
	if s := instanceSimilarity(a, b); s <= 0 {
		t.Errorf("overlapping entity sets should score > 0, got %f", s)
	}
}

func TestOntologyDisagreementPenalty(t *testing.T) {
	m := NewMatcher(targetSchema(), WithTaxonomy(ontology.ProductTaxonomy()),
		WithEvidence(Evidence{Name: true, Ontology: true}))
	// "cost" maps to canonical price; target "brand" maps to brand: a
	// confident disagreement should suppress the pair even if names were
	// somehow similar.
	srcVals := []dataset.Value{dataset.Float(4.99)}
	c := m.score("cost", srcVals, "brand")
	if c.Confidence > 0.4 {
		t.Errorf("disagreeing pair confidence = %f, want low", c.Confidence)
	}
	agree := m.score("cost", srcVals, "price")
	if agree.Confidence < 0.7 {
		t.Errorf("agreeing pair confidence = %f, want high", agree.Confidence)
	}
}

func TestF1(t *testing.T) {
	gold := map[string]string{"a": "x", "b": "y"}
	got := []Correspondence{{SourceColumn: "a", TargetColumn: "x"}, {SourceColumn: "b", TargetColumn: "z"}}
	p, r, f := F1(got, gold)
	if p != 0.5 || r != 0.5 || f != 0.5 {
		t.Errorf("F1 = (%f,%f,%f)", p, r, f)
	}
	p, r, f = F1(nil, gold)
	if p != 0 || r != 0 || f != 0 {
		t.Error("empty predictions should score 0")
	}
}

// Integration: matching real generated sources against the canonical
// schema recovers the generator's header assignments.
func TestMatchGeneratedSources(t *testing.T) {
	w := sources.NewWorld(21, 200, 0)
	cfg := sources.DefaultConfig(21, 8)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 1, 0, 0
	cfg.CleanShare = 1
	u := sources.Generate(w, cfg)

	target := targetSchema()
	// Build target samples from the world itself (master data).
	s := map[string][]dataset.Value{}
	for _, p := range u.World.Products[:50] {
		s["sku"] = append(s["sku"], dataset.String(p.SKU))
		s["name"] = append(s["name"], dataset.String(p.Name))
		s["price"] = append(s["price"], dataset.Float(p.Price))
		s["brand"] = append(s["brand"], dataset.String(p.Brand))
		s["rating"] = append(s["rating"], dataset.Float(p.Rating))
	}
	m := NewMatcher(target, WithTaxonomy(ontology.ProductTaxonomy()), WithSamples(s))

	totalGold, correct := 0, 0
	for _, src := range u.Sources {
		tab, err := dataset.ReadCSV(strings.NewReader(src.Payload()))
		if err != nil {
			t.Fatal(err)
		}
		corrs, err := m.Match(tab)
		if err != nil {
			t.Fatal(err)
		}
		// Gold: the generator's canonical->header map inverted, restricted
		// to target columns.
		gold := map[string]string{}
		for _, prop := range src.Props {
			if target.Index(prop) >= 0 {
				gold[src.Header(prop)] = prop
			}
		}
		totalGold += len(gold)
		for _, c := range corrs {
			if gold[c.SourceColumn] == c.TargetColumn {
				correct++
			}
		}
	}
	recall := float64(correct) / float64(totalGold)
	if recall < 0.85 {
		t.Errorf("generated-source matching recall = %f, want >= 0.85", recall)
	}
}
