package mapping

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/match"
)

func target() dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	)
}

func srcTable() *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "item_no", Kind: dataset.KindString},
		dataset.Field{Name: "title", Kind: dataset.KindString},
		dataset.Field{Name: "cost", Kind: dataset.KindString}, // string prices to exercise casting
	))
	t.AppendValues(dataset.String("A"), dataset.String("USB Cable"), dataset.String("4.99"))
	t.AppendValues(dataset.String("B"), dataset.String("HDMI Cable"), dataset.String("7.50"))
	t.AppendValues(dataset.String("C"), dataset.String("Mouse"), dataset.String("not-a-price"))
	return t
}

func corrs() []match.Correspondence {
	return []match.Correspondence{
		{SourceColumn: "item_no", TargetColumn: "sku", Confidence: 0.9},
		{SourceColumn: "title", TargetColumn: "name", Confidence: 0.8},
		{SourceColumn: "cost", TargetColumn: "price", Confidence: 0.7},
	}
}

func TestGenerate(t *testing.T) {
	m := Generate("m1", "src-1", target(), corrs())
	if m.MappedColumns() != 3 {
		t.Errorf("mapped = %d, want 3", m.MappedColumns())
	}
	if m.Coverage() != 1 {
		t.Errorf("coverage = %f", m.Coverage())
	}
	if m.Confidence < 0.79 || m.Confidence > 0.81 {
		t.Errorf("confidence = %f, want 0.8", m.Confidence)
	}
}

func TestGeneratePartial(t *testing.T) {
	m := Generate("m2", "src-1", target(), corrs()[:2])
	if m.MappedColumns() != 2 {
		t.Error("partial mapping should map 2 columns")
	}
	if m.Coverage() != 2.0/3.0 {
		t.Errorf("coverage = %f", m.Coverage())
	}
}

func TestApply(t *testing.T) {
	m := Generate("m1", "src-1", target(), corrs())
	out, err := m.Apply(srcTable())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d", out.Len())
	}
	if !out.Schema().Equal(target()) {
		t.Errorf("schema = %v", out.Schema())
	}
	if out.Get(0, "price").Kind() != dataset.KindFloat || out.Get(0, "price").FloatVal() != 4.99 {
		t.Errorf("cast failed: %v", out.Get(0, "price"))
	}
	// Uncastable value becomes null, row survives.
	if !out.Get(2, "price").IsNull() {
		t.Errorf("uncastable should be null, got %v", out.Get(2, "price"))
	}
	if out.Get(2, "name").Str() != "Mouse" {
		t.Error("row with uncastable value should survive")
	}
}

func TestApplyUnmappedColumnsNull(t *testing.T) {
	m := Generate("m2", "src-1", target(), corrs()[:2]) // no price
	out, err := m.Apply(srcTable())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.Len(); i++ {
		if !out.Get(i, "price").IsNull() {
			t.Error("unmapped column should be null")
		}
	}
}

func TestApplyMissingSourceColumn(t *testing.T) {
	m := Generate("m3", "src-1", target(), []match.Correspondence{
		{SourceColumn: "ghost", TargetColumn: "sku", Confidence: 1},
	})
	if _, err := m.Apply(srcTable()); err == nil {
		t.Error("missing source column should error")
	}
}

func reference() *dataset.Table {
	r := dataset.NewTable(target())
	r.AppendValues(dataset.String("A"), dataset.String("USB Cable"), dataset.Float(4.99))
	r.AppendValues(dataset.String("B"), dataset.String("HDMI Cable"), dataset.Float(9.99)) // disagrees on price
	r.AppendValues(dataset.String("Z"), dataset.String("Keyboard"), dataset.Float(59.00)) // not covered
	return r
}

func TestEstimateQuality(t *testing.T) {
	m := Generate("m1", "src-1", target(), corrs())
	q, err := EstimateQuality(m, srcTable(), reference(), "sku")
	if err != nil {
		t.Fatal(err)
	}
	// Coverage: 2 of 3 reference keys seen.
	if q.Coverage < 0.66 || q.Coverage > 0.67 {
		t.Errorf("coverage = %f, want 2/3", q.Coverage)
	}
	// Accuracy: compared cells = name+price for A (both agree), name+price
	// for B (name agrees, price disagrees) → 3/4.
	if q.Accuracy != 0.75 {
		t.Errorf("accuracy = %f, want 0.75", q.Accuracy)
	}
	if q.Rows != 3 {
		t.Errorf("rows = %d", q.Rows)
	}
	if q.Completeness <= 0 || q.Completeness > 1 {
		t.Errorf("completeness = %f", q.Completeness)
	}
}

func TestEstimateQualityNoReference(t *testing.T) {
	m := Generate("m1", "src-1", target(), corrs())
	q, err := EstimateQuality(m, srcTable(), nil, "sku")
	if err != nil {
		t.Fatal(err)
	}
	if q.Accuracy != 0 || q.Coverage != 0 {
		t.Error("no reference should leave accuracy/coverage at 0")
	}
	if q.Completeness == 0 {
		t.Error("completeness should still be measured")
	}
}

func TestSelectWeightsChangeRanking(t *testing.T) {
	accurate := &Mapping{ID: "accurate", Confidence: 0.9}
	complete := &Mapping{ID: "complete", Confidence: 0.9}
	quals := []Quality{
		{Accuracy: 0.95, Completeness: 0.5, Coverage: 0.3},
		{Accuracy: 0.60, Completeness: 0.95, Coverage: 0.9},
	}
	ms := []*Mapping{accurate, complete}

	byAcc := Select(ms, quals, Weights{Accuracy: 1}, 1)
	if byAcc[0].Mapping.ID != "accurate" {
		t.Errorf("accuracy context picked %s", byAcc[0].Mapping.ID)
	}
	byCov := Select(ms, quals, Weights{Coverage: 1, Completeness: 1}, 1)
	if byCov[0].Mapping.ID != "complete" {
		t.Errorf("coverage context picked %s", byCov[0].Mapping.ID)
	}
}

func TestSelectDefaults(t *testing.T) {
	ms := []*Mapping{{ID: "a"}, {ID: "b"}}
	quals := []Quality{{Accuracy: 0.3}, {Accuracy: 0.9}}
	out := Select(ms, quals, Weights{}, 0)
	if len(out) != 2 || out[0].Mapping.ID != "b" {
		t.Errorf("zero weights should default to accuracy: %v", out)
	}
	if Select(ms, quals[:1], Weights{}, 0) != nil {
		t.Error("length mismatch should return nil")
	}
}

func TestSelectTopK(t *testing.T) {
	ms := []*Mapping{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	quals := []Quality{{Accuracy: 0.1}, {Accuracy: 0.2}, {Accuracy: 0.3}}
	out := Select(ms, quals, Weights{Accuracy: 1}, 2)
	if len(out) != 2 || out[0].Mapping.ID != "c" || out[1].Mapping.ID != "b" {
		t.Errorf("top-2 = %v", out)
	}
}

func TestUtilityBounds(t *testing.T) {
	ms := []*Mapping{{ID: "a", Confidence: 1}}
	quals := []Quality{{Accuracy: 1, Completeness: 1, Coverage: 1}}
	out := Select(ms, quals, Weights{Accuracy: 2, Completeness: 1, Coverage: 1, Confidence: 1}, 0)
	if out[0].Utility < 0.999 || out[0].Utility > 1.001 {
		t.Errorf("perfect mapping utility = %f, want 1", out[0].Utility)
	}
}
