// Package mapping generates, applies, estimates and selects schema
// mappings. It realises the §4.1 requirement that "the selection of which
// mappings to use must take into account information from the user
// context, such as the number of results required, the budget for
// accessing sources, and quality requirements": mapping quality is
// estimated against reference data ([5] Belhajjame et al.), and selection
// maximises a user-context-weighted utility rather than a hard-wired rule.
package mapping

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/match"
	"repro/internal/text"
)

// Mapping transforms one source table into the target schema: a rename/
// project/cast program derived from schema correspondences.
type Mapping struct {
	ID         string
	SourceID   string
	Target     dataset.Schema
	ColumnMap  map[string]string // target column -> source column ("" = unmapped)
	Confidence float64           // mean correspondence confidence
}

// Generate derives a mapping from correspondences produced by the matcher.
func Generate(id, sourceID string, target dataset.Schema, corrs []match.Correspondence) *Mapping {
	m := &Mapping{ID: id, SourceID: sourceID, Target: target.Clone(), ColumnMap: map[string]string{}}
	sum := 0.0
	for _, c := range corrs {
		m.ColumnMap[c.TargetColumn] = c.SourceColumn
		sum += c.Confidence
	}
	if len(corrs) > 0 {
		m.Confidence = sum / float64(len(corrs))
	}
	return m
}

// MappedColumns returns how many target columns the mapping populates.
func (m *Mapping) MappedColumns() int {
	n := 0
	for _, src := range m.ColumnMap {
		if src != "" {
			n++
		}
	}
	return n
}

// Coverage is the fraction of target columns populated.
func (m *Mapping) Coverage() float64 {
	if len(m.Target) == 0 {
		return 0
	}
	return float64(m.MappedColumns()) / float64(len(m.Target))
}

// Apply transforms the source table into the target schema: unmapped
// columns become null, mapped values are cast to the target kind where
// possible (uncastable values become null rather than failing the row).
func (m *Mapping) Apply(src *dataset.Table) (*dataset.Table, error) {
	srcIdx := make([]int, len(m.Target))
	for i, tf := range m.Target {
		srcIdx[i] = -1
		if sc, ok := m.ColumnMap[tf.Name]; ok && sc != "" {
			srcIdx[i] = src.Schema().Index(sc)
			if srcIdx[i] < 0 {
				return nil, fmt.Errorf("mapping %s: source column %q missing from table", m.ID, sc)
			}
		}
	}
	out := dataset.NewTable(m.Target.Clone())
	for _, r := range src.Rows() {
		row := make(dataset.Record, len(m.Target))
		for i := range m.Target {
			row[i] = dataset.Null()
			if srcIdx[i] < 0 {
				continue
			}
			v := r[srcIdx[i]]
			if v.IsNull() {
				continue
			}
			if cv, ok := v.Coerce(m.Target[i].Kind); ok {
				row[i] = cv
			}
		}
		out.Append(row)
	}
	return out, nil
}

// Quality summarises estimated mapping quality (§2.1: the criteria the
// user context trades off).
type Quality struct {
	Accuracy     float64 // agreement with reference data on overlapping keys
	Completeness float64 // fraction of target cells populated
	Coverage     float64 // fraction of reference entities the source knows
	Rows         int
}

// EstimateQuality applies the mapping and scores it against optional
// reference data (a table in the target schema containing trusted rows,
// e.g. the company's own product catalog — Example 4). keyCol names the
// entity key used to pair rows; accuracy compares paired non-null values
// with normalised-text or 2%-relative-numeric tolerance.
func EstimateQuality(m *Mapping, src *dataset.Table, reference *dataset.Table, keyCol string) (Quality, error) {
	mapped, err := m.Apply(src)
	if err != nil {
		return Quality{}, err
	}
	q := Quality{Rows: mapped.Len()}
	total, filled := 0, 0
	for _, r := range mapped.Rows() {
		for _, v := range r {
			total++
			if !v.IsNull() {
				filled++
			}
		}
	}
	if total > 0 {
		q.Completeness = float64(filled) / float64(total)
	}
	if reference == nil || reference.Len() == 0 {
		return q, nil
	}
	kc := mapped.Schema().Index(keyCol)
	rkc := reference.Schema().Index(keyCol)
	if kc < 0 || rkc < 0 {
		return q, nil
	}
	refByKey := map[string]dataset.Record{}
	for _, r := range reference.Rows() {
		if !r[rkc].IsNull() {
			refByKey[text.Normalize(r[rkc].String())] = r
		}
	}
	agree, compared, covered := 0, 0, map[string]bool{}
	for _, r := range mapped.Rows() {
		if r[kc].IsNull() {
			continue
		}
		key := text.Normalize(r[kc].String())
		ref, ok := refByKey[key]
		if !ok {
			continue
		}
		covered[key] = true
		for i, tf := range mapped.Schema() {
			if i == kc || r[i].IsNull() {
				continue
			}
			ri := reference.Schema().Index(tf.Name)
			if ri < 0 || ref[ri].IsNull() {
				continue
			}
			compared++
			if valuesAgree(r[i], ref[ri]) {
				agree++
			}
		}
	}
	if compared > 0 {
		q.Accuracy = float64(agree) / float64(compared)
	}
	if len(refByKey) > 0 {
		q.Coverage = float64(len(covered)) / float64(len(refByKey))
	}
	return q, nil
}

func valuesAgree(a, b dataset.Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		av, bv := a.FloatVal(), b.FloatVal()
		if bv == 0 {
			return av == 0
		}
		d := av/bv - 1
		return d < 0.02 && d > -0.02
	}
	return text.Normalize(a.String()) == text.Normalize(b.String())
}

// Weights are the user-context priorities used for mapping selection. They
// need not be normalised; Select normalises internally. Zero weights fall
// back to accuracy-only selection.
type Weights struct {
	Accuracy     float64
	Completeness float64
	Coverage     float64
	Confidence   float64
}

// Scored pairs a mapping with its quality and utility.
type Scored struct {
	Mapping *Mapping
	Quality Quality
	Utility float64
}

// Select ranks mappings by user-context-weighted utility and returns the
// top k (all if k <= 0). This is the multi-criteria compromise of §2.1: a
// routine-price-comparison context weighting accuracy yields a different
// selection than an issue-investigation context weighting coverage.
func Select(ms []*Mapping, quals []Quality, w Weights, k int) []Scored {
	if len(ms) != len(quals) {
		return nil
	}
	total := w.Accuracy + w.Completeness + w.Coverage + w.Confidence
	if total <= 0 {
		w = Weights{Accuracy: 1}
		total = 1
	}
	out := make([]Scored, len(ms))
	for i, m := range ms {
		q := quals[i]
		u := (w.Accuracy*q.Accuracy + w.Completeness*q.Completeness +
			w.Coverage*q.Coverage + w.Confidence*m.Confidence) / total
		out[i] = Scored{Mapping: m, Quality: q, Utility: u}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Utility != out[j].Utility {
			return out[i].Utility > out[j].Utility
		}
		return out[i].Mapping.ID < out[j].Mapping.ID
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
