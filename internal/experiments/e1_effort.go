package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/etl"
	"repro/internal/feedback"
	"repro/internal/ontology"
	"repro/internal/sources"
)

// E1 cost model: minutes a data scientist spends per action. ETL-side
// constants live in the etl package; the wrangler charges only feedback.
const (
	e1FeedbackMinutes = 0.5  // one annotation: glance + click
	e1AnalysisMinutes = 960.0 // the value-added analysis both teams do
)

// E1Result carries the effort comparison for one pipeline.
type E1Result struct {
	Label          string
	WranglingMin   float64
	AnalysisMin    float64
	WranglingShare float64
}

// E1ManualVsAutomated reproduces the §1 claim that manual wrangling eats
// 50-80% of a data scientist's time, and measures what the automated,
// pay-as-you-go architecture leaves. Workload: nSources product sources,
// 4 churn rounds in which a fraction of HTML templates drift and schemas
// rename (each drift costs the ETL analyst a manual repair; the wrangler
// reacts autonomously), plus a fixed feedback budget on the wrangler side.
func E1ManualVsAutomated(seed int64, nSources int) (Table, []E1Result) {
	w := sources.NewWorld(seed, 250, 0)
	for i := 0; i < 20; i++ {
		w.Evolve(0.1)
	}
	cfg := sources.DefaultConfig(seed, nSources)
	u := sources.Generate(w, cfg)

	target := core.ProductConfig().Target

	// --- Classical ETL: specify everything by hand. ---
	wf := etl.NewWorkflow(dataset.MustSchema(target...))
	for _, s := range u.Sources {
		wf.SpecifySource(s.ID, etl.AutoSpec(s, target))
	}
	wf.Run(u)
	// Churn rounds: drift breaks manual wrappers; analyst repairs each.
	rng := rand.New(rand.NewSource(seed * 7))
	for round := 0; round < 4; round++ {
		w.Evolve(0.2)
		for _, s := range u.Sources {
			if s.Kind == sources.KindHTML && rng.Float64() < 0.3 {
				s.Template.Drift(rng)
				wf.RepairSource(s.ID, etl.AutoSpec(s, target))
			}
		}
		wf.Run(u)
	}

	// --- Automated wrangler: same universe, feedback-only payment. ---
	master := masterFromWorld(u, 100)
	dc := context.NewDataContext().WithMaster(master, "sku").WithTaxonomy(ontology.ProductTaxonomy())
	wr := core.New(u, core.ProductConfig(), nil, dc)
	wr.Run()
	// The user pays a modest feedback budget: 40 annotations.
	fb := 0
	for i, s := range u.Sources {
		if fb >= 40 {
			break
		}
		kind := feedback.ValueCorrect
		if i%5 == 0 {
			kind = feedback.ValueIncorrect
		}
		wr.Feedback.Add(feedback.Item{Kind: kind, SourceID: s.ID, Entity: "SKU-00001", Attribute: "price", Cost: e1FeedbackMinutes})
		fb++
	}
	wr.ReactToFeedback()

	etlMin := wf.Effort.AnalystMinutes
	autoMin := wr.Feedback.Spent()
	results := []E1Result{
		{Label: "manual ETL", WranglingMin: etlMin, AnalysisMin: e1AnalysisMinutes,
			WranglingShare: etlMin / (etlMin + e1AnalysisMinutes)},
		{Label: "automated wrangler", WranglingMin: autoMin, AnalysisMin: e1AnalysisMinutes,
			WranglingShare: autoMin / (autoMin + e1AnalysisMinutes)},
	}

	t := Table{
		ID:    "E1",
		Title: fmt.Sprintf("Wrangling effort share, %d sources, 4 churn rounds", nSources),
		Claim: `"data scientists spend from 50 percent to 80 percent of their time collecting and preparing unruly digital data" (§1)`,
		Columns: []string{"pipeline", "wrangling (min)", "analysis (min)", "wrangling share"},
		Notes: fmt.Sprintf("ETL charged %d wrapper specs, %d repairs, %d runs; wrangler charged %d feedback items only",
			wf.Effort.WrapperSpecs, wf.Effort.RepairActions, wf.Effort.FullRuns, fb),
	}
	for _, r := range results {
		t.AddRow(r.Label, f2(r.WranglingMin), f2(r.AnalysisMin), pct(r.WranglingShare))
	}
	return t, results
}

// masterFromWorld builds master data from the first n world products.
func masterFromWorld(u *sources.Universe, n int) *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i, p := range u.World.Products {
		if i >= n {
			break
		}
		price, _ := u.World.PriceAt(p.SKU, u.World.Clock)
		t.AppendValues(dataset.String(p.SKU), dataset.String(p.Name), dataset.String(p.Brand), dataset.Float(price))
	}
	return t
}
