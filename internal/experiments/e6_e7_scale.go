package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/scale"
)

// E6Row is one table-size point of the bounded-evaluation sweep.
type E6Row struct {
	Rows        int
	BoundedWork int
	ScanWork    int
	BoundedNs   int64
	ScanNs      int64
	Equal       bool
}

// E6BoundedEvaluation reproduces the §4.3 scale-independence argument
// ([2, 17]): with access/index information, query work stays flat as data
// grows, while scans grow linearly. Workload: point-selection plus a
// one-hop join per table size.
func E6BoundedEvaluation(sizes []int) (Table, []E6Row) {
	var rows []E6Row
	for _, n := range sizes {
		tab := dataset.NewTable(dataset.MustSchema(
			dataset.Field{Name: "sku", Kind: dataset.KindString},
			dataset.Field{Name: "cat", Kind: dataset.KindString},
		))
		for i := 0; i < n; i++ {
			tab.AppendValues(
				dataset.String(fmt.Sprintf("SKU-%07d", i)),
				dataset.String(fmt.Sprintf("cat-%d", i%100)),
			)
		}
		cats := dataset.NewTable(dataset.MustSchema(
			dataset.Field{Name: "cat", Kind: dataset.KindString},
			dataset.Field{Name: "mgr", Kind: dataset.KindString},
		))
		for i := 0; i < 100; i++ {
			cats.AppendValues(dataset.String(fmt.Sprintf("cat-%d", i)), dataset.String(fmt.Sprintf("mgr-%d", i%9)))
		}
		lix, _ := scale.NewIndexed(tab, "sku", "cat")
		rix, _ := scale.NewIndexed(cats, "cat")
		probe := dataset.String(fmt.Sprintf("SKU-%07d", n/2))

		lix.ResetWork()
		rix.ResetWork()
		t0 := time.Now()
		bres, err := scale.BoundedJoin(lix, "sku", probe, "cat", rix, "cat")
		if err != nil {
			panic("experiments: E6: " + err.Error())
		}
		boundedNs := time.Since(t0).Nanoseconds()
		boundedWork := lix.Touched() + rix.Touched()

		lix.ResetWork()
		rix.ResetWork()
		t1 := time.Now()
		sres := scale.ScanJoin(lix, "sku", probe, "cat", rix, "cat")
		scanNs := time.Since(t1).Nanoseconds()
		scanWork := lix.Touched() + rix.Touched()

		rows = append(rows, E6Row{
			Rows: n, BoundedWork: boundedWork, ScanWork: scanWork,
			BoundedNs: boundedNs, ScanNs: scanNs,
			Equal: len(bres) == len(sres),
		})
	}
	t := Table{
		ID:    "E6",
		Title: "Bounded (scale-independent) evaluation vs full scan",
		Claim: `"understanding the requirement for query scalability that can be provided in terms of access and indexing information" (§4.3, [2,17])`,
		Columns: []string{"rows", "bounded work", "scan work", "bounded µs", "scan µs", "answers equal"},
	}
	for _, r := range rows {
		t.AddRow(d(r.Rows), d(r.BoundedWork), d(r.ScanWork),
			fmt.Sprintf("%.1f", float64(r.BoundedNs)/1000), fmt.Sprintf("%.1f", float64(r.ScanNs)/1000),
			fmt.Sprintf("%v", r.Equal))
	}
	t.Notes = "bounded work is constant in table size; scan work grows linearly"
	return t, rows
}

// E7Row is one query's exact-vs-approximate comparison.
type E7Row struct {
	Query       string
	ExactWork   int
	ApproxWork  int
	ExactRows   int
	ApproxRows  int
	Contained   bool
}

// E7CQApproximation reproduces the §4.3 static-approximation proposal
// ([4] Barceló-Libkin-Romero): cyclic conjunctive queries are replaced —
// without looking at the data — by acyclic under-approximations that
// evaluate with less work while returning only correct answers.
func E7CQApproximation(seed int64, nodes, edges int) (Table, []E7Row) {
	rng := rand.New(rand.NewSource(seed))
	g := scale.NewGraph()
	for i := 0; i < edges; i++ {
		g.Add("E", fmt.Sprintf("n%d", rng.Intn(nodes)), fmt.Sprintf("n%d", rng.Intn(nodes)))
	}
	queries := []struct {
		name string
		q    scale.CQ
	}{
		{"triangle", scale.CQ{Head: []string{"x", "y"}, Body: []scale.Atom{
			{Rel: "E", X: "x", Y: "y"}, {Rel: "E", X: "y", Y: "z"}, {Rel: "E", X: "z", Y: "x"},
		}}},
		{"square", scale.CQ{Head: []string{"x"}, Body: []scale.Atom{
			{Rel: "E", X: "x", Y: "y"}, {Rel: "E", X: "y", Y: "z"},
			{Rel: "E", X: "z", Y: "w"}, {Rel: "E", X: "w", Y: "x"},
		}}},
		{"triangle+tail", scale.CQ{Head: []string{"x", "t"}, Body: []scale.Atom{
			{Rel: "E", X: "x", Y: "y"}, {Rel: "E", X: "y", Y: "z"},
			{Rel: "E", X: "z", Y: "x"}, {Rel: "E", X: "x", Y: "t"},
		}}},
	}
	var rows []E7Row
	for _, qc := range queries {
		exact, workE, err := g.Eval(qc.q)
		if err != nil {
			panic("experiments: E7 exact: " + err.Error())
		}
		aq := scale.Approximate(qc.q)
		approx, workA, err := g.Eval(aq)
		if err != nil {
			panic("experiments: E7 approx: " + err.Error())
		}
		rows = append(rows, E7Row{
			Query: qc.name, ExactWork: workE, ApproxWork: workA,
			ExactRows: len(exact), ApproxRows: len(approx),
			Contained: scale.Contained(approx, exact),
		})
	}
	t := Table{
		ID:    "E7",
		Title: "Static under-approximation of conjunctive queries",
		Claim: `"developing static techniques for query approximation (i.e., without looking at the data) as was initiated in [4]" (§4.3)`,
		Columns: []string{"query", "exact work", "approx work", "exact rows", "approx rows", "contained"},
	}
	for _, r := range rows {
		t.AddRow(r.Query, d(r.ExactWork), d(r.ApproxWork), d(r.ExactRows), d(r.ApproxRows), fmt.Sprintf("%v", r.Contained))
	}
	t.Notes = "approx answers are always a subset of exact; work drops on cyclic queries"
	return t, rows
}
