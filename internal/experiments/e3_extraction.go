package experiments

import (
	"math/rand"
	"repro/internal/dataset"

	"repro/internal/extract"
	"repro/internal/html"
	"repro/internal/ontology"
	"repro/internal/sources"
)

// E3Row is one extraction configuration's outcome.
type E3Row struct {
	Config             string
	LabelledRate       float64 // mandatory fields labelled with canonical names
	ValidityAfterDrift float64 // wrapper validity after template drift
	RepairedRate       float64 // fraction of drifted sources extracting fully after repair
}

// E3ContextExtraction reproduces Example 3 / §4.1: extraction informed by
// the data context (ontology + master data) labels more fields, and joint
// wrapper+data repair recovers drifted sources automatically. Four
// configurations: no context, ontology only, master only, both.
func E3ContextExtraction(seed int64, nSources int) (Table, []E3Row) {
	mk := func() *sources.Universe {
		w := sources.NewWorld(seed, 200, 0)
		cfg := sources.DefaultConfig(seed, nSources)
		cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 0, 0, 1
		cfg.CleanShare = 1
		cfg.StaleMax = 0
		return sources.Generate(w, cfg)
	}
	tax := ontology.ProductTaxonomy()

	configs := []struct {
		name   string
		tax    *ontology.Taxonomy
		master bool
	}{
		{"no context (ablation)", nil, false},
		{"ontology only", tax, false},
		{"master data only", nil, true},
		{"ontology + master", tax, true},
	}
	var rows []E3Row
	mandatory := []string{"sku", "name", "price"}
	for _, cfg := range configs {
		u := mk()
		var master = masterFromWorld(u, len(u.World.Products))
		if !cfg.master {
			master = nil
		}
		labelled, total := 0, 0
		valid := 0.0
		repaired, drifted := 0, 0
		rng := rand.New(rand.NewSource(seed * 13))
		for _, s := range u.Sources {
			page := html.Parse(s.Payload())
			wr, err := extract.Induce(s.ID, page, cfg.tax)
			if err != nil {
				continue
			}
			// Data-context corroboration at induction time too.
			wr, tab, _, err := extract.Repair(wr, page, master, cfg.tax)
			if err != nil {
				continue
			}
			// A field counts as labelled only when the column under the
			// canonical name actually holds that property's values —
			// existence alone is gameable (any text column can be called
			// "name").
			for _, m := range mandatory {
				total++
				if columnCorrect(tab, s, m) {
					labelled++
				}
			}
			// Velocity: the site redesigns.
			s.Template.Drift(rng)
			newPage := html.Parse(s.Payload())
			valid += extract.Validate(wr, newPage)
			drifted++
			_, tab2, _, err := extract.Repair(wr, newPage, master, cfg.tax)
			if err == nil && tab2.Len() == len(s.Records) {
				repaired++
			}
		}
		row := E3Row{Config: cfg.name}
		if total > 0 {
			row.LabelledRate = float64(labelled) / float64(total)
		}
		if drifted > 0 {
			row.ValidityAfterDrift = valid / float64(drifted)
			row.RepairedRate = float64(repaired) / float64(drifted)
		}
		rows = append(rows, row)
	}
	t := Table{
		ID:      "E3",
		Title:   "Context-informed extraction and wrapper repair (Example 3)",
		Claim:   `"the extraction process can ... be 'informed' by existing integrated data ... to identify previously unknown locations and correct erroneous ones" (§2.2)`,
		Columns: []string{"configuration", "fields labelled", "validity after drift", "auto-repaired"},
	}
	for _, r := range rows {
		t.AddRow(r.Config, pct(r.LabelledRate), pct(r.ValidityAfterDrift), pct(r.RepairedRate))
	}
	t.Notes = "labelling should rise with context; repair restores full extraction regardless of drift"
	return t, rows
}

// columnCorrect checks that the extracted column named prop holds the
// source's true values for that property in at least 80% of rows.
func columnCorrect(tab *dataset.Table, s *sources.Source, prop string) bool {
	c := tab.Schema().Index(prop)
	if c < 0 || tab.Len() == 0 || tab.Len() != len(s.Records) {
		return false
	}
	hit := 0
	for i := 0; i < tab.Len(); i++ {
		want := s.Records[i].Values[prop]
		got := tab.Row(i)[c].String()
		if want != "" && got == want {
			hit++
		}
	}
	return float64(hit) >= 0.8*float64(tab.Len())
}
