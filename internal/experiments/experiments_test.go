package experiments

import (
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tab := Table{ID: "EX", Title: "demo", Claim: "c", Columns: []string{"a", "bb"}, Notes: "n"}
	tab.AddRow("1", "2")
	s := tab.Format()
	for _, want := range []string{"EX", "demo", "claim: c", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
}

func TestE1EffortShares(t *testing.T) {
	tab, rows := E1ManualVsAutomated(101, 30)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	manual, auto := rows[0], rows[1]
	// The paper's claim: manual wrangling eats 50-80% of time.
	if manual.WranglingShare < 0.5 || manual.WranglingShare > 0.85 {
		t.Errorf("manual share = %f, want within the paper's 50-80%% band", manual.WranglingShare)
	}
	if auto.WranglingShare > 0.1 {
		t.Errorf("automated share = %f, want < 10%%", auto.WranglingShare)
	}
	if auto.WranglingMin >= manual.WranglingMin/10 {
		t.Errorf("automation should cut effort by >10x: %f vs %f", auto.WranglingMin, manual.WranglingMin)
	}
	if tab.Format() == "" {
		t.Error("empty table")
	}
}

func TestE2ContextTradeoffs(t *testing.T) {
	_, rows := E2UserContexts(102, 15)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	routine, investigation := rows[0], rows[1]
	if investigation.Recall <= routine.Recall {
		t.Errorf("investigation recall %f should exceed routine %f", investigation.Recall, routine.Recall)
	}
	if routine.Sources >= investigation.Sources {
		t.Errorf("routine uses fewer sources: %d vs %d", routine.Sources, investigation.Sources)
	}
}

func TestE3ContextHelpsExtraction(t *testing.T) {
	_, rows := E3ContextExtraction(103, 8)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, both := rows[0], rows[3]
	if both.LabelledRate < none.LabelledRate {
		t.Errorf("context should not hurt labelling: %f vs %f", both.LabelledRate, none.LabelledRate)
	}
	if both.LabelledRate < 0.85 {
		t.Errorf("full-context labelling = %f, want high", both.LabelledRate)
	}
	if both.RepairedRate < 0.8 {
		t.Errorf("full-context repair rate = %f", both.RepairedRate)
	}
	// Drift must actually have broken wrappers for repair to be meaningful.
	if both.ValidityAfterDrift > 0.9 {
		t.Errorf("drift too weak: validity %f", both.ValidityAfterDrift)
	}
}

func TestE4EvidenceMonotone(t *testing.T) {
	_, rows := E4EvidenceTypes(104, 12)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	nameOnly, all := rows[0], rows[3]
	if all.F1 < nameOnly.F1 {
		t.Errorf("all-evidence F1 %f below name-only %f", all.F1, nameOnly.F1)
	}
	if all.F1 < 0.9 {
		t.Errorf("all-evidence F1 = %f, want >= 0.9", all.F1)
	}
	for _, mid := range rows[1:3] {
		if mid.F1 < nameOnly.F1-0.02 {
			t.Errorf("adding evidence (%s) lowered F1: %f vs %f", mid.Evidence, mid.F1, nameOnly.F1)
		}
	}
}

func TestE5FeedbackImproves(t *testing.T) {
	_, rows := E5PayAsYouGo(105, 10, 3, 25)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.ERF1 < first.ERF1-0.01 {
		t.Errorf("feedback should not degrade ER: %f -> %f", first.ERF1, last.ERF1)
	}
	if last.CumulativeCost <= 0 {
		t.Error("crowd work must cost")
	}
	for _, r := range rows {
		if r.TouchedSources != 0 {
			t.Errorf("batch %d re-extracted %d sources; reactions must stay scoped", r.Batch, r.TouchedSources)
		}
	}
}

func TestE6BoundedFlat(t *testing.T) {
	_, rows := E6BoundedEvaluation([]int{1000, 10000, 100000})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Equal {
			t.Errorf("answers differ at n=%d", r.Rows)
		}
	}
	small, large := rows[0], rows[2]
	if large.BoundedWork > small.BoundedWork*2 {
		t.Errorf("bounded work grew with size: %d -> %d", small.BoundedWork, large.BoundedWork)
	}
	if large.ScanWork < large.Rows {
		t.Errorf("scan work %d should cover the table %d", large.ScanWork, large.Rows)
	}
}

func TestE7ApproximationSound(t *testing.T) {
	_, rows := E7CQApproximation(107, 60, 500)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Contained {
			t.Errorf("query %s: approximation returned wrong answers", r.Query)
		}
		if r.ApproxRows > r.ExactRows {
			t.Errorf("query %s: under-approximation cannot return more rows", r.Query)
		}
	}
}

func TestE8FreshnessWinsOnPrices(t *testing.T) {
	_, rows := E8KBCvsWrangler(108, 20)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	kb, fresh := rows[0], rows[2]
	if fresh.PriceAcc <= kb.PriceAcc {
		t.Errorf("freshness fusion price acc %f should beat KBC %f", fresh.PriceAcc, kb.PriceAcc)
	}
	if kb.BrandAcc < 0.9 {
		t.Errorf("KBC should handle stable attributes: brand acc %f", kb.BrandAcc)
	}
}

func TestE9SystematicBeatsNaive(t *testing.T) {
	_, rows := E9Uncertainty(109, 400, 7)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	naive := rows[0]
	bayes := rows[3]
	if bayes.Accuracy < naive.Accuracy {
		t.Errorf("Bayesian accuracy %f below naive %f", bayes.Accuracy, naive.Accuracy)
	}
	if bayes.Brier >= naive.Brier {
		t.Errorf("Bayesian Brier %f not better than naive %f", bayes.Brier, naive.Brier)
	}
}

func TestE10IncrementalScoped(t *testing.T) {
	_, rows := E10Incremental(110, 8, 2)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IncrementalSrc != 1 {
			t.Errorf("incremental touched %d sources, want 1", r.IncrementalSrc)
		}
		if r.FullSrc < 8 {
			t.Errorf("full rerun touched %d sources, want all 8", r.FullSrc)
		}
	}
}

func TestF1ArchitectureWiring(t *testing.T) {
	tab, rows := F1Architecture(111, 10)
	if len(rows) < 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	s := tab.Format()
	for _, comp := range []string{"Data Sources", "Data Extraction", "User Context", "Data Integration", "Provenance"} {
		if !strings.Contains(s, comp) {
			t.Errorf("architecture table missing %s", comp)
		}
	}
}

func TestE5bSharedDominates(t *testing.T) {
	_, rows := E5bSharedVsSiloed(112, 10)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	baseline, pairsOnly, valuesOnly, shared := rows[0], rows[1], rows[2], rows[3]
	if shared.ERF1 < pairsOnly.ERF1-1e-9 {
		t.Errorf("shared ER F1 %f below pairs-only %f", shared.ERF1, pairsOnly.ERF1)
	}
	if shared.PriceAccuracy < valuesOnly.PriceAccuracy-1e-9 {
		t.Errorf("shared price acc %f below values-only %f", shared.PriceAccuracy, valuesOnly.PriceAccuracy)
	}
	if shared.PriceAccuracy < baseline.PriceAccuracy-1e-9 {
		t.Errorf("shared degraded price accuracy vs baseline: %f vs %f", shared.PriceAccuracy, baseline.PriceAccuracy)
	}
	if shared.Items <= pairsOnly.Items || shared.Items <= valuesOnly.Items {
		t.Error("shared regime should consume the full stream")
	}
}
