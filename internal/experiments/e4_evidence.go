package experiments

import (
	"strings"

	"repro/internal/dataset"
	"repro/internal/match"
	"repro/internal/ontology"
	"repro/internal/sources"
)

// E4Row is one evidence configuration's matching quality.
type E4Row struct {
	Evidence  string
	Precision float64
	Recall    float64
	F1        float64
}

// E4EvidenceTypes reproduces §2.3/Example 4: schema matching improves as
// evidence types are added — name similarity alone, plus instance samples
// from master data, plus the product ontology, plus all three. The
// generator's header table provides gold correspondences.
func E4EvidenceTypes(seed int64, nSources int) (Table, []E4Row) {
	w := sources.NewWorld(seed, 250, 0)
	cfg := sources.DefaultConfig(seed, nSources)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 1, 0, 0
	cfg.CleanShare = 1
	u := sources.Generate(w, cfg)

	target := dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
		dataset.Field{Name: "rating", Kind: dataset.KindFloat},
		dataset.Field{Name: "updated", Kind: dataset.KindTime},
	)
	samples := map[string][]dataset.Value{}
	for i, p := range u.World.Products {
		if i >= 80 {
			break
		}
		samples["sku"] = append(samples["sku"], dataset.String(p.SKU))
		samples["name"] = append(samples["name"], dataset.String(p.Name))
		samples["brand"] = append(samples["brand"], dataset.String(p.Brand))
		samples["price"] = append(samples["price"], dataset.Float(p.Price))
		samples["rating"] = append(samples["rating"], dataset.Float(p.Rating))
	}
	tax := ontology.ProductTaxonomy()

	configs := []struct {
		name string
		opts []match.Option
	}{
		{"name only", []match.Option{match.WithEvidence(match.Evidence{Name: true})}},
		{"name + instance", []match.Option{
			match.WithEvidence(match.Evidence{Name: true, Instance: true}),
			match.WithSamples(samples)}},
		{"name + ontology", []match.Option{
			match.WithEvidence(match.Evidence{Name: true, Ontology: true}),
			match.WithTaxonomy(tax)}},
		{"all evidence", []match.Option{
			match.WithEvidence(match.AllEvidence()),
			match.WithSamples(samples), match.WithTaxonomy(tax)}},
	}
	var rows []E4Row
	for _, c := range configs {
		m := match.NewMatcher(target, c.opts...)
		var sumP, sumR, sumF float64
		n := 0
		for _, s := range u.Sources {
			tab, err := dataset.ReadCSV(strings.NewReader(s.Payload()))
			if err != nil {
				continue
			}
			corrs, err := m.Match(tab)
			if err != nil {
				continue
			}
			gold := map[string]string{}
			for _, prop := range s.Props {
				if target.Index(prop) >= 0 {
					gold[s.Header(prop)] = prop
				}
			}
			p, r, f := match.F1(corrs, gold)
			sumP += p
			sumR += r
			sumF += f
			n++
		}
		if n > 0 {
			rows = append(rows, E4Row{Evidence: c.name, Precision: sumP / float64(n), Recall: sumR / float64(n), F1: sumF / float64(n)})
		}
	}
	t := Table{
		ID:    "E4",
		Title: "Evidence types in schema matching (Example 4)",
		Claim: `"automated techniques must be able to bring together all the available information" (§2.3)`,
		Columns: []string{"evidence", "precision", "recall", "F1"},
	}
	for _, r := range rows {
		t.AddRow(r.Evidence, f3(r.Precision), f3(r.Recall), f3(r.F1))
	}
	t.Notes = "F1 should rise monotonically toward the all-evidence row"
	return t, rows
}
