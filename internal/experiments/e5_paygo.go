package experiments

import (
	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/er"
	"repro/internal/feedback"
	"repro/internal/ontology"
	"repro/internal/sources"
	"sort"
)

// E5Row is one feedback batch's outcome.
type E5Row struct {
	Batch          int
	CumulativeFB   int
	CumulativeCost float64
	ERF1           float64
	PriceAccuracy  float64
	TouchedSources int // sources re-extracted by the reaction (should be 0)
}

// E5PayAsYouGo reproduces Example 5 / §2.4: crowd-labelled duplicate pairs
// and expert value annotations arrive in batches; each batch improves
// entity resolution and fusion, the reaction never re-extracts untouched
// sources, and every unit of payment is accounted. Ground truth for the
// crowd comes from the generator's record annotations.
func E5PayAsYouGo(seed int64, nSources, batches, pairsPerBatch int) (Table, []E5Row) {
	w := sources.NewWorld(seed, 200, 0)
	for i := 0; i < 20; i++ {
		w.Evolve(0.15)
	}
	cfg := sources.DefaultConfig(seed, nSources)
	cfg.DirtyFactor = 2.5
	cfg.CleanShare = 0
	// Harder veracity than default: many null keys and typos leave the
	// cold-start entity resolver imperfect, so feedback has headroom.
	cfg.Errors.Null = 0.12
	cfg.Errors.Typo = 0.12
	cfg.Errors.Wrong = 0.08
	cfg.Errors.Stale = 0.20
	u := sources.Generate(w, cfg)
	dc := context.NewDataContext().
		WithMaster(masterFromWorld(u, 80), "sku").
		WithTaxonomy(ontology.ProductTaxonomy())
	// Timeliness-weighted context: prices are transient, so the
	// orchestrator self-configures freshness-aware fusion.
	uc := &context.UserContext{Name: "pricewatch", Weights: map[context.Criterion]float64{
		context.Accuracy: 0.35, context.Timeliness: 0.35,
		context.Completeness: 0.15, context.Relevance: 0.15,
	}}
	wr := core.New(u, core.ProductConfig(), uc, dc)
	if _, err := wr.Run(); err != nil {
		panic("experiments: E5 run: " + err.Error())
	}
	crowd := feedback.NewCrowd(seed, 12, 0.8, 0.95, 0.05)

	truthOf := func(i int) string {
		src := u.Source(wr.UnionSourceOf(i))
		idx := wr.UnionRowInSource(i)
		if src == nil || idx >= len(src.Records) {
			return ""
		}
		return src.Records[idx].TrueID
	}
	erF1 := func() float64 {
		union := wr.Union()
		truth := make([]string, union.Len())
		for i := range truth {
			truth[i] = truthOf(i)
		}
		_, _, f1 := er.PairwiseMetrics(wr.Clusters(), truth)
		return f1
	}

	var rows []E5Row
	record := func(batch, touched int) {
		ev := wr.EvaluateProducts()
		rows = append(rows, E5Row{
			Batch:          batch,
			CumulativeFB:   wr.Feedback.Len(),
			CumulativeCost: wr.Feedback.Spent(),
			ERF1:           erF1(),
			PriceAccuracy:  ev.PriceAccuracy,
			TouchedSources: touched,
		})
	}
	record(0, 0)

	labelled := map[string]bool{}
	for b := 1; b <= batches; b++ {
		// Crowd batch: uncertainty sampling — label the candidate pairs
		// whose match score sits closest to the decision boundary (the
		// informative pairs, as in Corleone's active learning), plus the
		// highest-scoring pairs so both classes appear.
		resolver := wr.Resolver()
		union := wr.Union()
		pairs := resolver.CandidatePairs(union)
		var cands []boundaryPair
		for _, p := range pairs {
			s := resolver.Score(resolver.Features(union, p.I, p.J))
			d := s - resolver.Threshold
			if d < 0 {
				d = -d
			}
			cands = append(cands, boundaryPair{p: p, dist: d})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			if cands[i].p.I != cands[j].p.I {
				return cands[i].p.I < cands[j].p.I
			}
			return cands[i].p.J < cands[j].p.J
		})
		truths := map[string]bool{}
		for _, c := range cands {
			if len(truths) >= pairsPerBatch {
				break
			}
			ti, tj := truthOf(c.p.I), truthOf(c.p.J)
			if ti == "" && tj == "" {
				continue
			}
			key := feedback.PairKey(wr.RowKey(c.p.I), wr.RowKey(c.p.J))
			if labelled[key] {
				continue
			}
			labelled[key] = true
			truths[key] = ti == tj && ti != ""
		}
		crowd.LabelPairs(wr.Feedback, truths, 5)

		// Expert batch: annotate a few fused prices against the company's
		// own checks (value feedback shared into source trust).
		added := 0
		for _, res := range wr.Results() {
			if added >= 5 || res.Attribute != "price" {
				continue
			}
			p := u.World.Product(res.Entity)
			if p == nil {
				continue
			}
			truePrice, _ := u.World.PriceAt(p.SKU, u.World.Clock)
			if !res.Value.IsNumeric() || truePrice <= 0 {
				continue
			}
			rel := res.Value.FloatVal()/truePrice - 1
			if rel < 0 {
				rel = -rel
			}
			// Experts only annotate unambiguous values: clearly right
			// (<=1% off) or clearly wrong (>10% off, i.e. unit drift or
			// fabrication, not mere staleness).
			var kind feedback.Kind
			switch {
			case rel <= 0.01:
				kind = feedback.ValueCorrect
			case rel > 0.10:
				kind = feedback.ValueIncorrect
			default:
				continue
			}
			// One annotation blames/credits every source that supported
			// the fused value (shared assimilation: the working data knows
			// who asserted it). The cost is charged once.
			cost := 0.5
			for _, src := range wr.ClaimSupporters(res.Entity, "price") {
				wr.Feedback.Add(feedback.Item{Kind: kind, SourceID: src, Entity: res.Entity, Attribute: "price", Cost: cost})
				cost = 0
			}
			added++
		}
		stats, err := wr.ReactToFeedback()
		if err != nil {
			panic("experiments: E5 react: " + err.Error())
		}
		record(b, stats.SourcesReextracted)
	}
	t := Table{
		ID:      "E5",
		Title:   "Pay-as-you-go feedback batches (Example 5)",
		Claim:   `"feedback can trigger the system to revise ... limiting the processing to the strictly necessary data" (§2.4)`,
		Columns: []string{"batch", "feedback", "cost", "ER F1", "price acc", "re-extracted"},
	}
	for _, r := range rows {
		t.AddRow(d(r.Batch), d(r.CumulativeFB), f2(r.CumulativeCost), f3(r.ERF1), pct(r.PriceAccuracy), d(r.TouchedSources))
	}
	t.Notes = "ER F1 rises as labels arrive (constraints + rule refinement); price accuracy holds at the staleness ceiling; re-extracted stays 0 — reactions never reprocess untouched sources"
	return t, rows
}

// boundaryPair is an uncertainty-sampling candidate: a pair and its
// distance from the resolver's decision boundary.
type boundaryPair struct {
	p    er.Pair
	dist float64
}

// dominantSource returns the source contributing most rows to an entity.
func dominantSource(wr *core.Wrangler, entity string) string {
	counts := map[string]int{}
	union := wr.Union()
	best, bestN := "", 0
	for i := 0; i < union.Len(); i++ {
		if wr.EntityOf(i) != entity {
			continue
		}
		src := wr.UnionSourceOf(i)
		counts[src]++
		if counts[src] > bestN || (counts[src] == bestN && src < best) {
			best, bestN = src, counts[src]
		}
	}
	return best
}
