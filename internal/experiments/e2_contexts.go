package experiments

import (
	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/sources"
)

// E2Row is one user context's outcome.
type E2Row struct {
	Context       string
	Sources       int
	Entities      int
	Recall        float64 // completeness axis
	PriceAccuracy float64 // accuracy/timeliness axis
	NameAccuracy  float64
}

// E2UserContexts reproduces Example 2: the same universe wrangled under a
// routine price-comparison context (accuracy & timeliness first, few
// sources) and an issue-investigation context (completeness first, many
// sources) must yield different source selections and different quality
// profiles — compromise is context-relative. A single-criterion ablation
// ("accuracy-only") shows why multi-criteria weighting matters.
func E2UserContexts(seed int64, nSources int) (Table, []E2Row) {
	w := sources.NewWorld(seed, 250, 0)
	for i := 0; i < 30; i++ {
		w.Evolve(0.15)
	}
	cfg := sources.DefaultConfig(seed, nSources)
	cfg.StaleMax = 48 // make timeliness a live axis
	u := sources.Generate(w, cfg)
	dc := context.NewDataContext().
		WithMaster(masterFromWorld(u, 120), "sku").
		WithTaxonomy(ontology.ProductTaxonomy())

	// Routine price comparison: AHP elicitation — accuracy and timeliness
	// dominate, small source budget (§2.1, Example 2).
	ahpRoutine, _ := context.NewAHP(context.Accuracy, context.Timeliness, context.Completeness, context.Relevance)
	ahpRoutine.Set(context.Accuracy, context.Completeness, 5)
	ahpRoutine.Set(context.Accuracy, context.Relevance, 3)
	ahpRoutine.Set(context.Accuracy, context.Timeliness, 1)
	ahpRoutine.Set(context.Timeliness, context.Completeness, 5)
	ahpRoutine.Set(context.Timeliness, context.Relevance, 3)
	ahpRoutine.Set(context.Relevance, context.Completeness, 2)
	routine, err := context.BuildUserContext("routine", ahpRoutine, nSources/3, 0)
	if err != nil {
		panic("experiments: routine AHP inconsistent: " + err.Error())
	}

	// Issue investigation: completeness dominates, take everything.
	ahpInv, _ := context.NewAHP(context.Accuracy, context.Timeliness, context.Completeness, context.Relevance)
	ahpInv.Set(context.Completeness, context.Accuracy, 5)
	ahpInv.Set(context.Completeness, context.Timeliness, 5)
	ahpInv.Set(context.Completeness, context.Relevance, 3)
	ahpInv.Set(context.Relevance, context.Accuracy, 2)
	ahpInv.Set(context.Relevance, context.Timeliness, 2)
	investigation, err := context.BuildUserContext("investigation", ahpInv, 0, 0)
	if err != nil {
		panic("experiments: investigation AHP inconsistent: " + err.Error())
	}

	// Ablation: accuracy-only hard-wired selection.
	accuracyOnly := &context.UserContext{Name: "accuracy-only (ablation)",
		Weights:    map[context.Criterion]float64{context.Accuracy: 1},
		MaxSources: nSources / 3}

	var rows []E2Row
	for _, uc := range []*context.UserContext{routine, investigation, accuracyOnly} {
		wr := core.New(u, core.ProductConfig(), uc, dc)
		if _, err := wr.Run(); err != nil {
			panic("experiments: E2 run: " + err.Error())
		}
		ev := wr.EvaluateProducts()
		rows = append(rows, E2Row{
			Context:       uc.Name,
			Sources:       len(wr.SelectedSources()),
			Entities:      ev.Entities,
			Recall:        ev.EntityRecall,
			PriceAccuracy: ev.PriceAccuracy,
			NameAccuracy:  ev.NameAccuracy,
		})
	}
	t := Table{
		ID:    "E2",
		Title: "User contexts drive different compromises (Example 2)",
		Claim: `"routine price comparison may ... prefer accuracy and timeliness to completeness ... issue investigation may require a more complete picture" (§2.1)`,
		Columns: []string{"context", "sources", "entities", "recall", "price acc", "name acc"},
	}
	for _, r := range rows {
		t.AddRow(r.Context, d(r.Sources), d(r.Entities), pct(r.Recall), pct(r.PriceAccuracy), pct(r.NameAccuracy))
	}
	t.Notes = "routine should win price accuracy; investigation should win recall"
	return t, rows
}
