// Package experiments implements the quantitative studies listed in
// DESIGN.md §3. The source paper is a vision paper with no result tables,
// so each experiment operationalises one of its measurable claims; the
// same functions back cmd/experiments (human-readable tables) and the
// root bench_test.go (testing.B benchmarks).
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result in paper-table form.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper text being tested
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned monospace text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
