package experiments

import (
	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/er"
	"repro/internal/feedback"
	"repro/internal/ontology"
	"repro/internal/sources"
	"sort"
)

// E5bRow is one assimilation regime's outcome at the same feedback budget.
type E5bRow struct {
	Regime        string
	Items         int
	ERF1          float64
	PriceAccuracy float64
}

// E5bSharedVsSiloed is the §3.2 ablation DESIGN.md §5 calls out: the same
// feedback stream (duplicate pair labels + value annotations) is
// assimilated (a) shared across all components — the paper's proposal
// [6] — versus (b) siloed, each feedback type reaching only "its" task,
// the state of the art the paper criticises ("a single type of feedback
// is used to support a single data management task"). Equal payment,
// different information flow.
func E5bSharedVsSiloed(seed int64, nSources int) (Table, []E5bRow) {
	build := func() (*core.Wrangler, *sources.Universe) {
		w := sources.NewWorld(seed, 200, 0)
		for i := 0; i < 20; i++ {
			w.Evolve(0.15)
		}
		cfg := sources.DefaultConfig(seed, nSources)
		cfg.DirtyFactor = 2.5
		cfg.CleanShare = 0
		cfg.Errors.Null = 0.12
		cfg.Errors.Typo = 0.12
		cfg.Errors.Wrong = 0.10
		u := sources.Generate(w, cfg)
		dc := context.NewDataContext().
			WithMaster(masterFromWorld(u, 80), "sku").
			WithTaxonomy(ontology.ProductTaxonomy())
		uc := &context.UserContext{Name: "pricewatch", Weights: map[context.Criterion]float64{
			context.Accuracy: 0.35, context.Timeliness: 0.35,
			context.Completeness: 0.15, context.Relevance: 0.15,
		}}
		wr := core.New(u, core.ProductConfig(), uc, dc)
		if _, err := wr.Run(); err != nil {
			panic("experiments: E5b run: " + err.Error())
		}
		return wr, u
	}

	// Generate one canonical feedback stream against a reference run:
	// expert pair labels on boundary pairs + value annotations on fused
	// prices. The stream is replayed identically into each regime.
	ref, u := build()
	var stream []feedback.Item
	// Boundary-order the candidate pairs (uncertainty sampling): labels on
	// pairs the current rule is unsure about carry the most information.
	resolver := ref.Resolver()
	union := ref.Union()
	var bps []boundaryPair
	for _, p := range resolver.CandidatePairs(union) {
		s := resolver.Score(resolver.Features(union, p.I, p.J))
		d := s - resolver.Threshold
		if d < 0 {
			d = -d
		}
		bps = append(bps, boundaryPair{p: p, dist: d})
	}
	sort.Slice(bps, func(i, j int) bool {
		if bps[i].dist != bps[j].dist {
			return bps[i].dist < bps[j].dist
		}
		if bps[i].p.I != bps[j].p.I {
			return bps[i].p.I < bps[j].p.I
		}
		return bps[i].p.J < bps[j].p.J
	})
	pairs := make([]er.Pair, len(bps))
	for i, bp := range bps {
		pairs[i] = bp.p
	}
	truthOf := func(wr *core.Wrangler, i int) string {
		src := u.Source(wr.UnionSourceOf(i))
		idx := wr.UnionRowInSource(i)
		if src == nil || idx >= len(src.Records) {
			return ""
		}
		return src.Records[idx].TrueID
	}
	added := 0
	for _, p := range pairs {
		if added >= 40 {
			break
		}
		ti, tj := truthOf(ref, p.I), truthOf(ref, p.J)
		if ti == "" && tj == "" {
			continue
		}
		kind := feedback.NotDuplicatePair
		if ti == tj && ti != "" {
			kind = feedback.DuplicatePair
		}
		stream = append(stream, feedback.Item{
			Kind: kind, PairKey: feedback.PairKey(ref.RowKey(p.I), ref.RowKey(p.J)), Cost: 0.5,
		})
		added++
	}
	valAdded := 0
	for _, res := range ref.Results() {
		if valAdded >= 40 || res.Attribute != "price" {
			continue
		}
		p := u.World.Product(res.Entity)
		if p == nil || !res.Value.IsNumeric() {
			continue
		}
		truePrice, _ := u.World.PriceAt(p.SKU, u.World.Clock)
		if truePrice <= 0 {
			continue
		}
		rel := res.Value.FloatVal()/truePrice - 1
		if rel < 0 {
			rel = -rel
		}
		// Experts only annotate unambiguous values: clearly right
		// (<=1% off) or clearly wrong (>10% off, i.e. unit drift or
		// fabrication, not mere staleness).
		var kind feedback.Kind
		switch {
		case rel <= 0.01:
			kind = feedback.ValueCorrect
		case rel > 0.10:
			kind = feedback.ValueIncorrect
		default:
			continue
		}
		cost := 0.5
		for _, src := range ref.ClaimSupporters(res.Entity, "price") {
			stream = append(stream, feedback.Item{
				Kind: kind, SourceID: src,
				Entity: res.Entity, Attribute: "price", Cost: cost,
			})
			cost = 0
		}
		valAdded++
	}

	erF1 := func(wr *core.Wrangler) float64 {
		truth := make([]string, wr.Union().Len())
		for i := range truth {
			truth[i] = truthOf(wr, i)
		}
		_, _, f1 := er.PairwiseMetrics(wr.Clusters(), truth)
		return f1
	}

	regimes := []struct {
		name   string
		filter func(feedback.Item) bool
	}{
		{"no feedback (baseline)", func(feedback.Item) bool { return false }},
		{"siloed: pairs->ER only", func(it feedback.Item) bool {
			return it.Kind == feedback.DuplicatePair || it.Kind == feedback.NotDuplicatePair
		}},
		{"siloed: values->fusion only", func(it feedback.Item) bool {
			return it.Kind == feedback.ValueCorrect || it.Kind == feedback.ValueIncorrect
		}},
		{"shared (all components)", func(feedback.Item) bool { return true }},
	}
	var rows []E5bRow
	for _, reg := range regimes {
		wr, _ := build()
		n := 0
		for _, it := range stream {
			if reg.filter(it) {
				wr.Feedback.Add(it)
				n++
			}
		}
		if n > 0 {
			if _, err := wr.ReactToFeedback(); err != nil {
				panic("experiments: E5b react: " + err.Error())
			}
		}
		ev := wr.EvaluateProducts()
		rows = append(rows, E5bRow{Regime: reg.name, Items: n, ERF1: erF1(wr), PriceAccuracy: ev.PriceAccuracy})
	}
	t := Table{
		ID:      "E5b",
		Title:   "Shared vs siloed feedback assimilation (ablation, §3.2)",
		Claim:   `"in these proposals a single type of feedback is used to support a single data management task ... there seems to be significant scope for feedback to be integrated into all activities" (§3.2)`,
		Columns: []string{"regime", "items used", "ER F1", "price acc"},
	}
	for _, r := range rows {
		t.AddRow(r.Regime, d(r.Items), f3(r.ERF1), pct(r.PriceAccuracy))
	}
	t.Notes = "shared assimilation matches the best silo on each axis simultaneously with the same stream"
	return t, rows
}
