package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/kbc"
	"repro/internal/ontology"
	"repro/internal/sources"
	"repro/internal/uncertainty"
)

// E8Row compares fusion strategies on one attribute class.
type E8Row struct {
	Strategy     string
	PriceAcc     float64 // transient attribute
	BrandAcc     float64 // stable attribute
}

// E8KBCvsWrangler reproduces §3.1: redundancy-based KBC fusion works for
// slowly-changing facts (brand) but fails on transient data (prices) where
// stale values are frequent; freshness- and trust-aware fusion does not.
func E8KBCvsWrangler(seed int64, nSources int) (Table, []E8Row) {
	w := sources.NewWorld(seed, 200, 0)
	for i := 0; i < 60; i++ {
		w.Evolve(0.08) // steady churn builds deep price history
	}
	cfg := sources.DefaultConfig(seed, nSources)
	cfg.StaleMax = 24 // snapshots up to 24h old: redundantly stale prices
	cfg.Errors.Stale = 0.3
	u := sources.Generate(w, cfg)

	// Build claims directly from source records (both systems see the
	// same evidence).
	var claims []fusion.Claim
	for _, s := range u.Sources {
		for _, rec := range s.Records {
			if rec.TrueID == "" {
				continue
			}
			asOf := sources.AsOf(s.SnapshotClock)
			for _, attr := range []string{"price", "brand"} {
				v, ok := rec.Values[attr]
				if !ok || v == "" {
					continue
				}
				claims = append(claims, fusion.Claim{
					Entity: rec.TrueID, Attribute: attr,
					Value: dataset.Parse(v), SourceID: s.ID, AsOf: asOf,
				})
			}
		}
	}
	truth := func(entity, attr string) (dataset.Value, bool) {
		p := u.World.Product(entity)
		if p == nil {
			return dataset.Null(), false
		}
		switch attr {
		case "price":
			price, _ := u.World.PriceAt(entity, u.World.Clock)
			return dataset.Float(price), true
		case "brand":
			return dataset.String(p.Brand), true
		}
		return dataset.Null(), false
	}
	split := func(results []fusion.Result) (float64, float64) {
		var price, brand []fusion.Result
		for _, r := range results {
			if r.Attribute == "price" {
				price = append(price, r)
			} else {
				brand = append(brand, r)
			}
		}
		pa, _ := fusion.Accuracy(price, truth)
		ba, _ := fusion.Accuracy(brand, truth)
		return pa, ba
	}

	var rows []E8Row
	// KBC baseline.
	kb := kbc.Build(claims)
	var kbPrice, kbBrand []fusion.Result
	for _, f := range kb.Facts() {
		r := fusion.Result{Entity: f.Entity, Attribute: f.Attribute, Value: f.Value}
		if f.Attribute == "price" {
			kbPrice = append(kbPrice, r)
		} else {
			kbBrand = append(kbBrand, r)
		}
	}
	pa, _ := fusion.Accuracy(kbPrice, truth)
	ba, _ := fusion.Accuracy(kbBrand, truth)
	rows = append(rows, E8Row{Strategy: "KBC redundancy (majority)", PriceAcc: pa, BrandAcc: ba})

	// Trust-based truth discovery (no freshness).
	tf := fusion.Fuse(claims, fusion.DefaultOptions(fusion.TruthFinder))
	pa, ba = split(tf)
	rows = append(rows, E8Row{Strategy: "truth discovery (trust)", PriceAcc: pa, BrandAcc: ba})

	// Freshness-aware fusion (the wrangler's transient-attribute policy).
	opts := fusion.DefaultOptions(fusion.FreshnessWeighted)
	opts.Now = sources.AsOf(u.World.Clock)
	opts.HalfLife = 4 * time.Hour
	fr := fusion.Fuse(claims, opts)
	pa, ba = split(fr)
	rows = append(rows, E8Row{Strategy: "freshness-aware (wrangler)", PriceAcc: pa, BrandAcc: ba})

	t := Table{
		ID:    "E8",
		Title: "KBC redundancy vs context-aware fusion on transient data",
		Claim: `"KBC ... leans heavily on the assumption that correct facts occur frequently ... the need to support highly transient information (e.g., pricing) means ..." (§3.1)`,
		Columns: []string{"strategy", "price accuracy", "brand accuracy"},
	}
	for _, r := range rows {
		t.AddRow(r.Strategy, pct(r.PriceAcc), pct(r.BrandAcc))
	}
	t.Notes = "all strategies agree on stable brand; only freshness-aware recovers current prices"
	return t, rows
}

// E9Row is one combination rule's calibration result.
type E9Row struct {
	Method   string
	Accuracy float64
	Brier    float64
}

// E9Uncertainty reproduces §4.2: explicit, systematic uncertainty
// combination beats ad-hoc counting. Synthetic evidence: per hypothesis,
// sources with known reliabilities vote; Bayesian/DS combination uses the
// reliabilities, naive majority ignores them.
func E9Uncertainty(seed int64, hypotheses, sourcesN int) (Table, []E9Row) {
	rng := rand.New(rand.NewSource(seed))
	rels := make([]float64, sourcesN)
	for i := range rels {
		rels[i] = 0.55 + rng.Float64()*0.4
	}
	type obs struct {
		truth bool
		ev    []uncertainty.Evidence
	}
	cases := make([]obs, hypotheses)
	for i := range cases {
		truth := rng.Float64() < 0.5
		ev := make([]uncertainty.Evidence, sourcesN)
		for j := 0; j < sourcesN; j++ {
			correct := rng.Float64() < rels[j]
			ev[j] = uncertainty.Evidence{Supports: correct == truth, Reliability: rels[j]}
		}
		cases[i] = obs{truth: truth, ev: ev}
	}
	outcomes := make([]bool, hypotheses)
	naive := make([]float64, hypotheses)
	bayes := make([]float64, hypotheses)
	pool := make([]float64, hypotheses)
	ds := make([]float64, hypotheses)
	for i, c := range cases {
		outcomes[i] = c.truth
		yes := 0
		for _, e := range c.ev {
			if e.Supports {
				yes++
			}
		}
		naive[i] = float64(yes) / float64(len(c.ev))
		b, _ := uncertainty.BayesCombine(0.5, c.ev)
		bayes[i] = b
		p, _ := uncertainty.PoolCombine(c.ev)
		pool[i] = p
		m, _, _ := uncertainty.DSCombine(c.ev)
		// Pignistic-style point estimate: belief + half the ignorance.
		ds[i] = m.T + m.U/2
	}
	score := func(name string, preds []float64) E9Row {
		correct := 0
		for i, p := range preds {
			if (p >= 0.5) == outcomes[i] {
				correct++
			}
		}
		brier, _ := uncertainty.BrierScore(preds, outcomes)
		return E9Row{Method: name, Accuracy: float64(correct) / float64(len(preds)), Brier: brier}
	}
	rows := []E9Row{
		score("naive vote share (ablation)", naive),
		score("linear opinion pool", pool),
		score("Dempster-Shafer", ds),
		score("Bayesian (reliabilities)", bayes),
	}
	t := Table{
		ID:    "E9",
		Title: "Systematic uncertainty combination vs ad-hoc counting",
		Claim: `"uncertainty is represented explicitly and reasoned with systematically, so that well informed decisions can build on a sound understanding of the available evidence" (§4.2)`,
		Columns: []string{"method", "decision accuracy", "Brier score (lower better)"},
	}
	for _, r := range rows {
		t.AddRow(r.Method, pct(r.Accuracy), f3(r.Brier))
	}
	t.Notes = "reliability-aware combination should dominate the naive vote"
	return t, rows
}

// E10Row is one maintenance event's cost under both regimes.
type E10Row struct {
	Event          string
	IncrementalSrc int
	FullSrc        int
	IncrementalMs  float64
	FullMs         float64
}

// E10Incremental reproduces the §2.4/§4.2 incremental-processing
// requirement: a stream of churn and feedback events is processed by
// provenance-scoped recomputation vs full reruns.
func E10Incremental(seed int64, nSources, events int) (Table, []E10Row) {
	w := sources.NewWorld(seed, 200, 0)
	for i := 0; i < 10; i++ {
		w.Evolve(0.1)
	}
	cfg := sources.DefaultConfig(seed, nSources)
	u := sources.Generate(w, cfg)
	dc := context.NewDataContext().
		WithMaster(masterFromWorld(u, 80), "sku").
		WithTaxonomy(ontology.ProductTaxonomy())
	wr := core.New(u, core.ProductConfig(), nil, dc)
	if _, err := wr.Run(); err != nil {
		panic("experiments: E10 run: " + err.Error())
	}
	var rows []E10Row
	for e := 0; e < events; e++ {
		wr.EvolveWorld(0.2)
		srcID := u.Sources[e%len(u.Sources)].ID
		inc, err := wr.RefreshSource(srcID)
		if err != nil {
			panic("experiments: E10 refresh: " + err.Error())
		}
		full, err := wr.FullRerun()
		if err != nil {
			panic("experiments: E10 full: " + err.Error())
		}
		rows = append(rows, E10Row{
			Event:          fmt.Sprintf("churn+refresh %s", srcID),
			IncrementalSrc: inc.SourcesReextracted,
			FullSrc:        full.SourcesReextracted,
			IncrementalMs:  float64(inc.Duration.Microseconds()) / 1000,
			FullMs:         float64(full.Duration.Microseconds()) / 1000,
		})
	}
	t := Table{
		ID:    "E10",
		Title: "Incremental (provenance-scoped) vs full recomputation",
		Claim: `"reactions do not trigger a re-processing of all datasets ... but rather limit the processing to the strictly necessary data" (§2.4)`,
		Columns: []string{"event", "inc sources", "full sources", "inc ms", "full ms"},
	}
	for _, r := range rows {
		t.AddRow(r.Event, d(r.IncrementalSrc), d(r.FullSrc), f2(r.IncrementalMs), f2(r.FullMs))
	}
	t.Notes = "incremental touches 1 source per event; full touches all. Wall-clock converges at small scale because both share the integration tail (ER over the union); the touched-source count is the quantity that scales with source volume"
	return t, rows
}

// F1Row summarises the end-to-end architecture run.
type F1Row struct {
	Component string
	Detail    string
}

// F1Architecture exercises the Figure-1 wiring end to end and reports
// what each component produced — the live reproduction of the paper's
// only figure.
func F1Architecture(seed int64, nSources int) (Table, []F1Row) {
	w := sources.NewWorld(seed, 250, 0)
	for i := 0; i < 25; i++ {
		w.Evolve(0.15)
	}
	cfg := sources.DefaultConfig(seed, nSources)
	u := sources.Generate(w, cfg)
	dc := context.NewDataContext().
		WithMaster(masterFromWorld(u, 100), "sku").
		WithTaxonomy(ontology.ProductTaxonomy())
	ahp, _ := context.NewAHP(context.Accuracy, context.Completeness, context.Timeliness, context.Relevance)
	ahp.Set(context.Accuracy, context.Completeness, 2)
	ahp.Set(context.Accuracy, context.Timeliness, 2)
	ahp.Set(context.Accuracy, context.Relevance, 3)
	uc, err := context.BuildUserContext("figure-1", ahp, 0, 0)
	if err != nil {
		panic("experiments: F1 AHP: " + err.Error())
	}
	wr := core.New(u, core.ProductConfig(), uc, dc)
	out, err := wr.Run()
	if err != nil {
		panic("experiments: F1 run: " + err.Error())
	}
	ev := wr.EvaluateProducts()
	rows := []F1Row{
		{"Data Sources", fmt.Sprintf("%d sources (csv/json/html), world clock %d", len(u.Sources), u.World.Clock)},
		{"Data Extraction", fmt.Sprintf("%d rows extracted, %d wrapper repairs", wr.LastStats.RowsExtracted, wr.LastStats.WrapperRepairs)},
		{"Auxiliary Data", fmt.Sprintf("%v", dc.EvidenceInventory())},
		{"User Context", fmt.Sprintf("%s (acc %.2f, compl %.2f, time %.2f, rel %.2f)", uc.Name,
			uc.Weight(context.Accuracy), uc.Weight(context.Completeness), uc.Weight(context.Timeliness), uc.Weight(context.Relevance))},
		{"Source Selection", fmt.Sprintf("%d of %d sources selected", wr.LastStats.SourcesSelected, wr.LastStats.SourcesProcessed)},
		{"Data Integration", fmt.Sprintf("%d union rows -> %d entities", wr.Union().Len(), out.Len())},
		{"Quality", fmt.Sprintf("precision %.3f, recall %.3f, price acc %.3f", ev.EntityPrecision, ev.EntityRecall, ev.PriceAccuracy)},
		{"Provenance", fmt.Sprintf("%d working-data artefacts", wr.Prov.Len())},
	}
	t := Table{
		ID:      "F1",
		Title:   "Abstract wrangling architecture, end to end (Figure 1)",
		Claim:   "Figure 1: Data Sources -> Extraction -> Integration -> Wrangled Data over shared Working Data",
		Columns: []string{"component", "result"},
	}
	for _, r := range rows {
		t.AddRow(r.Component, r.Detail)
	}
	return t, rows
}
