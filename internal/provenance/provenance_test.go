package provenance

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	g := NewGraph()
	src := Ref{KindSource, "s1"}
	ext := Ref{KindExtraction, "e1"}
	rec := g.Put(ext, "extract.Run", []Ref{src}, "")
	if rec.Step != 1 {
		t.Error("first step should be 1")
	}
	got := g.Get(ext)
	if got == nil || got.Component != "extract.Run" || len(got.Inputs) != 1 {
		t.Fatalf("Get = %+v", got)
	}
	if g.Get(Ref{KindSource, "nope"}) != nil {
		t.Error("unknown ref should be nil")
	}
	if g.Len() != 1 {
		t.Error("Len wrong")
	}
}

func pipeline(g *Graph) {
	s1 := Ref{KindSource, "s1"}
	s2 := Ref{KindSource, "s2"}
	w1 := Ref{KindWrapper, "w1"}
	e1 := Ref{KindExtraction, "e1"}
	e2 := Ref{KindExtraction, "e2"}
	m := Ref{KindMapping, "m1"}
	f := Ref{KindFusion, "wrangled"}
	g.Put(w1, "extract.Induce", []Ref{s1}, "")
	g.Put(e1, "extract.Run", []Ref{s1, w1}, "")
	g.Put(e2, "extract.Run", []Ref{s2}, "")
	g.Put(m, "mapping.Generate", []Ref{e1, e2}, "")
	g.Put(f, "fusion.Fuse", []Ref{m}, "")
}

func TestAffected(t *testing.T) {
	g := NewGraph()
	pipeline(g)
	aff := g.Affected(Ref{KindSource, "s1"})
	ids := refIDs(aff)
	for _, want := range []string{"w1", "e1", "m1", "wrangled"} {
		if !strings.Contains(ids, want) {
			t.Errorf("affected missing %s: %s", want, ids)
		}
	}
	if strings.Contains(ids, "e2") {
		t.Error("e2 should not be affected by s1")
	}
	// Changing s2 touches only e2, m1, wrangled.
	aff2 := g.Affected(Ref{KindSource, "s2"})
	if len(aff2) != 3 {
		t.Errorf("affected(s2) = %v", aff2)
	}
}

func TestAffectedIDsScopesByKind(t *testing.T) {
	g := NewGraph()
	pipeline(g)
	got := g.AffectedIDs(KindExtraction, Ref{KindSource, "s1"})
	if len(got) != 1 || got[0] != "e1" {
		t.Errorf("AffectedIDs(extraction, s1) = %v, want [e1]", got)
	}
	if got := g.AffectedIDs(KindFusion, Ref{KindSource, "s1"}); len(got) != 1 || got[0] != "wrangled" {
		t.Errorf("AffectedIDs(fusion, s1) = %v, want [wrangled]", got)
	}
	if got := g.AffectedIDs(KindWrapper, Ref{KindSource, "s2"}); len(got) != 0 {
		t.Errorf("AffectedIDs(wrapper, s2) = %v, want none", got)
	}
}

func TestAffectedExcludesSelf(t *testing.T) {
	g := NewGraph()
	pipeline(g)
	for _, r := range g.Affected(Ref{KindSource, "s1"}) {
		if r == (Ref{KindSource, "s1"}) {
			t.Error("changed ref should not be in affected set")
		}
	}
}

func TestLineageAndSources(t *testing.T) {
	g := NewGraph()
	pipeline(g)
	lin := refIDs(g.Lineage(Ref{KindFusion, "wrangled"}))
	for _, want := range []string{"s1", "s2", "w1", "e1", "e2", "m1"} {
		if !strings.Contains(lin, want) {
			t.Errorf("lineage missing %s: %s", want, lin)
		}
	}
	srcs := g.Sources(Ref{KindFusion, "wrangled"})
	if len(srcs) != 2 {
		t.Errorf("sources = %v", srcs)
	}
}

func TestReplaceDerivation(t *testing.T) {
	g := NewGraph()
	pipeline(g)
	// Re-derive e1 from s2 only; s1 should no longer affect e1.
	g.Put(Ref{KindExtraction, "e1"}, "extract.Run", []Ref{{KindSource, "s2"}}, "repaired")
	ids := refIDs(g.Affected(Ref{KindSource, "s1"}))
	if strings.Contains(ids, "e1") {
		t.Errorf("e1 still affected by s1 after rederivation: %s", ids)
	}
	ids2 := refIDs(g.Affected(Ref{KindSource, "s2"}))
	if !strings.Contains(ids2, "e1") {
		t.Error("e1 should now depend on s2")
	}
}

func TestDependentsSorted(t *testing.T) {
	g := NewGraph()
	s := Ref{KindSource, "s"}
	g.Put(Ref{KindExtraction, "b"}, "x", []Ref{s}, "")
	g.Put(Ref{KindExtraction, "a"}, "x", []Ref{s}, "")
	deps := g.Dependents(s)
	if len(deps) != 2 || deps[0].ID != "a" || deps[1].ID != "b" {
		t.Errorf("Dependents = %v", deps)
	}
}

func TestDescribe(t *testing.T) {
	g := NewGraph()
	pipeline(g)
	d := g.Describe(Ref{KindFusion, "wrangled"})
	if !strings.Contains(d, "fusion.Fuse") || !strings.Contains(d, "mapping:m1") {
		t.Errorf("Describe = %s", d)
	}
	if !strings.Contains(g.Describe(Ref{KindSource, "zz"}), "unknown") {
		t.Error("unknown describe should say so")
	}
}

func TestConcurrentAccess(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := Ref{KindSource, fmt.Sprintf("s%d", i)}
			ext := Ref{KindExtraction, fmt.Sprintf("e%d", i)}
			g.Put(ext, "extract.Run", []Ref{src}, "")
			g.Affected(src)
			g.Lineage(ext)
		}(i)
	}
	wg.Wait()
	if g.Len() != 20 {
		t.Errorf("Len = %d, want 20", g.Len())
	}
}

func refIDs(refs []Ref) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.ID
	}
	return strings.Join(parts, ",")
}
