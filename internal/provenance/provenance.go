// Package provenance tracks where every working-data item came from and
// which components touched it. The paper (§4.2) calls for a uniform
// representation of diverse working data — extraction rules, mappings,
// feedback, quality annotations — "along with their associated quality
// annotations and uncertainties"; provenance records are that common spine,
// and the dependency graph over them is what enables incremental,
// feedback-scoped reprocessing (§2.4).
package provenance

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies working-data artefacts.
type Kind string

// Artefact kinds found in the working-data store.
const (
	KindSource     Kind = "source"     // a raw data source
	KindExtraction Kind = "extraction" // the output of a wrapper on a source
	KindWrapper    Kind = "wrapper"    // an induced wrapper
	KindMatch      Kind = "match"      // a schema match
	KindMapping    Kind = "mapping"    // a generated mapping
	KindCluster    Kind = "cluster"    // an entity-resolution cluster set
	KindFusion     Kind = "fusion"     // a fused (wrangled) dataset
	KindQuality    Kind = "quality"    // a quality analysis result
	KindFeedback   Kind = "feedback"   // a user/crowd feedback item
)

// Ref identifies an artefact: kind plus a stable identifier.
type Ref struct {
	Kind Kind
	ID   string
}

// String renders the ref as "kind:id".
func (r Ref) String() string { return string(r.Kind) + ":" + r.ID }

// Record describes one derivation: an artefact, the component that produced
// it, its direct inputs, and an optional logical timestamp (monotonically
// assigned by the graph).
type Record struct {
	Artefact  Ref
	Component string // e.g. "extract.Induce", "fusion.Fuse"
	Inputs    []Ref
	Step      uint64 // logical time of derivation
	Note      string
}

// Graph is a thread-safe provenance store: a DAG from inputs to derived
// artefacts. Re-registering an artefact replaces its derivation (the new
// record gets a later step).
type Graph struct {
	mu      sync.RWMutex
	records map[Ref]*Record
	rdeps   map[Ref]map[Ref]bool // input -> set of artefacts derived from it
	step    uint64
}

// NewGraph returns an empty provenance graph.
func NewGraph() *Graph {
	return &Graph{records: make(map[Ref]*Record), rdeps: make(map[Ref]map[Ref]bool)}
}

// NewGraphFrom returns an empty graph whose logical clock resumes from
// step. Replacing a graph mid-lifecycle (FullRerun) must not rewind
// time: artefacts stamped with the old graph's steps — published
// snapshot versions in particular — stay strictly older than anything
// the new graph derives.
func NewGraphFrom(step uint64) *Graph {
	g := NewGraph()
	g.step = step
	return g
}

// Put registers (or replaces) the derivation of an artefact.
func (g *Graph) Put(artefact Ref, component string, inputs []Ref, note string) *Record {
	g.mu.Lock()
	defer g.mu.Unlock()
	if old, ok := g.records[artefact]; ok {
		for _, in := range old.Inputs {
			delete(g.rdeps[in], artefact)
		}
	}
	g.step++
	rec := &Record{Artefact: artefact, Component: component, Inputs: append([]Ref(nil), inputs...), Step: g.step, Note: note}
	g.records[artefact] = rec
	for _, in := range inputs {
		if g.rdeps[in] == nil {
			g.rdeps[in] = make(map[Ref]bool)
		}
		g.rdeps[in][artefact] = true
	}
	return rec
}

// Step returns the logical time of the most recent derivation — the
// graph's current clock. A served snapshot stamped with this value can be
// traced back to exactly the lineage state that produced it.
func (g *Graph) Step() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.step
}

// Get returns the derivation record for the artefact, or nil.
func (g *Graph) Get(artefact Ref) *Record {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.records[artefact]
}

// Len returns the number of registered artefacts.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.records)
}

// Dependents returns the artefacts directly derived from the given one,
// sorted for determinism.
func (g *Graph) Dependents(of Ref) []Ref {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortRefs(g.rdeps[of])
}

// Affected returns every artefact transitively derived from any of the
// given refs (excluding the refs themselves), sorted. This is the set that
// must be recomputed when those inputs change — the paper's requirement
// that feedback reactions "limit the processing to the strictly necessary
// data" (§2.4).
func (g *Graph) Affected(changed ...Ref) []Ref {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[Ref]bool)
	var frontier []Ref
	frontier = append(frontier, changed...)
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for dep := range g.rdeps[next] {
			if !seen[dep] {
				seen[dep] = true
				frontier = append(frontier, dep)
			}
		}
	}
	for _, c := range changed {
		delete(seen, c)
	}
	return sortRefs(seen)
}

// AffectedIDs is the scoped form of Affected the reaction planner uses:
// it returns the ids (sorted) of affected artefacts of exactly one kind.
// Asking "which extractions does this source churn invalidate" bounds an
// incremental diff to the artefacts provenance actually implicates,
// instead of rescanning the corpus — the §2.4 requirement made queryable.
func (g *Graph) AffectedIDs(kind Kind, changed ...Ref) []string {
	var out []string
	for _, r := range g.Affected(changed...) {
		if r.Kind == kind {
			out = append(out, r.ID)
		}
	}
	return out
}

// Lineage returns the transitive inputs of an artefact (excluding itself),
// sorted — "where did this wrangled value come from".
func (g *Graph) Lineage(of Ref) []Ref {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(r Ref) {
		rec := g.records[r]
		if rec == nil {
			return
		}
		for _, in := range rec.Inputs {
			if !seen[in] {
				seen[in] = true
				walk(in)
			}
		}
	}
	walk(of)
	return sortRefs(seen)
}

// Sources returns the subset of an artefact's lineage with kind
// KindSource — the raw origins of a wrangled item.
func (g *Graph) Sources(of Ref) []Ref {
	var out []Ref
	for _, r := range g.Lineage(of) {
		if r.Kind == KindSource {
			out = append(out, r)
		}
	}
	return out
}

// RecordsSince returns a copy of every derivation record with Step >
// step, sorted by step ascending — the delta a durable log appends per
// publish. Steps are unique (one per Put), so the order is total, and a
// replayed Apply of successive deltas reconstructs the graph exactly:
// a record replaced after `step` shows up once, at its new step, and
// overwrites the stale derivation on apply.
func (g *Graph) RecordsSince(step uint64) []Record {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Record
	for _, rec := range g.records {
		if rec.Step > step {
			cp := *rec
			cp.Inputs = append([]Ref(nil), rec.Inputs...)
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// Apply installs replayed records verbatim — each keeps its recorded
// step, unlike Put which stamps the clock — with the same replacement
// semantics as Put, and advances the clock to cover both the applied
// records and the given floor (the step a restored snapshot was
// published at; a graph reset by FullRerun can sit ahead of its newest
// record). Records must be applied in the order RecordsSince returned
// them so replacements land last.
func (g *Graph) Apply(recs []Record, step uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range recs {
		if old, ok := g.records[r.Artefact]; ok {
			for _, in := range old.Inputs {
				delete(g.rdeps[in], r.Artefact)
			}
		}
		cp := r
		cp.Inputs = append([]Ref(nil), r.Inputs...)
		g.records[r.Artefact] = &cp
		for _, in := range cp.Inputs {
			if g.rdeps[in] == nil {
				g.rdeps[in] = make(map[Ref]bool)
			}
			g.rdeps[in][r.Artefact] = true
		}
		if cp.Step > g.step {
			g.step = cp.Step
		}
	}
	if step > g.step {
		g.step = step
	}
}

// Dump renders every derivation record — artefact, component, inputs,
// step and note — one line each, sorted by artefact ref. The rendering
// is stable: two graphs that recorded the same derivations in the same
// order dump identically, which is what the determinism harness uses to
// assert that a sharded integration derives exactly what a sequential
// one does.
func (g *Graph) Dump() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	set := make(map[Ref]bool, len(g.records))
	for r := range g.records {
		set[r] = true
	}
	var b strings.Builder
	for _, r := range sortRefs(set) {
		rec := g.records[r]
		ins := make([]string, len(rec.Inputs))
		for i, in := range rec.Inputs {
			ins[i] = in.String()
		}
		fmt.Fprintf(&b, "%s ← %s(%s) @%d %s\n", r, rec.Component, strings.Join(ins, ", "), rec.Step, rec.Note)
	}
	return b.String()
}

// Describe renders a one-line lineage summary for diagnostics.
func (g *Graph) Describe(of Ref) string {
	rec := g.Get(of)
	if rec == nil {
		return of.String() + " (unknown)"
	}
	ins := make([]string, len(rec.Inputs))
	for i, r := range rec.Inputs {
		ins[i] = r.String()
	}
	return fmt.Sprintf("%s ← %s(%s) @%d", of, rec.Component, strings.Join(ins, ", "), rec.Step)
}

func sortRefs(set map[Ref]bool) []Ref {
	out := make([]Ref, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].ID < out[j].ID
	})
	return out
}
