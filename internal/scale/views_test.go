package scale

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func viewBase(n int) *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "cat", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i := 0; i < n; i++ {
		t.AppendValues(dataset.String(fmt.Sprintf("cat-%d", i%10)), dataset.Float(float64(i%100)))
	}
	return t
}

func cheap(r dataset.Record) bool { return r[1].FloatVal() < 10 }

func TestSelectionViewInitial(t *testing.T) {
	base := viewBase(1000)
	v := NewSelectionView(base, cheap)
	want := base.Select(cheap).Len()
	if v.Len() != want {
		t.Errorf("view = %d rows, want %d", v.Len(), want)
	}
}

func TestSelectionViewInsertDelete(t *testing.T) {
	base := viewBase(100)
	v := NewSelectionView(base, cheap)
	before := v.Len()
	row := dataset.Record{dataset.String("cat-x"), dataset.Float(5)}
	v.Apply(Delta{Insert: true, Row: row})
	if v.Len() != before+1 {
		t.Fatalf("insert not reflected: %d", v.Len())
	}
	// Non-matching insert is a no-op.
	v.Apply(Delta{Insert: true, Row: dataset.Record{dataset.String("cat-x"), dataset.Float(99)}})
	if v.Len() != before+1 {
		t.Fatal("non-matching insert changed the view")
	}
	v.Apply(Delta{Insert: false, Row: row})
	if v.Len() != before {
		t.Fatalf("delete not reflected: %d vs %d", v.Len(), before)
	}
	// Deleting a row that was never there is a no-op.
	v.Apply(Delta{Insert: false, Row: dataset.Record{dataset.String("ghost"), dataset.Float(1)}})
	if v.Len() != before {
		t.Fatal("phantom delete changed the view")
	}
}

func TestSelectionViewWorkIsDeltaProportional(t *testing.T) {
	base := viewBase(100000)
	v := NewSelectionView(base, cheap)
	initialWork := v.Work()
	for i := 0; i < 50; i++ {
		v.Apply(Delta{Insert: true, Row: dataset.Record{dataset.String("c"), dataset.Float(1)}})
	}
	if v.Work()-initialWork != 50 {
		t.Errorf("50 deltas cost %d work units, want 50", v.Work()-initialWork)
	}
}

// Property: after a random delta stream, the view equals recomputation
// from scratch.
func TestSelectionViewEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed % 1000))
		base := viewBase(60)
		v := NewSelectionView(base, cheap)
		// Shadow table that applies the same deltas by brute force.
		shadow := base.Clone()
		for step := 0; step < 60; step++ {
			row := dataset.Record{
				dataset.String(fmt.Sprintf("cat-%d", rng.Intn(5))),
				dataset.Float(float64(rng.Intn(20))),
			}
			if rng.Intn(3) > 0 { // bias to inserts
				v.Apply(Delta{Insert: true, Row: row})
				shadow.Append(row.Clone())
			} else {
				v.Apply(Delta{Insert: false, Row: row})
				// brute-force delete one matching row from shadow
				for i := 0; i < shadow.Len(); i++ {
					if shadow.Row(i).Equal(row) {
						rows := shadow.Rows()
						rows[i] = rows[shadow.Len()-1]
						// rebuild without last
						nt := dataset.NewTable(shadow.Schema().Clone())
						for j := 0; j < shadow.Len()-1; j++ {
							nt.Append(rows[j].Clone())
						}
						shadow = nt
						break
					}
				}
			}
		}
		return v.Len() == shadow.Select(cheap).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGroupCountViewInitial(t *testing.T) {
	base := viewBase(1000)
	v, err := NewGroupCountView(base, "cat")
	if err != nil {
		t.Fatal(err)
	}
	if v.Count(dataset.String("cat-3")) != 100 {
		t.Errorf("cat-3 = %d, want 100", v.Count(dataset.String("cat-3")))
	}
	if _, err := NewGroupCountView(base, "ghost"); err == nil {
		t.Error("missing column should fail")
	}
}

func TestGroupCountViewMaintenance(t *testing.T) {
	base := viewBase(100)
	v, _ := NewGroupCountView(base, "cat")
	row := dataset.Record{dataset.String("cat-3"), dataset.Float(1)}
	v.Apply(Delta{Insert: true, Row: row})
	if v.Count(dataset.String("cat-3")) != 11 {
		t.Errorf("after insert = %d, want 11", v.Count(dataset.String("cat-3")))
	}
	v.Apply(Delta{Insert: false, Row: row})
	v.Apply(Delta{Insert: false, Row: row})
	if v.Count(dataset.String("cat-3")) != 9 {
		t.Errorf("after deletes = %d, want 9", v.Count(dataset.String("cat-3")))
	}
	// Null group values are ignored.
	v.Apply(Delta{Insert: true, Row: dataset.Record{dataset.Null(), dataset.Float(1)}})
	if v.Count(dataset.Null()) != 0 {
		t.Error("null keys must not be counted")
	}
}

func TestGroupCountViewGroupsSorted(t *testing.T) {
	base := viewBase(100)
	v, _ := NewGroupCountView(base, "cat")
	v.Apply(Delta{Insert: true, Row: dataset.Record{dataset.String("cat-3"), dataset.Float(1)}})
	groups := v.Groups()
	if len(groups) != 10 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Value.Str() != "cat-3" || groups[0].Count != 11 {
		t.Errorf("top group = %+v", groups[0])
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].Count > groups[i-1].Count {
			t.Fatal("groups not sorted")
		}
	}
}

func TestGroupCountViewDrainsGroup(t *testing.T) {
	base := dataset.NewTable(dataset.MustSchema(dataset.Field{Name: "k", Kind: dataset.KindString}))
	base.AppendValues(dataset.String("only"))
	v, _ := NewGroupCountView(base, "k")
	v.Apply(Delta{Insert: false, Row: dataset.Record{dataset.String("only")}})
	if len(v.Groups()) != 0 {
		t.Error("drained group should disappear")
	}
}

// Property: group counts match brute-force recount after random deltas.
func TestGroupCountEquivalenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		base := viewBase(40)
		v, _ := NewGroupCountView(base, "cat")
		counts := map[string]int{}
		for _, r := range base.Rows() {
			counts[r[0].Str()]++
		}
		for _, op := range ops {
			cat := fmt.Sprintf("cat-%d", op%10)
			row := dataset.Record{dataset.String(cat), dataset.Float(0)}
			if op%3 > 0 {
				v.Apply(Delta{Insert: true, Row: row})
				counts[cat]++
			} else if counts[cat] > 0 {
				v.Apply(Delta{Insert: false, Row: row})
				counts[cat]--
			}
		}
		for cat, n := range counts {
			if v.Count(dataset.String(cat)) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
