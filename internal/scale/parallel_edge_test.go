package scale

import (
	"testing"

	"repro/internal/dataset"
)

// TestParallelMapEdgeCases pins the degenerate-input contract the engine
// relies on (engine.Map batches through Partition): worker counts at or
// below zero clamp to one, empty tables yield no partitions, and more
// workers than rows clamp to one row per partition — never an empty or
// out-of-range slice.
func TestParallelMapEdgeCases(t *testing.T) {
	count := func(rows []dataset.Record) int { return len(rows) }
	cases := []struct {
		name     string
		rows     int
		workers  int
		wantPart int // expected number of partitions
	}{
		{"zero workers", 10, 0, 1},
		{"negative workers", 10, -5, 1},
		{"one worker", 10, 1, 1},
		{"empty table any workers", 0, 4, 0},
		{"empty table zero workers", 0, 0, 0},
		{"workers equal rows", 6, 6, 6},
		{"workers exceed rows", 3, 64, 3},
		{"single row many workers", 1, 8, 1},
		{"even split", 8, 4, 4},
		{"uneven split", 7, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := bigTable(tc.rows)
			got := ParallelMap(tab, tc.workers, count)
			if len(got) != tc.wantPart {
				t.Fatalf("%d partitions, want %d", len(got), tc.wantPart)
			}
			total := 0
			for i, n := range got {
				if n == 0 {
					t.Errorf("partition %d is empty", i)
				}
				total += n
			}
			if total != tc.rows {
				t.Errorf("partitions cover %d rows, want %d", total, tc.rows)
			}
		})
	}
}

// TestPartitionInvariants checks Partition's slices are contiguous,
// non-overlapping and cover [0, total) for a sweep of shapes, including
// the adversarial ones (n > total, n <= 0, total = 0).
func TestPartitionInvariants(t *testing.T) {
	for _, total := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, n := range []int{-3, 0, 1, 2, 3, 7, 64, 2000} {
			parts := Partition(total, n)
			if total == 0 {
				if len(parts) != 0 {
					t.Errorf("Partition(%d,%d) = %v, want none", total, n, parts)
				}
				continue
			}
			prev := 0
			for i, p := range parts {
				if p[0] != prev {
					t.Fatalf("Partition(%d,%d): part %d starts at %d, want %d", total, n, i, p[0], prev)
				}
				if p[1] <= p[0] {
					t.Fatalf("Partition(%d,%d): part %d is empty (%v)", total, n, i, p)
				}
				prev = p[1]
			}
			if prev != total {
				t.Errorf("Partition(%d,%d) covers [0,%d), want [0,%d)", total, n, prev, total)
			}
			if want := clampWorkers(n, total); len(parts) > want {
				t.Errorf("Partition(%d,%d) produced %d parts, want <= %d", total, n, len(parts), want)
			}
		}
	}
}

func clampWorkers(n, total int) int {
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	return n
}
