package scale

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements conjunctive queries over binary relations together
// with the static under-approximation of Barceló, Libkin and Romero [4]:
// a cyclic CQ is transformed — without looking at the data — into an
// acyclic query Q' with Q' ⊆ Q (every Q' answer is a Q answer) by
// collapsing variables until the query graph is a forest. Acyclic queries
// evaluate in polynomial time, so the approximation trades completeness
// for guaranteed-fast evaluation, exactly the §4.3 proposal.

// Atom is one binary relational atom R(x, y) over variables.
type Atom struct {
	Rel  string
	X, Y string
}

// CQ is a conjunctive query: answer variables plus a body of atoms.
type CQ struct {
	Head []string
	Body []Atom
}

// String renders the query in rule syntax.
func (q CQ) String() string {
	parts := make([]string, len(q.Body))
	for i, a := range q.Body {
		parts[i] = fmt.Sprintf("%s(%s,%s)", a.Rel, a.X, a.Y)
	}
	return fmt.Sprintf("ans(%s) :- %s", strings.Join(q.Head, ","), strings.Join(parts, ", "))
}

// Vars returns the distinct variables of the query body in first-seen
// order.
func (q CQ) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range q.Body {
		for _, v := range []string{a.X, a.Y} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Validate checks that head variables occur in the body.
func (q CQ) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("scale: empty query body")
	}
	bodyVars := map[string]bool{}
	for _, v := range q.Vars() {
		bodyVars[v] = true
	}
	for _, h := range q.Head {
		if !bodyVars[h] {
			return fmt.Errorf("scale: head variable %q not in body", h)
		}
	}
	return nil
}

// IsAcyclic reports whether the query graph (variables as nodes, atoms as
// edges; parallel edges and self-loops count as cycles only if they relate
// distinct atom pairs over the same variable pair) is a forest.
func (q CQ) IsAcyclic() bool {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	seenEdge := map[string]bool{}
	for _, a := range q.Body {
		if a.X == a.Y {
			continue // self-loop atom is a filter, not a cycle
		}
		ek := edgeKey(a.X, a.Y)
		if seenEdge[ek] {
			continue // parallel atoms over the same pair don't add cycles
		}
		seenEdge[ek] = true
		rx, ry := find(a.X), find(a.Y)
		if rx == ry {
			return false
		}
		parent[rx] = ry
	}
	return true
}

func edgeKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "\x1f" + b
}

// Approximate returns an acyclic under-approximation of q: while the query
// graph has a cycle, two variables on a cycle edge are identified (which
// corresponds to a homomorphic image of q, hence a query contained in q).
// The head is rewritten through the same identification. The query is
// returned unchanged when already acyclic. This is a purely static
// transformation — it never consults the data.
func Approximate(q CQ) CQ {
	cur := q
	for !cur.IsAcyclic() {
		x, y, ok := findCycleEdge(cur)
		if !ok {
			break
		}
		cur = identify(cur, x, y)
	}
	return cur
}

// findCycleEdge locates one edge that closes a cycle in the query graph.
func findCycleEdge(q CQ) (string, string, bool) {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	seenEdge := map[string]bool{}
	for _, a := range q.Body {
		if a.X == a.Y {
			continue
		}
		ek := edgeKey(a.X, a.Y)
		if seenEdge[ek] {
			continue
		}
		seenEdge[ek] = true
		rx, ry := find(a.X), find(a.Y)
		if rx == ry {
			return a.X, a.Y, true
		}
		parent[rx] = ry
	}
	return "", "", false
}

// identify substitutes variable y by x throughout the query.
func identify(q CQ, x, y string) CQ {
	sub := func(v string) string {
		if v == y {
			return x
		}
		return v
	}
	out := CQ{Head: make([]string, len(q.Head)), Body: make([]Atom, len(q.Body))}
	for i, h := range q.Head {
		out.Head[i] = sub(h)
	}
	for i, a := range q.Body {
		out.Body[i] = Atom{Rel: a.Rel, X: sub(a.X), Y: sub(a.Y)}
	}
	return out
}

// Graph is a set of named binary relations with forward and backward
// indexes for CQ evaluation.
type Graph struct {
	fwd map[string]map[string][]string // rel -> x -> ys
	bwd map[string]map[string][]string // rel -> y -> xs
	n   int
}

// NewGraph returns an empty relation store.
func NewGraph() *Graph {
	return &Graph{fwd: map[string]map[string][]string{}, bwd: map[string]map[string][]string{}}
}

// Add inserts the fact rel(x, y).
func (g *Graph) Add(rel, x, y string) {
	if g.fwd[rel] == nil {
		g.fwd[rel] = map[string][]string{}
		g.bwd[rel] = map[string][]string{}
	}
	g.fwd[rel][x] = append(g.fwd[rel][x], y)
	g.bwd[rel][y] = append(g.bwd[rel][y], x)
	g.n++
}

// Len returns the number of facts.
func (g *Graph) Len() int { return g.n }

// Eval evaluates the query by backtracking over atoms (index nested-loop
// join) and returns the distinct head bindings, sorted. Work reports the
// number of index probes made — exponential in the worst case for cyclic
// queries, polynomial for acyclic ones.
func (g *Graph) Eval(q CQ) (results [][]string, work int, err error) {
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	// Order atoms greedily for connectivity: each next atom shares a
	// variable with the bound set when possible.
	atoms := orderAtoms(q.Body)
	bind := map[string]string{}
	seen := map[string]bool{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(atoms) {
			row := make([]string, len(q.Head))
			for hi, h := range q.Head {
				row[hi] = bind[h]
			}
			k := strings.Join(row, "\x1f")
			if !seen[k] {
				seen[k] = true
				results = append(results, row)
			}
			return
		}
		a := atoms[i]
		bx, hasX := bind[a.X]
		by, hasY := bind[a.Y]
		switch {
		case hasX && hasY:
			work++
			for _, y := range g.fwd[a.Rel][bx] {
				if y == by {
					rec(i + 1)
					break
				}
			}
		case hasX:
			work++
			for _, y := range g.fwd[a.Rel][bx] {
				if a.X == a.Y && y != bx {
					continue
				}
				bind[a.Y] = y
				rec(i + 1)
			}
			delete(bind, a.Y)
			if hasX {
				bind[a.X] = bx
			}
		case hasY:
			work++
			for _, x := range g.bwd[a.Rel][by] {
				if a.X == a.Y && x != by {
					continue
				}
				bind[a.X] = x
				rec(i + 1)
			}
			delete(bind, a.X)
			bind[a.Y] = by
		default:
			// Unbound atom: iterate the whole relation.
			for x, ys := range g.fwd[a.Rel] {
				work++
				for _, y := range ys {
					if a.X == a.Y && x != y {
						continue
					}
					bind[a.X] = x
					bind[a.Y] = y
					rec(i + 1)
				}
			}
			delete(bind, a.X)
			delete(bind, a.Y)
		}
	}
	rec(0)
	sort.Slice(results, func(i, j int) bool {
		for k := range results[i] {
			if results[i][k] != results[j][k] {
				return results[i][k] < results[j][k]
			}
		}
		return false
	})
	return results, work, nil
}

// orderAtoms greedily orders atoms so each shares a variable with the
// already-ordered prefix when possible.
func orderAtoms(body []Atom) []Atom {
	if len(body) <= 1 {
		return body
	}
	remaining := append([]Atom(nil), body...)
	out := []Atom{remaining[0]}
	remaining = remaining[1:]
	bound := map[string]bool{out[0].X: true, out[0].Y: true}
	for len(remaining) > 0 {
		picked := -1
		for i, a := range remaining {
			if bound[a.X] || bound[a.Y] {
				picked = i
				break
			}
		}
		if picked < 0 {
			picked = 0
		}
		a := remaining[picked]
		out = append(out, a)
		bound[a.X] = true
		bound[a.Y] = true
		remaining = append(remaining[:picked], remaining[picked+1:]...)
	}
	return out
}

// Contained reports whether every row of sub appears in super — the
// under-approximation guarantee checked by the E7 tests.
func Contained(sub, super [][]string) bool {
	set := map[string]bool{}
	for _, r := range super {
		set[strings.Join(r, "\x1f")] = true
	}
	for _, r := range sub {
		if !set[strings.Join(r, "\x1f")] {
			return false
		}
	}
	return true
}
