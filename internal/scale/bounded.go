// Package scale implements the §4.3 scalability substrate: bounded
// (scale-independent) query evaluation using access/indexing information in
// the spirit of [2, 17], static under-approximation of conjunctive queries
// following Barceló-Libkin-Romero [4], and a partitioned parallel executor
// standing in for the map/reduce platforms ETL vendors compile into.
package scale

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
)

// Indexed wraps a table with hash indexes on selected columns and counts
// the rows touched by each access — the "work" measure that bounded
// evaluation keeps independent of table size.
type Indexed struct {
	table   *dataset.Table
	indexes map[string]map[string][]int
	touched int
}

// NewIndexed builds indexes on the named columns.
func NewIndexed(t *dataset.Table, cols ...string) (*Indexed, error) {
	ix := &Indexed{table: t, indexes: map[string]map[string][]int{}}
	for _, col := range cols {
		c := t.Schema().Index(col)
		if c < 0 {
			return nil, fmt.Errorf("scale: index column %q missing", col)
		}
		m := map[string][]int{}
		for i, r := range t.Rows() {
			if r[c].IsNull() {
				continue
			}
			k := r[c].Key()
			m[k] = append(m[k], i)
		}
		ix.indexes[col] = m
	}
	return ix, nil
}

// Table returns the underlying table.
func (ix *Indexed) Table() *dataset.Table { return ix.table }

// Touched returns the cumulative number of rows accessed.
func (ix *Indexed) Touched() int { return ix.touched }

// ResetWork zeroes the touched counter.
func (ix *Indexed) ResetWork() { ix.touched = 0 }

// HasIndex reports whether a column is indexed — the access-constraint
// check of [17]: a query plan is scale-independent only if every access
// goes through an index.
func (ix *Indexed) HasIndex(col string) bool {
	_, ok := ix.indexes[col]
	return ok
}

// Lookup returns the rows where col = v, touching only those rows. It
// fails when no index exists on col (the bounded-evaluation contract: no
// fallback scans).
func (ix *Indexed) Lookup(col string, v dataset.Value) ([]dataset.Record, error) {
	m, ok := ix.indexes[col]
	if !ok {
		return nil, fmt.Errorf("scale: no index on %q — bounded evaluation refused", col)
	}
	rows := m[v.Key()]
	ix.touched += len(rows)
	out := make([]dataset.Record, len(rows))
	for i, r := range rows {
		out[i] = ix.table.Row(r)
	}
	return out, nil
}

// ScanSelect is the unbounded baseline: a full scan applying the same
// predicate, touching every row.
func (ix *Indexed) ScanSelect(col string, v dataset.Value) []dataset.Record {
	c := ix.table.Schema().Index(col)
	var out []dataset.Record
	for _, r := range ix.table.Rows() {
		ix.touched++
		if c >= 0 && r[c].Equal(v) {
			out = append(out, r)
		}
	}
	return out
}

// BoundedJoin evaluates σ_{leftCol=v}(L) ⋈_{L.joinLeft = R.joinRight} R
// touching only index-reachable rows of both sides. Both access paths must
// be indexed.
func BoundedJoin(left *Indexed, leftCol string, v dataset.Value, joinLeft string, right *Indexed, joinRight string) ([][2]dataset.Record, error) {
	lrows, err := left.Lookup(leftCol, v)
	if err != nil {
		return nil, err
	}
	jc := left.table.Schema().Index(joinLeft)
	if jc < 0 {
		return nil, fmt.Errorf("scale: join column %q missing on left", joinLeft)
	}
	var out [][2]dataset.Record
	for _, lr := range lrows {
		if lr[jc].IsNull() {
			continue
		}
		rrows, err := right.Lookup(joinRight, lr[jc])
		if err != nil {
			return nil, err
		}
		for _, rr := range rrows {
			out = append(out, [2]dataset.Record{lr, rr})
		}
	}
	return out, nil
}

// ScanJoin is the unbounded baseline for BoundedJoin: nested scans.
func ScanJoin(left *Indexed, leftCol string, v dataset.Value, joinLeft string, right *Indexed, joinRight string) [][2]dataset.Record {
	lc := left.table.Schema().Index(leftCol)
	jc := left.table.Schema().Index(joinLeft)
	rc := right.table.Schema().Index(joinRight)
	// Single scan of right to build a transient map (still O(|R|) work).
	rmap := map[string][]dataset.Record{}
	for _, rr := range right.table.Rows() {
		right.touched++
		if !rr[rc].IsNull() {
			rmap[rr[rc].Key()] = append(rmap[rr[rc].Key()], rr)
		}
	}
	var out [][2]dataset.Record
	for _, lr := range left.table.Rows() {
		left.touched++
		if lc < 0 || !lr[lc].Equal(v) || lr[jc].IsNull() {
			continue
		}
		for _, rr := range rmap[lr[jc].Key()] {
			out = append(out, [2]dataset.Record{lr, rr})
		}
	}
	return out
}

// Partition splits row indices into n contiguous chunks for parallel
// processing.
func Partition(total, n int) [][2]int {
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	var out [][2]int
	if total == 0 {
		return out
	}
	size := (total + n - 1) / n
	for lo := 0; lo < total; lo += size {
		hi := lo + size
		if hi > total {
			hi = total
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// ParallelMap applies fn to each row range in parallel with the given
// worker count and merges the per-partition results in partition order —
// the map/reduce-shaped executor of §4.3.
func ParallelMap[T any](t *dataset.Table, workers int, fn func(rows []dataset.Record) T) []T {
	parts := Partition(t.Len(), workers)
	out := make([]T, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			out[i] = fn(t.Rows()[lo:hi])
		}(i, p[0], p[1])
	}
	wg.Wait()
	return out
}

// GroupCountParallel is a demonstration reducer: a parallel group-by-count
// over a column, merging per-partition maps.
func GroupCountParallel(t *dataset.Table, col string, workers int) (map[string]int, error) {
	c := t.Schema().Index(col)
	if c < 0 {
		return nil, fmt.Errorf("scale: column %q missing", col)
	}
	partials := ParallelMap(t, workers, func(rows []dataset.Record) map[string]int {
		m := map[string]int{}
		for _, r := range rows {
			if !r[c].IsNull() {
				m[r[c].String()]++
			}
		}
		return m
	})
	out := map[string]int{}
	for _, p := range partials {
		for k, v := range p {
			out[k] += v
		}
	}
	return out, nil
}

// TopKeys returns the n most frequent keys of a count map, deterministic.
func TopKeys(counts map[string]int, n int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if n < len(keys) {
		keys = keys[:n]
	}
	return keys
}
