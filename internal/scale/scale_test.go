package scale

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func bigTable(n int) *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "cat", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i := 0; i < n; i++ {
		t.AppendValues(
			dataset.String(fmt.Sprintf("SKU-%06d", i)),
			dataset.String(fmt.Sprintf("cat-%d", i%50)),
			dataset.Float(float64(i%997)),
		)
	}
	return t
}

func TestIndexedLookup(t *testing.T) {
	tab := bigTable(10000)
	ix, err := NewIndexed(tab, "sku", "cat")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ix.Lookup("sku", dataset.String("SKU-000042"))
	if err != nil || len(rows) != 1 {
		t.Fatalf("lookup = %d rows, err %v", len(rows), err)
	}
	if ix.Touched() != 1 {
		t.Errorf("bounded lookup touched %d rows, want 1", ix.Touched())
	}
	// Unindexed access must refuse rather than scan.
	if _, err := ix.Lookup("price", dataset.Float(3)); err == nil {
		t.Error("lookup on unindexed column should refuse")
	}
	if _, err := NewIndexed(tab, "ghost"); err == nil {
		t.Error("indexing a missing column should fail")
	}
}

func TestBoundedVsScanWork(t *testing.T) {
	tab := bigTable(10000)
	ix, _ := NewIndexed(tab, "cat")
	ix.ResetWork()
	bounded, _ := ix.Lookup("cat", dataset.String("cat-7"))
	boundedWork := ix.Touched()

	ix.ResetWork()
	scanned := ix.ScanSelect("cat", dataset.String("cat-7"))
	scanWork := ix.Touched()

	if len(bounded) != len(scanned) {
		t.Fatalf("bounded %d != scan %d rows", len(bounded), len(scanned))
	}
	if boundedWork*10 > scanWork {
		t.Errorf("bounded work %d should be far below scan work %d", boundedWork, scanWork)
	}
}

func TestBoundedJoinEquivalence(t *testing.T) {
	left := bigTable(2000)
	rightTab := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "cat", Kind: dataset.KindString},
		dataset.Field{Name: "mgr", Kind: dataset.KindString},
	))
	for i := 0; i < 50; i++ {
		rightTab.AppendValues(dataset.String(fmt.Sprintf("cat-%d", i)), dataset.String(fmt.Sprintf("mgr-%d", i%7)))
	}
	lix, _ := NewIndexed(left, "sku", "cat")
	rix, _ := NewIndexed(rightTab, "cat")

	lix.ResetWork()
	rix.ResetWork()
	bounded, err := BoundedJoin(lix, "sku", dataset.String("SKU-000100"), "cat", rix, "cat")
	if err != nil {
		t.Fatal(err)
	}
	boundedWork := lix.Touched() + rix.Touched()

	lix.ResetWork()
	rix.ResetWork()
	scanned := ScanJoin(lix, "sku", dataset.String("SKU-000100"), "cat", rix, "cat")
	scanWork := lix.Touched() + rix.Touched()

	if len(bounded) != len(scanned) || len(bounded) != 1 {
		t.Fatalf("bounded %d, scan %d, want 1", len(bounded), len(scanned))
	}
	if boundedWork >= scanWork {
		t.Errorf("bounded join work %d >= scan %d", boundedWork, scanWork)
	}
}

func TestBoundedJoinRefusesUnindexed(t *testing.T) {
	left := bigTable(10)
	right := bigTable(10)
	lix, _ := NewIndexed(left, "sku")
	rix, _ := NewIndexed(right, "sku")
	if _, err := BoundedJoin(lix, "sku", dataset.String("SKU-000001"), "cat", rix, "cat"); err == nil {
		t.Error("join through unindexed right column should refuse")
	}
}

func TestPartition(t *testing.T) {
	parts := Partition(10, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %v", parts)
	}
	covered := 0
	for _, p := range parts {
		covered += p[1] - p[0]
	}
	if covered != 10 {
		t.Errorf("partitions cover %d rows", covered)
	}
	if len(Partition(0, 4)) != 0 {
		t.Error("empty input -> no partitions")
	}
	if len(Partition(3, 10)) != 3 {
		t.Error("more workers than rows should clamp")
	}
	if len(Partition(5, 0)) != 1 {
		t.Error("zero workers should clamp to 1")
	}
}

func TestParallelMapMatchesSequential(t *testing.T) {
	tab := bigTable(5000)
	for _, workers := range []int{1, 2, 4, 8} {
		sums := ParallelMap(tab, workers, func(rows []dataset.Record) float64 {
			s := 0.0
			for _, r := range rows {
				s += r[2].FloatVal()
			}
			return s
		})
		total := 0.0
		for _, s := range sums {
			total += s
		}
		want := 0.0
		for _, r := range tab.Rows() {
			want += r[2].FloatVal()
		}
		if total != want {
			t.Errorf("workers=%d: parallel sum %f != %f", workers, total, want)
		}
	}
}

func TestGroupCountParallel(t *testing.T) {
	tab := bigTable(5000)
	counts, err := GroupCountParallel(tab, "cat", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 50 || counts["cat-0"] != 100 {
		t.Errorf("counts = %d groups, cat-0 = %d", len(counts), counts["cat-0"])
	}
	if _, err := GroupCountParallel(tab, "ghost", 4); err == nil {
		t.Error("missing column should error")
	}
	top := TopKeys(counts, 3)
	if len(top) != 3 {
		t.Errorf("TopKeys = %v", top)
	}
}

// --- CQ tests ---

func triangleQuery() CQ {
	return CQ{
		Head: []string{"x", "y"},
		Body: []Atom{
			{Rel: "E", X: "x", Y: "y"},
			{Rel: "E", X: "y", Y: "z"},
			{Rel: "E", X: "z", Y: "x"},
		},
	}
}

func pathQuery() CQ {
	return CQ{
		Head: []string{"x", "z"},
		Body: []Atom{
			{Rel: "E", X: "x", Y: "y"},
			{Rel: "E", X: "y", Y: "z"},
		},
	}
}

func randomGraph(seed int64, nodes, edges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	for i := 0; i < edges; i++ {
		g.Add("E", fmt.Sprintf("n%d", rng.Intn(nodes)), fmt.Sprintf("n%d", rng.Intn(nodes)))
	}
	return g
}

func TestCQValidate(t *testing.T) {
	if err := (CQ{Head: []string{"x"}}).Validate(); err == nil {
		t.Error("empty body should fail")
	}
	if err := (CQ{Head: []string{"w"}, Body: []Atom{{Rel: "E", X: "x", Y: "y"}}}).Validate(); err == nil {
		t.Error("head var not in body should fail")
	}
	if err := pathQuery().Validate(); err != nil {
		t.Error(err)
	}
}

func TestIsAcyclic(t *testing.T) {
	if !pathQuery().IsAcyclic() {
		t.Error("path query is acyclic")
	}
	if triangleQuery().IsAcyclic() {
		t.Error("triangle query is cyclic")
	}
	// Parallel atoms over the same variable pair are not a cycle.
	par := CQ{Head: []string{"x"}, Body: []Atom{
		{Rel: "E", X: "x", Y: "y"}, {Rel: "F", X: "x", Y: "y"},
	}}
	if !par.IsAcyclic() {
		t.Error("parallel edges should not count as a cycle")
	}
	// Self-loop atoms are filters.
	loop := CQ{Head: []string{"x"}, Body: []Atom{{Rel: "E", X: "x", Y: "x"}}}
	if !loop.IsAcyclic() {
		t.Error("self-loop atom is not a cycle")
	}
}

func TestApproximateMakesAcyclic(t *testing.T) {
	q := Approximate(triangleQuery())
	if !q.IsAcyclic() {
		t.Fatalf("approximation still cyclic: %s", q)
	}
	// The path query is already acyclic: must be unchanged.
	p := Approximate(pathQuery())
	if p.String() != pathQuery().String() {
		t.Errorf("acyclic query should be unchanged: %s", p)
	}
}

func TestEvalPathQuery(t *testing.T) {
	g := NewGraph()
	g.Add("E", "a", "b")
	g.Add("E", "b", "c")
	g.Add("E", "c", "d")
	res, work, err := g.Eval(pathQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("paths = %v", res)
	}
	if res[0][0] != "a" || res[0][1] != "c" || res[1][0] != "b" || res[1][1] != "d" {
		t.Errorf("results = %v", res)
	}
	if work <= 0 {
		t.Error("work should be counted")
	}
}

func TestEvalTriangle(t *testing.T) {
	g := NewGraph()
	// One triangle a->b->c->a plus noise.
	g.Add("E", "a", "b")
	g.Add("E", "b", "c")
	g.Add("E", "c", "a")
	g.Add("E", "a", "x")
	res, _, err := g.Eval(triangleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 { // rotations of the triangle
		t.Errorf("triangle results = %v", res)
	}
}

func TestEvalSelfLoopFilter(t *testing.T) {
	g := NewGraph()
	g.Add("E", "a", "a")
	g.Add("E", "a", "b")
	q := CQ{Head: []string{"x"}, Body: []Atom{{Rel: "E", X: "x", Y: "x"}}}
	res, _, err := g.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0][0] != "a" {
		t.Errorf("self-loop results = %v", res)
	}
}

func TestApproximationContainment(t *testing.T) {
	g := randomGraph(5, 40, 300)
	exact, _, err := g.Eval(triangleQuery())
	if err != nil {
		t.Fatal(err)
	}
	approx, _, err := g.Eval(Approximate(triangleQuery()))
	if err != nil {
		t.Fatal(err)
	}
	if !Contained(approx, exact) {
		t.Error("approximate answers must be contained in exact answers")
	}
}

// Property: containment holds across random graphs and the approximation
// is always acyclic.
func TestApproximationContainmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed%500, 25, 120)
		q := triangleQuery()
		aq := Approximate(q)
		if !aq.IsAcyclic() {
			return false
		}
		exact, _, err1 := g.Eval(q)
		approx, _, err2 := g.Eval(aq)
		return err1 == nil && err2 == nil && Contained(approx, exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestContained(t *testing.T) {
	a := [][]string{{"1", "2"}}
	b := [][]string{{"1", "2"}, {"3", "4"}}
	if !Contained(a, b) || Contained(b, a) {
		t.Error("Contained wrong")
	}
	if !Contained(nil, nil) {
		t.Error("empty contained in empty")
	}
}

func TestCQString(t *testing.T) {
	s := triangleQuery().String()
	if s == "" || s[:4] != "ans(" {
		t.Errorf("String = %q", s)
	}
}
