package scale

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
)

// This file implements incremental precomputation in the spirit of
// Armbrust et al. [2] ("generalized scale independence through
// incremental precomputation", cited in §4.3): query results are
// materialised once and then maintained under row-level deltas with work
// proportional to the delta, not the data. Two view shapes cover the
// wrangling workloads: selection views (the rows a context cares about)
// and group-count views (per-key statistics used by quality analyses).

// Delta is one row-level change to a base table.
type Delta struct {
	Insert bool // true = insert, false = delete
	Row    dataset.Record
}

// SelectionView materialises σ_pred(T) and maintains it under deltas.
// Rows are tracked by their full-record key, so deletes remove one
// matching occurrence.
type SelectionView struct {
	mu      sync.Mutex
	pred    func(dataset.Record) bool
	schema  dataset.Schema
	rows    []dataset.Record
	byKey   map[string][]int // record key -> positions in rows (may be stale)
	work    int
	applied int
}

// NewSelectionView materialises the predicate over the base table.
func NewSelectionView(base *dataset.Table, pred func(dataset.Record) bool) *SelectionView {
	v := &SelectionView{pred: pred, schema: base.Schema().Clone(), byKey: map[string][]int{}}
	for _, r := range base.Rows() {
		v.work++
		if pred(r) {
			v.add(r.Clone())
		}
	}
	return v
}

func (v *SelectionView) add(r dataset.Record) {
	k := recordKey(r)
	v.byKey[k] = append(v.byKey[k], len(v.rows))
	v.rows = append(v.rows, r)
}

// Apply maintains the view under one delta in O(1) expected work.
func (v *SelectionView) Apply(d Delta) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.applied++
	v.work++
	if !v.pred(d.Row) {
		return
	}
	if d.Insert {
		v.add(d.Row.Clone())
		return
	}
	// Delete one occurrence: swap-remove the last tracked position.
	k := recordKey(d.Row)
	positions := v.byKey[k]
	// Positions may be stale after earlier swap-removes; validate.
	for len(positions) > 0 {
		pos := positions[len(positions)-1]
		positions = positions[:len(positions)-1]
		if pos < len(v.rows) && recordKey(v.rows[pos]) == k {
			last := len(v.rows) - 1
			moved := v.rows[last]
			v.rows[pos] = moved
			v.rows = v.rows[:last]
			if pos < last {
				mk := recordKey(moved)
				v.byKey[mk] = append(v.byKey[mk], pos)
			}
			break
		}
	}
	if len(positions) == 0 {
		delete(v.byKey, k)
	} else {
		v.byKey[k] = positions
	}
}

// Rows returns a snapshot of the view contents.
func (v *SelectionView) Rows() []dataset.Record {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]dataset.Record, len(v.rows))
	copy(out, v.rows)
	return out
}

// Len returns the current view cardinality.
func (v *SelectionView) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.rows)
}

// Work returns rows touched since construction (initial scan + deltas).
func (v *SelectionView) Work() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.work
}

func recordKey(r dataset.Record) string {
	idx := make([]int, len(r))
	for i := range idx {
		idx[i] = i
	}
	return r.Key(idx...)
}

// GroupCountView materialises SELECT col, COUNT(*) GROUP BY col and
// maintains it under deltas in O(1) per delta.
type GroupCountView struct {
	mu     sync.Mutex
	col    int
	counts map[string]int
	rep    map[string]dataset.Value
	work   int
}

// NewGroupCountView materialises the counts over the base table.
func NewGroupCountView(base *dataset.Table, col string) (*GroupCountView, error) {
	c := base.Schema().Index(col)
	if c < 0 {
		return nil, fmt.Errorf("scale: view column %q missing", col)
	}
	v := &GroupCountView{col: c, counts: map[string]int{}, rep: map[string]dataset.Value{}}
	for _, r := range base.Rows() {
		v.work++
		v.bump(r, +1)
	}
	return v, nil
}

func (v *GroupCountView) bump(r dataset.Record, delta int) {
	if v.col >= len(r) || r[v.col].IsNull() {
		return
	}
	k := r[v.col].Key()
	v.counts[k] += delta
	if v.counts[k] <= 0 {
		delete(v.counts, k)
		delete(v.rep, k)
		return
	}
	if _, ok := v.rep[k]; !ok {
		v.rep[k] = r[v.col]
	}
}

// Apply maintains the count under one delta.
func (v *GroupCountView) Apply(d Delta) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.work++
	if d.Insert {
		v.bump(d.Row, +1)
	} else {
		v.bump(d.Row, -1)
	}
}

// Count returns the current count for a value.
func (v *GroupCountView) Count(val dataset.Value) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.counts[val.Key()]
}

// Groups returns (value, count) pairs sorted by descending count then
// value key.
func (v *GroupCountView) Groups() []struct {
	Value dataset.Value
	Count int
} {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.counts))
	for k := range v.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if v.counts[keys[i]] != v.counts[keys[j]] {
			return v.counts[keys[i]] > v.counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	out := make([]struct {
		Value dataset.Value
		Count int
	}, len(keys))
	for i, k := range keys {
		out[i].Value = v.rep[k]
		out[i].Count = v.counts[k]
	}
	return out
}

// Work returns rows touched since construction.
func (v *GroupCountView) Work() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.work
}
