package ontology

import (
	"testing"
	"testing/quick"
)

func small() *Taxonomy {
	t, err := New([]Class{
		{ID: "a", Label: "A"},
		{ID: "a/b", Label: "B", Parent: "a", Synonyms: []string{"bee"}},
		{ID: "a/b/c", Label: "C", Parent: "a/b"},
		{ID: "a/d", Label: "D", Parent: "a"},
		{ID: "e", Label: "E"},
	}, []Property{
		{Name: "price", Synonyms: []string{"cost"}, Numeric: true},
		{Name: "name", Synonyms: []string{"title"}},
	})
	if err != nil {
		panic(err)
	}
	return t
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Class{{ID: "x", Parent: "missing"}}, nil); err == nil {
		t.Error("unknown parent should fail")
	}
	if _, err := New([]Class{{ID: "x"}, {ID: "x"}}, nil); err == nil {
		t.Error("duplicate class should fail")
	}
	if _, err := New([]Class{{ID: ""}}, nil); err == nil {
		t.Error("empty ID should fail")
	}
	if _, err := New(nil, []Property{{Name: "p"}, {Name: "p"}}); err == nil {
		t.Error("duplicate property should fail")
	}
}

func TestCycleRejected(t *testing.T) {
	// Build a cycle by declaring parents that loop.
	_, err := New([]Class{
		{ID: "x", Parent: "y"},
		{ID: "y", Parent: "x"},
	}, nil)
	if err == nil {
		t.Error("cycle should be rejected")
	}
}

func TestSubsumption(t *testing.T) {
	tx := small()
	if !tx.IsSubclassOf("a/b/c", "a") || !tx.IsSubclassOf("a/b/c", "a/b/c") {
		t.Error("transitive/reflexive subsumption failed")
	}
	if tx.IsSubclassOf("a", "a/b/c") || tx.IsSubclassOf("e", "a") {
		t.Error("false subsumption")
	}
}

func TestAncestorsDepthLCA(t *testing.T) {
	tx := small()
	anc := tx.Ancestors("a/b/c")
	if len(anc) != 2 || anc[0] != "a/b" || anc[1] != "a" {
		t.Errorf("Ancestors = %v", anc)
	}
	if tx.Depth("a") != 0 || tx.Depth("a/b/c") != 2 || tx.Depth("zzz") != -1 {
		t.Error("Depth wrong")
	}
	if tx.LCA("a/b/c", "a/d") != "a" {
		t.Errorf("LCA = %q, want a", tx.LCA("a/b/c", "a/d"))
	}
	if tx.LCA("a/b", "a/b/c") != "a/b" {
		t.Error("LCA with ancestor should be the ancestor")
	}
	if tx.LCA("a", "e") != "" {
		t.Error("disjoint roots should have empty LCA")
	}
}

func TestSimilarity(t *testing.T) {
	tx := small()
	if tx.Similarity("a/b", "a/b") != 1 {
		t.Error("self similarity should be 1")
	}
	sib := tx.Similarity("a/b", "a/d")
	cousin := tx.Similarity("a/b/c", "a/d")
	if sib <= cousin {
		t.Errorf("siblings (%f) should beat deeper cousins (%f)", sib, cousin)
	}
	if tx.Similarity("a", "e") != 0 {
		t.Error("disjoint similarity should be 0")
	}
	if tx.Similarity("a", "unknown") != 0 {
		t.Error("unknown class should be 0")
	}
}

func TestClassifyLabel(t *testing.T) {
	tx := ProductTaxonomy()
	cases := []struct {
		label string
		want  string
	}{
		{"HDMI Cable", "electronics/cables/hdmi"},
		{"hdmi lead", "electronics/cables/hdmi"},
		{"Wireless Mouse", "electronics/peripherals/mouse"},
		{"usb stick", "electronics/storage/usbstick"},
		{"mechanical keyboard", "electronics/peripherals/keyboard"},
	}
	for _, c := range cases {
		got, conf := tx.ClassifyLabel(c.label)
		if got != c.want {
			t.Errorf("ClassifyLabel(%q) = %q (conf %f), want %q", c.label, got, conf, c.want)
		}
	}
	if id, _ := tx.ClassifyLabel(""); id != "" {
		t.Error("empty label should not classify")
	}
}

func TestCanonicalProperty(t *testing.T) {
	tx := ProductTaxonomy()
	cases := []struct {
		in   string
		want string
	}{
		{"price", "price"},
		{"COST", "price"},
		{"unit_price", "price"},
		{"title", "name"},
		{"manufacturer", "brand"},
		{"zzz_unrelated_qqq", ""},
	}
	for _, c := range cases {
		got, _ := tx.CanonicalProperty(c.in)
		if got != c.want {
			t.Errorf("CanonicalProperty(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBuiltinTaxonomiesWellFormed(t *testing.T) {
	for _, tx := range []*Taxonomy{ProductTaxonomy(), LocationTaxonomy()} {
		ids := tx.Classes()
		if len(ids) < 15 {
			t.Fatalf("taxonomy too small: %d classes", len(ids))
		}
		roots := 0
		for _, id := range ids {
			if tx.Class(id).Parent == "" {
				roots++
			}
		}
		if roots == 0 {
			t.Error("taxonomy has no root")
		}
		if len(tx.Properties()) < 5 {
			t.Error("property vocabulary too small")
		}
	}
}

func TestChildrenSorted(t *testing.T) {
	tx := ProductTaxonomy()
	kids := tx.Children("electronics")
	for i := 1; i < len(kids); i++ {
		if kids[i-1] >= kids[i] {
			t.Fatal("children not sorted")
		}
	}
	if len(kids) == 0 {
		t.Fatal("electronics should have children")
	}
}

// Property: Similarity is symmetric and bounded in [0,1] over the built-in
// product taxonomy.
func TestSimilaritySymmetricProperty(t *testing.T) {
	tx := ProductTaxonomy()
	ids := tx.Classes()
	f := func(i, j uint16) bool {
		a := ids[int(i)%len(ids)]
		b := ids[int(j)%len(ids)]
		s1 := tx.Similarity(a, b)
		s2 := tx.Similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LCA subsumes both arguments.
func TestLCASubsumesProperty(t *testing.T) {
	tx := ProductTaxonomy()
	ids := tx.Classes()
	f := func(i, j uint16) bool {
		a := ids[int(i)%len(ids)]
		b := ids[int(j)%len(ids)]
		lca := tx.LCA(a, b)
		if lca == "" {
			return true
		}
		return tx.IsSubclassOf(a, lca) && tx.IsSubclassOf(b, lca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
