// Package ontology provides the domain-knowledge substrate of the data
// context (§2.3 of Furche et al., Example 4): a product-types taxonomy in
// the style of productontology.org together with a schema.org-like property
// vocabulary. Wrangling components use it to (a) judge source relevance,
// (b) supplement syntactic schema matching with semantic evidence, and
// (c) guide the fusion of property values.
package ontology

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/text"
)

// Class is one node of the taxonomy.
type Class struct {
	ID       string   // unique identifier, e.g. "electronics/cables/hdmi"
	Label    string   // display label, e.g. "HDMI Cable"
	Synonyms []string // alternative labels used in the wild
	Parent   string   // parent class ID; "" for roots
}

// Property describes an attribute in the shared vocabulary, e.g. "price".
type Property struct {
	Name     string   // canonical name
	Synonyms []string // names used by sources ("cost", "amount", ...)
	Numeric  bool     // whether values are expected numeric
}

// Taxonomy is an in-memory ontology: classes with subsumption plus a
// property vocabulary. It is immutable after construction.
type Taxonomy struct {
	classes  map[string]*Class
	children map[string][]string
	props    map[string]*Property
	propIdx  map[string]string // lowercase synonym -> canonical name
}

// New creates a taxonomy from class and property lists. Parents must be
// declared (classes may appear in any order); unknown parents are an error.
func New(classes []Class, props []Property) (*Taxonomy, error) {
	t := &Taxonomy{
		classes:  make(map[string]*Class, len(classes)),
		children: make(map[string][]string),
		props:    make(map[string]*Property, len(props)),
		propIdx:  make(map[string]string),
	}
	for i := range classes {
		c := classes[i]
		if c.ID == "" {
			return nil, fmt.Errorf("ontology: class with empty ID")
		}
		if _, dup := t.classes[c.ID]; dup {
			return nil, fmt.Errorf("ontology: duplicate class %q", c.ID)
		}
		t.classes[c.ID] = &c
	}
	for id, c := range t.classes {
		if c.Parent != "" {
			if _, ok := t.classes[c.Parent]; !ok {
				return nil, fmt.Errorf("ontology: class %q has unknown parent %q", id, c.Parent)
			}
			t.children[c.Parent] = append(t.children[c.Parent], id)
		}
	}
	for p := range t.children {
		sort.Strings(t.children[p])
	}
	// Reject cycles.
	for id := range t.classes {
		seen := map[string]bool{}
		cur := id
		for cur != "" {
			if seen[cur] {
				return nil, fmt.Errorf("ontology: cycle through class %q", cur)
			}
			seen[cur] = true
			cur = t.classes[cur].Parent
		}
	}
	for i := range props {
		p := props[i]
		if p.Name == "" {
			return nil, fmt.Errorf("ontology: property with empty name")
		}
		if _, dup := t.props[p.Name]; dup {
			return nil, fmt.Errorf("ontology: duplicate property %q", p.Name)
		}
		t.props[p.Name] = &p
		t.propIdx[strings.ToLower(p.Name)] = p.Name
		for _, s := range p.Synonyms {
			t.propIdx[strings.ToLower(s)] = p.Name
		}
	}
	return t, nil
}

// Class returns the class with the given ID, or nil.
func (t *Taxonomy) Class(id string) *Class { return t.classes[id] }

// Classes returns all class IDs sorted.
func (t *Taxonomy) Classes() []string {
	out := make([]string, 0, len(t.classes))
	for id := range t.classes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Children returns the direct subclass IDs of the given class.
func (t *Taxonomy) Children(id string) []string { return t.children[id] }

// IsSubclassOf reports whether sub is (transitively) a subclass of super,
// including sub == super.
func (t *Taxonomy) IsSubclassOf(sub, super string) bool {
	cur := sub
	for cur != "" {
		if cur == super {
			return true
		}
		c := t.classes[cur]
		if c == nil {
			return false
		}
		cur = c.Parent
	}
	return false
}

// Ancestors returns the chain of ancestor IDs of id, nearest first,
// excluding id itself.
func (t *Taxonomy) Ancestors(id string) []string {
	var out []string
	c := t.classes[id]
	for c != nil && c.Parent != "" {
		out = append(out, c.Parent)
		c = t.classes[c.Parent]
	}
	return out
}

// LCA returns the lowest common ancestor of a and b ("" if disjoint roots).
func (t *Taxonomy) LCA(a, b string) string {
	anc := map[string]bool{a: true}
	for _, x := range t.Ancestors(a) {
		anc[x] = true
	}
	if anc[b] {
		return b
	}
	for _, x := range append([]string{b}, t.Ancestors(b)...) {
		if anc[x] {
			return x
		}
	}
	return ""
}

// Depth returns the number of ancestors of id (roots have depth 0); -1 for
// unknown classes.
func (t *Taxonomy) Depth(id string) int {
	if t.classes[id] == nil {
		return -1
	}
	return len(t.Ancestors(id))
}

// Similarity returns the Wu-Palmer semantic similarity of two classes:
// 2·depth(lca) / (depth(a)+depth(b)+2·ε) mapped to [0,1]; unknown classes
// score 0, identical classes score 1.
func (t *Taxonomy) Similarity(a, b string) float64 {
	if t.classes[a] == nil || t.classes[b] == nil {
		return 0
	}
	if a == b {
		return 1
	}
	lca := t.LCA(a, b)
	if lca == "" {
		return 0
	}
	dl := float64(t.Depth(lca)) + 1 // +1 so root LCA still contributes
	da := float64(t.Depth(a)) + 1
	db := float64(t.Depth(b)) + 1
	return 2 * dl / (da + db)
}

// ClassifyLabel maps a free-text label (e.g. a product name or category
// string from a source) to the best-matching class ID and its confidence in
// [0,1]. Matching combines exact synonym lookup with fuzzy label matching.
func (t *Taxonomy) ClassifyLabel(label string) (string, float64) {
	norm := text.Normalize(label)
	if norm == "" {
		return "", 0
	}
	bestID, bestScore := "", 0.0
	ids := t.Classes()
	for _, id := range ids {
		c := t.classes[id]
		cands := append([]string{c.Label}, c.Synonyms...)
		for _, cand := range cands {
			cn := text.Normalize(cand)
			var s float64
			if cn == norm {
				s = 1
			} else {
				s = 0.5*text.MongeElkanSym(norm, cn) + 0.5*text.JaccardTokens(norm, cn)
			}
			if s > bestScore || (s == bestScore && id < bestID) {
				bestID, bestScore = id, s
			}
		}
	}
	if bestScore < 0.3 {
		return "", bestScore
	}
	return bestID, bestScore
}

// CanonicalProperty maps a source attribute name to the canonical property
// name and a confidence. Exact (case-insensitive) synonym hits score 1;
// otherwise the best fuzzy match above 0.75 is returned.
func (t *Taxonomy) CanonicalProperty(name string) (string, float64) {
	ln := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := t.propIdx[ln]; ok {
		return canon, 1
	}
	// Very short names carry too little signal for fuzzy matching — a
	// one-letter header matches half the vocabulary at JW >= 0.75.
	if len(ln) < 3 {
		return "", 0
	}
	best, bestScore := "", 0.0
	keys := make([]string, 0, len(t.propIdx))
	for k := range t.propIdx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, syn := range keys {
		if s := text.JaroWinkler(ln, syn); s > bestScore {
			best, bestScore = t.propIdx[syn], s
		}
	}
	if bestScore >= 0.75 {
		return best, bestScore
	}
	return "", bestScore
}

// Property returns the property with the canonical name, or nil.
func (t *Taxonomy) Property(name string) *Property { return t.props[name] }

// Properties returns all canonical property names sorted.
func (t *Taxonomy) Properties() []string {
	out := make([]string, 0, len(t.props))
	for n := range t.props {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
