package ontology

// This file ships the built-in domain ontologies used by the examples and
// experiments. They substitute for the external resources the paper cites
// (The Product Types Ontology and schema.org, Example 4): only subsumption
// and label lookup are exercised by the wrangling components, so a compact
// curated taxonomy preserves the relevant behaviour.

// ProductTaxonomy returns the e-commerce product-types ontology together
// with the schema.org-like offer/product property vocabulary.
func ProductTaxonomy() *Taxonomy {
	classes := []Class{
		{ID: "product", Label: "Product"},

		{ID: "electronics", Label: "Electronics", Parent: "product"},
		{ID: "electronics/cables", Label: "Cables", Parent: "electronics", Synonyms: []string{"cable", "leads", "cords"}},
		{ID: "electronics/cables/usb", Label: "USB Cable", Parent: "electronics/cables", Synonyms: []string{"usb lead", "usb cord", "usb-c cable"}},
		{ID: "electronics/cables/hdmi", Label: "HDMI Cable", Parent: "electronics/cables", Synonyms: []string{"hdmi lead", "hdmi cord"}},
		{ID: "electronics/cables/ethernet", Label: "Ethernet Cable", Parent: "electronics/cables", Synonyms: []string{"network cable", "cat6 cable", "patch cable"}},
		{ID: "electronics/audio", Label: "Audio", Parent: "electronics"},
		{ID: "electronics/audio/headphones", Label: "Headphones", Parent: "electronics/audio", Synonyms: []string{"headset", "earphones", "earbuds"}},
		{ID: "electronics/audio/speakers", Label: "Speakers", Parent: "electronics/audio", Synonyms: []string{"loudspeaker", "bluetooth speaker"}},
		{ID: "electronics/peripherals", Label: "Peripherals", Parent: "electronics"},
		{ID: "electronics/peripherals/mouse", Label: "Computer Mouse", Parent: "electronics/peripherals", Synonyms: []string{"mouse", "wireless mouse", "gaming mouse"}},
		{ID: "electronics/peripherals/keyboard", Label: "Keyboard", Parent: "electronics/peripherals", Synonyms: []string{"mechanical keyboard", "wireless keyboard"}},
		{ID: "electronics/peripherals/webcam", Label: "Webcam", Parent: "electronics/peripherals", Synonyms: []string{"web camera", "usb camera"}},
		{ID: "electronics/peripherals/monitor", Label: "Monitor", Parent: "electronics/peripherals", Synonyms: []string{"display", "screen", "lcd monitor"}},
		{ID: "electronics/storage", Label: "Storage", Parent: "electronics"},
		{ID: "electronics/storage/ssd", Label: "Solid State Drive", Parent: "electronics/storage", Synonyms: []string{"ssd", "nvme drive"}},
		{ID: "electronics/storage/hdd", Label: "Hard Disk Drive", Parent: "electronics/storage", Synonyms: []string{"hdd", "hard drive", "external drive"}},
		{ID: "electronics/storage/usbstick", Label: "USB Flash Drive", Parent: "electronics/storage", Synonyms: []string{"usb stick", "flash drive", "pen drive", "memory stick"}},
		{ID: "electronics/phones", Label: "Phones", Parent: "electronics"},
		{ID: "electronics/phones/smartphone", Label: "Smartphone", Parent: "electronics/phones", Synonyms: []string{"mobile phone", "cell phone", "android phone"}},
		{ID: "electronics/phones/charger", Label: "Phone Charger", Parent: "electronics/phones", Synonyms: []string{"charger", "wall charger", "usb charger", "power adapter"}},
		{ID: "electronics/phones/case", Label: "Phone Case", Parent: "electronics/phones", Synonyms: []string{"phone cover", "protective case"}},

		{ID: "home", Label: "Home & Kitchen", Parent: "product"},
		{ID: "home/kitchen", Label: "Kitchen", Parent: "home"},
		{ID: "home/kitchen/kettle", Label: "Electric Kettle", Parent: "home/kitchen", Synonyms: []string{"kettle", "tea kettle"}},
		{ID: "home/kitchen/toaster", Label: "Toaster", Parent: "home/kitchen", Synonyms: []string{"bread toaster"}},
		{ID: "home/kitchen/blender", Label: "Blender", Parent: "home/kitchen", Synonyms: []string{"smoothie maker", "food blender"}},
		{ID: "home/lighting", Label: "Lighting", Parent: "home"},
		{ID: "home/lighting/desklamp", Label: "Desk Lamp", Parent: "home/lighting", Synonyms: []string{"table lamp", "led lamp"}},
		{ID: "home/lighting/bulb", Label: "Light Bulb", Parent: "home/lighting", Synonyms: []string{"led bulb", "smart bulb"}},

		{ID: "sports", Label: "Sports & Outdoors", Parent: "product"},
		{ID: "sports/fitness", Label: "Fitness", Parent: "sports"},
		{ID: "sports/fitness/yogamat", Label: "Yoga Mat", Parent: "sports/fitness", Synonyms: []string{"exercise mat", "fitness mat"}},
		{ID: "sports/fitness/dumbbell", Label: "Dumbbell", Parent: "sports/fitness", Synonyms: []string{"hand weight", "free weight"}},
		{ID: "sports/cycling", Label: "Cycling", Parent: "sports"},
		{ID: "sports/cycling/helmet", Label: "Bike Helmet", Parent: "sports/cycling", Synonyms: []string{"cycling helmet", "bicycle helmet"}},
		{ID: "sports/cycling/lock", Label: "Bike Lock", Parent: "sports/cycling", Synonyms: []string{"bicycle lock", "d-lock", "chain lock"}},

		{ID: "office", Label: "Office Supplies", Parent: "product"},
		{ID: "office/paper", Label: "Paper", Parent: "office", Synonyms: []string{"printer paper", "copy paper"}},
		{ID: "office/pens", Label: "Pens", Parent: "office", Synonyms: []string{"ballpoint pen", "gel pen"}},
		{ID: "office/notebooks", Label: "Notebooks", Parent: "office", Synonyms: []string{"notepad", "journal"}},
	}
	props := []Property{
		{Name: "sku", Synonyms: []string{"id", "product_id", "item_no", "item number", "ref", "article"}},
		{Name: "name", Synonyms: []string{"title", "product", "product_name", "item", "description_short", "label"}},
		{Name: "price", Synonyms: []string{"cost", "amount", "price_usd", "unit_price", "sale_price", "offer"}, Numeric: true},
		{Name: "currency", Synonyms: []string{"curr", "ccy", "price_currency"}},
		{Name: "brand", Synonyms: []string{"manufacturer", "maker", "vendor", "make"}},
		{Name: "category", Synonyms: []string{"cat", "department", "type", "product_type", "section"}},
		{Name: "availability", Synonyms: []string{"in_stock", "stock", "inventory", "avail"}},
		{Name: "rating", Synonyms: []string{"stars", "score", "review_score", "avg_rating"}, Numeric: true},
		{Name: "updated", Synonyms: []string{"last_updated", "timestamp", "as_of", "date", "modified"}},
		{Name: "url", Synonyms: []string{"link", "href", "product_url", "page"}},
	}
	t, err := New(classes, props)
	if err != nil {
		panic("ontology: built-in product taxonomy invalid: " + err.Error())
	}
	return t
}

// LocationTaxonomy returns the business-locations ontology used by Example
// 3 (check-in places: restaurants, offices, cinemas, ...) and its address
// property vocabulary.
func LocationTaxonomy() *Taxonomy {
	classes := []Class{
		{ID: "place", Label: "Place"},
		{ID: "place/food", Label: "Food & Drink", Parent: "place"},
		{ID: "place/food/restaurant", Label: "Restaurant", Parent: "place/food", Synonyms: []string{"bistro", "eatery", "diner", "trattoria"}},
		{ID: "place/food/cafe", Label: "Cafe", Parent: "place/food", Synonyms: []string{"coffee shop", "coffeehouse", "tearoom"}},
		{ID: "place/food/bar", Label: "Bar", Parent: "place/food", Synonyms: []string{"pub", "tavern", "wine bar"}},
		{ID: "place/entertainment", Label: "Entertainment", Parent: "place"},
		{ID: "place/entertainment/cinema", Label: "Cinema", Parent: "place/entertainment", Synonyms: []string{"movie theater", "movie theatre", "multiplex"}},
		{ID: "place/entertainment/theatre", Label: "Theatre", Parent: "place/entertainment", Synonyms: []string{"playhouse", "theater"}},
		{ID: "place/entertainment/museum", Label: "Museum", Parent: "place/entertainment", Synonyms: []string{"gallery", "art gallery"}},
		{ID: "place/work", Label: "Work", Parent: "place"},
		{ID: "place/work/office", Label: "Office", Parent: "place/work", Synonyms: []string{"workplace", "coworking space", "business centre"}},
		{ID: "place/retail", Label: "Retail", Parent: "place"},
		{ID: "place/retail/supermarket", Label: "Supermarket", Parent: "place/retail", Synonyms: []string{"grocery store", "grocer", "hypermarket"}},
		{ID: "place/retail/bookshop", Label: "Bookshop", Parent: "place/retail", Synonyms: []string{"bookstore", "book shop"}},
		{ID: "place/health", Label: "Health", Parent: "place"},
		{ID: "place/health/gym", Label: "Gym", Parent: "place/health", Synonyms: []string{"fitness centre", "fitness center", "health club"}},
		{ID: "place/health/pharmacy", Label: "Pharmacy", Parent: "place/health", Synonyms: []string{"chemist", "drugstore"}},
		{ID: "place/lodging", Label: "Lodging", Parent: "place"},
		{ID: "place/lodging/hotel", Label: "Hotel", Parent: "place/lodging", Synonyms: []string{"inn", "guesthouse", "b&b"}},
	}
	props := []Property{
		{Name: "name", Synonyms: []string{"business", "business_name", "venue", "place", "title"}},
		{Name: "street", Synonyms: []string{"address", "addr", "street_address", "address1", "road"}},
		{Name: "city", Synonyms: []string{"town", "locality", "municipality"}},
		{Name: "postcode", Synonyms: []string{"zip", "zipcode", "postal_code", "post_code"}},
		{Name: "lat", Synonyms: []string{"latitude", "geo_lat", "y"}, Numeric: true},
		{Name: "lon", Synonyms: []string{"longitude", "lng", "geo_lon", "x"}, Numeric: true},
		{Name: "category", Synonyms: []string{"type", "kind", "place_type", "venue_type"}},
		{Name: "phone", Synonyms: []string{"tel", "telephone", "phone_number", "contact"}},
		{Name: "url", Synonyms: []string{"website", "web", "homepage", "site", "link"}},
		{Name: "checkins", Synonyms: []string{"visits", "check_ins", "popularity"}, Numeric: true},
	}
	t, err := New(classes, props)
	if err != nil {
		panic("ontology: built-in location taxonomy invalid: " + err.Error())
	}
	return t
}
