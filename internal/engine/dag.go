package engine

import (
	"context"
	"fmt"
	"time"
)

// Task is one node of an execution graph: a unit of work plus the IDs of
// the tasks that must finish before it may start.
type Task struct {
	ID   string
	Deps []string
	Run  func(ctx context.Context) error
}

// Graph is a task DAG. Build it with Add, execute it with Run. A Graph is
// single-shot: it describes one execution, not a long-lived scheduler.
type Graph struct {
	tasks   []*Task
	byID    map[string]*Task
	timings map[string]time.Duration
	observe TaskObserver
}

// TaskObserver receives one callback per completed task — its ID, wall
// clock, and error (nil on success, *PanicError when the task panicked).
// Called on the scheduler goroutine, so implementations must be cheap
// and need no synchronization against other callbacks from the same Run.
type TaskObserver func(id string, d time.Duration, err error)

// Observe installs fn as the graph's task observer. Set it before Run;
// a nil fn disables observation.
func (g *Graph) Observe(fn TaskObserver) { g.observe = fn }

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	return &Graph{byID: map[string]*Task{}}
}

// Add registers a task. IDs must be unique and run must be non-nil;
// dependencies may be registered after their dependents (they are resolved
// at Run).
func (g *Graph) Add(id string, run func(ctx context.Context) error, deps ...string) error {
	if id == "" {
		return fmt.Errorf("engine: task id must be non-empty")
	}
	if run == nil {
		return fmt.Errorf("engine: task %q has nil run", id)
	}
	if _, dup := g.byID[id]; dup {
		return fmt.Errorf("engine: duplicate task id %q", id)
	}
	t := &Task{ID: id, Deps: append([]string(nil), deps...), Run: run}
	g.tasks = append(g.tasks, t)
	g.byID[id] = t
	return nil
}

// Len returns the number of registered tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// AddFanOut registers n tasks "prefix[000]".."prefix[n-1]" sharing the
// same dependencies, each running run with its index — the shape of a
// sharded stage whose outputs a later barrier task (depending on the
// returned ids) merges. Indices are zero-padded so task ids sort in
// fan-out order.
func (g *Graph) AddFanOut(prefix string, n int, run func(ctx context.Context, i int) error, deps ...string) ([]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("engine: fan-out %q needs at least one task, got %d", prefix, n)
	}
	if run == nil {
		return nil, fmt.Errorf("engine: fan-out %q has nil run", prefix)
	}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		ids[i] = fmt.Sprintf("%s[%03d]", prefix, i)
		if err := g.Add(ids[i], func(ctx context.Context) error { return run(ctx, i) }, deps...); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// Timings returns the wall-clock duration of every task that completed
// during Run, keyed by task ID. Tasks never dispatched (after a failure
// or cancellation) are absent. The map is owned by the graph and must
// only be read after Run returns; callers aggregating task times into
// stage times (e.g. RunStats) should copy what they need.
func (g *Graph) Timings() map[string]time.Duration { return g.timings }

// Run executes the graph on at most Workers(workers) concurrent
// goroutines and blocks until every task finished, one failed, or the
// context was cancelled.
//
// Scheduling is deterministic where it matters: ready tasks dispatch in
// registration order, so a sequential run (workers = 1) executes tasks in
// exactly the order they were added (topologically). With more workers
// only the interleaving changes — which tasks run is the same, and the
// caller's merge step decides result order.
//
// Failure semantics: the first task error (panics included, as
// *PanicError) wins; no new task starts after it, in-flight tasks are
// waited for, and the error is returned as-is. Cancellation is checked
// before every dispatch, so a cancelled context stops the fan-out at the
// next task boundary and returns ctx.Err().
func (g *Graph) Run(ctx context.Context, workers int) error {
	// Resolve dependencies up front: unknown deps are a construction bug,
	// reported before any work starts.
	indeg := make(map[string]int, len(g.tasks))
	dependents := make(map[string][]*Task, len(g.tasks))
	for _, t := range g.tasks {
		for _, d := range t.Deps {
			if _, ok := g.byID[d]; !ok {
				return fmt.Errorf("engine: task %q depends on unknown task %q", t.ID, d)
			}
			indeg[t.ID]++
			dependents[d] = append(dependents[d], t)
		}
	}

	// ready is a FIFO in registration order; next indexes into it.
	var ready []*Task
	for _, t := range g.tasks {
		if indeg[t.ID] == 0 {
			ready = append(ready, t)
		}
	}

	type doneMsg struct {
		task *Task
		err  error
		dur  time.Duration
	}
	g.timings = make(map[string]time.Duration, len(g.tasks))
	done := make(chan doneMsg)
	maxWorkers := Workers(workers)
	var (
		next     int
		running  int
		finished int
		firstErr error
	)
	for {
		// Dispatch while slots are free, work is ready and nothing failed.
		for firstErr == nil && next < len(ready) && running < maxWorkers {
			if err := ctx.Err(); err != nil {
				firstErr = err
				break
			}
			t := ready[next]
			next++
			running++
			go func(t *Task) {
				start := time.Now()
				err := guard(func() error { return t.Run(ctx) })
				done <- doneMsg{task: t, err: err, dur: time.Since(start)}
			}(t)
		}
		if running == 0 {
			break
		}
		msg := <-done
		running--
		finished++
		// Recorded on the scheduler goroutine only: the per-task wall
		// clock feeds per-stage attribution in RunStats instead of being
		// discarded with the worker goroutine.
		g.timings[msg.task.ID] = msg.dur
		if g.observe != nil {
			g.observe(msg.task.ID, msg.dur, msg.err)
		}
		if msg.err != nil && firstErr == nil {
			firstErr = msg.err
		}
		for _, d := range dependents[msg.task.ID] {
			indeg[d.ID]--
			if indeg[d.ID] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if finished < len(g.tasks) {
		return fmt.Errorf("engine: dependency cycle among %d unreachable tasks", len(g.tasks)-finished)
	}
	return nil
}
