package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != Sequential {
		t.Errorf("Workers(1) = %d", got)
	}
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got < 1 {
			t.Errorf("Workers(%d) = %d, want >= 1 (auto)", n, got)
		}
	}
}

func TestGraphRunsAllTasksRespectingDeps(t *testing.T) {
	g := NewGraph()
	var mu sync.Mutex
	var order []string
	record := func(id string) func(context.Context) error {
		return func(context.Context) error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	// Diamond: a → (b, c) → d.
	if err := g.Add("a", record("a")); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("b", record("b"), "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("c", record("c"), "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("d", record("d"), "b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("ran %d tasks, want 4 (%v)", len(order), order)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["a"] != 0 || pos["d"] != 3 {
		t.Errorf("barrier violated: order %v", order)
	}
}

func TestGraphSequentialOrderIsRegistrationOrder(t *testing.T) {
	g := NewGraph()
	var order []string
	for _, id := range []string{"t1", "t2", "t3", "t4"} {
		id := id
		if err := g.Add(id, func(context.Context) error {
			order = append(order, id)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(context.Background(), Sequential); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "t1,t2,t3,t4" {
		t.Errorf("sequential order = %s", got)
	}
}

func TestGraphBoundsConcurrency(t *testing.T) {
	const workers = 3
	g := NewGraph()
	var cur, peak int64
	for i := 0; i < 24; i++ {
		if err := g.Add(fmt.Sprintf("t%d", i), func(context.Context) error {
			n := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&cur, -1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(context.Background(), workers); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestGraphFirstErrorStopsDispatch(t *testing.T) {
	g := NewGraph()
	boom := errors.New("boom")
	var started int64
	if err := g.Add("bad", func(context.Context) error { return boom }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := g.Add(fmt.Sprintf("after%d", i), func(context.Context) error {
			atomic.AddInt64(&started, 1)
			return nil
		}, "bad"); err != nil {
			t.Fatal(err)
		}
	}
	err := g.Run(context.Background(), 4)
	if !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want boom", err)
	}
	if n := atomic.LoadInt64(&started); n != 0 {
		t.Errorf("%d dependents of the failed task started", n)
	}
}

func TestGraphPanicIsolation(t *testing.T) {
	g := NewGraph()
	if err := g.Add("ok", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("panics", func(context.Context) error { panic("poisoned source") }); err != nil {
		t.Fatal(err)
	}
	err := g.Run(context.Background(), 2)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run err = %v, want *PanicError", err)
	}
	if pe.Value != "poisoned source" || len(pe.Stack) == 0 {
		t.Errorf("panic error lost its payload: %v", pe)
	}
}

func TestGraphCancellationStopsFanOut(t *testing.T) {
	g := NewGraph()
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	if err := g.Add("canceller", func(context.Context) error {
		cancel()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := g.Add(fmt.Sprintf("t%d", i), func(context.Context) error {
			atomic.AddInt64(&ran, 1)
			return nil
		}, "canceller"); err != nil {
			t.Fatal(err)
		}
	}
	err := g.Run(ctx, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n != 0 {
		t.Errorf("%d tasks started after cancellation", n)
	}
}

func TestGraphRejectsBadConstruction(t *testing.T) {
	g := NewGraph()
	if err := g.Add("", func(context.Context) error { return nil }); err == nil {
		t.Error("empty id accepted")
	}
	if err := g.Add("x", nil); err == nil {
		t.Error("nil run accepted")
	}
	if err := g.Add("x", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("x", func(context.Context) error { return nil }); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestGraphUnknownDependency(t *testing.T) {
	g := NewGraph()
	if err := g.Add("a", func(context.Context) error { return nil }, "ghost"); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("Run err = %v, want unknown-dependency error naming ghost", err)
	}
}

func TestGraphDetectsCycle(t *testing.T) {
	g := NewGraph()
	if err := g.Add("a", func(context.Context) error { return nil }, "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("b", func(context.Context) error { return nil }, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background(), 2); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Run err = %v, want cycle error", err)
	}
}

func TestMapVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 8, 100} {
		n := 237
		visits := make([]int64, n)
		err := Map(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt64(&visits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if err := Map(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("fn called for empty input")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapSliceOrdersResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := MapSlice(context.Background(), 8, items, func(_ context.Context, x int) (string, error) {
		if x%7 == 0 {
			time.Sleep(time.Duration(x%3) * time.Millisecond) // scramble completion order
		}
		return fmt.Sprintf("v%d", x), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("out[%d] = %s", i, v)
		}
	}
}

func TestGraphTimingsRecorded(t *testing.T) {
	g := NewGraph()
	if err := g.Add("fast", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("slow", func(context.Context) error {
		time.Sleep(20 * time.Millisecond)
		return nil
	}, "fast"); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	tm := g.Timings()
	if len(tm) != 2 {
		t.Fatalf("Timings = %v, want both tasks", tm)
	}
	if tm["slow"] < 20*time.Millisecond {
		t.Errorf("slow task timed at %s, want >= 20ms", tm["slow"])
	}
}

func TestGraphTimingsOmitUndispatched(t *testing.T) {
	boom := errors.New("boom")
	g := NewGraph()
	if err := g.Add("fail", func(context.Context) error { return boom }); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("never", func(context.Context) error { return nil }, "fail"); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background(), 1); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	tm := g.Timings()
	if _, ok := tm["never"]; ok {
		t.Error("undispatched task should have no timing")
	}
	if _, ok := tm["fail"]; !ok {
		t.Error("failed task should still be timed")
	}
}

func TestMapSliceFirstError(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapSlice(context.Background(), 4, []int{1, 2, 3, 4}, func(_ context.Context, x int) (int, error) {
		if x == 3 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMapCancellationBetweenItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	err := Map(ctx, 1, 1000, func(_ context.Context, i int) error {
		if atomic.AddInt64(&ran, 1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= 1000 {
		t.Errorf("map ran to completion (%d items) despite cancellation", n)
	}
}
