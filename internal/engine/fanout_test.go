package engine

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestAddFanOut wires a plan → fan-out → barrier shape (the sharded
// integration stage) and checks every index ran exactly once before the
// barrier.
func TestAddFanOut(t *testing.T) {
	g := NewGraph()
	if err := g.Add("plan", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var ran [8]atomic.Int32
	ids, err := g.AddFanOut("shard", 8, func(_ context.Context, i int) error {
		ran[i].Add(1)
		return nil
	}, "plan")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 || ids[0] != "shard[000]" || ids[7] != "shard[007]" {
		t.Fatalf("ids = %v", ids)
	}
	barrier := false
	if err := g.Add("merge", func(context.Context) error {
		for i := range ran {
			if ran[i].Load() != 1 {
				t.Errorf("shard %d ran %d times before the barrier", i, ran[i].Load())
			}
		}
		barrier = true
		return nil
	}, ids...); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if !barrier {
		t.Fatal("barrier never ran")
	}
}

// TestAddFanOutValidation rejects empty fan-outs and nil run functions.
func TestAddFanOutValidation(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddFanOut("s", 0, func(context.Context, int) error { return nil }); err == nil {
		t.Error("n=0 should be rejected")
	}
	if _, err := g.AddFanOut("s", 2, nil); err == nil {
		t.Error("nil run should be rejected")
	}
	if _, err := g.AddFanOut("s", 2, func(context.Context, int) error { return nil }); err != nil {
		t.Errorf("valid fan-out rejected: %v", err)
	}
	// Duplicate prefix collides with the already-registered ids.
	if _, err := g.AddFanOut("s", 2, func(context.Context, int) error { return nil }); err == nil {
		t.Error("duplicate fan-out ids should be rejected")
	}
}
