package engine

import (
	"context"
	"fmt"

	"repro/internal/scale"
)

// batchesPerWorker oversubscribes the partition count so a slow batch at
// the tail does not leave the other workers idle: with k batches per
// worker the worst-case idle tail shrinks to ~1/k of the work.
const batchesPerWorker = 4

// Map applies fn to every index in [0, n) on at most Workers(workers)
// goroutines. Contiguous index ranges are batched per stage (reusing
// scale.Partition, the §4.3 partitioner) so per-item scheduling overhead
// amortises across a batch. fn writes results into caller-owned slots —
// Map guarantees every index is visited exactly once before returning nil,
// so indexing a pre-sized results slice is race-free and ordered by
// construction.
//
// The first fn error (or recovered panic) stops the fan-out: no new batch
// starts, in-flight batches finish their current item, and that error is
// returned. Cancellation is checked between items and between batches.
func Map(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	parts := scale.Partition(n, w*batchesPerWorker)
	g := NewGraph()
	for bi, p := range parts {
		lo, hi := p[0], p[1]
		if err := g.Add(fmt.Sprintf("batch-%03d", bi), func(ctx context.Context) error {
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := fn(ctx, i); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return g.Run(ctx, w)
}

// MapSlice is Map over a slice with collected results: out[i] corresponds
// to items[i] regardless of which worker computed it or when it finished —
// the deterministic-merge contract callers rely on for byte-identical
// parallel runs. On error the partial results are discarded.
func MapSlice[S, T any](ctx context.Context, workers int, items []S, fn func(ctx context.Context, item S) (T, error)) ([]T, error) {
	out := make([]T, len(items))
	err := Map(ctx, workers, len(items), func(ctx context.Context, i int) error {
		var err error
		out[i], err = fn(ctx, items[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
