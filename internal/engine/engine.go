// Package engine is the execution substrate behind a wrangling run: a
// bounded worker pool plus a small task-DAG model. The pipeline of the
// paper's Figure 1 is embarrassingly parallel per source — every source's
// extract/match/map chain is independent — so the orchestrator describes
// the run as a DAG (per-source tasks fan out, a barrier feeds selection,
// then integration) and the engine decides how much hardware to throw at
// it (§4.3: "the scale of the data requires that the algorithms ... are
// executed on scalable infrastructures").
//
// Execution policy lives here and only here: callers state *what* depends
// on *what*; the engine owns worker bounds, batching (reusing
// scale.Partition), panic isolation, first-error propagation and
// context-cancellation. Results merge deterministically — a parallel run
// is byte-identical to a sequential one — because the engine never decides
// merge order, it only guarantees completion order within the DAG.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Sequential is the worker count that forces one-task-at-a-time execution.
const Sequential = 1

// Workers normalises a requested parallelism degree: n >= 1 is taken
// verbatim, anything else (0, negatives) means "auto" — one worker per
// available CPU. This is the single policy point every caller goes
// through, so "auto" means the same thing across the codebase.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// PanicError wraps a panic recovered inside a task so one poisoned source
// cannot take down the whole run: the panic becomes an ordinary error with
// the captured stack, subject to the same first-error propagation as any
// other failure.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: task panicked: %v\n%s", p.Value, p.Stack)
}

// guard runs fn converting panics into *PanicError.
func guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
