package serve

import "repro/internal/obs"

// storeMetrics are the serving-layer handles, resolved once at
// Instrument so the hot paths (Latest in particular) pay one nil check
// when telemetry is off and one atomic add when it is on.
type storeMetrics struct {
	publishes    *obs.Counter
	reads        *obs.Counter
	timeTravel   *obs.Counter
	errCompacted *obs.Counter
	errNotFound  *obs.Counter
	subscribes   *obs.Counter
	deliveries   *obs.Counter
	evictions    *obs.Counter
	watchers     *obs.Gauge
}

// Instrument registers the store's serving metrics on reg and starts
// recording: publishes, lock-free reads, time-travel reads, typed read
// errors (compacted vs not-found — shared by At and Watch catch-up),
// and the change-feed's subscribe/delivery/eviction counters plus the
// live-watcher gauge. Call it before the store is shared across
// goroutines (it writes an unsynchronised field the read path loads);
// a nil reg is a no-op.
func (s *Store[T]) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("wrangle_serve_reads_total", "Lock-free Latest() reads served.")
	reg.Help("wrangle_serve_read_errors_total", "Version reads rejected, by kind (compacted vs not_found).")
	reg.Help("wrangle_watch_evictions_total", "Subscribers evicted for a full delivery buffer.")
	s.met = &storeMetrics{
		publishes:    reg.Counter("wrangle_serve_publishes_total"),
		reads:        reg.Counter("wrangle_serve_reads_total"),
		timeTravel:   reg.Counter("wrangle_serve_timetravel_total"),
		errCompacted: reg.Counter("wrangle_serve_read_errors_total", "kind", "compacted"),
		errNotFound:  reg.Counter("wrangle_serve_read_errors_total", "kind", "not_found"),
		subscribes:   reg.Counter("wrangle_watch_subscribes_total"),
		deliveries:   reg.Counter("wrangle_watch_deliveries_total"),
		evictions:    reg.Counter("wrangle_watch_evictions_total"),
		watchers:     reg.Gauge("wrangle_watchers"),
	}
}
