package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRestoreResumesExactly pins the rehydration contract: a fresh store
// restored from saved versions serves the exact sequence numbers, stamps
// and data the saved store retained, and the next Publish continues the
// sequence instead of restarting at 1.
func TestRestoreResumesExactly(t *testing.T) {
	s := NewStore[payload](3)
	saved := []RestoredVersion[payload]{
		{Seq: 7, Step: 70, Origin: OriginRun, At: time.Unix(700, 1), Data: payload{n: 7, label: "g"}, Changes: ChangeSet{Full: true}},
		{Seq: 8, Step: 81, Origin: OriginFeedback, At: time.Unix(800, 2), Data: payload{n: 8, label: "h"}, Changes: ChangeSet{ChangedShards: []int{1}}},
		{Seq: 9, Step: 95, Origin: OriginRefresh, At: time.Unix(900, 3), Data: payload{n: 9, label: "i"}},
	}
	if err := s.Restore(saved); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := s.Versions(); len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Fatalf("Versions = %v, want [7 8 9]", got)
	}
	if got := s.Latest(); got.Seq() != 9 || got.Data().label != "i" {
		t.Fatalf("Latest = seq %d %+v", got.Seq(), got.Data())
	}
	v8, err := s.At(8)
	if err != nil {
		t.Fatalf("At(8): %v", err)
	}
	if v8.Step() != 81 || v8.Origin() != OriginFeedback || !v8.At().Equal(time.Unix(800, 2)) {
		t.Fatalf("At(8) stamps = step %d origin %q at %v", v8.Step(), v8.Origin(), v8.At())
	}
	if ch := v8.Changes(); ch.Full || len(ch.ChangedShards) != 1 {
		t.Fatalf("At(8) changes = %+v", ch)
	}
	// Versions below the restored window answer exactly like pruned ones.
	if _, err := s.At(6); !errors.Is(err, ErrCompacted) {
		t.Fatalf("At(6) = %v, want ErrCompacted", err)
	}
	// The sequence counter resumed: the next publish is seq 10.
	v := s.Publish(payload{n: 10}, 100, OriginRefresh, time.Unix(1000, 0), ChangeSet{})
	if v.Seq() != 10 {
		t.Fatalf("post-restore Publish seq = %d, want 10", v.Seq())
	}
}

// TestRestoreTrimsToRetention: a log may hold more versions than the
// window (between compactions); Restore keeps only the newest
// retain-window's worth.
func TestRestoreTrimsToRetention(t *testing.T) {
	s := NewStore[payload](2)
	var saved []RestoredVersion[payload]
	for i := 1; i <= 5; i++ {
		saved = append(saved, RestoredVersion[payload]{Seq: uint64(i), Data: payload{n: i}})
	}
	if err := s.Restore(saved); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := s.Versions(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Versions = %v, want [4 5]", got)
	}
	if _, err := s.At(3); !errors.Is(err, ErrCompacted) {
		t.Fatalf("At(3) = %v, want ErrCompacted", err)
	}
}

// TestRestoreRefusesMisuse pins the construction-time guard rails: used
// stores and out-of-order sequences are refused, empty restores are
// no-ops.
func TestRestoreRefusesMisuse(t *testing.T) {
	used := NewStore[payload](2)
	used.Publish(payload{n: 1}, 1, OriginRun, time.Unix(1, 0), ChangeSet{})
	if err := used.Restore([]RestoredVersion[payload]{{Seq: 5}}); err == nil {
		t.Fatal("restore into a published store accepted")
	}

	s := NewStore[payload](2)
	if err := s.Restore([]RestoredVersion[payload]{{Seq: 2}, {Seq: 2}}); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
	if err := s.Restore([]RestoredVersion[payload]{{Seq: 0}}); err == nil {
		t.Fatal("zero sequence accepted")
	}
	// The failed restores above must not have marked the store used.
	if err := s.Restore(nil); err != nil {
		t.Fatalf("empty restore: %v", err)
	}
	if err := s.Restore([]RestoredVersion[payload]{{Seq: 3, Data: payload{n: 3}}}); err != nil {
		t.Fatalf("restore after no-op: %v", err)
	}
	if got := s.Latest(); got == nil || got.Seq() != 3 {
		t.Fatalf("Latest after restore = %v", got)
	}
}

// TestRestoreWatchCatchUp pins the reason Restore keeps original seqs: a
// watcher subscribing from a version inside the restored window replays
// the retained catch-up versions exactly as if the store had never been
// saved.
func TestRestoreWatchCatchUp(t *testing.T) {
	s := NewStore[payload](3)
	err := s.Restore([]RestoredVersion[payload]{
		{Seq: 4, Data: payload{n: 4}},
		{Seq: 5, Data: payload{n: 5}},
		{Seq: 6, Data: payload{n: 6}},
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	ctx := context.Background()
	ch, cancel, err := s.Watch(ctx, 4)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer cancel()
	for _, want := range []uint64{5, 6} {
		select {
		case c := <-ch:
			if c.Version.Seq() != want {
				t.Fatalf("catch-up delivered seq %d, want %d", c.Version.Seq(), want)
			}
		default:
			t.Fatalf("catch-up for seq %d not buffered", want)
		}
	}
	// Below the window the watch refuses with the compaction error, same
	// as a live store.
	if _, _, err := s.Watch(ctx, 2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Watch(2) = %v, want ErrCompacted", err)
	}
}
