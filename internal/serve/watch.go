package serve

// This file is the push side of the serving layer: a change-feed over the
// versioned snapshot store. Readers that poll Latest re-download state
// they mostly already have; a watcher instead subscribes once and is
// handed every committed version as it lands, together with the
// publisher's own summary of what changed (the ChangeSet the delta
// publication path already computes) — so a subscriber's per-version cost
// is O(delta), not O(snapshot).
//
// The design constraints, in order:
//
//  1. Publish never blocks. A publisher is the wrangling loop itself;
//     one stuck subscriber must not stall every other consumer. Every
//     delivery is a non-blocking send into a bounded per-subscriber
//     buffer.
//  2. Streams are gapless and monotonic. Subscription and delivery
//     happen under the store's writer lock, so a subscriber sees every
//     version from its start seq onwards, exactly once, in order — or
//     an explicit eviction notice, never a silent gap.
//  3. Eviction is deterministic. When a subscriber's buffer is full at
//     delivery time it is evicted: one final Change with Evicted set is
//     placed in a reserved buffer slot and the channel is closed. Which
//     publish evicts a non-draining subscriber depends only on the
//     buffer size and the number of publishes, not on scheduling.
//
// Catch-up: Watch(fromSeq) replays the retained versions after fromSeq
// before going live, atomically with registration. A fromSeq whose
// successor has already been pruned reports ErrCompacted — the same
// typed error At returns for a pruned seq — telling the subscriber to
// re-bootstrap from a full snapshot instead.

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// ErrCompacted reports that a requested version precedes the store's
// retention window: it was published once but has been pruned, so neither
// time-travel (At) nor change-feed catch-up (Watch) can serve it. The
// caller should re-bootstrap from Latest.
var ErrCompacted = errors.New("serve: version compacted out of the retention window")

// DefaultWatchBuffer is the per-subscriber delivery buffer used when the
// caller does not choose: enough to ride out a multi-version catch-up and
// short consumer stalls while keeping per-subscriber memory bounded.
const DefaultWatchBuffer = 16

// ChangeSet is the publisher's summary of what a version changed relative
// to its predecessor — the delta-publication knowledge (which shard pages
// were rebuilt, which were shared by pointer) threaded through Publish so
// subscribers receive O(delta) payloads. The zero ChangeSet means "the
// publisher made no claim"; a publisher with no delta knowledge should set
// Full instead.
type ChangeSet struct {
	// Full marks a version whose entire payload must be treated as
	// changed: the first publication, a sequential (non-delta) pipeline,
	// or any path that cannot bound the delta. When Full is set the
	// per-shard and per-record fields are meaningless and left empty.
	Full bool
	// ChangedShards lists the shards whose pages were rebuilt for this
	// version, ascending. Shards not listed kept their records shared by
	// pointer with the predecessor version.
	ChangedShards []int
	// ChangedPages and SharedPages count the rebuilt versus
	// pointer-shared shard pages — the delta-publication observability
	// numbers, denominated in pages.
	ChangedPages int
	SharedPages  int
	// ChangedRecords lists the ids of records that are new or carry
	// different values than in the predecessor version, ascending.
	ChangedRecords []string
	// RemovedRecords lists the ids of records present in the predecessor
	// but absent from this version, ascending.
	RemovedRecords []string
}

// Delta reports whether the change set bounds the change (not Full): only
// the listed shards and records moved, everything else is shared.
func (c ChangeSet) Delta() bool { return !c.Full }

// Change is one change-feed event: the committed version plus the
// publisher's change summary. For an eviction notice (Evicted set)
// Version identifies the publication the subscriber could not accept;
// the subscriber's stream ends immediately after.
type Change[T any] struct {
	// Version is the committed version this event announces. It carries
	// the seq/step/origin/at metadata and the immutable payload; for the
	// versions a ChangeSet declares shared, the payload's storage is
	// shared by pointer with the predecessor, so holding many changes
	// costs O(sum of deltas), not O(versions × snapshot).
	Version *Version[T]
	// Changes summarises what this version changed — what the
	// publisher passed to Publish.
	Changes ChangeSet
	// Evicted marks the final event of a subscriber that fell behind:
	// its buffer was full when Version was published. The channel is
	// closed right after; re-subscribe with Watch(lastSeenSeq) to
	// resume (or re-bootstrap if already compacted).
	Evicted bool
}

// Seq returns the announced version's sequence number.
func (c Change[T]) Seq() uint64 { return c.Version.Seq() }

// CancelFunc detaches a watcher. Idempotent and safe to call
// concurrently; after it returns no further deliveries are made and the
// subscription channel is (or will immediately be) closed.
type CancelFunc func()

// watcher is one subscription's server-side state. All fields are guarded
// by the store's writer mutex.
type watcher[T any] struct {
	id uint64
	ch chan Change[T]
	// limit is the number of queued-but-undelivered changes that forces
	// eviction on the next delivery; cap(ch) is limit+1, reserving one
	// slot so the eviction notice itself can always be delivered.
	limit int
	// gone marks a watcher already removed (evicted or cancelled), so
	// the losing side of a cancel/evict race does not close ch twice.
	gone bool
}

// SetWatchBuffer sets the per-subscriber delivery buffer for subsequent
// Watch calls (n < 1 restores DefaultWatchBuffer). Existing subscriptions
// keep the buffer they were created with.
func (s *Store[T]) SetWatchBuffer(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 0
	}
	s.watchBuf = n
}

// WatchBuffer returns the per-subscriber buffer bound new subscriptions
// get.
func (s *Store[T]) WatchBuffer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.watchBuf < 1 {
		return DefaultWatchBuffer
	}
	return s.watchBuf
}

// Watch subscribes to the change feed from just after fromSeq: the
// returned channel first replays every retained version with seq >
// fromSeq (catch-up), then delivers each subsequent publication, gapless
// and in order. fromSeq is the last version the subscriber has already
// seen — 0 subscribes from the beginning, Latest().Seq() from "now".
//
// Errors: ErrCompacted if a needed version has already been pruned
// (fromSeq below the retention window — re-bootstrap from Latest), or a
// plain error if fromSeq exceeds the latest published seq.
//
// Delivery is push with a bounded per-subscriber buffer (SetWatchBuffer):
// a subscriber whose buffer is full at publish time receives one final
// Change with Evicted set and its channel is closed — Publish never
// blocks on a slow consumer. Cancelling (the CancelFunc, or ctx) closes
// the channel without an eviction notice. The channel is closed in every
// termination path, so consumers may simply range over it.
func (s *Store[T]) Watch(ctx context.Context, fromSeq uint64) (<-chan Change[T], CancelFunc, error) {
	s.mu.Lock()
	if fromSeq > s.seq {
		s.mu.Unlock()
		if m := s.met; m != nil {
			m.errNotFound.Inc()
		}
		return nil, nil, fmt.Errorf("serve: watch from %d: version not yet published (latest is %d)", fromSeq, s.seq)
	}
	var replay []*Version[T]
	for _, v := range s.history {
		if v.seq > fromSeq {
			replay = append(replay, v)
		}
	}
	// The subscriber needs every version in (fromSeq, seq]; retention
	// must still hold all of them. The boundary is exact: with oldest
	// retained seq O, fromSeq = O-1 is serveable and fromSeq = O-2 is
	// not (version O-1 is gone).
	if want := s.seq - fromSeq; uint64(len(replay)) < want {
		s.mu.Unlock()
		if m := s.met; m != nil {
			m.errCompacted.Inc()
		}
		return nil, nil, fmt.Errorf("serve: watch from %d: %d of %d catch-up versions %w", fromSeq, want-uint64(len(replay)), want, ErrCompacted)
	}
	buf := s.watchBuf
	if buf < 1 {
		buf = DefaultWatchBuffer
	}
	// The buffer always admits the whole catch-up: replay is bounded by
	// retention, so this stays O(retain) even for tiny buffers, and a
	// subscriber is never evicted by its own subscription.
	if len(replay) > buf {
		buf = len(replay)
	}
	s.watchSeq++
	w := &watcher[T]{id: s.watchSeq, ch: make(chan Change[T], buf+1), limit: buf}
	for _, v := range replay {
		w.ch <- Change[T]{Version: v, Changes: v.changes}
	}
	s.watchers = append(s.watchers, w)
	if m := s.met; m != nil {
		m.subscribes.Inc()
		m.deliveries.Add(int64(len(replay)))
		m.watchers.Set(float64(len(s.watchers)))
	}
	s.mu.Unlock()

	stop := make(chan struct{})
	cancel := func() { s.unwatch(w, stop) }
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				cancel()
			case <-stop:
			}
		}()
	}
	return w.ch, cancel, nil
}

// Watchers reports the number of live subscriptions.
func (s *Store[T]) Watchers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.watchers)
}

// unwatch detaches a watcher: the CancelFunc path. It closes the channel
// only if the publisher has not already evicted (and closed) it.
func (s *Store[T]) unwatch(w *watcher[T], stop chan struct{}) {
	s.mu.Lock()
	if !w.gone {
		w.gone = true
		s.removeWatcher(w.id)
		close(w.ch)
		if m := s.met; m != nil {
			m.watchers.Set(float64(len(s.watchers)))
		}
	}
	s.mu.Unlock()
	// Release the ctx goroutine. Guarded: CancelFunc is idempotent.
	select {
	case <-stop:
	default:
		close(stop)
	}
}

// removeWatcher drops the watcher with the given id from the registry.
// Callers hold s.mu.
func (s *Store[T]) removeWatcher(id uint64) {
	for i, w := range s.watchers {
		if w.id == id {
			s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
			return
		}
	}
}

// notifyWatchers delivers a freshly committed version to every
// subscriber. Callers hold s.mu, so delivery is atomic with the commit:
// no publication can interleave between a subscriber's catch-up and its
// first live delivery, and every subscriber sees versions in seq order.
//
// Deliveries are non-blocking by construction: a watcher with buffer
// space gets the change; a watcher whose buffer is full is evicted —
// deterministically, in subscription order — via the reserved
// eviction slot. Publish therefore never waits on any consumer.
func (s *Store[T]) notifyWatchers(v *Version[T]) {
	if len(s.watchers) == 0 {
		return
	}
	c := Change[T]{Version: v, Changes: v.changes}
	var evicted []*watcher[T]
	for _, w := range s.watchers {
		if len(w.ch) >= w.limit {
			// Buffer full: the reserved slot carries the eviction notice
			// (metadata only — the payload the subscriber missed is not
			// pinned into its queue).
			w.gone = true
			w.ch <- Change[T]{Version: v, Evicted: true}
			close(w.ch)
			evicted = append(evicted, w)
			continue
		}
		w.ch <- c
	}
	for _, w := range evicted {
		s.removeWatcher(w.id)
	}
	if m := s.met; m != nil {
		m.deliveries.Add(int64(len(s.watchers)))
		if len(evicted) > 0 {
			m.evictions.Add(int64(len(evicted)))
			m.watchers.Set(float64(len(s.watchers)))
		}
	}
}

// normalize sorts a ChangeSet's slices so equal change sets compare and
// serialise identically regardless of how the publisher assembled them.
func (c *ChangeSet) normalize() {
	sort.Ints(c.ChangedShards)
	sort.Strings(c.ChangedRecords)
	sort.Strings(c.RemovedRecords)
}
