package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func publishN(s *Store[payload], from, to int) {
	for i := from; i <= to; i++ {
		s.Publish(payload{n: i}, uint64(i), OriginRefresh, time.Unix(int64(i), 0),
			ChangeSet{ChangedShards: []int{i % 4}, ChangedPages: 1, SharedPages: 3})
	}
}

// recv reads one change with a timeout so a delivery bug fails the test
// instead of hanging it.
func recv(t *testing.T, ch <-chan Change[payload]) (Change[payload], bool) {
	t.Helper()
	select {
	case c, ok := <-ch:
		return c, ok
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for change")
		return Change[payload]{}, false
	}
}

func TestWatchDeliversInOrder(t *testing.T) {
	s := NewStore[payload](8)
	ch, cancel, err := s.Watch(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	publishN(s, 1, 3)
	for want := 1; want <= 3; want++ {
		c, ok := recv(t, ch)
		if !ok {
			t.Fatalf("channel closed before seq %d", want)
		}
		if c.Evicted {
			t.Fatalf("unexpected eviction at seq %d", want)
		}
		if got := c.Seq(); got != uint64(want) {
			t.Fatalf("seq = %d, want %d", got, want)
		}
		if c.Version.Data().n != want {
			t.Fatalf("payload %d for seq %d (torn change)", c.Version.Data().n, want)
		}
		if len(c.Changes.ChangedShards) != 1 || c.Changes.ChangedShards[0] != want%4 {
			t.Fatalf("changes = %+v, want shard %d", c.Changes, want%4)
		}
	}
}

func TestWatchCatchUpReplay(t *testing.T) {
	s := NewStore[payload](8)
	publishN(s, 1, 3)
	// fromSeq = 1: the subscriber saw version 1, catch-up replays 2 and 3,
	// then the live publish of 4 follows with no gap.
	ch, cancel, err := s.Watch(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	publishN(s, 4, 4)
	for want := 2; want <= 4; want++ {
		c, _ := recv(t, ch)
		if got := c.Seq(); got != uint64(want) {
			t.Fatalf("seq = %d, want %d", got, want)
		}
		// Replayed changes carry the same ChangeSet a live watcher saw.
		if c.Changes.ChangedPages != 1 || c.Changes.SharedPages != 3 {
			t.Fatalf("replayed changes = %+v", c.Changes)
		}
	}
}

// TestWatchCompactedBoundary pins the retention boundary exactly: with
// versions 4..5 retained (retain 2 after 5 publishes), the oldest
// serveable fromSeq is 3 (its successor 4 is retained) and fromSeq 2 is
// compacted (version 3 is gone). At must agree: At(3) is the same typed
// ErrCompacted, At(4) serves.
func TestWatchCompactedBoundary(t *testing.T) {
	s := NewStore[payload](2)
	publishN(s, 1, 5)

	if _, err := s.At(3); !errors.Is(err, ErrCompacted) {
		t.Fatalf("At(3) = %v, want ErrCompacted", err)
	}
	if _, err := s.At(4); err != nil {
		t.Fatalf("At(4) = %v, want retained", err)
	}
	if _, err := s.At(99); errors.Is(err, ErrCompacted) || err == nil {
		t.Fatalf("At(99) = %v, want a plain never-published error", err)
	}

	if _, _, err := s.Watch(context.Background(), 2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Watch(from=2) = %v, want ErrCompacted", err)
	}
	ch, cancel, err := s.Watch(context.Background(), 3)
	if err != nil {
		t.Fatalf("Watch(from=3) = %v, want serveable (oldest retained is 4)", err)
	}
	defer cancel()
	for want := 4; want <= 5; want++ {
		c, _ := recv(t, ch)
		if got := c.Seq(); got != uint64(want) {
			t.Fatalf("seq = %d, want %d", got, want)
		}
	}
	if _, _, err := s.Watch(context.Background(), 9); err == nil || errors.Is(err, ErrCompacted) {
		t.Fatalf("Watch(from=9) = %v, want a plain future-seq error", err)
	}
}

// TestWatchSlowConsumerEviction proves the two slow-consumer guarantees:
// Publish never blocks (every publish below returns with nothing
// draining the channel), and eviction is deterministic — with buffer b,
// a non-draining subscriber holds exactly b changes and the (b+1)-th
// publish evicts it, every run.
func TestWatchSlowConsumerEviction(t *testing.T) {
	const buf = 2
	s := NewStore[payload](8)
	s.SetWatchBuffer(buf)
	ch, cancel, err := s.Watch(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	done := make(chan struct{})
	go func() {
		// Nothing reads ch while these run: if Publish could block on a
		// full subscriber buffer this goroutine would hang and the test
		// would time out.
		publishN(s, 1, buf+5)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow consumer")
	}

	for want := 1; want <= buf; want++ {
		c, _ := recv(t, ch)
		if c.Evicted || c.Seq() != uint64(want) {
			t.Fatalf("change %d = seq %d evicted=%v", want, c.Seq(), c.Evicted)
		}
	}
	// The eviction notice names the first version that did not fit.
	c, ok := recv(t, ch)
	if !ok || !c.Evicted {
		t.Fatalf("want eviction notice, got ok=%v evicted=%v", ok, c.Evicted)
	}
	if got := c.Seq(); got != uint64(buf+1) {
		t.Fatalf("eviction at seq %d, want %d (deterministic)", got, buf+1)
	}
	if _, ok := recv(t, ch); ok {
		t.Fatal("channel should be closed after the eviction notice")
	}
	if got := s.Watchers(); got != 0 {
		t.Fatalf("Watchers = %d after eviction, want 0", got)
	}
}

func TestWatchCancel(t *testing.T) {
	s := NewStore[payload](8)
	ch, cancel, err := s.Watch(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	publishN(s, 1, 1)
	cancel()
	cancel() // idempotent
	publishN(s, 2, 2)
	// The pending change (published before cancel) may still be read;
	// the channel then closes with no eviction notice.
	sawClose := false
	for i := 0; i < 3; i++ {
		c, ok := recv(t, ch)
		if !ok {
			sawClose = true
			break
		}
		if c.Evicted {
			t.Fatal("cancel must not deliver an eviction notice")
		}
		if c.Seq() != 1 {
			t.Fatalf("post-cancel delivery of seq %d", c.Seq())
		}
	}
	if !sawClose {
		t.Fatal("channel not closed after cancel")
	}
	if got := s.Watchers(); got != 0 {
		t.Fatalf("Watchers = %d after cancel, want 0", got)
	}
}

func TestWatchContextCancel(t *testing.T) {
	s := NewStore[payload](8)
	ctx, stop := context.WithCancel(context.Background())
	ch, _, err := s.Watch(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("channel not closed after context cancellation")
		}
	}
}

func TestWatchBufferDefaultsAndFloor(t *testing.T) {
	s := NewStore[payload](4)
	if got := s.WatchBuffer(); got != DefaultWatchBuffer {
		t.Fatalf("WatchBuffer = %d, want default %d", got, DefaultWatchBuffer)
	}
	s.SetWatchBuffer(3)
	if got := s.WatchBuffer(); got != 3 {
		t.Fatalf("WatchBuffer = %d, want 3", got)
	}
	s.SetWatchBuffer(0)
	if got := s.WatchBuffer(); got != DefaultWatchBuffer {
		t.Fatalf("WatchBuffer = %d after reset, want default", got)
	}

	// A catch-up longer than the buffer must not self-evict: the buffer
	// stretches to hold the replay.
	s.SetWatchBuffer(1)
	publishN(s, 1, 4)
	ch, cancel, err := s.Watch(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for want := 1; want <= 4; want++ {
		c, _ := recv(t, ch)
		if c.Evicted || c.Seq() != uint64(want) {
			t.Fatalf("catch-up change = seq %d evicted=%v, want %d", c.Seq(), c.Evicted, want)
		}
	}
}

// TestWatchConcurrentWatchers races 16 watchers (subscribing at random
// points mid-stream) against a publisher: every watcher must observe a
// gapless, strictly monotonic seq stream from its start until close or
// eviction, with payloads matching their seq (no torn changes).
func TestWatchConcurrentWatchers(t *testing.T) {
	const versions = 300
	s := NewStore[payload](versions) // full retention: any fromSeq is serveable
	s.SetWatchBuffer(versions + 1)   // focus on ordering, not eviction
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			from := uint64(i * 3 % 7)
			ch, cancel, err := s.Watch(context.Background(), from)
			if err != nil {
				t.Errorf("watcher %d: %v", i, err)
				return
			}
			defer cancel()
			next := from + 1
			for c := range ch {
				if c.Evicted {
					return
				}
				if c.Seq() != next {
					t.Errorf("watcher %d: seq %d, want %d (gap or duplicate)", i, c.Seq(), next)
					return
				}
				if c.Version.Data().n != int(c.Seq()) {
					t.Errorf("watcher %d: torn change %d/%d", i, c.Version.Data().n, c.Seq())
					return
				}
				next++
				if next > versions {
					return
				}
			}
		}(i)
	}
	close(start)
	publishN(s, 1, versions)
	wg.Wait()
}

// FuzzWatchResume drives random interleavings of publish, subscribe (at
// any resume point), drain and cancel, asserting the change-feed
// invariants: no subscriber ever sees a duplicate, out-of-order, or torn
// Change, catch-up is gapless from the resume point, and a full buffer
// ends the stream with exactly one eviction notice.
func FuzzWatchResume(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 0, 2, 3, 0, 1})
	f.Add(int64(7), []byte{1, 0, 0, 0, 0, 2, 1, 0, 3})
	f.Add(int64(42), []byte{0, 0, 1, 1, 2, 2, 3, 3, 0, 1, 2})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore[payload](4)
		s.SetWatchBuffer(1 + rng.Intn(4))

		type sub struct {
			ch     <-chan Change[payload]
			cancel CancelFunc
			next   uint64 // next expected seq
			done   bool
		}
		var subs []*sub
		seq := 0

		// drain consumes everything currently queued on one subscriber,
		// checking the stream invariants.
		drain := func(w *sub) {
			for !w.done {
				select {
				case c, ok := <-w.ch:
					if !ok {
						w.done = true
						return
					}
					if c.Evicted {
						// Exactly one notice, then close.
						if _, open := <-w.ch; open {
							t.Fatal("delivery after eviction notice")
						}
						w.done = true
						return
					}
					if c.Seq() != w.next {
						t.Fatalf("subscriber expected seq %d, got %d", w.next, c.Seq())
					}
					if c.Version.Data().n != int(c.Seq()) {
						t.Fatalf("torn change: payload %d for seq %d", c.Version.Data().n, c.Seq())
					}
					w.next++
				default:
					return
				}
			}
		}

		for _, op := range script {
			switch op % 4 {
			case 0: // publish
				seq++
				s.Publish(payload{n: seq}, uint64(seq), OriginRefresh, time.Unix(int64(seq), 0),
					ChangeSet{ChangedShards: []int{seq % 3}})
			case 1: // subscribe at a random resume point
				from := uint64(rng.Intn(seq + 1))
				ch, cancel, err := s.Watch(context.Background(), from)
				if err != nil {
					if !errors.Is(err, ErrCompacted) {
						t.Fatalf("Watch(from=%d) with seq=%d: %v", from, seq, err)
					}
					// Legitimately compacted: resume from the oldest
					// serveable point instead, like a real client would.
					vs := s.Versions()
					from = vs[0] - 1
					if ch, cancel, err = s.Watch(context.Background(), from); err != nil {
						t.Fatalf("Watch(oldest-1=%d): %v", from, err)
					}
				}
				subs = append(subs, &sub{ch: ch, cancel: cancel, next: from + 1})
			case 2: // drain one subscriber
				if len(subs) > 0 {
					drain(subs[rng.Intn(len(subs))])
				}
			case 3: // cancel one subscriber
				if len(subs) > 0 {
					w := subs[rng.Intn(len(subs))]
					w.cancel()
					// Consume any in-flight deliveries; the close must
					// arrive and the prefix must stay well-ordered.
					for !w.done {
						c, ok := recvFuzz(t, w.ch)
						if !ok {
							w.done = true
							break
						}
						if c.Evicted {
							w.done = true
							break
						}
						if c.Seq() != w.next {
							t.Fatalf("post-cancel drain expected %d, got %d", w.next, c.Seq())
						}
						w.next++
					}
				}
			}
		}
		for _, w := range subs {
			w.cancel()
		}
	})
}

func recvFuzz(t *testing.T, ch <-chan Change[payload]) (Change[payload], bool) {
	t.Helper()
	select {
	case c, ok := <-ch:
		return c, ok
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled subscriber's channel never closed")
		return Change[payload]{}, false
	}
}

func TestChangeSetNormalizedOnPublish(t *testing.T) {
	s := NewStore[payload](4)
	v := s.Publish(payload{n: 1}, 1, OriginRun, time.Unix(1, 0), ChangeSet{
		ChangedShards:  []int{3, 1, 2},
		ChangedRecords: []string{"b", "a"},
		RemovedRecords: []string{"z", "y"},
	})
	cs := v.Changes()
	if fmt.Sprint(cs.ChangedShards) != "[1 2 3]" ||
		fmt.Sprint(cs.ChangedRecords) != "[a b]" ||
		fmt.Sprint(cs.RemovedRecords) != "[y z]" {
		t.Fatalf("change set not normalized: %+v", cs)
	}
}
