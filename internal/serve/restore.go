package serve

import (
	"errors"
	"fmt"
	"time"
)

// RestoredVersion is one version to rehydrate into a fresh store — the
// durable-log replay shape. Unlike Publish, the caller supplies the
// original sequence number, commit time and change set, so a reopened
// store is indistinguishable from the live one it was saved from: At,
// Versions and Watch catch-up serve the exact versions that were
// retained, with their original stamps.
type RestoredVersion[T any] struct {
	Seq     uint64
	Step    uint64
	Origin  Origin
	At      time.Time
	Data    T
	Changes ChangeSet
}

// Restore installs replayed versions into an unused store: the history,
// the latest pointer and the sequence counter resume exactly where the
// saved store left off. Versions must be in strictly increasing
// sequence order; only the newest retain-window's worth are kept (the
// log may hold more between compactions). Restore is a construction-time
// operation — it refuses a store that has already published, restored or
// acquired watchers, so the atomic-latest/watch invariants never see a
// half-restored state.
func (s *Store[T]) Restore(versions []RestoredVersion[T]) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq != 0 || len(s.history) > 0 || len(s.watchers) > 0 {
		return errors.New("serve: restore requires an unused store")
	}
	if len(versions) == 0 {
		return nil
	}
	var prev uint64
	for i := range versions {
		if versions[i].Seq == 0 || versions[i].Seq <= prev {
			return fmt.Errorf("serve: restore: version %d out of order after %d (sequence numbers must be positive and strictly increasing)", versions[i].Seq, prev)
		}
		prev = versions[i].Seq
	}
	if len(versions) > s.retain {
		versions = versions[len(versions)-s.retain:]
	}
	for _, rv := range versions {
		rv.Changes.normalize()
		v := &Version[T]{seq: rv.Seq, step: rv.Step, origin: rv.Origin, at: rv.At, data: rv.Data, changes: rv.Changes}
		s.history = append(s.history, v)
	}
	last := s.history[len(s.history)-1]
	s.seq = last.seq
	s.latest.Store(last)
	return nil
}
