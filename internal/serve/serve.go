// Package serve is the read side of the wrangling architecture: an
// immutable, versioned, copy-on-write snapshot store. The wrangling loop
// is write-heavy — run, react to feedback, refresh churned sources — but
// the north-star workload is read-heavy: many concurrent consumers
// querying the wrangled data while the session reacts in the background.
// Reconciling the two is the store's job: writers *compute* a full new
// publication off to the side (reusing the pipeline's compute/install
// split) and then commit it with one atomic pointer swap; readers load
// that pointer without any lock and hold an immutable version that no
// later reaction can tear or mutate.
//
// Every committed version is stamped with a monotonically increasing
// sequence number, the provenance step that produced it, the origin of
// the publication (run, feedback, refresh) and a wall-clock timestamp. A
// bounded history of recent versions is retained so a reader can pin a
// version across several requests (time-travel within the retention
// window); older versions are pruned, which bounds memory to
// O(retain × snapshot size).
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Origin says which reaction path committed a version.
type Origin string

// The publication origins.
const (
	// OriginRun is a full pipeline run.
	OriginRun Origin = "run"
	// OriginFeedback is an incremental feedback reaction.
	OriginFeedback Origin = "feedback"
	// OriginRefresh is a source-churn refresh.
	OriginRefresh Origin = "refresh"
)

// DefaultRetain is the number of versions a store keeps when the caller
// does not choose: enough for a reader to pin a version across a short
// interaction while keeping memory bounded.
const DefaultRetain = 4

// Version is one committed publication: an immutable payload plus the
// metadata identifying when and why it was committed. Versions are never
// mutated after Publish returns — readers on any goroutine may hold one
// indefinitely without synchronisation.
type Version[T any] struct {
	seq     uint64
	step    uint64
	origin  Origin
	at      time.Time
	data    T
	changes ChangeSet
}

// Seq returns the version's monotonically increasing sequence number
// (1 for the first publication).
func (v *Version[T]) Seq() uint64 { return v.seq }

// Step returns the provenance step that produced this version — the
// logical clock of the derivation graph at commit time, which links the
// served snapshot back to the lineage that explains it.
func (v *Version[T]) Step() uint64 { return v.step }

// Origin returns which reaction path committed the version.
func (v *Version[T]) Origin() Origin { return v.origin }

// At returns the wall-clock commit time.
func (v *Version[T]) At() time.Time { return v.at }

// Data returns the published payload. The payload and everything
// reachable from it is frozen at publish time; treat it as read-only.
func (v *Version[T]) Data() T { return v.data }

// Changes returns the publisher's summary of what this version changed
// relative to its predecessor — retained so change-feed catch-up replays
// the same O(delta) events a live watcher saw.
func (v *Version[T]) Changes() ChangeSet { return v.changes }

// Store is a versioned copy-on-write snapshot store. One writer at a
// time publishes (publishers serialise on an internal mutex, but the
// pipeline already computes the payload before calling Publish, so the
// critical section is a pointer swap plus history bookkeeping); any
// number of readers call Latest concurrently, lock-free.
type Store[T any] struct {
	latest atomic.Pointer[Version[T]]

	mu      sync.RWMutex // guards history, seq and the watch registry; never held by Latest
	history []*Version[T]
	seq     uint64
	retain  int

	// Change-feed state (watch.go): live subscriptions, the id counter
	// that orders them, and the per-subscriber buffer bound.
	watchers []*watcher[T]
	watchSeq uint64
	watchBuf int

	// met is nil until Instrument enables telemetry (metrics.go). Set
	// before the store is shared; read without synchronisation on the
	// lock-free Latest path.
	met *storeMetrics
}

// NewStore creates a store retaining the given number of versions.
// retain < 1 falls back to DefaultRetain.
func NewStore[T any](retain int) *Store[T] {
	if retain < 1 {
		retain = DefaultRetain
	}
	return &Store[T]{retain: retain}
}

// Publish commits data as the next version and returns it. The new
// version becomes visible to Latest atomically: a reader sees either the
// previous version or the new one, never a mixture. The oldest retained
// version beyond the retention bound is dropped. changes is the
// publisher's summary of what this version changed relative to its
// predecessor (set Full when the publisher cannot bound the delta); it
// is stamped onto the version and pushed to every watcher (watch.go) —
// deliveries never block, slow subscribers are evicted.
func (s *Store[T]) Publish(data T, step uint64, origin Origin, at time.Time, changes ChangeSet) *Version[T] {
	changes.normalize()
	s.mu.Lock()
	s.seq++
	v := &Version[T]{seq: s.seq, step: step, origin: origin, at: at, data: data, changes: changes}
	s.history = append(s.history, v)
	if len(s.history) > s.retain {
		// Drop in place so the backing array does not grow without bound.
		n := copy(s.history, s.history[len(s.history)-s.retain:])
		for i := n; i < len(s.history); i++ {
			s.history[i] = nil
		}
		s.history = s.history[:n]
	}
	// The swap happens under the writer lock so concurrent publishers
	// cannot commit out of sequence order; readers only Load, so the lock
	// never touches the read path. The single atomic store is the entire
	// commit point: a reader sees the version fully built or not at all.
	s.latest.Store(v)
	s.notifyWatchers(v)
	s.mu.Unlock()
	if m := s.met; m != nil {
		m.publishes.Inc()
	}
	return v
}

// Latest returns the most recently committed version, or nil before the
// first publication. It is a single atomic load: it never blocks on
// publishers and can be called from any number of goroutines.
func (s *Store[T]) Latest() *Version[T] {
	if m := s.met; m != nil {
		m.reads.Inc()
	}
	return s.latest.Load()
}

// At returns the retained version with the given sequence number. It
// reports a plain error for sequence numbers never published, and the
// typed ErrCompacted for versions already pruned from the retention
// window — the same error Watch reports when catch-up would need a
// pruned version, so callers handle both staleness paths uniformly.
func (s *Store[T]) At(seq uint64) (*Version[T], error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.history {
		if v.seq == seq {
			if m := s.met; m != nil {
				m.timeTravel.Inc()
			}
			return v, nil
		}
	}
	if seq == 0 || seq > s.seq {
		if m := s.met; m != nil {
			m.errNotFound.Inc()
		}
		return nil, fmt.Errorf("serve: version %d does not exist (latest is %d)", seq, s.seq)
	}
	if m := s.met; m != nil {
		m.errCompacted.Inc()
	}
	return nil, fmt.Errorf("serve: version %d (retaining %d of %d) %w", seq, len(s.history), s.seq, ErrCompacted)
}

// Versions returns the sequence numbers currently retained, oldest first.
func (s *Store[T]) Versions() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, len(s.history))
	for i, v := range s.history {
		out[i] = v.seq
	}
	return out
}

// Retain returns the store's retention bound.
func (s *Store[T]) Retain() int { return s.retain }
