package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type payload struct {
	n     int
	label string
}

func TestPublishLatestAt(t *testing.T) {
	s := NewStore[payload](3)
	if s.Latest() != nil {
		t.Fatal("Latest before any publish should be nil")
	}
	if _, err := s.At(1); err == nil {
		t.Fatal("At(1) before any publish should error")
	}
	v1 := s.Publish(payload{n: 10, label: "a"}, 7, OriginRun, time.Unix(100, 0), ChangeSet{Full: true})
	if v1.Seq() != 1 || v1.Step() != 7 || v1.Origin() != OriginRun {
		t.Fatalf("v1 = seq %d step %d origin %q", v1.Seq(), v1.Step(), v1.Origin())
	}
	if got := s.Latest(); got != v1 {
		t.Fatalf("Latest = %v, want v1", got)
	}
	v2 := s.Publish(payload{n: 20, label: "b"}, 9, OriginFeedback, time.Unix(200, 0), ChangeSet{})
	if v2.Seq() != 2 {
		t.Fatalf("v2.Seq = %d", v2.Seq())
	}
	if got := s.Latest(); got != v2 {
		t.Fatalf("Latest = seq %d, want 2", got.Seq())
	}
	// v1 is still retained and unchanged: copy-on-write means a committed
	// version is frozen forever.
	got, err := s.At(1)
	if err != nil {
		t.Fatalf("At(1): %v", err)
	}
	if got.Data().n != 10 || got.Data().label != "a" {
		t.Fatalf("At(1).Data = %+v", got.Data())
	}
}

func TestRetentionPrunesOldest(t *testing.T) {
	s := NewStore[payload](2)
	for i := 1; i <= 5; i++ {
		s.Publish(payload{n: i}, uint64(i), OriginRefresh, time.Unix(int64(i), 0), ChangeSet{})
	}
	want := []uint64{4, 5}
	got := s.Versions()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Versions = %v, want %v", got, want)
	}
	if _, err := s.At(3); err == nil {
		t.Fatal("At(3) should report pruned")
	}
	if _, err := s.At(99); err == nil {
		t.Fatal("At(99) should report non-existent")
	}
	if v, err := s.At(5); err != nil || v.Data().n != 5 {
		t.Fatalf("At(5) = %v, %v", v, err)
	}
}

func TestDefaultRetain(t *testing.T) {
	if got := NewStore[int](0).Retain(); got != DefaultRetain {
		t.Fatalf("Retain = %d, want %d", got, DefaultRetain)
	}
	if got := NewStore[int](-3).Retain(); got != DefaultRetain {
		t.Fatalf("Retain = %d, want %d", got, DefaultRetain)
	}
	if got := NewStore[int](10).Retain(); got != 10 {
		t.Fatalf("Retain = %d, want 10", got)
	}
}

// TestConcurrentReadersNeverTorn hammers Latest from many goroutines while
// a publisher commits versions, asserting every observed version is
// internally consistent (both payload fields from the same commit) and
// that each reader observes a non-decreasing sequence.
func TestConcurrentReadersNeverTorn(t *testing.T) {
	s := NewStore[payload](3)
	const versions = 500
	labels := []string{"", "aa", "bb", "cc"}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for !stop.Load() {
				v := s.Latest()
				if v == nil {
					continue
				}
				if v.Seq() < lastSeq {
					t.Errorf("sequence went backwards: %d after %d", v.Seq(), lastSeq)
					return
				}
				lastSeq = v.Seq()
				p := v.Data()
				if want := labels[p.n%4]; p.label != want {
					t.Errorf("torn read: n=%d label=%q", p.n, p.label)
					return
				}
			}
		}()
	}
	for i := 1; i <= versions; i++ {
		s.Publish(payload{n: i, label: labels[i%4]}, uint64(i), OriginRun, time.Unix(int64(i), 0), ChangeSet{})
	}
	stop.Store(true)
	wg.Wait()
	if s.Latest().Seq() != versions {
		t.Fatalf("final seq = %d", s.Latest().Seq())
	}
}

// TestConcurrentPublishers checks that racing publishers never commit out
// of order: Latest always carries the highest sequence committed so far.
func TestConcurrentPublishers(t *testing.T) {
	s := NewStore[int](4)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := s.Publish(i, 0, OriginRefresh, time.Unix(0, 0), ChangeSet{})
				if cur := s.Latest(); cur.Seq() < v.Seq() {
					t.Errorf("Latest seq %d < just-published %d", cur.Seq(), v.Seq())
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Latest().Seq(); got != 400 {
		t.Fatalf("final seq = %d, want 400", got)
	}
}
