package kbc

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fusion"
)

func claim(e, a, v, src string) fusion.Claim {
	return fusion.Claim{Entity: e, Attribute: a, Value: dataset.Parse(v), SourceID: src}
}

func TestBuildMajority(t *testing.T) {
	kb := Build([]fusion.Claim{
		claim("e1", "name", "USB Cable", "s1"),
		claim("e1", "name", "USB Cable", "s2"),
		claim("e1", "name", "USB Kable", "s3"),
		claim("e2", "name", "Lamp", "s1"),
	})
	if kb.Len() != 2 {
		t.Fatalf("facts = %d", kb.Len())
	}
	f, ok := kb.Lookup("e1", "name")
	if !ok || f.Value.String() != "USB Cable" || f.Support != 2 {
		t.Errorf("fact = %+v", f)
	}
	if f.Confidence < 0.66 || f.Confidence > 0.67 {
		t.Errorf("confidence = %f", f.Confidence)
	}
	if _, ok := kb.Lookup("ghost", "name"); ok {
		t.Error("unknown fact should be !ok")
	}
}

func TestBuildIgnoresNulls(t *testing.T) {
	kb := Build([]fusion.Claim{
		{Entity: "e1", Attribute: "x", Value: dataset.Null(), SourceID: "s1"},
		claim("e1", "x", "v", "s2"),
	})
	f, _ := kb.Lookup("e1", "x")
	if f.Confidence != 1 {
		t.Errorf("nulls should not dilute confidence: %+v", f)
	}
}

func TestNumericBucketing(t *testing.T) {
	kb := Build([]fusion.Claim{
		claim("e1", "price", "10.00", "s1"),
		claim("e1", "price", "10.05", "s2"),
		claim("e1", "price", "99", "s3"),
	})
	f, _ := kb.Lookup("e1", "price")
	if f.Support != 2 {
		t.Errorf("near-equal prices should bucket: %+v", f)
	}
}

func TestFactsDeterministicOrder(t *testing.T) {
	claims := []fusion.Claim{
		claim("b", "y", "1", "s"),
		claim("a", "x", "2", "s"),
	}
	kb := Build(claims)
	facts := kb.Facts()
	if facts[0].Entity != "a" || facts[1].Entity != "b" {
		t.Errorf("facts order = %v", facts)
	}
}

func TestAccuracy(t *testing.T) {
	kb := Build([]fusion.Claim{
		claim("e1", "price", "10", "s1"),
		claim("e2", "price", "20", "s1"),
	})
	truth := map[string]float64{"e1": 10, "e2": 99}
	acc, ok := kb.Accuracy(func(e, a string) (dataset.Value, bool) {
		v, has := truth[e]
		return dataset.Float(v), has
	})
	if !ok || acc != 0.5 {
		t.Errorf("accuracy = %f", acc)
	}
	_, ok = kb.Accuracy(func(e, a string) (dataset.Value, bool) { return dataset.Null(), false })
	if ok {
		t.Error("no truth should be !ok")
	}
}

// The §3.1 criticism reproduced in miniature: with redundant stale prices,
// KBC confidently fuses to the stale value while the frequency assumption
// holds for stable attributes.
func TestKBCStaleBias(t *testing.T) {
	claims := []fusion.Claim{
		// Three crawls cached the old price; one fresh crawl has the new.
		claim("e1", "price", "9.99", "cache1"),
		claim("e1", "price", "9.99", "cache2"),
		claim("e1", "price", "9.99", "cache3"),
		claim("e1", "price", "12.49", "fresh"),
		// A stable attribute: everyone agrees.
		claim("e1", "brand", "Anker", "cache1"),
		claim("e1", "brand", "Anker", "fresh"),
	}
	kb := Build(claims)
	price, _ := kb.Lookup("e1", "price")
	if price.Value.FloatVal() != 9.99 {
		t.Errorf("KBC should pick the redundant stale price, got %v", price.Value)
	}
	brand, _ := kb.Lookup("e1", "brand")
	if brand.Value.String() != "Anker" {
		t.Errorf("stable attribute should fuse correctly: %v", brand.Value)
	}
}
