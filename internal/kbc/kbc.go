// Package kbc is the knowledge-base-construction baseline of §3.1: fully
// automated fusion of web-extracted facts under a single implicit context,
// "leaning heavily on the assumption that correct facts occur frequently
// (instance-based redundancy)" — YAGO / Knowledge Vault style. It exists
// to be compared against the context-aware wrangler (experiment E8): on
// slowly-changing common-sense facts redundancy works; on transient data
// such as prices it fuses confidently to stale values.
package kbc

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/text"
)

// Fact is one fused (entity, attribute, value) triple with the
// redundancy-based confidence KBC assigns it.
type Fact struct {
	Entity     string
	Attribute  string
	Value      dataset.Value
	Confidence float64 // vote share of the winning value
	Support    int     // number of sources asserting it
}

// KB is a knowledge base built by redundancy fusion.
type KB struct {
	facts map[string]Fact // entity \x1f attribute -> fact
	order []string
}

// Build constructs a KB from claims by pure frequency voting — no source
// trust, no freshness, no user context. Claims with null values are
// ignored; ties break deterministically on the normalised value.
func Build(claims []fusion.Claim) *KB {
	groups := map[string][]fusion.Claim{}
	var keys []string
	for _, c := range claims {
		if c.Value.IsNull() {
			continue
		}
		k := c.Entity + "\x1f" + c.Attribute
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], c)
	}
	sort.Strings(keys)
	kb := &KB{facts: map[string]Fact{}, order: keys}
	for _, k := range keys {
		claimsK := groups[k]
		type bucket struct {
			rep   dataset.Value
			norm  string
			count int
		}
		var buckets []bucket
		for _, c := range claimsK {
			norm := text.Normalize(c.Value.String())
			placed := false
			for i := range buckets {
				if sameValue(buckets[i].rep, c.Value) {
					buckets[i].count++
					placed = true
					break
				}
			}
			if !placed {
				buckets = append(buckets, bucket{rep: c.Value, norm: norm, count: 1})
			}
		}
		sort.Slice(buckets, func(i, j int) bool {
			if buckets[i].count != buckets[j].count {
				return buckets[i].count > buckets[j].count
			}
			return buckets[i].norm < buckets[j].norm
		})
		best := buckets[0]
		kb.facts[k] = Fact{
			Entity:     claimsK[0].Entity,
			Attribute:  claimsK[0].Attribute,
			Value:      best.rep,
			Confidence: float64(best.count) / float64(len(claimsK)),
			Support:    best.count,
		}
	}
	return kb
}

func sameValue(a, b dataset.Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		x, y := a.FloatVal(), b.FloatVal()
		if x == y {
			return true
		}
		den := x
		if y > x {
			den = y
		}
		if den < 0 {
			den = -den
		}
		if den == 0 {
			return false
		}
		d := (x - y) / den
		if d < 0 {
			d = -d
		}
		return d <= 0.01
	}
	return text.Normalize(a.String()) == text.Normalize(b.String())
}

// Lookup returns the fused fact for (entity, attribute).
func (kb *KB) Lookup(entity, attribute string) (Fact, bool) {
	f, ok := kb.facts[entity+"\x1f"+attribute]
	return f, ok
}

// Len returns the number of fused facts.
func (kb *KB) Len() int { return len(kb.facts) }

// Facts returns all facts in deterministic order.
func (kb *KB) Facts() []Fact {
	out := make([]Fact, 0, len(kb.order))
	for _, k := range kb.order {
		out = append(out, kb.facts[k])
	}
	return out
}

// Accuracy scores the KB against a truth oracle, mirroring
// fusion.Accuracy so the E8 comparison is apples-to-apples.
func (kb *KB) Accuracy(truth func(entity, attribute string) (dataset.Value, bool)) (float64, bool) {
	agree, total := 0, 0
	for _, f := range kb.Facts() {
		want, has := truth(f.Entity, f.Attribute)
		if !has {
			continue
		}
		total++
		if sameValue(f.Value, want) {
			agree++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(agree) / float64(total), true
}
