package quality

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
)

func table() *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	t.AppendValues(dataset.String("A"), dataset.String("USB Cable"), dataset.Float(4.99))
	t.AppendValues(dataset.String("B"), dataset.Null(), dataset.Float(7.50))
	t.AppendValues(dataset.String("C"), dataset.String("Mouse"), dataset.Null())
	return t
}

func TestCompleteness(t *testing.T) {
	if got := Completeness(table()); math.Abs(got-7.0/9.0) > 1e-9 {
		t.Errorf("completeness = %f, want 7/9", got)
	}
	empty := dataset.NewTable(dataset.MustSchema(dataset.Field{Name: "a", Kind: dataset.KindInt}))
	if Completeness(empty) != 0 {
		t.Error("empty table completeness should be 0")
	}
}

func TestColumnCompleteness(t *testing.T) {
	cc := ColumnCompleteness(table())
	if cc["sku"] != 1 {
		t.Errorf("sku completeness = %f", cc["sku"])
	}
	if math.Abs(cc["name"]-2.0/3.0) > 1e-9 {
		t.Errorf("name completeness = %f", cc["name"])
	}
}

func TestAccuracy(t *testing.T) {
	ref := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	ref.AppendValues(dataset.String("A"), dataset.String("usb cable"), dataset.Float(4.99))
	ref.AppendValues(dataset.String("B"), dataset.String("HDMI"), dataset.Float(9.99))
	got := Accuracy(table(), ref, "sku")
	// Pairs compared: A.name (agree, normalised), A.price (agree), B.price
	// (disagree). B.name is null in t. C not in ref.
	want := 2.0 / 3.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("accuracy = %f, want %f", got, want)
	}
}

func TestAccuracyNaNWhenNoOverlap(t *testing.T) {
	ref := dataset.NewTable(dataset.MustSchema(dataset.Field{Name: "sku", Kind: dataset.KindString}))
	ref.AppendValues(dataset.String("ZZZ"))
	if !math.IsNaN(Accuracy(table(), ref, "sku")) {
		t.Error("no overlap should be NaN")
	}
	if !math.IsNaN(Accuracy(table(), ref, "missing_col")) {
		t.Error("missing key column should be NaN")
	}
}

func TestTimeliness(t *testing.T) {
	now := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	tab := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "updated", Kind: dataset.KindTime},
	))
	tab.AppendValues(dataset.Time(now))                       // fresh: 1.0
	tab.AppendValues(dataset.Time(now.Add(-24 * time.Hour))) // one half-life: 0.5
	got := Timeliness(tab, "updated", now, 24*time.Hour)
	if math.Abs(got-0.75) > 1e-9 {
		t.Errorf("timeliness = %f, want 0.75", got)
	}
}

func TestTimelinessStringTimestamps(t *testing.T) {
	now := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	tab := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "updated", Kind: dataset.KindString},
	))
	tab.AppendValues(dataset.String("2016-03-15T12:00:00Z"))
	got := Timeliness(tab, "updated", now, time.Hour)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("string timestamp timeliness = %f, want 1", got)
	}
}

func TestTimelinessEdgeCases(t *testing.T) {
	now := time.Now()
	tab := table()
	if !math.IsNaN(Timeliness(tab, "nope", now, time.Hour)) {
		t.Error("missing column should be NaN")
	}
	tab2 := dataset.NewTable(dataset.MustSchema(dataset.Field{Name: "updated", Kind: dataset.KindString}))
	tab2.AppendValues(dataset.Null())
	if got := Timeliness(tab2, "updated", now, time.Hour); got != 0 {
		t.Errorf("null timestamps should score 0, got %f", got)
	}
}

func cfdTable() *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "country", Kind: dataset.KindString},
	))
	// sku -> brand should hold; A has a dissenter.
	t.AppendValues(dataset.String("A"), dataset.String("Anker"), dataset.String("UK"))
	t.AppendValues(dataset.String("A"), dataset.String("Anker"), dataset.String("UK"))
	t.AppendValues(dataset.String("A"), dataset.String("Ankr"), dataset.String("UK"))
	t.AppendValues(dataset.String("B"), dataset.String("Belkin"), dataset.String("UK"))
	t.AppendValues(dataset.String("B"), dataset.String("Belkin"), dataset.String("UK"))
	t.AppendValues(dataset.String("B"), dataset.String("Belkin"), dataset.String("FR"))
	return t
}

func TestViolations(t *testing.T) {
	vs, err := Violations(cfdTable(), CFD{LHS: []string{"sku"}, RHS: "brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Row != 2 {
		t.Fatalf("violations = %+v", vs)
	}
	if vs[0].Expected.Str() != "Anker" || vs[0].Actual.Str() != "Ankr" {
		t.Errorf("violation detail wrong: %+v", vs[0])
	}
}

func TestViolationsConditional(t *testing.T) {
	// Within country=UK only, sku -> country trivially holds; condition on
	// brand=Belkin, sku -> country has a conflict.
	vs, err := Violations(cfdTable(), CFD{ConditionCol: "brand", ConditionVal: "Belkin", LHS: []string{"sku"}, RHS: "country"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("conditional violations = %+v", vs)
	}
}

func TestViolationsMissingColumns(t *testing.T) {
	if _, err := Violations(cfdTable(), CFD{LHS: []string{"ghost"}, RHS: "brand"}); err == nil {
		t.Error("missing LHS should error")
	}
	if _, err := Violations(cfdTable(), CFD{LHS: []string{"sku"}, RHS: "ghost"}); err == nil {
		t.Error("missing RHS should error")
	}
	if _, err := Violations(cfdTable(), CFD{ConditionCol: "ghost", LHS: []string{"sku"}, RHS: "brand"}); err == nil {
		t.Error("missing condition column should error")
	}
}

func TestConsistency(t *testing.T) {
	c, err := Consistency(cfdTable(), []CFD{{LHS: []string{"sku"}, RHS: "brand"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-5.0/6.0) > 1e-9 {
		t.Errorf("consistency = %f, want 5/6 (1 bad row of 6)", c)
	}
	empty := dataset.NewTable(cfdTable().Schema())
	c, _ = Consistency(empty, []CFD{{LHS: []string{"sku"}, RHS: "brand"}})
	if c != 1 {
		t.Error("empty table is vacuously consistent")
	}
}

func TestRepair(t *testing.T) {
	tab := cfdTable()
	n, err := Repair(tab, []CFD{{LHS: []string{"sku"}, RHS: "brand"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("repaired %d cells, want 1", n)
	}
	if tab.Get(2, "brand").Str() != "Anker" {
		t.Errorf("repair wrote %v", tab.Get(2, "brand"))
	}
	// After repair the dependency holds.
	c, _ := Consistency(tab, []CFD{{LHS: []string{"sku"}, RHS: "brand"}})
	if c != 1 {
		t.Errorf("post-repair consistency = %f", c)
	}
}

func TestAssess(t *testing.T) {
	now := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	sc, err := Assess(table(), nil, "", "", now, 24*time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Rows != 3 || sc.Completeness <= 0 {
		t.Errorf("scorecard = %+v", sc)
	}
	if !math.IsNaN(sc.Accuracy) || !math.IsNaN(sc.Timeliness) {
		t.Error("unavailable dimensions should be NaN")
	}
	if sc.Consistency != 1 {
		t.Error("no CFDs means consistency 1")
	}
}

func TestScorecardUtility(t *testing.T) {
	sc := Scorecard{Completeness: 0.8, Accuracy: math.NaN(), Timeliness: 0.5, Consistency: 1}
	// NaN accuracy is skipped and weights renormalise.
	u := sc.Utility(1, 1, 1, 0)
	if math.Abs(u-(0.8+0.5)/2) > 1e-9 {
		t.Errorf("utility = %f, want 0.65", u)
	}
	if sc.Utility(0, 0, 0, 0) != 0 {
		t.Error("zero weights = 0 utility")
	}
}

func TestCFDString(t *testing.T) {
	d := CFD{ConditionCol: "brand", ConditionVal: "Anker", LHS: []string{"sku"}, RHS: "price"}
	s := d.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}
