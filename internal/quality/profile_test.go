package quality

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// fdTable builds rows where sku -> brand holds except for noise typos,
// and price is random (no dependency).
func fdTable(seed int64, entities, copies int, noise float64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	brands := []string{"Anker", "Belkin", "Logi", "Voltix"}
	for e := 0; e < entities; e++ {
		sku := fmt.Sprintf("SKU-%03d", e)
		brand := brands[e%len(brands)]
		for c := 0; c < copies; c++ {
			b := brand
			if rng.Float64() < noise {
				b = b + "x" // typo violating the FD
			}
			t.AppendValues(dataset.String(sku), dataset.String(b), dataset.Float(rng.Float64()*100))
		}
	}
	return t
}

func TestDiscoverFDsFindsDependency(t *testing.T) {
	tab := fdTable(1, 30, 4, 0.05)
	fds := DiscoverFDs(tab, 0.85, 2)
	found := false
	for _, fd := range fds {
		if fd.LHS[0] == "sku" && fd.RHS == "brand" {
			found = true
			if fd.Confidence < 0.85 || fd.Confidence > 1 {
				t.Errorf("confidence = %f", fd.Confidence)
			}
			if fd.Groups != 30 {
				t.Errorf("groups = %d, want 30", fd.Groups)
			}
		}
		if fd.LHS[0] == "sku" && fd.RHS == "price" {
			t.Error("sku -> price should not be discovered (random prices)")
		}
	}
	if !found {
		t.Errorf("sku -> brand not discovered: %v", fds)
	}
}

func TestDiscoverFDsExcludesKeyLHS(t *testing.T) {
	// One row per sku: every column "determines" every other vacuously.
	tab := fdTable(2, 20, 1, 0)
	for _, fd := range DiscoverFDs(tab, 0.9, 2) {
		if fd.Groups == tab.Len() {
			t.Errorf("key-like LHS leaked: %v", fd)
		}
	}
}

func TestDiscoverFDsEmptyTable(t *testing.T) {
	tab := dataset.NewTable(fdTable(3, 1, 1, 0).Schema())
	if fds := DiscoverFDs(tab, 0.5, 1); fds != nil {
		t.Errorf("empty table should discover nothing: %v", fds)
	}
}

func TestDiscoverFDsSorted(t *testing.T) {
	tab := fdTable(4, 30, 4, 0.1)
	fds := DiscoverFDs(tab, 0.5, 2)
	for i := 1; i < len(fds); i++ {
		if fds[i].Confidence > fds[i-1].Confidence {
			t.Fatal("not sorted by confidence")
		}
	}
}

func TestProfileAndRepair(t *testing.T) {
	tab := fdTable(5, 40, 5, 0.08)
	// Count typo brands before.
	dirty := 0
	for _, r := range tab.Rows() {
		if strings.HasSuffix(r[1].Str(), "x") {
			dirty++
		}
	}
	if dirty == 0 {
		t.Skip("no noise generated")
	}
	used, changed, err := ProfileAndRepair(tab, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 || len(used) == 0 {
		t.Fatalf("repair did nothing: used=%v changed=%d", used, changed)
	}
	after := 0
	for _, r := range tab.Rows() {
		if strings.HasSuffix(r[1].Str(), "x") {
			after++
		}
	}
	if after >= dirty {
		t.Errorf("typos not reduced: %d -> %d", dirty, after)
	}
	// The repaired table now satisfies the dependency.
	c, err := Consistency(tab, []CFD{{LHS: []string{"sku"}, RHS: "brand"}})
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.999 {
		t.Errorf("post-repair consistency = %f", c)
	}
}

func TestProfileAndRepairWeakEvidenceUntouched(t *testing.T) {
	// 50% noise: the "dependency" is too weak to act on.
	tab := fdTable(6, 20, 4, 0.5)
	before := tab.Clone()
	_, changed, err := ProfileAndRepair(tab, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Errorf("weak dependencies must not trigger repair (changed %d)", changed)
	}
	for i := 0; i < tab.Len(); i++ {
		if !tab.Row(i).Equal(before.Row(i)) {
			t.Fatal("table mutated despite weak evidence")
		}
	}
}

func TestDiscoveredFDString(t *testing.T) {
	d := DiscoveredFD{LHS: []string{"sku"}, RHS: "brand", Confidence: 0.95, Groups: 12}
	if s := d.String(); !strings.Contains(s, "sku") || !strings.Contains(s, "0.950") {
		t.Errorf("String = %q", s)
	}
}
