// Package quality implements the Quality store of the working data
// (Figure 1): analyses that "may apply to individual data sources, the
// results of different extractions and components of relevance to
// integration". It measures the §2.1 criteria the user context trades off
// — completeness, accuracy, timeliness, consistency — and implements
// conditional functional dependencies with a cost-based repair heuristic
// in the spirit of Bohannon et al. [7].
package quality

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/text"
)

// Scorecard is the per-artefact quality summary stored in working data.
type Scorecard struct {
	Completeness float64 // fraction of non-null cells
	Accuracy     float64 // agreement with reference data (NaN if unknown)
	Timeliness   float64 // freshness score in [0,1] (NaN if unknown)
	Consistency  float64 // fraction of rows violating no dependency
	Rows         int
}

// Utility collapses a scorecard into one number with the given weights
// (unknown dimensions are skipped and the weights renormalised).
func (s Scorecard) Utility(wCompleteness, wAccuracy, wTimeliness, wConsistency float64) float64 {
	total, wsum := 0.0, 0.0
	add := func(v, w float64) {
		if !math.IsNaN(v) && w > 0 {
			total += v * w
			wsum += w
		}
	}
	add(s.Completeness, wCompleteness)
	add(s.Accuracy, wAccuracy)
	add(s.Timeliness, wTimeliness)
	add(s.Consistency, wConsistency)
	if wsum == 0 {
		return 0
	}
	return total / wsum
}

// Completeness returns the fraction of non-null cells in the table.
func Completeness(t *dataset.Table) float64 {
	if t.Len() == 0 || len(t.Schema()) == 0 {
		return 0
	}
	filled, total := 0, 0
	for _, r := range t.Rows() {
		for _, v := range r {
			total++
			if !v.IsNull() {
				filled++
			}
		}
	}
	return float64(filled) / float64(total)
}

// ColumnCompleteness returns per-column non-null fractions.
func ColumnCompleteness(t *dataset.Table) map[string]float64 {
	out := make(map[string]float64, len(t.Schema()))
	for i, f := range t.Schema() {
		filled := 0
		for _, r := range t.Rows() {
			if !r[i].IsNull() {
				filled++
			}
		}
		if t.Len() > 0 {
			out[f.Name] = float64(filled) / float64(t.Len())
		} else {
			out[f.Name] = 0
		}
	}
	return out
}

// Accuracy compares the table against reference data on a shared key:
// the fraction of paired non-null cells that agree (normalised text, 2%
// numeric tolerance). Returns NaN when nothing could be compared.
func Accuracy(t, reference *dataset.Table, keyCol string) float64 {
	kc := t.Schema().Index(keyCol)
	rkc := reference.Schema().Index(keyCol)
	if kc < 0 || rkc < 0 {
		return math.NaN()
	}
	refByKey := map[string]dataset.Record{}
	for _, r := range reference.Rows() {
		if !r[rkc].IsNull() {
			refByKey[text.Normalize(r[rkc].String())] = r
		}
	}
	agree, total := 0, 0
	for _, r := range t.Rows() {
		if r[kc].IsNull() {
			continue
		}
		ref, ok := refByKey[text.Normalize(r[kc].String())]
		if !ok {
			continue
		}
		for i, f := range t.Schema() {
			if i == kc || r[i].IsNull() {
				continue
			}
			ri := reference.Schema().Index(f.Name)
			if ri < 0 || ref[ri].IsNull() {
				continue
			}
			total++
			if agreeValues(r[i], ref[ri]) {
				agree++
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(agree) / float64(total)
}

func agreeValues(a, b dataset.Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		x, y := a.FloatVal(), b.FloatVal()
		den := math.Max(math.Abs(x), math.Abs(y))
		if den == 0 {
			return true
		}
		return math.Abs(x-y)/den <= 0.02
	}
	return text.Normalize(a.String()) == text.Normalize(b.String())
}

// Timeliness scores the freshness of a timestamp column with exponential
// decay: value 1 at age 0, 0.5 at halfLife. Rows with null timestamps are
// scored 0. Returns NaN if the column is missing or never parseable.
func Timeliness(t *dataset.Table, timeCol string, now time.Time, halfLife time.Duration) float64 {
	c := t.Schema().Index(timeCol)
	if c < 0 || t.Len() == 0 || halfLife <= 0 {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, r := range t.Rows() {
		v := r[c]
		var ts time.Time
		switch {
		case v.Kind() == dataset.KindTime:
			ts = v.TimeVal()
		case !v.IsNull():
			if cv, ok := v.Coerce(dataset.KindTime); ok {
				ts = cv.TimeVal()
			}
		}
		n++
		if ts.IsZero() {
			continue // counts as 0
		}
		age := now.Sub(ts)
		if age < 0 {
			age = 0
		}
		sum += math.Pow(0.5, float64(age)/float64(halfLife))
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// CFD is a conditional functional dependency: within rows matching the
// condition (ConditionCol = ConditionVal, or all rows if ConditionCol is
// empty), LHS values determine RHS values.
type CFD struct {
	ConditionCol string
	ConditionVal string // normalised comparison
	LHS          []string
	RHS          string
}

// String renders the dependency.
func (d CFD) String() string {
	cond := ""
	if d.ConditionCol != "" {
		cond = fmt.Sprintf("[%s=%s] ", d.ConditionCol, d.ConditionVal)
	}
	return fmt.Sprintf("%s%v -> %s", cond, d.LHS, d.RHS)
}

// Violation records one row that disagrees with the majority RHS value of
// its LHS group.
type Violation struct {
	Row      int
	CFD      CFD
	Expected dataset.Value
	Actual   dataset.Value
}

// Violations finds all CFD violations: for each LHS group, the majority
// non-null RHS value is taken as expected and dissenting rows are
// reported. Groups with no majority (all values distinct) report all rows
// whose value differs from the first-most-frequent.
func Violations(t *dataset.Table, cfd CFD) ([]Violation, error) {
	lhsIdx := make([]int, len(cfd.LHS))
	for i, col := range cfd.LHS {
		lhsIdx[i] = t.Schema().Index(col)
		if lhsIdx[i] < 0 {
			return nil, fmt.Errorf("quality: cfd lhs column %q missing", col)
		}
	}
	rhsIdx := t.Schema().Index(cfd.RHS)
	if rhsIdx < 0 {
		return nil, fmt.Errorf("quality: cfd rhs column %q missing", cfd.RHS)
	}
	condIdx := -1
	if cfd.ConditionCol != "" {
		condIdx = t.Schema().Index(cfd.ConditionCol)
		if condIdx < 0 {
			return nil, fmt.Errorf("quality: cfd condition column %q missing", cfd.ConditionCol)
		}
	}
	type group struct {
		counts map[string]int
		rep    map[string]dataset.Value
		rows   []int
	}
	groups := map[string]*group{}
	for i, r := range t.Rows() {
		if condIdx >= 0 && text.Normalize(r[condIdx].String()) != text.Normalize(cfd.ConditionVal) {
			continue
		}
		if r[rhsIdx].IsNull() {
			continue
		}
		key := r.Key(lhsIdx...)
		g, ok := groups[key]
		if !ok {
			g = &group{counts: map[string]int{}, rep: map[string]dataset.Value{}}
			groups[key] = g
		}
		norm := text.Normalize(r[rhsIdx].String())
		g.counts[norm]++
		if _, ok := g.rep[norm]; !ok {
			g.rep[norm] = r[rhsIdx]
		}
		g.rows = append(g.rows, i)
	}
	var out []Violation
	for _, g := range groups {
		if len(g.counts) <= 1 {
			continue
		}
		best, bestN := "", -1
		total := 0
		for v, n := range g.counts {
			total += n
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		// Only a strict majority is evidence: a 1-1 tie (or any split
		// without a dominant value) gives no basis to call either row the
		// violator, and acting on it would corrupt data arbitrarily.
		if bestN < 2 || bestN*2 <= total {
			continue
		}
		for _, row := range g.rows {
			actual := t.Row(row)[rhsIdx]
			if text.Normalize(actual.String()) != best {
				out = append(out, Violation{Row: row, CFD: cfd, Expected: g.rep[best], Actual: actual})
			}
		}
	}
	return out, nil
}

// Consistency returns the fraction of rows not involved in any violation
// of the given dependencies.
func Consistency(t *dataset.Table, cfds []CFD) (float64, error) {
	if t.Len() == 0 {
		return 1, nil
	}
	bad := map[int]bool{}
	for _, cfd := range cfds {
		vs, err := Violations(t, cfd)
		if err != nil {
			return 0, err
		}
		for _, v := range vs {
			bad[v.Row] = true
		}
	}
	return 1 - float64(len(bad))/float64(t.Len()), nil
}

// Repair applies the cost-based value-modification heuristic of [7]: each
// violating row's RHS is overwritten with the group majority value (the
// minimal-cost repair under unit update cost), mutating the table in
// place. It returns the number of cells changed. Repairs are applied per
// dependency in order; later dependencies see earlier repairs.
func Repair(t *dataset.Table, cfds []CFD) (int, error) {
	changed, _, err := RepairRows(t, cfds)
	return changed, err
}

// RepairRows is Repair reporting which rows it touched (ascending,
// deduplicated) alongside the cell count. Incremental consumers use the
// row list to scope change detection: a row outside it kept its
// pre-repair values.
func RepairRows(t *dataset.Table, cfds []CFD) (int, []int, error) {
	changed := 0
	touched := map[int]bool{}
	for _, cfd := range cfds {
		vs, err := Violations(t, cfd)
		if err != nil {
			return changed, sortedRows(touched), err
		}
		rhsIdx := t.Schema().Index(cfd.RHS)
		for _, v := range vs {
			t.Row(v.Row)[rhsIdx] = v.Expected
			touched[v.Row] = true
			changed++
		}
	}
	return changed, sortedRows(touched), nil
}

func sortedRows(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Assess produces a full scorecard in one pass. reference, timeCol and
// cfds may be zero-valued to skip those dimensions (reported as NaN /
// 1.0 respectively).
func Assess(t *dataset.Table, reference *dataset.Table, keyCol, timeCol string, now time.Time, halfLife time.Duration, cfds []CFD) (Scorecard, error) {
	sc := Scorecard{
		Completeness: Completeness(t),
		Accuracy:     math.NaN(),
		Timeliness:   math.NaN(),
		Consistency:  1,
		Rows:         t.Len(),
	}
	if reference != nil && keyCol != "" {
		sc.Accuracy = Accuracy(t, reference, keyCol)
	}
	if timeCol != "" {
		sc.Timeliness = Timeliness(t, timeCol, now, halfLife)
	}
	if len(cfds) > 0 {
		c, err := Consistency(t, cfds)
		if err != nil {
			return sc, err
		}
		sc.Consistency = c
	}
	return sc, nil
}
