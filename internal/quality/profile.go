package quality

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/text"
)

// This file adds data profiling: discovery of approximate functional
// dependencies from the data itself. The paper's wrangling process must
// "make use of all the available information" (§2.3) without a DBA who
// hand-writes integrity constraints; discovered dependencies feed the
// cost-based repair of Bohannon et al. [7] implemented in Repair.

// DiscoveredFD is an approximate functional dependency LHS -> RHS with
// its measured confidence: the fraction of rows that agree with their LHS
// group's majority RHS value.
type DiscoveredFD struct {
	LHS        []string
	RHS        string
	Confidence float64
	Groups     int // number of distinct LHS groups observed
}

// CFD converts the discovered dependency into the repairable form.
func (d DiscoveredFD) CFD() CFD { return CFD{LHS: d.LHS, RHS: d.RHS} }

// String renders the dependency with its confidence.
func (d DiscoveredFD) String() string {
	return fmt.Sprintf("%v -> %s (%.3f over %d groups)", d.LHS, d.RHS, d.Confidence, d.Groups)
}

// DiscoverFDs profiles the table for approximate FDs with single-column
// left-hand sides (the shape Repair consumes), returning those with
// confidence >= minConf and at least minGroups distinct LHS groups (to
// exclude vacuous dependencies from near-key columns). Results are
// sorted by descending confidence, then LHS/RHS names.
func DiscoverFDs(t *dataset.Table, minConf float64, minGroups int) []DiscoveredFD {
	if t.Len() == 0 {
		return nil
	}
	if minGroups < 1 {
		minGroups = 1
	}
	schema := t.Schema()
	prof := profileColumns(t)
	var out []DiscoveredFD
	for li := range schema {
		// Continuous numeric columns make meaningless determinants: a
		// float that two rows happen to share is coincidence, not a key,
		// and repairing through it propagates values across entities.
		if schema[li].Kind == dataset.KindFloat {
			continue
		}
		for ri := range schema {
			if li == ri {
				continue
			}
			conf, groups, ok := fdConfidence(prof, li, ri)
			if !ok || groups < minGroups || conf < minConf {
				continue
			}
			// A dependency whose LHS is a key (every group size 1) is
			// trivially confident and useless for repair.
			if groups == t.Len() {
				continue
			}
			out = append(out, DiscoveredFD{
				LHS:        []string{schema[li].Name},
				RHS:        schema[ri].Name,
				Confidence: conf,
				Groups:     groups,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].LHS[0] != out[j].LHS[0] {
			return out[i].LHS[0] < out[j].LHS[0]
		}
		return out[i].RHS < out[j].RHS
	})
	return out
}

// colProfile is one column's dictionary-encoded form: per row, the
// distinct id of its group key (Value.Key) and of its normalized string
// value, -1 for null. Encoding each column once replaces the string
// hashing and re-normalization the O(columns²) dependency scan used to
// repeat for every column pair — the scan was the dominant allocator in
// the refresh tail after the matcher was fixed.
type colProfile struct {
	keyID  []int // per row; -1 when null
	nKeys  int
	normID []int // per row; -1 when null
}

// profileColumns dictionary-encodes every column of t.
func profileColumns(t *dataset.Table) []colProfile {
	prof := make([]colProfile, len(t.Schema()))
	keyIDs := map[string]int{}
	normIDs := map[string]int{}
	for ci := range prof {
		clear(keyIDs)
		clear(normIDs)
		p := &prof[ci]
		p.keyID = make([]int, t.Len())
		p.normID = make([]int, t.Len())
		for i, r := range t.Rows() {
			if r[ci].IsNull() {
				p.keyID[i], p.normID[i] = -1, -1
				continue
			}
			k := r[ci].Key()
			id, ok := keyIDs[k]
			if !ok {
				id = len(keyIDs)
				keyIDs[k] = id
			}
			p.keyID[i] = id
			n := text.Normalize(r[ci].String())
			id, ok = normIDs[n]
			if !ok {
				id = len(normIDs)
				normIDs[n] = id
			}
			p.normID[i] = id
		}
		p.nKeys = len(keyIDs)
	}
	return prof
}

// fdConfidence measures how functionally li determines ri: rows agreeing
// with their group majority / rows considered. Rows with null on either
// side are skipped; ok is false when nothing could be measured. It
// counts over the dictionary-encoded ids — the same partition the string
// keys induced, so confidence is the identical integer ratio.
func fdConfidence(prof []colProfile, li, ri int) (float64, int, bool) {
	lhs, rhs := prof[li], prof[ri]
	// counts[(g, v)] for group id g and value id v; totals and maxes per
	// group id.
	counts := map[int64]int{}
	totals := make([]int, lhs.nKeys)
	maxes := make([]int, lhs.nKeys)
	for i, g := range lhs.keyID {
		v := rhs.normID[i]
		if g < 0 || v < 0 {
			continue
		}
		k := int64(g)<<32 | int64(v)
		c := counts[k] + 1
		counts[k] = c
		totals[g]++
		if c > maxes[g] {
			maxes[g] = c
		}
	}
	agree, total, groups := 0, 0, 0
	for g, n := range totals {
		if n == 0 {
			continue
		}
		groups++
		agree += maxes[g]
		total += n
	}
	if total == 0 {
		return 0, 0, false
	}
	return float64(agree) / float64(total), groups, true
}

// ProfileAndRepair discovers near-exact dependencies (confidence in
// [minConf, 1)) and repairs their violations in place, returning the
// dependencies used and the number of cells changed. Exact dependencies
// (confidence 1) have nothing to repair; dependencies below minConf are
// too unreliable to act on — acting on weak evidence is exactly what §4.2
// warns against.
func ProfileAndRepair(t *dataset.Table, minConf float64) ([]DiscoveredFD, int, error) {
	used, changed, _, err := ProfileAndRepairRows(t, minConf)
	return used, changed, err
}

// ProfileAndRepairRows is ProfileAndRepair reporting the repaired row
// indices (ascending, deduplicated across dependencies). The streaming
// refresh planner diffs exactly these rows — plus the previous round's —
// against the memoized union, since FD repair is the one stage that can
// rewrite a row whose source did not change.
func ProfileAndRepairRows(t *dataset.Table, minConf float64) ([]DiscoveredFD, int, []int, error) {
	fds := DiscoverFDs(t, minConf, 2)
	changed := 0
	rows := map[int]bool{}
	var used []DiscoveredFD
	for _, fd := range fds {
		if fd.Confidence >= 1 {
			continue
		}
		n, touched, err := RepairRows(t, []CFD{fd.CFD()})
		for _, r := range touched {
			rows[r] = true
		}
		if err != nil {
			return used, changed, sortedRows(rows), err
		}
		if n > 0 {
			used = append(used, fd)
			changed += n
		}
	}
	return used, changed, sortedRows(rows), nil
}
