package quality

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/text"
)

// This file adds data profiling: discovery of approximate functional
// dependencies from the data itself. The paper's wrangling process must
// "make use of all the available information" (§2.3) without a DBA who
// hand-writes integrity constraints; discovered dependencies feed the
// cost-based repair of Bohannon et al. [7] implemented in Repair.

// DiscoveredFD is an approximate functional dependency LHS -> RHS with
// its measured confidence: the fraction of rows that agree with their LHS
// group's majority RHS value.
type DiscoveredFD struct {
	LHS        []string
	RHS        string
	Confidence float64
	Groups     int // number of distinct LHS groups observed
}

// CFD converts the discovered dependency into the repairable form.
func (d DiscoveredFD) CFD() CFD { return CFD{LHS: d.LHS, RHS: d.RHS} }

// String renders the dependency with its confidence.
func (d DiscoveredFD) String() string {
	return fmt.Sprintf("%v -> %s (%.3f over %d groups)", d.LHS, d.RHS, d.Confidence, d.Groups)
}

// DiscoverFDs profiles the table for approximate FDs with single-column
// left-hand sides (the shape Repair consumes), returning those with
// confidence >= minConf and at least minGroups distinct LHS groups (to
// exclude vacuous dependencies from near-key columns). Results are
// sorted by descending confidence, then LHS/RHS names.
func DiscoverFDs(t *dataset.Table, minConf float64, minGroups int) []DiscoveredFD {
	if t.Len() == 0 {
		return nil
	}
	if minGroups < 1 {
		minGroups = 1
	}
	schema := t.Schema()
	var out []DiscoveredFD
	for li := range schema {
		// Continuous numeric columns make meaningless determinants: a
		// float that two rows happen to share is coincidence, not a key,
		// and repairing through it propagates values across entities.
		if schema[li].Kind == dataset.KindFloat {
			continue
		}
		for ri := range schema {
			if li == ri {
				continue
			}
			conf, groups, ok := fdConfidence(t, li, ri)
			if !ok || groups < minGroups || conf < minConf {
				continue
			}
			// A dependency whose LHS is a key (every group size 1) is
			// trivially confident and useless for repair.
			if groups == t.Len() {
				continue
			}
			out = append(out, DiscoveredFD{
				LHS:        []string{schema[li].Name},
				RHS:        schema[ri].Name,
				Confidence: conf,
				Groups:     groups,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].LHS[0] != out[j].LHS[0] {
			return out[i].LHS[0] < out[j].LHS[0]
		}
		return out[i].RHS < out[j].RHS
	})
	return out
}

// fdConfidence measures how functionally li determines ri: rows agreeing
// with their group majority / rows considered. Rows with null on either
// side are skipped; ok is false when nothing could be measured.
func fdConfidence(t *dataset.Table, li, ri int) (float64, int, bool) {
	type group struct {
		counts map[string]int
		total  int
	}
	groups := map[string]*group{}
	for _, r := range t.Rows() {
		if r[li].IsNull() || r[ri].IsNull() {
			continue
		}
		k := r[li].Key()
		g, ok := groups[k]
		if !ok {
			g = &group{counts: map[string]int{}}
			groups[k] = g
		}
		g.counts[text.Normalize(r[ri].String())]++
		g.total++
	}
	if len(groups) == 0 {
		return 0, 0, false
	}
	agree, total := 0, 0
	for _, g := range groups {
		max := 0
		for _, n := range g.counts {
			if n > max {
				max = n
			}
		}
		agree += max
		total += g.total
	}
	if total == 0 {
		return 0, 0, false
	}
	return float64(agree) / float64(total), len(groups), true
}

// ProfileAndRepair discovers near-exact dependencies (confidence in
// [minConf, 1)) and repairs their violations in place, returning the
// dependencies used and the number of cells changed. Exact dependencies
// (confidence 1) have nothing to repair; dependencies below minConf are
// too unreliable to act on — acting on weak evidence is exactly what §4.2
// warns against.
func ProfileAndRepair(t *dataset.Table, minConf float64) ([]DiscoveredFD, int, error) {
	used, changed, _, err := ProfileAndRepairRows(t, minConf)
	return used, changed, err
}

// ProfileAndRepairRows is ProfileAndRepair reporting the repaired row
// indices (ascending, deduplicated across dependencies). The streaming
// refresh planner diffs exactly these rows — plus the previous round's —
// against the memoized union, since FD repair is the one stage that can
// rewrite a row whose source did not change.
func ProfileAndRepairRows(t *dataset.Table, minConf float64) ([]DiscoveredFD, int, []int, error) {
	fds := DiscoverFDs(t, minConf, 2)
	changed := 0
	rows := map[int]bool{}
	var used []DiscoveredFD
	for _, fd := range fds {
		if fd.Confidence >= 1 {
			continue
		}
		n, touched, err := RepairRows(t, []CFD{fd.CFD()})
		for _, r := range touched {
			rows[r] = true
		}
		if err != nil {
			return used, changed, sortedRows(rows), err
		}
		if n > 0 {
			used = append(used, fd)
			changed += n
		}
	}
	return used, changed, sortedRows(rows), nil
}
