package html

import (
	"fmt"
	"strconv"
	"strings"
)

// Selector is a compiled CSS-like selector. Supported grammar:
//
//	selector  = step (combinator step)*
//	combinator = " " (descendant) | ">" (child)
//	step      = [tag] ("." class | "#" id | "[" attr ("=" value)? "]" |
//	            ":nth-of-type(" n ")")*
//
// Examples: "div.product > span.price", "table[id=results] td",
// "li:nth-of-type(2)".
type Selector struct {
	steps []selStep
	src   string
}

type selStep struct {
	tag       string
	classes   []string
	id        string
	attrKey   string
	attrVal   string
	hasAttr   bool
	nthOfType int // 1-based; 0 means unset
	child     bool // true: direct child of previous step's match
}

// Compile parses a selector string.
func Compile(src string) (*Selector, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("html: empty selector")
	}
	var steps []selStep
	child := false
	for len(s) > 0 {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ">") {
			if len(steps) == 0 {
				return nil, fmt.Errorf("html: selector %q starts with combinator", src)
			}
			child = true
			s = strings.TrimLeft(s[1:], " \t")
			continue
		}
		// Consume one compound step.
		end := 0
		depth := 0
		for end < len(s) {
			c := s[end]
			if c == '[' {
				depth++
			}
			if c == ']' {
				depth--
			}
			if depth == 0 && (c == ' ' || c == '>') {
				break
			}
			end++
		}
		stepSrc := s[:end]
		s = s[end:]
		step, err := parseStep(stepSrc)
		if err != nil {
			return nil, fmt.Errorf("html: selector %q: %w", src, err)
		}
		step.child = child
		child = false
		steps = append(steps, step)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("html: empty selector")
	}
	return &Selector{steps: steps, src: src}, nil
}

// MustCompile is Compile that panics on error, for static selectors.
func MustCompile(src string) *Selector {
	sel, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return sel
}

// String returns the source text of the selector.
func (s *Selector) String() string { return s.src }

func parseStep(src string) (selStep, error) {
	var st selStep
	i := 0
	// Leading tag name.
	for i < len(src) && src[i] != '.' && src[i] != '#' && src[i] != '[' && src[i] != ':' {
		i++
	}
	st.tag = strings.ToLower(src[:i])
	for i < len(src) {
		switch src[i] {
		case '.':
			j := i + 1
			for j < len(src) && src[j] != '.' && src[j] != '#' && src[j] != '[' && src[j] != ':' {
				j++
			}
			if j == i+1 {
				return st, fmt.Errorf("empty class in %q", src)
			}
			st.classes = append(st.classes, src[i+1:j])
			i = j
		case '#':
			j := i + 1
			for j < len(src) && src[j] != '.' && src[j] != '[' && src[j] != ':' {
				j++
			}
			if j == i+1 {
				return st, fmt.Errorf("empty id in %q", src)
			}
			st.id = src[i+1 : j]
			i = j
		case '[':
			j := strings.IndexByte(src[i:], ']')
			if j < 0 {
				return st, fmt.Errorf("unclosed attribute in %q", src)
			}
			body := src[i+1 : i+j]
			if eq := strings.IndexByte(body, '='); eq >= 0 {
				st.attrKey = strings.ToLower(body[:eq])
				st.attrVal = strings.Trim(body[eq+1:], `"'`)
				st.hasAttr = true
			} else {
				st.attrKey = strings.ToLower(body)
				st.hasAttr = true
				st.attrVal = ""
			}
			i += j + 1
		case ':':
			const prefix = ":nth-of-type("
			if !strings.HasPrefix(src[i:], prefix) {
				return st, fmt.Errorf("unsupported pseudo-class in %q", src)
			}
			j := strings.IndexByte(src[i:], ')')
			if j < 0 {
				return st, fmt.Errorf("unclosed pseudo-class in %q", src)
			}
			nStr := src[i+len(prefix) : i+j]
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 1 {
				return st, fmt.Errorf("bad nth-of-type %q", nStr)
			}
			st.nthOfType = n
			i += j + 1
		default:
			return st, fmt.Errorf("unexpected character %q in %q", src[i], src)
		}
	}
	return st, nil
}

func (st *selStep) matches(n *Node) bool {
	if n.Type != ElementNode {
		return false
	}
	if st.tag != "" && st.tag != "*" && n.Tag != st.tag {
		return false
	}
	for _, c := range st.classes {
		if !n.HasClass(c) {
			return false
		}
	}
	if st.id != "" && n.Attr("id") != st.id {
		return false
	}
	if st.hasAttr {
		v, ok := n.Attrs[st.attrKey]
		if !ok {
			return false
		}
		if st.attrVal != "" && v != st.attrVal {
			return false
		}
	}
	if st.nthOfType > 0 {
		if n.Parent == nil {
			return false
		}
		count := 0
		for _, sib := range n.Parent.Children {
			if sib.Type == ElementNode && sib.Tag == n.Tag {
				count++
				if sib == n {
					break
				}
			}
		}
		if count != st.nthOfType {
			return false
		}
	}
	return true
}

// Find returns all nodes in the subtree rooted at root (excluding root
// itself unless it matches a one-step selector) matching the selector, in
// document order.
func (s *Selector) Find(root *Node) []*Node {
	// current holds nodes matching the prefix of steps processed so far.
	current := []*Node{root}
	for si, step := range s.steps {
		var next []*Node
		seen := map[*Node]bool{}
		for _, base := range current {
			if step.child {
				for _, c := range base.Children {
					if step.matches(c) && !seen[c] {
						seen[c] = true
						next = append(next, c)
					}
				}
			} else {
				base.Walk(func(n *Node) bool {
					if n == base && si > 0 {
						return true
					}
					if n != base && step.matches(n) && !seen[n] {
						seen[n] = true
						next = append(next, n)
					}
					// also allow base itself to match for the first step
					if n == base && si == 0 && step.matches(n) && !seen[n] {
						seen[n] = true
						next = append(next, n)
					}
					return true
				})
			}
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

// FindFirst returns the first match in document order, or nil.
func (s *Selector) FindFirst(root *Node) *Node {
	matches := s.Find(root)
	if len(matches) == 0 {
		return nil
	}
	return matches[0]
}
