package html

import (
	"strings"
	"testing"
	"testing/quick"
)

const page = `<!DOCTYPE html>
<html><head><title>Shop</title><style>.x{color:red}</style></head>
<body>
<!-- listing -->
<div id="listing" class="products grid">
  <div class="product" data-sku="A1">
    <span class="name">USB Cable</span>
    <span class="price">$4.99</span>
    <img src="a1.png"/>
  </div>
  <div class="product" data-sku="B2">
    <span class="name">HDMI Cable &amp; Adapter</span>
    <span class="price">$7.50</span>
  </div>
</div>
<script>var x = "<div>not parsed</div>";</script>
</body></html>`

func TestParseStructure(t *testing.T) {
	root := Parse(page)
	html := root.ElementChildren()
	if len(html) != 1 || html[0].Tag != "html" {
		t.Fatalf("root children = %v", html)
	}
	title := MustCompile("title").FindFirst(root)
	if title == nil || title.Text() != "Shop" {
		t.Fatal("title not parsed")
	}
}

func TestParseAttributes(t *testing.T) {
	root := Parse(page)
	listing := MustCompile("#listing").FindFirst(root)
	if listing == nil {
		t.Fatal("id selector failed")
	}
	if !listing.HasClass("products") || !listing.HasClass("grid") || listing.HasClass("nope") {
		t.Error("HasClass wrong")
	}
	prods := MustCompile("div.product").Find(root)
	if len(prods) != 2 {
		t.Fatalf("products = %d, want 2", len(prods))
	}
	if prods[0].Attr("data-sku") != "A1" {
		t.Errorf("attr = %q", prods[0].Attr("data-sku"))
	}
}

func TestEntitiesUnescaped(t *testing.T) {
	root := Parse(page)
	names := MustCompile("span.name").Find(root)
	if len(names) != 2 {
		t.Fatal("names missing")
	}
	if names[1].Text() != "HDMI Cable & Adapter" {
		t.Errorf("entity not unescaped: %q", names[1].Text())
	}
}

func TestScriptRawText(t *testing.T) {
	root := Parse(page)
	divs := MustCompile("div").Find(root)
	for _, d := range divs {
		if strings.Contains(d.Text(), "not parsed") {
			t.Error("script content leaked into DOM elements")
		}
	}
	script := MustCompile("script").FindFirst(root)
	if script == nil || !strings.Contains(script.Text(), "not parsed") {
		t.Error("script raw text lost")
	}
}

func TestVoidAndSelfClosing(t *testing.T) {
	root := Parse(`<div><br><img src="x.png"/><span>after</span></div>`)
	span := MustCompile("span").FindFirst(root)
	if span == nil || span.Text() != "after" {
		t.Fatal("void elements broke nesting")
	}
	img := MustCompile("img").FindFirst(root)
	if img == nil || img.Attr("src") != "x.png" {
		t.Fatal("self-closing img lost")
	}
	if img.Parent.Tag != "div" {
		t.Error("img not child of div")
	}
}

func TestMalformedInput(t *testing.T) {
	cases := []string{
		"", "<", "<div", "<div><span>unclosed", "</div>stray", "<div class=>x</div>",
		"<!-- unterminated", "<div class='a", "text only",
	}
	for _, c := range cases {
		root := Parse(c) // must not panic
		if root == nil {
			t.Errorf("Parse(%q) returned nil", c)
		}
	}
	root := Parse("<div><span>unclosed")
	if MustCompile("span").FindFirst(root) == nil {
		t.Error("unclosed elements should still be in tree")
	}
}

func TestUnquotedAttributes(t *testing.T) {
	root := Parse(`<div id=main class=box data-n=5>x</div>`)
	d := MustCompile("#main").FindFirst(root)
	if d == nil || d.Attr("class") != "box" || d.Attr("data-n") != "5" {
		t.Fatalf("unquoted attrs: %v", d)
	}
}

func TestBareAttribute(t *testing.T) {
	root := Parse(`<input disabled type="text">`)
	in := MustCompile("input[disabled]").FindFirst(root)
	if in == nil {
		t.Fatal("bare attribute selector failed")
	}
}

func TestSelectorChild(t *testing.T) {
	root := Parse(`<div class="a"><p><span>deep</span></p><span>direct</span></div>`)
	direct := MustCompile("div.a > span").Find(root)
	if len(direct) != 1 || direct[0].Text() != "direct" {
		t.Fatalf("child combinator: %d matches", len(direct))
	}
	all := MustCompile("div.a span").Find(root)
	if len(all) != 2 {
		t.Fatalf("descendant combinator: %d matches, want 2", len(all))
	}
}

func TestSelectorNthOfType(t *testing.T) {
	root := Parse(`<ul><li>one</li><li>two</li><li>three</li></ul>`)
	second := MustCompile("li:nth-of-type(2)").FindFirst(root)
	if second == nil || second.Text() != "two" {
		t.Fatal("nth-of-type failed")
	}
}

func TestSelectorAttrValue(t *testing.T) {
	root := Parse(page)
	b2 := MustCompile(`div[data-sku=B2] span.price`).FindFirst(root)
	if b2 == nil || b2.Text() != "$7.50" {
		t.Fatalf("attr-value selector: %v", b2)
	}
}

func TestSelectorErrors(t *testing.T) {
	bad := []string{"", "  ", "> div", "div..x", "div.#", "div[unclosed", "div:hover", "li:nth-of-type(x)", "li:nth-of-type(0)"}
	for _, s := range bad {
		if _, err := Compile(s); err == nil {
			t.Errorf("Compile(%q) should fail", s)
		}
	}
}

func TestPath(t *testing.T) {
	root := Parse(`<html><body><div></div><div><span>x</span></div></body></html>`)
	span := MustCompile("span").FindFirst(root)
	if got := span.Path(); got != "html[0]/body[0]/div[1]/span[0]" {
		t.Errorf("Path = %q", got)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<div class="a"><span>x &amp; y</span><img src="i.png"></div>`
	root := Parse(src)
	out := root.Render()
	reparsed := Parse(out)
	s1 := MustCompile("span").FindFirst(root)
	s2 := MustCompile("span").FindFirst(reparsed)
	if s1 == nil || s2 == nil || s1.Text() != s2.Text() {
		t.Errorf("render round trip lost text: %q vs %q", s1.Text(), s2.Text())
	}
	i2 := MustCompile("img").FindFirst(reparsed)
	if i2 == nil || i2.Attr("src") != "i.png" {
		t.Error("render round trip lost attributes")
	}
}

func TestTextNormalisesWhitespace(t *testing.T) {
	root := Parse("<div>  a \n\t b  <span> c </span></div>")
	if got := root.Text(); got != "a b c" {
		t.Errorf("Text = %q", got)
	}
}

func TestWalkPrune(t *testing.T) {
	root := Parse(`<div><p><span>x</span></p><b>y</b></div>`)
	var tags []string
	root.Walk(func(n *Node) bool {
		if n.Type == ElementNode && n.Tag != "#root" {
			tags = append(tags, n.Tag)
		}
		return n.Tag != "p" // prune under p
	})
	joined := strings.Join(tags, ",")
	if joined != "div,p,b" {
		t.Errorf("walk order = %s", joined)
	}
}

func TestEscapeUnescapeProperty(t *testing.T) {
	f := func(s string) bool {
		return Unescape(Escape(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
