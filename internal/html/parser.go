// Package html implements a small HTML parser, DOM and CSS-like selector
// engine. It is the substrate for the web data extraction components
// (§2.2 and §4.1 of Furche et al.): wrapper induction learns node paths on
// these DOM trees and wrapper execution evaluates selectors against them.
//
// The parser is tolerant rather than spec-complete: it handles nesting,
// attributes (quoted and unquoted), void and self-closing elements,
// comments, and the common character entities. That is sufficient for the
// generated deep-web corpus and keeps the package dependency-free.
package html

import (
	"fmt"
	"strings"
)

// NodeType distinguishes element nodes from text nodes.
type NodeType uint8

// Node types.
const (
	ElementNode NodeType = iota
	TextNode
)

// Node is one node of the DOM tree. Text nodes have Data set and no
// children; element nodes have Tag, Attrs and Children.
type Node struct {
	Type     NodeType
	Tag      string            // lowercase element name (element nodes)
	Data     string            // text content (text nodes)
	Attrs    map[string]string // attributes (element nodes)
	Children []*Node
	Parent   *Node
}

// voidElements never have children and need no closing tag.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Parse parses an HTML document (or fragment) into a synthetic root element
// with tag "#root". It never fails on malformed input; unclosed elements
// are closed at end of input and stray end tags are ignored.
func Parse(src string) *Node {
	root := &Node{Type: ElementNode, Tag: "#root", Attrs: map[string]string{}}
	stack := []*Node{root}
	i := 0
	n := len(src)
	appendText := func(s string) {
		if s == "" {
			return
		}
		parent := stack[len(stack)-1]
		child := &Node{Type: TextNode, Data: Unescape(s), Parent: parent}
		parent.Children = append(parent.Children, child)
	}
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			appendText(src[i:])
			break
		}
		appendText(src[i : i+lt])
		i += lt
		// Comment?
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		// Doctype or other declaration?
		if strings.HasPrefix(src[i:], "<!") || strings.HasPrefix(src[i:], "<?") {
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				break
			}
			i += end + 1
			continue
		}
		gt := strings.IndexByte(src[i:], '>')
		if gt < 0 {
			appendText(src[i:])
			break
		}
		tagSrc := src[i+1 : i+gt]
		i += gt + 1
		if strings.HasPrefix(tagSrc, "/") {
			// End tag: pop to the matching open element if present.
			name := strings.ToLower(strings.TrimSpace(tagSrc[1:]))
			for d := len(stack) - 1; d >= 1; d-- {
				if stack[d].Tag == name {
					stack = stack[:d]
					break
				}
			}
			continue
		}
		selfClose := strings.HasSuffix(tagSrc, "/")
		if selfClose {
			tagSrc = tagSrc[:len(tagSrc)-1]
		}
		name, attrs := parseTag(tagSrc)
		if name == "" {
			continue
		}
		parent := stack[len(stack)-1]
		el := &Node{Type: ElementNode, Tag: name, Attrs: attrs, Parent: parent}
		parent.Children = append(parent.Children, el)
		if name == "script" || name == "style" {
			// Raw text elements: consume to the closing tag verbatim.
			closer := "</" + name
			idx := strings.Index(strings.ToLower(src[i:]), closer)
			if idx < 0 {
				break
			}
			raw := src[i : i+idx]
			if raw != "" {
				el.Children = append(el.Children, &Node{Type: TextNode, Data: raw, Parent: el})
			}
			i += idx
			gt2 := strings.IndexByte(src[i:], '>')
			if gt2 < 0 {
				break
			}
			i += gt2 + 1
			continue
		}
		if !selfClose && !voidElements[name] {
			stack = append(stack, el)
		}
	}
	return root
}

// parseTag splits "div class=\"x\" id=y" into name and attribute map.
func parseTag(s string) (string, map[string]string) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", nil
	}
	nameEnd := len(s)
	for j, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			nameEnd = j
			break
		}
	}
	name := strings.ToLower(s[:nameEnd])
	attrs := map[string]string{}
	rest := s[nameEnd:]
	j := 0
	for j < len(rest) {
		// Skip whitespace.
		for j < len(rest) && isSpace(rest[j]) {
			j++
		}
		if j >= len(rest) {
			break
		}
		// Attribute name.
		start := j
		for j < len(rest) && rest[j] != '=' && !isSpace(rest[j]) {
			j++
		}
		key := strings.ToLower(rest[start:j])
		if key == "" {
			j++
			continue
		}
		for j < len(rest) && isSpace(rest[j]) {
			j++
		}
		if j >= len(rest) || rest[j] != '=' {
			attrs[key] = "" // bare attribute
			continue
		}
		j++ // skip '='
		for j < len(rest) && isSpace(rest[j]) {
			j++
		}
		if j >= len(rest) {
			attrs[key] = ""
			break
		}
		var val string
		if rest[j] == '"' || rest[j] == '\'' {
			q := rest[j]
			j++
			end := strings.IndexByte(rest[j:], q)
			if end < 0 {
				val = rest[j:]
				j = len(rest)
			} else {
				val = rest[j : j+end]
				j += end + 1
			}
		} else {
			start = j
			for j < len(rest) && !isSpace(rest[j]) {
				j++
			}
			val = rest[start:j]
		}
		attrs[key] = Unescape(val)
	}
	return name, attrs
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// Package-level replacers: a strings.Replacer builds its matching
// machine lazily on first use, so constructing one per call rebuilt it
// for every string — these two showed up in the refresh tail's
// allocation profile.
var (
	unescaper = strings.NewReplacer(
		"&amp;", "&", "&lt;", "<", "&gt;", ">",
		"&quot;", `"`, "&#39;", "'", "&apos;", "'", "&nbsp;", " ",
	)
	escaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
)

// Unescape replaces the common character entities with their characters.
func Unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	return unescaper.Replace(s)
}

// Escape replaces HTML-significant characters with entities.
func Escape(s string) string {
	return escaper.Replace(s)
}

// Text returns the concatenated, whitespace-normalised text content of the
// subtree rooted at n.
func (n *Node) Text() string {
	var b strings.Builder
	n.collectText(&b)
	return strings.Join(strings.Fields(b.String()), " ")
}

func (n *Node) collectText(b *strings.Builder) {
	if n.Type == TextNode {
		b.WriteString(n.Data)
		b.WriteByte(' ')
		return
	}
	for _, c := range n.Children {
		c.collectText(b)
	}
}

// Attr returns the value of the named attribute, or "".
func (n *Node) Attr(name string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[name]
}

// HasClass reports whether the node's class attribute contains the class.
func (n *Node) HasClass(class string) bool {
	for _, c := range strings.Fields(n.Attr("class")) {
		if c == class {
			return true
		}
	}
	return false
}

// ElementChildren returns the element-node children of n.
func (n *Node) ElementChildren() []*Node {
	out := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits every node in the subtree in document order. Returning false
// from fn prunes the subtree below the current node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Path returns the structural path of n from the root as a slash-separated
// list of tag[childIndex] steps, e.g. "html[0]/body[1]/div[3]". It is the
// representation wrapper induction generalises over.
func (n *Node) Path() string {
	var steps []string
	cur := n
	for cur != nil && cur.Tag != "#root" {
		idx := 0
		if cur.Parent != nil {
			for i, sib := range cur.Parent.ElementChildren() {
				if sib == cur {
					idx = i
					break
				}
			}
		}
		steps = append([]string{fmt.Sprintf("%s[%d]", cur.Tag, idx)}, steps...)
		cur = cur.Parent
	}
	return strings.Join(steps, "/")
}

// Render serialises the subtree back to HTML (element nodes only at root).
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	if n.Type == TextNode {
		b.WriteString(Escape(n.Data))
		return
	}
	if n.Tag != "#root" {
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for k, v := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(Escape(v))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidElements[n.Tag] {
			return
		}
	}
	for _, c := range n.Children {
		c.render(b)
	}
	if n.Tag != "#root" {
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}
