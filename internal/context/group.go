package context

import (
	"fmt"
	"math"
)

// Group decision support: a user context often belongs to a team, not one
// analyst ("groups of users and tasks", §3.3). The standard AHP group
// aggregation combines each stakeholder's pairwise judgement matrix by
// the element-wise geometric mean — the only aggregation that preserves
// the reciprocal property of comparison matrices.

// GroupAHP aggregates several stakeholders' AHP matrices over the same
// criteria (optionally weighted by stakeholder importance) into one
// matrix. Matrices must share the identical criteria list, in order.
func GroupAHP(members []*AHP, memberWeights []float64) (*AHP, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("context: group AHP needs at least one member")
	}
	base := members[0]
	for _, m := range members[1:] {
		if len(m.criteria) != len(base.criteria) {
			return nil, fmt.Errorf("context: group members disagree on criteria count")
		}
		for i := range m.criteria {
			if m.criteria[i] != base.criteria[i] {
				return nil, fmt.Errorf("context: group members disagree on criterion %d: %q vs %q",
					i, m.criteria[i], base.criteria[i])
			}
		}
	}
	if memberWeights == nil {
		memberWeights = make([]float64, len(members))
		for i := range memberWeights {
			memberWeights[i] = 1
		}
	}
	if len(memberWeights) != len(members) {
		return nil, fmt.Errorf("context: %d member weights for %d members", len(memberWeights), len(members))
	}
	totalW := 0.0
	for _, w := range memberWeights {
		if w <= 0 {
			return nil, fmt.Errorf("context: member weights must be positive")
		}
		totalW += w
	}
	out, err := NewAHP(base.criteria...)
	if err != nil {
		return nil, err
	}
	n := len(base.criteria)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			// Weighted geometric mean of the (i,j) judgements.
			logSum := 0.0
			for mi, m := range members {
				logSum += memberWeights[mi] * math.Log(m.m[i][j])
			}
			out.m[i][j] = math.Exp(logSum / totalW)
		}
	}
	return out, nil
}

// BuildGroupContext elicits a team user context: aggregate the members'
// judgements, then derive weights with the usual consistency check.
func BuildGroupContext(name string, members []*AHP, memberWeights []float64, maxSources int, feedbackBudget float64) (*UserContext, error) {
	agg, err := GroupAHP(members, memberWeights)
	if err != nil {
		return nil, err
	}
	return BuildUserContext(name, agg, maxSources, feedbackBudget)
}
