package context

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ontology"
)

func TestNewAHPValidation(t *testing.T) {
	if _, err := NewAHP(Accuracy); err == nil {
		t.Error("single criterion should fail")
	}
	if _, err := NewAHP(Accuracy, Accuracy); err == nil {
		t.Error("duplicate criteria should fail")
	}
	a, err := NewAHP(Accuracy, Completeness, Timeliness)
	if err != nil || a == nil {
		t.Fatal(err)
	}
}

func TestAHPSetValidation(t *testing.T) {
	a, _ := NewAHP(Accuracy, Completeness)
	if err := a.Set(Accuracy, Completeness, 0); err == nil {
		t.Error("zero ratio should fail")
	}
	if err := a.Set(Accuracy, Criterion("nope"), 2); err == nil {
		t.Error("unknown criterion should fail")
	}
	if err := a.Set(Accuracy, Completeness, 3); err != nil {
		t.Error(err)
	}
}

func TestAHPWeightsIdentity(t *testing.T) {
	a, _ := NewAHP(Accuracy, Completeness, Timeliness)
	w, cr := a.Weights()
	for c, x := range w {
		if math.Abs(x-1.0/3.0) > 1e-9 {
			t.Errorf("identity matrix weight %s = %f", c, x)
		}
	}
	if cr > 1e-9 {
		t.Errorf("identity CR = %f, want 0", cr)
	}
}

func TestAHPWeightsOrdering(t *testing.T) {
	a, _ := NewAHP(Accuracy, Completeness, Timeliness)
	// Accuracy 3x completeness, 5x timeliness; completeness 2x timeliness
	// (reasonably consistent judgements).
	a.Set(Accuracy, Completeness, 3)
	a.Set(Accuracy, Timeliness, 5)
	a.Set(Completeness, Timeliness, 2)
	w, cr := a.Weights()
	if !(w[Accuracy] > w[Completeness] && w[Completeness] > w[Timeliness]) {
		t.Errorf("weights not ordered: %v", w)
	}
	sum := w[Accuracy] + w[Completeness] + w[Timeliness]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %f", sum)
	}
	if cr > 0.1 {
		t.Errorf("consistent judgements have CR = %f", cr)
	}
	// Textbook check: weights approximately (0.65, 0.23, 0.12).
	if math.Abs(w[Accuracy]-0.648) > 0.02 {
		t.Errorf("accuracy weight = %f, want ~0.65", w[Accuracy])
	}
}

func TestAHPInconsistentJudgements(t *testing.T) {
	a, _ := NewAHP(Accuracy, Completeness, Timeliness)
	// A > C, C > T, but T >> A: a preference cycle.
	a.Set(Accuracy, Completeness, 9)
	a.Set(Completeness, Timeliness, 9)
	a.Set(Timeliness, Accuracy, 9)
	_, cr := a.Weights()
	if cr <= 0.1 {
		t.Errorf("cyclic judgements should be inconsistent, CR = %f", cr)
	}
	if _, err := BuildUserContext("bad", a, 0, 0); err == nil {
		t.Error("BuildUserContext should reject inconsistent judgements")
	}
}

func TestBuildUserContext(t *testing.T) {
	a, _ := NewAHP(Accuracy, Completeness)
	a.Set(Accuracy, Completeness, 4)
	u, err := BuildUserContext("routine", a, 10, 25.0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Name != "routine" || u.MaxSources != 10 || u.FeedbackBudget != 25.0 {
		t.Errorf("context = %+v", u)
	}
	if u.Weight(Accuracy) <= u.Weight(Completeness) {
		t.Error("accuracy should dominate")
	}
	if u.Weight(Criterion("nope")) != 0 {
		t.Error("unset criterion weight should be 0")
	}
}

func TestUserContextScore(t *testing.T) {
	u := &UserContext{Weights: map[Criterion]float64{Accuracy: 0.7, Completeness: 0.3}}
	s := u.Score(map[Criterion]float64{Accuracy: 1, Completeness: 0})
	if math.Abs(s-0.7) > 1e-9 {
		t.Errorf("score = %f, want 0.7", s)
	}
	// Missing criteria renormalise.
	s = u.Score(map[Criterion]float64{Accuracy: 0.5})
	if math.Abs(s-0.5) > 1e-9 {
		t.Errorf("renormalised score = %f, want 0.5", s)
	}
	if u.Score(nil) != 0 {
		t.Error("empty scores = 0")
	}
}

func TestDataContextBuilders(t *testing.T) {
	master := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i := 0; i < 5; i++ {
		master.AppendValues(dataset.String("A"), dataset.Float(float64(i)))
	}
	ref := dataset.NewTable(dataset.MustSchema(dataset.Field{Name: "addr", Kind: dataset.KindString}))

	d := NewDataContext().
		WithMaster(master, "sku").
		WithTaxonomy(ontology.ProductTaxonomy()).
		AddReference("known_addresses", ref)

	inv := d.EvidenceInventory()
	want := []string{"master_data", "ontology", "reference:known_addresses"}
	if len(inv) != len(want) {
		t.Fatalf("inventory = %v", inv)
	}
	for i := range want {
		if inv[i] != want[i] {
			t.Errorf("inventory[%d] = %s, want %s", i, inv[i], want[i])
		}
	}
}

func TestMasterSamples(t *testing.T) {
	master := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
	))
	for i := 0; i < 100; i++ {
		master.AppendValues(dataset.String("X"))
	}
	d := NewDataContext().WithMaster(master, "sku")
	s := d.MasterSamples(10)
	if len(s["sku"]) != 10 {
		t.Errorf("samples = %d, want 10", len(s["sku"]))
	}
	if NewDataContext().MasterSamples(10) != nil {
		t.Error("no master data should return nil")
	}
}

func TestEvidenceInventoryEmpty(t *testing.T) {
	if len(NewDataContext().EvidenceInventory()) != 0 {
		t.Error("empty context should have empty inventory")
	}
}
