package context

import (
	"math"
	"testing"
)

func memberAHP(t *testing.T, accOverCompl float64) *AHP {
	t.Helper()
	a, err := NewAHP(Accuracy, Completeness, Timeliness)
	if err != nil {
		t.Fatal(err)
	}
	a.Set(Accuracy, Completeness, accOverCompl)
	a.Set(Accuracy, Timeliness, accOverCompl)
	a.Set(Completeness, Timeliness, 1)
	return a
}

func TestGroupAHPGeometricMean(t *testing.T) {
	// Two members: one says accuracy 4x, one says 1x. Geometric mean: 2x.
	agg, err := GroupAHP([]*AHP{memberAHP(t, 4), memberAHP(t, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.m[0][1]; math.Abs(got-2) > 1e-9 {
		t.Errorf("aggregated judgement = %f, want 2", got)
	}
	// Reciprocity preserved.
	if math.Abs(agg.m[1][0]-0.5) > 1e-9 {
		t.Errorf("reciprocal = %f, want 0.5", agg.m[1][0])
	}
}

func TestGroupAHPWeighted(t *testing.T) {
	// Lead analyst (weight 3) says 8x; junior (weight 1) says 1x.
	// Weighted geometric mean = 8^(3/4) ≈ 4.76.
	agg, err := GroupAHP([]*AHP{memberAHP(t, 8), memberAHP(t, 1)}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(8, 0.75)
	if got := agg.m[0][1]; math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted judgement = %f, want %f", got, want)
	}
}

func TestGroupAHPValidation(t *testing.T) {
	if _, err := GroupAHP(nil, nil); err == nil {
		t.Error("empty group should fail")
	}
	a, _ := NewAHP(Accuracy, Completeness)
	b, _ := NewAHP(Accuracy, Completeness, Timeliness)
	if _, err := GroupAHP([]*AHP{a, b}, nil); err == nil {
		t.Error("mismatched criteria should fail")
	}
	c, _ := NewAHP(Completeness, Accuracy)
	if _, err := GroupAHP([]*AHP{a, c}, nil); err == nil {
		t.Error("different criterion order should fail")
	}
	if _, err := GroupAHP([]*AHP{a}, []float64{1, 2}); err == nil {
		t.Error("weight count mismatch should fail")
	}
	if _, err := GroupAHP([]*AHP{a}, []float64{0}); err == nil {
		t.Error("non-positive weights should fail")
	}
}

func TestBuildGroupContext(t *testing.T) {
	uc, err := BuildGroupContext("team", []*AHP{memberAHP(t, 4), memberAHP(t, 2)}, nil, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if uc.Weight(Accuracy) <= uc.Weight(Completeness) {
		t.Error("team consensus should still favour accuracy")
	}
	if uc.MaxSources != 5 || uc.FeedbackBudget != 10 {
		t.Errorf("context = %+v", uc)
	}
}

func TestGroupAHPSingleMemberIdentity(t *testing.T) {
	m := memberAHP(t, 5)
	agg, err := GroupAHP([]*AHP{m}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wm, _ := m.Weights()
	wa, _ := agg.Weights()
	for c, w := range wm {
		if math.Abs(w-wa[c]) > 1e-9 {
			t.Errorf("single-member aggregation changed weight of %s: %f vs %f", c, wa[c], w)
		}
	}
}
