// Package context implements the two context notions at the heart of the
// paper's vision (§2.1, §2.3, §3.3):
//
//   - The user context — "functional and non-functional requirements of
//     the users, and the trade-offs between them" — captured as weighted
//     quality criteria elicited through the Analytic Hierarchy Process
//     (Saaty [31]): pairwise importance comparisons are turned into a
//     priority vector via the principal eigenvector, with the consistency
//     ratio guarding against incoherent judgements.
//
//   - The data context — "the sources that may provide data for wrangling,
//     and other information that may inform the wrangling process" — a
//     registry of master data, reference tables and domain ontologies that
//     extraction, matching and fusion consult.
package context

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ontology"
)

// Criterion names a quality dimension the user cares about.
type Criterion string

// The standard wrangling criteria (§2.1 names accuracy, timeliness and
// completeness explicitly; cost and relevance arise in §4.1).
const (
	Accuracy     Criterion = "accuracy"
	Completeness Criterion = "completeness"
	Timeliness   Criterion = "timeliness"
	Consistency  Criterion = "consistency"
	Relevance    Criterion = "relevance"
	Cost         Criterion = "cost"
)

// UserContext is a named set of criterion weights (normalised to sum 1)
// plus hard resource bounds.
type UserContext struct {
	Name    string
	Weights map[Criterion]float64
	// MaxSources bounds how many sources the planner may use (0 = no
	// bound) — the "budget for accessing sources" of §4.1.
	MaxSources int
	// FeedbackBudget bounds pay-as-you-go spending (0 = no bound).
	FeedbackBudget float64
}

// Weight returns the context's weight for a criterion (0 if unset).
func (u *UserContext) Weight(c Criterion) float64 { return u.Weights[c] }

// DefaultUserContext returns the balanced context used when a caller
// supplies none: accuracy, completeness, timeliness and relevance
// weighted equally, no resource bounds.
func DefaultUserContext() *UserContext {
	return &UserContext{Name: "default", Weights: map[Criterion]float64{
		Accuracy: 0.25, Completeness: 0.25, Timeliness: 0.25, Relevance: 0.25,
	}}
}

// AHP is a pairwise comparison matrix over criteria. Entry (i,j) holds how
// much more important criterion i is than j on Saaty's 1-9 scale;
// reciprocals are enforced by Set.
type AHP struct {
	criteria []Criterion
	m        [][]float64
}

// NewAHP creates an identity comparison matrix over the given criteria.
func NewAHP(criteria ...Criterion) (*AHP, error) {
	if len(criteria) < 2 {
		return nil, fmt.Errorf("context: AHP needs at least two criteria")
	}
	seen := map[Criterion]bool{}
	for _, c := range criteria {
		if seen[c] {
			return nil, fmt.Errorf("context: duplicate criterion %q", c)
		}
		seen[c] = true
	}
	n := len(criteria)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = 1
			} else {
				m[i][j] = 1
			}
		}
	}
	return &AHP{criteria: append([]Criterion(nil), criteria...), m: m}, nil
}

// Set records that a is `ratio` times as important as b (Saaty scale 1-9;
// fractional values allowed) and enforces the reciprocal entry.
func (a *AHP) Set(x, y Criterion, ratio float64) error {
	if ratio <= 0 {
		return fmt.Errorf("context: ratio must be positive, got %f", ratio)
	}
	i, j := a.index(x), a.index(y)
	if i < 0 || j < 0 {
		return fmt.Errorf("context: unknown criterion %q or %q", x, y)
	}
	a.m[i][j] = ratio
	a.m[j][i] = 1 / ratio
	return nil
}

func (a *AHP) index(c Criterion) int {
	for i, x := range a.criteria {
		if x == c {
			return i
		}
	}
	return -1
}

// Weights computes the priority vector by power iteration on the
// comparison matrix (principal eigenvector, normalised to sum 1) and the
// consistency ratio CR. Judgements with CR > 0.1 are conventionally
// considered too inconsistent to use.
func (a *AHP) Weights() (map[Criterion]float64, float64) {
	n := len(a.criteria)
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	var lambda float64
	for iter := 0; iter < 100; iter++ {
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[i] += a.m[i][j] * v[j]
			}
		}
		sum := 0.0
		for _, x := range next {
			sum += x
		}
		if sum == 0 {
			break
		}
		delta := 0.0
		for i := range next {
			next[i] /= sum
			delta += math.Abs(next[i] - v[i])
		}
		v = next
		lambda = sum
		if delta < 1e-12 {
			break
		}
	}
	// lambda_max estimate: average of (Av)_i / v_i.
	lmax := 0.0
	for i := 0; i < n; i++ {
		av := 0.0
		for j := 0; j < n; j++ {
			av += a.m[i][j] * v[j]
		}
		if v[i] > 0 {
			lmax += av / v[i]
		}
	}
	lmax /= float64(n)
	_ = lambda
	ci := (lmax - float64(n)) / float64(n-1)
	ri := randomIndex(n)
	cr := 0.0
	if ri > 0 {
		cr = ci / ri
	}
	out := make(map[Criterion]float64, n)
	for i, c := range a.criteria {
		out[c] = v[i]
	}
	return out, cr
}

// randomIndex returns Saaty's random consistency index for matrices of
// size n.
func randomIndex(n int) float64 {
	ri := []float64{0, 0, 0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49}
	if n < len(ri) {
		return ri[n]
	}
	return 1.49
}

// BuildUserContext elicits a user context from an AHP matrix, returning an
// error when the judgements are too inconsistent (CR > 0.1).
func BuildUserContext(name string, a *AHP, maxSources int, feedbackBudget float64) (*UserContext, error) {
	w, cr := a.Weights()
	if cr > 0.1 {
		return nil, fmt.Errorf("context: AHP consistency ratio %.3f exceeds 0.1 — revise judgements", cr)
	}
	return &UserContext{Name: name, Weights: w, MaxSources: maxSources, FeedbackBudget: feedbackBudget}, nil
}

// Score combines per-criterion scores (each in [0,1], missing = skipped)
// into the context-weighted utility.
func (u *UserContext) Score(scores map[Criterion]float64) float64 {
	total, wsum := 0.0, 0.0
	for c, w := range u.Weights {
		if s, ok := scores[c]; ok && w > 0 {
			total += w * s
			wsum += w
		}
	}
	if wsum == 0 {
		return 0
	}
	return total / wsum
}

// DataContext is the registry of auxiliary information available to the
// wrangling process (Figure 1's "Auxiliary Data").
type DataContext struct {
	// MasterData is the application's own trusted table (e.g. the
	// e-commerce company's product catalog, Example 4).
	MasterData *dataset.Table
	// MasterKey names the entity-key column of MasterData.
	MasterKey string
	// Reference tables by name (e.g. "known_addresses").
	Reference map[string]*dataset.Table
	// Taxonomy is the domain ontology.
	Taxonomy *ontology.Taxonomy
}

// NewDataContext returns an empty data context.
func NewDataContext() *DataContext {
	return &DataContext{Reference: map[string]*dataset.Table{}}
}

// WithMaster sets the master-data table and key.
func (d *DataContext) WithMaster(t *dataset.Table, key string) *DataContext {
	d.MasterData = t
	d.MasterKey = key
	return d
}

// WithTaxonomy sets the ontology.
func (d *DataContext) WithTaxonomy(t *ontology.Taxonomy) *DataContext {
	d.Taxonomy = t
	return d
}

// AddReference registers a reference table.
func (d *DataContext) AddReference(name string, t *dataset.Table) *DataContext {
	d.Reference[name] = t
	return d
}

// MasterSamples extracts per-column value samples from master data (at
// most n per column) for instance-based matching.
func (d *DataContext) MasterSamples(n int) map[string][]dataset.Value {
	if d.MasterData == nil {
		return nil
	}
	out := map[string][]dataset.Value{}
	for _, f := range d.MasterData.Schema() {
		col, err := d.MasterData.Column(f.Name)
		if err != nil {
			continue
		}
		if len(col) > n {
			col = col[:n]
		}
		out[f.Name] = col
	}
	return out
}

// EvidenceInventory lists which evidence types this data context can
// supply, for diagnostics and the E4 sweep.
func (d *DataContext) EvidenceInventory() []string {
	var out []string
	if d.MasterData != nil {
		out = append(out, "master_data")
	}
	if d.Taxonomy != nil {
		out = append(out, "ontology")
	}
	names := make([]string, 0, len(d.Reference))
	for n := range d.Reference {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, "reference:"+n)
	}
	return out
}
