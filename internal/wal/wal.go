// Package wal is a compact binary append log with length-prefixed,
// checksummed records — the persistence layer under the durable session.
// It is deliberately generic: the framing knows record kinds, lengths and
// CRCs, while the domain payloads (versions, pages, feedback, provenance)
// are encoded by the owner (internal/core) with this package's
// Encoder/Decoder.
//
// On-disk layout:
//
//	+--------+---------+   +------+--------+---------+-------+
//	| "WRGL" | version |   | kind | length | payload | crc32 |  ...
//	| 4 B    | u16 LE  |   | u8   | u32 LE | n bytes | u32 LE|
//	+--------+---------+   +------+--------+---------+-------+
//
// The CRC (Castagnoli) covers kind+length+payload, so any single flipped
// bit — header or body — is detected. Replay accepts the longest valid
// prefix: the first record that is truncated, oversized or checksum-bad
// ends the scan, everything before it is intact (appends are strictly
// sequential, so a valid prefix is always a consistent point-in-time
// state). Open truncates the file back to that prefix, which is how a
// crash mid-append heals on restart.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

const (
	magic = "WRGL"
	// FormatVersion is bumped on any incompatible layout change; Open
	// refuses logs written by a different format.
	FormatVersion = 1
	headerSize    = 6 // magic + u16 version
	// frameOverhead is the per-record framing cost: kind + length + crc.
	frameOverhead = 9
	// MaxPayload bounds a single record. Anything larger in a length
	// field is treated as corruption, not an allocation request.
	MaxPayload = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind tags a record's payload type. Values are stable on-disk bytes;
// the domain layer defines meaning. Mnemonic ASCII so hexdumps read.
type Kind uint8

// Record kinds written by the durable session layer.
const (
	KindConfig     Kind = 0x43 // 'C' — session configuration fingerprint
	KindSource     Kind = 0x53 // 'S' — one source's committed state
	KindFeedback   Kind = 0x46 // 'F' — one feedback item
	KindProv       Kind = 0x44 // 'D' — a batch of provenance derivations
	KindPage       Kind = 0x50 // 'P' — one fused shard page (written once, referenced by id)
	KindVersion    Kind = 0x56 // 'V' — one published version (references pages)
	KindCheckpoint Kind = 0x4b // 'K' — durability marker: state consistent through seq
)

// Record is one replayed log record. Payload aliases the replay buffer;
// decode it before the next Open/Compact of the same log.
type Record struct {
	Kind    Kind
	Payload []byte
	// Offset is the file offset of the record's kind byte — stable
	// addressing for corruption reports.
	Offset int64
}

// Data is a record to be written — the input shape for Compact.
type Data struct {
	Kind    Kind
	Payload []byte
}

// ReplayResult is what Open recovered from an existing log.
type ReplayResult struct {
	// Records is the longest valid record prefix, in append order.
	Records []Record
	// Truncated reports that the file held garbage past the valid
	// prefix — a torn append or corruption — which Open cut off.
	Truncated bool
	// TruncatedAt is the offset of the first invalid byte (= the new
	// file size) when Truncated.
	TruncatedAt int64
	// Reason is the validation failure that ended the scan, nil when the
	// log was clean.
	Reason error
}

// SyncPolicy says when the log calls fsync. Every append batch is
// flushed to the OS regardless (a SIGKILL loses nothing once write(2)
// returned); fsync only matters for power loss and is the expensive
// call, so it is a policy.
type SyncPolicy int

const (
	// SyncOnCheckpoint fsyncs only at checkpoints and compactions (and
	// on Close). The default: crash-safe against process death, bounded
	// loss (since the last checkpoint) against power failure.
	SyncOnCheckpoint SyncPolicy = iota
	// SyncAlways fsyncs after every committed batch — every published
	// version is durable against power loss before the publish returns.
	SyncAlways
)

// Log is an open append handle. Not safe for concurrent use; the owner
// serialises access (the session lock, in practice).
type Log struct {
	path   string
	f      *os.File
	w      *bufWriter
	size   int64
	policy SyncPolicy
	err    error       // sticky: first write failure poisons the handle
	met    *logMetrics // nil unless Instrument enabled telemetry
}

// logMetrics are the WAL activity counters, resolved once at Instrument.
type logMetrics struct {
	appends       *obs.Counter
	appendedBytes *obs.Counter
	commits       *obs.Counter
	fsyncs        *obs.Counter
	compactions   *obs.Counter
}

// Instrument registers the log's activity counters on reg and starts
// recording appends (and their framed bytes), commits, fsyncs and
// compactions. Compact's rewrite appends are not counted — only records
// the owner newly appended. Call under the owner's serialisation, like
// every other Log method; a nil reg is a no-op.
func (l *Log) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("wrangle_wal_appended_bytes_total", "Bytes appended to the durable log, framing included.")
	reg.Help("wrangle_wal_fsyncs_total", "fsync calls issued by commits, checkpoints and compactions.")
	l.met = &logMetrics{
		appends:       reg.Counter("wrangle_wal_appends_total"),
		appendedBytes: reg.Counter("wrangle_wal_appended_bytes_total"),
		commits:       reg.Counter("wrangle_wal_commits_total"),
		fsyncs:        reg.Counter("wrangle_wal_fsyncs_total"),
		compactions:   reg.Counter("wrangle_wal_compactions_total"),
	}
}

// bufWriter is a minimal buffered writer (avoids bufio's Reset dance
// across Compact's handle swap).
type bufWriter struct {
	f   *os.File
	buf []byte
}

func (b *bufWriter) write(p []byte) {
	b.buf = append(b.buf, p...)
}

func (b *bufWriter) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

// Open opens (or creates) the log at path, replays and validates its
// contents, truncates any torn tail, and returns the handle positioned
// for append plus the replay result. A file that exists but does not
// start with a valid header is an error — Open never silently clobbers
// a file it does not recognise.
func Open(path string, policy SyncPolicy) (*Log, *ReplayResult, error) {
	buf, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	fresh := errors.Is(err, os.ErrNotExist) || len(buf) == 0
	res := &ReplayResult{}
	validSize := int64(headerSize)
	if !fresh {
		if err := checkHeader(buf); err != nil {
			return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
		}
		res.Records, validSize, res.Reason = scan(buf)
		if res.Reason != nil {
			res.Truncated = true
			res.TruncatedAt = validSize
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{path: path, f: f, w: &bufWriter{f: f}, policy: policy}
	if fresh {
		hdr := header()
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: write header %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync header %s: %w", path, err)
		}
		l.size = int64(headerSize)
		return l, res, nil
	}
	// Heal a torn tail: cut the file back to the valid prefix so the
	// next append starts on a record boundary.
	if validSize < int64(len(buf)) {
		if err := f.Truncate(validSize); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail %s: %w", path, err)
		}
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	l.size = validSize
	return l, res, nil
}

func header() []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint16(hdr[4:], FormatVersion)
	return hdr
}

func checkHeader(buf []byte) error {
	if len(buf) < headerSize {
		return fmt.Errorf("offset 0x0: file shorter than the %d-byte header", headerSize)
	}
	if string(buf[:4]) != magic {
		return fmt.Errorf("offset 0x0: bad magic %q (not a wrangle log)", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != FormatVersion {
		return fmt.Errorf("offset 0x4: unsupported log format version %d (want %d)", v, FormatVersion)
	}
	return nil
}

// Scan validates buf as a complete log image (header + records) and
// returns the longest valid record prefix. The error, if any, describes
// why the scan stopped; records before it are intact either way. It
// never panics on arbitrary input.
func Scan(buf []byte) ([]Record, int64, error) {
	if err := checkHeader(buf); err != nil {
		return nil, 0, err
	}
	return scan(buf)
}

func scan(buf []byte) ([]Record, int64, error) {
	off := int64(headerSize)
	var recs []Record
	for off < int64(len(buf)) {
		rem := int64(len(buf)) - off
		if rem < frameOverhead {
			return recs, off, fmt.Errorf("wal: offset 0x%x: truncated record frame (%d bytes left, need at least %d)", off, rem, frameOverhead)
		}
		kind := Kind(buf[off])
		n := binary.LittleEndian.Uint32(buf[off+1:])
		if n > MaxPayload {
			return recs, off, fmt.Errorf("wal: offset 0x%x: implausible record length %d", off, n)
		}
		total := int64(frameOverhead) + int64(n)
		if rem < total {
			return recs, off, fmt.Errorf("wal: offset 0x%x: truncated record: need %d bytes, %d left", off, total, rem)
		}
		body := buf[off : off+5+int64(n)]
		want := binary.LittleEndian.Uint32(buf[off+5+int64(n):])
		if got := crc32.Checksum(body, castagnoli); got != want {
			return recs, off, fmt.Errorf("wal: offset 0x%x: checksum mismatch on record kind 0x%x (%d bytes): got %08x want %08x", off, kind, n, crc32.Checksum(body, castagnoli), want)
		}
		recs = append(recs, Record{Kind: kind, Payload: body[5:], Offset: off})
		off += total
	}
	return recs, off, nil
}

// Append buffers one record. Nothing is guaranteed on disk until
// Commit; batch the records of one logical commit, then Commit once.
func (l *Log) Append(kind Kind, payload []byte) error {
	if l.err != nil {
		return l.err
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("wal: record kind 0x%x payload %d bytes exceeds limit %d", kind, len(payload), MaxPayload)
	}
	var hdr [5]byte
	hdr[0] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.Checksum(hdr[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	l.w.write(hdr[:])
	l.w.write(payload)
	l.w.write(tail[:])
	l.size += int64(frameOverhead + len(payload))
	if m := l.met; m != nil {
		m.appends.Inc()
		m.appendedBytes.Add(int64(frameOverhead + len(payload)))
	}
	return nil
}

// Commit flushes buffered records to the OS; under SyncAlways it also
// fsyncs. One Commit per logical publish keeps the valid prefix aligned
// with committed versions.
func (l *Log) Commit() error {
	if l.err != nil {
		return l.err
	}
	if err := l.w.flush(); err != nil {
		l.err = fmt.Errorf("wal: flush %s: %w", l.path, err)
		return l.err
	}
	if l.policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: sync %s: %w", l.path, err)
			return l.err
		}
		if m := l.met; m != nil {
			m.fsyncs.Inc()
		}
	}
	if m := l.met; m != nil {
		m.commits.Inc()
	}
	return nil
}

// Sync flushes and fsyncs regardless of policy (checkpoints, Close).
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	if err := l.w.flush(); err != nil {
		l.err = fmt.Errorf("wal: flush %s: %w", l.path, err)
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync %s: %w", l.path, err)
		return l.err
	}
	if m := l.met; m != nil {
		m.fsyncs.Inc()
	}
	return nil
}

// Size returns the log's current size in bytes (including buffered
// appends).
func (l *Log) Size() int64 { return l.size }

// Path returns the log file's path.
func (l *Log) Path() string { return l.path }

// Err returns the sticky write error, if any.
func (l *Log) Err() error { return l.err }

// Close flushes, fsyncs and closes the handle. The log can be reopened
// with Open.
func (l *Log) Close() error {
	if l.f == nil {
		return l.err
	}
	syncErr := l.Sync()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close %s: %w", l.path, closeErr)
	}
	return nil
}

// Compact atomically replaces the log's contents with the given records:
// they are written to a temporary file in the same directory, fsynced,
// and renamed over the log, after which the handle continues appending
// to the new file. Readers of the old file are unaffected (rename
// semantics); a crash at any point leaves either the old or the new log
// fully intact.
func (l *Log) Compact(recs []Data) error {
	if l.err != nil {
		return l.err
	}
	if err := l.w.flush(); err != nil {
		l.err = fmt.Errorf("wal: flush %s: %w", l.path, err)
		return l.err
	}
	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact %s: %w", l.path, err)
	}
	nl := &Log{path: tmpPath, f: tmp, w: &bufWriter{f: tmp}, policy: l.policy, size: int64(headerSize)}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if _, err := tmp.Write(header()); err != nil {
		return cleanup(fmt.Errorf("wal: compact %s: write header: %w", l.path, err))
	}
	for _, r := range recs {
		if err := nl.Append(r.Kind, r.Payload); err != nil {
			return cleanup(err)
		}
	}
	if err := nl.w.flush(); err != nil {
		return cleanup(fmt.Errorf("wal: compact %s: flush: %w", l.path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("wal: compact %s: sync: %w", l.path, err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("wal: compact %s: close: %w", l.path, err))
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact %s: rename: %w", l.path, err)
	}
	// Durability of the rename itself: fsync the directory entry.
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.err = fmt.Errorf("wal: reopen after compact %s: %w", l.path, err)
		return l.err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		l.err = fmt.Errorf("wal: seek after compact %s: %w", l.path, err)
		return l.err
	}
	l.f.Close()
	l.f = f
	l.w = &bufWriter{f: f}
	l.size = nl.size
	if m := l.met; m != nil {
		m.compactions.Inc()
		m.fsyncs.Inc() // the tmp-file sync that made the new image durable
	}
	return nil
}
