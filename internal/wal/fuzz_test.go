package wal

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes — seeded with real logs, truncated
// tails and bit-flipped frames — through the replay scanner and asserts
// the recovery contract:
//
//   - replay never panics and never allocates from a hostile length field;
//   - every replayed record is internally consistent (offset within the
//     input, payload within bounds);
//   - the valid-prefix property: re-scanning the prefix replay reports
//     clean yields exactly the same records with no truncation — so Open's
//     heal-by-truncate always lands on a stable file;
//   - a healed log accepts appends and replays them back.
func FuzzWALReplay(f *testing.F) {
	// Seed with a realistic log: config, a couple of sources, a page, two
	// versions, a checkpoint.
	var seedLog bytes.Buffer
	seedLog.Write(header())
	write := func(kind Kind, payload []byte) {
		var e Encoder
		e.U8(uint8(kind))
		e.U32(uint32(len(payload)))
		frame := append(e.Bytes(), payload...)
		seedLog.Write(frame)
		var c Encoder
		c.U32(crcOf(frame))
		seedLog.Write(c.Bytes())
	}
	write(KindConfig, []byte("schema|shards=4|streaming"))
	write(KindSource, []byte("src-1 state"))
	write(KindSource, nil)
	write(KindPage, bytes.Repeat([]byte{0x42}, 512))
	write(KindVersion, []byte("version 1 -> page 1"))
	write(KindFeedback, []byte("fb"))
	write(KindVersion, []byte("version 2 -> page 1"))
	write(KindCheckpoint, []byte("ckpt@2"))
	full := seedLog.Bytes()

	f.Add(full)
	f.Add(full[:0])
	f.Add(full[:headerSize])
	f.Add(full[:len(full)-3]) // torn tail
	f.Add(append([]byte(nil), full[:headerSize+4]...))
	mut := append([]byte(nil), full...)
	mut[headerSize+2] ^= 0x10 // corrupt first frame's length
	f.Add(mut)
	f.Add([]byte("WRGL"))
	f.Add([]byte("not a log at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // keep the corpus cheap; framing bugs don't need megabytes
		}
		recs, valid, reason := scanInput(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		for i, r := range recs {
			if r.Offset < headerSize || r.Offset >= valid {
				t.Fatalf("record %d offset %d outside valid prefix %d", i, r.Offset, valid)
			}
			if len(r.Payload) > MaxPayload {
				t.Fatalf("record %d payload %d exceeds MaxPayload", i, len(r.Payload))
			}
		}
		// Stability: the reported valid prefix must itself scan clean, to
		// the same records — Open truncates to it and must not cascade.
		if valid >= headerSize {
			recs2, valid2, reason2 := scanInput(data[:valid])
			if reason2 != nil {
				t.Fatalf("valid prefix re-scan failed: %v (first scan: %v)", reason2, reason)
			}
			if valid2 != valid || len(recs2) != len(recs) {
				t.Fatalf("valid prefix unstable: %d/%d records, %d/%d bytes", len(recs2), len(recs), valid2, valid)
			}
			for i := range recs {
				if recs2[i].Kind != recs[i].Kind || !bytes.Equal(recs2[i].Payload, recs[i].Payload) {
					t.Fatalf("record %d changed across re-scan", i)
				}
			}
		}

		// End-to-end: Open the mutated bytes as a file. It must either
		// refuse (bad header) or heal to the valid prefix and keep working.
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(path, SyncOnCheckpoint)
		if err != nil {
			return // refused outright (torn/invalid header) — fine
		}
		defer l.Close()
		if len(rep.Records) != len(recs) {
			t.Fatalf("Open replayed %d records, scan found %d", len(rep.Records), len(recs))
		}
		if err := l.Append(KindCheckpoint, []byte("post-heal")); err != nil {
			t.Fatalf("append after heal: %v", err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("commit after heal: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after heal: %v", err)
		}
		_, rep2, err := Open(path, SyncOnCheckpoint)
		if err != nil {
			t.Fatalf("reopen after heal: %v", err)
		}
		if rep2.Truncated {
			t.Fatalf("healed log still truncated: %v", rep2.Reason)
		}
		if len(rep2.Records) != len(recs)+1 {
			t.Fatalf("healed log lost records: %d, want %d", len(rep2.Records), len(recs)+1)
		}
	})
}

// scanInput runs the replay scanner over raw bytes, tolerating inputs
// too short to hold a header (reported as zero valid bytes).
func scanInput(data []byte) ([]Record, int64, error) {
	if err := checkHeader(data); err != nil {
		return nil, 0, err
	}
	return scan(data)
}

// crcOf checksums a frame (kind + length + payload) exactly like Append.
func crcOf(frame []byte) uint32 {
	return crc32.Checksum(frame, castagnoli)
}
