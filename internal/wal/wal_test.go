package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, path string) (*Log, *ReplayResult) {
	t.Helper()
	l, rep, err := Open(path, SyncOnCheckpoint)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return l, rep
}

func appendT(t *testing.T, l *Log, kind Kind, payload []byte) {
	t.Helper()
	if err := l.Append(kind, payload); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestRoundTrip pins the basic contract: records appended and committed
// come back from a reopen in order, byte-exact, with the right kinds.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, rep := openT(t, path)
	if len(rep.Records) != 0 || rep.Truncated {
		t.Fatalf("fresh log replayed %+v", rep)
	}
	want := []Data{
		{KindConfig, []byte("cfg")},
		{KindSource, nil},
		{KindPage, bytes.Repeat([]byte{0xAB}, 4096)},
		{KindVersion, []byte{0}},
	}
	for _, d := range want {
		appendT(t, l, d.Kind, d.Payload)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l, rep = openT(t, path)
	defer l.Close()
	if rep.Truncated {
		t.Fatalf("clean log reported truncation: %v", rep.Reason)
	}
	if len(rep.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(want))
	}
	for i, r := range rep.Records {
		if r.Kind != want[i].Kind || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d = kind %#x payload %d bytes, want kind %#x payload %d bytes",
				i, r.Kind, len(r.Payload), want[i].Kind, len(want[i].Payload))
		}
	}
}

// TestUncommittedNotVisible pins the Commit barrier: appends that were
// never committed are buffered, not on disk, so a reopen does not see
// them — the torn-tail guarantee by construction.
func TestUncommittedNotVisible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := openT(t, path)
	appendT(t, l, KindConfig, []byte("cfg"))
	if err := l.Append(KindVersion, []byte("never committed")); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Reopen without Close: simulates the process dying with a buffered
	// append in flight.
	l2, rep := openT(t, path)
	defer l2.Close()
	if len(rep.Records) != 1 || rep.Records[0].Kind != KindConfig {
		t.Fatalf("replayed %d records, want just the committed config", len(rep.Records))
	}
}

// TestTruncatedTailHealing pins crash recovery: cutting a committed log
// at every possible byte length must replay the longest valid record
// prefix, report truncation, and leave the file reopenable — and a
// subsequent append must extend the healed log cleanly.
func TestTruncatedTailHealing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	l, _ := openT(t, path)
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{7}, 100)}
	for _, p := range payloads {
		appendT(t, l, KindVersion, p)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: after the header, each record is kind+len+payload+crc.
	bounds := []int{headerSize}
	off := headerSize
	for _, p := range payloads {
		off += frameOverhead + len(p)
		bounds = append(bounds, off)
	}
	wantValid := func(cut int) int {
		n := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(full); cut++ {
		cp := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(cp, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if cut < headerSize && cut > 0 {
			// A torn header is refused outright (can't even validate the
			// format), not healed.
			if _, _, err := Open(cp, SyncOnCheckpoint); err == nil {
				t.Fatalf("cut=%d: torn header accepted", cut)
			}
			continue
		}
		l2, rep, err := Open(cp, SyncOnCheckpoint)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if got, want := len(rep.Records), wantValid(cut); got != want {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, got, want)
		}
		if wantTrunc := cut != 0 && cut != len(full) && cut != bounds[len(rep.Records)]; rep.Truncated != wantTrunc {
			t.Fatalf("cut=%d: truncated=%v, want %v (reason %v)", cut, rep.Truncated, wantTrunc, rep.Reason)
		}
		// The healed log must keep working: append, close, reopen.
		if err := l2.Append(KindCheckpoint, []byte("x")); err != nil {
			t.Fatalf("cut=%d: append after heal: %v", cut, err)
		}
		if err := l2.Commit(); err != nil {
			t.Fatalf("cut=%d: commit after heal: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		_, rep2, err := Open(cp, SyncOnCheckpoint)
		if err != nil {
			t.Fatalf("cut=%d: reopen after heal: %v", cut, err)
		}
		if n := len(rep2.Records); n != wantValid(cut)+1 {
			t.Fatalf("cut=%d: reopen after heal replayed %d records, want %d", cut, n, wantValid(cut)+1)
		}
	}
}

// TestCorruptionDetected pins the checksum: flipping any single byte of a
// record's frame invalidates that record and everything after it, never
// yields a wrong payload, and never panics.
func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	l, _ := openT(t, path)
	appendT(t, l, KindVersion, []byte("payload-one"))
	appendT(t, l, KindVersion, []byte("payload-two"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for i := headerSize; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xFF
		cp := filepath.Join(dir, "mut.wal")
		if err := os.WriteFile(cp, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rep, err := Open(cp, SyncOnCheckpoint)
		if err != nil {
			t.Fatalf("flip@%d: open: %v", i, err)
		}
		l2.Close()
		if !rep.Truncated {
			t.Fatalf("flip@%d: corruption not detected", i)
		}
		for _, r := range rep.Records {
			if string(r.Payload) != "payload-one" && string(r.Payload) != "payload-two" {
				t.Fatalf("flip@%d: replay surfaced a corrupted payload %q", i, r.Payload)
			}
		}
	}
}

// TestHeaderValidation pins the format gate: wrong magic and wrong
// format version are refused with an error, not scanned.
func TestHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	bad := map[string][]byte{
		"magic.wal":   []byte("NOPE\x01\x00"),
		"version.wal": []byte("WRGL\x63\x00"),
	}
	for name, buf := range bad {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(p, SyncOnCheckpoint); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestOversizedLengthRefused pins the allocation guard: a frame whose
// length field exceeds MaxPayload is corruption, cut off at its offset.
func TestOversizedLengthRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := openT(t, path)
	appendT(t, l, KindConfig, []byte("ok"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-frame a record claiming a huge payload.
	buf = append(buf, byte(KindVersion), 0xFF, 0xFF, 0xFF, 0xFF)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rep, err := Open(path, SyncOnCheckpoint)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l2.Close()
	if len(rep.Records) != 1 || !rep.Truncated {
		t.Fatalf("oversized frame: records=%d truncated=%v", len(rep.Records), rep.Truncated)
	}
}

// TestCompact pins the rewrite cycle: Compact replaces the file's
// contents with exactly the given records (atomically, via rename), the
// handle keeps appending afterwards, and a reopen sees rewrite + tail.
func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := openT(t, path)
	for i := 0; i < 50; i++ {
		appendT(t, l, KindVersion, bytes.Repeat([]byte{byte(i)}, 200))
	}
	grown := l.Size()
	keep := []Data{
		{KindConfig, []byte("cfg")},
		{KindVersion, []byte("latest")},
		{KindCheckpoint, []byte("ckpt")},
	}
	if err := l.Compact(keep); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if l.Size() >= grown {
		t.Fatalf("compact did not shrink: %d -> %d bytes", grown, l.Size())
	}
	appendT(t, l, KindVersion, []byte("after"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep := openT(t, path)
	if rep.Truncated {
		t.Fatalf("compacted log truncated: %v", rep.Reason)
	}
	var kinds []Kind
	for _, r := range rep.Records {
		kinds = append(kinds, r.Kind)
	}
	want := []Kind{KindConfig, KindVersion, KindCheckpoint, KindVersion}
	for i := range want {
		if i >= len(kinds) || kinds[i] != want[i] {
			t.Fatalf("after compact replayed kinds %v, want %v", kinds, want)
		}
	}
	if got := string(rep.Records[3].Payload); got != "after" {
		t.Fatalf("tail after compact = %q", got)
	}
}

// TestStickyError pins the poisoned-handle contract: once a write fails,
// every later operation returns the same first error instead of writing
// a half-consistent tail.
func TestStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := openT(t, path)
	appendT(t, l, KindConfig, []byte("cfg"))
	// Close the fd behind the log's back to force the next flush to fail.
	if err := l.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(KindVersion, []byte("x")); err != nil {
		t.Fatalf("buffered append should not fail: %v", err)
	}
	err := l.Commit()
	if err == nil {
		t.Fatal("commit on closed fd succeeded")
	}
	if got := l.Err(); !errors.Is(got, err) && got == nil {
		t.Fatalf("sticky error not recorded: %v", got)
	}
	if err2 := l.Append(KindVersion, []byte("y")); err2 == nil {
		t.Fatal("append after poison succeeded")
	}
}

// TestCodecRoundTrip pins the primitive encoders against their decoders,
// including the edge values a varint or float codec gets wrong first.
func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(0xAB)
	e.U32(0xDEADBEEF)
	e.U64(1<<63 + 12345)
	e.Uvarint(0)
	e.Uvarint(1 << 60)
	e.Varint(-1)
	e.Varint(1 << 40)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.14159)
	e.F64(0)
	e.String("hello, wal")
	e.String("")
	ts := time.Unix(1722500000, 987654321)
	e.Time(ts)
	e.Duration(42 * time.Millisecond)
	e.Strings([]string{"a", "b", "c"})
	e.Strings(nil)

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 0xAB {
		t.Fatalf("u8 = %#x", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Fatalf("u32 = %#x", v)
	}
	if v := d.U64(); v != 1<<63+12345 {
		t.Fatalf("u64 = %d", v)
	}
	if v := d.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Uvarint(); v != 1<<60 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Varint(); v != -1 {
		t.Fatalf("varint = %d", v)
	}
	if v := d.Varint(); v != 1<<40 {
		t.Fatalf("varint = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools")
	}
	if v := d.F64(); v != 3.14159 {
		t.Fatalf("f64 = %v", v)
	}
	if v := d.F64(); v != 0 {
		t.Fatalf("f64 zero = %v", v)
	}
	if v := d.String(); v != "hello, wal" {
		t.Fatalf("string = %q", v)
	}
	if v := d.String(); v != "" {
		t.Fatalf("empty string = %q", v)
	}
	if v := d.Time(); !v.Equal(ts) {
		t.Fatalf("time = %v", v)
	}
	if v := d.Duration(); v != 42*time.Millisecond {
		t.Fatalf("duration = %v", v)
	}
	if v := d.Strings(); len(v) != 3 || v[2] != "c" {
		t.Fatalf("strings = %v", v)
	}
	if v := d.Strings(); v != nil {
		t.Fatalf("nil strings = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("done: %v", err)
	}
}

// TestDecoderBounds pins the defensive decoder: short buffers and
// oversized length fields produce sticky errors with offsets, never
// panics or giant allocations.
func TestDecoderBounds(t *testing.T) {
	var e Encoder
	e.String("abc")
	buf := e.Bytes()

	for cut := 0; cut < len(buf); cut++ {
		d := NewDecoder(buf[:cut])
		_ = d.String()
		if d.Err() == nil {
			t.Fatalf("cut=%d: truncated string decoded without error", cut)
		}
		// Sticky: further reads keep the first error.
		_ = d.U64()
		if d.Err() == nil {
			t.Fatalf("cut=%d: error did not stick", cut)
		}
	}

	// A length field claiming more bytes than exist must fail bounded.
	var big Encoder
	big.Uvarint(1 << 40)
	d := NewDecoder(big.Bytes())
	_ = d.Strings()
	if d.Err() == nil {
		t.Fatal("absurd element count accepted")
	}

	// Done must reject trailing garbage.
	d = NewDecoder([]byte{1, 2, 3})
	if err := d.Done(); err == nil {
		t.Fatal("Done accepted unconsumed bytes")
	}
}

// TestDecoderNaN pins bit-exact float round-tripping (trust maps can in
// principle hold any float the estimator produced).
func TestDecoderNaN(t *testing.T) {
	var e Encoder
	e.F64(0.1 + 0.2) // not representable exactly; must round-trip bit-exact
	d := NewDecoder(e.Bytes())
	if v := d.F64(); v != 0.1+0.2 {
		t.Fatalf("f64 = %v", v)
	}
}
