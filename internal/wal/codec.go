package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
)

// The record payload codec: a compact little-endian binary encoding with
// the offset/validation discipline of a careful binary parser — every
// read is bounds-checked before it happens, every failure names the
// absolute payload offset it occurred at, and decoding never panics on
// arbitrary bytes (the FuzzWALReplay contract). Variable-length integers
// use the standard uvarint/zigzag forms; floats round-trip through
// math.Float64bits so NaN quality scores survive exactly; times encode
// as (unix seconds, nanoseconds) which round-trips time.Equal for every
// representable time, including the zero time.

// maxLen bounds any length prefix inside a payload (strings, slices,
// tables). Payloads themselves are capped at MaxPayload by the framing
// layer; this inner bound just fails fast on garbage lengths before any
// allocation happens.
const maxLen = 1 << 28

// Encoder builds a record payload. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a fixed-width little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Uvarint appends a variable-width unsigned integer.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a variable-width signed integer (zigzag).
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Bool appends a boolean as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 as its IEEE-754 bit pattern — NaN-exact.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Time appends a wall-clock time as (unix seconds, nanoseconds). Unlike
// UnixNano this is total over time.Time's range — the zero time and
// pre-1678 times round-trip time.Equal exactly.
func (e *Encoder) Time(t time.Time) {
	e.Varint(t.Unix())
	e.U32(uint32(t.Nanosecond()))
}

// Duration appends a time.Duration as its nanosecond count.
func (e *Encoder) Duration(d time.Duration) { e.Varint(int64(d)) }

// Value appends a dataset value: one kind byte plus the kind's payload.
func (e *Encoder) Value(v dataset.Value) {
	e.U8(uint8(v.Kind()))
	switch v.Kind() {
	case dataset.KindNull:
	case dataset.KindString:
		e.String(v.Str())
	case dataset.KindInt:
		e.Varint(v.IntVal())
	case dataset.KindFloat:
		e.F64(v.FloatVal())
	case dataset.KindBool:
		e.Bool(v.BoolVal())
	case dataset.KindTime:
		e.Time(v.TimeVal())
	}
}

// Record appends a dataset record (the caller fixes the width via the
// enclosing schema; no per-record width is written).
func (e *Encoder) Record(r dataset.Record) {
	for _, v := range r {
		e.Value(v)
	}
}

// Schema appends a dataset schema: field count, then (name, kind) pairs.
func (e *Encoder) Schema(s dataset.Schema) {
	e.Uvarint(uint64(len(s)))
	for _, f := range s {
		e.String(f.Name)
		e.U8(uint8(f.Kind))
	}
}

// Table appends a full table: schema, row count, then each row's values
// in schema order.
func (e *Encoder) Table(t *dataset.Table) {
	e.Schema(t.Schema())
	e.Uvarint(uint64(t.Len()))
	for _, r := range t.Rows() {
		e.Record(r)
	}
}

// Strings appends a length-prefixed string slice.
func (e *Encoder) Strings(ss []string) {
	e.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// Decoder reads a record payload back. Errors are sticky: the first
// failure (out-of-bounds read, invalid tag, implausible length) is
// retained with the absolute offset it occurred at, and every later read
// returns the zero value without advancing. Callers decode a full
// payload and check Err()/Done() once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Offset returns the current decode position (for error reporting by
// layered decoders).
func (d *Decoder) Offset() int { return d.off }

// Done checks that the payload was consumed exactly: it returns the
// sticky error if any, or a trailing-bytes error if the decoder stopped
// short of the end.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wal: offset 0x%x: %d trailing bytes after payload", d.off, len(d.buf)-d.off)
	}
	return nil
}

// Failf records a decode failure at the current offset (first one wins).
// Layered decoders use it to reject semantically invalid payloads with
// the same offset discipline as the primitive reads.
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: offset 0x%x: %s", d.off, fmt.Sprintf(format, args...))
	}
}

// need checks that n more bytes exist before any read touches them.
func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.Failf("truncated payload: need %d bytes, %d left", n, len(d.buf)-d.off)
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a fixed-width little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a fixed-width little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Uvarint reads a variable-width unsigned integer.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.Failf("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a variable-width signed integer.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.Failf("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads a Varint and narrows it to int, rejecting overflow.
func (d *Decoder) Int() int {
	v := d.Varint()
	if int64(int(v)) != v {
		d.Failf("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

// Bool reads a boolean, rejecting bytes other than 0 and 1.
func (d *Decoder) Bool() bool {
	v := d.U8()
	switch v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Failf("invalid bool byte 0x%x", v)
		return false
	}
}

// F64 reads a float64 from its IEEE-754 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Len reads a length prefix and validates it against both the sanity
// bound and the bytes actually remaining (for elemSize ≥ 1 encodings),
// so a corrupt length can never drive a huge allocation.
func (d *Decoder) Len(elemSize int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > maxLen {
		d.Failf("implausible length %d", n)
		return 0
	}
	if elemSize > 0 && int(n) > (len(d.buf)-d.off)/elemSize {
		d.Failf("length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Len(1)
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Time reads a wall-clock time written by Encoder.Time.
func (d *Decoder) Time() time.Time {
	sec := d.Varint()
	nsec := d.U32()
	if d.err != nil {
		return time.Time{}
	}
	if nsec >= 1e9 {
		d.Failf("invalid nanoseconds %d", nsec)
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec))
}

// Duration reads a time.Duration.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.Varint()) }

// Value reads a dataset value.
func (d *Decoder) Value() dataset.Value {
	k := d.U8()
	switch dataset.Kind(k) {
	case dataset.KindNull:
		return dataset.Null()
	case dataset.KindString:
		return dataset.String(d.String())
	case dataset.KindInt:
		return dataset.Int(d.Varint())
	case dataset.KindFloat:
		return dataset.Float(d.F64())
	case dataset.KindBool:
		return dataset.Bool(d.Bool())
	case dataset.KindTime:
		return dataset.Time(d.Time())
	default:
		d.Failf("invalid value kind 0x%x", k)
		return dataset.Null()
	}
}

// Record reads a dataset record of the given width.
func (d *Decoder) Record(width int) dataset.Record {
	if width < 0 || width > maxLen {
		d.Failf("implausible record width %d", width)
		return nil
	}
	r := make(dataset.Record, width)
	for i := range r {
		r[i] = d.Value()
		if d.err != nil {
			return nil
		}
	}
	return r
}

// Schema reads a dataset schema, validating every field kind.
func (d *Decoder) Schema() dataset.Schema {
	n := d.Len(2) // name length byte + kind byte at minimum
	fields := make([]dataset.Field, 0, n)
	for i := 0; i < n; i++ {
		name := d.String()
		k := d.U8()
		if dataset.Kind(k) > dataset.KindTime {
			d.Failf("invalid field kind 0x%x", k)
			return nil
		}
		if d.err != nil {
			return nil
		}
		fields = append(fields, dataset.Field{Name: name, Kind: dataset.Kind(k)})
	}
	return dataset.Schema(fields)
}

// Table reads a full table written by Encoder.Table.
func (d *Decoder) Table() *dataset.Table {
	schema := d.Schema()
	if d.err != nil {
		return nil
	}
	t := dataset.NewTable(schema)
	rows := d.Len(len(schema)) // ≥ 1 byte per value
	for i := 0; i < rows; i++ {
		r := d.Record(len(schema))
		if d.err != nil {
			return nil
		}
		t.Append(r)
	}
	return t
}

// Strings reads a length-prefixed string slice (nil when empty, matching
// how the in-memory structures leave empty slices).
func (d *Decoder) Strings() []string {
	n := d.Len(1)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String())
		if d.err != nil {
			return nil
		}
	}
	return out
}
