package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadKV parses blank-line-separated "key: value" record blocks (the
// LDIF-ish export format of sources.KindKV) into a table. The schema is
// the union of keys across blocks, sorted; kinds are inferred as in
// ReadCSV. Lines without a colon are skipped; repeated keys within one
// block keep the first value.
func ReadKV(r io.Reader) (*Table, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	var blocks []map[string]string
	cur := map[string]string{}
	flush := func() {
		if len(cur) > 0 {
			blocks = append(blocks, cur)
			cur = map[string]string{}
		}
	}
	for scanner.Scan() {
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		i := strings.Index(line, ":")
		if i <= 0 {
			continue
		}
		key := strings.TrimSpace(line[:i])
		val := strings.TrimSpace(line[i+1:])
		if key == "" {
			continue
		}
		if _, dup := cur[key]; !dup {
			cur[key] = val
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read kv: %w", err)
	}
	flush()
	if len(blocks) == 0 {
		return nil, fmt.Errorf("dataset: read kv: no records")
	}
	keySet := map[string]bool{}
	for _, b := range blocks {
		for k := range b {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kinds := make([]Kind, len(keys))
	parsed := make([][]Value, len(blocks))
	for bi, b := range blocks {
		vals := make([]Value, len(keys))
		for ki, k := range keys {
			raw, ok := b[k]
			if !ok {
				vals[ki] = Null()
				continue
			}
			v := Parse(raw)
			vals[ki] = v
			kinds[ki] = generalize(kinds[ki], v.Kind())
		}
		parsed[bi] = vals
	}
	schema := make(Schema, len(keys))
	for ki, k := range keys {
		kind := kinds[ki]
		if kind == KindNull {
			kind = KindString
		}
		schema[ki] = Field{Name: k, Kind: kind}
	}
	t := NewTable(schema)
	for _, vals := range parsed {
		for j := range vals {
			if !vals[j].IsNull() && vals[j].Kind() != schema[j].Kind {
				if cv, ok := vals[j].Coerce(schema[j].Kind); ok {
					vals[j] = cv
				} else {
					vals[j] = String(vals[j].String())
				}
			}
		}
		t.Append(vals)
	}
	return t, nil
}
