package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func aggTable() *Table {
	t := NewTable(MustSchema(
		Field{Name: "cat", Kind: KindString},
		Field{Name: "price", Kind: KindFloat},
	))
	t.AppendValues(String("a"), Float(10))
	t.AppendValues(String("a"), Float(20))
	t.AppendValues(String("b"), Float(5))
	t.AppendValues(String("a"), Null())
	t.AppendValues(String("b"), Float(15))
	t.AppendValues(Null(), Float(100))
	return t
}

func TestGroupByCountSumMean(t *testing.T) {
	out, err := aggTable().GroupBy("cat",
		Aggregation{Func: AggCount},
		Aggregation{Func: AggSum, Column: "price"},
		Aggregation{Func: AggMean, Column: "price"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 { // null, a, b (null sorts first)
		t.Fatalf("groups = %d", out.Len())
	}
	// Row 0 is the null group.
	if !out.Row(0)[0].IsNull() || out.Row(0)[1].IntVal() != 1 {
		t.Errorf("null group = %v", out.Row(0))
	}
	// Row 1: group a — 3 rows, sum 30 over non-null, mean 15.
	if out.Row(1)[0].Str() != "a" || out.Row(1)[1].IntVal() != 3 ||
		out.Row(1)[2].FloatVal() != 30 || out.Row(1)[3].FloatVal() != 15 {
		t.Errorf("group a = %v", out.Row(1))
	}
}

func TestGroupByMinMaxMedian(t *testing.T) {
	out, err := aggTable().GroupBy("cat",
		Aggregation{Func: AggMin, Column: "price"},
		Aggregation{Func: AggMax, Column: "price"},
		Aggregation{Func: AggMedian, Column: "price"},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Group b: min 5, max 15, median 10.
	if out.Row(2)[1].FloatVal() != 5 || out.Row(2)[2].FloatVal() != 15 || out.Row(2)[3].FloatVal() != 10 {
		t.Errorf("group b = %v", out.Row(2))
	}
}

func TestGroupByErrors(t *testing.T) {
	if _, err := aggTable().GroupBy("nope", Aggregation{Func: AggCount}); err == nil {
		t.Error("unknown key should fail")
	}
	if _, err := aggTable().GroupBy("cat", Aggregation{Func: AggSum, Column: "nope"}); err == nil {
		t.Error("unknown agg column should fail")
	}
}

func TestGroupByAllNullValues(t *testing.T) {
	tab := NewTable(MustSchema(Field{Name: "k", Kind: KindString}, Field{Name: "v", Kind: KindFloat}))
	tab.AppendValues(String("x"), Null())
	out, err := tab.GroupBy("k", Aggregation{Func: AggMean, Column: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Row(0)[1].IsNull() {
		t.Error("aggregate over empty value set should be null")
	}
}

func TestColumnStats(t *testing.T) {
	s, err := aggTable().ColumnStats("price")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || s.Min != 5 || s.Max != 100 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.Mean-30) > 1e-9 {
		t.Errorf("mean = %f, want 30", s.Mean)
	}
	if s.StdDev <= 0 {
		t.Errorf("stddev = %f", s.StdDev)
	}
	if _, err := aggTable().ColumnStats("nope"); err == nil {
		t.Error("unknown column should fail")
	}
	empty := NewTable(MustSchema(Field{Name: "v", Kind: KindFloat}))
	s, _ = empty.ColumnStats("v")
	if s.Count != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestAggFuncString(t *testing.T) {
	names := map[AggFunc]string{AggCount: "count", AggSum: "sum", AggMin: "min",
		AggMax: "max", AggMean: "mean", AggMedian: "median"}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d String = %q", f, f.String())
		}
	}
}

// Property: sum of group counts equals table length.
func TestGroupByCountPreservationProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		tab := NewTable(MustSchema(Field{Name: "k", Kind: KindInt}, Field{Name: "v", Kind: KindFloat}))
		for i, k := range keys {
			tab.AppendValues(Int(int64(k%5)), Float(float64(i)))
		}
		out, err := tab.GroupBy("k", Aggregation{Func: AggCount})
		if err != nil {
			return false
		}
		total := int64(0)
		for i := 0; i < out.Len(); i++ {
			total += out.Row(i)[1].IntVal()
		}
		return total == int64(tab.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: min <= median <= max within every group.
func TestGroupByOrderingProperty(t *testing.T) {
	f := func(vals []int16) bool {
		tab := NewTable(MustSchema(Field{Name: "k", Kind: KindInt}, Field{Name: "v", Kind: KindFloat}))
		for i, v := range vals {
			tab.AppendValues(Int(int64(i%3)), Float(float64(v)))
		}
		out, err := tab.GroupBy("k",
			Aggregation{Func: AggMin, Column: "v"},
			Aggregation{Func: AggMedian, Column: "v"},
			Aggregation{Func: AggMax, Column: "v"},
		)
		if err != nil {
			return false
		}
		for i := 0; i < out.Len(); i++ {
			mn, md, mx := out.Row(i)[1], out.Row(i)[2], out.Row(i)[3]
			if mn.IsNull() {
				continue
			}
			if mn.FloatVal() > md.FloatVal() || md.FloatVal() > mx.FloatVal() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
