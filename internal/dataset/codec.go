package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReadCSV parses CSV data with a header row into a table. Column kinds are
// inferred per column: the most specific kind consistent with every
// non-null cell (int ⊂ float ⊂ string; bool and time only if uniform).
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: read csv: empty input")
	}
	header := rows[0]
	raw := rows[1:]
	parsed := make([][]Value, len(raw))
	kinds := make([]Kind, len(header))
	for j := range kinds {
		kinds[j] = KindNull
	}
	for i, row := range raw {
		vals := make([]Value, len(header))
		for j := range header {
			var cell string
			if j < len(row) {
				cell = row[j]
			}
			v := Parse(cell)
			vals[j] = v
			kinds[j] = generalize(kinds[j], v.Kind())
		}
		parsed[i] = vals
	}
	schema := make(Schema, len(header))
	for j, name := range header {
		k := kinds[j]
		if k == KindNull {
			k = KindString
		}
		schema[j] = Field{Name: name, Kind: k}
	}
	t := NewTable(schema)
	for _, vals := range parsed {
		for j := range vals {
			if !vals[j].IsNull() && vals[j].Kind() != schema[j].Kind {
				if cv, ok := vals[j].Coerce(schema[j].Kind); ok {
					vals[j] = cv
				} else {
					vals[j] = String(vals[j].String())
				}
			}
		}
		t.Append(vals)
	}
	return t, nil
}

// generalize returns the least general kind that covers both a and b,
// treating null as the identity.
func generalize(a, b Kind) Kind {
	if a == KindNull {
		return b
	}
	if b == KindNull || a == b {
		return a
	}
	if (a == KindInt && b == KindFloat) || (a == KindFloat && b == KindInt) {
		return KindFloat
	}
	return KindString
}

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return fmt.Errorf("dataset: write csv: %w", err)
	}
	row := make([]string, len(t.Schema()))
	for i := 0; i < t.Len(); i++ {
		r := t.Row(i)
		for j, v := range r {
			row[j] = v.String()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJSON parses a JSON array of flat objects into a table. The schema is
// the union of keys across objects, sorted lexicographically; kinds are
// inferred as in ReadCSV. Nested objects and arrays are rendered as their
// compact JSON text (string kind).
func ReadJSON(r io.Reader) (*Table, error) {
	var objs []map[string]json.RawMessage
	dec := json.NewDecoder(r)
	if err := dec.Decode(&objs); err != nil {
		return nil, fmt.Errorf("dataset: read json: %w", err)
	}
	keySet := make(map[string]bool)
	for _, o := range objs {
		for k := range o {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kinds := make([]Kind, len(keys))
	parsed := make([][]Value, len(objs))
	for i, o := range objs {
		vals := make([]Value, len(keys))
		for j, k := range keys {
			raw, ok := o[k]
			if !ok {
				vals[j] = Null()
				continue
			}
			vals[j] = decodeJSONValue(raw)
			kinds[j] = generalize(kinds[j], vals[j].Kind())
		}
		parsed[i] = vals
	}
	schema := make(Schema, len(keys))
	for j, k := range keys {
		kind := kinds[j]
		if kind == KindNull {
			kind = KindString
		}
		schema[j] = Field{Name: k, Kind: kind}
	}
	t := NewTable(schema)
	for _, vals := range parsed {
		for j := range vals {
			if !vals[j].IsNull() && vals[j].Kind() != schema[j].Kind {
				if cv, ok := vals[j].Coerce(schema[j].Kind); ok {
					vals[j] = cv
				} else {
					vals[j] = String(vals[j].String())
				}
			}
		}
		t.Append(vals)
	}
	return t, nil
}

func decodeJSONValue(raw json.RawMessage) Value {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return Parse(s)
	}
	var f float64
	if err := json.Unmarshal(raw, &f); err == nil {
		if f == float64(int64(f)) {
			return Int(int64(f))
		}
		return Float(f)
	}
	var b bool
	if err := json.Unmarshal(raw, &b); err == nil {
		return Bool(b)
	}
	var null any
	if err := json.Unmarshal(raw, &null); err == nil && null == nil {
		return Null()
	}
	return String(string(raw))
}

// WriteJSON writes the table as a JSON array of objects, omitting null
// fields.
func WriteJSON(w io.Writer, t *Table) error {
	objs := make([]map[string]any, 0, t.Len())
	names := t.Schema().Names()
	for i := 0; i < t.Len(); i++ {
		o := make(map[string]any, len(names))
		for j, v := range t.Row(i) {
			if v.IsNull() {
				continue
			}
			switch v.Kind() {
			case KindInt:
				o[names[j]] = v.IntVal()
			case KindFloat:
				o[names[j]] = v.FloatVal()
			case KindBool:
				o[names[j]] = v.BoolVal()
			default:
				o[names[j]] = v.String()
			}
		}
		objs = append(objs, o)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(objs)
}
