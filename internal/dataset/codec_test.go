package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVInference(t *testing.T) {
	in := "id,name,price,active\n1,usb cable,4.99,true\n2,hdmi,7,false\n3,,,\n"
	tab, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Schema()
	want := map[string]Kind{"id": KindInt, "name": KindString, "price": KindFloat, "active": KindBool}
	for name, k := range want {
		i := s.Index(name)
		if i < 0 || s[i].Kind != k {
			t.Errorf("column %s kind = %v, want %v", name, s[i].Kind, k)
		}
	}
	if tab.Len() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Len())
	}
	if !tab.Get(2, "name").IsNull() {
		t.Error("empty cell should be null")
	}
	// int column promoted by the 7 row? price has 4.99 and 7 → float.
	if tab.Get(1, "price").Kind() != KindFloat {
		t.Errorf("mixed int/float column should coerce to float, got %v", tab.Get(1, "price").Kind())
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	tab, err := ReadCSV(strings.NewReader("a,b\n"))
	if err != nil || tab.Len() != 0 {
		t.Error("header-only input should yield empty table")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := productTable()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("round trip rows = %d, want %d", back.Len(), tab.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		for j := range tab.Schema() {
			if !back.Row(i)[j].ApproxEqual(tab.Row(i)[j], 1e-9) {
				t.Errorf("cell (%d,%d): %v != %v", i, j, back.Row(i)[j], tab.Row(i)[j])
			}
		}
	}
}

func TestReadJSON(t *testing.T) {
	in := `[{"name":"usb","price":4.99},{"name":"hdmi","price":7,"stock":3},{"name":"mouse"}]`
	tab, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Len())
	}
	if tab.Schema().Index("stock") < 0 {
		t.Error("union schema missing key")
	}
	if !tab.Get(0, "stock").IsNull() {
		t.Error("missing key should be null")
	}
	if tab.Get(1, "price").Kind() != KindFloat {
		t.Errorf("price kind = %v, want float", tab.Get(1, "price").Kind())
	}
}

func TestReadJSONNestedAsText(t *testing.T) {
	in := `[{"name":"x","tags":["a","b"]}]`
	tab, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	v := tab.Get(0, "tags")
	if v.Kind() != KindString || !strings.Contains(v.Str(), "a") {
		t.Errorf("nested should flatten to JSON text, got %v", v)
	}
}

func TestReadJSONMalformed(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"not":"array"}`)); err == nil {
		t.Error("non-array should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tab := productTable()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("round trip rows = %d, want %d", back.Len(), tab.Len())
	}
	// Column order may differ (JSON keys sorted); compare by name.
	for i := 0; i < tab.Len(); i++ {
		for _, name := range tab.Schema().Names() {
			if !back.Get(i, name).ApproxEqual(tab.Get(i, name), 1e-9) {
				t.Errorf("row %d col %s: %v != %v", i, name, back.Get(i, name), tab.Get(i, name))
			}
		}
	}
}
