package dataset

import (
	"strings"
	"testing"
	"testing/quick"
)

func productTable() *Table {
	t := NewTable(MustSchema(
		Field{Name: "id", Kind: KindInt},
		Field{Name: "name", Kind: KindString},
		Field{Name: "price", Kind: KindFloat},
	))
	t.AppendValues(Int(1), String("usb cable"), Float(4.99))
	t.AppendValues(Int(2), String("hdmi cable"), Float(7.50))
	t.AppendValues(Int(3), String("mouse"), Float(12.00))
	t.AppendValues(Int(2), String("hdmi cable"), Float(7.50))
	return t
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "a", Kind: KindInt}); err == nil {
		t.Error("duplicate field names should fail")
	}
	if _, err := NewSchema(Field{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty field name should fail")
	}
	s, err := NewSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindString})
	if err != nil || len(s) != 2 {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if s.Index("b") != 1 || s.Index("zz") != -1 {
		t.Error("Index lookup wrong")
	}
	if strings.Join(s.Names(), ",") != "a,b" {
		t.Error("Names wrong")
	}
}

func TestSchemaEqualClone(t *testing.T) {
	s := MustSchema(Field{Name: "a", Kind: KindInt})
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone should be equal")
	}
	c[0].Name = "b"
	if s.Equal(c) || s[0].Name != "a" {
		t.Error("clone should be independent")
	}
}

func TestAppendPadsAndTruncates(t *testing.T) {
	tab := NewTable(MustSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindInt}))
	tab.Append(Record{Int(1)})
	tab.Append(Record{Int(1), Int(2), Int(3)})
	if tab.Len() != 2 {
		t.Fatal("rows missing")
	}
	if !tab.Row(0)[1].IsNull() {
		t.Error("short row should pad with null")
	}
	if len(tab.Row(1)) != 2 {
		t.Error("long row should truncate")
	}
}

func TestGetSet(t *testing.T) {
	tab := productTable()
	if tab.Get(0, "name").Str() != "usb cable" {
		t.Error("Get wrong")
	}
	if !tab.Get(0, "missing").IsNull() || !tab.Get(99, "name").IsNull() {
		t.Error("out-of-range Get should be null")
	}
	if !tab.Set(0, "price", Float(5.99)) || tab.Get(0, "price").FloatVal() != 5.99 {
		t.Error("Set failed")
	}
	if tab.Set(0, "missing", Int(1)) {
		t.Error("Set on missing column should report false")
	}
}

func TestProject(t *testing.T) {
	tab := productTable()
	p, err := tab.Project("name", "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Schema()) != 2 || p.Schema()[0].Name != "name" || p.Schema()[1].Name != "id" {
		t.Error("projected schema wrong")
	}
	if p.Row(0)[0].Str() != "usb cable" || p.Row(0)[1].IntVal() != 1 {
		t.Error("projected values wrong")
	}
	if _, err := tab.Project("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestSelect(t *testing.T) {
	tab := productTable()
	cheap := tab.Select(func(r Record) bool { return r[2].FloatVal() < 10 })
	if cheap.Len() != 3 {
		t.Errorf("Select returned %d rows, want 3", cheap.Len())
	}
	// Mutating the selection must not affect the original.
	cheap.Row(0)[1] = String("hacked")
	if tab.Row(0)[1].Str() != "usb cable" {
		t.Error("Select aliases storage")
	}
}

func TestRename(t *testing.T) {
	tab := productTable()
	r, err := tab.Rename("price", "cost")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Index("cost") != 2 || tab.Schema().Index("price") != 2 {
		t.Error("rename should copy")
	}
	if _, err := tab.Rename("nope", "x"); err == nil {
		t.Error("unknown column rename should fail")
	}
	if _, err := tab.Rename("id", "name"); err == nil {
		t.Error("rename collision should fail")
	}
}

func TestSortStable(t *testing.T) {
	tab := productTable()
	tab.Sort("price")
	prev := -1.0
	for i := 0; i < tab.Len(); i++ {
		p := tab.Row(i)[2].FloatVal()
		if p < prev {
			t.Fatal("not sorted")
		}
		prev = p
	}
}

func TestDistinct(t *testing.T) {
	tab := productTable()
	d := tab.Distinct()
	if d.Len() != 3 {
		t.Errorf("Distinct = %d rows, want 3", d.Len())
	}
}

func TestUnion(t *testing.T) {
	a := productTable()
	b := productTable()
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != a.Len()+b.Len() {
		t.Error("union length wrong")
	}
	c := NewTable(MustSchema(Field{Name: "x", Kind: KindInt}))
	if _, err := a.Union(c); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestJoin(t *testing.T) {
	prices := productTable()
	stock := NewTable(MustSchema(Field{Name: "pid", Kind: KindInt}, Field{Name: "qty", Kind: KindInt}))
	stock.AppendValues(Int(1), Int(10))
	stock.AppendValues(Int(3), Int(0))
	stock.AppendValues(Null(), Int(99)) // null keys never join
	j, err := prices.Join(stock, "id", "pid")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("join = %d rows, want 2", j.Len())
	}
	if j.Schema().Index("qty") < 0 {
		t.Error("right columns missing")
	}
}

func TestJoinNameCollision(t *testing.T) {
	a := NewTable(MustSchema(Field{Name: "id", Kind: KindInt}, Field{Name: "v", Kind: KindInt}))
	a.AppendValues(Int(1), Int(2))
	b := NewTable(MustSchema(Field{Name: "id", Kind: KindInt}, Field{Name: "v", Kind: KindInt}))
	b.AppendValues(Int(1), Int(3))
	j, err := a.Join(b, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if j.Schema().Index("v_r") < 0 || j.Schema().Index("id_r") < 0 {
		t.Errorf("collision suffixing failed: %v", j.Schema())
	}
}

func TestLeftJoin(t *testing.T) {
	prices := productTable().Distinct()
	stock := NewTable(MustSchema(Field{Name: "pid", Kind: KindInt}, Field{Name: "qty", Kind: KindInt}))
	stock.AppendValues(Int(1), Int(10))
	j, err := prices.LeftJoin(stock, "id", "pid")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("leftjoin = %d rows, want 3", j.Len())
	}
	matched := 0
	for i := 0; i < j.Len(); i++ {
		if !j.Get(i, "qty").IsNull() {
			matched++
		}
	}
	if matched != 1 {
		t.Errorf("matched = %d, want 1", matched)
	}
}

func TestGroupCount(t *testing.T) {
	tab := productTable()
	g, err := tab.GroupCount("name")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("groups = %d, want 3", g.Len())
	}
	if g.Row(0)[0].Str() != "hdmi cable" || g.Row(0)[1].IntVal() != 2 {
		t.Errorf("top group wrong: %v", g.Row(0))
	}
}

func TestColumn(t *testing.T) {
	tab := productTable()
	col, err := tab.Column("price")
	if err != nil || len(col) != 4 {
		t.Fatalf("Column failed: %v", err)
	}
	if _, err := tab.Column("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	tab := productTable()
	c := tab.Clone()
	c.Set(0, "name", String("x"))
	if tab.Get(0, "name").Str() != "usb cable" {
		t.Error("clone aliases storage")
	}
}

func TestTableStringPreview(t *testing.T) {
	tab := NewTable(MustSchema(Field{Name: "a", Kind: KindInt}))
	for i := 0; i < 15; i++ {
		tab.AppendValues(Int(int64(i)))
	}
	s := tab.String()
	if !strings.Contains(s, "15 rows") || !strings.Contains(s, "more") {
		t.Errorf("preview missing truncation note: %s", s)
	}
}

// Property: Distinct is idempotent.
func TestDistinctIdempotentProperty(t *testing.T) {
	f := func(vals []int8) bool {
		tab := NewTable(MustSchema(Field{Name: "v", Kind: KindInt}))
		for _, v := range vals {
			tab.AppendValues(Int(int64(v)))
		}
		d1 := tab.Distinct()
		d2 := d1.Distinct()
		if d1.Len() != d2.Len() {
			return false
		}
		for i := 0; i < d1.Len(); i++ {
			if !d1.Row(i).Equal(d2.Row(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: join row count equals the sum over key groups of |L_k|·|R_k|.
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(left, right []uint8) bool {
		lt := NewTable(MustSchema(Field{Name: "k", Kind: KindInt}))
		rt := NewTable(MustSchema(Field{Name: "k", Kind: KindInt}))
		lc := map[uint8]int{}
		rc := map[uint8]int{}
		for _, v := range left {
			v %= 8
			lt.AppendValues(Int(int64(v)))
			lc[v]++
		}
		for _, v := range right {
			v %= 8
			rt.AppendValues(Int(int64(v)))
			rc[v]++
		}
		want := 0
		for k, n := range lc {
			want += n * rc[k]
		}
		j, err := lt.Join(rt, "k", "k")
		return err == nil && j.Len() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: projection preserves row count.
func TestProjectPreservesRowsProperty(t *testing.T) {
	f := func(vals []int16) bool {
		tab := NewTable(MustSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindInt}))
		for _, v := range vals {
			tab.AppendValues(Int(int64(v)), Int(int64(v)*2))
		}
		p, err := tab.Project("b")
		return err == nil && p.Len() == tab.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
