package dataset

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	now := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{String("x"), KindString},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Bool(true), KindBool},
		{Time(now), KindTime},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || String("").IsNull() {
		t.Error("IsNull misclassifies")
	}
	if String("x").Str() != "x" || Int(42).IntVal() != 42 || Float(3.5).FloatVal() != 3.5 ||
		!Bool(true).BoolVal() || !Time(now).TimeVal().Equal(now) {
		t.Error("accessor mismatch")
	}
	if Int(7).FloatVal() != 7.0 {
		t.Error("FloatVal should widen ints")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{String("a b"), "a b"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Bool(false), "false"},
		{Time(time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)), "2016-03-15T00:00:00Z"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(1).Equal(Int(1)) || Int(1).Equal(Int(2)) {
		t.Error("int equality wrong")
	}
	if Int(1).Equal(Float(1)) {
		t.Error("cross-kind Equal must be false")
	}
	if !Float(math.NaN()).Equal(Float(math.NaN())) {
		t.Error("NaN should equal NaN for storage identity")
	}
	if !Null().Equal(Null()) {
		t.Error("null equals null")
	}
}

func TestValueApproxEqual(t *testing.T) {
	if !Int(10).ApproxEqual(Float(10.0001), 0.01) {
		t.Error("cross-kind numeric approx should hold")
	}
	if Float(1).ApproxEqual(Float(1.2), 0.1) {
		t.Error("outside tolerance should fail")
	}
	if !String("a").ApproxEqual(String("a"), 0) {
		t.Error("string approx falls back to Equal")
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{Null(), Bool(false), Bool(true), Int(-1), Float(0.5), Int(2), String("a"), String("b"), Time(time.Unix(0, 0)), Time(time.Unix(1, 0))}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueKeyUniqueness(t *testing.T) {
	vals := []Value{Null(), String("1"), Int(1), Float(1), Bool(true), String("true"), String(""), Time(time.Unix(1, 0))}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestValueCoerce(t *testing.T) {
	cases := []struct {
		in   Value
		to   Kind
		want Value
		ok   bool
	}{
		{String("42"), KindInt, Int(42), true},
		{String("4.5"), KindFloat, Float(4.5), true},
		{String("4.9"), KindInt, Int(4), true},
		{Float(3.7), KindInt, Int(3), true},
		{Int(5), KindFloat, Float(5), true},
		{Int(0), KindBool, Bool(false), true},
		{String("true"), KindBool, Bool(true), true},
		{String("nope"), KindInt, Null(), false},
		{Null(), KindInt, Null(), true},
		{Int(9), KindString, String("9"), true},
		{String("2016-03-15"), KindTime, Time(time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)), true},
	}
	for _, c := range cases {
		got, ok := c.in.Coerce(c.to)
		if ok != c.ok || (ok && !got.Equal(c.want)) {
			t.Errorf("Coerce(%v,%v) = (%v,%v), want (%v,%v)", c.in, c.to, got, ok, c.want, c.ok)
		}
	}
}

func TestParseInference(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"", KindNull},
		{"   ", KindNull},
		{"12", KindInt},
		{"-3.5", KindFloat},
		{"true", KindBool},
		{"FALSE", KindBool},
		{"2016-03-15T10:00:00Z", KindTime},
		{"hello", KindString},
		{"12abc", KindString},
	}
	for _, c := range cases {
		if got := Parse(c.in).Kind(); got != c.kind {
			t.Errorf("Parse(%q).Kind = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestParsePreservesRawString(t *testing.T) {
	if Parse(" padded ").Str() != " padded " {
		t.Error("string parse should keep raw text")
	}
}

// Property: Compare is antisymmetric and consistent with Equal for
// same-kind values.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va) &&
			((va.Compare(vb) == 0) == va.Equal(vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective over ints and strings.
func TestKeyInjectiveProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return String(a).Key() == String(b).Key()
		}
		return String(a).Key() != String(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string round-trip through Parse∘String is identity for ints.
func TestIntRoundTripProperty(t *testing.T) {
	f := func(a int64) bool {
		return Parse(Int(a).String()).Equal(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
