package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Aggregation support for quality analyses and reporting: GROUP BY with
// the usual aggregate functions over one numeric column.

// AggFunc names an aggregate function.
type AggFunc uint8

// Supported aggregates.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggMean
	AggMedian
)

// String returns the SQL-ish name of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggMean:
		return "mean"
	case AggMedian:
		return "median"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// Aggregation is one requested aggregate over a column.
type Aggregation struct {
	Func   AggFunc
	Column string // ignored for AggCount
}

// GroupBy groups rows by the key column and computes the aggregates,
// returning a table with the key column followed by one column per
// aggregate (named "<func>_<column>" or "count"). Null keys group
// together under null; null values are skipped inside aggregates. Output
// rows are ordered by key.
func (t *Table) GroupBy(keyCol string, aggs ...Aggregation) (*Table, error) {
	kc := t.schema.Index(keyCol)
	if kc < 0 {
		return nil, fmt.Errorf("dataset: groupby: unknown key column %q", keyCol)
	}
	colIdx := make([]int, len(aggs))
	outSchema := Schema{Field{Name: keyCol, Kind: t.schema[kc].Kind}}
	for i, a := range aggs {
		if a.Func == AggCount {
			colIdx[i] = -1
			outSchema = append(outSchema, Field{Name: "count", Kind: KindInt})
			continue
		}
		c := t.schema.Index(a.Column)
		if c < 0 {
			return nil, fmt.Errorf("dataset: groupby: unknown column %q", a.Column)
		}
		colIdx[i] = c
		outSchema = append(outSchema, Field{Name: a.Func.String() + "_" + a.Column, Kind: KindFloat})
	}
	type group struct {
		key  Value
		vals [][]float64 // per aggregate, collected numeric values
		n    int
	}
	groups := map[string]*group{}
	var order []string
	for _, r := range t.rows {
		k := r[kc].Key()
		g, ok := groups[k]
		if !ok {
			g = &group{key: r[kc], vals: make([][]float64, len(aggs))}
			groups[k] = g
			order = append(order, k)
		}
		g.n++
		for i, c := range colIdx {
			if c < 0 || r[c].IsNull() || !r[c].IsNumeric() {
				continue
			}
			g.vals[i] = append(g.vals[i], r[c].FloatVal())
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return groups[order[i]].key.Compare(groups[order[j]].key) < 0
	})
	out := NewTable(outSchema)
	for _, k := range order {
		g := groups[k]
		row := Record{g.key}
		for i, a := range aggs {
			if a.Func == AggCount {
				row = append(row, Int(int64(g.n)))
				continue
			}
			row = append(row, aggregate(a.Func, g.vals[i]))
		}
		out.Append(row)
	}
	return out, nil
}

func aggregate(f AggFunc, vals []float64) Value {
	if len(vals) == 0 {
		return Null()
	}
	switch f {
	case AggSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return Float(s)
	case AggMin:
		m := math.Inf(1)
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return Float(m)
	case AggMax:
		m := math.Inf(-1)
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return Float(m)
	case AggMean:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return Float(s / float64(len(vals)))
	case AggMedian:
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		mid := len(s) / 2
		if len(s)%2 == 1 {
			return Float(s[mid])
		}
		return Float((s[mid-1] + s[mid]) / 2)
	default:
		return Null()
	}
}

// Stats summarises one numeric column: count of non-null numerics, min,
// max, mean and standard deviation.
type Stats struct {
	Count    int
	Min, Max float64
	Mean     float64
	StdDev   float64
}

// ColumnStats computes summary statistics for a numeric column.
func (t *Table) ColumnStats(col string) (Stats, error) {
	c := t.schema.Index(col)
	if c < 0 {
		return Stats{}, fmt.Errorf("dataset: stats: unknown column %q", col)
	}
	var s Stats
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, r := range t.rows {
		v := r[c]
		if v.IsNull() || !v.IsNumeric() {
			continue
		}
		f := v.FloatVal()
		s.Count++
		sum += f
		if f < s.Min {
			s.Min = f
		}
		if f > s.Max {
			s.Max = f
		}
	}
	if s.Count == 0 {
		return Stats{}, nil
	}
	s.Mean = sum / float64(s.Count)
	ss := 0.0
	for _, r := range t.rows {
		v := r[c]
		if v.IsNull() || !v.IsNumeric() {
			continue
		}
		d := v.FloatVal() - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.Count))
	return s, nil
}
