package dataset

import (
	"strings"
	"testing"
)

func TestReadKV(t *testing.T) {
	in := `sku: A
title: USB Cable
cost: 4.99

sku: B
title: HDMI Cable
cost: 7.50
stock: 3

junk line without separator
sku: C
`
	tab, err := ReadKV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Len())
	}
	if tab.Schema().Index("stock") < 0 {
		t.Error("union schema missing stock")
	}
	if tab.Get(0, "cost").Kind() != KindFloat || tab.Get(0, "cost").FloatVal() != 4.99 {
		t.Errorf("cost = %v", tab.Get(0, "cost"))
	}
	if !tab.Get(0, "stock").IsNull() {
		t.Error("missing key should be null")
	}
	if !tab.Get(2, "title").IsNull() {
		t.Error("block C has no title")
	}
}

func TestReadKVEmpty(t *testing.T) {
	if _, err := ReadKV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadKV(strings.NewReader("\n\n  \n")); err == nil {
		t.Error("blank input should error")
	}
}

func TestReadKVDuplicateKeyKeepsFirst(t *testing.T) {
	in := "k: first\nk: second\n"
	tab, err := ReadKV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Get(0, "k").Str() != "first" {
		t.Errorf("duplicate key = %v", tab.Get(0, "k"))
	}
}

func TestReadKVValueWithColon(t *testing.T) {
	in := "url: https://shop.example/x\n"
	tab, err := ReadKV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Get(0, "url").Str() != "https://shop.example/x" {
		t.Errorf("url = %v", tab.Get(0, "url"))
	}
}
