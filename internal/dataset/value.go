// Package dataset provides the typed relational substrate shared by every
// wrangling component: values, schemas, records and tables, together with
// the relational operations (selection, projection, joins, grouping) and
// CSV/JSON codecs that the extraction, integration and quality layers build
// upon.
//
// The model is deliberately simple — a table is an ordered multiset of
// records over a flat schema — because the paper's working data (extracted
// tuples, matches, mappings, quality annotations, feedback) is uniformly
// representable as annotated relations (Furche et al., §4.2).
package dataset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the primitive value types supported by the dataset layer.
type Kind uint8

// The supported value kinds. KindNull represents an absent or unknown value
// and is distinct from the empty string or zero number.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindTime
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is the null value.
// Values are small and passed by value throughout the library.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
	t    time.Time
}

// Null returns the null value.
func Null() Value { return Value{} }

// String wraps a string as a Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int wraps an int64 as a Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float64 as a Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool wraps a bool as a Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Time wraps a time.Time as a Value.
func Time(t time.Time) Value { return Value{kind: KindTime, t: t} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the float payload. For KindInt it converts the integer.
func (v Value) FloatVal() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// BoolVal returns the boolean payload. It is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// TimeVal returns the time payload. It is only meaningful for KindTime.
func (v Value) TimeVal() time.Time { return v.t }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display. Null renders as the empty string so
// that CSV round-trips preserve nullness via the schema, not sentinel text.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTime:
		return v.t.UTC().Format(time.RFC3339)
	default:
		return ""
	}
}

// Equal reports deep equality of two values, including kind. Float equality
// is exact; use ApproxEqual for tolerance-based comparison.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == w.s
	case KindInt:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f || (math.IsNaN(v.f) && math.IsNaN(w.f))
	case KindBool:
		return v.b == w.b
	case KindTime:
		return v.t.Equal(w.t)
	}
	return false
}

// ApproxEqual reports equality with numeric tolerance eps; non-numeric
// values fall back to Equal. Int and float values compare cross-kind.
func (v Value) ApproxEqual(w Value, eps float64) bool {
	if v.IsNumeric() && w.IsNumeric() {
		return math.Abs(v.FloatVal()-w.FloatVal()) <= eps
	}
	return v.Equal(w)
}

// Compare orders two values: null < bool < int/float (numeric order) <
// string < time. It returns -1, 0 or +1. Cross-kind numeric comparison is
// by float value; otherwise kinds order first.
func (v Value) Compare(w Value) int {
	vr, wr := v.rank(), w.rank()
	if vr != wr {
		if vr < wr {
			return -1
		}
		return 1
	}
	switch {
	case v.kind == KindNull:
		return 0
	case v.kind == KindBool:
		switch {
		case v.b == w.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	case v.IsNumeric():
		a, b := v.FloatVal(), w.FloatVal()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case v.kind == KindString:
		return strings.Compare(v.s, w.s)
	case v.kind == KindTime:
		switch {
		case v.t.Before(w.t):
			return -1
		case v.t.After(w.t):
			return 1
		default:
			return 0
		}
	}
	return 0
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	case KindTime:
		return 4
	}
	return 5
}

// Key returns a string that uniquely identifies the value (kind-tagged), for
// use as a map key in joins, grouping and deduplication.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindString:
		return "s:" + v.s
	case KindInt:
		return "i:" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return "b:" + strconv.FormatBool(v.b)
	case KindTime:
		return "t:" + strconv.FormatInt(v.t.UnixNano(), 10)
	}
	return "?"
}

// Coerce attempts to convert the value to the target kind, returning the
// converted value and whether conversion succeeded. Null coerces to null of
// any kind (reported as success); lossy numeric-to-int truncates.
func (v Value) Coerce(k Kind) (Value, bool) {
	if v.kind == k {
		return v, true
	}
	if v.kind == KindNull {
		return Null(), true
	}
	switch k {
	case KindString:
		return String(v.String()), true
	case KindInt:
		switch v.kind {
		case KindFloat:
			return Int(int64(v.f)), true
		case KindString:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64); err == nil {
				return Int(i), true
			}
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64); err == nil {
				return Int(int64(f)), true
			}
		case KindBool:
			if v.b {
				return Int(1), true
			}
			return Int(0), true
		}
	case KindFloat:
		switch v.kind {
		case KindInt:
			return Float(float64(v.i)), true
		case KindString:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64); err == nil {
				return Float(f), true
			}
		case KindBool:
			if v.b {
				return Float(1), true
			}
			return Float(0), true
		}
	case KindBool:
		switch v.kind {
		case KindString:
			if b, err := strconv.ParseBool(strings.TrimSpace(v.s)); err == nil {
				return Bool(b), true
			}
		case KindInt:
			return Bool(v.i != 0), true
		}
	case KindTime:
		if v.kind == KindString {
			for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02", "02/01/2006", "01/02/2006"} {
				if t, err := time.Parse(layout, strings.TrimSpace(v.s)); err == nil {
					return Time(t), true
				}
			}
		}
	}
	return Null(), false
}

// Parse infers the most specific kind for a raw string: empty → null, then
// int, float, bool, RFC3339 time, finally string. It is the default typing
// rule used by the CSV codec and wrapper execution.
func Parse(raw string) Value {
	s := strings.TrimSpace(raw)
	if s == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	switch strings.ToLower(s) {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return Time(t)
	}
	return String(raw)
}
