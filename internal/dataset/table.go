package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Field describes one column of a schema: a name and the kind its values
// are expected to have. Kind is advisory — individual cells may be null.
type Field struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of fields. Field names are unique within a
// schema; lookups are case-sensitive.
type Schema []Field

// NewSchema builds a schema from (name, kind) pairs, validating uniqueness.
func NewSchema(fields ...Field) (Schema, error) {
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("dataset: empty field name")
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("dataset: duplicate field %q", f.Name)
		}
		seen[f.Name] = true
	}
	return Schema(fields), nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(fields ...Field) Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named field, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the field names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, f := range s {
		out[i] = f.Name
	}
	return out
}

// Equal reports whether two schemas have identical fields in order.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// String renders the schema as "name:kind, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.Name + ":" + f.Kind.String()
	}
	return strings.Join(parts, ", ")
}

// Record is one row: a slice of values positionally aligned with a schema.
type Record []Value

// Clone returns a copy of the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// Key concatenates the kind-tagged keys of the given column indexes,
// producing a map key for joins and grouping.
func (r Record) Key(cols ...int) string {
	var b strings.Builder
	for _, c := range cols {
		if c >= 0 && c < len(r) {
			b.WriteString(r[c].Key())
		}
		b.WriteByte('\x1f')
	}
	return b.String()
}

// Equal reports whether two records are value-wise equal.
func (r Record) Equal(s Record) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !r[i].Equal(s[i]) {
			return false
		}
	}
	return true
}

// Table is an ordered multiset of records over a schema. The zero Table is
// empty with a nil schema. Tables are mutable; operations that transform a
// table return a new one and never alias record storage with the input.
type Table struct {
	schema Schema
	rows   []Record
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) *Table {
	return &Table{schema: schema}
}

// Schema returns the table's schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th record. Callers must not mutate it unless they own
// the table.
func (t *Table) Row(i int) Record { return t.rows[i] }

// Rows returns the underlying record slice. Callers must not mutate it
// unless they own the table.
func (t *Table) Rows() []Record { return t.rows }

// Append adds a record, padding or truncating to the schema arity so that
// every stored row has exactly len(schema) values.
func (t *Table) Append(r Record) {
	switch {
	case len(r) == len(t.schema):
	case len(r) < len(t.schema):
		padded := make(Record, len(t.schema))
		copy(padded, r)
		r = padded
	default:
		r = r[:len(t.schema)]
	}
	t.rows = append(t.rows, r)
}

// AppendValues is Append over a variadic value list.
func (t *Table) AppendValues(vals ...Value) { t.Append(Record(vals)) }

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	out := &Table{schema: t.schema.Clone(), rows: make([]Record, len(t.rows))}
	for i, r := range t.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// Get returns the value in row i, column name; null if the column is absent.
func (t *Table) Get(i int, name string) Value {
	c := t.schema.Index(name)
	if c < 0 || i < 0 || i >= len(t.rows) {
		return Null()
	}
	return t.rows[i][c]
}

// Set assigns the value in row i, column name, reporting success.
func (t *Table) Set(i int, name string, v Value) bool {
	c := t.schema.Index(name)
	if c < 0 || i < 0 || i >= len(t.rows) {
		return false
	}
	t.rows[i][c] = v
	return true
}

// Project returns a new table containing only the named columns, in the
// given order. Unknown column names yield an error.
func (t *Table) Project(names ...string) (*Table, error) {
	idx := make([]int, len(names))
	schema := make(Schema, len(names))
	for i, n := range names {
		c := t.schema.Index(n)
		if c < 0 {
			return nil, fmt.Errorf("dataset: project: unknown column %q", n)
		}
		idx[i] = c
		schema[i] = t.schema[c]
	}
	out := NewTable(schema)
	for _, r := range t.rows {
		nr := make(Record, len(idx))
		for i, c := range idx {
			nr[i] = r[c]
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

// Select returns a new table with the rows for which pred returns true.
func (t *Table) Select(pred func(Record) bool) *Table {
	out := NewTable(t.schema.Clone())
	for _, r := range t.rows {
		if pred(r) {
			out.rows = append(out.rows, r.Clone())
		}
	}
	return out
}

// Rename returns a new table with column old renamed to new.
func (t *Table) Rename(oldName, newName string) (*Table, error) {
	c := t.schema.Index(oldName)
	if c < 0 {
		return nil, fmt.Errorf("dataset: rename: unknown column %q", oldName)
	}
	if t.schema.Index(newName) >= 0 {
		return nil, fmt.Errorf("dataset: rename: column %q already exists", newName)
	}
	out := t.Clone()
	out.schema[c].Name = newName
	return out, nil
}

// Sort orders rows by the named columns ascending (stable). Unknown columns
// are ignored.
func (t *Table) Sort(names ...string) {
	cols := make([]int, 0, len(names))
	for _, n := range names {
		if c := t.schema.Index(n); c >= 0 {
			cols = append(cols, c)
		}
	}
	sort.SliceStable(t.rows, func(i, j int) bool {
		for _, c := range cols {
			if cmp := t.rows[i][c].Compare(t.rows[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// Distinct returns a new table with duplicate rows (all columns equal)
// removed, keeping first occurrences in order.
func (t *Table) Distinct() *Table {
	out := NewTable(t.schema.Clone())
	seen := make(map[string]bool, len(t.rows))
	all := make([]int, len(t.schema))
	for i := range all {
		all[i] = i
	}
	for _, r := range t.rows {
		k := r.Key(all...)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, r.Clone())
		}
	}
	return out
}

// Union appends all rows of u (schemas must be arity-compatible) to a copy
// of t.
func (t *Table) Union(u *Table) (*Table, error) {
	if len(t.schema) != len(u.schema) {
		return nil, fmt.Errorf("dataset: union: arity mismatch %d vs %d", len(t.schema), len(u.schema))
	}
	out := t.Clone()
	for _, r := range u.rows {
		out.rows = append(out.rows, r.Clone())
	}
	return out, nil
}

// Join computes the inner equi-join of t and u on t.left = u.right using a
// hash join. Output schema is t's fields followed by u's fields, with u's
// colliding names suffixed "_r".
func (t *Table) Join(u *Table, left, right string) (*Table, error) {
	lc := t.schema.Index(left)
	rc := u.schema.Index(right)
	if lc < 0 {
		return nil, fmt.Errorf("dataset: join: unknown left column %q", left)
	}
	if rc < 0 {
		return nil, fmt.Errorf("dataset: join: unknown right column %q", right)
	}
	schema := t.schema.Clone()
	names := make(map[string]bool, len(schema))
	for _, f := range schema {
		names[f.Name] = true
	}
	for _, f := range u.schema {
		name := f.Name
		for names[name] {
			name += "_r"
		}
		names[name] = true
		schema = append(schema, Field{Name: name, Kind: f.Kind})
	}
	// Build hash on the smaller side conceptually; here build on u.
	index := make(map[string][]int)
	for i, r := range u.rows {
		if r[rc].IsNull() {
			continue // nulls never join
		}
		k := r[rc].Key()
		index[k] = append(index[k], i)
	}
	out := NewTable(schema)
	for _, r := range t.rows {
		if r[lc].IsNull() {
			continue
		}
		for _, ui := range index[r[lc].Key()] {
			nr := make(Record, 0, len(schema))
			nr = append(nr, r...)
			nr = append(nr, u.rows[ui]...)
			out.rows = append(out.rows, nr)
		}
	}
	return out, nil
}

// LeftJoin is Join but keeps unmatched left rows, padding right columns
// with nulls.
func (t *Table) LeftJoin(u *Table, left, right string) (*Table, error) {
	lc := t.schema.Index(left)
	rc := u.schema.Index(right)
	if lc < 0 || rc < 0 {
		return nil, fmt.Errorf("dataset: leftjoin: unknown column %q/%q", left, right)
	}
	joined, err := t.Join(u, left, right)
	if err != nil {
		return nil, err
	}
	index := make(map[string]bool)
	for _, r := range u.rows {
		if !r[rc].IsNull() {
			index[r[rc].Key()] = true
		}
	}
	for _, r := range t.rows {
		if r[lc].IsNull() || !index[r[lc].Key()] {
			nr := make(Record, 0, len(joined.schema))
			nr = append(nr, r.Clone()...)
			for range u.schema {
				nr = append(nr, Null())
			}
			joined.rows = append(joined.rows, nr)
		}
	}
	return joined, nil
}

// GroupCount groups by the named column and returns a (value, count) table
// sorted by descending count then ascending value.
func (t *Table) GroupCount(name string) (*Table, error) {
	c := t.schema.Index(name)
	if c < 0 {
		return nil, fmt.Errorf("dataset: groupcount: unknown column %q", name)
	}
	counts := make(map[string]int)
	rep := make(map[string]Value)
	for _, r := range t.rows {
		k := r[c].Key()
		counts[k]++
		if _, ok := rep[k]; !ok {
			rep[k] = r[c]
		}
	}
	out := NewTable(MustSchema(Field{Name: name, Kind: t.schema[c].Kind}, Field{Name: "count", Kind: KindInt}))
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		out.AppendValues(rep[k], Int(int64(counts[k])))
	}
	return out, nil
}

// Column returns all values of the named column in row order.
func (t *Table) Column(name string) ([]Value, error) {
	c := t.schema.Index(name)
	if c < 0 {
		return nil, fmt.Errorf("dataset: column: unknown column %q", name)
	}
	out := make([]Value, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[c]
	}
	return out, nil
}

// String renders a compact preview of the table (schema plus up to 10 rows).
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table[%d rows](%s)", len(t.rows), t.schema.String())
	n := len(t.rows)
	if n > 10 {
		n = 10
	}
	for i := 0; i < n; i++ {
		parts := make([]string, len(t.rows[i]))
		for j, v := range t.rows[i] {
			parts[j] = v.String()
		}
		b.WriteString("\n  ")
		b.WriteString(strings.Join(parts, " | "))
	}
	if len(t.rows) > n {
		fmt.Fprintf(&b, "\n  … %d more", len(t.rows)-n)
	}
	return b.String()
}
