// Package core implements the paper's primary contribution: the abstract
// wrangling architecture of Figure 1 as an autonomic, context-aware,
// pay-as-you-go pipeline. A Wrangler wires Data Extraction and Data
// Integration over a Working Data store (wrappers, extractions, matches,
// mappings, clusterings, fused results, quality scorecards, feedback and
// provenance), self-configures from the user and data contexts instead of
// a hand-wired workflow, and reacts to feedback and source churn by
// recomputing only the artefacts the provenance graph marks as affected
// (§2.4, §4.2).
package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	wctx "repro/internal/context"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/er"
	"repro/internal/extract"
	"repro/internal/feedback"
	"repro/internal/fusion"
	"repro/internal/html"
	"repro/internal/intern"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/provenance"
	"repro/internal/quality"
	"repro/internal/serve"
	"repro/internal/sources"
)

// Config names the schema roles the pipeline needs: the target schema
// plus which columns serve as entity key, fuzzy name, categorical and
// numeric evidence for entity resolution, and the freshness timestamp.
type Config struct {
	Target          dataset.Schema
	KeyColumn       string
	NameColumn      string
	SecondaryColumn string
	NumericColumn   string
	TimeColumn      string
}

// ProductConfig is the canonical e-commerce configuration (Examples 1-2).
func ProductConfig() Config {
	return Config{
		Target: dataset.MustSchema(
			dataset.Field{Name: "sku", Kind: dataset.KindString},
			dataset.Field{Name: "name", Kind: dataset.KindString},
			dataset.Field{Name: "brand", Kind: dataset.KindString},
			dataset.Field{Name: "category", Kind: dataset.KindString},
			dataset.Field{Name: "price", Kind: dataset.KindFloat},
			dataset.Field{Name: "rating", Kind: dataset.KindFloat},
			dataset.Field{Name: "updated", Kind: dataset.KindTime},
		),
		KeyColumn:       "sku",
		NameColumn:      "name",
		SecondaryColumn: "brand",
		NumericColumn:   "price",
		TimeColumn:      "updated",
	}
}

// LocationConfig is the business-locations configuration (Example 3).
func LocationConfig() Config {
	return Config{
		Target: dataset.MustSchema(
			dataset.Field{Name: "name", Kind: dataset.KindString},
			dataset.Field{Name: "category", Kind: dataset.KindString},
			dataset.Field{Name: "street", Kind: dataset.KindString},
			dataset.Field{Name: "city", Kind: dataset.KindString},
			dataset.Field{Name: "postcode", Kind: dataset.KindString},
			dataset.Field{Name: "lat", Kind: dataset.KindFloat},
			dataset.Field{Name: "lon", Kind: dataset.KindFloat},
			dataset.Field{Name: "url", Kind: dataset.KindString},
		),
		KeyColumn:       "url",
		NameColumn:      "name",
		SecondaryColumn: "city",
		NumericColumn:   "lat",
		TimeColumn:      "",
	}
}

// sourceState is the per-source slice of the working data store.
type sourceState struct {
	wrapper   *extract.Wrapper // HTML sources only
	extracted *dataset.Table   // raw extraction
	mapping   *mapping.Mapping
	mapped    *dataset.Table // in target schema
	quality   mapping.Quality
	scorecard quality.Scorecard
	selected  bool
	utility   float64
}

// RunStats reports what a (re)computation touched — the measure the
// incremental experiments compare.
type RunStats struct {
	SourcesProcessed int
	SourcesSelected  int
	RowsExtracted    int
	RowsWrangled     int
	Reextracted      []string // sources whose extraction was recomputed
	WrapperRepairs   int
	// Failures records the sources skipped by best-effort processing:
	// source id → error text. Panics carry the captured stack, so a
	// programming bug that poisons a source stays visible even though it
	// no longer fails the run.
	Failures map[string]string
	Duration time.Duration
	// Stages attributes the run's wall clock to pipeline stages, from the
	// engine's per-task timings: "sources" sums every per-source
	// extract/match/map chain (parallel work — the stage total can exceed
	// Duration when chains overlap), "select" covers the merge barrier plus
	// selection, "integrate" the resolve/fuse tail. Sharded tails
	// additionally split "integrate" by DAG stage — "replan", "resolve",
	// "trust", "fuse", "merge". Published snapshot versions carry these,
	// so a bench regression attributes to a stage.
	Stages map[string]time.Duration
	// TrustComponents / TrustRecomputed report the component shape of the
	// tail's TruthFinder fixpoint: how many trust-coupled connected
	// components the claim set split into, and how many of them actually
	// re-iterated (cold tails recompute all; warm streaming tails adopt
	// unchanged components from the memo). Zero for non-TruthFinder
	// policies and empty tails.
	TrustComponents int
	TrustRecomputed int
}

// Wrangler is the Figure-1 architecture instance. Sources arrive through
// a sources.Provider — the synthetic Universe, files on disk, or any
// other backend — so the orchestrator never depends on where data lives.
type Wrangler struct {
	Provider sources.Provider
	UserCtx  *wctx.UserContext
	DataCtx  *wctx.DataContext
	Feedback *feedback.Store
	Prov     *provenance.Graph
	Config   Config
	// Parallelism bounds how many sources are processed concurrently:
	// 0 means auto (one worker per CPU), 1 forces sequential execution,
	// n > 1 uses n workers. Parallel runs are byte-identical to
	// sequential ones — per-source work fans out on the engine, results
	// merge in stable provider order.
	Parallelism int
	// Serve is the versioned copy-on-write snapshot store the wrangler
	// publishes into at the end of every successful run, feedback reaction
	// and refresh. Readers hold committed versions lock-free; replace the
	// store (before the first run) to change its retention bound.
	Serve *VersionStore
	// IntegrationShards splits the integration tail (entity resolution +
	// fusion) into this many disjoint blocking shards that resolve and
	// fuse as parallel engine tasks and merge deterministically: the
	// output is byte-identical to the sequential tail at every shard
	// count. 0 (the default) keeps the tail sequential. Sharded tails
	// additionally publish snapshot deltas — versions share the table
	// records of every shard whose fused rows did not change.
	IntegrationShards int
	// StreamingRefresh (sharded sessions only) makes reactions recompute
	// a partial integration tail: the reaction planner diffs the new
	// union against the memoized previous one, re-plans incrementally
	// (er.RePlan), re-resolves only dirty shards, warm-starts the trust
	// fixpoint and re-fuses only shards whose claims or trust moved —
	// reusing every untouched shard's clusters and fused page by
	// reference. Output stays byte-identical to the full-tail recompute;
	// only the cost scales with the change instead of the corpus.
	StreamingRefresh bool

	states       map[string]*sourceState
	resolver     *er.Resolver
	union        *dataset.Table
	unionSources []string // per-row source id
	unionKeys    []string // per-row stable "source#idx" key, interned; rebuilt by buildUnion
	interner     *intern.Table // run-lifetime interner behind unionKeys and entity ids
	clusters     *er.Clustering
	entityIDs    []string // per union row: fused entity id
	results      []fusion.Result
	supporters   map[string][]string // lazy (entity,attr) → supporting sources
	wrangled     *dataset.Table
	trust        map[string]float64
	pages        []*shardPage   // sharded tail only: per-shard fused output, immutable once built
	entityShard  map[string]int // sharded tail only: entity -> owning shard of the last integration
	rowEntities  []string       // per wrangled-table row: its entity id (rows are entity-sorted)
	lastChange   serve.ChangeSet // what the last tail changed vs its predecessor; published with the version
	repairedRows []int          // union rows FD repair touched in the last buildUnion
	memo         *tailMemo      // streaming sessions: the last integrated tail, diffable
	dirtySources map[string]bool // sources whose state changed since the memoized tail
	lastSeq      int
	lastTrust    fusion.TrustStats // component shape of the last tail's trust estimation
	log          *DurableLog // durable sessions: every publication appends here
	met          *pipelineMetrics // nil unless SetMetrics enabled telemetry
	LastStats    RunStats
}

// New builds a wrangler over a source provider with the given contexts.
// userCtx may be nil (uniform weights); dataCtx may be nil (no auxiliary
// data).
func New(p sources.Provider, cfg Config, userCtx *wctx.UserContext, dataCtx *wctx.DataContext) *Wrangler {
	if userCtx == nil {
		userCtx = wctx.DefaultUserContext()
	}
	if dataCtx == nil {
		dataCtx = wctx.NewDataContext()
	}
	return &Wrangler{
		Provider: p,
		UserCtx:  userCtx,
		DataCtx:  dataCtx,
		Feedback: feedback.NewStore(),
		Prov:     provenance.NewGraph(),
		Config:   cfg,
		Serve:    NewVersionStore(serve.DefaultRetain),
		states:   map[string]*sourceState{},
		trust:    map[string]float64{},
		interner: intern.New(),
	}
}

// Run executes the full pipeline: extract every source, match and map to
// the target schema, select sources under the user context, resolve
// entities and fuse. It returns the wrangled table.
func (w *Wrangler) Run() (*dataset.Table, error) {
	return w.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation. The run is executed as
// a task DAG on the engine: every source's extract/match/map chain is an
// independent task fanning out over Parallelism workers, a barrier merges
// the per-source outcomes in stable provider order and feeds selection,
// then integration and fusion run. Cancellation is checked at every task
// boundary, so a caller can abandon a long wrangle mid-fan-out: the run
// returns ctx.Err() and no partially-fanned-out outcome is merged into
// the working data.
func (w *Wrangler) RunContext(ctx context.Context) (*dataset.Table, error) {
	start := time.Now()
	w.LastStats = RunStats{}
	w.lastTrust = fusion.TrustStats{} // an empty tail reports no components
	srcs := w.Provider.List()
	outcomes := make([]*sourceOutcome, len(srcs))
	g := engine.NewGraph()
	deps := make([]string, len(srcs))
	for i, s := range srcs {
		i, s := i, s
		prev := w.states[s.ID] // read before fan-out; installs happen at the barrier
		deps[i] = fmt.Sprintf("source[%03d] %s", i, s.ID)
		if err := g.Add(deps[i], func(context.Context) error {
			// Per-source failures are recorded in the outcome, not
			// returned: a source that cannot be wrangled is skipped, not
			// fatal — best-effort is the contract (§2.1).
			outcomes[i] = w.computeSource(s, prev, false)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := g.Add("select", func(context.Context) error {
		for _, o := range outcomes {
			_ = w.installOutcome(o)
		}
		w.selectSources()
		return nil
	}, deps...); err != nil {
		return nil, err
	}
	// A run always recomputes the full tail; streaming sessions record a
	// fresh tail memo at the merge so the next reaction can stream.
	if err := w.addIntegrationTasks(g, &shardRun{}, "select"); err != nil {
		return nil, err
	}
	w.instrumentGraph(g)
	if err := g.Run(ctx, w.workers()); err != nil {
		// The tail may have stopped between stages; the memoized state no
		// longer describes one coherent integration.
		w.memo = nil
		return nil, err
	}
	w.LastStats.Stages = stageTimings(g.Timings())
	w.LastStats.Duration = time.Since(start)
	w.LastStats.TrustComponents = w.lastTrust.Components
	w.LastStats.TrustRecomputed = w.lastTrust.Recomputed
	w.publish(serve.OriginRun, ReactStats{})
	return w.wrangled, nil
}

// stageTimings folds the engine's per-task wall clock into per-stage
// attribution: every "source[...]" task accrues to "sources", and the
// sharded integration tail's tasks are split by DAG stage — "replan"
// (union build + shard planning or incremental re-plan), "resolve",
// "trust" (cluster barrier + trust estimation), "fuse" and "merge" — so
// published versions attribute exactly where a streaming reaction saved
// its time. Every tail task additionally accrues to the aggregate
// "integrate" key (which the sequential tail's single task reports
// directly), so stage totals stay comparable across tail modes.
func stageTimings(tasks map[string]time.Duration) map[string]time.Duration {
	stages := make(map[string]time.Duration, 8)
	for id, d := range tasks {
		stage, tail := stageOf(id)
		stages[stage] += d
		if tail {
			stages["integrate"] += d
		}
	}
	return stages
}

// stageOf maps an engine task ID to its pipeline stage name, and reports
// whether the task belongs to the sharded integration tail (and so also
// accrues to the aggregate "integrate" key). It is the single source of
// stage attribution, shared by stageTimings and the per-task telemetry
// spans.
func stageOf(id string) (stage string, tail bool) {
	switch {
	case strings.HasPrefix(id, "source["):
		return "sources", false
	case id == "integrate":
		return "integrate", false
	case id == "integrate:plan":
		return "replan", true
	case id == "integrate:cluster":
		return "trust", true
	case id == "integrate:merge":
		return "merge", true
	case strings.HasPrefix(id, "resolve["):
		return "resolve", true
	case strings.HasPrefix(id, "fuse["):
		return "fuse", true
	default:
		return id, false
	}
}

// workers resolves the wrangler's configured parallelism degree.
func (w *Wrangler) workers() int { return engine.Workers(w.Parallelism) }

// provPut is a deferred provenance registration. Outcomes carry their puts
// instead of writing to the graph directly, so the merge step can replay
// them in stable source order — provenance steps stay deterministic under
// parallel execution.
type provPut struct {
	ref       provenance.Ref
	component string
	inputs    []provenance.Ref
	note      string
}

// sourceOutcome is everything processing one source produces, kept off the
// shared working data until installOutcome merges it. computeSource fills
// it concurrently; installOutcome applies it under the run's merge order.
type sourceOutcome struct {
	id        string
	st        *sourceState
	extracted bool // the extraction stage succeeded
	rows      int  // rows extracted
	repairs   int  // wrapper repairs performed
	prov      []provPut
	err       error
}

func (o *sourceOutcome) put(ref provenance.Ref, component string, inputs []provenance.Ref, note string) {
	o.prov = append(o.prov, provPut{ref: ref, component: component, inputs: inputs, note: note})
}

// computeSource runs one source's extract/match/map/score chain against a
// snapshot of the previous state. It only reads shared working data
// (contexts, config, master data); every result — new state, stats
// deltas, provenance records, the error — goes into the returned outcome,
// which makes it safe to run for many sources concurrently. It is the
// unit of incremental recomputation and the unit the engine parallelises.
//
// A panic anywhere in the chain is confined to this source: it becomes
// the outcome's error (carrying the captured stack, surfaced through
// RunStats.Failures), so a poisoned source is skipped like any other
// broken one instead of failing the run (best-effort, §2.1).
//
// reinduce discards the previously induced wrapper so HTML extraction
// re-learns it from scratch — the wrapper_broken feedback reaction.
// Otherwise a clone of the stored wrapper is reused and only repaired
// (extractions of structurally untouched sources are not re-learned).
func (w *Wrangler) computeSource(s *sources.Source, prev *sourceState, reinduce bool) (o *sourceOutcome) {
	o = &sourceOutcome{id: s.ID, st: &sourceState{}}
	defer func() {
		if r := recover(); r != nil {
			o.err = fmt.Errorf("core: source %s panicked: %v\n%s", o.id, r, debug.Stack())
		}
	}()
	st := o.st
	// A re-processed source (refresh, wrapper repair) keeps its selection:
	// incremental reactions must not silently drop it from integration.
	// The new state is only installed on success, so a failed
	// re-processing keeps the previous good working data too.
	if prev != nil {
		st.selected = prev.selected
		if !reinduce {
			// Cloned because Repair relabels wrapper fields in place; the
			// stored wrapper must stay untouched if this processing fails.
			st.wrapper = prev.wrapper.Clone()
		}
	}
	srcRef := provenance.Ref{Kind: provenance.KindSource, ID: s.ID}
	o.put(srcRef, "sources", nil, string(s.Kind))

	// --- Data Extraction ---
	reusingWrapper := st.wrapper != nil
	tab, repairs, err := w.extractSource(s, st)
	if err != nil {
		o.err = err
		return o
	}
	st.extracted = tab
	o.extracted = true
	o.rows = tab.Len()
	o.repairs = repairs
	extRef := provenance.Ref{Kind: provenance.KindExtraction, ID: s.ID}
	inputs := []provenance.Ref{srcRef}
	if st.wrapper != nil {
		// Provenance must say what actually happened: a wrapper carried
		// over from the previous round and merely repaired is not a fresh
		// induction (unless repair had to re-induce it).
		comp := "extract.Induce"
		if reusingWrapper && repairs == 0 {
			comp = "extract.Reuse"
		}
		wrapRef := provenance.Ref{Kind: provenance.KindWrapper, ID: s.ID}
		o.put(wrapRef, comp, []provenance.Ref{srcRef}, "")
		inputs = append(inputs, wrapRef)
	}
	o.put(extRef, "extract.Run", inputs, "")

	// --- Matching & mapping (Data Integration, schema level) ---
	opts := []match.Option{}
	if w.DataCtx.Taxonomy != nil {
		opts = append(opts, match.WithTaxonomy(w.DataCtx.Taxonomy))
	}
	if samples := w.DataCtx.MasterSamples(60); samples != nil {
		opts = append(opts, match.WithSamples(samples))
	}
	matcher := match.NewMatcher(w.Config.Target, opts...)
	corrs, err := matcher.Match(tab)
	if err != nil {
		o.err = fmt.Errorf("core: match %s: %w", s.ID, err)
		return o
	}
	m := mapping.Generate("map-"+s.ID, s.ID, w.Config.Target, corrs)
	st.mapping = m
	mapRef := provenance.Ref{Kind: provenance.KindMapping, ID: s.ID}
	o.put(mapRef, "mapping.Generate", []provenance.Ref{extRef}, "")

	q, err := mapping.EstimateQuality(m, tab, w.DataCtx.MasterData, w.Config.KeyColumn)
	if err != nil {
		o.err = fmt.Errorf("core: estimate quality %s: %w", s.ID, err)
		return o
	}
	st.quality = q
	mapped, err := m.Apply(tab)
	if err != nil {
		o.err = fmt.Errorf("core: apply mapping %s: %w", s.ID, err)
		return o
	}
	// Corroborate against master data: systematic unit drift (prices in
	// cents) is an extraction-level error repaired before integration.
	if w.DataCtx.MasterData != nil {
		extract.RepairUnits(mapped, w.DataCtx.MasterData)
		extract.RepairUnitCells(mapped, w.DataCtx.MasterData)
	}
	// Backfill the freshness column for sources that don't publish one.
	w.backfillTime(mapped, s)
	st.mapped = mapped

	sc, err := quality.Assess(mapped, w.DataCtx.MasterData, w.Config.KeyColumn,
		w.Config.TimeColumn, sources.AsOf(w.Provider.Clock()), 24*time.Hour, nil)
	if err != nil {
		o.err = fmt.Errorf("core: assess %s: %w", s.ID, err)
		return o
	}
	st.scorecard = sc
	o.put(provenance.Ref{Kind: provenance.KindQuality, ID: s.ID}, "quality.Assess", []provenance.Ref{mapRef}, "")
	return o
}

// installOutcome merges one outcome into the shared working data: run
// stats, provenance records and — on success — the new source state.
// Callers invoke it in stable source order, which is what makes a
// parallel run's working data byte-identical to a sequential run's. A
// failed outcome still contributes the stats and provenance of the stages
// it completed (exactly as the sequential pipeline did) and returns the
// error without touching the stored state.
func (w *Wrangler) installOutcome(o *sourceOutcome) error {
	w.LastStats.SourcesProcessed++
	for _, p := range o.prov {
		w.Prov.Put(p.ref, p.component, p.inputs, p.note)
	}
	if o.extracted {
		w.LastStats.RowsExtracted += o.rows
		w.LastStats.Reextracted = append(w.LastStats.Reextracted, o.id)
		w.LastStats.WrapperRepairs += o.repairs
	}
	if o.err != nil {
		if w.LastStats.Failures == nil {
			w.LastStats.Failures = map[string]string{}
		}
		w.LastStats.Failures[o.id] = o.err.Error()
		if w.met != nil {
			w.met.sourceFailures.Inc()
		}
		return o.err
	}
	w.states[o.id] = o.st
	// The source's working data diverged from the last integrated tail;
	// the streaming planner scopes its dirty-row diff to these sources
	// (cleared when a full tail commits a fresh memo). Accumulating here —
	// not per reaction — keeps the scope sound even when a reaction
	// installs some sources and then aborts before its tail. Only
	// streaming sessions read the set; enabling streaming mid-session is
	// still safe because it starts with no memo and therefore a full tail.
	if w.StreamingRefresh {
		if w.dirtySources == nil {
			w.dirtySources = map[string]bool{}
		}
		w.dirtySources[o.id] = true
	}
	return nil
}

// extractSource turns a raw source into a table: codec parse for CSV/JSON,
// wrapper induction + execution (+ repair) for HTML. It reports how many
// wrapper repairs were performed alongside the table.
func (w *Wrangler) extractSource(s *sources.Source, st *sourceState) (*dataset.Table, int, error) {
	switch s.Kind {
	case sources.KindCSV:
		tab, err := dataset.ReadCSV(strings.NewReader(s.Payload()))
		return tab, 0, err
	case sources.KindJSON:
		tab, err := dataset.ReadJSON(strings.NewReader(s.Payload()))
		return tab, 0, err
	case sources.KindKV:
		tab, err := dataset.ReadKV(strings.NewReader(s.Payload()))
		return tab, 0, err
	case sources.KindHTML:
		page := html.Parse(s.Payload())
		wr := st.wrapper
		if wr == nil {
			var err error
			wr, err = extract.Induce(s.ID, page, w.DataCtx.Taxonomy)
			if err != nil {
				return nil, 0, err
			}
		}
		// Joint wrapper+data repair, informed by master data when present.
		wr2, tab, rep, err := extract.Repair(wr, page, w.DataCtx.MasterData, w.DataCtx.Taxonomy)
		if err != nil {
			return nil, 0, err
		}
		repairs := 0
		if rep.Reinduced {
			repairs = 1
		}
		st.wrapper = wr2
		return tab, repairs, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown source kind %q", s.Kind)
	}
}

// backfillTime fills null freshness cells with the source's snapshot time.
func (w *Wrangler) backfillTime(mapped *dataset.Table, s *sources.Source) {
	if w.Config.TimeColumn == "" {
		return
	}
	tc := mapped.Schema().Index(w.Config.TimeColumn)
	if tc < 0 {
		return
	}
	asOf := dataset.Time(sources.AsOf(s.SnapshotClock))
	for i := 0; i < mapped.Len(); i++ {
		if mapped.Row(i)[tc].IsNull() {
			mapped.Row(i)[tc] = asOf
		}
	}
}

// selectSources ranks sources by context-weighted utility and keeps the
// top MaxSources (§2.1 compromise). Feedback relevance votes act as an
// additional relevance signal (§2.4 shared feedback).
func (w *Wrangler) selectSources() {
	rel := w.Feedback.SourceRelevance()
	type ranked struct {
		id      string
		utility float64
	}
	var all []ranked
	for id, st := range w.states {
		if st.mapped == nil {
			continue
		}
		scores := map[wctx.Criterion]float64{
			wctx.Completeness: st.quality.Completeness,
			wctx.Relevance:    relevanceScore(rel[id], st.quality.Coverage),
		}
		if !isNaN(st.scorecard.Accuracy) {
			scores[wctx.Accuracy] = st.scorecard.Accuracy
		}
		if !isNaN(st.scorecard.Timeliness) {
			scores[wctx.Timeliness] = st.scorecard.Timeliness
		}
		st.utility = w.UserCtx.Score(scores)
		all = append(all, ranked{id: id, utility: st.utility})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].utility != all[j].utility {
			return all[i].utility > all[j].utility
		}
		return all[i].id < all[j].id
	})
	limit := len(all)
	if w.UserCtx.MaxSources > 0 && w.UserCtx.MaxSources < limit {
		limit = w.UserCtx.MaxSources
	}
	for i, r := range all {
		w.states[r.id].selected = i < limit
	}
	w.LastStats.SourcesSelected = limit
}

func relevanceScore(votes, coverage float64) float64 {
	// Coverage of the master catalogue is the base relevance signal;
	// explicit votes shift it.
	s := coverage + 0.1*votes
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func isNaN(f float64) bool { return f != f }

// integrate unions selected mapped tables, resolves entities and fuses
// values into the wrangled table — the sequential integration tail.
// Sessions configured with IntegrationShards > 0 run the sharded twin
// (shard.go) instead; the two are byte-identical by construction and by
// the wrangletest determinism harness.
func (w *Wrangler) integrate() error {
	empty, err := w.buildUnion()
	if err != nil || empty {
		return err
	}
	must, cannot := w.pairConstraints()
	clusters, _, err := w.resolver.ResolveConstrained(w.union, must, cannot)
	if err != nil {
		return fmt.Errorf("core: resolve: %w", err)
	}
	w.clusters = clusters
	w.Prov.Put(provenance.Ref{Kind: provenance.KindCluster, ID: "union"}, "er.Resolve", w.mappingRefs(w.selectedIDs()), "")
	return w.fuse()
}

// buildUnion assembles the union table from the selected mapped tables,
// repairs profiled FD violations, and prepares the resolver (including
// Corleone-style refinement from pair feedback). It is the shared head of
// both integration tails. empty reports that there was nothing to
// integrate — the working data has already been reset to an empty result.
func (w *Wrangler) buildUnion() (empty bool, err error) {
	w.union = dataset.NewTable(w.Config.Target.Clone())
	w.unionSources = w.unionSources[:0]
	w.unionKeys = nil // derived from unionSources; rebuilt lazily by rowKeys
	ids := w.selectedIDs()
	for _, id := range ids {
		st := w.states[id]
		for _, r := range st.mapped.Rows() {
			w.union.Append(r.Clone())
			w.unionSources = append(w.unionSources, id)
		}
	}
	if w.union.Len() == 0 {
		w.wrangled = dataset.NewTable(w.Config.Target.Clone())
		w.results = nil
		w.supporters = nil
		w.pages = nil
		w.entityShard = nil
		w.rowEntities = nil
		// An emptied result cannot bound its delta against the
		// predecessor; watchers treat it as a full change.
		w.lastChange = serve.ChangeSet{Full: true}
		w.memo = nil // nothing integrated: nothing for a streaming tail to diff against
		return true, nil
	}
	// Profile the integrated data for near-exact functional dependencies
	// (e.g. sku -> brand) and repair their violations — typos introduced
	// by individual sources are outvoted by their own key group before
	// entity resolution sees them (cost-based repair, quality package).
	// The repaired row indices are kept: FD repair is the one stage that
	// can rewrite a row whose source did not change, so the streaming
	// diff must compare exactly these rows (and the previous round's) on
	// top of the provenance-scoped ones.
	_, _, repaired, err := quality.ProfileAndRepairRows(w.union, 0.9)
	if err != nil {
		return false, fmt.Errorf("core: profile repair: %w", err)
	}
	w.repairedRows = repaired
	w.resolver = er.NewResolver(w.Config.KeyColumn, w.Config.NameColumn, w.Config.SecondaryColumn, w.Config.NumericColumn)
	w.applyPairFeedback()
	return false, nil
}

// applyPairFeedback feeds accumulated duplicate labels into the resolver
// (Corleone-style refinement) before clustering.
func (w *Wrangler) applyPairFeedback() {
	labels := w.Feedback.PairLabels()
	if len(labels) == 0 {
		return
	}
	rowByKey := w.rowKeyIndex()
	var training []er.LabeledPair
	for pairKey, dup := range labels {
		parts := strings.SplitN(pairKey, "|", 2)
		if len(parts) != 2 {
			continue
		}
		i, iok := rowByKey[parts[0]]
		j, jok := rowByKey[parts[1]]
		if iok && jok && i != j {
			p := er.Pair{I: i, J: j}
			if p.I > p.J {
				p.I, p.J = p.J, p.I
			}
			training = append(training, er.LabeledPair{Pair: p, Duplicate: dup})
		}
	}
	if len(training) >= 4 {
		w.resolver.Learn(w.union, training)
	}
}

// pairConstraints turns confident pair feedback into hard clustering
// constraints: must-links for duplicate labels, cannot-links for
// not-duplicate labels. Only high-confidence labels qualify — an expert
// annotation (weight 1) or a high-agreement crowd majority (|net score|
// >= 0.75); weak majorities stay training signal only, since feedback
// "may be unreliable" (§4.2).
func (w *Wrangler) pairConstraints() (must, cannot []er.Pair) {
	labels := w.Feedback.PairLabels()
	if len(labels) == 0 {
		return nil, nil
	}
	rowByKey := w.rowKeyIndex()
	for pairKey, dup := range labels {
		score := w.Feedback.PairScore(pairKey)
		if score < 0.75 && score > -0.75 {
			continue
		}
		parts := strings.SplitN(pairKey, "|", 2)
		if len(parts) != 2 {
			continue
		}
		i, iok := rowByKey[parts[0]]
		j, jok := rowByKey[parts[1]]
		if !iok || !jok || i == j {
			continue
		}
		p := er.Pair{I: i, J: j}
		if p.I > p.J {
			p.I, p.J = p.J, p.I
		}
		if dup {
			must = append(must, p)
		} else {
			cannot = append(cannot, p)
		}
	}
	return must, cannot
}

// rowKeyIndex maps "sourceID#rowIdxInSource" to union row index; this is
// the stable row addressing feedback uses. Derived from rowKeys
// (shard.go) so the one key format serves feedback addressing and shard
// routing alike.
func (w *Wrangler) rowKeyIndex() map[string]int {
	keys := w.rowKeys()
	out := make(map[string]int, len(keys))
	for i, k := range keys {
		out[k] = i
	}
	return out
}

// RowKey returns the feedback addressing key for union row i.
func (w *Wrangler) RowKey(i int) string {
	return w.rowKeys()[i]
}

// fuse builds claims from the union rows grouped by cluster and fuses them
// under the context-appropriate policy. The TruthFinder fixpoint inside
// fans its trust-coupled components out over the session's workers —
// byte-identical to a sequential fuse at any parallelism.
func (w *Wrangler) fuse() error {
	w.entityIDs = w.entityNames()
	claims := w.buildClaims()
	var opts fusion.Options
	w.results, opts, w.lastTrust = fusion.FuseParallel(claims, w.fusionOptions(), w.workers())
	w.supporters = nil // new results: the supporters index is stale
	w.trust = opts.Trust
	w.pages = nil // sequential tail: no shard pages to share
	w.entityShard = nil

	// Materialise the wrangled table: one row per entity.
	entities, rows := materialize(w.results, w.Config.Target)
	out := dataset.NewTable(w.Config.Target.Clone())
	for _, r := range rows {
		out.Append(r)
	}
	w.wrangled = out
	w.rowEntities = entities
	// The sequential tail has no page bookkeeping to bound its delta:
	// every publication is "everything changed" to a watcher.
	w.lastChange = serve.ChangeSet{Full: true}
	w.LastStats.RowsWrangled = out.Len()
	w.Prov.Put(provenance.Ref{Kind: provenance.KindFusion, ID: "wrangled"},
		"fusion.Fuse", []provenance.Ref{{Kind: provenance.KindCluster, ID: "union"}}, opts.Policy.String())
	return nil
}

// buildClaims flattens the union into one claim per (row, attribute),
// in row order — the order fusion's bucket representatives and float
// accumulation depend on. The freshness column feeds each claim's AsOf
// and is not itself claimed.
func (w *Wrangler) buildClaims() []fusion.Claim {
	tc := -1
	if w.Config.TimeColumn != "" {
		tc = w.union.Schema().Index(w.Config.TimeColumn)
	}
	perRow := len(w.union.Schema())
	if tc >= 0 {
		perRow--
	}
	// One slab for the whole tail's claims: the exact count is known up
	// front, so the append loop never regrows.
	claims := make([]fusion.Claim, 0, w.union.Len()*perRow)
	for i, r := range w.union.Rows() {
		asOf := time.Time{}
		if tc >= 0 && r[tc].Kind() == dataset.KindTime {
			asOf = r[tc].TimeVal()
		}
		for ci, f := range w.union.Schema() {
			if ci == tc {
				continue
			}
			claims = append(claims, fusion.Claim{
				Entity:    w.entityIDs[i],
				Attribute: f.Name,
				Value:     r[ci],
				SourceID:  w.unionSources[i],
				AsOf:      asOf,
			})
		}
	}
	return claims
}

// materialize turns fused results into one record per entity, entities
// sorted ascending — the row order of the wrangled table. It is shared
// by the sequential tail (over all results) and the sharded tail (per
// shard page), which is what makes the merged sharded table equal the
// sequential one row for row.
func materialize(results []fusion.Result, target dataset.Schema) (entities []string, rows []dataset.Record) {
	byEntity := map[string]map[string]dataset.Value{}
	var order []string
	for _, res := range results {
		if byEntity[res.Entity] == nil {
			byEntity[res.Entity] = map[string]dataset.Value{}
			order = append(order, res.Entity)
		}
		byEntity[res.Entity][res.Attribute] = res.Value
	}
	sort.Strings(order)
	out := make([]dataset.Record, 0, len(order))
	for _, e := range order {
		row := make(dataset.Record, len(target))
		for i, f := range target {
			v, ok := byEntity[e][f.Name]
			if !ok {
				v = dataset.Null()
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return order, out
}

// fusionOptions self-configures the fusion policy from the user context:
// timeliness-heavy contexts get freshness-weighted fusion, otherwise
// trust-based truth discovery. Feedback-derived source trust seeds the
// trust map (shared feedback assimilation).
func (w *Wrangler) fusionOptions() fusion.Options {
	policy := fusion.TruthFinder
	if w.UserCtx.Weight(wctx.Timeliness) >= 0.3 && w.Config.TimeColumn != "" {
		policy = fusion.FreshnessWeighted
	}
	opts := fusion.DefaultOptions(policy)
	opts.Now = sources.AsOf(w.Provider.Clock())
	opts.Pinned = map[string]bool{}
	for src, t := range w.Feedback.SourceTrust() {
		opts.Trust[src] = t
		opts.Pinned[src] = true
	}
	return opts
}

// entityNames assigns a stable entity id per cluster: the most frequent
// non-null key value in the cluster, else "entity-<cluster>".
func (w *Wrangler) entityNames() []string {
	kc := w.union.Schema().Index(w.Config.KeyColumn)
	names := make([]string, w.union.Len())
	byCluster := w.clusters.Clusters()
	for cid, rows := range byCluster {
		counts := map[string]int{}
		for _, row := range rows {
			if kc >= 0 && !w.union.Row(row)[kc].IsNull() {
				counts[w.union.Row(row)[kc].String()]++
			}
		}
		best, bestN := "", 0
		for v, n := range counts {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		if best == "" {
			best = fmt.Sprintf("entity-%04d", cid)
		}
		if w.interner != nil {
			// One canonical id instance per entity across reactions; the
			// fusion group keys and page bookkeeping built from these ids
			// then compare against the previous round's by cheap
			// pointer-equal strings.
			best = w.interner.Str(best)
		}
		for _, row := range rows {
			names[row] = best
		}
	}
	return names
}

func (w *Wrangler) selectedIDs() []string {
	var ids []string
	for id, st := range w.states {
		if st.selected && st.mapped != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

func (w *Wrangler) mappingRefs(ids []string) []provenance.Ref {
	refs := make([]provenance.Ref, len(ids))
	for i, id := range ids {
		refs[i] = provenance.Ref{Kind: provenance.KindMapping, ID: id}
	}
	return refs
}

// Wrangled returns the current wrangled table (nil before Run).
func (w *Wrangler) Wrangled() *dataset.Table { return w.wrangled }

// Results returns the fused results (per entity and attribute).
func (w *Wrangler) Results() []fusion.Result { return w.results }

// Trust returns the current per-source trust map.
func (w *Wrangler) Trust() map[string]float64 { return w.trust }

// SelectedSources returns the ids of sources used in the last integration.
func (w *Wrangler) SelectedSources() []string { return w.selectedIDs() }

// Union returns the integrated pre-fusion table (one row per selected
// source record, target schema). Experiments use it to address rows; it is
// nil before integration.
func (w *Wrangler) Union() *dataset.Table { return w.union }

// UnionSourceOf returns the source id contributing union row i.
func (w *Wrangler) UnionSourceOf(i int) string { return w.unionSources[i] }

// UnionRowInSource returns row i's index within its source's mapped table.
func (w *Wrangler) UnionRowInSource(i int) int {
	count := 0
	for j := 0; j < i; j++ {
		if w.unionSources[j] == w.unionSources[i] {
			count++
		}
	}
	return count
}

// Resolver returns the current entity-resolution rule (nil before
// integration).
func (w *Wrangler) Resolver() *er.Resolver { return w.resolver }

// Clusters returns the current entity clustering (nil before integration).
func (w *Wrangler) Clusters() *er.Clustering { return w.clusters }

// EntityOf returns the fused entity id of union row i.
func (w *Wrangler) EntityOf(i int) string { return w.entityIDs[i] }

// ClaimSupporters returns the sources whose claims agree with the fused
// value of (entity, attribute) — the sources a "this value is wrong"
// annotation should blame, per the system's own fusion bookkeeping. This
// is how one feedback item informs many components: the annotation names
// a value, the working data knows who asserted it.
//
// Supporters for every fused value are indexed once per fusion (a report
// asks about every line, and every publication builds a report), so a
// lookup is O(1) after the first. The returned slice is shared with that
// index and with any report lines built from it — read-only.
func (w *Wrangler) ClaimSupporters(entity, attribute string) []string {
	if w.supporters == nil {
		w.buildSupporters()
	}
	return w.supporters[entity+"\x00"+attribute]
}

// buildSupporters walks the union once, grouping rows by entity, and
// resolves each fused result's supporting sources in a single pass —
// O(union rows × attributes + results) instead of a full union scan per
// report line. fuse invalidates the index (w.supporters = nil).
func (w *Wrangler) buildSupporters() {
	w.supporters = map[string][]string{}
	if w.union == nil {
		return
	}
	rowsByEntity := map[string][]int{}
	for i, e := range w.entityIDs {
		rowsByEntity[e] = append(rowsByEntity[e], i)
	}
	for _, r := range w.results {
		if r.Value.IsNull() {
			continue
		}
		c := w.union.Schema().Index(r.Attribute)
		if c < 0 {
			continue
		}
		seen := map[string]bool{}
		var out []string
		for _, i := range rowsByEntity[r.Entity] {
			v := w.union.Row(i)[c]
			if v.IsNull() || !v.ApproxEqual(r.Value, 0.01*absFloat(r.Value)) {
				continue
			}
			src := w.unionSources[i]
			if !seen[src] {
				seen[src] = true
				out = append(out, src)
			}
		}
		sort.Strings(out)
		w.supporters[r.Entity+"\x00"+r.Attribute] = out
	}
}

func absFloat(v dataset.Value) float64 {
	if !v.IsNumeric() {
		return 0
	}
	f := v.FloatVal()
	if f < 0 {
		return -f
	}
	return f
}

// SourceUtility returns the context utility assigned to a source in the
// last selection (0 for unknown sources).
func (w *Wrangler) SourceUtility(id string) float64 {
	if st, ok := w.states[id]; ok {
		return st.utility
	}
	return 0
}
