package core

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/sources"
	"repro/internal/text"
)

// Evaluation against the synthetic world's ground truth. These functions
// exist for the experiments only — the wrangler itself never consults the
// world (it would be cheating; production systems have no oracle).

// Evaluation summarises wrangled output quality against the world.
type Evaluation struct {
	// EntityPrecision: fraction of wrangled entities that correspond to a
	// real world entity (fantasy records fused in lower it).
	EntityPrecision float64
	// EntityRecall: fraction of world entities covered by some wrangled
	// entity (the paper's completeness axis).
	EntityRecall float64
	// NameAccuracy: fraction of matched entities whose fused name equals
	// the true name (normalised).
	NameAccuracy float64
	// PriceAccuracy: fraction of matched entities whose fused price is
	// within 1% of the true current price (the timeliness-sensitive axis).
	PriceAccuracy float64
	// MeanPriceError: mean relative error of fused prices.
	MeanPriceError float64
	Entities       int
}

// world returns the synthetic ground-truth world behind the provider, or
// nil when the provider is not a synthetic universe (real data has no
// oracle).
func (w *Wrangler) world() *sources.World {
	if u, ok := w.Provider.(*sources.Universe); ok {
		return u.World
	}
	return nil
}

// EvaluateProducts scores the wrangled table against the product world at
// the current clock. Providers without ground truth yield a zero
// Evaluation (no oracle to compare against).
func (w *Wrangler) EvaluateProducts() Evaluation {
	var ev Evaluation
	t := w.wrangled
	world := w.world()
	if t == nil || t.Len() == 0 || world == nil {
		return ev
	}
	kc := t.Schema().Index("sku")
	nc := t.Schema().Index("name")
	pc := t.Schema().Index("price")
	matched := 0
	nameOK, priceOK, priced := 0, 0, 0
	errSum := 0.0
	covered := map[string]bool{}
	for _, r := range t.Rows() {
		ev.Entities++
		if kc < 0 || r[kc].IsNull() {
			continue
		}
		p := world.Product(r[kc].String())
		if p == nil {
			continue
		}
		matched++
		covered[p.SKU] = true
		if nc >= 0 && !r[nc].IsNull() {
			if text.Normalize(r[nc].String()) == text.Normalize(p.Name) {
				nameOK++
			}
		}
		truePrice, _ := world.PriceAt(p.SKU, world.Clock)
		if pc >= 0 && r[pc].IsNumeric() && truePrice > 0 {
			priced++
			rel := math.Abs(r[pc].FloatVal()-truePrice) / truePrice
			errSum += rel
			if rel <= 0.01 {
				priceOK++
			}
		}
	}
	if ev.Entities > 0 {
		ev.EntityPrecision = float64(matched) / float64(ev.Entities)
	}
	if n := len(world.Products); n > 0 {
		ev.EntityRecall = float64(len(covered)) / float64(n)
	}
	if matched > 0 {
		ev.NameAccuracy = float64(nameOK) / float64(matched)
	}
	if priced > 0 {
		ev.PriceAccuracy = float64(priceOK) / float64(priced)
		ev.MeanPriceError = errSum / float64(priced)
	}
	return ev
}

// EvaluateLocations scores a wrangled locations table against the world:
// entity recall over businesses and street accuracy for matched ones
// (matching by normalised business name).
func (w *Wrangler) EvaluateLocations() Evaluation {
	var ev Evaluation
	t := w.wrangled
	world := w.world()
	if t == nil || t.Len() == 0 || world == nil {
		return ev
	}
	nc := t.Schema().Index("name")
	sc := t.Schema().Index("street")
	byName := map[string]int{}
	for i, b := range world.Businesses {
		byName[text.Normalize(b.Name)] = i
	}
	matched, streetOK := 0, 0
	covered := map[int]bool{}
	for _, r := range t.Rows() {
		ev.Entities++
		if nc < 0 || r[nc].IsNull() {
			continue
		}
		bi, ok := byName[text.Normalize(r[nc].String())]
		if !ok {
			continue
		}
		matched++
		covered[bi] = true
		if sc >= 0 && !r[sc].IsNull() &&
			text.Normalize(r[sc].String()) == text.Normalize(world.Businesses[bi].Street) {
			streetOK++
		}
	}
	if ev.Entities > 0 {
		ev.EntityPrecision = float64(matched) / float64(ev.Entities)
	}
	if n := len(world.Businesses); n > 0 {
		ev.EntityRecall = float64(len(covered)) / float64(n)
	}
	if matched > 0 {
		ev.NameAccuracy = float64(streetOK) / float64(matched)
	}
	return ev
}

// TruthOracle returns a fusion.Accuracy-compatible oracle over the product
// world at the current clock: entity ids are SKUs.
func (w *Wrangler) TruthOracle() func(entity, attribute string) (dataset.Value, bool) {
	world := w.world()
	return func(entity, attribute string) (dataset.Value, bool) {
		if world == nil {
			return dataset.Null(), false
		}
		p := world.Product(entity)
		if p == nil {
			return dataset.Null(), false
		}
		switch attribute {
		case "name":
			return dataset.String(p.Name), true
		case "brand":
			return dataset.String(p.Brand), true
		case "price":
			price, _ := world.PriceAt(p.SKU, world.Clock)
			return dataset.Float(price), true
		case "rating":
			return dataset.Float(p.Rating), true
		default:
			return dataset.Null(), false
		}
	}
}
