package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/er"
	"repro/internal/fusion"
	"repro/internal/intern"
	"repro/internal/provenance"
	"repro/internal/serve"
)

// This file is the sharded integration tail: the select → integrate →
// fuse chain that used to walk one global union table now partitions the
// union by blocking key (er.ShardPlan), resolves and fuses every shard as
// an independent engine task, and merges shard outputs with a stable,
// provider-order-independent merge. The contract is strict: at every
// shard count the merged table, report, results, trust and provenance
// are byte-identical to the sequential tail's (pinned by the
// internal/wrangletest determinism harness). Sharding buys two things —
// the tail fans out instead of being the run's Amdahl ceiling, and
// publication becomes incremental: each shard's fused rows form an
// immutable page, and a reaction that leaves a shard's rows unchanged
// publishes a version sharing that page's records with its predecessor
// (O(changed shard) publication instead of a full deep copy).

// shardPage is one shard's slice of the wrangled output: its fused
// entities (sorted), one record per entity, and the shard's fused
// results. Records are immutable once built — published versions alias
// them, so nothing may ever write through a page.
type shardPage struct {
	entities []string
	rows     []dataset.Record
	results  []fusion.Result
}

// rowsEqual reports whether two pages fuse the same entities to the same
// values — the condition under which the new page may share the old
// page's records instead of carrying fresh allocations.
func (p *shardPage) rowsEqual(q *shardPage) bool {
	if p == nil || q == nil || len(p.entities) != len(q.entities) {
		return false
	}
	for i := range p.entities {
		if p.entities[i] != q.entities[i] || !p.rows[i].Equal(q.rows[i]) {
			return false
		}
	}
	return true
}

// shardRun is the scratch state one sharded integration passes between
// its engine tasks. Each field is written by exactly one stage and only
// read after the barrier that stage feeds.
type shardRun struct {
	plan         *er.ShardPlan
	must, cannot []er.Pair
	rowKeys      []string         // plan stage: stable key per union row
	roots        []map[int]int    // resolve fan-out: shard -> row -> cluster representative
	claims       [][]fusion.Claim // cluster barrier: shard -> its entities' claims
	opts         fusion.Options   // cluster barrier: trust already estimated
	pages        []*shardPage     // fuse fan-out
	empty        bool             // nothing to integrate; all stages no-op

	// Streaming bookkeeping. stream selects the incremental re-plan in
	// the plan stage; fuseOnly marks a trust+fusion tail reusing the
	// stored clustering. reused records which shards skipped resolution;
	// trustMemo carries the warm trust state into the recorded memo.
	stream    bool
	fuseOnly  bool
	rp        *er.RePlanned // streaming plan stage: per-shard reuse and dirty residue
	reused    []bool
	trustMemo *fusion.TrustMemo
}

// resolvedShards counts the shards whose clusters were computed (not
// reused) this tail.
func (sr *shardRun) resolvedShards() (resolved, reused int) {
	if sr.fuseOnly {
		// A fuse-only tail reuses every shard's clusters by construction.
		return 0, len(sr.pages)
	}
	for i := range sr.pages {
		if i < len(sr.reused) && sr.reused[i] {
			reused++
		} else {
			resolved++
		}
	}
	return resolved, reused
}

// addIntegrationTasks wires the integration tail into g after deps. With
// IntegrationShards <= 0 that is the single sequential "integrate" task;
// otherwise the sharded pipeline: plan (union + blocking partition, or
// the incremental re-plan when sr.stream is set) → resolve[shard]
// fan-out (skipping shards whose clusters carried over) → cluster
// barrier (merge clusters, name entities, estimate trust globally —
// warm-started on streaming sessions) → fuse[shard] fan-out (reusing
// pages whose claims and trust are unchanged) → merge.
func (w *Wrangler) addIntegrationTasks(g *engine.Graph, sr *shardRun, deps ...string) error {
	n := w.IntegrationShards
	if n <= 0 {
		return g.Add("integrate", func(context.Context) error { return w.integrate() }, deps...)
	}
	if err := g.Add("integrate:plan", func(context.Context) error {
		return w.shardPlanStage(sr, n)
	}, deps...); err != nil {
		return err
	}
	resolveIDs, err := g.AddFanOut("resolve", n, func(_ context.Context, i int) error {
		return w.shardResolveStage(sr, i)
	}, "integrate:plan")
	if err != nil {
		return err
	}
	if err := g.Add("integrate:cluster", func(context.Context) error {
		return w.shardClusterStage(sr)
	}, resolveIDs...); err != nil {
		return err
	}
	return w.addFuseMergeTasks(g, sr, n, "integrate:cluster")
}

// addFuseMergeTasks wires the back half of the sharded tail — the
// fuse[shard] fan-out and the merge barrier — shared by the full
// integration pipeline and the planner's fuse-only tail
// (addFuseOnlyTasks), so the two paths cannot drift apart in task ids
// (which stage attribution matches on) or dependency shape.
func (w *Wrangler) addFuseMergeTasks(g *engine.Graph, sr *shardRun, n int, deps ...string) error {
	fuseIDs, err := g.AddFanOut("fuse", n, func(_ context.Context, i int) error {
		w.shardFuseStage(sr, i)
		return nil
	}, deps...)
	if err != nil {
		return err
	}
	return g.Add("integrate:merge", func(context.Context) error {
		return w.shardMergeStage(sr)
	}, fuseIDs...)
}

// shardPlanStage builds the union (shared head with the sequential tail:
// FD repair, resolver refinement from feedback) and partitions it into
// blocking shards. Cross-shard blocks cannot exist by construction: the
// plan routes whole block-connected components, keyed by their smallest
// stable row key, to a deterministic owner shard. On a streaming tail
// (sr.stream) the partition is computed incrementally instead: the
// dirty-row diff against the memoized union drives er.RePlan, which
// re-blocks only changed rows and hands back the previous clusters of
// every shard the delta provably did not touch.
func (w *Wrangler) shardPlanStage(sr *shardRun, n int) error {
	memo := w.memo
	empty, err := w.buildUnion()
	if err != nil {
		return err
	}
	if empty {
		sr.empty = true
		return nil
	}
	sr.must, sr.cannot = w.pairConstraints()
	sr.rowKeys = w.rowKeys()
	sr.roots = make([]map[int]int, n)
	sr.claims = make([][]fusion.Claim, n)
	sr.pages = make([]*shardPage, n)
	sr.reused = make([]bool, n)
	if w.StreamingRefresh {
		// Streaming sessions always plan through RePlan: with a memoized
		// previous tail the diff drives incremental re-planning; without
		// one (a full run, or after an invalidated memo) RePlan degrades
		// to a fresh plan whose resolve still seeds the cross-round score
		// cache, so the very next reaction starts warm.
		var dirty map[string]bool
		var prevPlan *er.PlanState
		if sr.stream && memo != nil {
			dirty = w.unionDelta(memo, sr.rowKeys)
			prevPlan = memo.plan
		}
		rp, err := w.resolver.RePlan(w.union, n, sr.must, sr.cannot, sr.rowKeys, dirty, prevPlan)
		if err != nil {
			// Same wrapping as the sequential tail's ResolveConstrained
			// failure: a misconfigured resolver fails identically either way.
			return fmt.Errorf("core: resolve: %w", err)
		}
		sr.plan = rp.Plan
		sr.rp = rp
		sr.reused = rp.Reused
		for i := range rp.Roots {
			if rp.Reused[i] {
				// Clusters carried over whole; the resolve task will no-op.
				sr.roots[i] = rp.Roots[i]
			}
		}
		return nil
	}
	plan, err := w.resolver.PlanShards(w.union, n, sr.must, sr.rowKeys)
	if err != nil {
		return fmt.Errorf("core: resolve: %w", err)
	}
	sr.plan = plan
	return nil
}

// shardResolveStage clusters one shard. It reads only immutable run state
// (union rows, the plan, the refined resolver) and writes only its own
// slot, so the fan-out needs no locks. On a streaming tail, shards whose
// clusters the re-plan carried over whole skip scoring entirely, and
// mixed shards score only their dirty components' rows — the clean
// components' clusters are already translated into the roots slot.
func (w *Wrangler) shardResolveStage(sr *shardRun, i int) error {
	if sr.empty || (i < len(sr.reused) && sr.reused[i]) {
		return nil
	}
	if sr.rp != nil {
		roots, _, err := sr.rp.ResolveDirty(w.resolver, w.union, i, sr.must, sr.cannot)
		if err != nil {
			return fmt.Errorf("core: resolve shard %d: %w", i, err)
		}
		merged := sr.rp.Roots[i] // this task owns shard i's slot
		for row, root := range roots {
			merged[row] = root
		}
		sr.roots[i] = merged
		return nil
	}
	roots, _, err := w.resolver.ResolveShard(w.union, sr.plan, i, sr.must, sr.cannot)
	if err != nil {
		return fmt.Errorf("core: resolve shard %d: %w", i, err)
	}
	sr.roots[i] = roots
	return nil
}

// shardClusterStage is the barrier between the two fan-outs: it merges
// the per-shard clusterings into the global dense clustering (identical
// numbering to a sequential resolve), names entities, partitions claims
// by owning shard, and runs the one stage of fusion that is inherently
// global — TruthFinder's trust fixpoint over the full claim set.
func (w *Wrangler) shardClusterStage(sr *shardRun) error {
	if sr.empty {
		return nil
	}
	clusters, err := sr.plan.MergeRoots(sr.roots)
	if err != nil {
		return err
	}
	w.clusters = clusters
	w.Prov.Put(provenance.Ref{Kind: provenance.KindCluster, ID: "union"}, "er.Resolve", w.mappingRefs(w.selectedIDs()), "")
	w.entityIDs = w.entityNames()
	// An entity's claims fuse in its owning shard: the shard of its first
	// union row. Clusters never span shards, but two clusters in
	// different shards can share a most-frequent key and hence an entity
	// name — the sequential tail fuses their claims together, so the
	// first-row owner takes all of them (rows are only read, so a shard
	// may read rows it does not own).
	entityShard := make(map[string]int, clusters.Num)
	for i, e := range w.entityIDs {
		if _, ok := entityShard[e]; !ok {
			entityShard[e] = sr.plan.RowShard[i]
		}
	}
	// Kept on the wrangler: a later fuse-only reaction reuses this
	// routing, since trust changes never move an entity's shard.
	w.entityShard = entityShard
	claims := w.buildClaims()
	sr.estimateTrust(w, claims)
	// Partition claims by owning shard into one backing slab: counts are
	// known after one pass, so each shard's slice is carved out of a
	// single allocation, claim order preserved within each shard.
	counts := make([]int, len(sr.claims))
	for _, c := range claims {
		counts[entityShard[c.Entity]]++
	}
	slab := make([]fusion.Claim, len(claims))
	next := make([]int, len(sr.claims))
	off := 0
	for s, n := range counts {
		next[s] = off
		off += n
	}
	for _, c := range claims {
		s := entityShard[c.Entity]
		slab[next[s]] = c
		next[s]++
	}
	off = 0
	for s, n := range counts {
		sr.claims[s] = slab[off : off+n : off+n]
		off += n
	}
	return nil
}

// estimateTrust runs the one cross-shard stage of fusion, fanning the
// fixpoint's trust-coupled components out over the session's workers
// (byte-identical to sequential at any count). On streaming sessions the
// TruthFinder fixpoint warm-starts from the memoized group state —
// unchanged (entity, attribute) groups keep their prepared buckets, and
// the short-circuit is per component: a reaction that dirties one
// component's claims re-iterates that component only, adopting the
// others' memoized trust (and when nothing relevant changed at all, no
// component iterates). Either way the result is float-exact with the
// cold EstimateTrust the non-streaming tails run. Runs inside the single
// cluster-barrier task, so writing w.lastTrust is race-free.
func (sr *shardRun) estimateTrust(w *Wrangler, claims []fusion.Claim) {
	if !w.StreamingRefresh {
		sr.opts, w.lastTrust = fusion.EstimateTrustParallel(claims, w.fusionOptions(), w.workers())
		return
	}
	var prev *fusion.TrustMemo
	if w.memo != nil {
		prev = w.memo.trust
	}
	sr.opts, sr.trustMemo, _, w.lastTrust = fusion.EstimateTrustWarmParallel(claims, w.fusionOptions(), prev, w.workers())
}

// shardFuseStage fuses one shard's claims under the globally estimated
// trust and materialises the shard's page. Claim partitioning preserved
// row order, so every (entity, attribute) group sees its claims in the
// exact order the sequential fuse would — bucket representatives and
// vote accumulation match bit for bit. When the shard's claims and the
// effective trust of every source claiming in it are unchanged from the
// memoized tail, the previous page — entities, records and results — is
// adopted by reference instead: fusion provably could not produce
// anything else.
func (w *Wrangler) shardFuseStage(sr *shardRun, i int) {
	if sr.empty {
		return
	}
	if w.shardFuseReusable(sr, i) {
		sr.pages[i] = w.memo.pages[i]
		return
	}
	results := fusion.FuseResolved(sr.claims[i], sr.opts)
	entities, rows := materialize(results, w.Config.Target)
	sr.pages[i] = &shardPage{entities: entities, rows: rows, results: results}
}

// shardMergeStage merges the shard outputs: results in global sorted
// order, pages reconciled against the previous integration (a shard
// whose fused rows are unchanged keeps its predecessor's records — the
// delta the publisher shares between versions), and the wrangled table
// assembled from page records without copying.
func (w *Wrangler) shardMergeStage(sr *shardRun) error {
	if sr.empty {
		return nil
	}
	parts := make([][]fusion.Result, len(sr.pages))
	for i, p := range sr.pages {
		parts[i] = p.results
	}
	w.results = fusion.MergeResults(parts...)
	w.supporters = nil
	w.trust = sr.opts.Trust

	// Delta reconciliation: adopt the previous page's records wherever
	// the shard fused to identical rows. Results stay fresh (confidences
	// and trust may drift even when every winning value held), so only
	// the record storage — what publication would otherwise deep-copy —
	// is shared. The same pass computes the version's ChangeSet: which
	// shards rebuilt, and which records within them actually moved —
	// the summary watchers receive so their per-version payload is
	// O(delta), not O(table).
	shared := make([]bool, len(sr.pages))
	for i := range sr.pages {
		if i < len(w.pages) && sr.pages[i].rowsEqual(w.pages[i]) {
			sr.pages[i].entities = w.pages[i].entities
			sr.pages[i].rows = w.pages[i].rows
			shared[i] = true
		}
	}
	w.lastChange = changeSet(w.pages, sr.pages, shared)
	w.pages = sr.pages

	// Stable merge: entities are disjoint across shards, so sorting the
	// concatenation by entity reproduces the sequential table's row order
	// regardless of shard count or finish order.
	type entityRow struct {
		entity string
		row    dataset.Record
	}
	var all []entityRow
	for _, p := range sr.pages {
		for j, e := range p.entities {
			all = append(all, entityRow{entity: e, row: p.rows[j]})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].entity < all[b].entity })
	out := dataset.NewTable(w.Config.Target.Clone())
	entities := make([]string, len(all))
	for i, e := range all {
		out.Append(e.row)
		entities[i] = e.entity
	}
	w.wrangled = out
	w.rowEntities = entities
	w.LastStats.RowsWrangled = out.Len()
	w.Prov.Put(provenance.Ref{Kind: provenance.KindFusion, ID: "wrangled"},
		"fusion.Fuse", []provenance.Ref{{Kind: provenance.KindCluster, ID: "union"}}, sr.opts.Policy.String())
	if w.StreamingRefresh {
		w.recordTailMemo(sr)
	}
	return nil
}

// changeSet summarises what the freshly merged pages changed against the
// previous integration — the per-version delta the change feed pushes to
// watchers. Shards whose pages were adopted by reference contribute
// nothing; rebuilt shards are diffed record by record (pages keep their
// entities sorted, so each diff is one linear merge walk over the two
// pages — O(changed pages), never O(table)). Without a previous
// integration to diff against the whole version is a full change.
func changeSet(prev, cur []*shardPage, shared []bool) serve.ChangeSet {
	if len(prev) == 0 || len(prev) != len(cur) {
		return serve.ChangeSet{Full: true}
	}
	cs := serve.ChangeSet{}
	changed := map[string]bool{}
	removed := map[string]bool{}
	for i := range cur {
		if shared[i] {
			cs.SharedPages++
			continue
		}
		cs.ChangedPages++
		cs.ChangedShards = append(cs.ChangedShards, i)
		diffPage(prev[i], cur[i], changed, removed)
	}
	for e := range changed {
		// An entity routed to a new owner shard is removed from one page
		// and (re)appears in another: that is a change, not a removal.
		delete(removed, e)
		cs.ChangedRecords = append(cs.ChangedRecords, e)
	}
	for e := range removed {
		cs.RemovedRecords = append(cs.RemovedRecords, e)
	}
	// Publish sorts the slices (ChangeSet normalization); no need here.
	return cs
}

// diffPage walks two entity-sorted pages in one merge pass, recording the
// entities the new page added or rewrote and the ones it dropped.
func diffPage(prev, cur *shardPage, changed, removed map[string]bool) {
	i, j := 0, 0
	var np, nc int
	if prev != nil {
		np = len(prev.entities)
	}
	if cur != nil {
		nc = len(cur.entities)
	}
	for i < np || j < nc {
		switch {
		case i >= np:
			changed[cur.entities[j]] = true
			j++
		case j >= nc:
			removed[prev.entities[i]] = true
			i++
		case prev.entities[i] == cur.entities[j]:
			if !prev.rows[i].Equal(cur.rows[j]) {
				changed[cur.entities[j]] = true
			}
			i++
			j++
		case prev.entities[i] < cur.entities[j]:
			removed[prev.entities[i]] = true
			i++
		default:
			changed[cur.entities[j]] = true
			j++
		}
	}
}

// rowKey is THE "source#idxInSource" row identifier format — feedback
// addressing (RowKey, rowKeyIndex) and shard routing (rowKeys) must
// agree on it, so it exists exactly once. The interner's Key method
// (intern.Table) builds the identical format; rowKeys pins the agreement
// with this function in its tests.
func rowKey(src string, idxInSource int) string {
	return fmt.Sprintf("%s#%d", src, idxInSource)
}

// rowKeys returns the stable feedback key of every union row — the
// identifiers shard routing hashes, so a component keeps its shard
// across reactions that only touch other sources. Keys are interned for
// the run's lifetime and the per-union slice is cached (buildUnion
// invalidates it), so the repeated derivations across a tail — feedback
// indexing, constraint mapping, shard planning — share one build.
// Callers treat the returned slice as read-only.
func (w *Wrangler) rowKeys() []string {
	if w.unionKeys != nil && len(w.unionKeys) == len(w.unionSources) {
		return w.unionKeys
	}
	if w.interner == nil {
		w.interner = intern.New()
	}
	counts := map[string]int{}
	out := make([]string, len(w.unionSources))
	for i, src := range w.unionSources {
		out[i] = w.interner.Key(src, counts[src])
		counts[src]++
	}
	w.unionKeys = out
	return out
}

// SharedRecords reports how many of cur's records are shared with prev
// by pointer identity — observability for the delta publication path: a
// version published after a one-shard reaction shares every untouched
// shard's records with its predecessor.
func SharedRecords(prev, cur *dataset.Table) int {
	if prev == nil || cur == nil {
		return 0
	}
	seen := make(map[*dataset.Value]bool, prev.Len())
	for i := 0; i < prev.Len(); i++ {
		r := prev.Row(i)
		if len(r) > 0 {
			seen[&r[0]] = true
		}
	}
	shared := 0
	for i := 0; i < cur.Len(); i++ {
		r := cur.Row(i)
		if len(r) > 0 && seen[&r[0]] {
			shared++
		}
	}
	return shared
}
