package core

import (
	"fmt"
	"maps"
	"time"

	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/serve"
)

// This file is the write side of the serving layer: at the end of every
// successful run, feedback reaction and refresh, the wrangler publishes a
// copy-on-write snapshot of its read-side artefacts into a versioned
// serve.Store. Publication reuses the pipeline's compute/install split —
// the reaction has already computed the new working data, so publishing
// is a deep copy plus one atomic swap. Readers (Session.View) hold the
// committed version without any lock and are never torn by the next
// reaction.

// Published is the payload of one committed serve version: every
// read-side artefact of a wrangle, frozen at publication so no later
// reaction (or other reader) can mutate what a reader holds. Sequential
// sessions freeze by deep copy; sharded sessions freeze by construction
// — table rows are immutable per-shard page records, shared by pointer
// with neighbouring versions whose shard did not change (the delta
// publication path). Either way all fields are frozen once published;
// treat them as read-only.
type Published struct {
	// Table is the wrangled table, one row per entity.
	Table *dataset.Table
	// Report is the prebuilt Example-5 report over all attributes, with
	// supporters resolved against this version's fusion bookkeeping.
	Report *report.Report
	// Stats reports what the last full run touched, including the
	// per-stage wall-clock attribution (RunStats.Stages).
	Stats RunStats
	// React is the incremental reaction that committed this version;
	// zero for run-origin versions.
	React ReactStats
	// Trust is the per-source trust map of the fusion behind Table.
	Trust map[string]float64
	// Sources is the per-source selection, utility and quality snapshot.
	Sources map[string]SourceReport
	// Selected is the sorted list of source ids integrated into Table.
	Selected []string
	// Entities holds, for each Table row, the entity id that row
	// describes, aligned by index. Rows are entity-sorted, so a
	// change-feed consumer can binary-search an entity id from a
	// version's ChangedRecords straight to its row. Nil when the
	// pipeline did not track entity ids (empty output).
	Entities []string
}

// VersionStore is the concrete serve store a wrangler publishes into.
type VersionStore = serve.Store[Published]

// PublishedVersion is one committed version of a wrangler's output.
type PublishedVersion = serve.Version[Published]

// NewVersionStore creates a snapshot store retaining the given number of
// versions (< 1 = serve.DefaultRetain).
func NewVersionStore(retain int) *VersionStore {
	return serve.NewStore[Published](retain)
}

// publish commits the current working data as a new serve version,
// stamped with the provenance step that produced it. The compute half
// already happened (the run or reaction that just finished); this is the
// install half: deep-copy the read-side artefacts, then one atomic swap
// makes them the latest version. Before the first successful run there is
// nothing to publish.
func (w *Wrangler) publish(origin serve.Origin, react ReactStats) {
	if w.Serve == nil || w.wrangled == nil {
		return
	}
	pub := Published{
		Table:    w.publishTable(),
		Report:   report.Build(w, publishTitle(origin), nil),
		Stats:    w.LastStats.Clone(),
		React:    react.Clone(),
		Trust:    maps.Clone(w.trust),
		Sources:  w.Snapshot(),
		Selected: w.selectedIDs(),
		Entities: append([]string(nil), w.rowEntities...),
	}
	v := w.Serve.Publish(pub, w.Prov.Step(), origin, time.Now(), w.lastChange)
	w.observePublish(origin, react, v)
	if w.log != nil {
		// Durable sessions append the committed version (and everything it
		// changed) to the log; publish-then-append means the log tail is
		// always a coherent committed snapshot.
		w.log.appendVersion(w, v)
	}
}

// publishTitles precomputes the report title per known origin: publish is
// on the per-reaction hot path (counted by the wrangle_publish metrics),
// and the origin set is three values — formatting the same title on every
// publish was pure churn.
var publishTitles = map[serve.Origin]string{
	serve.OriginRun:      "wrangled (" + string(serve.OriginRun) + ")",
	serve.OriginFeedback: "wrangled (" + string(serve.OriginFeedback) + ")",
	serve.OriginRefresh:  "wrangled (" + string(serve.OriginRefresh) + ")",
}

// publishTitle returns the precomputed title for a known origin, falling
// back to formatting for any future origin value.
func publishTitle(origin serve.Origin) string {
	if t, ok := publishTitles[origin]; ok {
		return t
	}
	return fmt.Sprintf("wrangled (%s)", origin)
}

// publishTable hands the next version its table. The sequential tail
// publishes a deep copy (it has no immutability discipline over its
// records). The sharded tail's rows are immutable per-shard page records
// — never written after their fuse task built them, and de-duplicated
// against the previous integration by the merge — so it publishes a
// fresh table header whose rows point at those shared records: a version
// after a one-shard reaction shares every untouched shard's records with
// its predecessor, making publication allocation and retention O(changed
// shard) instead of O(table). The header copy keeps the published object
// distinct from the live w.wrangled, so even an in-place reorder of the
// live table could not disturb committed versions.
func (w *Wrangler) publishTable() *dataset.Table {
	if w.pages == nil {
		return w.wrangled.Clone()
	}
	out := dataset.NewTable(w.wrangled.Schema().Clone())
	for _, r := range w.wrangled.Rows() {
		out.Append(r) // pointer-shared immutable page records
	}
	return out
}

// Clone deep-copies the stats' reference fields, insulating the copy
// from later runs mutating the originals in place (published versions
// and API callers both rely on this).
func (s RunStats) Clone() RunStats {
	s.Reextracted = append([]string(nil), s.Reextracted...)
	s.Failures = maps.Clone(s.Failures)
	s.Stages = maps.Clone(s.Stages)
	return s
}

// Clone deep-copies the reaction stats' reference fields.
func (s ReactStats) Clone() ReactStats {
	s.Stages = maps.Clone(s.Stages)
	return s
}
