package core

import (
	"context"
	"maps"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/er"
	"repro/internal/feedback"
	"repro/internal/fusion"
	"repro/internal/provenance"
)

// This file is the reaction planner: the one place that decides, for any
// incremental reaction (feedback assimilation or source churn), how much
// of the integration tail must recompute — and executes exactly that.
// It replaces the three ad-hoc reaction tails the feedback and refresh
// paths used to carry (inline re-integrate, inline re-fuse, and the
// sharded twins of both) with a single executor, and adds the streaming
// mode: on sharded sessions with StreamingRefresh, a full-scope tail
// diffs the rebuilt union against the memoized previous one (scoped by
// provenance.Graph.AffectedIDs plus the FD-repair row sets), re-plans
// incrementally and recomputes only the dirty shards. The contract is
// strict and inherited from the sharded tail: every mode is
// byte-identical to the sequential full recompute, pinned by the
// internal/wrangletest harness.

// tailScope is how much of the integration tail a reaction needs.
type tailScope int

const (
	// tailFull re-plans, re-resolves and re-fuses: the union's content
	// or composition (or the clustering inputs) may have changed.
	tailFull tailScope = iota
	// tailFuseOnly recomputes trust and fusion over the stored
	// clustering: only fusion inputs (value feedback → trust) moved.
	tailFuseOnly
)

// tailMemo is the memoized state of the last integrated tail — what the
// streaming planner diffs a reaction against. All fields describe one
// coherent integration; any tail that fails mid-flight drops the memo
// (the next reaction falls back to a full tail and re-records it).
type tailMemo struct {
	union    *dataset.Table // the previous post-repair union (frozen: rebuilt, never mutated)
	rowKeys  []string
	rowIdx   map[string]int  // row key -> previous union row
	repaired map[string]bool // row keys FD repair touched building that union
	plan     *er.PlanState
	claims   [][]fusion.Claim // per shard, as fused
	pages    []*shardPage
	trust    *fusion.TrustMemo
	trustMap map[string]float64 // the trust the pages were fused under
	fuse     fuseSig
}

// fuseSig is the slice of fusion.Options a fused page depends on beyond
// claims and trust.
type fuseSig struct {
	policy       fusion.Policy
	defaultTrust float64
	tolerance    float64
	now          time.Time
	halfLife     time.Duration
}

func newFuseSig(opts fusion.Options) fuseSig {
	return fuseSig{
		policy:       opts.Policy,
		defaultTrust: opts.DefaultTrust,
		tolerance:    opts.NumericTolerance,
		now:          opts.Now,
		halfLife:     opts.HalfLife,
	}
}

// compatible reports whether pages fused under the signature could be
// reused under opts. Now and HalfLife only matter when votes decay:
// every other policy ignores claim age, so a ticking clock alone must
// not defeat reuse.
func (s fuseSig) compatible(opts fusion.Options) bool {
	if s.policy != opts.Policy || s.defaultTrust != opts.DefaultTrust || s.tolerance != opts.NumericTolerance {
		return false
	}
	if s.policy == fusion.FreshnessWeighted {
		return s.now.Equal(opts.Now) && s.halfLife == opts.HalfLife
	}
	return true
}

// planReaction classifies a batch of feedback into the reaction plan:
// which sources need re-extraction, whether selection must rerun, and
// the tail scope. This is the §2.4 decision table in one place.
func planReaction(items []feedback.Item) (reextract map[string]bool, reselect bool, scope tailScope, tail bool) {
	reextract = map[string]bool{}
	for _, it := range items {
		switch it.Kind {
		case "wrapper_broken":
			reextract[it.SourceID] = true
		case "duplicate", "not_duplicate":
			scope, tail = tailFull, true
		case "value_correct", "value_incorrect":
			if !tail {
				scope, tail = tailFuseOnly, true
			}
		case "source_relevant", "source_irrelevant":
			reselect = true
		}
	}
	return reextract, reselect, scope, tail
}

// runTail executes the integration tail at the given scope and fills the
// reaction stats: per-DAG-stage timings and, on sharded sessions, the
// dirty-shard counts. Sequential sessions run the inline tails
// unchanged. Sharded sessions run an engine graph; with streaming
// enabled and a valid memo, the full-scope graph is the partial tail
// (diff → re-plan → resolve[dirty] → trust barrier → fuse[dirty] →
// merge) and the fuse-only graph warm-starts trust and reuses every page
// whose inputs held still.
func (w *Wrangler) runTail(ctx context.Context, scope tailScope, stats *ReactStats) error {
	start := time.Now()
	if stats.Stages == nil {
		stats.Stages = map[string]time.Duration{}
	}
	// Every tail path below funnels its trust estimation through
	// w.lastTrust (the fuse barrier / sequential fuse both write it);
	// reset first so a tail that never estimates trust — empty union,
	// non-TruthFinder policy — reports zero components, then snapshot
	// whatever the tail recorded on the way out.
	w.lastTrust = fusion.TrustStats{}
	defer func() {
		stats.TrustComponents = w.lastTrust.Components
		stats.TrustRecomputed = w.lastTrust.Recomputed
	}()
	if w.IntegrationShards <= 0 {
		if scope == tailFuseOnly {
			if err := w.fuse(); err != nil {
				return err
			}
			stats.Stages["fuse"] = time.Since(start)
			return nil
		}
		if err := w.integrate(); err != nil {
			return err
		}
		stats.Stages["integrate"] = time.Since(start)
		return nil
	}

	g := engine.NewGraph()
	sr := &shardRun{}
	var err error
	switch {
	case scope == tailFuseOnly && len(w.entityShard) > 0 && len(w.pages) > 0:
		err = w.addFuseOnlyTasks(g, sr)
	case scope == tailFuseOnly:
		// No sharded integration to reuse (e.g. the last union was
		// empty): fall back to the sequential fuse, exactly as before.
		if err := w.fuse(); err != nil {
			return err
		}
		stats.Stages["fuse"] = time.Since(start)
		return nil
	default:
		sr.stream = w.StreamingRefresh && w.memo != nil
		err = w.addIntegrationTasks(g, sr)
	}
	if err != nil {
		return err
	}
	w.instrumentGraph(g)
	if err := g.Run(ctx, w.workers()); err != nil {
		// The tail stopped between stages: the memo no longer describes
		// one coherent integration.
		w.memo = nil
		return err
	}
	for k, d := range stageTimings(g.Timings()) {
		stats.Stages[k] += d
	}
	stats.Stages["integrate"] = time.Since(start)
	stats.ShardsResolved, stats.ShardsReused = sr.resolvedShards()
	return nil
}

// addFuseOnlyTasks wires the trust+fuse+merge tail over the stored
// clustering — the value-feedback reaction. The union and clusters are
// untouched; entity names are recomputed (a pure function of both), the
// claims re-partition along the stored entity→shard routing, trust is
// re-estimated (warm on streaming sessions) and every shard re-fuses —
// or, with streaming, adopts its previous page when its claims and trust
// held still.
func (w *Wrangler) addFuseOnlyTasks(g *engine.Graph, sr *shardRun) error {
	n := len(w.pages)
	sr.fuseOnly = true
	if err := g.Add("integrate:cluster", func(context.Context) error {
		// Mirror the sequential fuse exactly: entity names first
		// (clusters are unchanged, so this recomputes the same names),
		// then claims, then the global trust stage.
		w.entityIDs = w.entityNames()
		claims := w.buildClaims()
		sr.claims = make([][]fusion.Claim, n)
		sr.pages = make([]*shardPage, n)
		sr.estimateTrust(w, claims)
		for _, c := range claims {
			s := w.entityShard[c.Entity]
			sr.claims[s] = append(sr.claims[s], c)
		}
		return nil
	}); err != nil {
		return err
	}
	return w.addFuseMergeTasks(g, sr, n, "integrate:cluster")
}

// unionDelta computes the dirty row-key set of the freshly built union
// against the memoized one: rows that appeared or disappeared
// (selection moves, source growth), plus content changes on exactly the
// rows something could have rewritten — rows of sources whose extraction
// artefacts provenance marks as affected by the accumulated source
// changes, and rows FD repair touched in either round. Rows outside
// that scope kept their mapped values and were repaired in neither
// round, so their post-repair content is provably unchanged.
func (w *Wrangler) unionDelta(memo *tailMemo, rowKeys []string) map[string]bool {
	dirty := map[string]bool{}
	newIdx := make(map[string]int, len(rowKeys))
	for i, k := range rowKeys {
		newIdx[k] = i
	}
	for k := range memo.rowIdx {
		if _, ok := newIdx[k]; !ok {
			dirty[k] = true
		}
	}
	for k := range newIdx {
		if _, ok := memo.rowIdx[k]; !ok {
			dirty[k] = true
		}
	}

	// Content scope: provenance names the extractions downstream of the
	// changed sources; FD repair names the rows it rewrote.
	affected := map[string]bool{}
	if len(w.dirtySources) > 0 {
		refs := make([]provenance.Ref, 0, len(w.dirtySources))
		for id := range w.dirtySources {
			affected[id] = true
			refs = append(refs, provenance.Ref{Kind: provenance.KindSource, ID: id})
		}
		for _, id := range w.Prov.AffectedIDs(provenance.KindExtraction, refs...) {
			affected[id] = true
		}
	}
	candidate := map[string]bool{}
	for i, src := range w.unionSources {
		if affected[src] {
			candidate[rowKeys[i]] = true
		}
	}
	for _, row := range w.repairedRows {
		candidate[rowKeys[row]] = true
	}
	for k := range memo.repaired {
		candidate[k] = true
	}
	for k := range candidate {
		oldRow, ok := memo.rowIdx[k]
		if !ok {
			continue // appeared: already dirty
		}
		newRow, ok := newIdx[k]
		if !ok {
			continue // disappeared: already dirty
		}
		if !memo.union.Row(oldRow).Equal(w.union.Row(newRow)) {
			dirty[k] = true
		}
	}
	return dirty
}

// shardFuseReusable reports whether shard i's memoized page is provably
// what FuseResolved would produce again: streaming session, compatible
// fusion options, byte-identical claims, and unchanged effective trust
// for every source claiming in the shard.
func (w *Wrangler) shardFuseReusable(sr *shardRun, i int) bool {
	m := w.memo
	if !w.StreamingRefresh || m == nil || i >= len(m.pages) || m.pages[i] == nil || i >= len(m.claims) {
		return false
	}
	if !m.fuse.compatible(sr.opts) {
		return false
	}
	if !fusion.ClaimsEqual(m.claims[i], sr.claims[i]) {
		return false
	}
	seen := map[string]bool{}
	for _, c := range sr.claims[i] {
		if seen[c.SourceID] {
			continue
		}
		seen[c.SourceID] = true
		if fusion.TrustOf(m.trustMap, m.fuse.defaultTrust, c.SourceID) !=
			fusion.TrustOf(sr.opts.Trust, sr.opts.DefaultTrust, c.SourceID) {
			return false
		}
	}
	return true
}

// recordTailMemo captures the just-merged tail as the next reaction's
// diff baseline. A full tail rebuilds the whole memo (and clears the
// accumulated dirty-source scope — everything is integrated now); a
// fuse-only tail updates just the fusion half, since union, plan and
// clusters did not move.
func (w *Wrangler) recordTailMemo(sr *shardRun) {
	if sr.empty {
		w.memo = nil
		return
	}
	if sr.fuseOnly {
		if w.memo == nil {
			return
		}
		w.memo.claims = sr.claims
		w.memo.pages = sr.pages
		w.memo.trust = sr.trustMemo
		w.memo.trustMap = maps.Clone(sr.opts.Trust)
		w.memo.fuse = newFuseSig(sr.opts)
		return
	}
	var ps *er.PlanState
	var err error
	if sr.rp != nil {
		// Streaming round: Commit folds the carried-over and freshly
		// computed pair scores into the next round's cache.
		ps, err = sr.rp.Commit(w.resolver, sr.rowKeys, sr.roots, sr.must, sr.cannot)
	} else {
		ps, err = er.BuildPlanState(w.resolver, sr.plan, sr.rowKeys, sr.roots, sr.must, sr.cannot)
	}
	if err != nil {
		// Defensive: an unrecordable plan just means the next reaction
		// runs a full tail.
		w.memo = nil
		return
	}
	rowIdx := make(map[string]int, len(sr.rowKeys))
	for i, k := range sr.rowKeys {
		rowIdx[k] = i
	}
	repaired := make(map[string]bool, len(w.repairedRows))
	for _, row := range w.repairedRows {
		repaired[sr.rowKeys[row]] = true
	}
	w.memo = &tailMemo{
		union:    w.union,
		rowKeys:  sr.rowKeys,
		rowIdx:   rowIdx,
		repaired: repaired,
		plan:     ps,
		claims:   sr.claims,
		pages:    sr.pages,
		trust:    sr.trustMemo,
		trustMap: maps.Clone(sr.opts.Trust),
		fuse:     newFuseSig(sr.opts),
	}
	w.dirtySources = nil
}
