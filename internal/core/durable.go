package core

import (
	"bytes"
	"fmt"
	"maps"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/er"
	"repro/internal/extract"
	"repro/internal/feedback"
	"repro/internal/fusion"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/wal"
)

// This file is the durable session layer: the bridge between the wrangler's
// working data and the generic append log in internal/wal. Every committed
// publication appends O(delta) to the log — feedback items and source states
// that changed since the last publish, the provenance derivations since the
// last recorded step, any freshly fused shard pages (each page is serialized
// exactly once and referenced by id thereafter, the persistent form of the
// PR-4 pointer-sharing delta), and one version record referencing them.
// Because the wrangler only publishes after a fully successful run or
// reaction, the log tail is always a coherent committed snapshot: reopening
// it restores the session exactly as of its last publish (uncommitted
// working-set mutations are the only loss, by design).
//
// Compaction is bounded by the serve store's retention window: once 2×retain
// versions accumulate since the last checkpoint, the log is rewritten to
// config + full feedback/provenance/source state + the pages still referenced
// by retained versions + the retained version records + a checkpoint marker.

// FsyncPolicy says when the durable log calls fsync; see wal.SyncPolicy.
type FsyncPolicy = wal.SyncPolicy

// The fsync policies, re-exported so facade callers need not import wal.
const (
	// FsyncOnCheckpoint fsyncs at checkpoints, compactions and close —
	// crash-safe against process death, bounded loss on power failure.
	FsyncOnCheckpoint = wal.SyncOnCheckpoint
	// FsyncAlways fsyncs after every published version.
	FsyncAlways = wal.SyncAlways
)

// logFileName is the log's file name inside the state directory.
const logFileName = "wrangle.wal"

// DurableStats reports the durable log's state for health endpoints.
type DurableStats struct {
	Dir               string
	Bytes             int64
	LastCheckpointSeq uint64
	RetainedVersions  int
}

// sourceSig is what appendVersion compares to detect a changed source
// state without deep comparison: computeSource installs a fresh pointer,
// and selection mutates selected/utility in place on the shared state.
type sourceSig struct {
	st       *sourceState
	selected bool
	utility  float64
}

// retainedVersion is one version inside the compaction ring: its encoded
// record (reused verbatim by Compact) and the page ids it references.
type retainedVersion struct {
	seq     uint64
	payload []byte
	pageIDs []uint64
}

// DurableLog is an open durable session log. It is driven entirely by the
// owning wrangler (under the session lock); it is not safe for concurrent
// use on its own.
type DurableLog struct {
	dir string
	log *wal.Log
	rep *replayedLog // replayed state, consumed by AttachDurableLog

	configPayload []byte
	schema        dataset.Schema

	pageIDs    map[*shardPage]uint64 // live page → id (dedup by pointer identity)
	pagesByID  map[uint64]*shardPage
	nextPageID uint64

	lastProvStep    uint64
	lastFeedbackSeq int
	srcSig          map[string]sourceSig

	retained       []retainedVersion
	retain         int
	sinceCompact   int
	lastCheckpoint uint64

	// replayTruncated records whether Open healed a torn tail — surfaced
	// as wrangle_wal_replay_truncations_total when telemetry attaches.
	replayTruncated bool
}

// replayedLog is everything OpenDurableLog recovered, pending attachment.
type replayedLog struct {
	feedback []feedback.Item
	prov     []provenance.Record
	states   map[string]*sourceState
	versions []*loggedVersion
}

// loggedVersion is one decoded version record.
type loggedVersion struct {
	seq     uint64
	step    uint64
	origin  serve.Origin
	at      time.Time
	changes serve.ChangeSet
	trust   map[string]float64
	sources map[string]SourceReport
	selected []string
	rep     *report.Report
	stats   RunStats
	react   ReactStats

	// Output payload: mode 1 references shard pages in shard order; mode 0
	// (sequential or empty tails) carries table, results and entities inline.
	pages    []uint64
	table    *dataset.Table
	results  []fusion.Result
	entities []string

	// Working tail needed to resume incrementally.
	clusters  *er.Clustering
	lastSeq   int
	dirty     []string
	memoValid bool
	fuse      fuseSig

	payload []byte // the encoded record, for the compaction ring
}

// --- payload codecs -------------------------------------------------------

// encodeConfigPayload fingerprints the session shape the log was written
// under. Attach refuses a log whose config differs: the byte format of
// pages and versions (schema width) and the restore semantics (shards,
// streaming, retention) all hang off it.
func encodeConfigPayload(w *Wrangler, retain int) []byte {
	var e wal.Encoder
	e.Schema(w.Config.Target)
	e.String(w.Config.KeyColumn)
	e.String(w.Config.NameColumn)
	e.String(w.Config.SecondaryColumn)
	e.String(w.Config.NumericColumn)
	e.String(w.Config.TimeColumn)
	e.Varint(int64(w.IntegrationShards))
	e.Bool(w.StreamingRefresh)
	e.Varint(int64(retain))
	return e.Bytes()
}

// decodeConfigSchema extracts the target schema from a config payload,
// validating the full record.
func decodeConfigSchema(payload []byte) (dataset.Schema, error) {
	d := wal.NewDecoder(payload)
	schema := d.Schema()
	for i := 0; i < 5; i++ {
		_ = d.String()
	}
	d.Int()
	d.Bool()
	d.Int()
	if err := d.Done(); err != nil {
		return nil, err
	}
	return schema, nil
}

// encodeSourcePayload writes one source's committed working state; a nil
// state is a tombstone (the source vanished from the session).
func encodeSourcePayload(id string, st *sourceState) []byte {
	var e wal.Encoder
	e.String(id)
	if st == nil {
		e.Bool(true)
		return e.Bytes()
	}
	e.Bool(false)
	if st.wrapper != nil {
		e.Bool(true)
		e.String(st.wrapper.SourceID)
		e.String(st.wrapper.RecordSelector)
		e.Uvarint(uint64(len(st.wrapper.Fields)))
		for _, f := range st.wrapper.Fields {
			e.String(f.Selector)
			e.String(f.Property)
			e.String(f.Header)
			e.Varint(int64(f.Index))
		}
		e.F64(st.wrapper.Confidence)
	} else {
		e.Bool(false)
	}
	if st.mapped != nil {
		e.Bool(true)
		e.Table(st.mapped)
	} else {
		e.Bool(false)
	}
	e.F64(st.quality.Accuracy)
	e.F64(st.quality.Completeness)
	e.F64(st.quality.Coverage)
	e.Varint(int64(st.quality.Rows))
	e.F64(st.scorecard.Completeness)
	e.F64(st.scorecard.Accuracy)
	e.F64(st.scorecard.Timeliness)
	e.F64(st.scorecard.Consistency)
	e.Varint(int64(st.scorecard.Rows))
	e.Bool(st.selected)
	e.F64(st.utility)
	return e.Bytes()
}

// decodeSourcePayload reads a source record. The raw extraction and the
// mapping object are not persisted: nothing reads them after install —
// reactions re-derive both when they re-process the source.
func decodeSourcePayload(payload []byte) (id string, st *sourceState, deleted bool, err error) {
	d := wal.NewDecoder(payload)
	id = d.String()
	if d.Bool() {
		return id, nil, true, d.Done()
	}
	st = &sourceState{}
	if d.Bool() {
		wr := &extract.Wrapper{SourceID: d.String(), RecordSelector: d.String()}
		n := d.Len(4)
		for i := 0; i < n; i++ {
			wr.Fields = append(wr.Fields, extract.FieldRule{
				Selector: d.String(), Property: d.String(), Header: d.String(), Index: d.Int(),
			})
			if d.Err() != nil {
				return id, nil, false, d.Err()
			}
		}
		wr.Confidence = d.F64()
		st.wrapper = wr
	}
	if d.Bool() {
		st.mapped = d.Table()
	}
	st.quality.Accuracy = d.F64()
	st.quality.Completeness = d.F64()
	st.quality.Coverage = d.F64()
	st.quality.Rows = d.Int()
	st.scorecard.Completeness = d.F64()
	st.scorecard.Accuracy = d.F64()
	st.scorecard.Timeliness = d.F64()
	st.scorecard.Consistency = d.F64()
	st.scorecard.Rows = d.Int()
	st.selected = d.Bool()
	st.utility = d.F64()
	return id, st, false, d.Done()
}

func encodeFeedbackPayload(it feedback.Item) []byte {
	var e wal.Encoder
	e.Varint(int64(it.Seq))
	e.String(string(it.Kind))
	e.String(it.SourceID)
	e.String(it.Entity)
	e.String(it.Attribute)
	e.String(it.PairKey)
	e.String(it.Worker)
	e.F64(it.Cost)
	e.F64(it.Weight)
	return e.Bytes()
}

func decodeFeedbackPayload(payload []byte) (feedback.Item, error) {
	d := wal.NewDecoder(payload)
	it := feedback.Item{
		Seq:       d.Int(),
		Kind:      feedback.Kind(d.String()),
		SourceID:  d.String(),
		Entity:    d.String(),
		Attribute: d.String(),
		PairKey:   d.String(),
		Worker:    d.String(),
		Cost:      d.F64(),
		Weight:    d.F64(),
	}
	return it, d.Done()
}

func encodeProvPayload(recs []provenance.Record) []byte {
	var e wal.Encoder
	e.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		e.String(string(r.Artefact.Kind))
		e.String(r.Artefact.ID)
		e.String(r.Component)
		e.Uvarint(uint64(len(r.Inputs)))
		for _, in := range r.Inputs {
			e.String(string(in.Kind))
			e.String(in.ID)
		}
		e.Uvarint(r.Step)
		e.String(r.Note)
	}
	return e.Bytes()
}

func decodeProvPayload(payload []byte) ([]provenance.Record, error) {
	d := wal.NewDecoder(payload)
	n := d.Len(6)
	out := make([]provenance.Record, 0, n)
	for i := 0; i < n; i++ {
		r := provenance.Record{
			Artefact:  provenance.Ref{Kind: provenance.Kind(d.String()), ID: d.String()},
			Component: d.String(),
		}
		m := d.Len(2)
		for j := 0; j < m; j++ {
			r.Inputs = append(r.Inputs, provenance.Ref{Kind: provenance.Kind(d.String()), ID: d.String()})
		}
		r.Step = d.Uvarint()
		r.Note = d.String()
		if d.Err() != nil {
			return nil, d.Err()
		}
		out = append(out, r)
	}
	return out, d.Done()
}

func encodeResults(e *wal.Encoder, rs []fusion.Result) {
	e.Uvarint(uint64(len(rs)))
	for _, r := range rs {
		e.String(r.Entity)
		e.String(r.Attribute)
		e.Value(r.Value)
		e.F64(r.Confidence)
		e.Varint(int64(r.Support))
		e.Bool(r.Conflict)
	}
}

func decodeResults(d *wal.Decoder) []fusion.Result {
	n := d.Len(6)
	if n == 0 {
		return nil
	}
	out := make([]fusion.Result, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fusion.Result{
			Entity:     d.String(),
			Attribute:  d.String(),
			Value:      d.Value(),
			Confidence: d.F64(),
			Support:    d.Int(),
			Conflict:   d.Bool(),
		})
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

// encodePagePayload serializes one fused shard page. Pages are written
// exactly once: later versions reference the page id, which is what keeps
// the log O(delta) per publish.
func encodePagePayload(id uint64, p *shardPage) []byte {
	var e wal.Encoder
	e.Uvarint(id)
	e.Uvarint(uint64(len(p.entities)))
	for i, ent := range p.entities {
		e.String(ent)
		e.Record(p.rows[i])
	}
	encodeResults(&e, p.results)
	return e.Bytes()
}

func decodePagePayload(payload []byte, schema dataset.Schema) (uint64, *shardPage, error) {
	d := wal.NewDecoder(payload)
	id := d.Uvarint()
	n := d.Len(1 + len(schema))
	p := &shardPage{}
	for i := 0; i < n; i++ {
		p.entities = append(p.entities, d.String())
		p.rows = append(p.rows, d.Record(len(schema)))
		if d.Err() != nil {
			return 0, nil, d.Err()
		}
	}
	p.results = decodeResults(d)
	return id, p, d.Done()
}

func encodeStringF64Map(e *wal.Encoder, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.F64(m[k])
	}
}

func decodeStringF64Map(d *wal.Decoder) map[string]float64 {
	n := d.Len(9)
	m := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := d.String()
		m[k] = d.F64()
		if d.Err() != nil {
			return nil
		}
	}
	return m
}

func encodeStringMap(e *wal.Encoder, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.String(m[k])
	}
}

func decodeStringMap(d *wal.Decoder) map[string]string {
	n := d.Len(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := d.String()
		m[k] = d.String()
		if d.Err() != nil {
			return nil
		}
	}
	return m
}

func encodeStageMap(e *wal.Encoder, m map[string]time.Duration) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.Duration(m[k])
	}
}

func decodeStageMap(d *wal.Decoder) map[string]time.Duration {
	n := d.Len(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]time.Duration, n)
	for i := 0; i < n; i++ {
		k := d.String()
		m[k] = d.Duration()
		if d.Err() != nil {
			return nil
		}
	}
	return m
}

func encodeChangeSet(e *wal.Encoder, cs serve.ChangeSet) {
	e.Bool(cs.Full)
	e.Uvarint(uint64(len(cs.ChangedShards)))
	for _, s := range cs.ChangedShards {
		e.Varint(int64(s))
	}
	e.Varint(int64(cs.ChangedPages))
	e.Varint(int64(cs.SharedPages))
	e.Strings(cs.ChangedRecords)
	e.Strings(cs.RemovedRecords)
}

func decodeChangeSet(d *wal.Decoder) serve.ChangeSet {
	cs := serve.ChangeSet{Full: d.Bool()}
	n := d.Len(1)
	for i := 0; i < n; i++ {
		cs.ChangedShards = append(cs.ChangedShards, d.Int())
	}
	cs.ChangedPages = d.Int()
	cs.SharedPages = d.Int()
	cs.ChangedRecords = d.Strings()
	cs.RemovedRecords = d.Strings()
	return cs
}

// encodeVersionPayload writes one published version: its store metadata,
// the full Published payload (pages by reference when the sharded tail
// built them, inline otherwise), and the working tail a restart needs to
// resume incrementally — clusters, feedback watermark, dirty-source scope
// and the fusion signature of the memoized tail.
func encodeVersionPayload(w *Wrangler, v *PublishedVersion, pids []uint64) []byte {
	pub := v.Data()
	var e wal.Encoder
	e.U64(v.Seq())
	e.U64(v.Step())
	e.String(string(v.Origin()))
	e.Time(v.At())
	encodeChangeSet(&e, v.Changes())
	encodeStringF64Map(&e, pub.Trust)

	srcIDs := make([]string, 0, len(pub.Sources))
	for id := range pub.Sources {
		srcIDs = append(srcIDs, id)
	}
	sort.Strings(srcIDs)
	e.Uvarint(uint64(len(srcIDs)))
	for _, id := range srcIDs {
		sr := pub.Sources[id]
		e.String(id)
		e.Bool(sr.Selected)
		e.F64(sr.Utility)
		e.Varint(int64(sr.Rows))
		e.F64(sr.Completeness)
		e.F64(sr.Accuracy)
		e.F64(sr.Timeliness)
		e.F64(sr.Coverage)
	}
	e.Strings(pub.Selected)

	// The report is persisted inline: its supporter lists derive from this
	// version's union-time fusion bookkeeping, which is not reconstructible
	// for older retained versions. Pages still dedup the heavy table data.
	if pub.Report != nil {
		e.Bool(true)
		e.String(pub.Report.Title)
		e.Uvarint(uint64(len(pub.Report.Lines)))
		for _, ln := range pub.Report.Lines {
			e.String(ln.Entity)
			e.String(ln.Attribute)
			e.String(ln.Value)
			e.F64(ln.Confidence)
			e.Bool(ln.Conflict)
			e.Strings(ln.Supporters)
		}
	} else {
		e.Bool(false)
	}

	st := pub.Stats
	e.Varint(int64(st.SourcesProcessed))
	e.Varint(int64(st.SourcesSelected))
	e.Varint(int64(st.RowsExtracted))
	e.Varint(int64(st.RowsWrangled))
	e.Strings(st.Reextracted)
	e.Varint(int64(st.WrapperRepairs))
	encodeStringMap(&e, st.Failures)
	e.Duration(st.Duration)
	encodeStageMap(&e, st.Stages)

	rs := pub.React
	e.Varint(int64(rs.FeedbackItems))
	e.Varint(int64(rs.SourcesReextracted))
	e.Varint(int64(rs.Remapped))
	e.Bool(rs.Reclustered)
	e.Bool(rs.Refused)
	e.Varint(int64(rs.ShardsResolved))
	e.Varint(int64(rs.ShardsReused))
	e.Duration(rs.Duration)
	encodeStageMap(&e, rs.Stages)

	if pids != nil {
		e.U8(1)
		e.Uvarint(uint64(len(pids)))
		for _, pid := range pids {
			e.Uvarint(pid)
		}
	} else {
		e.U8(0)
		e.Table(pub.Table)
		encodeResults(&e, w.results)
		e.Strings(pub.Entities)
	}

	if w.clusters != nil {
		e.Bool(true)
		e.Varint(int64(w.clusters.Num))
		e.Uvarint(uint64(len(w.clusters.Assign)))
		for _, a := range w.clusters.Assign {
			e.Varint(int64(a))
		}
	} else {
		e.Bool(false)
	}
	e.Varint(int64(w.lastSeq))
	dirty := make([]string, 0, len(w.dirtySources))
	for id := range w.dirtySources {
		dirty = append(dirty, id)
	}
	sort.Strings(dirty)
	e.Strings(dirty)
	if w.memo != nil {
		e.Bool(true)
		e.Varint(int64(w.memo.fuse.policy))
		e.F64(w.memo.fuse.defaultTrust)
		e.F64(w.memo.fuse.tolerance)
		e.Time(w.memo.fuse.now)
		e.Duration(w.memo.fuse.halfLife)
	} else {
		e.Bool(false)
	}
	return e.Bytes()
}

func decodeVersionPayload(payload []byte) (*loggedVersion, error) {
	d := wal.NewDecoder(payload)
	lv := &loggedVersion{
		seq:    d.U64(),
		step:   d.U64(),
		origin: serve.Origin(d.String()),
		at:     d.Time(),
	}
	lv.changes = decodeChangeSet(d)
	lv.trust = decodeStringF64Map(d)

	n := d.Len(2)
	lv.sources = make(map[string]SourceReport, n)
	for i := 0; i < n; i++ {
		id := d.String()
		lv.sources[id] = SourceReport{
			Selected:     d.Bool(),
			Utility:      d.F64(),
			Rows:         d.Int(),
			Completeness: d.F64(),
			Accuracy:     d.F64(),
			Timeliness:   d.F64(),
			Coverage:     d.F64(),
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
	}
	lv.selected = d.Strings()

	if d.Bool() {
		rep := &report.Report{Title: d.String()}
		m := d.Len(12)
		for i := 0; i < m; i++ {
			rep.Lines = append(rep.Lines, report.Line{
				Entity:     d.String(),
				Attribute:  d.String(),
				Value:      d.String(),
				Confidence: d.F64(),
				Conflict:   d.Bool(),
				Supporters: d.Strings(),
			})
			if d.Err() != nil {
				return nil, d.Err()
			}
		}
		lv.rep = rep
	}

	lv.stats = RunStats{
		SourcesProcessed: d.Int(),
		SourcesSelected:  d.Int(),
		RowsExtracted:    d.Int(),
		RowsWrangled:     d.Int(),
		Reextracted:      d.Strings(),
		WrapperRepairs:   d.Int(),
		Failures:         decodeStringMap(d),
		Duration:         d.Duration(),
		Stages:           decodeStageMap(d),
	}
	lv.react = ReactStats{
		FeedbackItems:      d.Int(),
		SourcesReextracted: d.Int(),
		Remapped:           d.Int(),
		Reclustered:        d.Bool(),
		Refused:            d.Bool(),
		ShardsResolved:     d.Int(),
		ShardsReused:       d.Int(),
		Duration:           d.Duration(),
		Stages:             decodeStageMap(d),
	}

	switch mode := d.U8(); mode {
	case 1:
		np := d.Len(1)
		lv.pages = make([]uint64, 0, np)
		for i := 0; i < np; i++ {
			lv.pages = append(lv.pages, d.Uvarint())
		}
	case 0:
		lv.table = d.Table()
		lv.results = decodeResults(d)
		lv.entities = d.Strings()
	default:
		d.Failf("invalid version payload mode 0x%x", mode)
	}

	if d.Bool() {
		c := &er.Clustering{Num: d.Int()}
		na := d.Len(1)
		c.Assign = make([]int, 0, na)
		for i := 0; i < na; i++ {
			c.Assign = append(c.Assign, d.Int())
		}
		lv.clusters = c
	}
	lv.lastSeq = d.Int()
	lv.dirty = d.Strings()
	if d.Bool() {
		lv.memoValid = true
		lv.fuse = fuseSig{
			policy:       fusion.Policy(d.Int()),
			defaultTrust: d.F64(),
			tolerance:    d.F64(),
			now:          d.Time(),
			halfLife:     d.Duration(),
		}
		if lv.fuse.policy < 0 || lv.fuse.policy > fusion.FreshnessWeighted {
			d.Failf("invalid fusion policy %d", lv.fuse.policy)
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return lv, nil
}

// --- open / replay --------------------------------------------------------

// OpenDurableLog opens (or creates) the durable log in dir and replays it.
// The result carries the replayed state until a wrangler attaches it; a
// torn tail is healed by the wal layer, and any record that fails domain
// decoding fails the open with the record's file offset.
func OpenDurableLog(dir string, policy FsyncPolicy) (*DurableLog, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: durable log needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: durable log: %w", err)
	}
	log, rr, err := wal.Open(filepath.Join(dir, logFileName), policy)
	if err != nil {
		return nil, err
	}
	d := &DurableLog{
		dir:             dir,
		log:             log,
		pageIDs:         map[*shardPage]uint64{},
		pagesByID:       map[uint64]*shardPage{},
		nextPageID:      1,
		srcSig:          map[string]sourceSig{},
		rep:             &replayedLog{states: map[string]*sourceState{}},
		replayTruncated: rr.Truncated,
	}
	fail := func(rec wal.Record, err error) (*DurableLog, error) {
		log.Close()
		return nil, fmt.Errorf("core: durable log: record kind 0x%x at offset 0x%x: %w", uint8(rec.Kind), rec.Offset, err)
	}
	var schema dataset.Schema
	haveConfig := false
	for _, rec := range rr.Records {
		if !haveConfig && rec.Kind != wal.KindConfig {
			return fail(rec, fmt.Errorf("expected config as first record"))
		}
		switch rec.Kind {
		case wal.KindConfig:
			if haveConfig {
				return fail(rec, fmt.Errorf("duplicate config record"))
			}
			schema, err = decodeConfigSchema(rec.Payload)
			if err != nil {
				return fail(rec, err)
			}
			d.configPayload = append([]byte(nil), rec.Payload...)
			d.schema = schema
			haveConfig = true
		case wal.KindSource:
			id, st, deleted, err := decodeSourcePayload(rec.Payload)
			if err != nil {
				return fail(rec, err)
			}
			if deleted {
				delete(d.rep.states, id)
			} else {
				d.rep.states[id] = st
			}
		case wal.KindFeedback:
			it, err := decodeFeedbackPayload(rec.Payload)
			if err != nil {
				return fail(rec, err)
			}
			if it.Seq != len(d.rep.feedback)+1 {
				return fail(rec, fmt.Errorf("feedback seq %d out of order (want %d)", it.Seq, len(d.rep.feedback)+1))
			}
			d.rep.feedback = append(d.rep.feedback, it)
			d.lastFeedbackSeq = it.Seq
		case wal.KindProv:
			recs, err := decodeProvPayload(rec.Payload)
			if err != nil {
				return fail(rec, err)
			}
			d.rep.prov = append(d.rep.prov, recs...)
			for _, r := range recs {
				if r.Step > d.lastProvStep {
					d.lastProvStep = r.Step
				}
			}
		case wal.KindPage:
			id, p, err := decodePagePayload(rec.Payload, schema)
			if err != nil {
				return fail(rec, err)
			}
			if _, dup := d.pagesByID[id]; dup {
				return fail(rec, fmt.Errorf("duplicate page id %d", id))
			}
			d.pagesByID[id] = p
			d.pageIDs[p] = id
			if id >= d.nextPageID {
				d.nextPageID = id + 1
			}
		case wal.KindVersion:
			lv, err := decodeVersionPayload(rec.Payload)
			if err != nil {
				return fail(rec, err)
			}
			lv.payload = append([]byte(nil), rec.Payload...)
			if n := len(d.rep.versions); n > 0 && lv.seq <= d.rep.versions[n-1].seq {
				return fail(rec, fmt.Errorf("version seq %d out of order after %d", lv.seq, d.rep.versions[n-1].seq))
			}
			d.rep.versions = append(d.rep.versions, lv)
			d.sinceCompact++
		case wal.KindCheckpoint:
			cd := wal.NewDecoder(rec.Payload)
			seq := cd.U64()
			cd.Time()
			if err := cd.Done(); err != nil {
				return fail(rec, err)
			}
			d.lastCheckpoint = seq
			d.sinceCompact = 0
		default:
			return fail(rec, fmt.Errorf("unknown record kind"))
		}
	}
	return d, nil
}

// Dir returns the state directory the log lives in.
func (d *DurableLog) Dir() string { return d.dir }

// instrument wires the underlying WAL's activity counters onto reg and
// records whether this log's open had to heal a torn tail.
func (d *DurableLog) instrument(reg *obs.Registry) {
	d.log.Instrument(reg)
	reg.Help(mReplayTrunc, "Torn WAL tails healed by replay at open.")
	c := reg.Counter(mReplayTrunc)
	if d.replayTruncated {
		c.Inc()
	}
}

// Err returns the log's sticky write error, if any.
func (d *DurableLog) Err() error { return d.log.Err() }

// Stats reports the log's durability state.
func (d *DurableLog) Stats() DurableStats {
	return DurableStats{
		Dir:               d.dir,
		Bytes:             d.log.Size(),
		LastCheckpointSeq: d.lastCheckpoint,
		RetainedVersions:  len(d.retained),
	}
}

// Close flushes and closes the underlying log file.
func (d *DurableLog) Close() error { return d.log.Close() }

// --- attach / restore -----------------------------------------------------

// AttachDurableLog wires the log into the wrangler: a fresh log records the
// session config; an existing one restores the serve store, the working
// data and the streaming memo inputs, so the wrangler resumes exactly as of
// its last publish. It must be called on a freshly constructed wrangler
// (before any run). restored reports whether the log held committed
// versions — when true, the caller can serve immediately without a run.
func (w *Wrangler) AttachDurableLog(d *DurableLog) (restored bool, err error) {
	if d == nil || d.log == nil {
		return false, fmt.Errorf("core: attach: nil durable log")
	}
	if w.log != nil {
		return false, fmt.Errorf("core: attach: wrangler already has a durable log")
	}
	if d.rep == nil {
		return false, fmt.Errorf("core: attach: durable log already attached")
	}
	if w.Serve == nil || w.Serve.Latest() != nil {
		return false, fmt.Errorf("core: attach requires a fresh serve store")
	}
	d.retain = w.Serve.Retain()
	cfg := encodeConfigPayload(w, d.retain)
	if d.configPayload == nil {
		if err := d.log.Append(wal.KindConfig, cfg); err != nil {
			return false, err
		}
		if err := d.log.Commit(); err != nil {
			return false, err
		}
		d.configPayload = cfg
		d.schema = w.Config.Target
	} else if !bytes.Equal(d.configPayload, cfg) {
		return false, fmt.Errorf("core: attach: durable log %s was written under a different session configuration (schema/shards/streaming/retention)", d.dir)
	}
	d.schema = w.Config.Target
	rep := d.rep
	d.rep = nil

	// Feedback replays through the store so derived state (spent budget,
	// sequence) rebuilds exactly; the store re-assigns the same seqs
	// because items were logged in order.
	for _, it := range rep.feedback {
		got := w.Feedback.Add(it)
		if got.Seq != it.Seq {
			return false, fmt.Errorf("core: attach: feedback replay drift (seq %d became %d)", it.Seq, got.Seq)
		}
	}
	for id, st := range rep.states {
		w.states[id] = st
	}
	for id, st := range rep.states {
		d.srcSig[id] = sourceSig{st: st, selected: st.selected, utility: st.utility}
	}
	var floor uint64
	if n := len(rep.versions); n > 0 {
		floor = rep.versions[n-1].step
	}
	w.Prov.Apply(rep.prov, floor)

	if len(rep.versions) == 0 {
		w.log = d
		return false, nil
	}

	versions := rep.versions
	if len(versions) > d.retain {
		versions = versions[len(versions)-d.retain:]
	}
	restoredVersions := make([]serve.RestoredVersion[Published], 0, len(versions))
	for _, lv := range versions {
		pub, err := d.rebuildPublished(lv)
		if err != nil {
			return false, err
		}
		restoredVersions = append(restoredVersions, serve.RestoredVersion[Published]{
			Seq: lv.seq, Step: lv.step, Origin: lv.origin, At: lv.at, Data: pub, Changes: lv.changes,
		})
	}
	if err := w.Serve.Restore(restoredVersions); err != nil {
		return false, err
	}
	for _, lv := range versions {
		d.retained = append(d.retained, retainedVersion{seq: lv.seq, payload: lv.payload, pageIDs: lv.pages})
	}

	if err := w.restoreWorkingState(d, versions[len(versions)-1]); err != nil {
		return false, err
	}
	w.log = d
	return true, nil
}

// rebuildPublished reconstructs one version's Published payload. Mode-1
// versions rebuild table, results and entities from their shard pages —
// versions sharing a page id share the reconstructed records by pointer,
// restoring the delta-retention property on the way in.
func (d *DurableLog) rebuildPublished(lv *loggedVersion) (Published, error) {
	pub := Published{
		Report:   lv.rep,
		Stats:    lv.stats,
		React:    lv.react,
		Trust:    lv.trust,
		Sources:  lv.sources,
		Selected: lv.selected,
	}
	if lv.pages == nil {
		pub.Table = lv.table
		pub.Entities = lv.entities
		return pub, nil
	}
	pages := make([]*shardPage, len(lv.pages))
	for i, pid := range lv.pages {
		p, ok := d.pagesByID[pid]
		if !ok {
			return Published{}, fmt.Errorf("core: version %d references missing page %d", lv.seq, pid)
		}
		pages[i] = p
	}
	table, entities := mergePages(pages, d.schema)
	pub.Table = table
	pub.Entities = entities
	return pub, nil
}

// mergePages assembles a wrangled table from shard pages exactly as the
// live merge does: entities are disjoint across pages, so sorting the
// concatenation by entity reproduces the canonical row order, and the
// table rows alias the page records (publication's pointer-sharing).
func mergePages(pages []*shardPage, schema dataset.Schema) (*dataset.Table, []string) {
	type entityRow struct {
		entity string
		row    dataset.Record
	}
	var all []entityRow
	for _, p := range pages {
		for j, e := range p.entities {
			all = append(all, entityRow{entity: e, row: p.rows[j]})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].entity < all[b].entity })
	out := dataset.NewTable(schema.Clone())
	entities := make([]string, len(all))
	for i, e := range all {
		out.Append(e.row)
		entities[i] = e.entity
	}
	return out, entities
}

// restoreWorkingState rebuilds the wrangler's in-memory tail from the
// newest retained version: the union and resolver are recomputed
// deterministically from the restored states and feedback (the same code
// path a live tail runs), the fused output is adopted from the version's
// pages (or inline payload), and — when the version committed a coherent
// streaming memo — the memo's inputs are reconstructed so the first
// reaction after restart is a partial tail.
func (w *Wrangler) restoreWorkingState(d *DurableLog, lv *loggedVersion) error {
	w.clusters = lv.clusters
	empty, err := w.buildUnion()
	if err != nil {
		return err
	}
	w.trust = maps.Clone(lv.trust)
	w.LastStats = lv.stats
	w.lastSeq = lv.lastSeq
	if len(lv.dirty) > 0 {
		w.dirtySources = map[string]bool{}
		for _, id := range lv.dirty {
			w.dirtySources[id] = true
		}
	}
	// buildUnion's empty path resets the outputs and stamps a Full change;
	// restore the committed change set either way (clusters were already
	// reinstated above — buildUnion never touches them).
	w.lastChange = lv.changes
	if empty {
		return nil
	}

	if lv.pages == nil {
		if lv.table == nil {
			return fmt.Errorf("core: version %d has no output payload", lv.seq)
		}
		w.wrangled = lv.table.Clone()
		w.results = lv.results
		w.rowEntities = append([]string(nil), lv.entities...)
		w.pages = nil
		w.entityShard = nil
	} else {
		pages := make([]*shardPage, len(lv.pages))
		for i, pid := range lv.pages {
			p, ok := d.pagesByID[pid]
			if !ok {
				return fmt.Errorf("core: version %d references missing page %d", lv.seq, pid)
			}
			pages[i] = p
		}
		w.pages = pages
		entityShard := map[string]int{}
		for i, p := range pages {
			for _, e := range p.entities {
				if _, ok := entityShard[e]; !ok {
					entityShard[e] = i
				}
			}
		}
		w.entityShard = entityShard
		parts := make([][]fusion.Result, len(pages))
		for i, p := range pages {
			parts[i] = p.results
		}
		w.results = fusion.MergeResults(parts...)
		w.wrangled, w.rowEntities = mergePages(pages, d.schema)
	}
	w.supporters = nil
	if w.clusters == nil || len(w.clusters.Assign) != w.union.Len() {
		return fmt.Errorf("core: version %d clusters do not cover the restored union (%d rows)", lv.seq, w.union.Len())
	}
	w.entityIDs = w.entityNames()
	w.LastStats.RowsWrangled = lv.stats.RowsWrangled

	// Rebuild the streaming memo only when the persisted tail is coherent:
	// the memo was valid at publish, the session still shards + streams,
	// and no source state diverged from the memoized union afterwards
	// (non-empty dirty means an aborted reaction installed sources between
	// publishes — the rebuilt union would not be the memo's union). A
	// failed rebuild degrades to a full first tail, never an error: outputs
	// stay byte-identical either way.
	if lv.memoValid && w.StreamingRefresh && w.IntegrationShards > 0 && len(w.pages) > 0 && len(lv.dirty) == 0 {
		w.rebuildMemo(lv)
	}
	return nil
}

// rebuildMemo reconstructs the tail memo's inputs from the restored union
// and clusters. Shard plans, cluster representatives and claim partitions
// are all deterministic functions of what was restored; the trust memo
// warm-start state — including the per-component converged results — is
// not persisted (nil is always a valid cold start for EstimateTrustWarm
// and is float-exact; the first warm reaction rebuilds the component
// memo by recomputing every component once), and the fusion signature
// comes from the persisted record — not the live clock — so page reuse
// remains exactly as conservative as it was before the restart.
func (w *Wrangler) rebuildMemo(lv *loggedVersion) {
	must, cannot := w.pairConstraints()
	rowKeys := w.rowKeys()
	plan, err := w.resolver.PlanShards(w.union, w.IntegrationShards, must, rowKeys)
	if err != nil || plan.NumShards != len(w.pages) {
		return
	}
	roots := make([]map[int]int, plan.NumShards)
	for s, rows := range plan.Rows {
		m := make(map[int]int, len(rows))
		repOf := map[int]int{}
		for _, row := range rows {
			cid := w.clusters.Assign[row]
			rep, ok := repOf[cid]
			if !ok {
				rep = row
				repOf[cid] = row
			}
			m[row] = rep
		}
		roots[s] = m
	}
	ps, err := er.BuildPlanState(w.resolver, plan, rowKeys, roots, must, cannot)
	if err != nil {
		return
	}
	claims := w.buildClaims()
	parts := make([][]fusion.Claim, len(w.pages))
	for _, c := range claims {
		s, ok := w.entityShard[c.Entity]
		if !ok || s < 0 || s >= len(parts) {
			return
		}
		parts[s] = append(parts[s], c)
	}
	rowIdx := make(map[string]int, len(rowKeys))
	for i, k := range rowKeys {
		rowIdx[k] = i
	}
	repaired := make(map[string]bool, len(w.repairedRows))
	for _, row := range w.repairedRows {
		repaired[rowKeys[row]] = true
	}
	w.memo = &tailMemo{
		union:    w.union,
		rowKeys:  rowKeys,
		rowIdx:   rowIdx,
		repaired: repaired,
		plan:     ps,
		claims:   parts,
		pages:    w.pages,
		trust:    nil,
		trustMap: maps.Clone(lv.trust),
		fuse:     lv.fuse,
	}
}

// --- append ---------------------------------------------------------------

// appendFeedback logs one accepted feedback item as it arrives, so a crash
// between feedback and the next publish loses no paid-for labels. Errors
// are sticky on the log handle and surface via Err/Checkpoint/Close.
func (d *DurableLog) appendFeedback(it feedback.Item) {
	if it.Seq <= d.lastFeedbackSeq {
		return
	}
	_ = d.log.Append(wal.KindFeedback, encodeFeedbackPayload(it))
	_ = d.log.Commit()
	d.lastFeedbackSeq = it.Seq
}

// appendVersion logs everything one committed publication changed: new
// feedback (catch-up for items added outside the AddFeedback hook), source
// states whose working data moved, the provenance delta, any freshly built
// shard pages, and the version record itself. One Commit flushes the
// batch; compaction triggers once 2×retain versions accumulate.
func (d *DurableLog) appendVersion(w *Wrangler, v *PublishedVersion) {
	for _, it := range w.Feedback.Since(d.lastFeedbackSeq) {
		_ = d.log.Append(wal.KindFeedback, encodeFeedbackPayload(it))
		d.lastFeedbackSeq = it.Seq
	}

	ids := make([]string, 0, len(w.states))
	for id := range w.states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := w.states[id]
		sig, ok := d.srcSig[id]
		if ok && sig.st == st && sig.selected == st.selected && sig.utility == st.utility {
			continue
		}
		_ = d.log.Append(wal.KindSource, encodeSourcePayload(id, st))
		d.srcSig[id] = sourceSig{st: st, selected: st.selected, utility: st.utility}
	}
	var gone []string
	for id := range d.srcSig {
		if _, ok := w.states[id]; !ok {
			gone = append(gone, id)
		}
	}
	sort.Strings(gone)
	for _, id := range gone {
		_ = d.log.Append(wal.KindSource, encodeSourcePayload(id, nil))
		delete(d.srcSig, id)
	}

	if recs := w.Prov.RecordsSince(d.lastProvStep); len(recs) > 0 {
		_ = d.log.Append(wal.KindProv, encodeProvPayload(recs))
	}
	d.lastProvStep = w.Prov.Step()

	var pids []uint64
	if w.pages != nil {
		pids = make([]uint64, len(w.pages))
		for i, p := range w.pages {
			id, ok := d.pageIDs[p]
			if !ok {
				id = d.nextPageID
				d.nextPageID++
				d.pageIDs[p] = id
				d.pagesByID[id] = p
				_ = d.log.Append(wal.KindPage, encodePagePayload(id, p))
			}
			pids[i] = id
		}
	}
	payload := encodeVersionPayload(w, v, pids)
	_ = d.log.Append(wal.KindVersion, payload)
	_ = d.log.Commit()

	d.retained = append(d.retained, retainedVersion{seq: v.Seq(), payload: payload, pageIDs: pids})
	if len(d.retained) > d.retain {
		d.retained = d.retained[len(d.retained)-d.retain:]
	}
	d.sinceCompact++
	if d.sinceCompact >= 2*d.retain {
		d.compact(w)
	}
}

// compact rewrites the log to its minimal coherent form — config, full
// feedback and provenance, every current source state, the pages still
// referenced by retained versions, the retained version records and a
// checkpoint marker — then prunes the in-memory page index to the live
// set. A page that was pruned but is still held by the streaming memo
// simply gets a fresh id if a later tail reuses it.
func (d *DurableLog) compact(w *Wrangler) {
	if len(d.retained) == 0 {
		return
	}
	var recs []wal.Data
	recs = append(recs, wal.Data{Kind: wal.KindConfig, Payload: d.configPayload})
	for _, it := range w.Feedback.Items("") {
		recs = append(recs, wal.Data{Kind: wal.KindFeedback, Payload: encodeFeedbackPayload(it)})
	}
	if prov := w.Prov.RecordsSince(0); len(prov) > 0 {
		recs = append(recs, wal.Data{Kind: wal.KindProv, Payload: encodeProvPayload(prov)})
	}
	ids := make([]string, 0, len(w.states))
	for id := range w.states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		recs = append(recs, wal.Data{Kind: wal.KindSource, Payload: encodeSourcePayload(id, w.states[id])})
	}
	live := map[uint64]bool{}
	for _, rv := range d.retained {
		for _, pid := range rv.pageIDs {
			live[pid] = true
		}
	}
	livePids := make([]uint64, 0, len(live))
	for pid := range live {
		livePids = append(livePids, pid)
	}
	sort.Slice(livePids, func(i, j int) bool { return livePids[i] < livePids[j] })
	for _, pid := range livePids {
		recs = append(recs, wal.Data{Kind: wal.KindPage, Payload: encodePagePayload(pid, d.pagesByID[pid])})
	}
	for _, rv := range d.retained {
		recs = append(recs, wal.Data{Kind: wal.KindVersion, Payload: rv.payload})
	}
	lastSeq := d.retained[len(d.retained)-1].seq
	var ck wal.Encoder
	ck.U64(lastSeq)
	ck.Time(time.Now())
	recs = append(recs, wal.Data{Kind: wal.KindCheckpoint, Payload: ck.Bytes()})

	if err := d.log.Compact(recs); err != nil {
		return // sticky on the handle; surfaced via Err/Checkpoint/Close
	}
	d.sinceCompact = 0
	d.lastCheckpoint = lastSeq
	d.lastProvStep = w.Prov.Step()
	if n := w.Feedback.Len(); n > d.lastFeedbackSeq {
		d.lastFeedbackSeq = n
	}
	pagesByID := make(map[uint64]*shardPage, len(live))
	pageIDs := make(map[*shardPage]uint64, len(live))
	for pid := range live {
		p := d.pagesByID[pid]
		pagesByID[pid] = p
		pageIDs[p] = pid
	}
	d.pagesByID = pagesByID
	d.pageIDs = pageIDs
}

// Durable returns the attached durable log, or nil for in-memory sessions.
func (w *Wrangler) Durable() *DurableLog { return w.log }

// Checkpoint forces a compaction cycle (when any version has been
// published) and fsyncs the log: on return, everything committed so far is
// durable against power loss, and the log is at its minimal size.
func (w *Wrangler) Checkpoint() error {
	if w.log == nil {
		return fmt.Errorf("core: no durable log attached")
	}
	if len(w.log.retained) > 0 {
		w.log.compact(w)
	}
	if err := w.log.Err(); err != nil {
		return err
	}
	return w.log.log.Sync()
}
