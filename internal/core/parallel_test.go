package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/sources"
)

// runFingerprint renders everything externally observable about a
// completed run: the wrangled table bytes, stats, selection, trust and
// provenance-visible re-extraction order. Two runs with equal
// fingerprints are byte-identical for every consumer of the wrangler.
func runFingerprint(t *testing.T, w *Wrangler) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(w.Wrangled().String())
	fmt.Fprintf(&b, "processed=%d selected=%d rowsExtracted=%d rowsWrangled=%d repairs=%d\n",
		w.LastStats.SourcesProcessed, w.LastStats.SourcesSelected,
		w.LastStats.RowsExtracted, w.LastStats.RowsWrangled, w.LastStats.WrapperRepairs)
	fmt.Fprintf(&b, "reextracted=%v\n", w.LastStats.Reextracted)
	failIDs := make([]string, 0, len(w.LastStats.Failures))
	for id := range w.LastStats.Failures {
		failIDs = append(failIDs, id)
	}
	sort.Strings(failIDs)
	fmt.Fprintf(&b, "failures=%v\n", failIDs)
	fmt.Fprintf(&b, "selectedIDs=%v\n", w.SelectedSources())
	trustIDs := make([]string, 0, len(w.Trust()))
	for id := range w.Trust() {
		trustIDs = append(trustIDs, id)
	}
	sort.Strings(trustIDs)
	for _, id := range trustIDs {
		fmt.Fprintf(&b, "trust[%s]=%.6f\n", id, w.Trust()[id])
	}
	fmt.Fprintf(&b, "prov=%d\n", w.Prov.Len())
	return b.String()
}

// TestParallelRunByteIdenticalToSequential is the engine's determinism
// contract: the same universe wrangled sequentially and with 2, 4 and 8
// workers must produce identical wrangled bytes, stats and working data.
func TestParallelRunByteIdenticalToSequential(t *testing.T) {
	newWrangler := func(parallelism int) *Wrangler {
		u := buildUniverse(77, 14, false)
		w := New(u, ProductConfig(), nil, fullDataCtx(u))
		w.Parallelism = parallelism
		return w
	}
	seq := newWrangler(1)
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	want := runFingerprint(t, seq)
	if !strings.Contains(want, "SKU") {
		t.Fatalf("sequential run produced no data:\n%s", want)
	}
	for _, workers := range []int{2, 4, 8} {
		par := newWrangler(workers)
		if _, err := par.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := runFingerprint(t, par); got != want {
			t.Errorf("workers=%d: run diverged from sequential run\n--- sequential ---\n%s\n--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestParallelRefreshByteIdenticalToSequential covers the batched refresh
// path: after the same churn, a parallel batch refresh must leave the
// working data identical to a sequential one.
func TestParallelRefreshByteIdenticalToSequential(t *testing.T) {
	run := func(parallelism int) string {
		u := buildUniverse(91, 10, false)
		w := New(u, ProductConfig(), nil, fullDataCtx(u))
		w.Parallelism = parallelism
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		u.World.Evolve(0.2)
		var ids []string
		for _, s := range u.Sources {
			ids = append(ids, s.ID)
		}
		if _, err := w.RefreshSourcesContext(context.Background(), ids); err != nil {
			t.Fatalf("parallelism=%d refresh: %v", parallelism, err)
		}
		return runFingerprint(t, w)
	}
	want := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: refresh diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestRunCancellationLeavesStateConsistent cancels a run mid-fan-out and
// checks the contract: ctx.Err() comes back, and no source was merged or
// marked selected — outcomes only install at the selection barrier.
func TestRunCancellationLeavesStateConsistent(t *testing.T) {
	u := buildUniverse(55, 12, false)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	w.Parallelism = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the fan-out dispatches anything
	if _, err := w.RunContext(ctx); err != context.Canceled {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if w.Wrangled() != nil {
		t.Error("cancelled run produced a wrangled table")
	}
	if got := w.SelectedSources(); len(got) != 0 {
		t.Errorf("cancelled run selected sources %v", got)
	}
	if len(w.states) != 0 {
		t.Errorf("cancelled run installed %d source states", len(w.states))
	}
}

// TestWrapperReuseAndReinduction pins the wrapper lifecycle: a
// re-processed HTML source reuses (a clone of) its stored wrapper and
// only repairs it, while reinduce — the wrapper_broken reaction —
// discards it and learns afresh.
func TestWrapperReuseAndReinduction(t *testing.T) {
	u := buildUniverse(42, 12, false)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	var s *sources.Source
	for _, c := range u.Sources {
		if c.Kind == sources.KindHTML {
			s = c
			break
		}
	}
	if s == nil {
		t.Fatal("universe has no HTML source")
	}
	first := w.computeSource(s, nil, false)
	if first.err != nil || first.st.wrapper == nil {
		t.Fatalf("first processing: err=%v, wrapper=%v", first.err, first.st.wrapper)
	}
	reused := w.computeSource(s, first.st, false)
	if reused.err != nil {
		t.Fatal(reused.err)
	}
	if reused.st.wrapper == first.st.wrapper {
		t.Error("wrapper aliased instead of cloned — repair would mutate stored state")
	}
	if reused.repairs != 0 {
		t.Errorf("reusing the wrapper on an unchanged page re-induced it (%d repairs)", reused.repairs)
	}
	if reused.st.wrapper.RecordSelector != first.st.wrapper.RecordSelector {
		t.Error("reused wrapper lost its record selector")
	}
	reinduced := w.computeSource(s, first.st, true)
	if reinduced.err != nil || reinduced.st.wrapper == nil {
		t.Fatalf("reinduction: err=%v, wrapper=%v", reinduced.err, reinduced.st.wrapper)
	}
}

// panickingClockProvider panics on its first Clock call — which happens
// inside the first source's compute chain (quality assessment) — and
// behaves normally afterwards. It simulates a backend blowing up mid-
// processing for exactly one source.
type panickingClockProvider struct {
	sources.Provider
	fired bool
}

func (p *panickingClockProvider) Clock() int {
	if !p.fired {
		p.fired = true
		panic("clock exploded")
	}
	return p.Provider.Clock()
}

// TestRunIsolatesPanickingSource proves the panic-isolation contract: a
// panic inside one source's compute chain turns into that source's error
// — the source is skipped, every other source lands, the run succeeds.
func TestRunIsolatesPanickingSource(t *testing.T) {
	u := buildUniverse(61, 6, true)
	w := New(&panickingClockProvider{Provider: u}, ProductConfig(), nil, fullDataCtx(u))
	w.Parallelism = 1 // deterministic victim: the first source's chain panics
	out, err := w.Run()
	if err != nil {
		t.Fatalf("run failed instead of isolating the panic: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("no wrangled rows")
	}
	if w.LastStats.SourcesProcessed != 6 {
		t.Errorf("SourcesProcessed = %d, want 6", w.LastStats.SourcesProcessed)
	}
	if len(w.states) != 5 {
		t.Errorf("%d sources installed, want 5 (panicking one skipped)", len(w.states))
	}
	for _, id := range w.SelectedSources() {
		if _, ok := w.states[id]; !ok {
			t.Errorf("selected source %s has no installed state", id)
		}
	}
	// The panic is isolated but not silent: the failure (with its stack)
	// is on the record.
	if len(w.LastStats.Failures) != 1 {
		t.Fatalf("Failures = %v, want exactly one entry", w.LastStats.Failures)
	}
	for _, msg := range w.LastStats.Failures {
		if !strings.Contains(msg, "panicked: clock exploded") || !strings.Contains(msg, "goroutine") {
			t.Errorf("failure record lacks panic message or stack:\n%s", msg)
		}
	}
}

// TestRunSkipsPoisonedSource proves error isolation end to end: a source
// whose extraction errors is skipped like any other broken source instead
// of crashing the run.
func TestRunSkipsPoisonedSource(t *testing.T) {
	u := buildUniverse(61, 6, true)
	// An unknown kind makes extractSource error; a nil-template HTML
	// source exercises the repair path's defences. Add a source that is
	// outright broken.
	u.Sources = append(u.Sources, &sources.Source{ID: "zz-broken", Kind: sources.Kind("bogus")})
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	w.Parallelism = 4
	out, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no wrangled rows")
	}
	if w.LastStats.SourcesProcessed != 7 {
		t.Errorf("SourcesProcessed = %d, want 7 (6 good + 1 broken)", w.LastStats.SourcesProcessed)
	}
	if _, ok := w.LastStats.Failures["zz-broken"]; !ok {
		t.Errorf("Failures = %v, want entry for zz-broken", w.LastStats.Failures)
	}
	for _, id := range w.SelectedSources() {
		if id == "zz-broken" {
			t.Error("broken source was selected")
		}
	}
}
