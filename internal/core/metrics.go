package core

import (
	"errors"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Metric name catalogue (core pipeline). Everything below the facade
// shares one registry; the serve store and WAL register their own
// families (see serve.Store.Instrument, wal.Log.Instrument).
const (
	mReactions      = "wrangle_reactions_total"
	mStageSeconds   = "wrangle_stage_seconds"
	mReactSeconds   = "wrangle_reaction_seconds"
	mTaskSeconds    = "wrangle_task_seconds"
	mTasks          = "wrangle_engine_tasks_total"
	mTaskPanics     = "wrangle_engine_task_panics_total"
	mSourceFailures = "wrangle_source_failures_total"
	mShardsResolved = "wrangle_shards_resolved_total"
	mShardsReused   = "wrangle_shards_reused_total"
	mReuseRatio     = "wrangle_shard_reuse_ratio"
	mPublishFull    = "wrangle_publish_full_total"
	mPublishDelta   = "wrangle_publish_delta_total"
	mChangedPages   = "wrangle_publish_changed_pages_total"
	mSharedPages    = "wrangle_publish_shared_pages_total"
	mChangedRecords = "wrangle_publish_changed_records_total"
	mRemovedRecords = "wrangle_publish_removed_records_total"
	mRows           = "wrangle_rows"
	mVersion        = "wrangle_version"
	mReplayTrunc    = "wrangle_wal_replay_truncations_total"
	mTrustComps     = "wrangle_trust_components"
	mTrustReused    = "wrangle_trust_components_reused_total"
	mTrustIters     = "wrangle_trust_component_iterations"
)

// trustIterBuckets bounds the per-component fixpoint iteration histogram:
// the TruthFinder iteration cap defaults to 10, so the interesting signal
// is how far below it the per-component delta break lands.
func trustIterBuckets() []float64 { return []float64{1, 2, 3, 4, 6, 8, 10, 15} }

// pipelineMetrics holds the pre-resolved handles the hot paths bump.
// Per-label-value handles (stage/origin histograms) are resolved through
// the registry at publish time — a few mutex-guarded map lookups per
// reaction, nothing per row.
type pipelineMetrics struct {
	reg            *obs.Registry
	tasks          *obs.Counter
	taskPanics     *obs.Counter
	sourceFailures *obs.Counter
	shardsResolved *obs.Counter
	shardsReused   *obs.Counter
	reuseRatio     *obs.Gauge
	publishFull    *obs.Counter
	publishDelta   *obs.Counter
	changedPages   *obs.Counter
	sharedPages    *obs.Counter
	changedRecords *obs.Counter
	removedRecords *obs.Counter
	rows           *obs.Gauge
	version        *obs.Gauge
	trustComps     *obs.Gauge
	trustReused    *obs.Counter
}

// SetMetrics enables telemetry on the wrangler: pipeline counters and
// stage histograms, the serve store's read/watch metrics, and — for
// durable sessions — the WAL's append/fsync/compaction counters. Call it
// once, after construction (and after AttachDurableLog for durable
// sessions), before the wrangler is used concurrently. A nil registry is
// a no-op; with no registry set every instrumentation site is a single
// nil check.
func (w *Wrangler) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &pipelineMetrics{
		reg:            reg,
		tasks:          reg.Counter(mTasks),
		taskPanics:     reg.Counter(mTaskPanics),
		sourceFailures: reg.Counter(mSourceFailures),
		shardsResolved: reg.Counter(mShardsResolved),
		shardsReused:   reg.Counter(mShardsReused),
		reuseRatio:     reg.Gauge(mReuseRatio),
		publishFull:    reg.Counter(mPublishFull),
		publishDelta:   reg.Counter(mPublishDelta),
		changedPages:   reg.Counter(mChangedPages),
		sharedPages:    reg.Counter(mSharedPages),
		changedRecords: reg.Counter(mChangedRecords),
		removedRecords: reg.Counter(mRemovedRecords),
		rows:           reg.Gauge(mRows),
		version:        reg.Gauge(mVersion),
		trustComps:     reg.Gauge(mTrustComps),
		trustReused:    reg.Counter(mTrustReused),
	}
	reg.Histogram(mTrustIters, trustIterBuckets())
	reg.Help(mTasks, "Engine DAG tasks completed (all graphs).")
	reg.Help(mTaskPanics, "Engine tasks that ended in a recovered panic.")
	reg.Help(mSourceFailures, "Per-source wrangling failures (source skipped, run continued).")
	reg.Help(mShardsResolved, "Integration shards recomputed by reactions.")
	reg.Help(mShardsReused, "Integration shards reused by-reference by streaming reactions.")
	reg.Help(mReuseRatio, "Reused/(resolved+reused) shards of the last reaction tail.")
	reg.Help(mTrustComps, "Trust-coupled components in the last tail's trust estimation.")
	reg.Help(mTrustReused, "Trust components adopted from the warm memo without re-iterating.")
	reg.Help(mTrustIters, "Fixpoint iterations per recomputed trust component.")
	w.met = m
	if w.Serve != nil {
		w.Serve.Instrument(reg)
	}
	if w.log != nil {
		w.log.instrument(reg)
	}
}

// Metrics returns the wrangler's registry, nil when telemetry is off.
func (w *Wrangler) Metrics() *obs.Registry {
	if w.met == nil {
		return nil
	}
	return w.met.reg
}

// instrumentGraph installs a task observer on g recording per-task spans
// (wrangle_task_seconds{stage}), task counts, and panic counts. The
// observer runs on the graph's scheduler goroutine; a wrangler runs one
// graph at a time (the session lock serializes writers), so the registry
// lookups race with nothing but scrapes, which the registry tolerates.
func (w *Wrangler) instrumentGraph(g *engine.Graph) {
	m := w.met
	if m == nil {
		return
	}
	g.Observe(func(id string, d time.Duration, err error) {
		m.tasks.Inc()
		if err != nil {
			var pe *engine.PanicError
			if errors.As(err, &pe) {
				m.taskPanics.Inc()
			}
		}
		stage, _ := stageOf(id)
		m.reg.Histogram(mTaskSeconds, obs.DurationBuckets(), "stage", stage).Observe(d.Seconds())
	})
}

// observePublish records one committed version's telemetry: the reaction
// count and duration by origin, per-stage durations, shard reuse, and
// the publication's delta shape. Called from publish() after the store
// committed v.
func (w *Wrangler) observePublish(origin serve.Origin, react ReactStats, v *PublishedVersion) {
	m := w.met
	if m == nil {
		return
	}
	o := string(origin)
	m.reg.Counter(mReactions, "origin", o).Inc()
	stages := react.Stages
	dur := react.Duration
	if origin == serve.OriginRun {
		stages = w.LastStats.Stages
		dur = w.LastStats.Duration
	}
	for stage, d := range stages {
		m.reg.Histogram(mStageSeconds, obs.DurationBuckets(), "origin", o, "stage", stage).Observe(d.Seconds())
	}
	m.reg.Histogram(mReactSeconds, obs.DurationBuckets(), "origin", o).Observe(dur.Seconds())
	if resolved, reused := react.ShardsResolved, react.ShardsReused; resolved+reused > 0 {
		m.shardsResolved.Add(int64(resolved))
		m.shardsReused.Add(int64(reused))
		m.reuseRatio.Set(float64(reused) / float64(resolved+reused))
	}
	// w.lastTrust describes exactly the tail this publication came from
	// (runTail/RunContext reset it per tail), so it is the one source of
	// truth for both run and reaction origins.
	if ts := w.lastTrust; ts.Components > 0 {
		m.trustComps.Set(float64(ts.Components))
		m.trustReused.Add(int64(ts.Components - ts.Recomputed))
		h := m.reg.Histogram(mTrustIters, trustIterBuckets())
		for _, it := range ts.Iterations {
			h.Observe(float64(it))
		}
	}
	cs := v.Changes()
	if cs.Full {
		m.publishFull.Inc()
	} else {
		m.publishDelta.Inc()
		m.changedPages.Add(int64(cs.ChangedPages))
		m.sharedPages.Add(int64(cs.SharedPages))
		m.changedRecords.Add(int64(len(cs.ChangedRecords)))
		m.removedRecords.Add(int64(len(cs.RemovedRecords)))
	}
	m.rows.Set(float64(w.wrangled.Len()))
	m.version.Set(float64(v.Seq()))
}
