package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/feedback"
	"repro/internal/provenance"
	"repro/internal/serve"
	"repro/internal/sources"
)

// This file implements the incremental, pay-as-you-go reaction paths: the
// paper requires that "feedback-induced reactions do not trigger a
// re-processing of all datasets involved in the computation but rather
// limit the processing to the strictly necessary data" (§2.4). The
// provenance graph decides what is affected; everything else is reused
// from the working-data store.

// ReactStats reports the scope of an incremental reaction, for comparison
// against a full rerun (experiment E10).
type ReactStats struct {
	FeedbackItems      int
	SourcesReextracted int
	Remapped           int
	Reclustered        bool
	Refused            bool
	// ShardsResolved and ShardsReused report the dirty-shard split of a
	// sharded integration tail: how many shards re-resolved their
	// clusters versus reused them by reference. A streaming refresh that
	// touched one source typically resolves one shard and reuses the
	// rest; non-streaming sharded tails resolve all of them; sequential
	// sessions report zeros.
	ShardsResolved int
	ShardsReused   int
	// TrustComponents and TrustRecomputed report the component shape of
	// the reaction's trust estimation: how many trust-coupled connected
	// components the claim set split into and how many actually
	// re-iterated. On streaming sessions the warm fixpoint adopts
	// unchanged components from the memo, so a 1-source churn typically
	// recomputes fewer components than the total. Zero when no trust
	// fixpoint ran (non-TruthFinder policy, empty tail).
	TrustComponents int
	TrustRecomputed int
	Duration        time.Duration
	// Stages attributes the reaction's wall clock: "reextract" covers the
	// per-source re-extraction fan-out and "integrate" the whole
	// integration tail ("fuse" when only a sequential fusion reran).
	// Sharded tails additionally split the tail by DAG stage — "replan"
	// (union build + shard planning or incremental re-plan), "resolve",
	// "trust" (cluster barrier + trust estimation), "fuse", "merge" — so
	// published versions attribute exactly where a streaming reaction
	// saved its time. Absent stages did not run.
	Stages map[string]time.Duration
}

// ReactToFeedback consumes feedback added since the last reaction and
// recomputes only the affected stages:
//
//   - wrapper_broken → re-extract that source, then re-map it, then
//     recluster + refuse (the downstream chain from the provenance graph);
//   - duplicate / not_duplicate → re-learn the resolver, recluster, refuse;
//   - value feedback → recompute source trust, refuse only;
//   - relevance feedback → re-select sources; integrate if selection moved.
//
// Extractions, mappings and scorecards of untouched sources are reused.
func (w *Wrangler) ReactToFeedback() (ReactStats, error) {
	return w.ReactToFeedbackContext(context.Background())
}

// ReactToFeedbackContext is ReactToFeedback with cooperative cancellation
// between per-source re-extractions.
func (w *Wrangler) ReactToFeedbackContext(ctx context.Context) (ReactStats, error) {
	start := time.Now()
	items := w.Feedback.Since(w.lastSeq)
	stats := ReactStats{FeedbackItems: len(items)}
	if len(items) == 0 {
		return stats, nil
	}
	// lastSeq only advances once the reaction completes: a cancelled or
	// failed reaction leaves the items pending, so a retry re-reacts
	// instead of silently dropping them.
	last := items[len(items)-1].Seq

	// The reaction planner decides the scope; this method only supplies
	// the feedback-path policies (fatal install errors, reinduced
	// wrappers, the lastSeq advance).
	reextract, reselect, scope, tail := planReaction(items)
	// Wrapper-feedback re-extractions are independent per source, so they
	// fan out on the engine like a run's extraction stage; outcomes merge
	// in sorted source order so the reaction stays deterministic. The
	// stored wrapper is discarded (reinduce): the feedback says it is
	// broken, so repair alone is not enough.
	ids := make([]string, 0, len(reextract))
	for id := range reextract {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Invalidate the flagged wrappers up front: even if this reaction
	// fails or is cancelled, a wrapper the user reported broken must not
	// be reused by a later run or refresh.
	for _, id := range ids {
		if st, ok := w.states[id]; ok {
			st.wrapper = nil
		}
	}
	stats.Stages = map[string]time.Duration{}
	exStart := time.Now()
	outcomes, err := w.computeSources(ctx, ids, w.Provider.Lookup, true)
	if err != nil {
		return stats, err
	}
	for _, o := range outcomes {
		if o == nil {
			continue // unknown source id: nothing to re-extract
		}
		if err := w.installOutcome(o); err != nil {
			return stats, fmt.Errorf("core: react re-extract %s: %w", o.id, err)
		}
		stats.SourcesReextracted++
		stats.Remapped++
		scope, tail = tailFull, true
	}
	if len(ids) > 0 {
		stats.Stages["reextract"] = time.Since(exStart)
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	if reselect {
		w.selectSources()
		scope, tail = tailFull, true
	}
	if tail {
		if err := w.runTail(ctx, scope, &stats); err != nil {
			return stats, err
		}
		stats.Refused = true
		stats.Reclustered = scope == tailFull
	}
	w.lastSeq = last
	stats.Duration = time.Since(start)
	if stats.SourcesReextracted > 0 || stats.Reclustered || stats.Refused {
		// Something recomputed: commit the new working data as a serve
		// version. Feedback that changed nothing publishes nothing.
		w.publish(serve.OriginFeedback, stats)
	}
	return stats, nil
}

// RefreshSource handles source churn (Velocity): the provider re-acquires
// the source, and only that source's extraction chain plus the shared
// integration tail is recomputed. The returned ReactStats reports the
// recomputation scope.
func (w *Wrangler) RefreshSource(id string) (ReactStats, error) {
	return w.RefreshSourcesContext(context.Background(), []string{id})
}

// RefreshSourceContext is RefreshSource with cooperative cancellation
// between the re-extraction and the integration tail.
func (w *Wrangler) RefreshSourceContext(ctx context.Context, id string) (ReactStats, error) {
	return w.RefreshSourcesContext(ctx, []string{id})
}

// computeSources re-processes the named sources through the engine:
// acquire turns an id into a source (Lookup for reactions, Refresh for
// churn), then the expensive extract/match/map chains fan out over the
// wrangler's worker bound. Acquisition is serial by default — providers
// may mutate shared state when re-acquiring — but a provider that opts
// into the sources.ConcurrentProvider contract acquires inside the
// engine fan-out too, overlapping network- or disk-bound re-acquisition
// with extraction. Duplicate ids then share one acquisition and one
// outcome (providers only promise distinct-id safety); the serial path
// acquires duplicates repeatedly but deterministically, so both paths
// install identical states. reinduce discards stored wrappers (the
// wrapper_broken reaction); otherwise they are reused and repaired. The
// returned outcomes are in ids order (nil where acquire returned no
// source), ready for an in-order merge.
func (w *Wrangler) computeSources(ctx context.Context, ids []string, acquire func(string) *sources.Source, reinduce bool) ([]*sourceOutcome, error) {
	type job struct {
		id   string
		src  *sources.Source
		prev *sourceState
	}
	if cp, ok := w.Provider.(sources.ConcurrentProvider); ok && cp.ConcurrentAcquire() {
		// One job per distinct id, acquisition deferred into the worker.
		// prev states are snapshotted up front: installs only happen after
		// the whole fan-out, so every duplicate sees the same baseline.
		uniq := make([]*job, 0, len(ids))
		jobOf := make(map[string]*job, len(ids))
		for _, id := range ids {
			if _, dup := jobOf[id]; dup {
				continue
			}
			j := &job{id: id, prev: w.states[id]}
			jobOf[id] = j
			uniq = append(uniq, j)
		}
		done, err := engine.MapSlice(ctx, w.workers(), uniq, func(_ context.Context, j *job) (*sourceOutcome, error) {
			if s := acquire(j.id); s != nil {
				return w.computeSource(s, j.prev, reinduce), nil
			}
			return nil, nil
		})
		if err != nil {
			return nil, err
		}
		byID := make(map[string]*sourceOutcome, len(uniq))
		for i, j := range uniq {
			byID[j.id] = done[i]
		}
		out := make([]*sourceOutcome, len(ids))
		for i, id := range ids {
			out[i] = byID[id]
		}
		return out, nil
	}
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s := acquire(id); s != nil {
			jobs[i] = &job{src: s, prev: w.states[id]}
		}
	}
	return engine.MapSlice(ctx, w.workers(), jobs, func(_ context.Context, j *job) (*sourceOutcome, error) {
		if j == nil {
			return nil, nil
		}
		return w.computeSource(j.src, j.prev, reinduce), nil
	})
}

// RefreshSourcesContext refreshes a batch of sources and recomputes the
// shared integration tail once — not once per source, which is the
// expensive part of a refresh. Re-acquisition is serial (the provider may
// mutate shared state), the per-source extraction chains run on the
// engine, and outcomes merge in batch order. Per-source failures are
// best-effort (like Run): the failing source keeps its previous working
// data, the rest of the batch and the integration tail still run, and the
// collected errors are returned alongside the stats of what did happen.
// Only cancellation aborts the batch.
func (w *Wrangler) RefreshSourcesContext(ctx context.Context, ids []string) (ReactStats, error) {
	start := time.Now()
	stats := ReactStats{Stages: map[string]time.Duration{}}
	var errs []error
	outcomes, err := w.computeSources(ctx, ids, w.Provider.Refresh, false)
	if err != nil {
		return stats, err
	}
	for i, o := range outcomes {
		if o == nil {
			errs = append(errs, fmt.Errorf("core: unknown source %q", ids[i]))
			continue
		}
		if err := w.installOutcome(o); err != nil {
			errs = append(errs, fmt.Errorf("core: refresh %s: %w", o.id, err))
			continue
		}
		stats.SourcesReextracted++
		stats.Remapped++
	}
	stats.Stages["reextract"] = time.Since(start)
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	if stats.SourcesReextracted == 0 && len(errs) > 0 {
		// Nothing was re-acquired; the working data is unchanged and the
		// integration tail has nothing new to fold in.
		return stats, errors.Join(errs...)
	}
	if err := w.runTail(ctx, tailFull, &stats); err != nil {
		errs = append(errs, err)
		return stats, errors.Join(errs...)
	}
	stats.Reclustered = true
	stats.Refused = true
	stats.Duration = time.Since(start)
	// Best-effort contract: the tail recomputed, so the new working data
	// is committed as a serve version even when individual sources failed
	// (they kept their previous good data).
	w.publish(serve.OriginRefresh, stats)
	return stats, errors.Join(errs...)
}

// FullRerun discards all working data and recomputes the pipeline from
// scratch — the classical-ETL behaviour E10 compares against.
func (w *Wrangler) FullRerun() (ReactStats, error) {
	start := time.Now()
	w.states = map[string]*sourceState{}
	w.memo = nil // discarded working data: nothing left to stream against
	// The derivations are discarded but the logical clock is not rewound:
	// versions the serve store already committed keep steps strictly below
	// everything the rerun publishes.
	w.Prov = provenance.NewGraphFrom(w.Prov.Step())
	if _, err := w.Run(); err != nil {
		return ReactStats{}, err
	}
	return ReactStats{
		SourcesReextracted: w.LastStats.SourcesProcessed,
		Remapped:           w.LastStats.SourcesProcessed,
		Reclustered:        true,
		Refused:            true,
		Duration:           time.Since(start),
	}, nil
}

// AffectedBy exposes the provenance reachability for diagnostics: which
// artefacts a change to the given source would invalidate.
func (w *Wrangler) AffectedBy(sourceID string) []provenance.Ref {
	return w.Prov.Affected(provenance.Ref{Kind: provenance.KindSource, ID: sourceID})
}

// EvolveWorld advances the world clock with the given churn and returns
// the SKUs whose prices changed — the velocity driver for experiments.
// Only meaningful for synthetic universes; other providers return nil.
func (w *Wrangler) EvolveWorld(churn float64) []string {
	if u, ok := w.Provider.(*sources.Universe); ok {
		return u.World.Evolve(churn)
	}
	return nil
}

// Snapshot returns a copy of the per-source selection and utility for
// reporting.
func (w *Wrangler) Snapshot() map[string]SourceReport {
	out := map[string]SourceReport{}
	for id, st := range w.states {
		rep := SourceReport{
			Selected:     st.selected,
			Utility:      st.utility,
			Completeness: st.quality.Completeness,
			Accuracy:     st.scorecard.Accuracy,
			Timeliness:   st.scorecard.Timeliness,
			Coverage:     st.quality.Coverage,
		}
		if st.mapped != nil {
			rep.Rows = st.mapped.Len()
		}
		out[id] = rep
	}
	return out
}

// SourceReport is the per-source line of Snapshot.
type SourceReport struct {
	Selected     bool
	Utility      float64
	Rows         int
	Completeness float64
	Accuracy     float64
	Timeliness   float64
	Coverage     float64
}

// ChurnAndRefresh evolves the world one step and refreshes the given
// number of sources (round-robin), returning the per-refresh stats. It is
// the velocity workload used by E10.
func (w *Wrangler) ChurnAndRefresh(churn float64, nSources int) ([]ReactStats, error) {
	w.EvolveWorld(churn)
	var out []ReactStats
	for i, s := range w.Provider.List() {
		if i >= nSources {
			break
		}
		st, err := w.RefreshSource(s.ID)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// AddFeedback records a feedback item only when the user context's
// feedback budget allows it — "the budget for accessing sources" (§4.1)
// has a twin on the payment side of pay-as-you-go. A zero budget means
// unbounded. Returns false (and records nothing) when the budget would be
// exceeded.
func (w *Wrangler) AddFeedback(it feedback.Item) bool {
	if w.UserCtx.FeedbackBudget > 0 && w.Feedback.Spent()+it.Cost > w.UserCtx.FeedbackBudget {
		return false
	}
	rec := w.Feedback.Add(it)
	if w.log != nil {
		// Paid-for labels are logged as they arrive, not at the next
		// publish — a crash in between loses no feedback.
		w.log.appendFeedback(rec)
	}
	return true
}

// BudgetRemaining reports the unspent feedback budget (Inf-like -1 when
// unbounded).
func (w *Wrangler) BudgetRemaining() float64 {
	if w.UserCtx.FeedbackBudget <= 0 {
		return -1
	}
	rem := w.UserCtx.FeedbackBudget - w.Feedback.Spent()
	if rem < 0 {
		return 0
	}
	return rem
}

// FeedbackSeq returns the last assimilated feedback sequence number.
func (w *Wrangler) FeedbackSeq() int { return w.lastSeq }

// AsOfNow returns the provider's current wall-clock anchor.
func (w *Wrangler) AsOfNow() time.Time { return sources.AsOf(w.Provider.Clock()) }
